// Federation: the paper's full deployment shape in one process — a TCP
// aggregation server plus two "edge devices" running as goroutines, each
// with its own simulated processor, disjoint training applications, replay
// buffer and power controller. Only model parameters cross the sockets.
//
// Device A trains on compute-bound applications (water-ns, water-sp) and
// device B on memory-bound ones (ocean, radix) — scenario 2 of Table II,
// the case where local-only training fails hardest. After training, the
// shared global policy is evaluated on applications *neither* pairing saw
// alone, demonstrating the knowledge consolidation of federated learning.
//
// The run also demonstrates the fault-tolerant protocol: device B's first
// connection is rigged to die mid-training, the server drops it for that
// round (quorum aggregation continues with device A alone), and device B's
// Participant reconnects under backoff and rejoins at the next broadcast.
//
// The federation runs under the delta wire codec — negotiated in the join
// frame, bit-exact with respect to the default dense float32 encoding —
// and the byte counters report the traffic each connection actually put on
// the wire, whatever the codec.
//
//	go run ./examples/federation
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fedpower"
)

const (
	rounds   = 60
	steps    = 100
	interval = 0.5
)

// codec is the wire encoding both ends negotiate: delta ships float32
// bit-pattern differences against a per-connection shadow of the last
// exchanged model — the training run is bit-identical to the dense default.
var codec = fedpower.DeltaCodec()

func main() {
	table := fedpower.JetsonNanoTable()
	params := fedpower.DefaultControllerParams(table.Len())
	initial := fedpower.NewController(params, rand.New(rand.NewSource(99))).ModelParams()

	srv, err := fedpower.NewServer("127.0.0.1:0", 2, rounds)
	if err != nil {
		log.Fatal(err)
	}
	// Fault tolerance: a round needs only one surviving update to commit,
	// a device that misses the 10 s deadline is dropped (and may rejoin),
	// and a silent connection cannot stall the join phase.
	srv.Quorum = 1
	srv.RoundTimeout = 10 * time.Second
	srv.JoinTimeout = 10 * time.Second
	srv.OnDrop = func(id uint32, round int, err error) {
		fmt.Printf("server: round %d dropped device %d (%v)\n", round, id, err)
	}
	srv.Codec = codec
	// Teardown at process exit; the protocol outcome is already decided.
	defer func() { _ = srv.Close() }()
	fmt.Printf("aggregation server on %s — %d rounds, codec %s, %d B per model transfer\n\n",
		srv.Addr(), rounds, codec, codec.TransferSize(len(initial)))

	var wg sync.WaitGroup
	runDevice := func(name string, id uint32, seed int64, appNames []string, flakyWrite int32) {
		defer wg.Done()
		if err := device(srv.Addr(), name, id, seed, appNames, flakyWrite); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	wg.Add(2)
	go runDevice("device-A", 1, 10, []string{"water-ns", "water-sp"}, 0)
	// Device B's first connection dies on its 12th write — the round-11
	// model update — so the server drops it in round 11 and it rejoins.
	go runDevice("device-B", 2, 20, []string{"ocean", "radix"}, 12)

	final, err := srv.Serve(initial, func(round int, _ []float64) {
		if round%20 == 0 {
			fmt.Printf("server: round %d/%d aggregated\n", round, rounds)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()
	fmt.Printf("server: connection churn — %d drops, %d rejoins\n", srv.Drops(), srv.Rejoins())

	// Evaluate the shared policy greedily on unseen applications.
	fmt.Println("\nglobal policy on applications unseen by either device alone:")
	ctrl := fedpower.NewController(params, rand.New(rand.NewSource(0)))
	ctrl.SetModelParams(final)
	for _, name := range []string{"fft", "raytrace", "barnes", "cholesky"} {
		spec, err := fedpower.AppByName(name)
		if err != nil {
			log.Fatal(err)
		}
		dev := fedpower.NewDevice(table, fedpower.DefaultPowerModel(), rand.New(rand.NewSource(777)))
		dev.Load(fedpower.NewApp(spec))
		dev.SetLevel(table.Len() / 2)
		obs := dev.Step(interval)
		var rewardSum float64
		var state []float64
		const evalSteps = 30
		for t := 0; t < evalSteps && !dev.Done(); t++ {
			state = fedpower.StateVector(obs, state)
			dev.SetLevel(ctrl.GreedyAction(state))
			obs = dev.Step(interval)
			rewardSum += params.Reward.Reward(obs.NormFreq, obs.PowerW)
		}
		st := dev.Stats()
		fmt.Printf("  %-9s avg reward %+.3f, avg power %.2f W (budget %.1f W)\n",
			name, rewardSum/evalSteps, st.AvgPowerW(), params.Reward.PCritW)
	}
}

// flakyConn kills the underlying connection on its n-th write — a stand-in
// for a power-cycled device or a dropped link mid-round.
type flakyConn struct {
	net.Conn
	count *int32
	n     int32
}

func (c flakyConn) Write(p []byte) (int, error) {
	if atomic.AddInt32(c.count, 1) == c.n {
		_ = c.Conn.Close()
		return 0, errors.New("simulated link failure")
	}
	return c.Conn.Write(p)
}

// device runs one federated participant over TCP: the same control loop a
// real board would run, against the simulated processor — driven by the
// resilient Participant, which reconnects under capped-backoff retry when
// the link dies. flakyWrite > 0 rigs the first connection to fail on that
// write.
func device(server, name string, id uint32, seed int64, appNames []string, flakyWrite int32) error {
	table := fedpower.JetsonNanoTable()
	params := fedpower.DefaultControllerParams(table.Len())

	specs := make([]fedpower.AppSpec, 0, len(appNames))
	for _, n := range appNames {
		spec, err := fedpower.AppByName(n)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
	}

	dev := fedpower.NewDevice(table, fedpower.DefaultPowerModel(), rand.New(rand.NewSource(seed)))
	ctrl := fedpower.NewController(params, rand.New(rand.NewSource(seed+1)))
	stream := fedpower.NewStream(rand.New(rand.NewSource(seed+2)), specs)

	dev.Load(stream.Next())
	dev.SetLevel(table.Len() / 2)
	obs := dev.Step(interval)

	var state []float64
	part := &fedpower.Participant{
		Addr:  server,
		ID:    id,
		Codec: codec,
		Retry: fedpower.Backoff{
			Attempts: 5,
			// In-process rounds are sub-millisecond, so the retry pacing
			// must be fast enough that the rigged device rejoins before
			// the server finishes the remaining rounds without it; real
			// deployments (cmd/feddevice) keep human-scale backoff.
			Base:   2 * time.Millisecond,
			Jitter: rand.New(rand.NewSource(seed + 3)),
		},
	}
	if flakyWrite > 0 {
		var writes int32
		var dials int32
		part.Dialer = func(addr string) (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			if atomic.AddInt32(&dials, 1) == 1 {
				return flakyConn{Conn: c, count: &writes, n: flakyWrite}, nil
			}
			return c, nil
		}
	}

	_, err := part.Run(fedpower.FederatedClientFunc(func(round int, global []float64) ([]float64, error) {
		ctrl.SetModelParams(global)
		for t := 0; t < steps; t++ {
			if dev.Done() {
				dev.Load(stream.Next())
			}
			state = fedpower.StateVector(obs, state)
			action := ctrl.SelectAction(state)
			dev.SetLevel(action)
			obs = dev.Step(interval)
			ctrl.Observe(state, action, params.Reward.Reward(obs.NormFreq, obs.PowerW))
		}
		return ctrl.ModelParams(), nil
	}))
	if err != nil {
		return err
	}
	fmt.Printf("%s: done (%d reconnects, %d B sent, %d B received)\n",
		name, part.Reconnects(), part.BytesSent(), part.BytesReceived())
	return nil
}
