// Federation: the paper's full deployment shape in one process — a TCP
// aggregation server plus two "edge devices" running as goroutines, each
// with its own simulated processor, disjoint training applications, replay
// buffer and power controller. Only model parameters cross the sockets.
//
// Device A trains on compute-bound applications (water-ns, water-sp) and
// device B on memory-bound ones (ocean, radix) — scenario 2 of Table II,
// the case where local-only training fails hardest. After training, the
// shared global policy is evaluated on applications *neither* pairing saw
// alone, demonstrating the knowledge consolidation of federated learning.
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"fedpower"
)

const (
	rounds   = 60
	steps    = 100
	interval = 0.5
)

func main() {
	table := fedpower.JetsonNanoTable()
	params := fedpower.DefaultControllerParams(table.Len())
	initial := fedpower.NewController(params, rand.New(rand.NewSource(99))).ModelParams()

	srv, err := fedpower.NewServer("127.0.0.1:0", 2, rounds)
	if err != nil {
		log.Fatal(err)
	}
	// Teardown at process exit; the protocol outcome is already decided.
	defer func() { _ = srv.Close() }()
	fmt.Printf("aggregation server on %s — %d rounds, %d B per model transfer\n\n",
		srv.Addr(), rounds, fedpower.TransferSize(len(initial)))

	var wg sync.WaitGroup
	runDevice := func(name string, seed int64, appNames []string) {
		defer wg.Done()
		if err := device(srv.Addr(), name, seed, appNames); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	wg.Add(2)
	go runDevice("device-A", 10, []string{"water-ns", "water-sp"})
	go runDevice("device-B", 20, []string{"ocean", "radix"})

	final, err := srv.Serve(initial, func(round int, _ []float64) {
		if round%20 == 0 {
			fmt.Printf("server: round %d/%d aggregated\n", round, rounds)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	// Evaluate the shared policy greedily on unseen applications.
	fmt.Println("\nglobal policy on applications unseen by either device alone:")
	ctrl := fedpower.NewController(params, rand.New(rand.NewSource(0)))
	ctrl.SetModelParams(final)
	for _, name := range []string{"fft", "raytrace", "barnes", "cholesky"} {
		spec, err := fedpower.AppByName(name)
		if err != nil {
			log.Fatal(err)
		}
		dev := fedpower.NewDevice(table, fedpower.DefaultPowerModel(), rand.New(rand.NewSource(777)))
		dev.Load(fedpower.NewApp(spec))
		dev.SetLevel(table.Len() / 2)
		obs := dev.Step(interval)
		var rewardSum float64
		var state []float64
		const evalSteps = 30
		for t := 0; t < evalSteps && !dev.Done(); t++ {
			state = fedpower.StateVector(obs, state)
			dev.SetLevel(ctrl.GreedyAction(state))
			obs = dev.Step(interval)
			rewardSum += params.Reward.Reward(obs.NormFreq, obs.PowerW)
		}
		st := dev.Stats()
		fmt.Printf("  %-9s avg reward %+.3f, avg power %.2f W (budget %.1f W)\n",
			name, rewardSum/evalSteps, st.AvgPowerW(), params.Reward.PCritW)
	}
}

// device runs one federated participant over TCP: the same control loop a
// real board would run, against the simulated processor.
func device(server, name string, seed int64, appNames []string) error {
	table := fedpower.JetsonNanoTable()
	params := fedpower.DefaultControllerParams(table.Len())

	specs := make([]fedpower.AppSpec, 0, len(appNames))
	for _, n := range appNames {
		spec, err := fedpower.AppByName(n)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
	}

	dev := fedpower.NewDevice(table, fedpower.DefaultPowerModel(), rand.New(rand.NewSource(seed)))
	ctrl := fedpower.NewController(params, rand.New(rand.NewSource(seed+1)))
	stream := fedpower.NewStream(rand.New(rand.NewSource(seed+2)), specs)

	dev.Load(stream.Next())
	dev.SetLevel(table.Len() / 2)
	obs := dev.Step(interval)

	var state []float64
	conn, err := fedpower.Dial(server)
	if err != nil {
		return err
	}
	// Every frame is flushed per round; a close error at teardown carries
	// no signal for the already-completed training.
	defer func() { _ = conn.Close() }()

	_, err = conn.Participate(fedpower.FederatedClientFunc(func(round int, global []float64) ([]float64, error) {
		ctrl.SetModelParams(global)
		for t := 0; t < steps; t++ {
			if dev.Done() {
				dev.Load(stream.Next())
			}
			state = fedpower.StateVector(obs, state)
			action := ctrl.SelectAction(state)
			dev.SetLevel(action)
			obs = dev.Step(interval)
			ctrl.Observe(state, action, params.Reward.Reward(obs.NormFreq, obs.PowerW))
		}
		return ctrl.ModelParams(), nil
	}))
	if err != nil {
		return err
	}
	fmt.Printf("%s: done (%d B sent, %d B received)\n", name, conn.BytesSent(), conn.BytesReceived())
	return nil
}
