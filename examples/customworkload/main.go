// Customworkload: the library's extension points — define your own
// application model, your own V/f table, and a tighter power budget, then
// train the controller against them.
//
// The example models a hypothetical edge video-analytics pipeline with
// three phases (decode: memory-heavy; inference: compute-heavy; encode:
// mixed) on a processor with 10 V/f levels, under a 0.45 W budget, and
// compares the learned policy's per-phase frequency choices against the
// analytic optimum.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fedpower"
)

func main() {
	// --- A custom processor: 10 levels, 200–1400 MHz, 0.75–1.15 V --------
	levels := make([]fedpower.VFLevel, 10)
	for i := range levels {
		f := 200 + float64(i)*(1400-200)/9
		levels[i] = fedpower.VFLevel{
			FreqMHz: f,
			VoltV:   0.75 + 0.40*f/1400,
		}
	}
	table, err := fedpower.NewVFTable(levels)
	if err != nil {
		log.Fatal(err)
	}

	// --- A custom application: three-phase video analytics ---------------
	pipeline := fedpower.AppSpec{
		Name:         "video-analytics",
		BaseCPI:      0.72,
		MPKI:         9,
		APKI:         180,
		MemLatencyNs: 80,
		Activity:     1.0,
		TotalInstr:   1.5e10,
		Phases: []fedpower.AppPhase{
			{Fraction: 0.25, CPIMul: 1.05, MPKIMul: 2.2}, // decode: streaming, memory-heavy
			{Fraction: 0.55, CPIMul: 0.85, MPKIMul: 0.3}, // inference: dense compute
			{Fraction: 0.20, CPIMul: 1.00, MPKIMul: 1.2}, // encode: mixed
		},
	}

	// --- A tighter budget and Table-I-style controller -------------------
	params := fedpower.DefaultControllerParams(table.Len())
	params.Reward = fedpower.RewardParams{PCritW: 0.45, KOffsetW: 0.04}

	pm := fedpower.DefaultPowerModel()
	dev := fedpower.NewDevice(table, pm, rand.New(rand.NewSource(3)))
	ctrl := fedpower.NewController(params, rand.New(rand.NewSource(4)))

	fmt.Printf("custom platform: %d levels (%.0f-%.0f MHz), budget %.2f W\n\n",
		table.Len(), table.MinFreqMHz(), table.MaxFreqMHz(), params.Reward.PCritW)

	// Train on back-to-back pipeline executions.
	const interval, trainSteps = 0.5, 6000
	dev.Load(fedpower.NewApp(pipeline))
	dev.SetLevel(table.Len() / 2)
	obs := dev.Step(interval)
	var state []float64
	for t := 0; t < trainSteps; t++ {
		if dev.Done() {
			dev.Load(fedpower.NewApp(pipeline))
		}
		state = fedpower.StateVector(obs, state)
		a := ctrl.SelectAction(state)
		dev.SetLevel(a)
		obs = dev.Step(interval)
		ctrl.Observe(state, a, params.Reward.Reward(obs.NormFreq, obs.PowerW))
	}

	// Per phase: the policy's settled frequency choice vs the analytic
	// optimum. The controller reacts to counter readings with one interval
	// of lag, so we aggregate over each phase rather than sampling its
	// first decision.
	fmt.Println("phase-by-phase policy after training (aggregated over each phase):")
	phaseNames := []string{"decode (memory)", "inference (compute)", "encode (mixed)"}
	probe := fedpower.NewDevice(table, pm, rand.New(rand.NewSource(5)))
	app := fedpower.NewApp(pipeline)
	probe.Load(app)
	probe.SetLevel(table.Len() / 2)
	o := probe.Step(interval)
	type phaseAgg struct {
		freqSum, powSum float64
		steps           int
		opt             int
	}
	aggs := make([]phaseAgg, len(pipeline.Phases))
	for !probe.Done() {
		// The decision for this interval is made on the previous
		// observation; attribute the outcome to the phase it executed in.
		state = fedpower.StateVector(o, state)
		a := ctrl.GreedyAction(state)
		probe.SetLevel(a)
		phase := phaseIndex(app.Progress(), pipeline.Phases)
		aggs[phase].opt = probe.OptimalLevel(app.Demand(), params.Reward.PCritW)
		o = probe.Step(interval)
		aggs[phase].freqSum += o.FreqMHz
		aggs[phase].powSum += o.PowerW
		aggs[phase].steps++
	}
	for i, agg := range aggs {
		if agg.steps == 0 {
			continue
		}
		n := float64(agg.steps)
		fmt.Printf("  %-20s mean %6.0f MHz at %.2f W  | analytic optimum %6.0f MHz\n",
			phaseNames[i], agg.freqSum/n, agg.powSum/n, table.Level(agg.opt).FreqMHz)
	}
	st := probe.Stats()
	fmt.Printf("\nfull pipeline run: %.1f s, avg power %.2f W (budget %.2f W)\n",
		st.TimeS, st.AvgPowerW(), params.Reward.PCritW)
}

func phaseIndex(progress float64, phases []fedpower.AppPhase) int {
	acc := 0.0
	for i, p := range phases {
		acc += p.Fraction
		if progress < acc {
			return i
		}
	}
	return len(phases) - 1
}
