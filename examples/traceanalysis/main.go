// Traceanalysis: the offline-analysis workflow — train a controller,
// record a full execution trace of one application, read the trace back,
// and analyse the policy's behaviour phase by phase.
//
// It also demonstrates the trace-driven workload path: the recorded
// behaviour of the parametric `fft` model is summarised into a demand
// trace (CSV), reloaded as a TraceApp, and re-run to show both workload
// representations drive the same control loop.
//
//	go run ./examples/traceanalysis
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"fedpower"
)

const interval = 0.5

func main() {
	table := fedpower.JetsonNanoTable()
	params := fedpower.DefaultControllerParams(table.Len())

	// --- Train quickly on the full suite ---------------------------------
	dev := fedpower.NewDevice(table, fedpower.DefaultPowerModel(), rand.New(rand.NewSource(1)))
	ctrl := fedpower.NewController(params, rand.New(rand.NewSource(2)))
	stream := fedpower.NewStream(rand.New(rand.NewSource(3)), fedpower.SPLASH2())
	dev.Load(stream.Next())
	dev.SetLevel(table.Len() / 2)
	obs := dev.Step(interval)
	var state []float64
	for t := 0; t < 4000; t++ {
		if dev.Done() {
			dev.Load(stream.Next())
		}
		state = fedpower.StateVector(obs, state)
		a := ctrl.SelectAction(state)
		dev.SetLevel(a)
		obs = dev.Step(interval)
		ctrl.Observe(state, a, params.Reward.Reward(obs.NormFreq, obs.PowerW))
	}
	fmt.Println("controller trained on 4000 control intervals")

	// --- Record a greedy fft episode as a CSV trace ----------------------
	spec, err := fedpower.AppByName("fft")
	if err != nil {
		log.Fatal(err)
	}
	var traceBuf bytes.Buffer
	rec := fedpower.NewCSVTraceRecorder(&traceBuf)
	probe := fedpower.NewDevice(table, fedpower.DefaultPowerModel(), rand.New(rand.NewSource(4)))
	probe.Load(fedpower.NewApp(spec))
	probe.SetLevel(table.Len() / 2)
	o := probe.Step(interval)
	timeS := o.ElapsedS
	step := 0
	for !probe.Done() && step < 3000 {
		state = fedpower.StateVector(o, state)
		probe.SetLevel(ctrl.GreedyAction(state))
		o = probe.Step(interval)
		timeS += o.ElapsedS
		step++
		if err := rec.Record(fedpower.TraceEntry{
			Step: step, TimeS: timeS, App: spec.Name,
			Level: o.Level, FreqMHz: o.FreqMHz, PowerW: o.PowerW,
			IPC: o.IPC, MissRate: o.MissRate, MPKI: o.MPKI,
			Reward: params.Reward.Reward(o.NormFreq, o.PowerW),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := rec.Flush(); err != nil {
		log.Fatal(err)
	}

	// --- Read the trace back and analyse per MPKI regime -----------------
	entries, err := fedpower.ReadCSVTrace(&traceBuf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d control intervals (%.1f s of execution)\n\n", len(entries), entries[len(entries)-1].TimeS)

	type agg struct {
		n           int
		freq, power float64
	}
	regimes := map[string]*agg{}
	for _, e := range entries {
		key := "compute (mpki < 10)"
		if e.MPKI >= 10 {
			key = "transpose (mpki >= 10)"
		}
		a := regimes[key]
		if a == nil {
			a = &agg{}
			regimes[key] = a
		}
		a.n++
		a.freq += e.FreqMHz
		a.power += e.PowerW
	}
	fmt.Println("policy behaviour by fft phase regime:")
	for _, key := range []string{"compute (mpki < 10)", "transpose (mpki >= 10)"} {
		a := regimes[key]
		if a == nil || a.n == 0 {
			continue
		}
		fmt.Printf("  %-24s %4d intervals  mean %6.0f MHz  mean %.2f W\n",
			key, a.n, a.freq/float64(a.n), a.power/float64(a.n))
	}

	// --- Round-trip a demand trace through the TraceApp path -------------
	// Summarise the fft model into three coarse segments and replay them.
	segments := []fedpower.TraceSegment{
		{Instr: 0.40 * 2.2e10, Demand: fedpower.Demand{BaseCPI: 0.63, MPKI: 4.4, APKI: 160, MemLatencyNs: 80, Activity: 1.0}},
		{Instr: 0.20 * 2.2e10, Demand: fedpower.Demand{BaseCPI: 0.81, MPKI: 16.8, APKI: 160, MemLatencyNs: 80, Activity: 1.0}},
		{Instr: 0.40 * 2.2e10, Demand: fedpower.Demand{BaseCPI: 0.63, MPKI: 5.2, APKI: 160, MemLatencyNs: 80, Activity: 1.0}},
	}
	traceApp, err := fedpower.NewTraceApp("fft-trace", segments)
	if err != nil {
		log.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := fedpower.WriteWorkloadTraceCSV(&csvBuf, traceApp); err != nil {
		log.Fatal(err)
	}
	reloaded, err := fedpower.LoadWorkloadTraceCSV("fft-trace", &csvBuf)
	if err != nil {
		log.Fatal(err)
	}

	replay := fedpower.NewDevice(table, fedpower.DefaultPowerModel(), rand.New(rand.NewSource(5)))
	replay.Load(reloaded)
	replay.SetLevel(table.Len() / 2)
	o = replay.Step(interval)
	for !replay.Done() {
		state = fedpower.StateVector(o, state)
		replay.SetLevel(ctrl.GreedyAction(state))
		o = replay.Step(interval)
	}
	st := replay.Stats()
	fmt.Printf("\ntrace-driven replay of fft: %.1f s, avg power %.2f W (budget %.1f W)\n",
		st.TimeS, st.AvgPowerW(), params.Reward.PCritW)
}
