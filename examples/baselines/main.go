// Baselines: run the paper's state-of-the-art comparison point —
// Profit (tabular RL, Chen et al.) extended with CollabPolicy knowledge
// sharing (Tian et al.) — side by side with the federated neural controller
// on scenario 2 of Table II, and print the Table-III-style metrics.
//
//	go run ./examples/baselines
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fedpower"
)

const (
	rounds   = 60
	steps    = 100
	interval = 0.5
)

func main() {
	table := fedpower.JetsonNanoTable()
	pm := fedpower.DefaultPowerModel()
	scenario := fedpower.TableII()[1] // water-ns/water-sp vs ocean/radix

	fmt.Printf("scenario %s: device A %v, device B %v\n\n",
		scenario.Name, scenario.Devices[0], scenario.Devices[1])

	// --- Train Profit+CollabPolicy on two devices ------------------------
	type tabDevice struct {
		dev    *fedpower.Device
		agent  *fedpower.Collab
		stream *fedpower.Stream
		obs    fedpower.Observation
	}
	devices := make([]*tabDevice, 2)
	for i := range devices {
		specs := resolve(scenario.Devices[i])
		p := fedpower.DefaultProfitParams(table.Len())
		d := &tabDevice{
			dev:    fedpower.NewDevice(table, pm, rand.New(rand.NewSource(int64(100+i)))),
			agent:  fedpower.NewCollab(fedpower.NewProfit(p, rand.New(rand.NewSource(int64(200+i))))),
			stream: fedpower.NewStream(rand.New(rand.NewSource(int64(300+i))), specs),
		}
		d.dev.Load(d.stream.Next())
		d.dev.SetLevel(table.Len() / 2)
		d.obs = d.dev.Step(interval)
		devices[i] = d
	}

	for round := 1; round <= rounds; round++ {
		summaries := make([]fedpower.CollabSummary, len(devices))
		for i, d := range devices {
			disc := d.agent.Local.P.Disc
			for t := 0; t < steps; t++ {
				if d.dev.Done() {
					d.dev.Load(d.stream.Next())
				}
				key := disc.Key(d.obs)
				a := d.agent.SelectAction(key)
				d.dev.SetLevel(a)
				d.obs = d.dev.Step(interval)
				d.agent.Observe(key, a, d.agent.Local.Reward(d.obs))
			}
			summaries[i] = d.agent.Summary()
		}
		global := fedpower.CollabAggregate(summaries)
		for _, d := range devices {
			d.agent.SetGlobal(global)
		}
	}
	fmt.Printf("Profit+CollabPolicy trained: device A visited %d states, device B %d, global policy %d states\n",
		devices[0].agent.Local.States(), devices[1].agent.Local.States(), devices[0].agent.GlobalSize())

	// --- Train the federated neural controller on the same scenario ------
	params := fedpower.DefaultControllerParams(table.Len())
	type neuralDevice struct {
		dev    *fedpower.Device
		ctrl   *fedpower.Controller
		stream *fedpower.Stream
		obs    fedpower.Observation
		state  []float64
	}
	clients := make([]fedpower.FederatedClient, 2)
	for i := range clients {
		specs := resolve(scenario.Devices[i])
		nd := &neuralDevice{
			dev:    fedpower.NewDevice(table, pm, rand.New(rand.NewSource(int64(400+i)))),
			ctrl:   fedpower.NewController(params, rand.New(rand.NewSource(int64(500+i)))),
			stream: fedpower.NewStream(rand.New(rand.NewSource(int64(600+i))), specs),
		}
		nd.dev.Load(nd.stream.Next())
		nd.dev.SetLevel(table.Len() / 2)
		nd.obs = nd.dev.Step(interval)
		clients[i] = fedpower.FederatedClientFunc(func(round int, global []float64) ([]float64, error) {
			nd.ctrl.SetModelParams(global)
			for t := 0; t < steps; t++ {
				if nd.dev.Done() {
					nd.dev.Load(nd.stream.Next())
				}
				nd.state = fedpower.StateVector(nd.obs, nd.state)
				a := nd.ctrl.SelectAction(nd.state)
				nd.dev.SetLevel(a)
				nd.obs = nd.dev.Step(interval)
				nd.ctrl.Observe(nd.state, a, params.Reward.Reward(nd.obs.NormFreq, nd.obs.PowerW))
			}
			return nd.ctrl.ModelParams(), nil
		})
	}
	global := fedpower.NewController(params, rand.New(rand.NewSource(999))).ModelParams()
	globalCopy := append([]float64(nil), global...)
	if err := fedpower.FederatedRun(globalCopy, clients, rounds, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("federated neural controller trained")

	// --- Evaluate both to completion on every application ----------------
	fmt.Println("\nrun-to-completion evaluation on all twelve applications:")
	fmt.Printf("%-10s  %14s  %14s  %10s  %10s\n", "app", "exec ours [s]", "exec P+C [s]", "P ours [W]", "P P+C [W]")

	neuralCtrl := fedpower.NewController(params, rand.New(rand.NewSource(0)))
	neuralCtrl.SetModelParams(globalCopy)

	var sumOurs, sumBase float64
	for _, spec := range fedpower.SPLASH2() {
		ours := runToCompletion(table, pm, spec, func(obs fedpower.Observation) int {
			return neuralCtrl.GreedyAction(fedpower.StateVector(obs, nil))
		})
		base := runToCompletion(table, pm, spec, func(obs fedpower.Observation) int {
			return devices[0].agent.GreedyAction(devices[0].agent.Local.P.Disc.Key(obs))
		})
		sumOurs += ours.TimeS
		sumBase += base.TimeS
		fmt.Printf("%-10s  %14.1f  %14.1f  %10.3f  %10.3f\n",
			spec.Name, ours.TimeS, base.TimeS, ours.AvgPowerW(), base.AvgPowerW())
	}
	fmt.Printf("\ntotal execution time: ours %.0f s vs Profit+CollabPolicy %.0f s (%+.0f%%)\n",
		sumOurs, sumBase, (sumOurs-sumBase)/sumBase*100)
}

func resolve(names []string) []fedpower.AppSpec {
	specs := make([]fedpower.AppSpec, len(names))
	for i, n := range names {
		s, err := fedpower.AppByName(n)
		if err != nil {
			log.Fatal(err)
		}
		specs[i] = s
	}
	return specs
}

type deviceStats struct {
	TimeS   float64
	EnergyJ float64
}

func (s deviceStats) AvgPowerW() float64 {
	if s.TimeS == 0 { //fedlint:ignore floateq exact zero guards the division below
		return 0
	}
	return s.EnergyJ / s.TimeS
}

func runToCompletion(table *fedpower.VFTable, pm fedpower.PowerModel, spec fedpower.AppSpec, policy func(fedpower.Observation) int) deviceStats {
	dev := fedpower.NewDevice(table, pm, rand.New(rand.NewSource(777)))
	dev.Load(fedpower.NewApp(spec))
	dev.SetLevel(table.Len() / 2)
	obs := dev.Step(interval)
	for steps := 0; steps < 5000 && !dev.Done(); steps++ {
		dev.SetLevel(policy(obs))
		obs = dev.Step(interval)
	}
	st := dev.Stats()
	return deviceStats{TimeS: st.TimeS, EnergyJ: st.EnergyJ}
}
