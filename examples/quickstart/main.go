// Quickstart: train the paper's RL power controller on a single simulated
// edge device and watch it learn the power-optimal DVFS policy.
//
// The device is a Jetson-Nano-class processor model running a rotation of
// SPLASH-2-style applications under a 0.6 W power budget. The controller
// starts with a uniform exploration policy and converges towards picking,
// per application, the highest V/f level that keeps power under the budget.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"fedpower"
)

func main() {
	const (
		seed     = 1
		rounds   = 50  // training rounds to report
		steps    = 100 // control steps per round
		interval = 0.5 // DVFS control interval [s]
	)

	// The evaluation platform: 15 V/f levels from 102 to 1479 MHz.
	table := fedpower.JetsonNanoTable()
	params := fedpower.DefaultControllerParams(table.Len()) // Table I defaults

	device := fedpower.NewDevice(table, fedpower.DefaultPowerModel(), rand.New(rand.NewSource(seed)))
	ctrl := fedpower.NewController(params, rand.New(rand.NewSource(seed+1)))
	stream := fedpower.NewStream(rand.New(rand.NewSource(seed+2)), fedpower.SPLASH2())

	fmt.Printf("quickstart: %d V/f levels, %d policy parameters, P_crit = %.1f W\n\n",
		table.Len(), ctrl.NumParams(), params.Reward.PCritW)

	// Bootstrap: one observation at a mid-range level, like a default
	// governor would produce.
	device.Load(stream.Next())
	device.SetLevel(table.Len() / 2)
	obs := device.Step(interval)

	var state []float64
	for round := 1; round <= rounds; round++ {
		var rewardSum, freqSum float64
		violations := 0
		for t := 0; t < steps; t++ {
			if device.Done() {
				device.Load(stream.Next())
			}
			state = fedpower.StateVector(obs, state)
			action := ctrl.SelectAction(state) // softmax exploration (Eq. 3)
			device.SetLevel(action)            // the DVFS action
			obs = device.Step(interval)

			r := params.Reward.Reward(obs.NormFreq, obs.PowerW) // Eq. 4
			ctrl.Observe(state, action, r)                      // replay + periodic update

			rewardSum += r
			freqSum += obs.FreqMHz
			if obs.PowerW > params.Reward.PCritW {
				violations++
			}
		}
		if round%5 == 0 {
			fmt.Printf("round %3d | avg reward %+.3f | avg freq %6.0f MHz | violations %2d/%d | tau %.3f\n",
				round, rewardSum/steps, freqSum/steps, violations, steps, ctrl.Tau())
		}
	}

	// Show the converged greedy policy per application class.
	fmt.Println("\ngreedy V/f choice per application (after training):")
	for _, spec := range fedpower.SPLASH2() {
		probe := fedpower.NewDevice(table, fedpower.DefaultPowerModel(), rand.New(rand.NewSource(99)))
		probe.Load(fedpower.NewApp(spec))
		probe.SetLevel(table.Len() / 2)
		o := probe.Step(interval)
		// One greedy decision from the observed state.
		a := ctrl.GreedyAction(fedpower.StateVector(o, nil))
		probe.SetLevel(a)
		o = probe.Step(interval)
		fmt.Printf("  %-10s -> level %2d (%6.1f MHz), power %.2f W\n",
			spec.Name, a, table.Level(a).FreqMHz, o.PowerW)
	}
}
