package fedpower_test

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"fedpower"
)

func TestSaveLoadModelRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy.fpm")

	table := fedpower.JetsonNanoTable()
	ctrl := fedpower.NewController(fedpower.DefaultControllerParams(table.Len()), rand.New(rand.NewSource(1)))
	params := ctrl.ModelParams()

	if err := fedpower.SaveModel(path, params); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 8+4*687 {
		t.Fatalf("model file is %d bytes, want %d", info.Size(), 8+4*687)
	}

	loaded, err := fedpower.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(params) {
		t.Fatalf("loaded %d params, want %d", len(loaded), len(params))
	}
	for i := range params {
		if math.Abs(loaded[i]-params[i]) > 1e-6*(1+math.Abs(params[i])) {
			t.Fatalf("param %d: %v -> %v", i, params[i], loaded[i])
		}
	}

	// The loaded snapshot drives a controller identically (up to float32
	// quantisation of the weights).
	restored := fedpower.NewController(fedpower.DefaultControllerParams(table.Len()), rand.New(rand.NewSource(2)))
	restored.SetModelParams(loaded)
	state := []float64{0.5, 0.4, 0.6, 0.1, 0.2}
	if restored.GreedyAction(state) != ctrl.GreedyAction(state) {
		t.Fatal("restored controller disagrees with the original")
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	dir := t.TempDir()

	short := filepath.Join(dir, "short.fpm")
	if err := os.WriteFile(short, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fedpower.LoadModel(short); err == nil {
		t.Error("truncated file loaded")
	}

	wrongMagic := filepath.Join(dir, "magic.fpm")
	if err := os.WriteFile(wrongMagic, append([]byte("NOPE"), make([]byte, 8)...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fedpower.LoadModel(wrongMagic); err == nil {
		t.Error("foreign magic loaded")
	}

	truncatedPayload := filepath.Join(dir, "trunc.fpm")
	if err := fedpower.SaveModel(truncatedPayload, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(truncatedPayload)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(truncatedPayload, raw[:len(raw)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fedpower.LoadModel(truncatedPayload); err == nil {
		t.Error("truncated payload loaded")
	}

	if _, err := fedpower.LoadModel(filepath.Join(dir, "missing.fpm")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestSaveModelEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.fpm")
	if err := fedpower.SaveModel(path, nil); err != nil {
		t.Fatal(err)
	}
	loaded, err := fedpower.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 0 {
		t.Fatalf("loaded %d params from an empty model", len(loaded))
	}
}
