#!/usr/bin/env bash
# check.sh — the full verification gate, as run by CI (.github/workflows/ci.yml)
# and the Makefile's `make check`. Every step must pass:
#
#   1. go build        — the module compiles
#   2. go vet          — toolchain static analysis
#   3. fedlint         — repo-native invariants (determinism, wire safety,
#                        float tolerance, goroutine discipline, the privacy
#                        taint boundary, and the effect proofs: allocfree
#                        hot paths, order-independent map folds, own-slot
#                        pool tasks; internal/lint)
#   4. go test         — tier-1 tests, including the fedlint self-check and
#                        the wire-format fuzz seed corpus
#   5. go test -race   — race detector over every package (the federation,
#                        faultnet and experiment tests exercise real
#                        concurrency: quorum rounds with slow/dead clients)
#   6. fuzz smoke      — a short randomized pass (FUZZ_SMOKE seconds per
#                        target, default 10) over the two hostile-input
#                        decoders wirebound proves statically: readMessage
#                        and the relay collect path; the checked-in
#                        regression seeds under internal/fed/testdata/fuzz
#                        always run as part of step 4
#   7. bench compile   — every benchmark body runs once (-benchtime 1x), so
#                        a benchmark that no longer compiles or panics on
#                        its first iteration fails the gate instead of
#                        rotting until the next `make bench`
#   8. determinism     — the resilience tests twice over (fault-injection
#                        schedules and zero-fault TCP runs must replay
#                        bit-identically), the parallel experiment
#                        engine against sequential execution (bit-identical
#                        at every pool width), the codec bit-identity
#                        tests (dense and delta federations — in-process at
#                        widths 1 and 8 and over TCP — must agree bit-for-bit),
#                        the hierarchical-aggregation identity (randomized
#                        in-process trees and 2-/3-level TCP fleets must
#                        reproduce the flat federation bit-for-bit), plus
#                        the batched-kernel identity (ForwardBatch /
#                        BackwardBatch and the batched controller update
#                        must reproduce the scalar kernels bit-for-bit,
#                        including a whole Fig. 3 scenario), and the
#                        parallel-aggregation identity (the server's round
#                        workers at widths 1/2/8, per codec, and the TCP
#                        tree deployment at Parallelism 4 must reproduce
#                        the sequential runs bit-for-bit)
#   9. parallel smoke  — one multi-worker fleet-scale run through the
#                        fedpower CLI (-parallel 4), exercising the whole
#                        parallel aggregation plane end to end
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> fedlint ./..."
# The wall-clock budget (generous: a clean run takes well under a minute,
# most of it go-build cache warmup) turns an accidentally superlinear
# analyzer — the interprocedural taint pass walks every function body in
# the module — into a hard CI failure instead of a slow creep.
FEDLINT_BUDGET="${FEDLINT_BUDGET:-300}"
if command -v timeout >/dev/null 2>&1; then
  time timeout --foreground "$FEDLINT_BUDGET" go run ./cmd/fedlint ./... \
    || { rc=$?; [ "$rc" -eq 124 ] && echo "fedlint exceeded ${FEDLINT_BUDGET}s wall-clock budget" >&2; exit "$rc"; }
else
  time go run ./cmd/fedlint ./...
fi

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

# Randomized complement to the wirebound static proof: the analyzer shows no
# hostile integer reaches an allocation unbounded; the fuzzer hammers the
# same decode paths with mutated frames in case the model missed something.
FUZZ_SMOKE="${FUZZ_SMOKE:-10}"
echo "==> fuzz smoke (${FUZZ_SMOKE}s per wire decode target)"
go test -run '^$' -fuzz 'FuzzReadMessage$' -fuzztime "${FUZZ_SMOKE}s" ./internal/fed/
go test -run '^$' -fuzz 'FuzzRelayFrame$' -fuzztime "${FUZZ_SMOKE}s" ./internal/fed/

# Benchmarks are not compiled by `go test` unless they run; one iteration of
# each keeps the bench suite (and its gated hot paths) from bit-rotting.
echo "==> go test -bench . -benchtime 1x (bench compile smoke)"
go test -run '^$' -bench . -benchtime 1x ./... > /dev/null

echo "==> go test -run 'Resilience|ParallelMatchesSequential|ParallelAggregation|CodecDenseBitIdentical|CodecDeltaBitIdentical|TreeBitIdentical|BatchBitIdentical' -count=2 (determinism replay)"
go test -run 'Resilience|ParallelMatchesSequential|ParallelAggregation|CodecDenseBitIdentical|CodecDeltaBitIdentical|TreeBitIdentical|BatchBitIdentical' -count=2 ./internal/fed/... ./internal/experiment/... ./internal/nn/... ./internal/core/... .

echo "==> fedpower tree -parallel 4 (multi-worker fleet smoke)"
go run ./cmd/fedpower -topology 1x48 -parallel 4 -rounds 2 -codec dense tree

echo "==> all checks passed"
