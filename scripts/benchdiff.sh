#!/usr/bin/env bash
# benchdiff.sh — hot-path benchmark regression gate (`make bench`).
#
# Runs the guarded hot-path benchmarks with -benchmem:
#
#   BenchmarkControlStepLatency — one control decision (the per-interval
#                                 cost on the device, §IV-C)
#   BenchmarkPolicyUpdate       — one mini-batch policy update (the
#                                 training hot path, on the batched kernels)
#   BenchmarkPolicyUpdateBatch  — the same update across batch sizes 32 /
#                                 128 / 512 (the batched kernels' cost
#                                 model); every size is gated
#   BenchmarkReplayAdd          — recording one interaction once the replay
#                                 ring has wrapped; must stay 0 allocs/op
#                                 (Add recycles the evicted state storage)
#   BenchmarkWireEncode/Decode/RoundTrip
#                               — one 687-parameter model frame through the
#                                 federation wire path, per codec; every
#                                 variant is recorded, the dense ones (the
#                                 paper's wire format) are gated
#   BenchmarkTreeAggregate      — one interior-node aggregation step per
#                                 fan-out (2/4/8/16 child subtrees at the
#                                 paper's model size); every fan-out is
#                                 recorded and gated — the relay hot path
#                                 is allocation-free like the wire path
#   BenchmarkServerRound        — one complete federated round (broadcast,
#                                 collect, exact accumulate, mean) over TCP
#                                 loopback with 8 devices, dense and quant8;
#                                 both are gated and must stay 0 allocs/op —
#                                 the persistent round workers and session
#                                 scratch keep the whole plane off the heap
#   BenchmarkEffectAnalysis     — one effect-and-allocation analysis pass
#                                 (allocfree + maporder + slotrace) over
#                                 the module; the static proofs must stay
#                                 cheap enough to run on every test
#   BenchmarkWireBound          — one interval-bounds pass (the wirebound
#                                 hostile-input proof) over the module;
#                                 gated on ns/op like the other analysis
#                                 passes, allocs/op exempt
#
# Each benchmark runs BENCH_COUNT times (default 3) and the *minimum* ns/op
# of the runs is recorded and compared — the minimum is the least noisy
# estimate of a benchmark's true cost on a shared machine, where scheduler
# interference only ever adds time (bytes/op and allocs/op take the maximum,
# the conservative direction for the no-new-allocs rule).
#
# Writes the measurements to BENCH_<date>.json, then compares them against
# the committed BENCH_baseline.json and fails when
#
#   * ns/op regresses by more than BENCH_BUDGET_PCT percent (default 20), or
#   * allocs/op increases at all (the training core is allocation-free;
#     any new allocation in the hot loop is a regression by definition).
#
# Refresh the baseline intentionally by copying a fresh BENCH_<date>.json
# over BENCH_baseline.json in a reviewed commit. On a machine without a
# baseline the script bootstraps one from the current run and succeeds.
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN='BenchmarkControlStepLatency$|BenchmarkPolicyUpdate$|BenchmarkPolicyUpdateBatch$|BenchmarkReplayAdd$|BenchmarkWireEncode$|BenchmarkWireDecode$|BenchmarkWireRoundTrip$|BenchmarkTreeAggregate$|BenchmarkServerRound$|BenchmarkEffectAnalysis$|BenchmarkWireBound$'
BUDGET_PCT="${BENCH_BUDGET_PCT:-20}"
COUNT="${BENCH_COUNT:-3}"
BASELINE="BENCH_baseline.json"
TODAY="$(date +%Y-%m-%d)"
OUT="BENCH_${TODAY}.json"

echo "==> go test -bench '$PATTERN' -benchmem -count $COUNT . ./internal/fed ./internal/lint"
RAW="$(go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "${BENCH_TIME:-1s}" -count "$COUNT" . ./internal/fed ./internal/lint)"
echo "$RAW"

# Render the `go test -bench` table as a small JSON document. Bench lines
# look like:
#   BenchmarkPolicyUpdate-8   13940   87642 ns/op   1 B/op   0 allocs/op
# and, for benchmarks that call SetBytes, carry an extra MB/s column — so
# each value is found by its unit label, not its column position. With
# -count > 1 each benchmark emits one line per run; the runs collapse to
# min ns/op and max bytes/op / allocs/op, in first-seen order.
{
  echo '{'
  echo "  \"date\": \"${TODAY}\","
  echo "  \"go\": \"$(go env GOVERSION)\","
  echo '  "benchmarks": ['
  echo "$RAW" | awk '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      ns = ""; bytes = 0; allocs = 0
      for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        else if ($i == "B/op") bytes = $(i - 1)
        else if ($i == "allocs/op") allocs = $(i - 1)
      }
      if (ns == "") next
      if (!(name in minNs)) {
        order[++n] = name
        minNs[name] = ns; maxBytes[name] = bytes; maxAllocs[name] = allocs
      } else {
        if (ns + 0 < minNs[name] + 0) minNs[name] = ns
        if (bytes + 0 > maxBytes[name] + 0) maxBytes[name] = bytes
        if (allocs + 0 > maxAllocs[name] + 0) maxAllocs[name] = allocs
      }
    }
    END {
      for (i = 1; i <= n; i++) {
        name = order[i]
        printf "%s    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
               sep, name, minNs[name], maxBytes[name], maxAllocs[name]
        sep = ",\n"
      }
      print ""
    }'
  echo '  ]'
  echo '}'
} > "$OUT"
echo "==> wrote $OUT"

# json_field FILE NAME KEY — extract one numeric field of one benchmark
# entry from the flat JSON written above (no jq dependency).
json_field() {
  awk -v n="$2" -v k="$3" '
    index($0, "\"name\": \"" n "\"") {
      if (match($0, "\"" k "\": [0-9.e+-]+")) {
        s = substr($0, RSTART, RLENGTH)
        sub(/.*: /, "", s)
        print s
      }
    }' "$1"
}

if [ ! -f "$BASELINE" ]; then
  echo "==> no $BASELINE found — bootstrapping baseline from this run"
  cp "$OUT" "$BASELINE"
  exit 0
fi

fail=0
for name in BenchmarkControlStepLatency BenchmarkPolicyUpdate \
            BenchmarkPolicyUpdateBatch/batch32 BenchmarkPolicyUpdateBatch/batch128 \
            BenchmarkPolicyUpdateBatch/batch512 BenchmarkReplayAdd \
            BenchmarkWireEncode/dense BenchmarkWireDecode/dense BenchmarkWireRoundTrip/dense \
            BenchmarkTreeAggregate/fanout2 BenchmarkTreeAggregate/fanout4 \
            BenchmarkTreeAggregate/fanout8 BenchmarkTreeAggregate/fanout16 \
            BenchmarkServerRound/dense BenchmarkServerRound/quant8 \
            BenchmarkEffectAnalysis BenchmarkWireBound; do
  cur_ns="$(json_field "$OUT" "$name" ns_per_op)"
  cur_allocs="$(json_field "$OUT" "$name" allocs_per_op)"
  base_ns="$(json_field "$BASELINE" "$name" ns_per_op)"
  base_allocs="$(json_field "$BASELINE" "$name" allocs_per_op)"
  if [ -z "$cur_ns" ] || [ -z "$base_ns" ]; then
    echo "FAIL  $name: missing from current run or baseline"
    fail=1
    continue
  fi
  delta="$(awk -v c="$cur_ns" -v b="$base_ns" 'BEGIN { printf "%+.1f", (c-b)/b*100 }')"
  if awk -v c="$cur_ns" -v b="$base_ns" -v lim="$BUDGET_PCT" \
       'BEGIN { exit !(c > b*(1+lim/100)) }'; then
    echo "FAIL  $name: ${cur_ns} ns/op vs baseline ${base_ns} ns/op (${delta}% > +${BUDGET_PCT}% budget)"
    fail=1
  # The analysis passes allocate in proportion to the module they analyze, so
  # only their wall clock is gated; the zero-alloc rule is for device hot paths.
  elif [ "$name" != BenchmarkEffectAnalysis ] && [ "$name" != BenchmarkWireBound ] && \
       [ "${cur_allocs%.*}" -gt "${base_allocs%.*}" ]; then
    echo "FAIL  $name: ${cur_allocs} allocs/op vs baseline ${base_allocs} allocs/op"
    fail=1
  else
    echo "ok    $name: ${cur_ns} ns/op (${delta}% vs baseline), ${cur_allocs} allocs/op"
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "==> hot-path benchmark regression (budget +${BUDGET_PCT}% ns/op, no new allocs)"
  exit 1
fi
echo "==> benchmarks within budget"
