// Package fedpower is a from-scratch Go implementation of federated power
// control for edge devices, reproducing "Federated Reinforcement Learning
// for Optimizing the Power Efficiency of Edge Devices" (Dietrich,
// Müller-Both, Khdr, Henkel — DATE 2025).
//
// The system trains a neural DVFS policy collaboratively across multiple
// edge devices: each device runs a local reinforcement-learning power
// controller (a contextual bandit with softmax exploration over a reward
// that trades application performance against a soft power constraint), and
// a central server merges the local policies with federated averaging after
// every round. Only model parameters cross device boundaries; raw
// performance-counter and power traces never leave a device.
//
// This package is the public API surface. It re-exports, via type aliases,
// the building blocks implemented in the internal packages:
//
//   - the local power controller (Controller, ControllerParams, Reward),
//   - the simulated edge-device substrate (Device, VFTable, PowerModel)
//     standing in for the paper's Jetson Nano boards,
//   - the SPLASH-2-style workload models (AppSpec, App, Stream),
//   - federated training (FederatedRun, Server, Dial) over an in-process
//     orchestrator or TCP,
//   - the Profit+CollabPolicy baseline, and
//   - one-call experiment runners for every table and figure of the paper
//     (Fig2, Fig3, Fig4, Table3, Fig5, Overhead).
//
// # Quick start
//
//	opts := fedpower.DefaultOptions()
//	opts.Rounds = 30
//	res, err := fedpower.RunFig3(opts)   // local vs federated comparison
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// full system inventory and the paper-to-code experiment index.
package fedpower

import (
	"io"
	"math/rand"

	"fedpower/internal/baseline"
	"fedpower/internal/core"
	"fedpower/internal/experiment"
	"fedpower/internal/fed"
	"fedpower/internal/governor"
	"fedpower/internal/nn"
	"fedpower/internal/replay"
	"fedpower/internal/sim"
	"fedpower/internal/trace"
	"fedpower/internal/workload"
)

// ---------------------------------------------------------------------------
// Local power controller (§III-A, Algorithm 1)

// Controller is the neural power controller: a contextual-bandit RL agent
// whose policy network regresses the expected reward of every V/f level.
type Controller = core.Controller

// ControllerParams collects the controller hyper-parameters (Table I).
type ControllerParams = core.Params

// RewardParams configures the reward signal of Eq. (4): the power
// constraint P_crit and softness band k_offset.
type RewardParams = core.RewardParams

// StateDim is the dimensionality of the agent state (f, P, ipc, mr, mpki).
const StateDim = core.StateDim

// DefaultControllerParams returns the paper's Table I hyper-parameters for
// a processor with the given number of V/f levels.
func DefaultControllerParams(actions int) ControllerParams {
	return core.Defaults(actions)
}

// NewController builds a power controller; rng drives weight initialisation
// and exploration.
func NewController(p ControllerParams, rng *rand.Rand) *Controller {
	return core.NewController(p, rng)
}

// StateVector converts a device observation into the normalised agent
// state. Pass nil for dst to allocate.
func StateVector(obs Observation, dst []float64) []float64 {
	return core.StateVector(obs, dst)
}

// ---------------------------------------------------------------------------
// Simulated edge-device substrate (stands in for the Jetson Nano boards)

// Device is a DVFS-capable simulated processor executing a workload.
type Device = sim.Device

// Observation is one control interval's counter and sensor readings.
type Observation = sim.Observation

// VFTable is an ordered set of voltage/frequency operating points.
type VFTable = sim.VFTable

// VFLevel is one operating point.
type VFLevel = sim.VFLevel

// PowerModel holds the analytic power-model calibration.
type PowerModel = sim.PowerModel

// Demand describes a workload phase's micro-architectural characteristics.
type Demand = sim.Demand

// Workload is the device-side contract an application implements.
type Workload = sim.Workload

// JetsonNanoTable returns the evaluation platform's 15 V/f levels
// (102–1479 MHz).
func JetsonNanoTable() *VFTable { return sim.JetsonNanoTable() }

// NewVFTable builds a custom V/f table.
func NewVFTable(levels []VFLevel) (*VFTable, error) { return sim.NewVFTable(levels) }

// DefaultPowerModel returns the calibrated Jetson-Nano-class power model.
func DefaultPowerModel() PowerModel { return sim.DefaultPowerModel() }

// ThermalModel is the optional lumped-RC die-temperature model with
// leakage feedback (the effect the paper neglects). Attach one to a
// Device's Thermal field to enable it.
type ThermalModel = sim.ThermalModel

// DefaultThermalModel returns a Jetson-Nano-class passive-heatsink thermal
// calibration.
func DefaultThermalModel() *ThermalModel { return sim.DefaultThermalModel() }

// NewDevice builds a simulated device; rng drives measurement noise.
func NewDevice(table *VFTable, pm PowerModel, rng *rand.Rand) *Device {
	return sim.NewDevice(table, pm, rng)
}

// ---------------------------------------------------------------------------
// Workloads

// AppSpec statically describes an application.
type AppSpec = workload.Spec

// AppPhase is one execution phase of an application.
type AppPhase = workload.Phase

// App is a running application instance.
type App = workload.App

// Stream feeds a device an endless shuffled rotation of applications.
type Stream = workload.Stream

// SPLASH2 returns the twelve evaluation applications of §IV.
func SPLASH2() []AppSpec { return workload.SPLASH2() }

// AppByName resolves one SPLASH-2 application spec by name.
func AppByName(name string) (AppSpec, error) { return workload.ByName(name) }

// NewApp instantiates an application spec.
func NewApp(spec AppSpec) *App { return workload.NewApp(spec) }

// NewStream builds a shuffled application rotation.
func NewStream(rng *rand.Rand, specs []AppSpec) *Stream { return workload.NewStream(rng, specs) }

// TraceApp is an application defined by an explicit demand trace — the
// substitution path for profiled production workloads.
type TraceApp = workload.TraceApp

// TraceSegment is one fixed-characteristics piece of a demand trace.
type TraceSegment = workload.Segment

// NewTraceApp builds a trace-driven application from explicit segments.
func NewTraceApp(name string, segments []TraceSegment) (*TraceApp, error) {
	return workload.NewTraceApp(name, segments)
}

// LoadWorkloadTraceCSV reads a demand trace in CSV form (columns: instr,
// base_cpi, mpki, apki, mem_latency_ns, activity).
func LoadWorkloadTraceCSV(name string, r io.Reader) (*TraceApp, error) {
	return workload.LoadTraceCSV(name, r)
}

// WriteWorkloadTraceCSV serialises a trace-driven application's segments.
func WriteWorkloadTraceCSV(w io.Writer, app *TraceApp) error {
	return workload.WriteTraceCSV(w, app)
}

// ---------------------------------------------------------------------------
// Federated learning (§III-B, Algorithm 2)

// FederatedClient is one federated participant.
type FederatedClient = fed.Client

// FederatedClientFunc adapts a function to FederatedClient.
type FederatedClientFunc = fed.ClientFunc

// RoundHook runs after every aggregation round.
type RoundHook = fed.RoundHook

// Server is the TCP aggregation server.
type Server = fed.Server

// Conn is a TCP client connection to the aggregation server.
type Conn = fed.Conn

// FederatedRun executes R rounds of in-process federated averaging.
func FederatedRun(global []float64, clients []FederatedClient, rounds int, hook RoundHook) error {
	return fed.Run(global, clients, rounds, hook)
}

// FederatedRunWeighted is FederatedRun with per-client aggregation weights
// (the original sample-count-weighted FedAvg); the paper's protocol is the
// unweighted special case.
func FederatedRunWeighted(global []float64, clients []FederatedClient, weights []float64, rounds int, hook RoundHook) error {
	return fed.RunWeighted(global, clients, weights, rounds, hook)
}

// FederatedRunSampled is FederatedRun with partial client participation
// per round (the original FedAvg's client-sampling parameter C); the
// paper's protocol is the fraction = 1 special case.
func FederatedRunSampled(global []float64, clients []FederatedClient, fraction float64, rounds int, rng *rand.Rand, hook RoundHook) error {
	return fed.RunSampled(global, clients, fraction, rounds, rng, hook)
}

// TreeNode describes one node of a hierarchical aggregation topology: its
// directly attached leaf devices and its child aggregators.
type TreeNode = fed.TreeNode

// TreeConfig configures FederatedRunTree.
type TreeConfig = fed.TreeConfig

// Uniform builds a balanced topology from per-level fan-outs: Uniform(4, 8)
// is four edge aggregators of eight devices each.
func Uniform(fanouts ...int) *TreeNode { return fed.Uniform(fanouts...) }

// ParseTopology parses an "AxBxC" fan-out spec (the -topology CLI grammar)
// into a balanced tree.
func ParseTopology(s string) (*TreeNode, error) { return fed.ParseTopology(s) }

// FederatedRunTree executes an in-process hierarchical federation over the
// topology's leaf slots. Every aggregation hop is an exact fixed-point sum,
// so any topology over the same clients — including the flat one — yields
// bit-identical parameters every round.
func FederatedRunTree(global []float64, clients []FederatedClient, topo *TreeNode, cfg TreeConfig) error {
	return fed.RunTree(global, clients, topo, cfg)
}

// Aggregator is an interior tree node over TCP: a server to its children
// and a resilient client to its parent, relaying exact sub-sums upward.
type Aggregator = fed.Aggregator

// NewAggregator listens on addr for the given number of children; wire it
// to its parent via the Aggregator fields and call Run.
func NewAggregator(addr string, children int) (*Aggregator, error) {
	return fed.NewAggregator(addr, children)
}

// NewServer starts a TCP aggregation server for a fixed client count and
// round budget.
func NewServer(addr string, numClients, rounds int) (*Server, error) {
	return fed.NewServer(addr, numClients, rounds)
}

// Dial connects a device to the TCP aggregation server.
func Dial(addr string) (*Conn, error) { return fed.Dial(addr) }

// DialID is Dial with an explicit client ID, giving the device a stable
// aggregation slot across reconnects.
func DialID(addr string, id uint32) (*Conn, error) { return fed.DialID(addr, id) }

// RoundError is the structured federation failure: round, phase and client.
type RoundError = fed.RoundError

// Phase identifies where in a federated round an error occurred.
type Phase = fed.Phase

// Backoff is the capped-exponential retry policy used for reconnects.
type Backoff = fed.Backoff

// Participant is the resilient device-side protocol driver: it reconnects
// under Backoff after transport failures and rejoins the federation.
type Participant = fed.Participant

// ClientErrorPolicy selects FederatedRunWithConfig's failure handling.
type ClientErrorPolicy = fed.ClientErrorPolicy

// Client-error policies: abort on the first failure, or drop the failing
// client for the round and continue under quorum.
const (
	FailFast  = fed.FailFast
	DropRound = fed.DropRound
)

// RunConfig configures FederatedRunWithConfig.
type RunConfig = fed.RunConfig

// FederatedRunWithConfig is FederatedRun with the TCP transport's
// quorum/dropout semantics: failing clients can sit a round out and rounds
// commit once Quorum updates survive.
func FederatedRunWithConfig(global []float64, clients []FederatedClient, cfg RunConfig) error {
	return fed.RunWithConfig(global, clients, cfg)
}

// DialRetry dials the aggregation server under the backoff policy.
func DialRetry(addr string, id uint32, b Backoff) (*Conn, error) {
	return fed.DialRetry(addr, id, b)
}

// Codec selects the parameter encoding of the federated wire: dense float32
// (the paper's format and the default), bit-exact delta, or lossy
// int8/int16 quantized delta. The zero value behaves as dense on the wire.
type Codec = fed.Codec

// DenseCodec returns the dense float32 codec — the paper's 2.8 kB/transfer
// wire format.
func DenseCodec() Codec { return fed.DenseCodec() }

// DeltaCodec returns the bit-exact shadow-delta codec: same bytes per
// parameter as dense, identical training results, highly compressible
// payloads.
func DeltaCodec() Codec { return fed.DeltaCodec() }

// QuantCodec returns the stochastic quantized-delta codec (8 or 16 bits per
// parameter), cutting model-bearing wire bytes 4× or 2× versus dense at the
// cost of bounded, error-fed-back quantization noise.
func QuantCodec(bits int, seed int64) (Codec, error) { return fed.QuantCodec(bits, seed) }

// ParseCodec resolves a -codec flag value: "dense", "delta", "quant8" or
// "quant16".
func ParseCodec(name string) (Codec, error) { return fed.ParseCodec(name) }

// DialCodec is DialID with an explicit wire codec, which must match the
// server's.
func DialCodec(addr string, id uint32, codec Codec) (*Conn, error) {
	return fed.DialCodec(addr, id, codec)
}

// FederatedRunCodec is FederatedRun with every exchange passed through the
// parameter codec at the given parallel width, emulating the TCP wire in
// process; dense and delta runs are bit-identical to their TCP
// counterparts.
func FederatedRunCodec(global []float64, clients []FederatedClient, rounds, width int, codec Codec, hook RoundHook) error {
	return fed.RunParallelCodec(global, clients, rounds, width, codec, hook)
}

// TransferSize returns the on-wire bytes of one model transfer for a
// network with n parameters (2748 payload bytes + 9 framing bytes for the
// paper's 687-parameter network).
func TransferSize(n int) int { return fed.TransferSize(n) }

// EncodeModel serialises model parameters as little-endian float32 — the
// wire and at-rest format (2748 B for the paper's 687-parameter network).
func EncodeModel(params []float64) []byte { return nn.EncodeParams(params) }

// DecodeModel deserialises a buffer produced by EncodeModel into dst, whose
// length determines the expected parameter count.
func DecodeModel(dst []float64, buf []byte) error { return nn.DecodeParams(dst, buf) }

// ---------------------------------------------------------------------------
// Baseline (Profit + CollabPolicy, §IV-B)

// Profit is the table-based RL power controller baseline.
type Profit = baseline.Profit

// ProfitParams configures Profit.
type ProfitParams = baseline.ProfitParams

// Collab wraps Profit with CollabPolicy multi-device knowledge sharing.
type Collab = baseline.Collab

// CollabSummary is a device's per-state policy upload.
type CollabSummary = baseline.LocalSummary

// DefaultProfitParams returns the baseline configuration of §IV-B.
func DefaultProfitParams(actions int) ProfitParams { return baseline.DefaultProfitParams(actions) }

// NewProfit builds a Profit agent.
func NewProfit(p ProfitParams, rng *rand.Rand) *Profit { return baseline.NewProfit(p, rng) }

// NewCollab wraps a Profit agent with CollabPolicy.
func NewCollab(local *Profit) *Collab { return baseline.NewCollab(local) }

// CollabAggregate merges device summaries into the next global policy.
func CollabAggregate(summaries []CollabSummary) map[baseline.StateKey]baseline.GlobalEntry {
	return baseline.Aggregate(summaries)
}

// ---------------------------------------------------------------------------
// Replay

// ReplayBuffer is the per-device experience buffer of Algorithm 1.
type ReplayBuffer = replay.Buffer

// NewReplayBuffer builds a buffer with the given capacity.
func NewReplayBuffer(capacity int) *ReplayBuffer { return replay.New(capacity) }

// ---------------------------------------------------------------------------
// Experiments (§IV) — one runner per table/figure

// Options configures an experiment run.
type Options = experiment.Options

// Scenario assigns training applications to devices (Table II).
type Scenario = experiment.Scenario

// ScenarioResult holds one scenario's local/federated evaluation traces.
type ScenarioResult = experiment.ScenarioResult

// Fig2Result is the reward-signal sweep behind Fig. 2.
type Fig2Result = experiment.Fig2Result

// Fig3Result is the local-vs-federated comparison behind Fig. 3.
type Fig3Result = experiment.Fig3Result

// Fig4Result is the frequency-selection trace behind Fig. 4.
type Fig4Result = experiment.Fig4Result

// Table3Result is the state-of-the-art comparison behind Table III.
type Table3Result = experiment.Table3Result

// Fig5Result is the per-application split-half comparison behind Fig. 5.
type Fig5Result = experiment.Fig5Result

// OverheadResult is the runtime-overhead accounting of §IV-C.
type OverheadResult = experiment.OverheadResult

// EvalResult summarises one greedy evaluation episode.
type EvalResult = experiment.EvalResult

// DefaultOptions returns the paper's evaluation configuration.
func DefaultOptions() Options { return experiment.DefaultOptions() }

// TableII returns the paper's three disjunct training scenarios.
func TableII() []Scenario { return experiment.TableII() }

// SplitHalfScenario returns the six-apps-per-device scenario of Fig. 5.
func SplitHalfScenario() Scenario { return experiment.SplitHalf() }

// RunFig2 sweeps the reward function over the V/f levels.
func RunFig2(table *VFTable, rp RewardParams, points int) *Fig2Result {
	return experiment.RunFig2(table, rp, points)
}

// RunFig2Powers sweeps the reward function over an explicit power axis.
func RunFig2Powers(table *VFTable, rp RewardParams, powers []float64) *Fig2Result {
	return experiment.RunFig2Powers(table, rp, powers)
}

// RunScenario trains and evaluates one scenario in both regimes.
func RunScenario(o Options, scIndex int, sc Scenario) (*ScenarioResult, error) {
	return experiment.RunScenario(o, scIndex, sc)
}

// RunFig3 runs all Table II scenarios (local vs federated).
func RunFig3(o Options) (*Fig3Result, error) { return experiment.RunFig3(o) }

// Fig4FromScenario projects a scenario result onto the Fig. 4 series.
func Fig4FromScenario(res *ScenarioResult) (*Fig4Result, error) {
	return experiment.Fig4FromScenario(res)
}

// RoundEval is one per-round evaluation data point of a training trace.
type RoundEval = experiment.RoundEval

// RoundsToReach returns the first round whose trailing full-window mean
// reward reaches the threshold, or -1 — the convergence-speed metric.
func RoundsToReach(evals []RoundEval, threshold float64, window int) int {
	return experiment.RoundsToReach(evals, threshold, window)
}

// RoundsToSustain returns the first round from which the window-mean
// reward stays at or above the threshold for the rest of the trace, or -1.
func RoundsToSustain(evals []RoundEval, threshold float64, window int) int {
	return experiment.RoundsToSustain(evals, threshold, window)
}

// RunTable3 runs the Profit+CollabPolicy comparison over all scenarios.
func RunTable3(o Options) (*Table3Result, error) { return experiment.RunTable3(o) }

// RunFig5 runs the split-half per-application comparison.
func RunFig5(o Options) (*Fig5Result, error) { return experiment.RunFig5(o) }

// RunOverhead measures controller runtime costs on this host.
func RunOverhead(o Options, decisions int) *OverheadResult {
	return experiment.RunOverhead(o, decisions)
}

// ResilienceOptions configures the fault-injected TCP federation scenario.
type ResilienceOptions = experiment.ResilienceOptions

// ResilienceResult reports how far a federation got under faults.
type ResilienceResult = experiment.ResilienceResult

// DefaultResilienceOptions returns a small fault-free resilience scenario.
func DefaultResilienceOptions() ResilienceOptions { return experiment.DefaultResilienceOptions() }

// RunResilience trains a federation over localhost TCP with seeded fault
// injection and reports rounds completed, traffic and final accuracy.
func RunResilience(o ResilienceOptions) (*ResilienceResult, error) {
	return experiment.RunResilience(o)
}

// TreeScaleOptions configures the fleet-scale hierarchical TCP scenario.
type TreeScaleOptions = experiment.TreeScaleOptions

// TreeScaleResult is one topology's capacity measurement.
type TreeScaleResult = experiment.TreeScaleResult

// DefaultTreeScaleOptions returns the 500-device, 3-level fleet scenario.
func DefaultTreeScaleOptions() TreeScaleOptions { return experiment.DefaultTreeScaleOptions() }

// RunTreeScale deploys an aggregation tree over localhost TCP and measures
// round throughput, per-hop traffic and bit-identity to the flat protocol.
func RunTreeScale(o TreeScaleOptions) (*TreeScaleResult, error) {
	return experiment.RunTreeScale(o)
}

// ---------------------------------------------------------------------------
// Classical governors and extension experiments

// Governor is a classical, non-learning DVFS policy (OS governor or
// reactive power capper).
type Governor = governor.Governor

// NewPerformanceGovernor pins the highest V/f level (Linux "performance").
func NewPerformanceGovernor(levels int) Governor { return governor.NewPerformance(levels) }

// NewPowersaveGovernor pins the lowest V/f level (Linux "powersave").
func NewPowersaveGovernor() Governor { return governor.NewPowersave() }

// NewUserspaceGovernor pins a fixed level (Linux "userspace").
func NewUserspaceGovernor(level int) Governor { return governor.NewUserspace(level) }

// NewPowerCapGovernor reacts to budget violations by stepping the
// frequency, with hysteresis.
func NewPowerCapGovernor(levels int, budgetW, headroomW float64) Governor {
	return governor.NewPowerCap(levels, budgetW, headroomW)
}

// StandardGovernors returns the classical comparator set.
func StandardGovernors(levels int, budgetW float64) []Governor {
	return governor.Standard(levels, budgetW)
}

// GovernorsResult compares the learned policy against the classical
// governors.
type GovernorsResult = experiment.GovernorsResult

// HeteroResult is the heterogeneous-budget extension outcome.
type HeteroResult = experiment.HeteroResult

// BudgetEval summarises one policy under one power budget.
type BudgetEval = experiment.BudgetEval

// RunGovernors trains the federated policy and evaluates it against the
// classical governor set on every application.
func RunGovernors(o Options) (*GovernorsResult, error) { return experiment.RunGovernors(o) }

// RunHeterogeneous probes the paper's future-work direction: devices train
// under different power budgets and the shared policy is evaluated under
// each.
func RunHeterogeneous(o Options, budgets []float64) (*HeteroResult, error) {
	return experiment.RunHeterogeneous(o, budgets)
}

// PrivacyResult compares local-only, federated and server-side (raw-trace)
// training architectures on reward and communication/privacy cost.
type PrivacyResult = experiment.PrivacyResult

// ArchEval is one architecture's outcome in the privacy comparison.
type ArchEval = experiment.ArchEval

// CentralTrainer is the server-side learning architecture of the paper's
// reference [7]: devices upload raw interaction samples, one central model
// is trained on the merged stream.
type CentralTrainer = baseline.CentralTrainer

// NewCentralTrainer builds a server-side trainer with controller
// hyper-parameters p.
func NewCentralTrainer(p ControllerParams, rng *rand.Rand) *CentralTrainer {
	return baseline.NewCentralTrainer(p, rng)
}

// RunPrivacy trains the split-half scenario under all three architectures
// and reports reward vs bytes of raw trace data exposed.
func RunPrivacy(o Options) (*PrivacyResult, error) { return experiment.RunPrivacy(o) }

// MultiCoreDevice simulates a CPU cluster with a shared clock, one workload
// per core.
type MultiCoreDevice = sim.MultiCoreDevice

// NewMultiCoreDevice builds a cluster with the given core count.
func NewMultiCoreDevice(table *VFTable, pm PowerModel, cores int, rng *rand.Rand) *MultiCoreDevice {
	return sim.NewMultiCoreDevice(table, pm, cores, rng)
}

// MultiCoreResult is the multi-core extension's outcome.
type MultiCoreResult = experiment.MultiCoreResult

// RunMultiCore trains and evaluates on two 4-core clusters with concurrent
// per-core workloads under a cluster-level budget.
func RunMultiCore(o Options) (*MultiCoreResult, error) { return experiment.RunMultiCore(o) }

// Replication holds per-seed outcomes of repeated Fig. 3 comparisons.
type Replication = experiment.Replication

// RunReplication repeats the local-vs-federated comparison across seeds.
func RunReplication(o Options, seeds []int64) (*Replication, error) {
	return experiment.RunReplication(o, seeds)
}

// DefaultReplicationSeeds returns n distinct seeds derived from base.
func DefaultReplicationSeeds(base int64, n int) []int64 {
	return experiment.DefaultReplicationSeeds(base, n)
}

// SweepPoint is one configuration in a hyper-parameter sensitivity sweep.
type SweepPoint = experiment.SweepPoint

// SweepResult pairs sweep labels with federated evaluation rewards.
type SweepResult = experiment.SweepResult

// RunSweep trains scenario 2 under each sweep point and evaluates.
func RunSweep(o Options, dimension string, points []SweepPoint) (*SweepResult, error) {
	return experiment.RunSweep(o, dimension, points)
}

// LearningRateSweep, TauDecaySweep, BatchSizeSweep and HiddenWidthSweep
// build canonical sweeps around the paper's Table I values.
func LearningRateSweep(rates ...float64) []SweepPoint { return experiment.LearningRateSweep(rates...) }

// TauDecaySweep sweeps the temperature decay.
func TauDecaySweep(decays ...float64) []SweepPoint { return experiment.TauDecaySweep(decays...) }

// BatchSizeSweep sweeps the mini-batch size.
func BatchSizeSweep(sizes ...int) []SweepPoint { return experiment.BatchSizeSweep(sizes...) }

// HiddenWidthSweep sweeps the hidden-layer width.
func HiddenWidthSweep(widths ...int) []SweepPoint { return experiment.HiddenWidthSweep(widths...) }

// ---------------------------------------------------------------------------
// Execution traces

// TraceEntry is one recorded control interval.
type TraceEntry = trace.Entry

// TraceRecorder receives trace entries.
type TraceRecorder = trace.Recorder

// NewCSVTraceRecorder records a trace as CSV.
func NewCSVTraceRecorder(w io.Writer) TraceRecorder { return trace.NewCSVRecorder(w) }

// NewJSONLTraceRecorder records a trace as JSON Lines.
func NewJSONLTraceRecorder(w io.Writer) TraceRecorder { return trace.NewJSONLRecorder(w) }

// ReadCSVTrace parses a CSV trace.
func ReadCSVTrace(r io.Reader) ([]TraceEntry, error) { return trace.ReadCSV(r) }

// ReadJSONLTrace parses a JSON Lines trace.
func ReadJSONLTrace(r io.Reader) ([]TraceEntry, error) { return trace.ReadJSONL(r) }

// RecordEpisode trains the federated policy, then records one greedy
// run-to-completion episode of the named application.
func RecordEpisode(o Options, appName string, rec TraceRecorder) (int, error) {
	return experiment.RecordEpisode(o, appName, rec)
}

// ---------------------------------------------------------------------------
// CSV export

// WriteFig2CSV dumps the Fig. 2 reward grid as CSV.
func WriteFig2CSV(w io.Writer, res *Fig2Result) error { return experiment.WriteFig2CSV(w, res) }

// WriteFig3CSV dumps the Fig. 3 reward traces as CSV.
func WriteFig3CSV(w io.Writer, res *Fig3Result) error { return experiment.WriteFig3CSV(w, res) }

// WriteFig4CSV dumps the Fig. 4 frequency traces as CSV.
func WriteFig4CSV(w io.Writer, res *Fig4Result) error { return experiment.WriteFig4CSV(w, res) }

// WriteTable3CSV dumps the Table III comparison as CSV.
func WriteTable3CSV(w io.Writer, res *Table3Result) error { return experiment.WriteTable3CSV(w, res) }

// WriteFig5CSV dumps the Fig. 5 per-application comparison as CSV.
func WriteFig5CSV(w io.Writer, res *Fig5Result) error { return experiment.WriteFig5CSV(w, res) }

// WriteGovernorsCSV dumps the governor comparison as CSV.
func WriteGovernorsCSV(w io.Writer, res *GovernorsResult) error {
	return experiment.WriteGovernorsCSV(w, res)
}

// WriteHeteroCSV dumps the heterogeneous-budget results as CSV.
func WriteHeteroCSV(w io.Writer, res *HeteroResult) error { return experiment.WriteHeteroCSV(w, res) }

// WritePrivacyCSV dumps the privacy/communication comparison as CSV.
func WritePrivacyCSV(w io.Writer, res *PrivacyResult) error {
	return experiment.WritePrivacyCSV(w, res)
}

// WriteMultiCoreCSV dumps the multi-core extension traces as CSV.
func WriteMultiCoreCSV(w io.Writer, res *MultiCoreResult) error {
	return experiment.WriteMultiCoreCSV(w, res)
}
