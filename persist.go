package fedpower

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
)

// Model files use the same float32 representation as the federated wire
// format, prefixed with a small validated header so that loading a
// truncated or foreign file fails loudly instead of yielding garbage
// weights:
//
//	offset 0: magic "FPM1" (4 bytes)
//	offset 4: parameter count (uint32, little-endian)
//	offset 8: parameters (count × float32, little-endian)

var modelMagic = [4]byte{'F', 'P', 'M', '1'}

// SaveModel writes a policy-model parameter vector to path. The paper's
// 687-parameter network produces a 2756-byte file.
func SaveModel(path string, params []float64) error {
	var buf bytes.Buffer
	buf.Write(modelMagic[:])
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(params)))
	buf.Write(cnt[:])
	buf.Write(EncodeModel(params))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("fedpower: save model: %w", err)
	}
	return nil
}

// LoadModel reads a model file written by SaveModel and returns the
// parameter vector.
func LoadModel(path string) ([]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fedpower: load model: %w", err)
	}
	if len(raw) < 8 {
		return nil, fmt.Errorf("fedpower: model file %s too short (%d bytes)", path, len(raw))
	}
	if !bytes.Equal(raw[:4], modelMagic[:]) {
		return nil, fmt.Errorf("fedpower: %s is not a fedpower model file", path)
	}
	count := int(binary.LittleEndian.Uint32(raw[4:8]))
	payload := raw[8:]
	params := make([]float64, count)
	if err := DecodeModel(params, payload); err != nil {
		return nil, fmt.Errorf("fedpower: model file %s: %w", path, err)
	}
	return params, nil
}
