package nn

import (
	"math"
	"testing"
)

func TestSGDStep(t *testing.T) {
	opt := NewSGD(0.1)
	params := []float64{1, 2}
	opt.Step(params, []float64{10, -10})
	if params[0] != 0 || params[1] != 3 {
		t.Fatalf("SGD step: %v, want [0 3]", params)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	opt := &SGD{LR: 0.1, Momentum: 0.9}
	params := []float64{0}
	opt.Step(params, []float64{1}) // v=1, p=-0.1
	opt.Step(params, []float64{1}) // v=1.9, p=-0.29
	if math.Abs(params[0]+0.29) > 1e-12 {
		t.Fatalf("momentum step: %v, want -0.29", params[0])
	}
}

func TestSGDReset(t *testing.T) {
	opt := &SGD{LR: 0.1, Momentum: 0.9}
	params := []float64{0}
	opt.Step(params, []float64{1})
	opt.Reset()
	params[0] = 0
	opt.Step(params, []float64{1})
	if math.Abs(params[0]+0.1) > 1e-12 {
		t.Fatalf("after reset: %v, want -0.1 (no residual velocity)", params[0])
	}
}

func TestSGDLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SGD.Step length mismatch did not panic")
		}
	}()
	NewSGD(0.1).Step([]float64{1}, []float64{1, 2})
}

func TestAdamFirstStepMagnitude(t *testing.T) {
	// With bias correction, the first Adam step has magnitude ≈ lr for any
	// non-zero gradient.
	opt := NewAdam(0.01)
	params := []float64{5}
	opt.Step(params, []float64{123})
	if math.Abs((5-params[0])-0.01) > 1e-6 {
		t.Fatalf("first Adam step moved %v, want ~0.01", 5-params[0])
	}
	// ... and points against the gradient sign.
	opt2 := NewAdam(0.01)
	params2 := []float64{5}
	opt2.Step(params2, []float64{-123})
	if params2[0] <= 5 {
		t.Fatalf("Adam moved with the gradient, not against it")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimise f(x) = (x - 3)²; gradient 2(x-3).
	opt := NewAdam(0.1)
	params := []float64{-4}
	for i := 0; i < 500; i++ {
		opt.Step(params, []float64{2 * (params[0] - 3)})
	}
	if math.Abs(params[0]-3) > 0.01 {
		t.Fatalf("Adam did not converge: x = %v, want 3", params[0])
	}
}

func TestAdamReset(t *testing.T) {
	opt := NewAdam(0.01)
	a := []float64{1}
	opt.Step(a, []float64{1})
	firstMove := 1 - a[0]
	opt.Reset()
	b := []float64{1}
	opt.Step(b, []float64{1})
	if math.Abs((1-b[0])-firstMove) > 1e-12 {
		t.Fatalf("reset Adam first step %v != fresh first step %v", 1-b[0], firstMove)
	}
}

func TestAdamLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Adam.Step length mismatch did not panic")
		}
	}()
	NewAdam(0.01).Step([]float64{1, 2}, []float64{1})
}

func TestAdamDefaults(t *testing.T) {
	opt := NewAdam(0.005)
	if opt.Beta1 != 0.9 || opt.Beta2 != 0.999 || opt.Eps != 1e-8 {
		t.Fatalf("Adam defaults: β1=%v β2=%v ε=%v", opt.Beta1, opt.Beta2, opt.Eps)
	}
	if opt.LR != 0.005 {
		t.Fatalf("Adam LR = %v, want 0.005 (Table I)", opt.LR)
	}
}

func TestTrainNetworkOnRegression(t *testing.T) {
	// End-to-end: a 1-8-1 network trained with Adam should fit y = 2x - 1
	// on [0, 1] to small error.
	rng := newTestRand()
	n := New(rng, 1, 8, 1)
	opt := NewAdam(0.01)
	grad := make([]float64, n.NumParams())
	for epoch := 0; epoch < 3000; epoch++ {
		x := rng.Float64()
		y := 2*x - 1
		out := n.Forward([]float64{x})
		_, g := SquaredError(out[0], y)
		for i := range grad {
			grad[i] = 0
		}
		n.Backward([]float64{g}, grad)
		opt.Step(n.Params(), grad)
	}
	worst := 0.0
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := n.Forward([]float64{x})[0]
		want := 2*x - 1
		if d := math.Abs(got - want); d > worst {
			worst = d
		}
	}
	if worst > 0.1 {
		t.Fatalf("regression fit worst-case error %v, want < 0.1", worst)
	}
}
