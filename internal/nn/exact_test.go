package nn

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// bigSum computes the exact sum of vs with math/big at a precision wide
// enough (the accumulator window itself is 2176 bits) that no rounding
// occurs, then rounds once to float64 nearest-even — the reference reading
// Accum.Round must reproduce.
func bigSum(vs []float64) float64 {
	sum := new(big.Float).SetPrec(2400)
	t := new(big.Float).SetPrec(2400)
	for _, v := range vs {
		t.SetFloat64(v)
		sum.Add(sum, t)
	}
	f, _ := sum.Float64()
	return f
}

// randFinite draws a float64 from the full bit-pattern space, redrawing
// non-finite values: every exponent — subnormals included — and both signs
// are reachable, which is a far harsher distribution than training ever
// produces.
func randFinite(rng *rand.Rand) float64 {
	for {
		v := math.Float64frombits(rng.Uint64())
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			return v
		}
	}
}

func TestAccumMatchesBigFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(40)
		vs := make([]float64, n)
		for i := range vs {
			switch rng.Intn(4) {
			case 0:
				// Same-magnitude cancellation pressure.
				vs[i] = float64(rng.Intn(2000)-1000) * math.Ldexp(1, rng.Intn(40)-20)
			case 1:
				// Subnormal and near-subnormal values.
				vs[i] = math.Float64frombits(uint64(rng.Int63n(1 << 54)))
				if rng.Intn(2) == 0 {
					vs[i] = -vs[i]
				}
			default:
				vs[i] = randFinite(rng)
			}
		}
		var a Accum
		for _, v := range vs {
			a.Add(v)
		}
		got, want := a.Round(), bigSum(vs)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: Accum sum %x (%v), big.Float sum %x (%v), inputs %v",
				trial, math.Float64bits(got), got, math.Float64bits(want), want, vs)
		}
	}
}

func TestAccumSingleValueIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []float64{0, math.Copysign(0, -1), 1, -1, math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64, 0x1p-1022, 0x1.fffffffffffffp-1023}
	for i := 0; i < 2000; i++ {
		cases = append(cases, randFinite(rng))
	}
	for _, v := range cases {
		var a Accum
		a.Add(v)
		got := a.Round()
		// -0 reads back as +0: an empty/cancelled sum has no sign.
		want := v + 0
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Add(%x)=%v rounds to %x (%v)", math.Float64bits(v), v, math.Float64bits(got), got)
		}
	}
}

// TestAccumGroupingInvariance is the property the hierarchical federation
// stands on: any partition of the summands into subtrees, each summed into
// its own accumulator and then merged, reads back identically to the flat
// accumulation — and identically to exact big.Float arithmetic.
func TestAccumGroupingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(60)
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = randFinite(rng)
		}
		var flat Accum
		for _, v := range vs {
			flat.Add(v)
		}
		// Random partition into groups, each group summed separately, merged
		// in shuffled order.
		groups := 1 + rng.Intn(6)
		parts := make([]Accum, groups)
		for _, v := range vs {
			parts[rng.Intn(groups)].Add(v)
		}
		order := rng.Perm(groups)
		var tree Accum
		for _, g := range order {
			tree.AddAccum(&parts[g])
		}
		if got, want := tree.Round(), flat.Round(); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: grouped sum %v != flat sum %v", trial, got, want)
		}
		if got, want := tree.Round(), bigSum(vs); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: grouped sum %v != big.Float sum %v", trial, got, want)
		}
	}
}

func TestAccumOverflowAndNonFinite(t *testing.T) {
	var a Accum
	for i := 0; i < 4; i++ {
		a.Add(math.MaxFloat64)
	}
	if got := a.Round(); !math.IsInf(got, 1) {
		t.Fatalf("4×MaxFloat64 rounds to %v, want +Inf", got)
	}
	a.Add(-math.MaxFloat64)
	a.Add(-math.MaxFloat64)
	a.Add(-math.MaxFloat64)
	if got := a.Round(); got != 2*0x1.fffffffffffffp+1022 {
		// 4·M − 3·M = M exactly... but M is MaxFloat64 itself; check via big.
		want := bigSum([]float64{math.MaxFloat64, math.MaxFloat64, math.MaxFloat64, math.MaxFloat64,
			-math.MaxFloat64, -math.MaxFloat64, -math.MaxFloat64})
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("overflow cancellation reads %v, want %v", got, want)
		}
	}

	cases := []struct {
		name string
		vs   []float64
		want float64
	}{
		{"nan", []float64{1, math.NaN(), 2}, math.NaN()},
		{"posinf", []float64{1, math.Inf(1)}, math.Inf(1)},
		{"neginf", []float64{math.Inf(-1), 5}, math.Inf(-1)},
		{"bothinf", []float64{math.Inf(1), math.Inf(-1)}, math.NaN()},
	}
	for _, c := range cases {
		var b Accum
		for _, v := range c.vs {
			b.Add(v)
		}
		got := b.Round()
		if math.IsNaN(c.want) != math.IsNaN(got) || (!math.IsNaN(c.want) && got != c.want) {
			t.Fatalf("%s: Round()=%v, want %v", c.name, got, c.want)
		}
	}
}

func TestAccumWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		var a Accum
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			switch rng.Intn(10) {
			case 0:
				a.Add(math.NaN())
			case 1:
				a.Add(math.Inf(1 - 2*rng.Intn(2)))
			default:
				a.Add(randFinite(rng))
			}
		}
		enc := a.AppendWire(nil)
		if len(enc) > MaxAccumWire {
			t.Fatalf("trial %d: encoding is %d bytes, max %d", trial, len(enc), MaxAccumWire)
		}
		var b Accum
		b.Add(12345) // must be overwritten
		got, err := DecodeAccumInto(&b, enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if got != len(enc) {
			t.Fatalf("trial %d: decoded %d of %d bytes", trial, got, len(enc))
		}
		if a != b {
			t.Fatalf("trial %d: wire round-trip changed the accumulator:\n%+v\n%+v", trial, a, b)
		}
		// Trailing bytes must be left unconsumed, not absorbed.
		got, err = DecodeAccumInto(&b, append(enc, 0xee, 0xff))
		if err != nil || got != len(enc) {
			t.Fatalf("trial %d: decode with trailing bytes consumed %d (%v)", trial, got, err)
		}
	}
}

func TestDecodeAccumIntoRejectsCorrupt(t *testing.T) {
	var a Accum
	a.Add(1.5)
	a.Add(math.NaN())
	enc := a.AppendWire(nil)
	var b Accum
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeAccumInto(&b, enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", cut)
		}
	}
	// Span length exceeding the window.
	if _, err := DecodeAccumInto(&b, []byte{35}); err == nil {
		t.Fatal("span 35 accepted")
	}
	// Origin pushing the span past the top limb.
	bad := []byte{2, 33, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1}
	if _, err := DecodeAccumInto(&b, bad); err == nil {
		t.Fatal("out-of-range span origin accepted")
	}
}

func TestAccumHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const dim = 17
	vecs := make([][]float64, 9)
	for i := range vecs {
		vecs[i] = make([]float64, dim)
		for j := range vecs[i] {
			vecs[i][j] = randFinite(rng)
		}
	}
	// Flat reference through AverageParams.
	want := make([]float64, dim)
	AverageParams(want, vecs...)

	// Tree: two uneven subtrees, each an accumulator vector, merged.
	left := make([]Accum, dim)
	right := make([]Accum, dim)
	for i, v := range vecs {
		if i < 3 {
			AddParamsAccum(left, v)
		} else {
			AddParamsAccum(right, v)
		}
	}
	MergeAccum(left, right)
	got := make([]float64, dim)
	MeanAccum(got, left, len(vecs))
	for j := range want {
		if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
			t.Fatalf("param %d: tree mean %v != flat mean %v", j, got[j], want[j])
		}
	}

	var zero Accum
	if !zero.IsZero() {
		t.Fatal("zero value not IsZero")
	}
	zero.Add(1)
	zero.Add(-1)
	if !zero.IsZero() {
		t.Fatal("exactly cancelled sum not IsZero")
	}
	zero.Add(math.NaN())
	if zero.IsZero() {
		t.Fatal("NaN tally reported IsZero")
	}
}

// TestAverageParamsOrderInvariant pins the new contract of AverageParams
// directly: shuffling the sources never changes a single output bit.
func TestAverageParamsOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const dim = 33
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(12)
		srcs := make([][]float64, n)
		for i := range srcs {
			srcs[i] = make([]float64, dim)
			for j := range srcs[i] {
				srcs[i][j] = randFinite(rng)
			}
		}
		a := make([]float64, dim)
		b := make([]float64, dim)
		AverageParams(a, srcs...)
		perm := rng.Perm(n)
		shuffled := make([][]float64, n)
		for i, p := range perm {
			shuffled[i] = srcs[p]
		}
		AverageParams(b, shuffled...)
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Fatalf("trial %d param %d: %v != %v after shuffle", trial, j, a[j], b[j])
			}
		}
	}
}
