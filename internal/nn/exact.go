package nn

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Exact parameter accumulation. Floating-point addition is not associative,
// so the value of a naive Σ θ_n depends on the order — and, worse, on the
// grouping — of the additions. A flat federation sums its clients in one
// stable order, but a hierarchical one sums each subtree first and then sums
// the subtree results: a different grouping, hence (under naive float64
// arithmetic) a different last-ulp result every time the topology changes.
//
// Accum removes the order dependence instead of pinning it: it is a
// fixed-point superaccumulator (after Kulisch) wide enough to hold the sum
// of billions of float64 values with NO rounding at all. Adding a float64 is
// exact, merging two accumulators is exact, and therefore the accumulated
// value — and its correctly-rounded float64 reading — is a function of the
// multiset of summands only. Any tree of partial sums over any topology
// produces bit-identical results to the flat sum, which is the foundation of
// the hierarchical federation's bit-identity guarantee (fed.RunTree,
// fed.Aggregator) and of AverageParams below.
//
// Layout: 34 little-endian uint64 limbs interpreted as one 2176-bit two's
// complement fixed-point integer in units of 2^-1088. Bit index i carries
// weight 2^(i-1088): the lowest finite float64 bit (2^-1074, a subnormal's
// LSB) sits at index 14, the highest (2^1023) at index 2111, leaving 64 bits
// of carry headroom — ~2^63 max-magnitude summands — before the sign bit.
// Non-finite summands cannot be represented in fixed point; they are tallied
// separately and resolved by Round with IEEE semantics (any NaN, or both
// infinity signs, poisons the sum to NaN).

const (
	// accLimbs is the number of 64-bit limbs in the fixed-point window.
	accLimbs = 34
	// accOffset is the bias between bit index and binary weight: bit i
	// weighs 2^(i-accOffset).
	accOffset = 1088
	// accSubLSB is the bit index of 2^-1074, the smallest nonzero float64
	// magnitude. Every finite summand's mantissa lands at or above it, so
	// bits below accSubLSB are always zero and subnormal readings are exact.
	accSubLSB = 14
)

// MaxAccumWire is the largest wire encoding of one Accum in bytes: the flag
// byte, the non-finite tallies, the span origin and a full-width limb span.
// fed uses it to bound hostile relay-frame allocations.
const MaxAccumWire = 1 + 12 + 1 + 8*accLimbs

// Accum is an exact accumulator for float64 sums: order- and
// grouping-invariant by construction. The zero value is an empty sum. Accum
// is a value type — assignment copies the sum — but the methods take
// pointers; do not copy an Accum concurrently with writes.
type Accum struct {
	limb [accLimbs]uint64
	// Non-finite tallies, merged additively so they too are
	// order-invariant. uint32 bounds fleets at 4 G summands of each kind,
	// the same order as the fixed-point headroom.
	nan, posInf, negInf uint32
}

// Reset empties the accumulator.
func (a *Accum) Reset() { *a = Accum{} }

// IsZero reports whether the accumulator holds an empty (or exactly
// cancelled) finite sum with no non-finite tallies.
func (a *Accum) IsZero() bool {
	if a.nan != 0 || a.posInf != 0 || a.negInf != 0 {
		return false
	}
	for _, l := range a.limb {
		if l != 0 {
			return false
		}
	}
	return true
}

// Add adds v to the sum, exactly.
func (a *Accum) Add(v float64) {
	b := math.Float64bits(v)
	exp := int(b >> 52 & 0x7ff)
	frac := b & (1<<52 - 1)
	if exp == 0x7ff {
		switch {
		case frac != 0:
			a.nan++
		case b>>63 != 0:
			a.negInf++
		default:
			a.posInf++
		}
		return
	}
	m := frac
	e := exp
	if exp != 0 {
		m |= 1 << 52
	} else {
		e = 1 // subnormals share the E=1 weight 2^-1074 for their LSB
	}
	if m == 0 {
		return // ±0 contributes nothing (the sum's sign of zero is +0)
	}
	// The mantissa's LSB has weight 2^(e-1075); place it at bit index s.
	s := e - 1075 + accOffset
	li, off := s>>6, uint(s&63)
	lo := m << off
	var hi uint64
	if off != 0 {
		hi = m >> (64 - off)
	}
	if b>>63 == 0 {
		a.addAt(li, lo, hi)
	} else {
		a.subAt(li, lo, hi)
	}
}

// addAt adds the two-limb quantity (lo, hi) at limb index li, propagating
// the carry. A carry off the top limb wraps mod 2^2176, which is the two's
// complement behaviour negative partial sums rely on.
func (a *Accum) addAt(li int, lo, hi uint64) {
	var c uint64
	a.limb[li], c = bits.Add64(a.limb[li], lo, 0)
	a.limb[li+1], c = bits.Add64(a.limb[li+1], hi, c)
	for i := li + 2; c != 0 && i < accLimbs; i++ {
		a.limb[i], c = bits.Add64(a.limb[i], 0, c)
	}
}

// subAt subtracts the two-limb quantity (lo, hi) at limb index li,
// propagating the borrow.
func (a *Accum) subAt(li int, lo, hi uint64) {
	var bw uint64
	a.limb[li], bw = bits.Sub64(a.limb[li], lo, 0)
	a.limb[li+1], bw = bits.Sub64(a.limb[li+1], hi, bw)
	for i := li + 2; bw != 0 && i < accLimbs; i++ {
		a.limb[i], bw = bits.Sub64(a.limb[i], 0, bw)
	}
}

// AddAccum merges another accumulator into this one, exactly: afterwards a
// holds the sum of both multisets. This is the tree-aggregation step — a
// parent absorbing a subtree's partial sum.
func (a *Accum) AddAccum(b *Accum) {
	var c uint64
	for i := range a.limb {
		a.limb[i], c = bits.Add64(a.limb[i], b.limb[i], c)
	}
	a.nan += b.nan
	a.posInf += b.posInf
	a.negInf += b.negInf
}

// negate replaces the fixed-point window with its two's complement.
func (a *Accum) negate() {
	var c uint64 = 1
	for i := range a.limb {
		a.limb[i], c = bits.Add64(^a.limb[i], 0, c)
	}
}

// window returns the 64 bits starting at bit index from (little-endian
// across limbs).
func (a *Accum) window(from int) uint64 {
	li, off := from>>6, uint(from&63)
	w := a.limb[li] >> off
	if off != 0 && li+1 < accLimbs {
		w |= a.limb[li+1] << (64 - off)
	}
	return w
}

// anyBelow reports whether any bit with index < n is set — the sticky bit of
// the rounding step.
func (a *Accum) anyBelow(n int) bool {
	if n <= 0 {
		return false
	}
	li, off := n>>6, uint(n&63)
	for i := 0; i < li; i++ {
		if a.limb[i] != 0 {
			return true
		}
	}
	return off != 0 && li < accLimbs && a.limb[li]<<(64-off) != 0
}

// Round returns the sum as a float64, correctly rounded to nearest (ties to
// even) — the unique reading of the exact value, independent of how the sum
// was ordered or grouped. Non-finite tallies resolve first: any NaN summand,
// or infinities of both signs, yields NaN; otherwise a lone infinity sign
// wins. A sum whose magnitude exceeds the float64 range rounds to ±Inf and a
// tiny one to a subnormal (exactly — subnormal grids are coarser than the
// accumulator's, never finer).
func (a *Accum) Round() float64 {
	if a.nan > 0 || (a.posInf > 0 && a.negInf > 0) {
		return math.NaN()
	}
	if a.posInf > 0 {
		return math.Inf(1)
	}
	if a.negInf > 0 {
		return math.Inf(-1)
	}
	m := *a
	neg := m.limb[accLimbs-1]>>63 != 0
	if neg {
		m.negate()
	}
	h := accLimbs - 1
	for h >= 0 && m.limb[h] == 0 {
		h--
	}
	if h < 0 {
		return 0
	}
	msb := 64*h + bits.Len64(m.limb[h]) - 1 // highest set bit index
	lsb := msb - 52                         // 53-bit normal mantissa window
	if msb < accSubLSB+52 {
		lsb = accSubLSB // subnormal result: fixed grid at 2^-1074
	}
	mant := m.window(lsb)
	if w := msb - lsb + 1; w < 64 {
		mant &= 1<<uint(w) - 1
	}
	if g := m.window(lsb-1) & 1; g == 1 && (mant&1 == 1 || m.anyBelow(lsb-1)) {
		// Round up; a mantissa overflow to 2^53 stays exactly representable,
		// so no renormalisation is needed.
		mant++
	}
	v := math.Ldexp(float64(mant), lsb-accOffset)
	if neg {
		v = -v
	}
	return v
}

// Wire encoding flag bits (see AppendWire).
const (
	accFlagNeg       = 1 << 7 // fixed-point value is negative (magnitude follows)
	accFlagNonFinite = 1 << 6 // 12 bytes of non-finite tallies follow the flag
	accSpanMask      = 0x3f   // low bits: number of magnitude limbs encoded
)

// AppendWire appends the accumulator's wire encoding to dst and returns the
// extended slice. The encoding is canonical and compact: one flag byte
// (sign, non-finite marker, magnitude span length), optional non-finite
// tallies, then the trimmed little-endian limb span of the magnitude with
// its origin index. Parameters of similar magnitude span 2–3 limbs, so a
// typical encoded sum costs ~20–30 bytes — the price of shipping a subtree's
// sum with nothing rounded away. At most MaxAccumWire bytes are appended.
func (a *Accum) AppendWire(dst []byte) []byte {
	m := *a
	var flags byte
	if m.limb[accLimbs-1]>>63 != 0 {
		flags |= accFlagNeg
		m.negate()
	}
	lo, hi := 0, accLimbs-1
	for lo < accLimbs && m.limb[lo] == 0 {
		lo++
	}
	for hi >= lo && m.limb[hi] == 0 {
		hi--
	}
	span := 0
	if lo <= hi {
		span = hi - lo + 1
	}
	flags |= byte(span)
	if a.nan != 0 || a.posInf != 0 || a.negInf != 0 {
		flags |= accFlagNonFinite
	}
	dst = append(dst, flags)
	if flags&accFlagNonFinite != 0 {
		dst = binary.LittleEndian.AppendUint32(dst, a.nan)
		dst = binary.LittleEndian.AppendUint32(dst, a.posInf)
		dst = binary.LittleEndian.AppendUint32(dst, a.negInf)
	}
	if span > 0 {
		dst = append(dst, byte(lo))
		for i := lo; i <= hi; i++ {
			dst = binary.LittleEndian.AppendUint64(dst, m.limb[i])
		}
	}
	return dst
}

// DecodeAccumInto decodes one AppendWire encoding from the front of src into
// a (overwriting it) and returns the number of bytes consumed. Any
// structurally complete encoding decodes — the decoder is total over
// corrupted spans so a hostile peer can force an error, never a panic or an
// oversized allocation.
func DecodeAccumInto(a *Accum, src []byte) (int, error) {
	if len(src) < 1 {
		return 0, fmt.Errorf("nn: accumulator encoding empty")
	}
	flags := src[0]
	span := int(flags & accSpanMask)
	if span > accLimbs {
		return 0, fmt.Errorf("nn: accumulator span %d exceeds %d limbs", span, accLimbs)
	}
	n := 1
	a.Reset()
	if flags&accFlagNonFinite != 0 {
		if len(src) < n+12 {
			return 0, fmt.Errorf("nn: accumulator encoding truncated in tallies")
		}
		a.nan = binary.LittleEndian.Uint32(src[n:])
		a.posInf = binary.LittleEndian.Uint32(src[n+4:])
		a.negInf = binary.LittleEndian.Uint32(src[n+8:])
		n += 12
	}
	if span > 0 {
		if len(src) < n+1+8*span {
			return 0, fmt.Errorf("nn: accumulator encoding truncated in limb span")
		}
		lo := int(src[n])
		n++
		if lo+span > accLimbs {
			return 0, fmt.Errorf("nn: accumulator span [%d,%d) out of range", lo, lo+span)
		}
		for i := 0; i < span; i++ {
			a.limb[lo+i] = binary.LittleEndian.Uint64(src[n:])
			n += 8
		}
		if flags&accFlagNeg != 0 {
			a.negate()
		}
	}
	return n, nil
}

// AddParamsAccum adds each of params into the matching accumulator of acc,
// exactly. It is the leaf step of (tree) aggregation: one client's parameter
// vector entering the sum.
func AddParamsAccum(acc []Accum, params []float64) {
	if len(acc) != len(params) {
		panic(fmt.Sprintf("nn: %d accumulators for %d params", len(acc), len(params)))
	}
	for i, p := range params {
		acc[i].Add(p)
	}
}

// MergeAccum merges each accumulator of src into the matching one of dst,
// exactly — a parent node absorbing a subtree's per-parameter sums.
func MergeAccum(dst, src []Accum) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("nn: merging %d accumulators into %d", len(src), len(dst)))
	}
	for i := range dst {
		dst[i].AddAccum(&src[i])
	}
}

// MeanAccum overwrites dst with the n-way mean read from the accumulators:
// the correctly-rounded exact sum times 1/n — exactly the arithmetic of
// AverageParams, so a tree of exact partial sums reproduces the flat mean
// bit-for-bit.
func MeanAccum(dst []float64, acc []Accum, n int) {
	if len(dst) != len(acc) {
		panic(fmt.Sprintf("nn: %d accumulators for %d params", len(acc), len(dst)))
	}
	if n <= 0 {
		panic("nn: mean over a non-positive count")
	}
	inv := 1 / float64(n)
	for i := range dst {
		dst[i] = acc[i].Round() * inv
	}
}
