package nn

import "math"

// HuberDelta is the transition point between the quadratic and linear
// regions of the Huber loss. The paper specifies the Huber loss for the
// per-action reward regression; δ = 1 is the conventional choice and matches
// the reward range of Eq. (4), which lies in [-1, 1].
const HuberDelta = 1.0

// Huber returns the Huber loss and its gradient with respect to pred for a
// scalar prediction/target pair: quadratic for |pred-target| <= delta and
// linear beyond, which keeps single outlier rewards (e.g. a sudden power
// violation) from destabilising the regression.
func Huber(pred, target, delta float64) (loss, grad float64) {
	e := pred - target
	if math.Abs(e) <= delta {
		return 0.5 * e * e, e
	}
	return delta * (math.Abs(e) - 0.5*delta), delta * sign(e)
}

// SquaredError returns the squared-error loss 0.5·(pred-target)² and its
// gradient with respect to pred. Provided for ablations against Huber.
func SquaredError(pred, target float64) (loss, grad float64) {
	e := pred - target
	return 0.5 * e * e, e
}

func sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}
