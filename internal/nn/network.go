// Package nn implements the small feed-forward neural network machinery
// required by the paper's DVFS policy: dense layers with ReLU hidden
// activations and a linear output, He weight initialisation, manual
// backpropagation, Huber and squared losses, SGD and Adam optimizers, and a
// compact float32 wire format whose size matches the paper's reported
// 2.8 kB per federated transfer.
//
// The package is deliberately minimal — the paper's policy network is a
// single hidden layer of 32 neurons over 5 input features and 15 outputs —
// but it is a complete, generic MLP implementation: any number of layers and
// widths are supported, parameters live in one flat vector so that federated
// averaging and serialisation are trivial, and all randomness comes from a
// caller-supplied source for reproducibility.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Network is a fully connected multi-layer perceptron with ReLU activations
// on hidden layers and an identity (linear) output layer. All weights and
// biases live in a single flat parameter vector, ordered layer by layer as
// [W0, b0, W1, b1, ...] with each W stored row-major ([out][in]).
//
// A Network is not safe for concurrent use: Forward caches intermediate
// activations for a subsequent Backward call.
type Network struct {
	sizes  []int     // layer widths, including input and output
	params []float64 // flat parameter vector

	// Per-layer views into params, rebuilt whenever the backing array
	// changes (SetParams keeps the same array, so views stay valid).
	wOff, bOff []int

	// Caches for backpropagation, filled by Forward.
	acts []([]float64) // acts[0] = input copy, acts[i] = output of layer i-1
	pre  []([]float64) // pre-activation values per layer

	// delta[k] is the backward pass's scratch for dL/d(pre-activation) of
	// layer k's input width (delta[k] has sizes[k] elements, k >= 1). The
	// buffers are owned by the network so Backward/BackwardScalar allocate
	// nothing in the training hot loop.
	delta []([]float64)

	// Mini-batch scratch for the batched kernels (batch.go): flat
	// row-major [batch × width] matrices per layer, grown on demand
	// (capacity-guarded, so the batched hot loop stays allocation-free at
	// steady state). batchN is the row count the matrices are currently
	// sliced to.
	bacts  []([]float64) // bacts[l]: batch × sizes[l] activations
	bpre   []([]float64) // bpre[l]: batch × sizes[l+1] pre-activations
	bdelta []([]float64) // bdelta[k]: batch × sizes[k] backward deltas
	batchN int
}

// New constructs a network with the given layer sizes (at least input and
// output) and initialises weights with He initialisation drawn from rng.
// Biases start at zero. For example, New(rng, 5, 32, 15) builds the paper's
// policy network: 5 state features, one hidden layer of 32 neurons, and one
// output per V/f level.
func New(rng *rand.Rand, sizes ...int) *Network {
	if len(sizes) < 2 {
		panic("nn: New requires at least an input and an output size")
	}
	for _, s := range sizes {
		if s <= 0 {
			panic(fmt.Sprintf("nn: invalid layer size %d", s))
		}
	}
	n := &Network{sizes: append([]int(nil), sizes...)}
	total := 0
	for l := 0; l < len(sizes)-1; l++ {
		n.wOff = append(n.wOff, total)
		total += sizes[l] * sizes[l+1]
		n.bOff = append(n.bOff, total)
		total += sizes[l+1]
	}
	n.params = make([]float64, total)
	n.initScratch()
	n.heInit(rng)
	return n
}

// initScratch sizes the activation, pre-activation and backward-delta
// caches for the configured layer widths.
func (n *Network) initScratch() {
	n.acts = make([][]float64, len(n.sizes))
	n.pre = make([][]float64, len(n.sizes)-1)
	n.delta = make([][]float64, len(n.sizes))
	for i, s := range n.sizes {
		n.acts[i] = make([]float64, s)
		if i > 0 {
			n.pre[i-1] = make([]float64, s)
			n.delta[i] = make([]float64, s)
		}
	}
}

// heInit draws weights from N(0, sqrt(2/fanIn)), the standard initialisation
// for ReLU networks, and zeroes biases.
func (n *Network) heInit(rng *rand.Rand) {
	for l := 0; l < len(n.sizes)-1; l++ {
		fanIn := n.sizes[l]
		std := math.Sqrt(2 / float64(fanIn))
		w := n.weights(l)
		for i := range w {
			w[i] = rng.NormFloat64() * std
		}
		b := n.biases(l)
		for i := range b {
			b[i] = 0
		}
	}
}

// weights returns the weight view of layer l ([out][in] row-major).
func (n *Network) weights(l int) []float64 {
	return n.params[n.wOff[l] : n.wOff[l]+n.sizes[l]*n.sizes[l+1]]
}

// biases returns the bias view of layer l.
func (n *Network) biases(l int) []float64 {
	return n.params[n.bOff[l] : n.bOff[l]+n.sizes[l+1]]
}

// Sizes returns a copy of the layer sizes, including input and output.
func (n *Network) Sizes() []int { return append([]int(nil), n.sizes...) }

// NumParams returns the total number of trainable parameters. The paper's
// 5-32-15 network has 5·32+32 + 32·15+15 = 687 parameters.
func (n *Network) NumParams() int { return len(n.params) }

// Params returns the live flat parameter vector. Mutating it mutates the
// network; callers that need a snapshot should copy it.
//
// Params is the module's sanctioned privacy declassification point:
// telemetry shapes these weights through training, but the vector itself
// is the only telemetry-derived data allowed to cross the federated wire.
// The privacytaint analyzer (internal/lint) allowlists exactly this
// function — everything downstream of a Params call is clean by contract,
// and every other telemetry flow to the wire is a build-breaking finding.
func (n *Network) Params() []float64 { return n.params }

// SetParams overwrites the network parameters with p, which must have
// exactly NumParams elements. The data is copied.
func (n *Network) SetParams(p []float64) {
	if len(p) != len(n.params) {
		panic(fmt.Sprintf("nn: SetParams length %d, want %d", len(p), len(n.params)))
	}
	copy(n.params, p)
}

// Clone returns a deep copy of the network, including parameters but not the
// transient activation caches.
func (n *Network) Clone() *Network {
	c := &Network{
		sizes:  append([]int(nil), n.sizes...),
		params: append([]float64(nil), n.params...),
		wOff:   append([]int(nil), n.wOff...),
		bOff:   append([]int(nil), n.bOff...),
	}
	c.initScratch()
	return c
}

// Forward runs inference on x (length must equal the input size) and returns
// the output activations. The returned slice is owned by the network and is
// valid until the next Forward call; copy it if it must outlive that.
// Intermediate activations are cached for a subsequent Backward call.
func (n *Network) Forward(x []float64) []float64 {
	if len(x) != n.sizes[0] {
		panic(fmt.Sprintf("nn: Forward input length %d, want %d", len(x), n.sizes[0]))
	}
	copy(n.acts[0], x)
	last := len(n.sizes) - 2
	for l := 0; l <= last; l++ {
		in := n.acts[l]
		out := n.pre[l]
		w := n.weights(l)
		b := n.biases(l)
		nin, nout := n.sizes[l], n.sizes[l+1]
		for j := 0; j < nout; j++ {
			sum := b[j]
			row := w[j*nin : (j+1)*nin]
			for i, v := range in {
				sum += row[i] * v
			}
			out[j] = sum
		}
		act := n.acts[l+1]
		if l == last {
			copy(act, out) // linear output layer
		} else {
			for j, v := range out {
				if v > 0 {
					act[j] = v
				} else {
					act[j] = 0
				}
			}
		}
	}
	return n.acts[len(n.acts)-1]
}

// ForwardAction is the bandit fast path of Forward: it runs the hidden
// layers exactly as Forward does (caching activations for a subsequent
// Backward/BackwardScalar call) but evaluates only the given output unit,
// dropping the output layer from O(out·hidden) to O(hidden). The returned
// value is bit-identical to Forward(x)[action] — the same multiply-adds in
// the same order — and the backward pass never reads the output-layer
// activations, so the pairing ForwardAction/BackwardScalar is exact.
//
//fedlint:allocfree
func (n *Network) ForwardAction(x []float64, action int) float64 {
	if len(x) != n.sizes[0] {
		panic(fmt.Sprintf("nn: ForwardAction input length %d, want %d", len(x), n.sizes[0]))
	}
	last := len(n.sizes) - 2
	if action < 0 || action >= n.sizes[last+1] {
		panic(fmt.Sprintf("nn: ForwardAction action %d out of range [0,%d)", action, n.sizes[last+1]))
	}
	copy(n.acts[0], x)
	for l := 0; l < last; l++ {
		in := n.acts[l]
		out := n.pre[l]
		w := n.weights(l)
		b := n.biases(l)
		nin, nout := n.sizes[l], n.sizes[l+1]
		act := n.acts[l+1]
		for j := 0; j < nout; j++ {
			sum := b[j]
			row := w[j*nin : (j+1)*nin]
			for i, v := range in {
				sum += row[i] * v
			}
			out[j] = sum
			if sum > 0 {
				act[j] = sum
			} else {
				act[j] = 0
			}
		}
	}
	in := n.acts[last]
	nin := n.sizes[last]
	sum := n.biases(last)[action]
	row := n.weights(last)[action*nin : (action+1)*nin]
	for i, v := range in {
		sum += row[i] * v
	}
	return sum
}

// Backward backpropagates gradOut — the gradient of the loss with respect to
// the network output of the most recent Forward call — and accumulates the
// parameter gradient into grad, which must have NumParams elements. Backward
// must be preceded by a Forward call on the corresponding input; it does not
// modify the network parameters. Backward reuses network-owned scratch, so
// it performs no allocations; like Forward, it is not safe for concurrent
// use.
//
//fedlint:allocfree
func (n *Network) Backward(gradOut []float64, grad []float64) {
	nl := len(n.sizes) - 1
	if len(gradOut) != n.sizes[nl] {
		panic(fmt.Sprintf("nn: Backward gradient length %d, want %d", len(gradOut), n.sizes[nl]))
	}
	if len(grad) != len(n.params) {
		panic(fmt.Sprintf("nn: Backward grad buffer length %d, want %d", len(grad), len(n.params)))
	}
	delta := n.delta[nl]
	copy(delta, gradOut)
	n.backprop(nl-1, delta, grad)
}

// BackwardScalar is the bandit fast path of Backward: the loss touches a
// single output unit (the taken action), so instead of backpropagating a
// one-hot gradOut vector — O(out·hidden) with a zero-skip — the output
// layer's contribution is applied directly from the scalar g = dL/d(out
// [action]), dropping the output-layer pass to O(hidden). The result is
// bit-identical to Backward with gradOut[action]=g and zeros elsewhere,
// because the surviving multiply-adds are the same operations in the same
// order. Allocation-free, like Backward.
//
//fedlint:allocfree
func (n *Network) BackwardScalar(action int, g float64, grad []float64) {
	nl := len(n.sizes) - 1
	if action < 0 || action >= n.sizes[nl] {
		panic(fmt.Sprintf("nn: BackwardScalar action %d out of range [0,%d)", action, n.sizes[nl]))
	}
	if len(grad) != len(n.params) {
		panic(fmt.Sprintf("nn: BackwardScalar grad buffer length %d, want %d", len(grad), len(n.params)))
	}
	l := nl - 1
	in := n.acts[l]
	nin := n.sizes[l]
	if !zeroGrad(g) { // exact zero skip: a dead loss gradient contributes nothing
		grad[n.bOff[l]+action] += g
		row := grad[n.wOff[l]+action*nin : n.wOff[l]+(action+1)*nin]
		for i, v := range in {
			row[i] += g * v
		}
	}
	if l == 0 {
		return
	}
	// Propagate the single nonzero delta to the previous layer and apply
	// the ReLU derivative.
	prev := n.delta[l]
	wrow := n.weights(l)[action*nin : (action+1)*nin]
	for i := range prev {
		prev[i] = g * wrow[i]
	}
	pre := n.pre[l-1]
	for i := range prev {
		if pre[i] <= 0 {
			prev[i] = 0
		}
	}
	n.backprop(l-1, prev, grad)
}

// backprop runs the shared backward loop from layer top down to layer 0.
// delta holds dL/d(pre-activation) of layer top's output and is consumed;
// lower layers' deltas use the network-owned scratch.
func (n *Network) backprop(top int, delta []float64, grad []float64) {
	for l := top; l >= 0; l-- {
		in := n.acts[l]
		nin, nout := n.sizes[l], n.sizes[l+1]
		gw := grad[n.wOff[l] : n.wOff[l]+nin*nout]
		gb := grad[n.bOff[l] : n.bOff[l]+nout]
		for j := 0; j < nout; j++ {
			d := delta[j]
			if zeroGrad(d) { // exact zero skip: ReLU-dead units contribute nothing
				continue
			}
			gb[j] += d
			row := gw[j*nin : (j+1)*nin]
			for i, v := range in {
				row[i] += d * v
			}
		}
		if l == 0 {
			break
		}
		// Propagate to the previous layer and apply the ReLU derivative.
		w := n.weights(l)
		prev := n.delta[l]
		for i := range prev {
			prev[i] = 0
		}
		for j := 0; j < nout; j++ {
			d := delta[j]
			if zeroGrad(d) { // exact zero skip: ReLU-dead units contribute nothing
				continue
			}
			row := w[j*nin : (j+1)*nin]
			for i := range prev {
				prev[i] += d * row[i]
			}
		}
		pre := n.pre[l-1]
		for i := range prev {
			if pre[i] <= 0 {
				prev[i] = 0
			}
		}
		delta = prev
	}
}

// zeroGrad reports whether a backpropagated gradient component is exactly
// zero of either sign — the condition under which the scalar and batched
// kernels skip an accumulator update. Skipping is a pure optimisation for
// ReLU-dead units and dead loss gradients, but the skip condition itself is
// part of the bit-identity contract (adding 0.0 to -0.0 would flip the
// accumulator's sign bit), so both paths must test it identically. The test
// is written on the bit pattern — an integer comparison, agreeing with
// d == 0 on every input including -0 (true) and NaN (false) — so the
// exact-comparison contract lives in the type system rather than in a
// suppressed floateq finding.
func zeroGrad(d float64) bool { return math.Float64bits(d)<<1 == 0 }

// AverageParams overwrites dst with the element-wise mean of the given
// parameter vectors, implementing the unweighted federated-averaging step of
// Algorithm 2 (θ_{r+1} = 1/N · Σ θ_r^n). All vectors must share dst's
// length, and at least one source is required.
//
// The sum is accumulated exactly (Accum) and rounded once, so the result is
// a function of the multiset of sources only — independent of their order
// and, critically, of their grouping. A hierarchical federation that sums
// subtrees first and merges the partial sums (fed.RunTree, fed.Aggregator)
// therefore reproduces this flat mean bit-for-bit.
func AverageParams(dst []float64, srcs ...[]float64) {
	if len(srcs) == 0 {
		panic("nn: AverageParams requires at least one source")
	}
	for _, s := range srcs {
		if len(s) != len(dst) {
			panic(fmt.Sprintf("nn: AverageParams length mismatch: %d vs %d", len(s), len(dst)))
		}
	}
	inv := 1 / float64(len(srcs))
	var acc Accum
	for i := range dst {
		acc.Reset()
		for _, s := range srcs {
			acc.Add(s[i])
		}
		dst[i] = acc.Round() * inv
	}
}

// WeightedAverageParams overwrites dst with the weights-proportional mean
// of the parameter vectors — the original FedAvg formulation, which weights
// each client by its local sample count (McMahan et al., Eq. 1). Weights
// must be non-negative with a positive sum; the paper's §III-B instantiation
// is the unweighted special case (AverageParams).
func WeightedAverageParams(dst []float64, srcs [][]float64, weights []float64) {
	if len(srcs) == 0 {
		panic("nn: WeightedAverageParams requires at least one source")
	}
	if len(weights) != len(srcs) {
		panic(fmt.Sprintf("nn: %d weights for %d sources", len(weights), len(srcs)))
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("nn: negative weight %v at %d", w, i))
		}
		total += w
	}
	if total <= 0 {
		panic("nn: weights sum to zero")
	}
	for _, s := range srcs {
		if len(s) != len(dst) {
			panic(fmt.Sprintf("nn: WeightedAverageParams length mismatch: %d vs %d", len(s), len(dst)))
		}
	}
	// The rounded products are summed exactly, so this too is order- and
	// grouping-invariant for a fixed weight assignment.
	var acc Accum
	for i := range dst {
		acc.Reset()
		for j, s := range srcs {
			acc.Add(s[i] * weights[j])
		}
		dst[i] = acc.Round() / total
	}
}
