package nn

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The federated transport serialises parameter vectors as little-endian
// IEEE-754 float32 values. For the paper's 687-parameter policy network this
// yields 2748 bytes per transfer, matching the 2.8 kB the paper reports in
// §IV-C. Training happens in float64; the float32 round trip loses ~7
// decimal digits of precision, which is far below the noise floor of the
// reward signal.

// WireSize returns the number of bytes EncodeParams produces for a parameter
// vector of length n.
func WireSize(n int) int { return 4 * n }

// Wire encoding is also the privacy boundary's choke point: EncodeParams
// inputs are a privacytaint sink (internal/lint), so only clean,
// Params-derived vectors may ever be serialised for transfer.

// EncodeParams serialises params as little-endian float32 values.
func EncodeParams(params []float64) []byte {
	return EncodeParamsInto(nil, params)
}

// EncodeParamsInto serialises params into dst's storage, growing it only
// when its capacity is insufficient, and returns the encoded slice. Callers
// on the federated hot path keep one scratch buffer per connection, so the
// steady-state wire path allocates nothing. Like EncodeParams, its inputs
// are a privacytaint sink.
//
//fedlint:allocfree
func EncodeParamsInto(dst []byte, params []float64) []byte {
	need := WireSize(len(params))
	if cap(dst) < need {
		dst = make([]byte, need)
	}
	dst = dst[:need]
	for i, p := range params {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(float32(p)))
	}
	return dst
}

// DecodeParamsInto deserialises a buffer produced by EncodeParams into
// dst's storage — the parameter count is taken from the buffer length, and
// dst grows only when its capacity is insufficient. It is the
// allocation-free sibling of DecodeParams for callers that reuse one
// parameter slice per connection.
//
//fedlint:allocfree
func DecodeParamsInto(dst []float64, buf []byte) ([]float64, error) {
	if len(buf)%4 != 0 {
		return dst, fmt.Errorf("nn: decode %d bytes: not a whole number of float32 values", len(buf))
	}
	n := len(buf) / 4
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:])))
	}
	return dst, nil
}

// DecodeParams deserialises a buffer produced by EncodeParams into dst,
// which determines the expected parameter count. It returns an error when
// the buffer length does not match.
func DecodeParams(dst []float64, buf []byte) error {
	if len(buf) != WireSize(len(dst)) {
		return fmt.Errorf("nn: decode %d bytes into %d params (want %d bytes)", len(buf), len(dst), WireSize(len(dst)))
	}
	for i := range dst {
		dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:])))
	}
	return nil
}
