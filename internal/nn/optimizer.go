package nn

import (
	"fmt"
	"math"
)

// Optimizer applies a gradient step to a flat parameter vector. Step
// consumes the gradient as-is; callers are responsible for zeroing or
// rescaling accumulated gradients between steps.
type Optimizer interface {
	// Step updates params in place given the gradient of the loss.
	Step(params, grad []float64)
	// Reset clears any internal state (moment estimates, step counters) so
	// the optimizer behaves as freshly constructed. Used when a device
	// receives a new global model at the start of a federated round.
	Reset()
}

// SGD is plain stochastic gradient descent with an optional momentum term.
type SGD struct {
	LR       float64
	Momentum float64
	velocity []float64
}

// NewSGD returns an SGD optimizer with the given learning rate and no
// momentum.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Step applies params -= lr·grad (with momentum if configured).
func (s *SGD) Step(params, grad []float64) {
	if len(params) != len(grad) {
		panic(fmt.Sprintf("nn: SGD.Step length mismatch: %d vs %d", len(params), len(grad)))
	}
	if s.Momentum == 0 { //fedlint:ignore floateq zero is the exact "momentum disabled" sentinel, not a computed value
		for i := range params {
			params[i] -= s.LR * grad[i]
		}
		return
	}
	if len(s.velocity) != len(params) {
		s.velocity = make([]float64, len(params))
	}
	for i := range params {
		s.velocity[i] = s.Momentum*s.velocity[i] + grad[i]
		params[i] -= s.LR * s.velocity[i]
	}
}

// Reset clears the momentum buffer.
func (s *SGD) Reset() { s.velocity = nil }

// Adam implements the Adam optimizer (Kingma & Ba, 2015) used by the paper,
// with the standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8 defaults.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64

	t    int
	m, v []float64
}

// NewAdam returns an Adam optimizer with the given learning rate and the
// standard default moment decay rates.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one bias-corrected Adam update to params in place.
func (a *Adam) Step(params, grad []float64) {
	if len(params) != len(grad) {
		panic(fmt.Sprintf("nn: Adam.Step length mismatch: %d vs %d", len(params), len(grad)))
	}
	if len(a.m) != len(params) {
		a.m = make([]float64, len(params))
		a.v = make([]float64, len(params))
		a.t = 0
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i := range params {
		g := grad[i]
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*g
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*g*g
		mhat := a.m[i] / c1
		vhat := a.v[i] / c2
		params[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
	}
}

// Reset clears the moment estimates and step counter.
func (a *Adam) Reset() {
	a.m, a.v, a.t = nil, nil, 0
}
