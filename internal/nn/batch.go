package nn

import (
	"fmt"
	"math"
)

// Batched mini-batch kernels.
//
// The training hot path of Algorithm 1 evaluates and backpropagates one
// mini-batch of (state, action, reward) samples per update. The scalar
// kernels (ForwardAction / BackwardScalar) stream the full weight and
// gradient vectors through the cache once per *sample*; the batched kernels
// in this file pack the sampled states into a network-owned flat
// [batch × in] matrix and restructure the loops so each weight row and each
// gradient accumulator row is streamed once per *block of samples* instead.
//
// The restructuring is bit-identical to running the scalar kernels sample
// by sample — an exact-equality contract, not a tolerance — because it
// only permutes work between independent accumulators:
//
//   - every dot product keeps a single accumulator fed strictly left to
//     right in index order (dotAcc), exactly the scalar path's
//     `sum += row[i] * x[i]` sequence, merely unrolled;
//   - distinct (sample, unit) sums are independent, so the (sample, unit)
//     loop nest can be reordered and blocked freely;
//   - every gradient accumulator cell receives exactly one contribution
//     per sample, and the batched backward visits samples in ascending
//     order within each cell's accumulation loop, so each cell sees the
//     same float additions in the same order as the scalar path (which
//     iterates samples outermost);
//   - the exact-zero skips (zeroGrad) are evaluated on the same values
//     with the same predicate as the scalar path.
//
// TestForwardBackwardBatchBitIdentical pins the contract across random
// nets, widths (including zero hidden layers) and batch sizes, and the
// allocfree effect analyzer (internal/lint) proves the kernels below never
// allocate outside the capacity-guarded scratch growth.

// batchBlock is the sample-block width of the cache-blocked hidden-layer
// forward pass: a block's activation and pre-activation rows
// (2 × 32 samples × width × 8 B ≈ 16 kB at the paper's width 32) stay
// L1-resident while the layer's weight rows stream over them once each.
const batchBlock = 32

// ensureBatch sizes the batch scratch matrices for the given row count.
// Growth is capacity-guarded so a steady-state training loop — fixed batch
// size after the first update — performs no allocations here.
func (n *Network) ensureBatch(batch int) {
	if len(n.bacts) != len(n.sizes) {
		n.bacts = make([][]float64, len(n.sizes))
		n.bpre = make([][]float64, len(n.sizes)-1)
		n.bdelta = make([][]float64, len(n.sizes))
	}
	for l, s := range n.sizes {
		need := batch * s
		if cap(n.bacts[l]) < need {
			n.bacts[l] = make([]float64, need)
		}
		n.bacts[l] = n.bacts[l][:need]
		if l > 0 {
			if cap(n.bpre[l-1]) < need {
				n.bpre[l-1] = make([]float64, need)
			}
			n.bpre[l-1] = n.bpre[l-1][:need]
			if cap(n.bdelta[l]) < need {
				n.bdelta[l] = make([]float64, need)
			}
			n.bdelta[l] = n.bdelta[l][:need]
		}
	}
	n.batchN = batch
}

// BatchStates returns the network-owned input matrix for a batch-sized
// forward pass: a flat row-major [batch × in] buffer the caller fills with
// one state per row (replay.Buffer.SampleInto packs it directly) before
// calling ForwardBatch. The buffer is reused across calls; its previous
// contents are unspecified.
//
//fedlint:allocfree
func (n *Network) BatchStates(batch int) []float64 {
	if batch <= 0 {
		panic(fmt.Sprintf("nn: BatchStates batch %d must be positive", batch))
	}
	n.ensureBatch(batch)
	return n.bacts[0]
}

// relu returns v if v > 0 and +0 otherwise — exactly the scalar kernels'
// `if v > 0 { act = v } else { act = 0 }`, with the same predicate (NaN and
// -0 both map to +0). Selecting through a bit mask compiles branch-free
// (UCOMISD + CMOV on amd64), so the data-random dead/alive pattern of
// hidden units cannot stall the batched loops on branch mispredictions.
func relu(v float64) float64 {
	m := uint64(0)
	if v > 0 {
		m = ^uint64(0)
	}
	return math.Float64frombits(math.Float64bits(v) & m)
}

// reluMask returns d if pre > 0 and +0 otherwise — the scalar backward
// kernels' ReLU-derivative mask `if pre <= 0 { d = 0 }`, with the same
// predicate (a NaN pre keeps d, as in the scalar path), compiled branch-free
// like relu.
func reluMask(d, pre float64) float64 {
	m := ^uint64(0)
	if pre <= 0 {
		m = 0
	}
	return math.Float64frombits(math.Float64bits(d) & m)
}

// dotAcc extends sum by the inner product of row and x, feeding a single
// accumulator strictly left to right in index order — the same float
// operation sequence as the scalar kernels' `sum += row[i] * x[i]` range
// loop, 4-way unrolled. The explicit re-slice of row to x's length lets
// the compiler drop the bounds checks inside the unrolled body.
func dotAcc(sum float64, row, x []float64) float64 {
	row = row[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		sum += row[i] * x[i]
		sum += row[i+1] * x[i+1]
		sum += row[i+2] * x[i+2]
		sum += row[i+3] * x[i+3]
	}
	for ; i < len(x); i++ {
		sum += row[i] * x[i]
	}
	return sum
}

// axpy adds a·x[i] into y[i] element-wise. Each y[i] is an independent
// accumulator receiving exactly one addition, so the unrolling cannot
// reorder any accumulation sequence; the result is bit-identical to the
// scalar kernels' `y[i] += a * x[i]` range loop.
func axpy(a float64, x, y []float64) {
	x = x[:len(y)]
	i := 0
	for ; i+4 <= len(y); i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < len(y); i++ {
		y[i] += a * x[i]
	}
}

// ForwardBatch runs the bandit forward pass over the whole mini-batch
// packed into the BatchStates matrix: the hidden layers as cache-blocked
// matrix loops (weight rows outer, samples inner, so each row streams once
// per batchBlock-sample block instead of once per sample), and — because
// the bandit loss touches one output unit per sample — only the taken
// action's output unit per row, written to outs[s].
//
// outs[s] is bit-identical to ForwardAction(states[s], actions[s]), and
// the cached batch activations feed a subsequent BackwardBatch exactly as
// the scalar caches feed BackwardScalar. len(actions) must equal the
// BatchStates row count; len(outs) must equal len(actions).
//
//fedlint:allocfree
func (n *Network) ForwardBatch(actions []int, outs []float64) {
	batch := len(actions)
	if batch == 0 || batch != n.batchN {
		panic(fmt.Sprintf("nn: ForwardBatch batch %d, want the BatchStates size %d", batch, n.batchN))
	}
	if len(outs) != batch {
		panic(fmt.Sprintf("nn: ForwardBatch outs length %d, want %d", len(outs), batch))
	}
	last := len(n.sizes) - 2
	nact := n.sizes[last+1]
	for s, a := range actions {
		if a < 0 || a >= nact {
			panic(fmt.Sprintf("nn: ForwardBatch action %d (sample %d) out of range [0,%d)", a, s, nact))
		}
	}
	for l := 0; l < last; l++ {
		nin, nout := n.sizes[l], n.sizes[l+1]
		in := n.bacts[l]
		pre := n.bpre[l]
		act := n.bacts[l+1]
		w := n.weights(l)
		b := n.biases(l)
		for s0 := 0; s0 < batch; s0 += batchBlock {
			s1 := s0 + batchBlock
			if s1 > batch {
				s1 = batch
			}
			for j := 0; j < nout; j++ {
				row := w[j*nin : (j+1)*nin]
				bj := b[j]
				// Four samples per iteration against the register-resident
				// weight row: four *independent* accumulators, each fed
				// strictly left to right exactly like the scalar kernel's
				// dot product, so the unroll adds instruction-level
				// parallelism without touching any accumulation order.
				// (Inlined by hand: Go does not inline functions containing
				// loops, and at the paper's tiny input width a call per dot
				// product costs more than the multiply-adds themselves.)
				s := s0
				for ; s+4 <= s1; s += 4 {
					x0 := in[s*nin : (s+1)*nin]
					x0 = x0[:len(row)] // bounds-check elimination
					x1 := in[(s+1)*nin : (s+2)*nin]
					x1 = x1[:len(x0)]
					x2 := in[(s+2)*nin : (s+3)*nin]
					x2 = x2[:len(x0)]
					x3 := in[(s+3)*nin : (s+4)*nin]
					x3 = x3[:len(x0)]
					sum0, sum1, sum2, sum3 := bj, bj, bj, bj
					for i, r := range row {
						sum0 += r * x0[i]
						sum1 += r * x1[i]
						sum2 += r * x2[i]
						sum3 += r * x3[i]
					}
					o := s*nout + j
					pre[o] = sum0
					act[o] = relu(sum0)
					o += nout
					pre[o] = sum1
					act[o] = relu(sum1)
					o += nout
					pre[o] = sum2
					act[o] = relu(sum2)
					o += nout
					pre[o] = sum3
					act[o] = relu(sum3)
				}
				for ; s < s1; s++ {
					sum := dotAcc(bj, row, in[s*nin:(s+1)*nin])
					o := s*nout + j
					pre[o] = sum
					act[o] = relu(sum)
				}
			}
		}
	}
	in := n.bacts[last]
	nin := n.sizes[last]
	w := n.weights(last)
	b := n.biases(last)
	// Output layer: the bandit loss touches one unit per sample, so this is
	// a gather of per-sample dot products rather than a matrix product. Four
	// samples per iteration keeps four independent accumulator chains in
	// flight — each chain is the scalar kernel's left-to-right dot product,
	// so the interleave changes no accumulation order.
	s := 0
	for ; s+4 <= batch; s += 4 {
		a0, a1, a2, a3 := actions[s], actions[s+1], actions[s+2], actions[s+3]
		x0 := in[s*nin : (s+1)*nin]
		x1 := in[(s+1)*nin : (s+2)*nin]
		x1 = x1[:len(x0)] // bounds-check elimination
		x2 := in[(s+2)*nin : (s+3)*nin]
		x2 = x2[:len(x0)]
		x3 := in[(s+3)*nin : (s+4)*nin]
		x3 = x3[:len(x0)]
		r0 := w[a0*nin : (a0+1)*nin]
		r0 = r0[:len(x0)]
		r1 := w[a1*nin : (a1+1)*nin]
		r1 = r1[:len(x0)]
		r2 := w[a2*nin : (a2+1)*nin]
		r2 = r2[:len(x0)]
		r3 := w[a3*nin : (a3+1)*nin]
		r3 = r3[:len(x0)]
		sum0, sum1, sum2, sum3 := b[a0], b[a1], b[a2], b[a3]
		for i := range x0 {
			sum0 += r0[i] * x0[i]
			sum1 += r1[i] * x1[i]
			sum2 += r2[i] * x2[i]
			sum3 += r3[i] * x3[i]
		}
		outs[s] = sum0
		outs[s+1] = sum1
		outs[s+2] = sum2
		outs[s+3] = sum3
	}
	for ; s < batch; s++ {
		a := actions[s]
		outs[s] = dotAcc(b[a], w[a*nin:(a+1)*nin], in[s*nin:(s+1)*nin])
	}
}

// BackwardBatch backpropagates the whole mini-batch of scalar loss
// gradients gs — gs[s] = dL/d(out[actions[s]]) for sample s of the most
// recent ForwardBatch — and accumulates the parameter gradient into grad.
//
// Every gradient accumulator cell is accumulated over samples in ascending
// sample order, so grad ends bit-identical to calling
// BackwardScalar(actions[s], gs[s], grad) after ForwardAction, for
// s = 0..batch-1 in order: each cell receives the same additions in the
// same sequence, and the exact-zero skips are evaluated on the same values
// (see the package comment at the top of this file). Like the scalar path,
// BackwardBatch does not modify the network parameters and reuses
// network-owned scratch.
//
//fedlint:allocfree
func (n *Network) BackwardBatch(actions []int, gs, grad []float64) {
	batch := len(actions)
	if batch == 0 || batch != n.batchN {
		panic(fmt.Sprintf("nn: BackwardBatch batch %d, want the BatchStates size %d", batch, n.batchN))
	}
	if len(gs) != batch {
		panic(fmt.Sprintf("nn: BackwardBatch gradient count %d, want %d", len(gs), batch))
	}
	if len(grad) != len(n.params) {
		panic(fmt.Sprintf("nn: BackwardBatch grad buffer length %d, want %d", len(grad), len(n.params)))
	}
	nl := len(n.sizes) - 1
	nact := n.sizes[nl]
	for s, a := range actions {
		if a < 0 || a >= nact {
			panic(fmt.Sprintf("nn: BackwardBatch action %d (sample %d) out of range [0,%d)", a, s, nact))
		}
	}
	l := nl - 1
	nin := n.sizes[l]
	in := n.bacts[l]
	// Output layer: one touched unit per sample, accumulated in sample
	// order. Cells of different actions are disjoint; same-action samples
	// hit their shared row in ascending s — the scalar path's order.
	gw := grad[n.wOff[l] : n.wOff[l]+nin*nact]
	gb := grad[n.bOff[l] : n.bOff[l]+nact]
	for s := 0; s < batch; s++ {
		g := gs[s]
		if !zeroGrad(g) { // exact zero skip: a dead loss gradient contributes nothing
			a := actions[s]
			gb[a] += g
			axpy(g, in[s*nin:(s+1)*nin], gw[a*nin:(a+1)*nin])
		}
	}
	if l == 0 {
		return
	}
	// Seed the delta matrix below the output layer: per sample, the single
	// nonzero output delta times the taken action's weight row, masked by
	// the ReLU derivative — the same per-sample arithmetic as
	// BackwardScalar, including for gs[s] == 0 (the products are still
	// formed; downstream accumulation skips the resulting exact zeros).
	delta := n.bdelta[l]
	wl := n.weights(l)
	pre := n.bpre[l-1]
	for s := 0; s < batch; s++ {
		g := gs[s]
		wrow := wl[actions[s]*nin : (actions[s]+1)*nin]
		drow := delta[s*nin : (s+1)*nin]
		prow := pre[s*nin : (s+1)*nin]
		prow = prow[:len(drow)] // bounds-check elimination
		wrow = wrow[:len(drow)]
		for i := range drow {
			drow[i] = reluMask(g*wrow[i], prow[i])
		}
	}
	n.backpropBatch(batch, l-1, grad)
}

// backpropBatch runs the batched shared backward loop from layer top down
// to layer 0, consuming the delta matrix seeded in n.bdelta[top+1]. It is
// the batched mirror of backprop: every gradient accumulator cell receives
// its per-sample contributions in ascending sample order, and the
// propagated delta matrix accumulates its (sample, i) cells over source
// units j in ascending j — the scalar loop's order within each sample. The
// propagation loop keeps delta rows outermost so each weight row streams
// once per mini-batch and the accumulating delta cells sit a whole sample
// loop apart.
func (n *Network) backpropBatch(batch, top int, grad []float64) {
	for l := top; l >= 0; l-- {
		nin, nout := n.sizes[l], n.sizes[l+1]
		in := n.bacts[l]
		delta := n.bdelta[l+1]
		gw := grad[n.wOff[l] : n.wOff[l]+nin*nout]
		gb := grad[n.bOff[l] : n.bOff[l]+nout]
		// Gradient accumulation, samples outermost: every accumulator cell
		// receives its per-sample contributions in ascending s — the scalar
		// path's order — while consecutive touches of any gradient row are
		// separated by a full unit loop, so the load-add-store chains on the
		// (L1-resident) gradient matrix never stall on store forwarding. The
		// per-unit axpy is inlined by hand: Go does not inline functions
		// containing loops, and at the paper's input width a call per row
		// would cost more than the multiply-adds.
		for s := 0; s < batch; s++ {
			x := in[s*nin : (s+1)*nin]
			drow := delta[s*nout : (s+1)*nout]
			for j, d := range drow {
				if zeroGrad(d) { // exact zero skip: ReLU-dead units contribute nothing
					continue
				}
				gb[j] += d
				row := gw[j*nin : (j+1)*nin]
				row = row[:len(x)] // bounds-check elimination
				for i, xi := range x {
					row[i] += d * xi
				}
			}
		}
		if l == 0 {
			return
		}
		prev := n.bdelta[l]
		for i := range prev {
			prev[i] = 0
		}
		w := n.weights(l)
		for j := 0; j < nout; j++ {
			wrow := w[j*nin : (j+1)*nin]
			for s := 0; s < batch; s++ {
				d := delta[s*nout+j]
				if zeroGrad(d) { // exact zero skip: ReLU-dead units contribute nothing
					continue
				}
				axpy(d, wrow, prev[s*nin:(s+1)*nin])
			}
		}
		pre := n.bpre[l-1]
		pre = pre[:len(prev)] // bounds-check elimination
		for i := range prev {
			prev[i] = reluMask(prev[i], pre[i])
		}
	}
}
