package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestWireSizePaperTransfer(t *testing.T) {
	// The paper reports 2.8 kB per transfer: 687 params × 4 B = 2748 B.
	if got := WireSize(687); got != 2748 {
		t.Fatalf("WireSize(687) = %d, want 2748", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	params := []float64{0, 1, -1, 0.5, 1e-3, -123.456, math.Pi}
	buf := EncodeParams(params)
	if len(buf) != WireSize(len(params)) {
		t.Fatalf("encoded %d bytes, want %d", len(buf), WireSize(len(params)))
	}
	dst := make([]float64, len(params))
	if err := DecodeParams(dst, buf); err != nil {
		t.Fatal(err)
	}
	for i := range params {
		// float32 round trip: relative error bounded by 2^-23.
		if math.Abs(dst[i]-params[i]) > 1e-6*(1+math.Abs(params[i])) {
			t.Errorf("param %d: %v -> %v", i, params[i], dst[i])
		}
	}
}

func TestDecodeLengthMismatch(t *testing.T) {
	dst := make([]float64, 3)
	if err := DecodeParams(dst, make([]byte, 11)); err == nil {
		t.Fatal("decode with wrong buffer length succeeded")
	}
	if err := DecodeParams(dst, make([]byte, 16)); err == nil {
		t.Fatal("decode with excess buffer succeeded")
	}
}

func TestEncodeEmpty(t *testing.T) {
	buf := EncodeParams(nil)
	if len(buf) != 0 {
		t.Fatalf("empty encode produced %d bytes", len(buf))
	}
	if err := DecodeParams(nil, buf); err != nil {
		t.Fatal(err)
	}
}

// Property: round trip through the wire format is a float32 quantisation —
// decoding what was encoded equals float64(float32(x)).
func TestWireRoundTripProperty(t *testing.T) {
	f := func(params []float64) bool {
		for i, p := range params {
			if math.IsNaN(p) || math.IsInf(p, 0) || math.Abs(p) > math.MaxFloat32/2 {
				params[i] = 0
			}
		}
		buf := EncodeParams(params)
		dst := make([]float64, len(params))
		if err := DecodeParams(dst, buf); err != nil {
			return false
		}
		for i := range params {
			if dst[i] != float64(float32(params[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: encoding is stable — two encodes of the same vector are
// byte-identical (required for deterministic transfer-size accounting).
func TestWireDeterministicProperty(t *testing.T) {
	rng := newTestRand()
	for trial := 0; trial < 20; trial++ {
		params := make([]float64, rng.Intn(100))
		for i := range params {
			params[i] = rng.NormFloat64()
		}
		a := EncodeParams(params)
		b := EncodeParams(params)
		if string(a) != string(b) {
			t.Fatal("encoding not deterministic")
		}
	}
}
