package nn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHuberQuadraticRegion(t *testing.T) {
	loss, grad := Huber(1.5, 1.0, 1.0)
	if math.Abs(loss-0.125) > 1e-12 {
		t.Errorf("loss = %v, want 0.125", loss)
	}
	if math.Abs(grad-0.5) > 1e-12 {
		t.Errorf("grad = %v, want 0.5", grad)
	}
}

func TestHuberLinearRegion(t *testing.T) {
	loss, grad := Huber(3.0, 0.0, 1.0)
	if math.Abs(loss-2.5) > 1e-12 { // 1·(3 - 0.5)
		t.Errorf("loss = %v, want 2.5", loss)
	}
	if grad != 1 {
		t.Errorf("grad = %v, want 1", grad)
	}
	loss, grad = Huber(-3.0, 0.0, 1.0)
	if math.Abs(loss-2.5) > 1e-12 {
		t.Errorf("negative-side loss = %v, want 2.5", loss)
	}
	if grad != -1 {
		t.Errorf("negative-side grad = %v, want -1", grad)
	}
}

func TestHuberZeroError(t *testing.T) {
	loss, grad := Huber(0.7, 0.7, 1.0)
	if loss != 0 || grad != 0 {
		t.Errorf("zero error: loss %v grad %v, want 0, 0", loss, grad)
	}
}

func TestHuberContinuityAtDelta(t *testing.T) {
	// Loss and gradient must be continuous at |e| = δ.
	const delta = 1.0
	const eps = 1e-9
	lIn, gIn := Huber(delta-eps, 0, delta)
	lOut, gOut := Huber(delta+eps, 0, delta)
	if math.Abs(lIn-lOut) > 1e-6 {
		t.Errorf("loss discontinuous at delta: %v vs %v", lIn, lOut)
	}
	if math.Abs(gIn-gOut) > 1e-6 {
		t.Errorf("grad discontinuous at delta: %v vs %v", gIn, gOut)
	}
}

func TestHuberCustomDelta(t *testing.T) {
	// δ = 0.5, error 2: loss = 0.5·(2 - 0.25) = 0.875, grad = 0.5.
	loss, grad := Huber(2, 0, 0.5)
	if math.Abs(loss-0.875) > 1e-12 {
		t.Errorf("loss = %v, want 0.875", loss)
	}
	if grad != 0.5 {
		t.Errorf("grad = %v, want 0.5", grad)
	}
}

func TestSquaredError(t *testing.T) {
	loss, grad := SquaredError(2, -1)
	if math.Abs(loss-4.5) > 1e-12 {
		t.Errorf("loss = %v, want 4.5", loss)
	}
	if grad != 3 {
		t.Errorf("grad = %v, want 3", grad)
	}
}

// Property: Huber loss is non-negative, symmetric in the error, and bounded
// above by the squared error.
func TestHuberProperties(t *testing.T) {
	f := func(pred, target float64) bool {
		if math.IsNaN(pred) || math.IsInf(pred, 0) || math.IsNaN(target) || math.IsInf(target, 0) {
			return true
		}
		if math.Abs(pred) > 1e8 || math.Abs(target) > 1e8 {
			return true
		}
		l1, g1 := Huber(pred, target, 1.0)
		l2, g2 := Huber(target, pred, 1.0) // mirrored error
		sq, _ := SquaredError(pred, target)
		if l1 < 0 {
			return false
		}
		if math.Abs(l1-l2) > 1e-9*(1+l1) {
			return false
		}
		if math.Abs(g1+g2) > 1e-9*(1+math.Abs(g1)) {
			return false
		}
		return l1 <= sq+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the gradient is the derivative of the loss (numeric check).
func TestHuberGradientProperty(t *testing.T) {
	f := func(pred, target float64) bool {
		if math.IsNaN(pred) || math.IsInf(pred, 0) || math.IsNaN(target) || math.IsInf(target, 0) {
			return true
		}
		if math.Abs(pred) > 1e6 || math.Abs(target) > 1e6 {
			return true
		}
		// Skip the non-differentiable kink neighbourhood.
		if math.Abs(math.Abs(pred-target)-1.0) < 1e-3 {
			return true
		}
		const h = 1e-6
		lp, _ := Huber(pred+h, target, 1.0)
		lm, _ := Huber(pred-h, target, 1.0)
		numeric := (lp - lm) / (2 * h)
		_, grad := Huber(pred, target, 1.0)
		return math.Abs(numeric-grad) < 1e-4*(1+math.Abs(grad))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
