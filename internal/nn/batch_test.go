package nn

import (
	"math/rand"
	"testing"
)

// scalarReference runs the per-sample kernels over the mini-batch exactly
// as the scalar Update path does — ForwardAction then BackwardScalar per
// sample, in sample order — returning the outputs and the accumulated
// gradient.
func scalarReference(n *Network, states []float64, actions []int, gs []float64) (outs, grad []float64) {
	batch := len(actions)
	dim := n.sizes[0]
	outs = make([]float64, batch)
	grad = make([]float64, n.NumParams())
	for s := 0; s < batch; s++ {
		x := states[s*dim : (s+1)*dim]
		outs[s] = n.ForwardAction(x, actions[s])
		n.BackwardScalar(actions[s], gs[s], grad)
	}
	return outs, grad
}

// batchCase fills a batch-sized problem: states biased negative often
// enough that ReLU-dead units are common, random actions, and loss
// gradients with a sprinkling of exact zeros (a sample whose prediction
// hits its target exactly has a dead Huber gradient).
func batchCase(rng *rand.Rand, n *Network, batch int) (states []float64, actions []int, gs []float64) {
	states = n.BatchStates(batch)
	for i := range states {
		// Mean-shifted inputs: with He-initialised weights and zero
		// biases this leaves roughly half the hidden units dead.
		states[i] = rng.NormFloat64() - 0.5
	}
	actions = make([]int, batch)
	gs = make([]float64, batch)
	nact := n.sizes[len(n.sizes)-1]
	for s := range actions {
		actions[s] = rng.Intn(nact)
		switch rng.Intn(4) {
		case 0:
			gs[s] = 0 // dead loss gradient: prediction == target
		default:
			gs[s] = rng.NormFloat64()
		}
	}
	return states, actions, gs
}

// assertBatchMatchesScalar checks ForwardBatch/BackwardBatch against the
// per-sample reference for exact equality — no tolerances.
func assertBatchMatchesScalar(t *testing.T, trial int, n *Network, batch int, states []float64, actions []int, gs []float64) {
	t.Helper()
	ref := n.Clone()
	wantOuts, wantGrad := scalarReference(ref, states, actions, gs)

	outs := make([]float64, batch)
	grad := make([]float64, n.NumParams())
	n.ForwardBatch(actions, outs)
	n.BackwardBatch(actions, gs, grad)

	for s := range outs {
		if outs[s] != wantOuts[s] {
			t.Fatalf("trial %d batch %d: outs[%d] = %v batched, %v scalar", trial, batch, s, outs[s], wantOuts[s])
		}
	}
	for i := range grad {
		if grad[i] != wantGrad[i] {
			t.Fatalf("trial %d batch %d: grad[%d] = %v batched, %v scalar", trial, batch, i, grad[i], wantGrad[i])
		}
	}
}

// TestForwardBackwardBatchBitIdentical: the batched kernels must reproduce
// the per-sample scalar kernels bit for bit — exact equality on every
// output and every gradient component — across random nets (including
// zero-hidden-layer shapes), batch sizes spanning one sample to beyond a
// whole cache block, ReLU-dead units and zero-loss-gradient samples. Part
// of the determinism replay gate (-count=2).
func TestForwardBackwardBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := randNet(rng)
		for _, batch := range []int{1, 7, 128} {
			states, actions, gs := batchCase(rng, n, batch)
			assertBatchMatchesScalar(t, trial, n, batch, states, actions, gs)
		}
	}
}

// TestReplayCapacityBatchBitIdentical covers the largest batch the
// training loop can request — a full replay buffer (the paper's C = 4000)
// — on the paper's 5-32-15 network and a deeper shape.
func TestReplayCapacityBatchBitIdentical(t *testing.T) {
	const replayCapacity = 4000
	rng := rand.New(rand.NewSource(8))
	for trial, sizes := range [][]int{{5, 32, 15}, {4, 16, 16, 9}, {3, 6}} {
		n := New(rng, sizes...)
		states, actions, gs := batchCase(rng, n, replayCapacity)
		assertBatchMatchesScalar(t, trial, n, replayCapacity, states, actions, gs)
	}
}

// TestBatchScratchReuse: shrinking and regrowing the batch size must
// re-slice the scratch matrices correctly — stale rows of a larger earlier
// batch must not leak into a smaller later one.
func TestBatchScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := New(rng, 5, 32, 15)
	for trial, batch := range []int{128, 7, 1, 128, 33} {
		states, actions, gs := batchCase(rng, n, batch)
		assertBatchMatchesScalar(t, trial, n, batch, states, actions, gs)
	}
}

// TestBatchAllocationFree pins the hot-loop guarantee for the batched
// kernels: once the scratch has grown to the batch size, packing, forward
// and backward allocate nothing.
func TestBatchAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := New(rng, 5, 32, 15)
	const batch = 128
	states, actions, gs := batchCase(rng, n, batch)
	outs := make([]float64, batch)
	grad := make([]float64, n.NumParams())
	if avg := testing.AllocsPerRun(100, func() {
		buf := n.BatchStates(batch)
		copy(buf, states)
		n.ForwardBatch(actions, outs)
		n.BackwardBatch(actions, gs, grad)
	}); avg != 0 {
		t.Errorf("BatchStates+ForwardBatch+BackwardBatch allocates %.1f times per call, want 0", avg)
	}
}
