package nn

import (
	"math/rand"
	"testing"
)

// randNet builds a network with 0-2 hidden layers of varying width so the
// scalar fast paths are exercised on degenerate (no hidden layer) and deep
// shapes, not only the paper's 5-32-15 configuration.
func randNet(rng *rand.Rand) *Network {
	sizes := []int{rng.Intn(6) + 1}
	for h := rng.Intn(3); h > 0; h-- {
		sizes = append(sizes, rng.Intn(16)+1)
	}
	sizes = append(sizes, rng.Intn(8)+2)
	return New(rng, sizes...)
}

// TestForwardActionMatchesForward: the scalar forward path must be
// bit-identical to the full forward pass at the selected output — exact
// equality, not tolerance, because the training loop's determinism gates
// depend on it.
func TestForwardActionMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := randNet(rng)
		x := make([]float64, n.sizes[0])
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		action := rng.Intn(n.sizes[len(n.sizes)-1])
		want := append([]float64(nil), n.Forward(x)...)
		got := n.ForwardAction(x, action)
		if got != want[action] {
			t.Fatalf("trial %d: ForwardAction(%d) = %v, Forward gave %v", trial, action, got, want[action])
		}
	}
}

// TestBackwardScalarMatchesBackward: BackwardScalar(action, g) must produce
// exactly the gradient of Backward with a one-hot gradOut — same
// multiply-adds in the same order.
func TestBackwardScalarMatchesBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := randNet(rng)
		x := make([]float64, n.sizes[0])
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		out := n.sizes[len(n.sizes)-1]
		action := rng.Intn(out)
		g := rng.NormFloat64()

		n.Forward(x)
		gradOut := make([]float64, out)
		gradOut[action] = g
		want := make([]float64, n.NumParams())
		n.Backward(gradOut, want)

		got := make([]float64, n.NumParams())
		n.ForwardAction(x, action)
		n.BackwardScalar(action, g, got)

		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: grad[%d] = %v via scalar path, %v via Backward", trial, i, got[i], want[i])
			}
		}
	}
}

// TestBackwardScratchReuse: repeated Backward calls on fresh forwards must
// not be polluted by the network-owned delta scratch of earlier calls.
func TestBackwardScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := New(rng, 4, 8, 8, 3)
	x1 := []float64{0.3, -0.2, 0.9, 0.1}
	x2 := []float64{-1.2, 0.5, 0.0, 0.7}
	gradOut := []float64{0.5, -0.25, 1.5}

	// Reference gradient for x2 on a pristine clone.
	ref := make([]float64, n.NumParams())
	c := n.Clone()
	c.Forward(x2)
	c.Backward(gradOut, ref)

	// Same input after the scratch has been dirtied by an unrelated pass.
	n.Forward(x1)
	tmp := make([]float64, n.NumParams())
	n.Backward([]float64{9, 9, 9}, tmp)
	got := make([]float64, n.NumParams())
	n.Forward(x2)
	n.Backward(gradOut, got)

	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("grad[%d] = %v after scratch reuse, want %v", i, got[i], ref[i])
		}
	}
}

// TestBackwardAllocationFree pins the hot-loop guarantee: neither backward
// variant (nor the scalar forward) allocates once the network exists.
func TestBackwardAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := New(rng, 5, 32, 15)
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	grad := make([]float64, n.NumParams())
	gradOut := make([]float64, 15)
	gradOut[3] = 0.7

	if avg := testing.AllocsPerRun(100, func() {
		n.Forward(x)
		n.Backward(gradOut, grad)
	}); avg != 0 {
		t.Errorf("Forward+Backward allocates %.1f times per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		n.ForwardAction(x, 3)
		n.BackwardScalar(3, 0.7, grad)
	}); avg != 0 {
		t.Errorf("ForwardAction+BackwardScalar allocates %.1f times per call, want 0", avg)
	}
}
