package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestNet(t *testing.T, sizes ...int) *Network {
	t.Helper()
	return New(rand.New(rand.NewSource(1)), sizes...)
}

func TestNumParamsPaperNetwork(t *testing.T) {
	// The paper's 5-32-15 policy network: 5·32+32 + 32·15+15 = 687.
	n := newTestNet(t, 5, 32, 15)
	if got := n.NumParams(); got != 687 {
		t.Fatalf("NumParams = %d, want 687", got)
	}
}

func TestNumParamsGeneral(t *testing.T) {
	cases := []struct {
		sizes []int
		want  int
	}{
		{[]int{1, 1}, 2},
		{[]int{2, 3}, 9},
		{[]int{4, 8, 2}, 58},
		{[]int{3, 5, 5, 1}, 56},
	}
	for _, c := range cases {
		n := newTestNet(t, c.sizes...)
		if got := n.NumParams(); got != c.want {
			t.Errorf("NumParams(%v) = %d, want %d", c.sizes, got, c.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, sizes := range [][]int{{}, {5}, {5, 0}, {0, 3}, {5, -1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", sizes)
				}
			}()
			New(rand.New(rand.NewSource(1)), sizes...)
		}()
	}
}

func TestSizesCopies(t *testing.T) {
	n := newTestNet(t, 5, 32, 15)
	s := n.Sizes()
	s[0] = 99
	if n.Sizes()[0] != 5 {
		t.Fatal("Sizes returned a live reference")
	}
}

func TestForwardDeterministic(t *testing.T) {
	n := newTestNet(t, 5, 32, 15)
	x := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	a := append([]float64(nil), n.Forward(x)...)
	b := n.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Forward not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestForwardInputLengthPanics(t *testing.T) {
	n := newTestNet(t, 5, 8, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("Forward with wrong input length did not panic")
		}
	}()
	n.Forward([]float64{1, 2, 3})
}

func TestForwardLinearNetwork(t *testing.T) {
	// A 2-1 network with hand-set weights computes w·x + b exactly (the
	// output layer is linear).
	n := newTestNet(t, 2, 1)
	n.SetParams([]float64{2, -3, 0.5}) // w = [2, -3], b = 0.5
	out := n.Forward([]float64{1, 1})
	want := 2.0 - 3.0 + 0.5
	if math.Abs(out[0]-want) > 1e-12 {
		t.Fatalf("linear output = %v, want %v", out[0], want)
	}
}

func TestForwardReLUHidden(t *testing.T) {
	// 1-1-1 network: hidden = ReLU(w0·x + b0), out = w1·hidden + b1.
	n := newTestNet(t, 1, 1, 1)
	n.SetParams([]float64{1, 0, 1, 0}) // identity chain through ReLU
	if out := n.Forward([]float64{2})[0]; math.Abs(out-2) > 1e-12 {
		t.Fatalf("positive passthrough = %v, want 2", out)
	}
	if out := n.Forward([]float64{-2})[0]; out != 0 {
		t.Fatalf("ReLU should clamp negative pre-activation: got %v", out)
	}
}

func TestSetParamsValidation(t *testing.T) {
	n := newTestNet(t, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("SetParams with wrong length did not panic")
		}
	}()
	n.SetParams([]float64{1, 2, 3})
}

func TestSetParamsCopies(t *testing.T) {
	n := newTestNet(t, 2, 1)
	p := []float64{1, 2, 3}
	n.SetParams(p)
	p[0] = 99
	if n.Params()[0] != 1 {
		t.Fatal("SetParams retained the caller's slice")
	}
}

func TestCloneIndependence(t *testing.T) {
	n := newTestNet(t, 3, 4, 2)
	c := n.Clone()
	x := []float64{0.5, -0.2, 0.7}
	a := append([]float64(nil), n.Forward(x)...)
	b := c.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clone differs at output %d", i)
		}
	}
	// Mutating the clone must not affect the original.
	c.Params()[0] += 10
	b2 := n.Forward(x)
	for i := range a {
		if a[i] != b2[i] {
			t.Fatal("mutating clone changed original")
		}
	}
}

func TestHeInitStatistics(t *testing.T) {
	// He init: weight std should be near sqrt(2/fanIn) and biases zero.
	n := New(rand.New(rand.NewSource(7)), 100, 200)
	w := n.Params()[:100*200]
	var sum, sq float64
	for _, v := range w {
		sum += v
		sq += v * v
	}
	mean := sum / float64(len(w))
	std := math.Sqrt(sq/float64(len(w)) - mean*mean)
	wantStd := math.Sqrt(2.0 / 100)
	if math.Abs(mean) > 0.01 {
		t.Errorf("He init mean = %v, want ~0", mean)
	}
	if math.Abs(std-wantStd) > 0.01 {
		t.Errorf("He init std = %v, want ~%v", std, wantStd)
	}
	for i, b := range n.Params()[100*200:] {
		if b != 0 {
			t.Fatalf("bias %d = %v, want 0", i, b)
		}
	}
}

// TestGradientCheck validates Backward against numerical differentiation —
// the canonical correctness test for a hand-written backprop.
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := New(rng, 4, 6, 3)
	x := []float64{0.3, -0.6, 0.9, 0.2}
	target := []float64{0.1, -0.4, 0.7}

	// Loss: 0.5·Σ(out - target)², gradOut = out - target.
	loss := func() float64 {
		out := n.Forward(x)
		l := 0.0
		for i := range out {
			d := out[i] - target[i]
			l += 0.5 * d * d
		}
		return l
	}

	out := n.Forward(x)
	gradOut := make([]float64, len(out))
	for i := range out {
		gradOut[i] = out[i] - target[i]
	}
	grad := make([]float64, n.NumParams())
	n.Backward(gradOut, grad)

	const h = 1e-6
	params := n.Params()
	checked := 0
	for i := 0; i < len(params); i += 3 { // spot-check a spread of params
		orig := params[i]
		params[i] = orig + h
		lp := loss()
		params[i] = orig - h
		lm := loss()
		params[i] = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-grad[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("param %d: analytic %v vs numeric %v", i, grad[i], numeric)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d parameters checked", checked)
	}
}

// TestGradientCheckDeepNetwork repeats the numerical gradient check on a
// three-hidden-layer network, exercising ReLU backpropagation through
// multiple layers (the single-hidden-layer check cannot catch errors in
// the inter-hidden-layer delta propagation).
func TestGradientCheckDeepNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := New(rng, 3, 5, 4, 5, 2)
	x := []float64{0.7, -0.4, 0.2}
	target := []float64{0.3, -0.8}

	loss := func() float64 {
		out := n.Forward(x)
		l := 0.0
		for i := range out {
			d := out[i] - target[i]
			l += 0.5 * d * d
		}
		return l
	}
	out := n.Forward(x)
	gradOut := make([]float64, len(out))
	for i := range out {
		gradOut[i] = out[i] - target[i]
	}
	grad := make([]float64, n.NumParams())
	n.Backward(gradOut, grad)

	const h = 1e-6
	params := n.Params()
	for i := 0; i < len(params); i += 2 {
		orig := params[i]
		params[i] = orig + h
		lp := loss()
		params[i] = orig - h
		lm := loss()
		params[i] = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-grad[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("param %d: analytic %v vs numeric %v", i, grad[i], numeric)
		}
	}
}

func TestBackwardAccumulates(t *testing.T) {
	n := newTestNet(t, 2, 3, 1)
	x := []float64{0.4, -0.8}
	gradOut := []float64{1}
	g1 := make([]float64, n.NumParams())
	n.Forward(x)
	n.Backward(gradOut, g1)
	g2 := make([]float64, n.NumParams())
	n.Forward(x)
	n.Backward(gradOut, g2)
	n.Forward(x)
	n.Backward(gradOut, g2) // accumulate twice
	for i := range g1 {
		if math.Abs(g2[i]-2*g1[i]) > 1e-12 {
			t.Fatalf("gradient does not accumulate at %d: %v vs 2·%v", i, g2[i], g1[i])
		}
	}
}

func TestBackwardValidation(t *testing.T) {
	n := newTestNet(t, 2, 3, 2)
	n.Forward([]float64{1, 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Backward with wrong gradOut length did not panic")
			}
		}()
		n.Backward([]float64{1}, make([]float64, n.NumParams()))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Backward with wrong grad buffer did not panic")
			}
		}()
		n.Backward([]float64{1, 0}, make([]float64, 3))
	}()
}

func TestAverageParams(t *testing.T) {
	dst := make([]float64, 3)
	AverageParams(dst, []float64{1, 2, 3}, []float64{3, 4, 5})
	want := []float64{2, 3, 4}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AverageParams[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestAverageParamsSingleIdentity(t *testing.T) {
	src := []float64{1.5, -2.5}
	dst := make([]float64, 2)
	AverageParams(dst, src)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatal("single-source average should be identity")
		}
	}
}

func TestAverageParamsValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AverageParams with no sources did not panic")
			}
		}()
		AverageParams(make([]float64, 2))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AverageParams with length mismatch did not panic")
			}
		}()
		AverageParams(make([]float64, 2), []float64{1})
	}()
}

func TestWeightedAverageParams(t *testing.T) {
	dst := make([]float64, 2)
	WeightedAverageParams(dst, [][]float64{{1, 0}, {5, 8}}, []float64{3, 1})
	if dst[0] != 2 || dst[1] != 2 {
		t.Fatalf("weighted average %v, want [2 2]", dst)
	}
}

func TestWeightedAverageEqualWeightsMatchesUnweighted(t *testing.T) {
	srcs := [][]float64{{1, 3, -2}, {5, 1, 4}, {0, 2, 7}}
	a := make([]float64, 3)
	AverageParams(a, srcs...)
	b := make([]float64, 3)
	WeightedAverageParams(b, srcs, []float64{2, 2, 2})
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("equal weights differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWeightedAverageParamsValidation(t *testing.T) {
	cases := []func(){
		func() { WeightedAverageParams(make([]float64, 1), nil, nil) },
		func() { WeightedAverageParams(make([]float64, 1), [][]float64{{1}}, []float64{1, 2}) },
		func() { WeightedAverageParams(make([]float64, 1), [][]float64{{1}}, []float64{-1}) },
		func() { WeightedAverageParams(make([]float64, 1), [][]float64{{1}}, []float64{0}) },
		func() { WeightedAverageParams(make([]float64, 1), [][]float64{{1, 2}}, []float64{1}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: averaging N copies of the same vector returns that vector.
func TestAverageParamsIdempotentProperty(t *testing.T) {
	f := func(raw []float64, nCopies uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			// Skip non-finite inputs and magnitudes whose N-fold sum would
			// overflow.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > math.MaxFloat64/8 {
				return true
			}
		}
		n := int(nCopies%5) + 1
		srcs := make([][]float64, n)
		for i := range srcs {
			srcs[i] = raw
		}
		dst := make([]float64, len(raw))
		AverageParams(dst, srcs...)
		for i := range raw {
			if math.Abs(dst[i]-raw[i]) > 1e-9*(1+math.Abs(raw[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the average is bounded by the element-wise min and max of the
// sources.
func TestAverageParamsBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		dim := rng.Intn(10) + 1
		n := rng.Intn(4) + 1
		srcs := make([][]float64, n)
		for i := range srcs {
			srcs[i] = make([]float64, dim)
			for j := range srcs[i] {
				srcs[i][j] = rng.NormFloat64() * 10
			}
		}
		dst := make([]float64, dim)
		AverageParams(dst, srcs...)
		for j := 0; j < dim; j++ {
			lo, hi := srcs[0][j], srcs[0][j]
			for i := 1; i < n; i++ {
				lo = math.Min(lo, srcs[i][j])
				hi = math.Max(hi, srcs[i][j])
			}
			if dst[j] < lo-1e-9 || dst[j] > hi+1e-9 {
				t.Fatalf("average %v outside [%v, %v]", dst[j], lo, hi)
			}
		}
	}
}
