package experiment

import "testing"

func TestDefaultOptionsMatchPaper(t *testing.T) {
	o := DefaultOptions()
	if o.Rounds != 100 {
		t.Errorf("rounds = %d, want 100 (Table I)", o.Rounds)
	}
	if o.StepsPerRound != 100 {
		t.Errorf("steps per round = %d, want 100 (Table I)", o.StepsPerRound)
	}
	if o.IntervalS != 0.5 {
		t.Errorf("control interval = %v, want 0.5 s (Table I)", o.IntervalS)
	}
	if o.Table.Len() != 15 {
		t.Errorf("V/f levels = %d, want 15", o.Table.Len())
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
}

func TestOptionsValidate(t *testing.T) {
	mutations := []func(*Options){
		func(o *Options) { o.Rounds = 0 },
		func(o *Options) { o.StepsPerRound = -1 },
		func(o *Options) { o.IntervalS = 0 },
		func(o *Options) { o.EvalSteps = 0 },
		func(o *Options) { o.ExecEvalEvery = 0 },
		func(o *Options) { o.MaxExecSteps = 0 },
		func(o *Options) { o.Table = nil },
		func(o *Options) { o.Core.Actions = 10 }, // mismatch with the 15-level table
		func(o *Options) { o.Core.BatchSize = 0 },
	}
	for i, mutate := range mutations {
		o := DefaultOptions()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestSubseedDeterministicAndDistinct(t *testing.T) {
	if subseed(1, 2, 3) != subseed(1, 2, 3) {
		t.Fatal("subseed not deterministic")
	}
	seen := map[int64]bool{}
	for root := int64(0); root < 10; root++ {
		for a := int64(0); a < 10; a++ {
			for b := int64(0); b < 10; b++ {
				s := subseed(root, a, b)
				if seen[s] {
					t.Fatalf("subseed collision at (%d, %d, %d)", root, a, b)
				}
				seen[s] = true
			}
		}
	}
}

func TestSubseedOrderSensitive(t *testing.T) {
	if subseed(1, 2, 3) == subseed(1, 3, 2) {
		t.Fatal("subseed ignores identifier order")
	}
}

func TestNewRNGIndependentStreams(t *testing.T) {
	a := newRNG(1, 1)
	b := newRNG(1, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between supposedly independent streams", same)
	}
}
