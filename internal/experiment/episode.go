package experiment

import (
	"fedpower/internal/sim"
	"fedpower/internal/trace"
	"fedpower/internal/workload"
)

// RecordEpisode trains the federated policy on the split-half scenario,
// then runs one greedy episode of the named application to completion,
// recording every control interval to rec. It returns the number of
// recorded steps. This is the library's "export a trace for offline
// analysis" entry point (cmd/fedpower trace).
func RecordEpisode(o Options, appName string, rec trace.Recorder) (int, error) {
	if err := o.Validate(); err != nil {
		return 0, err
	}
	spec, err := workload.ByName(appName)
	if err != nil {
		return 0, err
	}
	model, err := trainFederated(o, 30, SplitHalf())
	if err != nil {
		return 0, err
	}
	return RecordPolicyEpisode(o, NewNeuralPolicy(o.Core, model), spec, rec)
}

// RecordPolicyEpisode runs one greedy episode of spec under an arbitrary
// policy, recording each interval. The episode runs to completion, bounded
// by MaxExecSteps.
func RecordPolicyEpisode(o Options, pol Policy, spec workload.Spec, rec trace.Recorder) (int, error) {
	dev := sim.NewDevice(o.Table, o.Power, newRNG(o.Seed, 6000))
	if o.Thermal {
		dev.Thermal = sim.DefaultThermalModel()
	}
	dev.Load(workload.NewApp(spec))
	dev.SetLevel(bootstrapLevel(o.Table))
	obs := dev.Step(o.IntervalS)

	timeS := obs.ElapsedS
	steps := 0
	for steps < o.MaxExecSteps && !dev.Done() {
		action := pol.Action(obs)
		dev.SetLevel(action)
		obs = dev.Step(o.IntervalS)
		timeS += obs.ElapsedS
		steps++
		entry := trace.Entry{
			Step:     steps,
			TimeS:    timeS,
			App:      spec.Name,
			Level:    obs.Level,
			FreqMHz:  obs.FreqMHz,
			PowerW:   obs.PowerW,
			IPC:      obs.IPC,
			MissRate: obs.MissRate,
			MPKI:     obs.MPKI,
			Reward:   o.Core.Reward.Reward(obs.NormFreq, obs.PowerW),
		}
		if err := rec.Record(entry); err != nil {
			return steps, err
		}
	}
	if err := rec.Flush(); err != nil {
		return steps, err
	}
	return steps, nil
}

// ReplayEpisodeStats summarises a recorded trace: its length, mean power,
// mean reward and budget violations — the consistency check used by the
// trace tests and the CLI.
type ReplayEpisodeStats struct {
	Steps      int
	MeanPowerW float64
	MeanReward float64
	Violations int
}

// SummariseTrace computes ReplayEpisodeStats over entries with the given
// power budget.
func SummariseTrace(entries []trace.Entry, budgetW float64) ReplayEpisodeStats {
	var s ReplayEpisodeStats
	s.Steps = len(entries)
	for _, e := range entries {
		s.MeanPowerW += e.PowerW
		s.MeanReward += e.Reward
		if e.PowerW > budgetW {
			s.Violations++
		}
	}
	if s.Steps > 0 {
		s.MeanPowerW /= float64(s.Steps)
		s.MeanReward /= float64(s.Steps)
	}
	return s
}
