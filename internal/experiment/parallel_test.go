package experiment

// Determinism contract of the parallel experiment engine: every result is
// bit-identical regardless of the pool width, because each unit of work owns
// derived seed streams and its own result slot, and all floating-point
// aggregation consumes slots in stable index order. The race gate
// (go test -race) runs these same fan-outs with the full pool, so data-race
// freedom is covered by the standard CI invocation.

import (
	"reflect"
	"testing"
)

// TestParallelMatchesSequential pins the bit-identical guarantee documented
// on Options.Parallelism: scenario 2 (the Fig. 4 scenario, two devices plus
// the federated unit, with concurrent clients inside each round) and a
// hyper-parameter sweep produce exactly the same results at width 1 and
// width 8.
func TestParallelMatchesSequential(t *testing.T) {
	o := testOptions()
	o.Rounds = 6
	sc := TableII()[1]

	runScenario := func(width int) *ScenarioResult {
		po := o
		po.Parallelism = width
		res, err := RunScenario(po, 1, sc)
		if err != nil {
			t.Fatalf("RunScenario width %d: %v", width, err)
		}
		return res
	}
	seqScenario := runScenario(1)
	parScenario := runScenario(8)
	if !reflect.DeepEqual(seqScenario, parScenario) {
		t.Errorf("scenario results differ between Parallelism=1 and Parallelism=8:\nseq: %+v\npar: %+v",
			seqScenario, parScenario)
	}

	runSweep := func(width int) *SweepResult {
		po := o
		po.Parallelism = width
		res, err := RunSweep(po, "lr", LearningRateSweep(0.001, 0.005, 0.02))
		if err != nil {
			t.Fatalf("RunSweep width %d: %v", width, err)
		}
		return res
	}
	seqSweep := runSweep(1)
	parSweep := runSweep(8)
	if !reflect.DeepEqual(seqSweep, parSweep) {
		t.Errorf("sweep results differ between Parallelism=1 and Parallelism=8:\nseq: %+v\npar: %+v",
			seqSweep, parSweep)
	}
}
