package experiment

import (
	"math"
	"testing"
	"time"

	"fedpower/internal/core"
	"fedpower/internal/fed"
	"fedpower/internal/workload"
)

// codecOptions is the shared CI-sized training budget of the codec
// acceptance tests: the tinyResilience shape over a chosen Table II
// scenario.
func codecOptions() Options {
	o := smallOptions()
	o.Rounds = 3
	o.StepsPerRound = 10
	o.EvalSteps = 8
	return o
}

// runCodecFederation trains one federation of the scenario's devices under
// the codec and returns every round's aggregated global model plus the
// final greedy-evaluation reward. With tcp unset it uses the in-process
// wire emulation (fed.RunParallelCodec) at the given width; with tcp set it
// runs the real TCP transport (width does not apply — the server always
// handles connections concurrently). Devices are built fresh from the same
// seed streams either way, so any divergence is the transport's.
func runCodecFederation(t *testing.T, o Options, sc Scenario, codec fed.Codec, width int, tcp bool) ([][]float64, float64) {
	t.Helper()
	devices := len(sc.Devices)
	clients := make([]fed.Client, devices)
	for i, names := range sc.Devices {
		specs, err := workload.ByNames(names...)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = newNeuralDevice(o, int64(idResilienceDevice+i), specs)
	}
	initial := core.NewController(o.Core, newRNG(o.Seed, idResilienceInit)).ModelParams()

	var rounds [][]float64
	hook := func(round int, g []float64) {
		rounds = append(rounds, append([]float64(nil), g...))
	}

	var final []float64
	if tcp {
		srv, err := fed.NewServer("127.0.0.1:0", devices, o.Rounds)
		if err != nil {
			t.Fatal(err)
		}
		srv.Codec = codec
		srv.RoundTimeout = 30 * time.Second
		srv.WriteTimeout = 30 * time.Second
		srv.JoinTimeout = 30 * time.Second
		errs := make(chan error, devices)
		for i := range clients {
			go func(i int) {
				conn, err := fed.DialCodec(srv.Addr(), uint32(i+1), codec)
				if err != nil {
					errs <- err
					return
				}
				defer func() { _ = conn.Close() }()
				_, err = conn.Participate(clients[i])
				errs <- err
			}(i)
		}
		final, err = srv.Serve(initial, hook)
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
		for range clients {
			if err := <-errs; err != nil {
				t.Fatalf("participant: %v", err)
			}
		}
	} else {
		final = append([]float64(nil), initial...)
		if err := fed.RunParallelCodec(final, clients, o.Rounds, width, codec, hook); err != nil {
			t.Fatal(err)
		}
	}

	pol := NewNeuralPolicy(o.Core, final)
	sum := 0.0
	for a, spec := range EvalApps() {
		sum += evaluate(o, pol, spec, false, idResilienceEval, int64(a)).AvgReward
	}
	return rounds, sum / float64(len(EvalApps()))
}

// sameRounds requires two runs' per-round aggregated parameter histories to
// be bit-identical.
func sameRounds(t *testing.T, label string, base, got [][]float64) {
	t.Helper()
	if len(base) != len(got) {
		t.Fatalf("%s: %d rounds, want %d", label, len(got), len(base))
	}
	for r := range base {
		if len(base[r]) != len(got[r]) {
			t.Fatalf("%s: round %d has %d params, want %d", label, r+1, len(got[r]), len(base[r]))
		}
		for i := range base[r] {
			if math.Float64bits(base[r][i]) != math.Float64bits(got[r][i]) {
				t.Fatalf("%s: round %d param %d: %v, want %v (must be bit-identical)",
					label, r+1, i, got[r][i], base[r][i])
			}
		}
	}
}

// TestCodecDenseBitIdentical: the dense codec's federated training result —
// every round's aggregated parameters and the final evaluation reward — is
// bit-identical across the in-process wire emulation at parallelism 1 and
// 8 and the real TCP transport. This is the emulation's correctness
// contract, and under `-count=2` (the determinism gate) it also proves the
// whole path replays bit-identically.
func TestCodecDenseBitIdentical(t *testing.T) {
	o := codecOptions()
	sc := TableII()[0]
	baseRounds, baseReward := runCodecFederation(t, o, sc, fed.DenseCodec(), 1, false)
	for _, v := range []struct {
		label string
		width int
		tcp   bool
	}{
		{"in-process width 8", 8, false},
		{"TCP", 0, true},
	} {
		rounds, reward := runCodecFederation(t, o, sc, fed.DenseCodec(), v.width, v.tcp)
		sameRounds(t, "dense "+v.label, baseRounds, rounds)
		if math.Float64bits(reward) != math.Float64bits(baseReward) {
			t.Fatalf("dense %s: final reward %v, want %v", v.label, reward, baseReward)
		}
	}
}

// TestCodecDeltaBitIdentical: the delta codec reconstructs every exchanged
// model bit-exactly, so a delta federation — in-process at parallelism 1
// and 8, and over TCP — must be bit-identical to the dense one, round by
// round and in the final reward. The TCP leg is the delta-codec round the
// determinism replay gate re-runs under -count=2 and -race.
func TestCodecDeltaBitIdentical(t *testing.T) {
	o := codecOptions()
	sc := TableII()[0]
	baseRounds, baseReward := runCodecFederation(t, o, sc, fed.DenseCodec(), 1, false)
	for _, v := range []struct {
		label string
		width int
		tcp   bool
	}{
		{"in-process width 1", 1, false},
		{"in-process width 8", 8, false},
		{"TCP", 0, true},
	} {
		rounds, reward := runCodecFederation(t, o, sc, fed.DeltaCodec(), v.width, v.tcp)
		sameRounds(t, "delta "+v.label, baseRounds, rounds)
		if math.Float64bits(reward) != math.Float64bits(baseReward) {
			t.Fatalf("delta %s: final reward %v, want %v", v.label, reward, baseReward)
		}
	}
}

// quantRewardTolerance bounds how far the quantized federation's final
// evaluation reward may sit from the dense run's. The band was sized from
// the seeded-replicate spread at this training budget — seeds 1..5 of the
// dense scenario-2 run span 0.44 of reward, so 0.30 keeps quantization
// noise strictly inside run-to-run noise. (The diff observed when pinning
// was < 1e-3, so this also has lots of slack against flakiness.)
const quantRewardTolerance = 0.30

// TestCodecQuantCutsBytesWithinNoise is the quantized codec's acceptance
// pin on the paper's scenario 2 (the hardest local-only case): a quant8
// resilience run must move ≥4× fewer model-bearing bytes than the dense
// run, its on-wire counters must match the codec's predicted frame sizes
// exactly, and its final reward must stay inside the seeded-replicate noise
// band around the dense result.
func TestCodecQuantCutsBytesWithinNoise(t *testing.T) {
	run := func(codec fed.Codec) *ResilienceResult {
		r := tinyResilience()
		r.Options = codecOptions()
		r.Scenario = TableII()[1]
		r.Codec = codec
		res, err := RunResilience(r)
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != "" {
			t.Fatalf("%s run degraded: %s", codec, res.Err)
		}
		return res
	}
	dense := run(fed.DenseCodec())
	quant, err := fed.QuantCodec(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := run(quant)

	o := codecOptions()
	n := core.NewController(o.Core, newRNG(1, 0)).NumParams()
	devices := len(TableII()[1].Devices)
	rounds := o.Rounds

	// On-wire counters must be the actual per-codec frame sizes.
	if want := int64(devices*(rounds+1)) * int64(fed.DenseCodec().TransferSize(n)); dense.ServerBytesSent != want {
		t.Errorf("dense server sent %d B, want %d", dense.ServerBytesSent, want)
	}
	if want := int64(devices*(rounds+1)) * int64(quant.TransferSize(n)); q.ServerBytesSent != want {
		t.Errorf("quant8 server sent %d B, want %d", q.ServerBytesSent, want)
	}
	if want := int64(devices*rounds) * int64(quant.TransferSize(n)); q.ServerBytesReceived != want {
		t.Errorf("quant8 server received %d B, want %d", q.ServerBytesReceived, want)
	}

	// Model-bearing bytes (frames minus protocol framing and codec
	// metadata, the §IV-C metric) must shrink at least 4×.
	msgs := int64(devices * (2*rounds + 1))
	denseModel := dense.ServerBytesSent + dense.ServerBytesReceived - msgs*int64(fed.DenseCodec().TransferSize(n)-fed.DenseCodec().ModelBytes(n))
	quantModel := q.ServerBytesSent + q.ServerBytesReceived - msgs*int64(quant.TransferSize(n)-quant.ModelBytes(n))
	if denseModel < 4*quantModel {
		t.Errorf("quant8 moved %d model-bearing bytes vs dense %d — reduction %.2f×, want >= 4×",
			quantModel, denseModel, float64(denseModel)/float64(quantModel))
	}

	// Accuracy: quantization noise stays inside the replicate noise band.
	if diff := math.Abs(q.FinalReward - dense.FinalReward); diff > quantRewardTolerance {
		t.Errorf("quant8 final reward %.4f vs dense %.4f: |diff| %.4f exceeds the %.2f noise band",
			q.FinalReward, dense.FinalReward, diff, quantRewardTolerance)
	}
	t.Logf("dense reward %.4f (%d model B), quant8 reward %.4f (%d model B)",
		dense.FinalReward, denseModel, q.FinalReward, quantModel)
}