package experiment

import (
	"bytes"
	"testing"

	"fedpower/internal/fed"
)

func TestRunPrivacyArchitectures(t *testing.T) {
	if testing.Short() {
		t.Skip("privacy training skipped in -short mode")
	}
	o := smallOptions()
	o.Rounds = 30
	res, err := RunPrivacy(o)
	if err != nil {
		t.Fatal(err)
	}

	// Local-only moves no bytes at all.
	if res.Local.TotalBytes != 0 || res.Local.RawTraceBytes != 0 {
		t.Errorf("local-only communicated: %+v", res.Local)
	}
	// Federated moves exactly 2 model transfers per device per round and
	// exposes zero raw trace bytes.
	wantFed := int64(o.Rounds) * 2 * 2 * int64(fed.TransferSize(687))
	if res.Federated.TotalBytes != wantFed {
		t.Errorf("federated bytes = %d, want %d", res.Federated.TotalBytes, wantFed)
	}
	if res.Federated.RawTraceBytes != 0 {
		t.Errorf("federated exposed %d raw bytes, want 0", res.Federated.RawTraceBytes)
	}
	// Central exposes exactly rounds × devices × T samples × 28 B of raw
	// traces.
	wantRaw := int64(o.Rounds) * 2 * int64(o.StepsPerRound) * 28
	if res.Central.RawTraceBytes != wantRaw {
		t.Errorf("central raw bytes = %d, want %d", res.Central.RawTraceBytes, wantRaw)
	}
	if res.Central.TotalBytes <= res.Central.RawTraceBytes {
		t.Error("central total must include the model downloads")
	}

	// Learning sanity: all three architectures end with a usable policy.
	for _, a := range []ArchEval{res.Local, res.Federated, res.Central} {
		if a.AvgReward < 0 {
			t.Errorf("%s ended with negative average reward %v", a.Name, a.AvgReward)
		}
	}
	// Collaboration (either flavour) should not lose to local-only by a
	// material margin at the same budget.
	if res.Federated.AvgReward < res.Local.AvgReward-0.1 {
		t.Errorf("federated (%v) materially below local-only (%v)", res.Federated.AvgReward, res.Local.AvgReward)
	}
}

func TestRunPrivacyValidation(t *testing.T) {
	o := smallOptions()
	o.Rounds = 0
	if _, err := RunPrivacy(o); err == nil {
		t.Error("invalid options accepted")
	}
}

func TestWritePrivacyCSV(t *testing.T) {
	res := &PrivacyResult{
		Local:     ArchEval{Name: "local-only", AvgReward: 0.6},
		Federated: ArchEval{Name: "federated (ours)", AvgReward: 0.7, TotalBytes: 1000},
		Central:   ArchEval{Name: "central (raw traces)", AvgReward: 0.75, TotalBytes: 2000, RawTraceBytes: 1500},
	}
	var buf bytes.Buffer
	if err := WritePrivacyCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 4 {
		t.Fatalf("%d rows, want header + 3", len(records))
	}
	if records[3][3] != "1500" {
		t.Fatalf("central raw bytes cell %q", records[3][3])
	}
}

func TestCentralDeviceCollectRound(t *testing.T) {
	o := smallOptions()
	specs := EvalApps()[:2]
	d := newCentralDevice(o, 1, specs)
	policy := append([]float64(nil), d.dev.Ctrl.ModelParams()...)
	samples := d.CollectRound(policy)
	if len(samples) != o.StepsPerRound {
		t.Fatalf("collected %d samples, want %d", len(samples), o.StepsPerRound)
	}
	for i, s := range samples {
		if len(s.State) != 5 {
			t.Fatalf("sample %d state dim %d", i, len(s.State))
		}
		if s.Action < 0 || s.Action >= 15 {
			t.Fatalf("sample %d action %d", i, s.Action)
		}
		if s.Reward < -1 || s.Reward > 1 {
			t.Fatalf("sample %d reward %v", i, s.Reward)
		}
	}
	// The device-side controller must not have trained (no buffer growth).
	if d.dev.Ctrl.Buffer().Len() != 0 {
		t.Fatalf("central device trained locally: buffer %d", d.dev.Ctrl.Buffer().Len())
	}
	// Exploration decays across rounds.
	tauBefore := d.dev.Ctrl.Tau()
	d.CollectRound(policy)
	if d.dev.Ctrl.Tau() >= tauBefore {
		t.Fatal("exploration schedule did not advance")
	}
}
