package experiment

import (
	"fedpower/internal/core"
	"fedpower/internal/sim"
)

// Fig2Result tabulates the reward signal of Eq. (4) — the data behind
// Fig. 2: for every V/f level of the processor, the reward as a function of
// the power consumption observed in the following timestep.
type Fig2Result struct {
	// FreqMHz lists the processor's frequency levels.
	FreqMHz []float64
	// PowerW is the swept power axis.
	PowerW []float64
	// Reward[k][j] is the reward for running at level k while drawing
	// PowerW[j] watts.
	Reward [][]float64
	// Params echoes the reward parameters used.
	Params core.RewardParams
}

// RunFig2 sweeps the reward function over the V/f table and a uniform power
// axis from 0 to P_crit + 4·k_offset, well past the saturation point.
func RunFig2(table *sim.VFTable, rp core.RewardParams, points int) *Fig2Result {
	if points < 2 {
		points = 2
	}
	maxP := rp.PCritW + 4*rp.KOffsetW
	powers := make([]float64, points)
	for j := range powers {
		powers[j] = maxP * float64(j) / float64(points-1)
	}
	return RunFig2Powers(table, rp, powers)
}

// RunFig2Powers sweeps the reward function over the V/f table and an
// explicit power axis, letting callers resolve the transition band between
// P_crit and P_crit + 2·k_offset finely.
func RunFig2Powers(table *sim.VFTable, rp core.RewardParams, powers []float64) *Fig2Result {
	res := &Fig2Result{Params: rp, PowerW: append([]float64(nil), powers...)}
	for k := 0; k < table.Len(); k++ {
		res.FreqMHz = append(res.FreqMHz, table.Level(k).FreqMHz)
		row := make([]float64, len(res.PowerW))
		for j, p := range res.PowerW {
			row[j] = rp.Reward(table.NormFreq(k), p)
		}
		res.Reward = append(res.Reward, row)
	}
	return res
}
