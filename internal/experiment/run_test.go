package experiment

import (
	"testing"

	"fedpower/internal/workload"
)

// smallOptions returns a reduced-budget configuration that keeps the
// behavioural structure (two devices, rotation evaluation) while running in
// well under a second.
func smallOptions() Options {
	o := DefaultOptions()
	o.Rounds = 12
	o.StepsPerRound = 40
	o.EvalSteps = 15
	o.ExecEvalEvery = 6
	o.Seed = 1
	return o
}

func TestRunScenarioShapes(t *testing.T) {
	o := smallOptions()
	res, err := RunScenario(o, 0, TableII()[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fed) != o.Rounds {
		t.Fatalf("fed trace has %d rounds, want %d", len(res.Fed), o.Rounds)
	}
	if len(res.Local) != 2 {
		t.Fatalf("%d local traces, want 2", len(res.Local))
	}
	for d, trace := range res.Local {
		if len(trace) != o.Rounds {
			t.Fatalf("local device %d trace has %d rounds", d, len(trace))
		}
	}
	// Round numbering and app rotation follow the paper's protocol.
	evalSet := EvalApps()
	for i, e := range res.Fed {
		if e.Round != i+1 {
			t.Errorf("fed round %d labelled %d", i+1, e.Round)
		}
		if e.App != evalSet[i%len(evalSet)].Name {
			t.Errorf("round %d evaluated %s, want rotation %s", e.Round, e.App, evalSet[i%len(evalSet)].Name)
		}
		if e.Reward < -1 || e.Reward > 1 {
			t.Errorf("round %d reward %v outside [-1, 1]", e.Round, e.Reward)
		}
		if e.MeanNormFreq < 0 || e.MeanNormFreq > 1 {
			t.Errorf("round %d mean norm freq %v outside [0, 1]", e.Round, e.MeanNormFreq)
		}
	}
}

func TestRunScenarioDeterministic(t *testing.T) {
	o := smallOptions()
	a, err := RunScenario(o, 0, TableII()[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(o, 0, TableII()[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Fed {
		if a.Fed[i] != b.Fed[i] {
			t.Fatalf("fed round %d differs across identical runs", i+1)
		}
	}
	for d := range a.Local {
		for i := range a.Local[d] {
			if a.Local[d][i] != b.Local[d][i] {
				t.Fatalf("local device %d round %d differs", d, i+1)
			}
		}
	}
}

func TestRunScenarioValidatesInput(t *testing.T) {
	o := smallOptions()
	o.Rounds = 0
	if _, err := RunScenario(o, 0, TableII()[0]); err == nil {
		t.Error("invalid options accepted")
	}
	if _, err := RunScenario(smallOptions(), 0, Scenario{Name: "bad", Devices: [][]string{{"doom"}}}); err == nil {
		t.Error("invalid scenario accepted")
	}
}

// TestFederatedBeatsLocalOnScenario2 is the behavioural heart of Fig. 3:
// with the memory-vs-compute split of scenario 2, federated training must
// outperform the local-only policies on the full evaluation suite. Run at a
// reduced but still meaningful budget; the experiment is fully
// deterministic, so this is not flaky.
func TestFederatedBeatsLocalOnScenario2(t *testing.T) {
	if testing.Short() {
		t.Skip("training comparison skipped in -short mode")
	}
	o := smallOptions()
	o.Rounds = 40
	o.StepsPerRound = 100
	res, err := RunScenario(o, 1, TableII()[1])
	if err != nil {
		t.Fatal(err)
	}
	fed := res.AvgFedReward()
	local := res.AvgLocalReward()
	if fed <= local {
		t.Fatalf("federated avg reward %v does not beat local-only %v", fed, local)
	}
	// The gap must be material, not a rounding fluke (the paper reports a
	// 57 % improvement at the full budget).
	if fed-local < 0.05 {
		t.Fatalf("federated advantage too small: fed %v vs local %v", fed, local)
	}
}

func TestFig3RunsAllScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario training skipped in -short mode")
	}
	o := smallOptions()
	o.Rounds = 6
	res, err := RunFig3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 3 {
		t.Fatalf("%d scenarios, want 3", len(res.Scenarios))
	}
	if _, shifted := res.ImprovementPct(); shifted {
		// Informational: at tiny budgets local rewards may dip negative;
		// the shifted ratio must still be finite.
		t.Log("improvement used the shifted ratio")
	}
}

func TestFig4FromScenario(t *testing.T) {
	o := smallOptions()
	res, err := RunScenario(o, 1, TableII()[1])
	if err != nil {
		t.Fatal(err)
	}
	f4, err := Fig4FromScenario(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Rounds) != o.Rounds {
		t.Fatalf("fig4 has %d rounds, want %d", len(f4.Rounds), o.Rounds)
	}
	for i := range f4.Rounds {
		for _, v := range []float64{f4.LocalA[i], f4.LocalB[i], f4.Fed[i]} {
			if v < 0 || v > 1 {
				t.Fatalf("normalised frequency %v outside [0, 1] at round %d", v, i+1)
			}
		}
	}
}

func TestFig4RequiresTwoDevices(t *testing.T) {
	res := &ScenarioResult{
		Scenario: Scenario{Name: "x"},
		Local:    [][]RoundEval{{}},
	}
	if _, err := Fig4FromScenario(res); err == nil {
		t.Fatal("single-device scenario accepted for Fig. 4")
	}
}

func TestRoundsToReach(t *testing.T) {
	mk := func(rewards ...float64) []RoundEval {
		out := make([]RoundEval, len(rewards))
		for i, r := range rewards {
			out[i] = RoundEval{Round: i + 1, Reward: r}
		}
		return out
	}
	cases := []struct {
		name      string
		evals     []RoundEval
		threshold float64
		window    int
		want      int
	}{
		{"immediate", mk(0.6, 0.7), 0.5, 1, 1},
		{"later", mk(0.1, 0.2, 0.8), 0.5, 1, 3},
		{"never", mk(0.1, 0.2, 0.3), 0.5, 1, -1},
		// A single early spike must NOT count: the full 3-round window
		// around it averages below the threshold.
		{"spike ignored", mk(0.9, 0.0, 0.0, 0.0), 0.5, 3, -1},
		{"window delays", mk(0.0, 0.9, 0.9, 0.9), 0.8, 3, 4},
		{"full window required", mk(0.9, 0.9), 0.5, 3, -1},
		{"window boundary", mk(0.6, 0.6, 0.6), 0.5, 3, 3},
		{"empty", nil, 0.5, 2, -1},
	}
	for _, c := range cases {
		if got := RoundsToReach(c.evals, c.threshold, c.window); got != c.want {
			t.Errorf("%s: RoundsToReach = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestRoundsToSustain(t *testing.T) {
	mk := func(rewards ...float64) []RoundEval {
		out := make([]RoundEval, len(rewards))
		for i, r := range rewards {
			out[i] = RoundEval{Round: i + 1, Reward: r}
		}
		return out
	}
	cases := []struct {
		name      string
		evals     []RoundEval
		threshold float64
		window    int
		want      int
	}{
		{"sustained from start", mk(0.6, 0.6, 0.6), 0.5, 2, 2},
		{"sustained after dip", mk(0.0, 0.0, 0.6, 0.6, 0.6), 0.5, 2, 4},
		{"touch then degrade never sustains", mk(0.6, 0.6, 0.0, 0.0), 0.5, 2, -1},
		{"too short", mk(0.9), 0.5, 2, -1},
		{"never", mk(0.1, 0.1, 0.1), 0.5, 2, -1},
		{"single window at end", mk(0.0, 0.0, 0.9, 0.9), 0.5, 2, 4},
	}
	for _, c := range cases {
		if got := RoundsToSustain(c.evals, c.threshold, c.window); got != c.want {
			t.Errorf("%s: RoundsToSustain = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestRoundsToSustainWindowValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window did not panic")
		}
	}()
	RoundsToSustain(nil, 0.5, 0)
}

func TestRoundsToReachWindowValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window did not panic")
		}
	}()
	RoundsToReach(nil, 0.5, 0)
}

func TestFederatedConvergesFasterOnScenario2(t *testing.T) {
	if testing.Short() {
		t.Skip("training comparison skipped in -short mode")
	}
	// The paper's convergence claim: the federated trace reaches a given
	// reward level at least as early as the weaker local trace.
	o := smallOptions()
	o.Rounds = 40
	o.StepsPerRound = 100
	res, err := RunScenario(o, 1, TableII()[1])
	if err != nil {
		t.Fatal(err)
	}
	const threshold, window = 0.4, 6
	fed := RoundsToSustain(res.Fed, threshold, window)
	localB := RoundsToSustain(res.Local[1], threshold, window)
	if fed == -1 {
		t.Fatalf("federated trace never sustained %v", threshold)
	}
	if localB != -1 && localB < fed {
		t.Errorf("ocean/radix local policy sustained %v from round %d, before federated (%d)", threshold, localB, fed)
	}
}

func TestNeuralDeviceTrainRound(t *testing.T) {
	o := smallOptions()
	specs, err := workload.ByNames("fft", "lu")
	if err != nil {
		t.Fatal(err)
	}
	dev := newNeuralDevice(o, 1, specs)
	initial := append([]float64(nil), dev.Ctrl.ModelParams()...)
	out, err := dev.TrainRound(1, initial)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(initial) {
		t.Fatalf("returned %d params, want %d", len(out), len(initial))
	}
	if dev.Ctrl.Step() != o.StepsPerRound {
		t.Fatalf("controller took %d steps, want %d", dev.Ctrl.Step(), o.StepsPerRound)
	}
	if dev.Ctrl.Buffer().Len() != o.StepsPerRound {
		t.Fatalf("replay holds %d samples, want %d", dev.Ctrl.Buffer().Len(), o.StepsPerRound)
	}
	// With StepsPerRound=40 and H=20, two updates fired: parameters moved.
	moved := false
	for i := range out {
		if out[i] != initial[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("local training did not move the parameters")
	}
}

func TestNeuralDeviceTrainsOnlyAssignedApps(t *testing.T) {
	o := smallOptions()
	specs, err := workload.ByNames("ocean", "radix")
	if err != nil {
		t.Fatal(err)
	}
	dev := newNeuralDevice(o, 2, specs)
	if _, err := dev.TrainRound(1, dev.Ctrl.ModelParams()); err != nil {
		t.Fatal(err)
	}
	name := dev.Dev.Workload().Name()
	if name != "ocean" && name != "radix" {
		t.Fatalf("device is running %s, not an assigned app", name)
	}
}

func TestTabularDeviceTrainRound(t *testing.T) {
	o := smallOptions()
	specs, err := workload.ByNames("fft", "lu")
	if err != nil {
		t.Fatal(err)
	}
	dev := newTabularDevice(o, 3, specs)
	dev.TrainRound()
	if dev.Agent.Local.Step() != o.StepsPerRound {
		t.Fatalf("agent took %d steps, want %d", dev.Agent.Local.Step(), o.StepsPerRound)
	}
	if dev.Agent.Local.States() == 0 {
		t.Fatal("no states visited during a training round")
	}
}
