package experiment

import (
	"math"
	"testing"

	"fedpower/internal/core"
	"fedpower/internal/sim"
)

func TestRunFig2Shape(t *testing.T) {
	table := sim.JetsonNanoTable()
	rp := core.RewardParams{PCritW: 0.6, KOffsetW: 0.05}
	res := RunFig2(table, rp, 9)
	if len(res.FreqMHz) != 15 {
		t.Fatalf("%d frequency rows, want 15", len(res.FreqMHz))
	}
	if len(res.PowerW) != 9 {
		t.Fatalf("%d power points, want 9", len(res.PowerW))
	}
	if len(res.Reward) != 15 || len(res.Reward[0]) != 9 {
		t.Fatal("reward grid shape mismatch")
	}
	// Axis covers 0 to P_crit + 4k.
	if res.PowerW[0] != 0 || math.Abs(res.PowerW[8]-0.8) > 1e-12 {
		t.Fatalf("power axis [%v, %v], want [0, 0.8]", res.PowerW[0], res.PowerW[8])
	}
}

func TestRunFig2MatchesRewardFunction(t *testing.T) {
	table := sim.JetsonNanoTable()
	rp := core.RewardParams{PCritW: 0.6, KOffsetW: 0.05}
	res := RunFig2(table, rp, 17)
	for k := range res.FreqMHz {
		for j, p := range res.PowerW {
			want := rp.Reward(table.NormFreq(k), p)
			if res.Reward[k][j] != want {
				t.Fatalf("grid[%d][%d] = %v, want %v", k, j, res.Reward[k][j], want)
			}
		}
	}
}

func TestRunFig2PaperAnchors(t *testing.T) {
	// Fig. 2's characteristic shape: under the budget the top level earns
	// reward 1 and the bottom level ~0.07; past P_crit + 2k all levels
	// earn -1.
	table := sim.JetsonNanoTable()
	rp := core.RewardParams{PCritW: 0.6, KOffsetW: 0.05}
	res := RunFig2Powers(table, rp, []float64{0.5, 0.75})
	top, bottom := len(res.FreqMHz)-1, 0
	if res.Reward[top][0] != 1 {
		t.Errorf("top level under budget = %v, want 1", res.Reward[top][0])
	}
	if math.Abs(res.Reward[bottom][0]-102.0/1479.0) > 1e-12 {
		t.Errorf("bottom level under budget = %v, want %v", res.Reward[bottom][0], 102.0/1479.0)
	}
	for k := range res.FreqMHz {
		if res.Reward[k][1] != -1 {
			t.Errorf("level %d at 0.75 W = %v, want -1", k, res.Reward[k][1])
		}
	}
}

func TestRunFig2MinimumPoints(t *testing.T) {
	table := sim.JetsonNanoTable()
	rp := core.RewardParams{PCritW: 0.6, KOffsetW: 0.05}
	res := RunFig2(table, rp, 0) // clamped to 2
	if len(res.PowerW) != 2 {
		t.Fatalf("%d power points, want clamp to 2", len(res.PowerW))
	}
}
