package experiment

import (
	"testing"
	"time"

	"fedpower/internal/fed"
)

// fakeClock advances one second per reading, making throughput numbers
// deterministic without touching the wall clock.
func fakeClock() Clock {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

func TestTreeScaleSmall(t *testing.T) {
	o := DefaultTreeScaleOptions()
	o.Topology = "2x3"
	o.Rounds = 2
	o.NumParams = 16
	res, err := RunTreeScaleWithClock(o, fakeClock())
	if err != nil {
		t.Fatal(err)
	}
	if res.Devices != 6 || res.Aggregators != 2 || res.Depth != 2 {
		t.Errorf("topology = %d devices, %d aggregators, depth %d; want 6, 2, 2",
			res.Devices, res.Aggregators, res.Depth)
	}
	if res.RoundsCompleted != o.Rounds {
		t.Errorf("completed %d rounds, want %d", res.RoundsCompleted, o.Rounds)
	}
	if !res.FlatMatch {
		t.Error("TCP tree diverged from the flat in-process reference")
	}
	if res.LeavesCommitted != 6 {
		t.Errorf("last round covered %d leaves, want 6", res.LeavesCommitted)
	}
	if res.RootBytesSent <= 0 || res.UplinkBytesSent <= 0 {
		t.Errorf("missing traffic accounting: root sent %d, uplinks sent %d",
			res.RootBytesSent, res.UplinkBytesSent)
	}
	if res.Elapsed != time.Second {
		t.Errorf("fake-clock elapsed = %v, want 1s", res.Elapsed)
	}
	if res.RoundsPerSec != 2 {
		t.Errorf("rounds/sec = %v, want 2", res.RoundsPerSec)
	}
	if res.FinalChecksum == 0 {
		t.Error("final checksum missing")
	}

	// Replayability: the same options reproduce the same final bits.
	res2, err := RunTreeScaleWithClock(o, fakeClock())
	if err != nil {
		t.Fatal(err)
	}
	if res2.FinalChecksum != res.FinalChecksum {
		t.Errorf("rerun checksum %x != %x", res2.FinalChecksum, res.FinalChecksum)
	}
}

// TestTreeScaleFleet drives the acceptance-sized fleet: 500 leaf devices
// through a 3-level TCP tree, bit-identical to the flat reference.
func TestTreeScaleFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("500-device fleet in -short mode")
	}
	o := DefaultTreeScaleOptions()
	o.Rounds = 2
	o.NumParams = 64
	res, err := RunTreeScaleWithClock(o, fakeClock())
	if err != nil {
		t.Fatal(err)
	}
	if res.Devices != 500 || res.Aggregators != 24 || res.Depth != 3 {
		t.Errorf("topology = %d devices, %d aggregators, depth %d; want 500, 24, 3",
			res.Devices, res.Aggregators, res.Depth)
	}
	if res.RoundsCompleted != o.Rounds || res.LeavesCommitted != 500 {
		t.Errorf("completed %d rounds over %d leaves, want %d over 500",
			res.RoundsCompleted, res.LeavesCommitted, o.Rounds)
	}
	if !res.FlatMatch {
		t.Error("500-device TCP tree diverged from the flat in-process reference")
	}
}

// TestParallelAggregationTreeScale pins the width-independence of the
// full TCP deployment: every hop running its round phases on parallel
// workers (Parallelism 4) must reproduce the sequential deployment's
// final model bit for bit — the exact accumulator makes the shard merge
// an arithmetic identity, and each connection's codec streams stay with
// the worker holding its index. Runs inside the determinism gate
// (-count=2 in scripts/check.sh).
func TestParallelAggregationTreeScale(t *testing.T) {
	o := DefaultTreeScaleOptions()
	o.Topology = "2x3"
	o.Rounds = 2
	o.NumParams = 16
	o.Parallelism = 1
	seq, err := RunTreeScaleWithClock(o, fakeClock())
	if err != nil {
		t.Fatal(err)
	}
	o.Parallelism = 4
	par, err := RunTreeScaleWithClock(o, fakeClock())
	if err != nil {
		t.Fatal(err)
	}
	if par.FinalChecksum != seq.FinalChecksum {
		t.Errorf("parallel deployment checksum %x, sequential %x", par.FinalChecksum, seq.FinalChecksum)
	}
	if !par.FlatMatch || !seq.FlatMatch {
		t.Errorf("flat reference diverged: sequential %v, parallel %v", seq.FlatMatch, par.FlatMatch)
	}
}

func TestTreeScaleValidation(t *testing.T) {
	for _, mod := range []func(*TreeScaleOptions){
		func(o *TreeScaleOptions) { o.Topology = "0x4" },
		func(o *TreeScaleOptions) { o.Rounds = 0 },
		func(o *TreeScaleOptions) { o.NumParams = 0 },
		func(o *TreeScaleOptions) { o.RoundTimeout = 0 },
	} {
		o := DefaultTreeScaleOptions()
		mod(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("options %+v validated", o)
		}
	}
	bad := DefaultTreeScaleOptions()
	bad.Topology = "bogus"
	if _, err := RunTreeScale(bad); err == nil {
		t.Error("RunTreeScale accepted a bogus topology")
	}
	if _, err := fed.ParseTopology(DefaultTreeScaleOptions().Topology); err != nil {
		t.Errorf("default topology failed to parse: %v", err)
	}
}
