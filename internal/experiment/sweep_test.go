package experiment

import "testing"

func TestSweepPointFactories(t *testing.T) {
	cases := []struct {
		name string
		pts  []SweepPoint
		n    int
	}{
		{"lr defaults", LearningRateSweep(), 5},
		{"lr explicit", LearningRateSweep(0.01), 1},
		{"tau defaults", TauDecaySweep(), 4},
		{"batch defaults", BatchSizeSweep(), 4},
		{"width defaults", HiddenWidthSweep(), 5},
	}
	o := DefaultOptions()
	for _, c := range cases {
		if len(c.pts) != c.n {
			t.Errorf("%s: %d points, want %d", c.name, len(c.pts), c.n)
		}
		for _, pt := range c.pts {
			po := o
			pt.Mutate(&po)
			if err := po.Validate(); err != nil {
				t.Errorf("%s point %s produces invalid options: %v", c.name, pt.Label, err)
			}
			if pt.Label == "" {
				t.Errorf("%s: empty label", c.name)
			}
		}
	}
}

func TestSweepMutationsAreIndependent(t *testing.T) {
	// Each point must mutate its own copy, not share state with others.
	o := DefaultOptions()
	pts := LearningRateSweep(0.001, 0.01)
	a, b := o, o
	pts[0].Mutate(&a)
	pts[1].Mutate(&b)
	if a.Core.LearningRate != 0.001 || b.Core.LearningRate != 0.01 {
		t.Fatalf("mutations leaked: %v / %v", a.Core.LearningRate, b.Core.LearningRate)
	}
	if o.Core.LearningRate != 0.005 {
		t.Fatal("base options mutated")
	}
}

func TestSweepByName(t *testing.T) {
	for _, dim := range []string{"lr", "tau", "batch", "width"} {
		pts, err := SweepByName(dim)
		if err != nil || len(pts) == 0 {
			t.Errorf("SweepByName(%q): %v, %d points", dim, err, len(pts))
		}
	}
	if _, err := SweepByName("nope"); err == nil {
		t.Error("unknown dimension accepted")
	}
}

func TestRunSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep training skipped in -short mode")
	}
	o := smallOptions()
	o.Rounds = 10
	res, err := RunSweep(o, "width", HiddenWidthSweep(16, 32))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dimension != "width" {
		t.Fatalf("dimension %q", res.Dimension)
	}
	if len(res.Labels) != 2 || len(res.Reward) != 2 {
		t.Fatalf("result shape %d/%d", len(res.Labels), len(res.Reward))
	}
	for i, r := range res.Reward {
		if r < -1 || r > 1 {
			t.Fatalf("point %s reward %v", res.Labels[i], r)
		}
	}
	if best := res.Best(); best != "width=16" && best != "width=32" {
		t.Fatalf("Best = %q", best)
	}
}

func TestRunSweepValidation(t *testing.T) {
	o := smallOptions()
	if _, err := RunSweep(o, "empty", nil); err == nil {
		t.Error("empty sweep accepted")
	}
	bad := []SweepPoint{{Label: "bad", Mutate: func(o *Options) { o.Core.BatchSize = 0 }}}
	if _, err := RunSweep(o, "bad", bad); err == nil {
		t.Error("invalid point accepted")
	}
	o.Rounds = 0
	if _, err := RunSweep(o, "lr", LearningRateSweep(0.01)); err == nil {
		t.Error("invalid base options accepted")
	}
}

func TestSweepResultBestEmpty(t *testing.T) {
	r := &SweepResult{}
	if r.Best() != "" {
		t.Fatal("empty result Best not empty")
	}
}
