package experiment

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"

	"fedpower/internal/core"
	"fedpower/internal/sim"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	records, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("generated CSV does not parse: %v", err)
	}
	return records
}

func TestWriteFig2CSV(t *testing.T) {
	res := RunFig2(sim.JetsonNanoTable(), core.RewardParams{PCritW: 0.6, KOffsetW: 0.05}, 5)
	var buf bytes.Buffer
	if err := WriteFig2CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 1+15*5 {
		t.Fatalf("%d rows, want header + 75", len(records))
	}
	if records[0][0] != "freq_mhz" {
		t.Fatalf("header %v", records[0])
	}
	// Spot-check one cell against the reward function.
	for _, rec := range records[1:] {
		f, _ := strconv.ParseFloat(rec[0], 64)
		p, _ := strconv.ParseFloat(rec[1], 64)
		r, _ := strconv.ParseFloat(rec[2], 64)
		want := (core.RewardParams{PCritW: 0.6, KOffsetW: 0.05}).Reward(f/1479.0, p)
		if diff := r - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("row %v: reward %v, want %v", rec, r, want)
		}
	}
}

func TestWriteFig3AndFig4CSV(t *testing.T) {
	o := smallOptions()
	o.Rounds = 4
	sc, err := RunScenario(o, 1, TableII()[1])
	if err != nil {
		t.Fatal(err)
	}
	res := &Fig3Result{Scenarios: []*ScenarioResult{sc}}

	var buf bytes.Buffer
	if err := WriteFig3CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 1+o.Rounds {
		t.Fatalf("fig3: %d rows, want header + %d", len(records), o.Rounds)
	}
	if got := records[1][1]; got != "1" {
		t.Fatalf("first round labelled %q", got)
	}
	// Round-trip one value.
	fed, _ := strconv.ParseFloat(records[1][5], 64)
	if diff := fed - sc.Fed[0].Reward; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("fed reward %v, want %v", fed, sc.Fed[0].Reward)
	}

	f4, err := Fig4FromScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteFig4CSV(&buf, f4); err != nil {
		t.Fatal(err)
	}
	records = parseCSV(t, &buf)
	if len(records) != 1+o.Rounds {
		t.Fatalf("fig4: %d rows", len(records))
	}
	if len(records[0]) != 7 {
		t.Fatalf("fig4 header has %d columns, want 7", len(records[0]))
	}
}

func TestWriteTable3CSV(t *testing.T) {
	res := &Table3Result{
		OursExecS: 24, BaseExecS: 30,
		OursIPS: 0.9e9, BaseIPS: 0.8e9,
		OursPowerW: 0.5, BasePowerW: 0.45,
	}
	var buf bytes.Buffer
	if err := WriteTable3CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 4 {
		t.Fatalf("%d rows, want header + 3", len(records))
	}
	if records[1][0] != "exec_time_s" || records[1][1] != "24" {
		t.Fatalf("exec row %v", records[1])
	}
	delta, _ := strconv.ParseFloat(records[1][3], 64)
	if delta > -19 || delta < -21 {
		t.Fatalf("exec delta %v, want -20", delta)
	}
}

func TestWriteFig5CSV(t *testing.T) {
	cmp := &ComparisonResult{Ours: map[string]*AppMetrics{}, Base: map[string]*AppMetrics{}}
	for _, app := range []string{"fft", "lu"} {
		a, b := &AppMetrics{}, &AppMetrics{}
		a.Exec.Add(20)
		a.IPS.Add(1e9)
		a.Power.Add(0.5)
		b.Exec.Add(25)
		b.IPS.Add(0.8e9)
		b.Power.Add(0.45)
		cmp.Ours[app], cmp.Base[app] = a, b
	}
	var buf bytes.Buffer
	if err := WriteFig5CSV(&buf, &Fig5Result{Comparison: cmp}); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 3 {
		t.Fatalf("%d rows, want header + 2", len(records))
	}
	// Apps come out sorted.
	if records[1][0] != "fft" || records[2][0] != "lu" {
		t.Fatalf("rows %v / %v", records[1], records[2])
	}
}

func TestWriteMultiCoreCSV(t *testing.T) {
	res := &MultiCoreResult{
		Cores: 4, BudgetW: 1.8,
		Fed: []RoundEval{{Round: 1, Reward: 0.6}, {Round: 2, Reward: 0.65}},
		Local: [][]RoundEval{
			{{Round: 1, Reward: 0.5}, {Round: 2, Reward: 0.55}},
			{{Round: 1, Reward: 0.4}, {Round: 2, Reward: 0.45}},
		},
	}
	var buf bytes.Buffer
	if err := WriteMultiCoreCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 3 {
		t.Fatalf("%d rows, want header + 2", len(records))
	}
	if records[1][3] != "0.6" || records[2][2] != "0.45" {
		t.Fatalf("cells %v / %v", records[1], records[2])
	}
}

func TestWriteGovernorsCSV(t *testing.T) {
	res := &GovernorsResult{
		Policies: []string{"federated-rl", "powersave"},
		PerApp: map[string]map[string]EvalResult{
			"federated-rl": {"fft": {App: "fft", AvgReward: 0.6, ExecTimeS: 25, AvgPowerW: 0.5, Violations: 3}},
			"powersave":    {"fft": {App: "fft", AvgReward: 0.07, ExecTimeS: 150, AvgPowerW: 0.13}},
		},
	}
	var buf bytes.Buffer
	if err := WriteGovernorsCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 3 {
		t.Fatalf("%d rows, want header + 2", len(records))
	}
	if records[1][0] != "federated-rl" || records[1][5] != "3" {
		t.Fatalf("row %v", records[1])
	}
}

func TestWriteHeteroCSV(t *testing.T) {
	res := &HeteroResult{
		Budgets: []float64{0.45, 0.75},
		Hetero: []BudgetEval{
			{BudgetW: 0.45, AvgReward: -0.1, ViolationRate: 0.7},
			{BudgetW: 0.75, AvgReward: 0.7, ViolationRate: 0},
		},
		Homog: []BudgetEval{
			{BudgetW: 0.45, AvgReward: -0.5, ViolationRate: 0.99},
			{BudgetW: 0.75, AvgReward: 0.8, ViolationRate: 0.01},
		},
	}
	var buf bytes.Buffer
	if err := WriteHeteroCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 3 {
		t.Fatalf("%d rows, want header + 2", len(records))
	}
	if records[1][0] != "0.45" {
		t.Fatalf("budget cell %q", records[1][0])
	}
}
