package experiment

import (
	"math/rand"
	"testing"

	"fedpower/internal/core"
	"fedpower/internal/sim"
	"fedpower/internal/workload"
)

// levelPolicy always picks a fixed V/f level; the simplest possible Policy.
type levelPolicy int

func (p levelPolicy) Action(obs sim.Observation) int { return int(p) }

func testOptions() Options {
	o := DefaultOptions()
	o.Rounds = 5
	o.EvalSteps = 20
	return o
}

func mustSpec(t *testing.T, name string) workload.Spec {
	t.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestEvaluateCappedEpisode(t *testing.T) {
	o := testOptions()
	res := evaluate(o, levelPolicy(7), mustSpec(t, "fft"), false, 1)
	if res.Steps != o.EvalSteps {
		t.Fatalf("steps = %d, want cap %d", res.Steps, o.EvalSteps)
	}
	if res.Completed {
		t.Fatal("20 steps cannot complete fft")
	}
	if res.App != "fft" {
		t.Fatalf("app = %s", res.App)
	}
	// Fixed level 7 on fft (825.6 MHz) stays under the budget: positive
	// reward equal to the normalised frequency (modulo sensor noise).
	if res.AvgReward < 0.4 || res.AvgReward > 0.7 {
		t.Errorf("avg reward %v, want ~825.6/1479", res.AvgReward)
	}
	if res.StdNormFreq != 0 {
		t.Errorf("fixed-level policy should have zero frequency std, got %v", res.StdNormFreq)
	}
}

func TestEvaluateToCompletion(t *testing.T) {
	o := testOptions()
	res := evaluate(o, levelPolicy(14), mustSpec(t, "ocean"), true, 2)
	if !res.Completed {
		t.Fatal("ocean at f_max did not complete within MaxExecSteps")
	}
	// ocean at f_max: ~27 s per the calibration.
	if res.ExecTimeS < 15 || res.ExecTimeS > 45 {
		t.Errorf("exec time %v s, want ~27 s", res.ExecTimeS)
	}
	if res.AvgIPS <= 0 || res.AvgPowerW <= 0 {
		t.Errorf("degenerate metrics: %+v", res)
	}
	// Memory-bound at f_max stays under the budget.
	if res.AvgPowerW > o.Core.Reward.PCritW {
		t.Errorf("ocean at f_max drew %v W, want under %v", res.AvgPowerW, o.Core.Reward.PCritW)
	}
}

func TestEvaluateViolationsCounted(t *testing.T) {
	o := testOptions()
	// water-ns at f_max violates the 0.6 W budget almost every step.
	res := evaluate(o, levelPolicy(14), mustSpec(t, "water-ns"), false, 3)
	if res.Violations < res.Steps*3/4 {
		t.Fatalf("violations = %d of %d, want nearly all", res.Violations, res.Steps)
	}
	if res.AvgReward > -0.5 {
		t.Errorf("avg reward %v, want deeply negative under constant violation", res.AvgReward)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	o := testOptions()
	a := evaluate(o, levelPolicy(9), mustSpec(t, "lu"), false, 9, 1)
	b := evaluate(o, levelPolicy(9), mustSpec(t, "lu"), false, 9, 1)
	if a != b {
		t.Fatalf("same ids produced different results:\n%+v\n%+v", a, b)
	}
	c := evaluate(o, levelPolicy(9), mustSpec(t, "lu"), false, 9, 2)
	if a == c {
		t.Fatal("different ids produced identical noise streams")
	}
}

func TestNewNeuralPolicyUsesSnapshot(t *testing.T) {
	o := testOptions()
	ctrl := core.NewController(o.Core, rand.New(rand.NewSource(4)))
	pol := NewNeuralPolicy(o.Core, ctrl.ModelParams())
	obs := sim.Observation{NormFreq: 0.5, PowerW: 0.4, IPC: 1.2, MissRate: 0.05, MPKI: 4}
	want := ctrl.GreedyAction(core.StateVector(obs, nil))
	if got := pol.Action(obs); got != want {
		t.Fatalf("policy action %d, want controller greedy %d", got, want)
	}
}

func TestNewTabularPolicyGreedy(t *testing.T) {
	o := testOptions()
	_ = o
	agent := newTabularDevice(testOptions(), 77, workload.SPLASH2()[:2]).Agent
	disc := agent.Local.P.Disc
	obs := sim.Observation{Level: 5, PowerW: 0.5, IPC: 1.0, MPKI: 5}
	key := disc.Key(obs)
	agent.Observe(key, 9, 1.0)
	pol := NewTabularPolicy(agent)
	if got := pol.Action(obs); got != 9 {
		t.Fatalf("tabular policy action %d, want 9", got)
	}
}

func TestEvaluateIndependentOfTrainingState(t *testing.T) {
	// evaluate must not perturb a live device/controller: run one, snapshot
	// the controller, evaluate, and verify the controller is untouched.
	o := testOptions()
	dev := newNeuralDevice(o, 50, workload.SPLASH2()[:2])
	if _, err := dev.TrainRound(1, dev.Ctrl.ModelParams()); err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), dev.Ctrl.ModelParams()...)
	stepBefore := dev.Ctrl.Step()
	evaluate(o, NewNeuralPolicy(o.Core, before), mustSpec(t, "fft"), false, 51)
	if dev.Ctrl.Step() != stepBefore {
		t.Fatal("evaluation advanced the training controller")
	}
	for i, v := range dev.Ctrl.ModelParams() {
		if v != before[i] {
			t.Fatal("evaluation mutated training parameters")
		}
	}
}
