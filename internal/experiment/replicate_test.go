package experiment

import "testing"

func TestRunReplicationValidation(t *testing.T) {
	o := smallOptions()
	if _, err := RunReplication(o, nil); err == nil {
		t.Error("empty seed list accepted")
	}
	if _, err := RunReplication(o, []int64{3, 3}); err == nil {
		t.Error("duplicate seeds accepted")
	}
}

func TestDefaultReplicationSeeds(t *testing.T) {
	seeds := DefaultReplicationSeeds(10, 4)
	if len(seeds) != 4 {
		t.Fatalf("%d seeds", len(seeds))
	}
	seen := map[int64]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatal("duplicate seed generated")
		}
		seen[s] = true
	}
}

func TestReplicationSummaryAndAllPositive(t *testing.T) {
	r := &Replication{
		Seeds:          []int64{1, 2},
		FedReward:      []float64{0.6, 0.7},
		LocalReward:    []float64{0.4, 0.5},
		ImprovementPct: []float64{50, 40},
	}
	mean, std := r.Summary()
	if mean != 45 {
		t.Fatalf("mean improvement %v, want 45", mean)
	}
	if std != 5 {
		t.Fatalf("std %v, want 5", std)
	}
	if !r.AllPositive() {
		t.Fatal("all-positive replication reported negative")
	}
	r.FedReward[1] = 0.4
	if r.AllPositive() {
		t.Fatal("tie reported as positive")
	}
	empty := &Replication{}
	if empty.AllPositive() {
		t.Fatal("empty replication reported positive")
	}
}

func TestRunReplicationProducesIndependentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("replication training skipped in -short mode")
	}
	o := smallOptions()
	o.Rounds = 8
	rep, err := RunReplication(o, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.FedReward) != 2 || len(rep.ImprovementPct) != 2 {
		t.Fatalf("result shape %d/%d", len(rep.FedReward), len(rep.ImprovementPct))
	}
	// Different seeds must give different trajectories.
	if rep.FedReward[0] == rep.FedReward[1] {
		t.Fatal("two seeds produced identical federated rewards")
	}
	// And the same seed must reproduce exactly.
	again, err := RunReplication(o, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if again.FedReward[0] != rep.FedReward[0] {
		t.Fatal("replication not deterministic per seed")
	}
}
