package experiment

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparklineBasics(t *testing.T) {
	if got := Sparkline(nil, 10, 0, 1); got != "" {
		t.Errorf("empty series rendered %q", got)
	}
	if got := Sparkline([]float64{1}, 0, 0, 1); got != "" {
		t.Errorf("zero width rendered %q", got)
	}
	got := Sparkline([]float64{0, 0.5, 1}, 3, 0, 1)
	if utf8.RuneCountInString(got) != 3 {
		t.Fatalf("width %d, want 3: %q", utf8.RuneCountInString(got), got)
	}
	runes := []rune(got)
	if runes[0] != '▁' {
		t.Errorf("minimum rendered %q, want ▁", runes[0])
	}
	if runes[2] != '█' {
		t.Errorf("maximum rendered %q, want █", runes[2])
	}
}

func TestSparklineClampsOutOfRange(t *testing.T) {
	got := []rune(Sparkline([]float64{-10, 10}, 2, 0, 1))
	if got[0] != '▁' || got[1] != '█' {
		t.Fatalf("out-of-range values not clamped: %q", string(got))
	}
}

func TestSparklineBucketsLongSeries(t *testing.T) {
	series := make([]float64, 100)
	for i := range series {
		series[i] = float64(i) / 99
	}
	got := Sparkline(series, 10, 0, 1)
	if utf8.RuneCountInString(got) != 10 {
		t.Fatalf("bucketed width %d, want 10", utf8.RuneCountInString(got))
	}
	runes := []rune(got)
	// Monotone series must render monotone glyphs.
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("non-monotone rendering of a monotone series: %q", got)
		}
	}
}

func TestSparklineShortSeriesShrinks(t *testing.T) {
	got := Sparkline([]float64{0, 1}, 10, 0, 1)
	if utf8.RuneCountInString(got) != 2 {
		t.Fatalf("2-point series rendered %d glyphs", utf8.RuneCountInString(got))
	}
}

func TestSparklineDegenerateRange(t *testing.T) {
	// hi <= lo must not divide by zero.
	got := Sparkline([]float64{5, 5}, 2, 5, 5)
	if utf8.RuneCountInString(got) != 2 {
		t.Fatalf("degenerate range rendered %q", got)
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"App", "Time"}, [][]string{
		{"fft", "26.9"},
		{"water-ns", "25.7"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want header + separator + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("separator line missing: %q", lines[1])
	}
	// The Time column starts at the same offset in every row.
	idx := strings.Index(lines[0], "Time")
	for _, l := range lines[2:] {
		if len(l) < idx {
			t.Fatalf("row shorter than header: %q", l)
		}
	}
	if strings.Index(lines[2], "26.9") != strings.Index(lines[3], "25.7") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestSeriesExtractors(t *testing.T) {
	evals := []RoundEval{
		{Reward: 0.1, MeanNormFreq: 0.5},
		{Reward: 0.2, MeanNormFreq: 0.6},
	}
	r := RewardSeries(evals)
	f := FreqSeries(evals)
	if r[0] != 0.1 || r[1] != 0.2 {
		t.Errorf("RewardSeries = %v", r)
	}
	if f[0] != 0.5 || f[1] != 0.6 {
		t.Errorf("FreqSeries = %v", f)
	}
}
