package experiment

// CSV exporters: every figure/table result can be dumped as machine-
// readable CSV so external plotting tools can regenerate the paper's
// graphics from the simulated data (cmd/fedpower -csv <dir>).

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

func writeAll(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiment: write csv header: %w", err)
	}
	if err := cw.WriteAll(rows); err != nil {
		return fmt.Errorf("experiment: write csv rows: %w", err)
	}
	cw.Flush()
	return cw.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }

// WriteFig3CSV dumps the per-round evaluation rewards of every scenario:
// one row per (scenario, round) with the local and federated series.
func WriteFig3CSV(w io.Writer, res *Fig3Result) error {
	header := []string{"scenario", "round", "eval_app", "local_a_reward", "local_b_reward", "fed_reward"}
	var rows [][]string
	for _, sc := range res.Scenarios {
		for i, e := range sc.Fed {
			rows = append(rows, []string{
				sc.Scenario.Name,
				strconv.Itoa(e.Round),
				e.App,
				ftoa(sc.Local[0][i].Reward),
				ftoa(sc.Local[1][i].Reward),
				ftoa(e.Reward),
			})
		}
	}
	return writeAll(w, header, rows)
}

// WriteFig4CSV dumps the frequency-selection traces of scenario 2: mean
// and standard deviation of the selected normalised frequency per round
// for both local policies and the federated one.
func WriteFig4CSV(w io.Writer, f4 *Fig4Result) error {
	header := []string{
		"round",
		"local_a_mean", "local_a_std",
		"local_b_mean", "local_b_std",
		"fed_mean", "fed_std",
	}
	var rows [][]string
	for i, r := range f4.Rounds {
		rows = append(rows, []string{
			strconv.Itoa(r),
			ftoa(f4.LocalA[i]), ftoa(f4.LocalAStd[i]),
			ftoa(f4.LocalB[i]), ftoa(f4.LocalBStd[i]),
			ftoa(f4.Fed[i]), ftoa(f4.FedStd[i]),
		})
	}
	return writeAll(w, header, rows)
}

// WriteTable3CSV dumps the aggregate comparison rows.
func WriteTable3CSV(w io.Writer, res *Table3Result) error {
	header := []string{"category", "ours", "profit_collab", "delta_pct"}
	rows := [][]string{
		{"exec_time_s", ftoa(res.OursExecS), ftoa(res.BaseExecS), ftoa(res.ExecDeltaPct())},
		{"ips", ftoa(res.OursIPS), ftoa(res.BaseIPS), ftoa(res.IPSDeltaPct())},
		{"power_w", ftoa(res.OursPowerW), ftoa(res.BasePowerW), ftoa(res.PowerDeltaPct())},
	}
	return writeAll(w, header, rows)
}

// WriteFig5CSV dumps the per-application split-half comparison.
func WriteFig5CSV(w io.Writer, res *Fig5Result) error {
	header := []string{
		"app",
		"exec_s_ours", "exec_s_base",
		"ips_ours", "ips_base",
		"power_w_ours", "power_w_base",
	}
	var rows [][]string
	cmp := res.Comparison
	for _, app := range cmp.Apps() {
		rows = append(rows, []string{
			app,
			ftoa(cmp.Ours[app].Exec.Mean()), ftoa(cmp.Base[app].Exec.Mean()),
			ftoa(cmp.Ours[app].IPS.Mean()), ftoa(cmp.Base[app].IPS.Mean()),
			ftoa(cmp.Ours[app].Power.Mean()), ftoa(cmp.Base[app].Power.Mean()),
		})
	}
	return writeAll(w, header, rows)
}

// WriteFig2CSV dumps the reward grid, one row per (level, power) pair.
func WriteFig2CSV(w io.Writer, res *Fig2Result) error {
	header := []string{"freq_mhz", "power_w", "reward"}
	var rows [][]string
	for k, f := range res.FreqMHz {
		for j, p := range res.PowerW {
			rows = append(rows, []string{ftoa(f), ftoa(p), ftoa(res.Reward[k][j])})
		}
	}
	return writeAll(w, header, rows)
}

// WriteGovernorsCSV dumps the governor-comparison summary, one row per
// (policy, app).
func WriteGovernorsCSV(w io.Writer, res *GovernorsResult) error {
	header := []string{"policy", "app", "avg_reward", "exec_s", "avg_power_w", "violations"}
	var rows [][]string
	for _, pol := range res.Policies {
		for _, app := range res.Apps() {
			e := res.PerApp[pol][app]
			rows = append(rows, []string{
				pol, app,
				ftoa(e.AvgReward), ftoa(e.ExecTimeS), ftoa(e.AvgPowerW),
				strconv.Itoa(e.Violations),
			})
		}
	}
	return writeAll(w, header, rows)
}

// WriteMultiCoreCSV dumps the multi-core extension's per-round traces.
func WriteMultiCoreCSV(w io.Writer, res *MultiCoreResult) error {
	header := []string{"round", "local_a_reward", "local_b_reward", "fed_reward"}
	var rows [][]string
	for i, e := range res.Fed {
		rows = append(rows, []string{
			strconv.Itoa(e.Round),
			ftoa(res.Local[0][i].Reward),
			ftoa(res.Local[1][i].Reward),
			ftoa(e.Reward),
		})
	}
	return writeAll(w, header, rows)
}

// WritePrivacyCSV dumps the architecture comparison of the privacy
// experiment.
func WritePrivacyCSV(w io.Writer, res *PrivacyResult) error {
	header := []string{"architecture", "avg_reward", "total_bytes", "raw_trace_bytes"}
	rows := [][]string{}
	for _, a := range []ArchEval{res.Local, res.Federated, res.Central} {
		rows = append(rows, []string{
			a.Name, ftoa(a.AvgReward),
			strconv.FormatInt(a.TotalBytes, 10),
			strconv.FormatInt(a.RawTraceBytes, 10),
		})
	}
	return writeAll(w, header, rows)
}

// WriteHeteroCSV dumps the heterogeneous-budget extension results.
func WriteHeteroCSV(w io.Writer, res *HeteroResult) error {
	header := []string{
		"budget_w",
		"hetero_reward", "hetero_violation_rate",
		"homog_reward", "homog_violation_rate",
	}
	var rows [][]string
	for i, b := range res.Budgets {
		rows = append(rows, []string{
			ftoa(b),
			ftoa(res.Hetero[i].AvgReward), ftoa(res.Hetero[i].ViolationRate),
			ftoa(res.Homog[i].AvgReward), ftoa(res.Homog[i].ViolationRate),
		})
	}
	return writeAll(w, header, rows)
}
