package experiment

import (
	"fmt"

	"fedpower/internal/core"
	"fedpower/internal/fed"
	"fedpower/internal/par"
	"fedpower/internal/stats"
	"fedpower/internal/workload"
)

// RoundEval is one per-round evaluation data point: the greedy policy's
// reward and frequency-selection statistics on that round's evaluation
// application. These points form the curves of Fig. 3 (reward) and Fig. 4
// (mean selected frequency ± std).
type RoundEval struct {
	Round        int
	App          string
	Reward       float64
	MeanNormFreq float64
	StdNormFreq  float64
}

// ScenarioResult holds the evaluation traces of one Table II scenario under
// both training regimes.
type ScenarioResult struct {
	Scenario Scenario
	// Fed is the per-round evaluation of the shared federated policy.
	Fed []RoundEval
	// Local[i] is the per-round evaluation of device i's local-only policy.
	Local [][]RoundEval
}

// AvgFedReward returns the mean federated evaluation reward across rounds.
func (r *ScenarioResult) AvgFedReward() float64 {
	return Mean(r.Fed, func(e RoundEval) float64 { return e.Reward })
}

// AvgLocalReward returns the mean local-only evaluation reward across all
// devices and rounds.
func (r *ScenarioResult) AvgLocalReward() float64 {
	var agg stats.Running
	for _, dev := range r.Local {
		for _, e := range dev {
			agg.Add(e.Reward)
		}
	}
	return agg.Mean()
}

// Mean averages f over a slice of round evaluations.
func Mean(evals []RoundEval, f func(RoundEval) float64) float64 {
	var agg stats.Running
	for _, e := range evals {
		agg.Add(f(e))
	}
	return agg.Mean()
}

// RoundsToReach returns the first round at which the mean reward over the
// preceding full window of rounds reaches the threshold, or -1 when the
// trace never does. It quantifies the paper's "faster convergence" claim:
// federated traces reach a given reward level in fewer rounds than
// local-only ones. Requiring a complete window keeps a single lucky early
// evaluation from counting as convergence; the window must be positive.
func RoundsToReach(evals []RoundEval, threshold float64, window int) int {
	if window <= 0 {
		panic(fmt.Sprintf("experiment: RoundsToReach window %d must be positive", window))
	}
	sum := 0.0
	for i, e := range evals {
		sum += e.Reward
		if i >= window {
			sum -= evals[i-window].Reward
		}
		if i+1 < window {
			continue
		}
		if sum/float64(window) >= threshold {
			return e.Round
		}
	}
	return -1
}

// RoundsToSustain returns the first round from which the trailing
// full-window mean reward stays at or above the threshold for the rest of
// the trace, or -1 when no such round exists. Unlike RoundsToReach, a
// policy that touches the threshold and later degrades (the local-only
// failure mode of Fig. 3) does not count as converged.
func RoundsToSustain(evals []RoundEval, threshold float64, window int) int {
	if window <= 0 {
		panic(fmt.Sprintf("experiment: RoundsToSustain window %d must be positive", window))
	}
	if len(evals) < window {
		return -1
	}
	// Walk backwards: find the latest point where the window mean dips
	// below the threshold; convergence starts after it.
	sustainedFrom := -1
	sum := 0.0
	for i := len(evals) - 1; i >= 0; i-- {
		sum += evals[i].Reward
		if i+window < len(evals) {
			sum -= evals[i+window].Reward
		}
		if len(evals)-i < window {
			continue
		}
		// sum now covers evals[i : i+window].
		if sum/float64(window) >= threshold {
			sustainedFrom = evals[i+window-1].Round
		} else {
			break
		}
	}
	return sustainedFrom
}

// Seed-stream identifiers for the experiment's independent random streams.
// Device streams add the device index; evaluation streams add scenario,
// setting, round and app identifiers.
const (
	idFedDevice   = 100
	idLocalDevice = 200
	idFedInit     = 900
	idLocalInit   = 910
	idEval        = 1000
)

// RunScenario trains and evaluates one Table II scenario in both regimes:
//
//   - federated: all devices collaboratively optimise one shared policy
//     via FedAvg (Algorithm 2);
//   - local-only: each device independently optimises its own policy with
//     no collaboration (implemented as a federation of one, which is the
//     identity aggregation).
//
// After each round, the relevant policy snapshot is evaluated greedily on
// one of the twelve evaluation applications in rotation, as in §IV-A.
//
// The federated run and every local-only run draw from disjoint seed
// streams and write disjoint result slots, so they execute as independent
// units on the experiment worker pool (Options.Parallelism); within the
// federated unit, clients additionally train concurrently.
func RunScenario(o Options, scIndex int, sc Scenario) (*ScenarioResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	evalSet := EvalApps()
	evalSpec := func(round int) workload.Spec {
		return evalSet[(round-1)%len(evalSet)]
	}

	result := &ScenarioResult{Scenario: sc, Local: make([][]RoundEval, len(sc.Devices))}

	runFederated := func() error {
		// Federated training: one shared model across all devices.
		fedClients := make([]fed.Client, len(sc.Devices))
		for i, names := range sc.Devices {
			specs, err := workload.ByNames(names...)
			if err != nil {
				return err
			}
			fedClients[i] = newNeuralDevice(o, int64(idFedDevice+i+10*scIndex), specs)
		}
		global := core.NewController(o.Core, newRNG(o.Seed, idFedInit, int64(scIndex))).ModelParams()
		globalCopy := append([]float64(nil), global...)
		err := fed.RunParallel(globalCopy, fedClients, o.Rounds, o.workers(), func(round int, g []float64) {
			spec := evalSpec(round)
			pol := NewNeuralPolicy(o.Core, g)
			res := evaluate(o, pol, spec, false, idEval, int64(scIndex), 0, int64(round))
			result.Fed = append(result.Fed, RoundEval{
				Round:        round,
				App:          spec.Name,
				Reward:       res.AvgReward,
				MeanNormFreq: res.MeanNormFreq,
				StdNormFreq:  res.StdNormFreq,
			})
		})
		if err != nil {
			return fmt.Errorf("experiment: federated training scenario %s: %w", sc.Name, err)
		}
		return nil
	}

	runLocal := func(devIdx int) error {
		// Local-only training: the device is its own federation of one.
		specs, err := workload.ByNames(sc.Devices[devIdx]...)
		if err != nil {
			return err
		}
		dev := newNeuralDevice(o, int64(idLocalDevice+devIdx+10*scIndex), specs)
		local := core.NewController(o.Core, newRNG(o.Seed, idLocalInit, int64(scIndex), int64(devIdx))).ModelParams()
		localCopy := append([]float64(nil), local...)
		err = fed.Run(localCopy, []fed.Client{dev}, o.Rounds, func(round int, g []float64) {
			spec := evalSpec(round)
			pol := NewNeuralPolicy(o.Core, g)
			res := evaluate(o, pol, spec, false, idEval, int64(scIndex), int64(devIdx+1), int64(round))
			result.Local[devIdx] = append(result.Local[devIdx], RoundEval{
				Round:        round,
				App:          spec.Name,
				Reward:       res.AvgReward,
				MeanNormFreq: res.MeanNormFreq,
				StdNormFreq:  res.StdNormFreq,
			})
		})
		if err != nil {
			return fmt.Errorf("experiment: local training scenario %s device %d: %w", sc.Name, devIdx, err)
		}
		return nil
	}

	// Unit 0 is the federated run, unit i+1 device i's local-only run.
	err := par.ForEach(o.workers(), 1+len(sc.Devices), func(unit int) error {
		if unit == 0 {
			return runFederated()
		}
		return runLocal(unit - 1)
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}

// Fig3Result bundles the three Table II scenario traces — the data behind
// Fig. 3 — plus the aggregate local-vs-federated improvement the paper
// summarises as "57 % average performance improvements".
type Fig3Result struct {
	Scenarios []*ScenarioResult
}

// RunFig3 runs all Table II scenarios, fanning them out on the experiment
// worker pool; the result order is the stable Table II order regardless of
// which scenario finishes first.
func RunFig3(o Options) (*Fig3Result, error) {
	scenarios := TableII()
	slots := make([]*ScenarioResult, len(scenarios))
	err := par.ForEach(o.workers(), len(scenarios), func(i int) error {
		res, err := RunScenario(o, i, scenarios[i])
		if err != nil {
			return err
		}
		slots[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig3Result{Scenarios: slots}, nil
}

// ImprovementPct returns the mean federated evaluation reward improvement
// over the local-only policies across all scenarios, in percent of the
// local-only reward (the paper's headline 57 % metric). Rewards are shifted
// into a positive range before forming the ratio when local rewards are
// negative, so the percentage stays meaningful; the shift is reported via
// the second return value.
func (f *Fig3Result) ImprovementPct() (pct float64, shifted bool) {
	var fedAgg, localAgg stats.Running
	for _, sc := range f.Scenarios {
		fedAgg.Add(sc.AvgFedReward())
		localAgg.Add(sc.AvgLocalReward())
	}
	fedMean, localMean := fedAgg.Mean(), localAgg.Mean()
	if localMean <= 0 {
		// Shift both means by 1 (the reward floor is -1) to keep the ratio
		// finite and monotone in the true gap.
		return (fedMean - localMean) / (localMean + 1) * 100, true
	}
	return (fedMean - localMean) / localMean * 100, false
}

// Fig4Result extracts the frequency-selection traces of the second scenario
// — the data behind Fig. 4.
type Fig4Result struct {
	Rounds []int
	// Normalised mean selected frequency and std per round, for device A's
	// and device B's local-only policies and the federated policy.
	LocalA, LocalAStd []float64
	LocalB, LocalBStd []float64
	Fed, FedStd       []float64
}

// Fig4FromScenario projects a scenario-2 result onto the Fig. 4 series.
func Fig4FromScenario(res *ScenarioResult) (*Fig4Result, error) {
	if len(res.Local) < 2 {
		return nil, fmt.Errorf("experiment: Fig. 4 needs two devices, scenario %s has %d", res.Scenario.Name, len(res.Local))
	}
	out := &Fig4Result{}
	for i, e := range res.Fed {
		out.Rounds = append(out.Rounds, e.Round)
		out.Fed = append(out.Fed, e.MeanNormFreq)
		out.FedStd = append(out.FedStd, e.StdNormFreq)
		out.LocalA = append(out.LocalA, res.Local[0][i].MeanNormFreq)
		out.LocalAStd = append(out.LocalAStd, res.Local[0][i].StdNormFreq)
		out.LocalB = append(out.LocalB, res.Local[1][i].MeanNormFreq)
		out.LocalBStd = append(out.LocalBStd, res.Local[1][i].StdNormFreq)
	}
	return out, nil
}
