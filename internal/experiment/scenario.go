package experiment

import (
	"fmt"

	"fedpower/internal/workload"
)

// Scenario assigns training applications to devices, as in Table II. Every
// scenario is evaluated against all twelve applications.
type Scenario struct {
	Name    string
	Devices [][]string // Devices[i] = application names trained on device i
}

// Validate checks that every referenced application exists.
func (s Scenario) Validate() error {
	if len(s.Devices) == 0 {
		return fmt.Errorf("experiment: scenario %s has no devices", s.Name)
	}
	for i, apps := range s.Devices {
		if len(apps) == 0 {
			return fmt.Errorf("experiment: scenario %s device %d has no applications", s.Name, i)
		}
		if _, err := workload.ByNames(apps...); err != nil {
			return fmt.Errorf("experiment: scenario %s device %d: %w", s.Name, i, err)
		}
	}
	return nil
}

// TableII returns the paper's three disjunct-training-set scenarios: two
// devices, two training applications each.
func TableII() []Scenario {
	return []Scenario{
		{Name: "1", Devices: [][]string{
			{"fft", "lu"},
			{"raytrace", "volrend"},
		}},
		{Name: "2", Devices: [][]string{
			{"water-ns", "water-sp"},
			{"ocean", "radix"},
		}},
		{Name: "3", Devices: [][]string{
			{"fmm", "radiosity"},
			{"barnes", "cholesky"},
		}},
	}
}

// SplitHalf returns the §IV-B final comparison scenario: the twelve
// applications split into two halves of six, so that every evaluation
// application has been seen during training by exactly one device.
func SplitHalf() Scenario {
	return Scenario{Name: "split-half", Devices: [][]string{
		{"fft", "lu", "raytrace", "volrend", "water-ns", "water-sp"},
		{"ocean", "radix", "fmm", "radiosity", "barnes", "cholesky"},
	}}
}

// EvalApps returns the full evaluation application set (all twelve).
func EvalApps() []workload.Spec { return workload.SPLASH2() }
