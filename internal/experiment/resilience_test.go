package experiment

import (
	"net"
	"strings"
	"testing"
	"time"

	"fedpower/internal/core"
	"fedpower/internal/faultnet"
	"fedpower/internal/fed"
	"fedpower/internal/workload"
)

// tinyResilience returns a CI-sized resilience configuration: three rounds,
// short local episodes, generous deadlines.
func tinyResilience() ResilienceOptions {
	o := smallOptions()
	o.Rounds = 3
	o.StepsPerRound = 10
	o.EvalSteps = 8
	r := DefaultResilienceOptions()
	r.Options = o
	r.Quorum = 0 // all devices — zero-fault runs must be exactly synchronous
	r.RoundTimeout = 30 * time.Second
	r.WriteTimeout = 30 * time.Second
	r.JoinTimeout = 30 * time.Second
	return r
}

// TestResilienceZeroFaultsMatchesInProcess: with no fault injection the TCP
// resilience scenario is the paper's synchronous protocol, so its final
// model — and therefore its evaluation — must be bit-identical to the
// in-process orchestrator over the same devices, and all fault counters
// must stay at zero. Running under `-count=2` additionally proves the whole
// scenario replays bit-identically run over run.
func TestResilienceZeroFaultsMatchesInProcess(t *testing.T) {
	r := tinyResilience()
	res, err := RunResilience(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != "" {
		t.Fatalf("zero-fault run degraded: %s", res.Err)
	}
	if res.RoundsCompleted != r.Options.Rounds {
		t.Fatalf("completed %d rounds, want %d", res.RoundsCompleted, r.Options.Rounds)
	}
	if res.Drops != 0 || res.Rejoins != 0 || res.FaultEvents != 0 {
		t.Fatalf("zero-fault run recorded drops=%d rejoins=%d faults=%d", res.Drops, res.Rejoins, res.FaultEvents)
	}
	for _, c := range res.Clients {
		if c.Err != "" || c.Reconnects != 0 {
			t.Fatalf("client %d: err=%q reconnects=%d", c.ID, c.Err, c.Reconnects)
		}
		if c.LastRound != r.Options.Rounds {
			t.Fatalf("client %d trained through round %d, want %d", c.ID, c.LastRound, r.Options.Rounds)
		}
	}

	// Exact byte accounting: every round the server writes one model to each
	// device and reads one update back, plus the final done broadcast; the
	// join frame is protocol framing and must not be counted.
	n := core.NewController(r.Options.Core, newRNG(1, 0)).NumParams()
	devices := len(r.Scenario.Devices)
	transfer := int64(fed.TransferSize(n))
	if want := transfer * int64(devices*(r.Options.Rounds+1)); res.ServerBytesSent != want {
		t.Errorf("server sent %d bytes, want %d", res.ServerBytesSent, want)
	}
	if want := transfer * int64(devices*r.Options.Rounds); res.ServerBytesReceived != want {
		t.Errorf("server received %d bytes, want %d", res.ServerBytesReceived, want)
	}

	// The in-process reference: same devices, same initial model, same
	// aggregation — must land on the same final parameters, hence the same
	// greedy evaluation.
	clients := make([]fed.Client, devices)
	for i, names := range r.Scenario.Devices {
		specs, err := workload.ByNames(names...)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = newNeuralDevice(r.Options, int64(idResilienceDevice+i), specs)
	}
	global := core.NewController(r.Options.Core, newRNG(r.Options.Seed, idResilienceInit)).ModelParams()
	if err := fed.Run(global, clients, r.Options.Rounds, nil); err != nil {
		t.Fatal(err)
	}
	pol := NewNeuralPolicy(r.Options.Core, global)
	for a, spec := range EvalApps() {
		ev := evaluate(r.Options, pol, spec, false, idResilienceEval, int64(a))
		if got := res.FinalEvals[a].AvgReward; got != ev.AvgReward {
			t.Fatalf("app %s: TCP-trained eval reward %v differs from in-process %v", spec.Name, got, ev.AvgReward)
		}
	}
	if len(res.FinalEvals) != len(EvalApps()) {
		t.Fatalf("evaluated %d apps, want %d", len(res.FinalEvals), len(EvalApps()))
	}
}

// TestResilienceFaultScheduleReplaysBitIdentically is the determinism claim
// behind the CI `-run Resilience -count=2` job: the fault schedule an
// injector produces for a fixed operation sequence is a pure function of
// (seed, config) — two injectors built alike emit byte-for-byte identical
// event logs, independent of wall-clock timing.
func TestResilienceFaultScheduleReplaysBitIdentically(t *testing.T) {
	cfg := faultnet.Config{DropRate: 0.2, TruncateRate: 0.2}
	run := func() []faultnet.Event {
		inj := faultnet.NewInjector(42, cfg)
		// Drive the fed wire protocol's op shape over three connections:
		// writes and reads of paper-sized frames until the schedule kills
		// the link.
		for c := 0; c < 3; c++ {
			a, b := net.Pipe()
			fc := inj.Wrap(a)
			done := make(chan struct{})
			go func() {
				defer close(done)
				buf := make([]byte, 4096)
				for {
					if _, err := b.Read(buf); err != nil {
						return
					}
					if _, err := b.Write(buf[:64]); err != nil {
						return
					}
				}
			}()
			frame := make([]byte, 2757)
			rbuf := make([]byte, 64)
			for op := 0; op < 8; op++ {
				if _, err := fc.Write(frame); err != nil {
					break
				}
				if _, err := fc.Read(rbuf); err != nil {
					break
				}
			}
			_ = fc.Close()
			_ = b.Close()
			<-done
		}
		return inj.Events()
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("schedule injected no faults at 40% fault rate")
	}
	if len(first) != len(second) {
		t.Fatalf("replay produced %d events, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, first[i], second[i])
		}
	}
}

// TestResilienceUnderFaults runs the scenario with real fault injection and
// checks the degradation invariants: the run either completes every round
// or reports a quorum collapse covering a committed prefix; counters are
// mutually consistent; and the final model is always evaluated.
func TestResilienceUnderFaults(t *testing.T) {
	r := tinyResilience()
	r.Quorum = 1
	r.Faults = faultnet.Config{DropRate: 0.05}
	r.FaultSeed = 7
	r.RoundTimeout = 5 * time.Second
	r.Retry = fed.Backoff{Attempts: 6, Base: 5 * time.Millisecond, Max: 50 * time.Millisecond}

	res, err := RunResilience(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == "" && res.RoundsCompleted != r.Options.Rounds {
		t.Fatalf("run reported success after %d of %d rounds", res.RoundsCompleted, r.Options.Rounds)
	}
	if res.Err != "" {
		if res.RoundsCompleted >= r.Options.Rounds {
			t.Fatalf("run reported failure %q after all %d rounds", res.Err, res.RoundsCompleted)
		}
		if !strings.Contains(res.Err, "round") {
			t.Errorf("degraded run's error %q does not name the failing round", res.Err)
		}
	}
	// Every reconnect a device performed implies a server-side drop; a
	// rejoin can only follow a drop.
	var reconnects int
	for _, c := range res.Clients {
		reconnects += c.Reconnects
	}
	if res.Rejoins > res.Drops {
		t.Errorf("rejoins %d exceed drops %d", res.Rejoins, res.Drops)
	}
	if res.Drops > 0 && res.FaultEvents == 0 {
		t.Errorf("server dropped %d connections but the injector recorded no faults", res.Drops)
	}
	if len(res.FinalEvals) != len(EvalApps()) {
		t.Fatalf("final model evaluated on %d apps, want %d", len(res.FinalEvals), len(EvalApps()))
	}
	t.Logf("rounds=%d drops=%d rejoins=%d reconnects=%d faults=%d reward=%.4f err=%q",
		res.RoundsCompleted, res.Drops, res.Rejoins, reconnects, res.FaultEvents, res.FinalReward, res.Err)
}

func TestResilienceOptionsValidate(t *testing.T) {
	r := tinyResilience()
	r.Quorum = len(r.Scenario.Devices) + 1
	if _, err := RunResilience(r); err == nil {
		t.Error("quorum above device count accepted")
	}
	r = tinyResilience()
	r.RoundTimeout = 0
	if _, err := RunResilience(r); err == nil {
		t.Error("unbounded round timeout accepted")
	}
	r = tinyResilience()
	r.Faults = faultnet.Config{DropRate: 2}
	if _, err := RunResilience(r); err == nil {
		t.Error("invalid fault config accepted")
	}
}
