package experiment

import (
	"time"

	"fedpower/internal/core"
	"fedpower/internal/fed"
	"fedpower/internal/replay"
	"fedpower/internal/sim"
	"fedpower/internal/workload"
)

// OverheadResult reproduces the runtime-overhead accounting of §IV-C. The
// paper reports 29 ms average control latency on the Jetson Nano (5.9 % of
// the 500 ms control interval), 2.8 kB per federated transfer, and ~100 kB
// of replay-buffer storage. Our latency is host-machine dependent and
// orders of magnitude lower than an in-Python controller on a Cortex-A57;
// the transfer and storage numbers are exact properties of the model and
// buffer dimensions and match the paper.
type OverheadResult struct {
	// DecisionLatency is the mean wall-clock time of one control decision:
	// state construction, network inference and softmax sampling.
	DecisionLatency time.Duration
	// UpdateLatency is the mean wall-clock time of one mini-batch policy
	// update (sample + backprop + Adam step).
	UpdateLatency time.Duration
	// OverheadPct is DecisionLatency relative to the control interval.
	OverheadPct float64
	// TransferBytes is the on-wire size of one model transfer.
	TransferBytes int
	// ModelParams is the policy-network parameter count.
	ModelParams int
	// ReplayBytes is the replay buffer storage footprint.
	ReplayBytes int
}

// Clock supplies the current wall-clock time for latency measurement. The
// noclock analyzer forbids calling time.Now inside this package, so the
// clock enters as an injected value: production passes time.Now, tests pass
// a fake and get deterministic latency numbers.
type Clock func() time.Time

// RunOverhead measures the controller's runtime costs on the current host
// over the given number of control decisions, timed with the real wall
// clock.
func RunOverhead(o Options, decisions int) *OverheadResult {
	return RunOverheadWithClock(o, decisions, time.Now)
}

// RunOverheadWithClock is RunOverhead with an explicit clock. Wall-clock
// time is the measurement target here (latency of inference and updates),
// not an input to the simulation — the simulated substrate itself remains
// purely virtual-time.
func RunOverheadWithClock(o Options, decisions int, now Clock) *OverheadResult {
	if decisions <= 0 {
		decisions = 1000
	}
	ctrl := core.NewController(o.Core, newRNG(o.Seed, 5000))
	dev := sim.NewDevice(o.Table, o.Power, newRNG(o.Seed, 5001))
	stream := workload.NewStream(newRNG(o.Seed, 5002), workload.SPLASH2())
	dev.Load(stream.Next())
	dev.SetLevel(bootstrapLevel(o.Table))
	obs := dev.Step(o.IntervalS)

	var state []float64
	// Warm the buffer so updates operate on realistic contents.
	for i := 0; i < o.Core.BatchSize*2; i++ {
		if dev.Done() {
			dev.Load(stream.Next())
		}
		state = core.StateVector(obs, state)
		a := ctrl.SelectAction(state)
		dev.SetLevel(a)
		obs = dev.Step(o.IntervalS)
		ctrl.Observe(state, a, o.Core.Reward.Reward(obs.NormFreq, obs.PowerW))
	}

	// Decision latency: state build + inference + sampling only (the
	// device step is simulated time, not controller overhead).
	start := now()
	for i := 0; i < decisions; i++ {
		state = core.StateVector(obs, state)
		_ = ctrl.SelectAction(state)
	}
	decision := now().Sub(start) / time.Duration(decisions)

	// Update latency.
	updates := decisions / 10
	if updates == 0 {
		updates = 1
	}
	start = now()
	for i := 0; i < updates; i++ {
		ctrl.Update()
	}
	update := now().Sub(start) / time.Duration(updates)

	interval := time.Duration(o.IntervalS * float64(time.Second))
	return &OverheadResult{
		DecisionLatency: decision,
		UpdateLatency:   update,
		OverheadPct:     float64(decision) / float64(interval) * 100,
		TransferBytes:   fed.TransferSize(ctrl.NumParams()),
		ModelParams:     ctrl.NumParams(),
		ReplayBytes:     replay.New(o.Core.ReplayCapacity).Footprint(core.StateDim),
	}
}
