// Package experiment reproduces the paper's evaluation (§IV): the Table II
// training scenarios, the local-vs-federated comparison of Fig. 3 and
// Fig. 4, the Profit+CollabPolicy comparison of Table III and Fig. 5, the
// reward-signal sweep of Fig. 2, and the runtime-overhead accounting of
// §IV-C.
//
// All experiments run on the simulated substrate (internal/sim,
// internal/workload) with deterministic seeding: the same Options produce
// bit-identical results.
package experiment

import (
	"fmt"
	"math/rand"
	"runtime"

	"fedpower/internal/core"
	"fedpower/internal/sim"
)

// Options configures an experiment run. DefaultOptions matches the paper's
// §III-C / Table I setup on the Jetson Nano platform model.
type Options struct {
	// Rounds is the number of federated rounds R (paper: 100).
	Rounds int
	// StepsPerRound is the environment steps per round T (paper: 100).
	StepsPerRound int
	// IntervalS is the DVFS control interval Δ_DVFS in seconds (paper: 0.5).
	IntervalS float64
	// EvalSteps caps the per-round evaluation episode length used for the
	// reward curves of Fig. 3/4 (the paper evaluates one application per
	// round; a cap keeps episodes comparable across applications).
	EvalSteps int
	// ExecEvalEvery controls how often (in rounds) the run-to-completion
	// evaluation behind Table III and Fig. 5 executes; those metrics are
	// averaged over these evaluation points.
	ExecEvalEvery int
	// MaxExecSteps bounds a run-to-completion evaluation episode as a
	// safety net against a policy stuck at the lowest frequency.
	MaxExecSteps int
	// Seed is the root seed; every stochastic component derives its own
	// stream from it.
	Seed int64
	// Core holds the controller hyper-parameters (Table I).
	Core core.Params
	// Table is the processor's V/f table; Power its power model.
	Table *sim.VFTable
	Power sim.PowerModel
	// Thermal, when true, attaches the lumped-RC temperature model with
	// leakage feedback to every simulated device — the second-order effect
	// the paper neglects (see the thermal ablation benchmark).
	Thermal bool
	// Parallelism bounds the experiment engine's worker pools: concurrent
	// clients inside a federated round, concurrent scenarios in the
	// Fig. 3/Fig. 5/Table III runners, concurrent sweep points and seed
	// replicates. 0 (the default) uses GOMAXPROCS; 1 forces fully
	// sequential execution. Results are bit-identical at every width —
	// each unit of work owns independent seeded RNG streams and writes
	// only its own result slot, and all floating-point aggregation
	// consumes slots in stable index order (TestParallelMatchesSequential
	// pins this).
	Parallelism int
}

// DefaultOptions returns the paper's configuration against the Jetson Nano
// platform model.
func DefaultOptions() Options {
	table := sim.JetsonNanoTable()
	return Options{
		Rounds:        100,
		StepsPerRound: 100,
		IntervalS:     0.5,
		EvalSteps:     40,
		ExecEvalEvery: 10,
		MaxExecSteps:  3000,
		Seed:          1,
		Core:          core.Defaults(table.Len()),
		Table:         table,
		Power:         sim.DefaultPowerModel(),
	}
}

// Validate reports the first inconsistency.
func (o Options) Validate() error {
	switch {
	case o.Rounds <= 0:
		return fmt.Errorf("experiment: rounds %d must be positive", o.Rounds)
	case o.StepsPerRound <= 0:
		return fmt.Errorf("experiment: steps per round %d must be positive", o.StepsPerRound)
	case o.IntervalS <= 0:
		return fmt.Errorf("experiment: control interval %v must be positive", o.IntervalS)
	case o.EvalSteps <= 0:
		return fmt.Errorf("experiment: eval steps %d must be positive", o.EvalSteps)
	case o.ExecEvalEvery <= 0:
		return fmt.Errorf("experiment: exec eval cadence %d must be positive", o.ExecEvalEvery)
	case o.MaxExecSteps <= 0:
		return fmt.Errorf("experiment: max exec steps %d must be positive", o.MaxExecSteps)
	case o.Parallelism < 0:
		return fmt.Errorf("experiment: parallelism %d must be non-negative", o.Parallelism)
	case o.Table == nil:
		return fmt.Errorf("experiment: nil V/f table")
	case o.Table.Len() != o.Core.Actions:
		return fmt.Errorf("experiment: V/f table has %d levels but controller expects %d actions", o.Table.Len(), o.Core.Actions)
	}
	return o.Core.Validate()
}

// workers resolves the Parallelism knob into a concrete pool width:
// GOMAXPROCS when unset, the explicit value otherwise.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// mix64 is the SplitMix64 finaliser: a bijective avalanche mix.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// subseed derives a deterministic child seed from the root seed and a list
// of stream identifiers. The root is mixed before the first identifier is
// absorbed and every absorption passes through the full mix, so distinct
// identifier tuples cannot collide through simple integer relations (e.g.
// (1,1) vs (2,0)).
func subseed(root int64, ids ...int64) int64 {
	const golden = 0x9e3779b97f4a7c15
	z := mix64(uint64(root) + golden)
	for _, id := range ids {
		z = mix64(z + uint64(id) + golden)
	}
	return int64(z)
}

// newRNG returns a rand.Rand over a derived subseed.
func newRNG(root int64, ids ...int64) *rand.Rand {
	return rand.New(rand.NewSource(subseed(root, ids...)))
}
