package experiment

// The multi-core extension exercises the paper's actual CPU topology (four
// cores, one shared clock) with concurrent per-core workloads — a substrate
// the paper's single-threaded evaluation leaves for future work. The DVFS
// decision now trades off four applications at once under a cluster-level
// budget, and the controller observes aggregate counters.

import (
	"fmt"

	"fedpower/internal/core"
	"fedpower/internal/fed"
	"fedpower/internal/sim"
	"fedpower/internal/stats"
	"fedpower/internal/workload"
)

// MultiCoreBudgetW is the cluster-level power constraint used by the
// multi-core experiment. With four active cores sharing one rail, 1.8 W
// plays the role 0.6 W plays for a single core: compute-heavy mixes cross
// it mid-range, memory-heavy mixes fit at f_max.
const MultiCoreBudgetW = 1.8

// multiCoreParams adapts the Table I controller to the cluster budget.
func multiCoreParams(o Options) core.Params {
	p := o.Core
	p.Reward.PCritW = MultiCoreBudgetW
	p.Reward.KOffsetW = 0.15 // scale the soft band with the budget
	return p
}

// clusterDevice couples a multi-core cluster, per-core workload streams and
// one shared power controller; it implements fed.Client.
type clusterDevice struct {
	clu     *sim.MultiCoreDevice
	ctrl    *core.Controller
	streams []*workload.Stream

	steps    int
	interval float64

	lastObs sim.Observation
	state   []float64
	started bool
}

func newClusterDevice(o Options, id int64, cores int, apps []workload.Spec) *clusterDevice {
	clu := sim.NewMultiCoreDevice(o.Table, o.Power, cores, newRNG(o.Seed, id, 21))
	ctrl := core.NewController(multiCoreParams(o), newRNG(o.Seed, id, 22))
	streams := make([]*workload.Stream, cores)
	for i := range streams {
		streams[i] = workload.NewStream(newRNG(o.Seed, id, 23, int64(i)), apps)
	}
	return &clusterDevice{
		clu:      clu,
		ctrl:     ctrl,
		streams:  streams,
		steps:    o.StepsPerRound,
		interval: o.IntervalS,
	}
}

// reload tops up every completed core from its stream.
func (d *clusterDevice) reload() {
	for i := 0; i < d.clu.Cores(); i++ {
		if d.clu.CoreDone(i) {
			d.clu.LoadCore(i, d.streams[i].Next())
		}
	}
}

func (d *clusterDevice) bootstrap() {
	d.reload()
	d.clu.SetLevel(bootstrapLevel(d.clu.Table))
	d.lastObs = d.clu.Step(d.interval)
	d.started = true
}

// TrainRound implements fed.Client over the cluster.
func (d *clusterDevice) TrainRound(round int, global []float64) ([]float64, error) {
	d.ctrl.SetModelParams(global)
	if !d.started {
		d.bootstrap()
	}
	for t := 0; t < d.steps; t++ {
		d.reload()
		d.state = core.StateVector(d.lastObs, d.state)
		action := d.ctrl.SelectAction(d.state)
		d.clu.SetLevel(action)
		obs := d.clu.Step(d.interval)
		r := d.ctrl.P.Reward.Reward(obs.NormFreq, obs.PowerW)
		d.ctrl.Observe(d.state, action, r)
		d.lastObs = obs
	}
	return d.ctrl.ModelParams(), nil
}

// MultiCoreResult holds the multi-core extension's per-round evaluation
// traces for the federated and local-only regimes.
type MultiCoreResult struct {
	Cores   int
	BudgetW float64
	Fed     []RoundEval
	Local   [][]RoundEval
}

// AvgFedReward returns the mean federated evaluation reward.
func (r *MultiCoreResult) AvgFedReward() float64 {
	return Mean(r.Fed, func(e RoundEval) float64 { return e.Reward })
}

// AvgLocalReward returns the mean local-only evaluation reward across
// devices.
func (r *MultiCoreResult) AvgLocalReward() float64 {
	var agg stats.Running
	for _, dev := range r.Local {
		for _, e := range dev {
			agg.Add(e.Reward)
		}
	}
	return agg.Mean()
}

// evalCluster runs the greedy policy on a fresh 4-core cluster whose cores
// are loaded with a rotating window of the evaluation suite.
func evalCluster(o Options, model []float64, cores, round int, ids ...int64) RoundEval {
	clu := sim.NewMultiCoreDevice(o.Table, o.Power, cores, newRNG(o.Seed, ids...))
	evalSet := EvalApps()
	for i := 0; i < cores; i++ {
		clu.LoadCore(i, workload.NewApp(evalSet[(round-1+i)%len(evalSet)]))
	}
	clu.SetLevel(bootstrapLevel(o.Table))
	obs := clu.Step(o.IntervalS)

	p := multiCoreParams(o)
	pol := NewNeuralPolicy(p, model)
	var reward, freq stats.Running
	for t := 0; t < o.EvalSteps && !clu.AllDone(); t++ {
		action := pol.Action(obs)
		clu.SetLevel(action)
		obs = clu.Step(o.IntervalS)
		reward.Add(p.Reward.Reward(obs.NormFreq, obs.PowerW))
		freq.Add(obs.NormFreq)
	}
	return RoundEval{
		Round:        round,
		App:          fmt.Sprintf("mix@%d", (round-1)%len(evalSet)),
		Reward:       reward.Mean(),
		MeanNormFreq: freq.Mean(),
		StdNormFreq:  freq.Std(),
	}
}

// RunMultiCore trains the split-half scenario on two 4-core clusters in
// both regimes and evaluates per round on rotating 4-application mixes
// under the cluster budget.
func RunMultiCore(o Options) (*MultiCoreResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	const cores = 4
	sc := SplitHalf()
	deviceSpecs := make([][]workload.Spec, len(sc.Devices))
	for i, names := range sc.Devices {
		specs, err := workload.ByNames(names...)
		if err != nil {
			return nil, err
		}
		deviceSpecs[i] = specs
	}

	result := &MultiCoreResult{
		Cores:   cores,
		BudgetW: MultiCoreBudgetW,
		Local:   make([][]RoundEval, len(deviceSpecs)),
	}

	// Federated.
	clients := make([]fed.Client, len(deviceSpecs))
	for i, specs := range deviceSpecs {
		clients[i] = newClusterDevice(o, int64(5000+i), cores, specs)
	}
	global := core.NewController(multiCoreParams(o), newRNG(o.Seed, idFedInit, 5000)).ModelParams()
	globalCopy := append([]float64(nil), global...)
	err := fed.RunParallel(globalCopy, clients, o.Rounds, o.workers(), func(round int, g []float64) {
		result.Fed = append(result.Fed, evalCluster(o, g, cores, round, 5100, int64(round)))
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: multi-core federated training: %w", err)
	}

	// Local-only.
	for i, specs := range deviceSpecs {
		dev := newClusterDevice(o, int64(5200+i), cores, specs)
		local := append([]float64(nil), dev.ctrl.ModelParams()...)
		devIdx := i
		err := fed.Run(local, []fed.Client{dev}, o.Rounds, func(round int, g []float64) {
			result.Local[devIdx] = append(result.Local[devIdx],
				evalCluster(o, g, cores, round, 5300, int64(devIdx), int64(round)))
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: multi-core local training device %d: %w", i, err)
		}
	}
	return result, nil
}
