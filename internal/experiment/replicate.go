package experiment

// Multi-seed replication: the paper reports single training runs; this
// harness repeats the Fig. 3 comparison across independent seeds and
// reports the mean and spread of the federated-vs-local improvement, so
// the headline number comes with an uncertainty estimate.

import (
	"fmt"

	"fedpower/internal/par"
	"fedpower/internal/stats"
)

// Replication holds per-seed outcomes of the local-vs-federated comparison.
type Replication struct {
	Seeds []int64
	// FedReward and LocalReward are the per-seed scenario-averaged
	// evaluation rewards.
	FedReward   []float64
	LocalReward []float64
	// ImprovementPct is the per-seed improvement (reward-floor-shifted
	// when the local mean is non-positive, as in Fig3Result).
	ImprovementPct []float64
}

// Summary returns the mean and population standard deviation of the
// improvement across seeds.
func (r *Replication) Summary() (mean, std float64) {
	return stats.Mean(r.ImprovementPct), stats.Std(r.ImprovementPct)
}

// AllPositive reports whether the federated policy beat the local-only
// policies under every seed.
func (r *Replication) AllPositive() bool {
	for i := range r.FedReward {
		if r.FedReward[i] <= r.LocalReward[i] {
			return false
		}
	}
	return len(r.FedReward) > 0
}

// RunReplication repeats RunFig3 once per seed. Seeds must be non-empty
// and distinct (identical seeds would silently produce duplicated, not
// independent, replicates).
func RunReplication(o Options, seeds []int64) (*Replication, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: replication needs at least one seed")
	}
	seen := map[int64]bool{}
	for _, s := range seeds {
		if seen[s] {
			return nil, fmt.Errorf("experiment: duplicate replication seed %d", s)
		}
		seen[s] = true
	}
	// Replicates are independent by construction (distinct root seeds), so
	// they fan out on the experiment worker pool; each writes only its own
	// per-seed slot and the slots are reported in seed order.
	out := &Replication{
		Seeds:          append([]int64(nil), seeds...),
		FedReward:      make([]float64, len(seeds)),
		LocalReward:    make([]float64, len(seeds)),
		ImprovementPct: make([]float64, len(seeds)),
	}
	err := par.ForEach(o.workers(), len(seeds), func(i int) error {
		so := o
		so.Seed = seeds[i]
		res, err := RunFig3(so)
		if err != nil {
			return fmt.Errorf("experiment: replication seed %d: %w", seeds[i], err)
		}
		var fedAgg, localAgg stats.Running
		for _, sc := range res.Scenarios {
			fedAgg.Add(sc.AvgFedReward())
			localAgg.Add(sc.AvgLocalReward())
		}
		pct, _ := res.ImprovementPct()
		out.FedReward[i] = fedAgg.Mean()
		out.LocalReward[i] = localAgg.Mean()
		out.ImprovementPct[i] = pct
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DefaultReplicationSeeds returns n distinct seeds derived from a base.
func DefaultReplicationSeeds(base int64, n int) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds
}
