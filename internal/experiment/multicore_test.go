package experiment

import (
	"testing"

	"fedpower/internal/sim"
	"fedpower/internal/workload"
)

func TestMultiCoreParamsScaleBudget(t *testing.T) {
	o := DefaultOptions()
	p := multiCoreParams(o)
	if p.Reward.PCritW != MultiCoreBudgetW {
		t.Fatalf("cluster budget %v, want %v", p.Reward.PCritW, MultiCoreBudgetW)
	}
	if p.Reward.KOffsetW <= o.Core.Reward.KOffsetW {
		t.Fatal("soft band must scale up with the cluster budget")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterDeviceTrainRound(t *testing.T) {
	o := smallOptions()
	specs, err := workload.ByNames("fft", "lu", "water-ns")
	if err != nil {
		t.Fatal(err)
	}
	dev := newClusterDevice(o, 1, 4, specs)
	out, err := dev.TrainRound(1, dev.ctrl.ModelParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 687 {
		t.Fatalf("returned %d params", len(out))
	}
	if dev.ctrl.Step() != o.StepsPerRound {
		t.Fatalf("took %d steps, want %d", dev.ctrl.Step(), o.StepsPerRound)
	}
	// All four cores must be busy after a round (reload keeps them fed).
	busy := 0
	for i := 0; i < dev.clu.Cores(); i++ {
		if !dev.clu.CoreDone(i) {
			busy++
		}
	}
	if busy != 4 {
		t.Fatalf("%d cores busy after a round, want 4", busy)
	}
}

func TestEvalClusterDeterministic(t *testing.T) {
	o := smallOptions()
	model := newClusterDevice(o, 9, 4, workload.SPLASH2()).ctrl.ModelParams()
	a := evalCluster(o, model, 4, 3, 77)
	b := evalCluster(o, model, 4, 3, 77)
	if a != b {
		t.Fatalf("evalCluster not deterministic:\n%+v\n%+v", a, b)
	}
	if a.Reward < -1 || a.Reward > 1 {
		t.Fatalf("reward %v outside [-1, 1]", a.Reward)
	}
}

func TestRunMultiCore(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-core training skipped in -short mode")
	}
	o := smallOptions()
	o.Rounds = 15
	res, err := RunMultiCore(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores != 4 || res.BudgetW != MultiCoreBudgetW {
		t.Fatalf("result metadata %+v", res)
	}
	if len(res.Fed) != o.Rounds || len(res.Local) != 2 {
		t.Fatalf("trace shapes: fed %d, local %d", len(res.Fed), len(res.Local))
	}
	for _, e := range res.Fed {
		if e.Reward < -1 || e.Reward > 1 {
			t.Fatalf("round %d reward %v", e.Round, e.Reward)
		}
	}
	if res.AvgFedReward() <= -0.5 {
		t.Fatalf("federated cluster policy degenerate: %v", res.AvgFedReward())
	}
}

func TestRunMultiCoreValidation(t *testing.T) {
	o := smallOptions()
	o.Rounds = 0
	if _, err := RunMultiCore(o); err == nil {
		t.Error("invalid options accepted")
	}
}

func TestMultiCoreClusterCalibration(t *testing.T) {
	// The cluster budget must bisect the shared-clock range for a
	// compute-heavy 4-core mix and admit f_max for a memory-heavy one —
	// the multi-core analogue of the single-core calibration property.
	o := DefaultOptions()
	load := func(names ...string) *sim.MultiCoreDevice {
		clu := sim.NewMultiCoreDevice(o.Table, o.Power, 4, newRNG(1, 999))
		clu.PowerNoiseW, clu.IPCNoiseRel = 0, 0
		for i, n := range names {
			spec, err := workload.ByName(n)
			if err != nil {
				t.Fatal(err)
			}
			clu.LoadCore(i, workload.NewApp(spec))
		}
		return clu
	}
	cross := func(mk func() *sim.MultiCoreDevice) int {
		best := 0
		for k := 0; k < o.Table.Len(); k++ {
			clu := mk()
			clu.SetLevel(k)
			if clu.Step(0.5).TruePower <= MultiCoreBudgetW {
				best = k
			}
		}
		return best
	}
	compute := cross(func() *sim.MultiCoreDevice {
		return load("water-ns", "water-sp", "lu", "fmm")
	})
	memory := cross(func() *sim.MultiCoreDevice {
		return load("ocean", "radix", "ocean", "radix")
	})
	if compute < 3 || compute > 12 {
		t.Errorf("compute mix crossover level %d, want mid-range", compute)
	}
	if memory != o.Table.Len()-1 {
		t.Errorf("memory mix crossover level %d, want f_max", memory)
	}
}
