package experiment

import (
	"testing"
)

func TestRunComparisonPopulatesAllApps(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison training skipped in -short mode")
	}
	o := smallOptions()
	res, err := RunComparison(o, 0, TableII()[0])
	if err != nil {
		t.Fatal(err)
	}
	apps := res.Apps()
	if len(apps) != 12 {
		t.Fatalf("comparison covers %d apps, want 12", len(apps))
	}
	for _, app := range apps {
		ours, base := res.Ours[app], res.Base[app]
		// Two eval points (rounds 6, 12) for ours; twice that for the
		// baseline (two devices).
		if ours.Exec.N() != 2 {
			t.Errorf("%s: ours has %d eval points, want 2", app, ours.Exec.N())
		}
		if base.Exec.N() != 4 {
			t.Errorf("%s: baseline has %d eval points, want 4", app, base.Exec.N())
		}
		if ours.Exec.Mean() <= 0 || base.Exec.Mean() <= 0 {
			t.Errorf("%s: non-positive execution times", app)
		}
		if ours.IPS.Mean() <= 0 || base.IPS.Mean() <= 0 {
			t.Errorf("%s: non-positive IPS", app)
		}
		if ours.Power.Mean() <= 0 || base.Power.Mean() <= 0 {
			t.Errorf("%s: non-positive power", app)
		}
	}
}

func TestRunComparisonDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison training skipped in -short mode")
	}
	o := smallOptions()
	o.Rounds = 6
	o.ExecEvalEvery = 6
	a, err := RunComparison(o, 0, TableII()[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunComparison(o, 0, TableII()[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range a.Apps() {
		if a.Ours[app].Exec.Mean() != b.Ours[app].Exec.Mean() {
			t.Fatalf("%s: ours exec differs across identical runs", app)
		}
		if a.Base[app].Power.Mean() != b.Base[app].Power.Mean() {
			t.Fatalf("%s: baseline power differs across identical runs", app)
		}
	}
}

func TestRunComparisonValidatesInput(t *testing.T) {
	o := smallOptions()
	o.StepsPerRound = 0
	if _, err := RunComparison(o, 0, TableII()[0]); err == nil {
		t.Error("invalid options accepted")
	}
	if _, err := RunComparison(smallOptions(), 0, Scenario{Name: "bad", Devices: [][]string{{"x"}}}); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestTechAverages(t *testing.T) {
	m := map[string]*AppMetrics{}
	add := func(name string, exec, ips, pow float64) {
		am := &AppMetrics{}
		am.Exec.Add(exec)
		am.IPS.Add(ips)
		am.Power.Add(pow)
		m[name] = am
	}
	add("a", 10, 1e9, 0.5)
	add("b", 30, 3e9, 0.7)
	e, i, p := TechAverages(m)
	if e != 20 || i != 2e9 || p != 0.6 {
		t.Fatalf("TechAverages = (%v, %v, %v)", e, i, p)
	}
}

func TestTable3Deltas(t *testing.T) {
	r := &Table3Result{
		OursExecS: 24, BaseExecS: 30,
		OursIPS: 1.17e9, BaseIPS: 1e9,
		OursPowerW: 0.545, BasePowerW: 0.5,
	}
	if got := r.ExecDeltaPct(); got > -19 || got < -21 {
		t.Errorf("exec delta %v%%, want -20%%", got)
	}
	if got := r.IPSDeltaPct(); got < 16 || got > 18 {
		t.Errorf("IPS delta %v%%, want +17%%", got)
	}
	if got := r.PowerDeltaPct(); got < 8 || got > 10 {
		t.Errorf("power delta %v%%, want +9%%", got)
	}
}

// TestComparisonShapeMatchesPaper is the behavioural acceptance test for
// Table III: at the paper's full training budget, the federated neural
// controller must beat Profit+CollabPolicy on execution time and IPS while
// both stay near or below the power constraint. Deterministic by seed, and
// still sub-second — the simulator is cheap.
func TestComparisonShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison training skipped in -short mode")
	}
	o := DefaultOptions()
	res, err := RunComparison(o, 1, TableII()[1])
	if err != nil {
		t.Fatal(err)
	}
	oe, oi, op := TechAverages(res.Ours)
	be, bi, bp := TechAverages(res.Base)
	if oe >= be {
		t.Errorf("ours exec %v s not faster than baseline %v s", oe, be)
	}
	if oi <= bi {
		t.Errorf("ours IPS %v not above baseline %v", oi, bi)
	}
	// Both techniques must keep average power near the 0.6 W budget
	// (small overshoot tolerated: the average includes noisy measurements).
	for name, p := range map[string]float64{"ours": op, "baseline": bp} {
		if p > o.Core.Reward.PCritW*1.05 {
			t.Errorf("%s average power %v W exceeds the budget", name, p)
		}
	}
}

func TestFig5Speedups(t *testing.T) {
	mk := func(oursExec, baseExec, oursIPS, baseIPS float64) (*AppMetrics, *AppMetrics) {
		a, b := &AppMetrics{}, &AppMetrics{}
		a.Exec.Add(oursExec)
		a.IPS.Add(oursIPS)
		a.Power.Add(0.5)
		b.Exec.Add(baseExec)
		b.IPS.Add(baseIPS)
		b.Power.Add(0.5)
		return a, b
	}
	res := &Fig5Result{Comparison: &ComparisonResult{
		Ours: map[string]*AppMetrics{},
		Base: map[string]*AppMetrics{},
	}}
	res.Comparison.Ours["a"], res.Comparison.Base["a"] = mk(8, 10, 1.2e9, 1e9)
	res.Comparison.Ours["b"], res.Comparison.Base["b"] = mk(5, 10, 2e9, 1e9)

	avg, max := res.MeanExecSpeedupPct()
	if avg != 35 || max != 50 {
		t.Errorf("exec speedup avg %v max %v, want 35 / 50", avg, max)
	}
	avgI, maxI := res.MeanIPSGainPct()
	if avgI != 60 || maxI != 100 {
		t.Errorf("IPS gain avg %v max %v, want 60 / 100", avgI, maxI)
	}
}
