package experiment

// Extension experiments beyond the paper's evaluation:
//
//   - RunGovernors grounds the learned policies against classical
//     non-learning DVFS governors (the comparison the paper's introduction
//     makes qualitatively);
//   - RunHeterogeneous probes the paper's §V future-work direction,
//     "varying objectives/user preferences": devices train under
//     *different* power budgets and the shared policy is evaluated under
//     each of them.

import (
	"fmt"
	"sort"

	"fedpower/internal/core"
	"fedpower/internal/fed"
	"fedpower/internal/governor"
	"fedpower/internal/sim"
	"fedpower/internal/stats"
	"fedpower/internal/workload"
)

// governorPolicy adapts a governor to the evaluation Policy contract.
type governorPolicy struct {
	g governor.Governor
}

// NewGovernorPolicy wraps a classical governor for evaluation. Reset is
// called immediately so a reused governor starts each episode clean.
func NewGovernorPolicy(g governor.Governor) Policy {
	g.Reset()
	return &governorPolicy{g: g}
}

func (p *governorPolicy) Action(obs sim.Observation) int { return p.g.Action(obs) }

// GovernorsResult compares the federated RL policy against the classical
// governor set, every application run to completion.
type GovernorsResult struct {
	// Policies lists the comparator names in report order, the learned
	// policy first.
	Policies []string
	// PerApp[policy][app] is the run-to-completion evaluation.
	PerApp map[string]map[string]EvalResult
}

// Summary returns, per policy, the mean reward, execution time, power, and
// total budget violations across all applications.
func (r *GovernorsResult) Summary(policy string) (reward, execS, powerW float64, violations int) {
	var rw, ex, pw stats.Running
	for _, res := range r.PerApp[policy] {
		rw.Add(res.AvgReward)
		ex.Add(res.ExecTimeS)
		pw.Add(res.AvgPowerW)
		violations += res.Violations
	}
	return rw.Mean(), ex.Mean(), pw.Mean(), violations
}

// Apps returns the evaluated application names in deterministic order.
func (r *GovernorsResult) Apps() []string {
	for _, m := range r.PerApp {
		names := make([]string, 0, len(m))
		for n := range m {
			names = append(names, n)
		}
		sort.Strings(names)
		return names
	}
	return nil
}

// RunGovernors trains the federated policy on the split-half scenario,
// then evaluates it and the classical governors on every application to
// completion under the same budget.
func RunGovernors(o Options) (*GovernorsResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	final, err := trainFederated(o, 20, SplitHalf())
	if err != nil {
		return nil, err
	}

	type comparator struct {
		name string
		mk   func() Policy
	}
	comparators := []comparator{
		{"federated-rl", func() Policy { return NewNeuralPolicy(o.Core, final) }},
	}
	budget := o.Core.Reward.PCritW
	for _, g := range governor.Standard(o.Table.Len(), budget) {
		g := g
		comparators = append(comparators, comparator{g.Name(), func() Policy { return NewGovernorPolicy(g) }})
	}

	result := &GovernorsResult{PerApp: make(map[string]map[string]EvalResult)}
	for ci, c := range comparators {
		result.Policies = append(result.Policies, c.name)
		perApp := make(map[string]EvalResult)
		for appIdx, spec := range EvalApps() {
			perApp[spec.Name] = evaluate(o, c.mk(), spec, true, 7000, int64(ci), int64(appIdx))
		}
		result.PerApp[c.name] = perApp
	}
	return result, nil
}

// trainFederated runs federated training for a scenario and returns the
// final global model.
func trainFederated(o Options, scIndex int, sc Scenario) ([]float64, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	clients := make([]fed.Client, len(sc.Devices))
	for i, names := range sc.Devices {
		specs, err := workload.ByNames(names...)
		if err != nil {
			return nil, err
		}
		clients[i] = newNeuralDevice(o, int64(idFedDevice+i+10*scIndex), specs)
	}
	global := core.NewController(o.Core, newRNG(o.Seed, idFedInit, int64(scIndex))).ModelParams()
	globalCopy := append([]float64(nil), global...)
	if err := fed.RunParallel(globalCopy, clients, o.Rounds, o.workers(), nil); err != nil {
		return nil, fmt.Errorf("experiment: federated training scenario %s: %w", sc.Name, err)
	}
	return globalCopy, nil
}

// BudgetEval summarises a policy's behaviour under one power budget.
type BudgetEval struct {
	BudgetW       float64
	AvgReward     float64 // mean Eq. (4) reward, computed against BudgetW
	ViolationRate float64 // fraction of control steps above BudgetW
	AvgPowerW     float64
}

// HeteroResult is the heterogeneous-budget extension outcome: the shared
// policy trained with per-device budgets, against a reference policy
// trained homogeneously at the mean budget, both evaluated under every
// budget.
type HeteroResult struct {
	Budgets []float64
	Hetero  []BudgetEval // hetero-trained policy under Budgets[i]
	Homog   []BudgetEval // mean-budget-trained policy under Budgets[i]
}

// RunHeterogeneous trains one federated policy with device i constrained to
// budgets[i] (every device sees the full application suite, isolating the
// budget effect from workload diversity) and a reference policy with every
// device at the mean budget, then evaluates both under each budget.
//
// Expected outcome — and the reason the paper defers this to future work —
// is that the shared model averages the devices' conflicting notions of
// "too much power": the heterogeneous policy under-performs a
// budget-matched one at the extremes because the agent state carries no
// budget feature to condition on.
func RunHeterogeneous(o Options, budgets []float64) (*HeteroResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if len(budgets) < 2 {
		return nil, fmt.Errorf("experiment: heterogeneous run needs >= 2 budgets, got %d", len(budgets))
	}
	for _, b := range budgets {
		if b <= 0 {
			return nil, fmt.Errorf("experiment: invalid budget %v W", b)
		}
	}

	train := func(deviceBudgets []float64, baseID int64) ([]float64, error) {
		clients := make([]fed.Client, len(deviceBudgets))
		for i, b := range deviceBudgets {
			p := o.Core
			p.Reward.PCritW = b
			clients[i] = newNeuralDeviceWithParams(o, baseID+int64(i), workload.SPLASH2(), p)
		}
		global := core.NewController(o.Core, newRNG(o.Seed, idFedInit, baseID)).ModelParams()
		globalCopy := append([]float64(nil), global...)
		if err := fed.RunParallel(globalCopy, clients, o.Rounds, o.workers(), nil); err != nil {
			return nil, err
		}
		return globalCopy, nil
	}

	heteroModel, err := train(budgets, 3000)
	if err != nil {
		return nil, fmt.Errorf("experiment: heterogeneous training: %w", err)
	}
	mean := stats.Mean(budgets)
	homogBudgets := make([]float64, len(budgets))
	for i := range homogBudgets {
		homogBudgets[i] = mean
	}
	homogModel, err := train(homogBudgets, 4000)
	if err != nil {
		return nil, fmt.Errorf("experiment: homogeneous reference training: %w", err)
	}

	evalUnder := func(model []float64, budget float64, id int64) BudgetEval {
		eo := o
		eo.Core.Reward.PCritW = budget
		var rw, pw stats.Running
		steps, violations := 0, 0
		for appIdx, spec := range EvalApps() {
			res := evaluate(eo, NewNeuralPolicy(o.Core, model), spec, false, 8000, id, int64(appIdx))
			rw.Add(res.AvgReward)
			pw.Add(res.AvgPowerW)
			steps += res.Steps
			violations += res.Violations
		}
		rate := 0.0
		if steps > 0 {
			rate = float64(violations) / float64(steps)
		}
		return BudgetEval{
			BudgetW:       budget,
			AvgReward:     rw.Mean(),
			ViolationRate: rate,
			AvgPowerW:     pw.Mean(),
		}
	}

	out := &HeteroResult{Budgets: append([]float64(nil), budgets...)}
	for i, b := range budgets {
		out.Hetero = append(out.Hetero, evalUnder(heteroModel, b, int64(100+i)))
		out.Homog = append(out.Homog, evalUnder(homogModel, b, int64(200+i)))
	}
	return out, nil
}
