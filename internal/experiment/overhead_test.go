package experiment

import (
	"testing"
	"time"
)

func TestRunOverheadAccounting(t *testing.T) {
	o := DefaultOptions()
	res := RunOverhead(o, 500)
	if res.ModelParams != 687 {
		t.Errorf("model params = %d, want 687", res.ModelParams)
	}
	// 2748 payload + 9 header bytes: the paper's ~2.8 kB per transfer.
	if res.TransferBytes != 2757 {
		t.Errorf("transfer bytes = %d, want 2757", res.TransferBytes)
	}
	// 4000 × (5+1+1) × 4 B: the paper's ~100 kB replay storage.
	if res.ReplayBytes != 112000 {
		t.Errorf("replay bytes = %d, want 112000", res.ReplayBytes)
	}
	if res.DecisionLatency <= 0 {
		t.Error("decision latency not measured")
	}
	if res.UpdateLatency <= 0 {
		t.Error("update latency not measured")
	}
	if res.OverheadPct <= 0 {
		t.Error("overhead percentage not computed")
	}
	// A 687-parameter inference must be far below the paper's 29 ms even
	// on a slow host.
	if res.DecisionLatency > 5*time.Millisecond {
		t.Errorf("decision latency %v unreasonably high", res.DecisionLatency)
	}
}

func TestRunOverheadDefaultsDecisionCount(t *testing.T) {
	o := DefaultOptions()
	res := RunOverhead(o, 0) // falls back to a sane default
	if res.DecisionLatency <= 0 {
		t.Fatal("zero-decision call did not fall back")
	}
}

// TestRunOverheadWithFakeClock pins the clock-injection seam demanded by
// the noclock analyzer: with a deterministic clock the latency figures are
// exact functions of the tick size, independent of the host.
func TestRunOverheadWithFakeClock(t *testing.T) {
	o := DefaultOptions()
	const decisions = 500
	tick := time.Millisecond
	now := time.Unix(0, 0)
	clock := func() time.Time {
		now = now.Add(tick)
		return now
	}
	res := RunOverheadWithClock(o, decisions, clock)
	// Each latency block brackets its loop with exactly two clock reads,
	// so the measured total is one tick regardless of host speed.
	if want := tick / decisions; res.DecisionLatency != want {
		t.Errorf("decision latency = %v with fake clock, want %v", res.DecisionLatency, want)
	}
	if want := tick / (decisions / 10); res.UpdateLatency != want {
		t.Errorf("update latency = %v with fake clock, want %v", res.UpdateLatency, want)
	}
	interval := time.Duration(o.IntervalS * float64(time.Second))
	wantPct := float64(tick/decisions) / float64(interval) * 100
	if res.OverheadPct != wantPct {
		t.Errorf("overhead pct = %v, want %v", res.OverheadPct, wantPct)
	}
}
