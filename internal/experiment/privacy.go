package experiment

// The privacy/communication experiment quantifies the paper's central
// claim — collaborative learning *without* raw traces leaving the devices —
// by training the same scenario under three architectures:
//
//   - local-only: no collaboration, nothing leaves any device;
//   - federated (ours): model parameters leave, raw traces do not;
//   - central (Pan et al. [7]): raw (state, action, reward) traces leave.
//
// For each architecture it reports the final policy quality and two
// communication figures: total bytes moved and, separately, bytes of *raw
// trace data* exposed — the privacy-relevant quantity.

import (
	"fmt"

	"fedpower/internal/baseline"
	"fedpower/internal/core"
	"fedpower/internal/fed"
	"fedpower/internal/replay"
	"fedpower/internal/stats"
	"fedpower/internal/workload"
)

// ArchEval summarises one training architecture in the privacy comparison.
type ArchEval struct {
	Name string
	// AvgReward is the mean greedy evaluation reward over all twelve
	// applications using the final policy.
	AvgReward float64
	// TotalBytes is all training communication that crossed device
	// boundaries in either direction.
	TotalBytes int64
	// RawTraceBytes is the subset of TotalBytes that consists of raw
	// performance-counter/power samples — the privacy exposure.
	RawTraceBytes int64
}

// PrivacyResult holds the three architectures' outcomes.
type PrivacyResult struct {
	Local     ArchEval
	Federated ArchEval
	Central   ArchEval
}

// RunPrivacy trains the split-half scenario under all three architectures
// with identical budgets and evaluates the final policies on all twelve
// applications.
func RunPrivacy(o Options) (*PrivacyResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	sc := SplitHalf()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	deviceSpecs := make([][]workload.Spec, len(sc.Devices))
	for i, names := range sc.Devices {
		specs, err := workload.ByNames(names...)
		if err != nil {
			return nil, err
		}
		deviceSpecs[i] = specs
	}

	evalModel := func(model []float64, id int64) float64 {
		var agg stats.Running
		for appIdx, spec := range EvalApps() {
			res := evaluate(o, NewNeuralPolicy(o.Core, model), spec, false, 9000, id, int64(appIdx))
			agg.Add(res.AvgReward)
		}
		return agg.Mean()
	}

	out := &PrivacyResult{}

	// --- Local-only: independent devices, zero communication. -----------
	// Evaluate the average reward across the devices' final local models.
	var localAgg stats.Running
	for i, specs := range deviceSpecs {
		dev := newNeuralDevice(o, int64(idLocalDevice+i+1000), specs)
		local := append([]float64(nil), dev.Ctrl.ModelParams()...)
		if err := fed.Run(local, []fed.Client{dev}, o.Rounds, nil); err != nil {
			return nil, fmt.Errorf("experiment: privacy local training device %d: %w", i, err)
		}
		localAgg.Add(evalModel(local, int64(9100+i)))
	}
	out.Local = ArchEval{Name: "local-only", AvgReward: localAgg.Mean()}

	// --- Federated (ours): model parameters only. ------------------------
	fedClients := make([]fed.Client, len(deviceSpecs))
	for i, specs := range deviceSpecs {
		fedClients[i] = newNeuralDevice(o, int64(idFedDevice+i+1000), specs)
	}
	global := core.NewController(o.Core, newRNG(o.Seed, idFedInit, 1000)).ModelParams()
	globalCopy := append([]float64(nil), global...)
	if err := fed.RunParallel(globalCopy, fedClients, o.Rounds, o.workers(), nil); err != nil {
		return nil, fmt.Errorf("experiment: privacy federated training: %w", err)
	}
	// Per round and device: one model down, one model up.
	transfers := int64(o.Rounds) * int64(len(fedClients)) * 2
	out.Federated = ArchEval{
		Name:       "federated (ours)",
		AvgReward:  evalModel(globalCopy, 9200),
		TotalBytes: transfers * int64(fed.TransferSize(len(globalCopy))),
	}

	// --- Central (server-side learning, [7]): raw samples up, model down.
	trainer := baseline.NewCentralTrainer(o.Core, newRNG(o.Seed, 9300))
	centralClients := make([]*centralDevice, len(deviceSpecs))
	for i, specs := range deviceSpecs {
		centralClients[i] = newCentralDevice(o, int64(9400+i), specs)
	}
	for round := 1; round <= o.Rounds; round++ {
		snapshot := append([]float64(nil), trainer.Policy()...)
		for _, d := range centralClients {
			trainer.Ingest(d.CollectRound(snapshot))
		}
	}
	modelDown := int64(o.Rounds) * int64(len(centralClients)) * int64(fed.TransferSize(trainer.Controller().NumParams()))
	out.Central = ArchEval{
		Name:          "central (raw traces)",
		AvgReward:     evalModel(trainer.Policy(), 9500),
		TotalBytes:    trainer.RawBytesReceived() + modelDown,
		RawTraceBytes: trainer.RawBytesReceived(),
	}
	return out, nil
}

// centralDevice is the device side of the server-side architecture: it acts
// with the downloaded central policy (with local softmax exploration) and
// collects its raw interaction samples for upload instead of training
// locally.
type centralDevice struct {
	dev      *NeuralDevice
	samples  []replay.Sample
	rewardRP core.RewardParams
}

func newCentralDevice(o Options, id int64, apps []workload.Spec) *centralDevice {
	return &centralDevice{
		dev:      newNeuralDevice(o, id, apps),
		rewardRP: o.Core.Reward,
	}
}

// CollectRound runs T control steps under the given central policy snapshot
// and returns the round's raw samples. The device's own controller is used
// only for action selection (exploration temperature included); its buffer
// and updates are bypassed — all learning happens on the server.
func (d *centralDevice) CollectRound(policy []float64) []replay.Sample {
	nd := d.dev
	nd.Ctrl.SetModelParams(policy)
	if !nd.started {
		nd.bootstrap()
	}
	d.samples = d.samples[:0]
	for t := 0; t < nd.steps; t++ {
		if nd.Dev.Done() {
			nd.Dev.Load(nd.Stream.Next())
		}
		nd.state = core.StateVector(nd.lastObs, nd.state)
		action := nd.Ctrl.SelectAction(nd.state)
		// Exploration decays on-device even though learning is central.
		nd.Ctrl.AdvanceSchedule()
		nd.Dev.SetLevel(action)
		obs := nd.Dev.Step(nd.interval)
		r := d.rewardRP.Reward(obs.NormFreq, obs.PowerW)
		d.samples = append(d.samples, replay.Sample{
			State:  append([]float64(nil), nd.state...),
			Action: action,
			Reward: r,
		})
		nd.lastObs = obs
	}
	return d.samples
}
