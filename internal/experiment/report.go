package experiment

import (
	"fmt"
	"strings"

	"fedpower/internal/stats"
)

// Rendering helpers for the CLI and the examples: plain-text tables and
// Unicode sparklines, so every figure and table of the paper has a readable
// terminal representation without plotting dependencies.

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-width Unicode sparkline over the
// given value range. Values are bucketed by averaging when the series is
// longer than width. An empty series renders as an empty string.
func Sparkline(values []float64, width int, lo, hi float64) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	if hi <= lo {
		hi = lo + 1
	}
	if len(values) < width {
		width = len(values)
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		start := i * len(values) / width
		end := (i + 1) * len(values) / width
		if end <= start {
			end = start + 1
		}
		v := stats.Mean(values[start:end])
		frac := (v - lo) / (hi - lo)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		idx := int(frac * float64(len(sparkLevels)-1))
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// Table renders rows as a column-aligned plain-text table with a header
// separator.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// RewardSeries extracts the reward column from round evaluations.
func RewardSeries(evals []RoundEval) []float64 {
	out := make([]float64, len(evals))
	for i, e := range evals {
		out[i] = e.Reward
	}
	return out
}

// FreqSeries extracts the mean-normalised-frequency column from round
// evaluations.
func FreqSeries(evals []RoundEval) []float64 {
	out := make([]float64, len(evals))
	for i, e := range evals {
		out[i] = e.MeanNormFreq
	}
	return out
}
