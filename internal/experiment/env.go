package experiment

import (
	"fedpower/internal/baseline"
	"fedpower/internal/core"
	"fedpower/internal/sim"
	"fedpower/internal/workload"
)

// bootstrapLevel is the V/f level a device starts at before the controller
// has produced its first decision — the middle of the range, mirroring a
// default OS governor starting point.
func bootstrapLevel(table *sim.VFTable) int { return table.Len() / 2 }

// NeuralDevice couples a simulated device, a workload stream and the
// paper's neural power controller. It implements fed.Client: one TrainRound
// is T environment steps of Algorithm 1 starting from the received global
// model. A local-only device is simply a federation of one (averaging a
// single model is the identity).
type NeuralDevice struct {
	Dev    *sim.Device
	Ctrl   *core.Controller
	Stream *workload.Stream

	steps    int     // T
	interval float64 // Δ_DVFS

	lastObs sim.Observation
	state   []float64
	started bool
}

// newNeuralDevice builds a training device for the given application set.
// id distinguishes the device's random streams within the experiment.
func newNeuralDevice(o Options, id int64, apps []workload.Spec) *NeuralDevice {
	return newNeuralDeviceWithParams(o, id, apps, o.Core)
}

// newNeuralDeviceWithParams builds a training device whose controller uses
// device-specific parameters — the hook for the heterogeneous-objective
// extension, where devices train under different power budgets.
func newNeuralDeviceWithParams(o Options, id int64, apps []workload.Spec, p core.Params) *NeuralDevice {
	dev := sim.NewDevice(o.Table, o.Power, newRNG(o.Seed, id, 1))
	if o.Thermal {
		dev.Thermal = sim.DefaultThermalModel()
	}
	ctrl := core.NewController(p, newRNG(o.Seed, id, 2))
	stream := workload.NewStream(newRNG(o.Seed, id, 3), specsOf(apps))
	return &NeuralDevice{
		Dev:      dev,
		Ctrl:     ctrl,
		Stream:   stream,
		steps:    o.StepsPerRound,
		interval: o.IntervalS,
	}
}

func specsOf(apps []workload.Spec) []workload.Spec {
	return append([]workload.Spec(nil), apps...)
}

// bootstrap loads the first application and produces the initial
// observation at the bootstrap level.
func (d *NeuralDevice) bootstrap() {
	d.Dev.Load(d.Stream.Next())
	d.Dev.SetLevel(bootstrapLevel(d.Dev.Table))
	d.lastObs = d.Dev.Step(d.interval)
	d.started = true
}

// TrainRound implements fed.Client: install the global model, run T control
// steps with softmax exploration and periodic updates, and return the
// locally optimised parameters.
func (d *NeuralDevice) TrainRound(round int, global []float64) ([]float64, error) {
	d.Ctrl.SetModelParams(global)
	if !d.started {
		d.bootstrap()
	}
	for t := 0; t < d.steps; t++ {
		if d.Dev.Done() {
			d.Dev.Load(d.Stream.Next())
		}
		d.state = core.StateVector(d.lastObs, d.state)
		action := d.Ctrl.SelectAction(d.state)
		d.Dev.SetLevel(action)
		obs := d.Dev.Step(d.interval)
		r := d.Ctrl.P.Reward.Reward(obs.NormFreq, obs.PowerW)
		d.Ctrl.Observe(d.state, action, r)
		d.lastObs = obs
	}
	return d.Ctrl.ModelParams(), nil
}

// TabularDevice couples a simulated device and workload stream with the
// Profit+CollabPolicy baseline agent. Rounds mirror the neural setup — T
// environment steps — followed by the CollabPolicy summary exchange, which
// the scenario runner orchestrates.
type TabularDevice struct {
	Dev    *sim.Device
	Agent  *baseline.Collab
	Stream *workload.Stream

	steps    int
	interval float64

	lastObs sim.Observation
	started bool
}

// newTabularDevice builds a baseline training device. Random streams use
// distinct identifiers from the neural devices so the two techniques see
// independent noise.
func newTabularDevice(o Options, id int64, apps []workload.Spec) *TabularDevice {
	dev := sim.NewDevice(o.Table, o.Power, newRNG(o.Seed, id, 11))
	if o.Thermal {
		dev.Thermal = sim.DefaultThermalModel()
	}
	params := baseline.DefaultProfitParams(o.Table.Len())
	params.PCritW = o.Core.Reward.PCritW
	agent := baseline.NewCollab(baseline.NewProfit(params, newRNG(o.Seed, id, 12)))
	stream := workload.NewStream(newRNG(o.Seed, id, 13), specsOf(apps))
	return &TabularDevice{
		Dev:      dev,
		Agent:    agent,
		Stream:   stream,
		steps:    o.StepsPerRound,
		interval: o.IntervalS,
	}
}

func (d *TabularDevice) bootstrap() {
	d.Dev.Load(d.Stream.Next())
	d.Dev.SetLevel(bootstrapLevel(d.Dev.Table))
	d.lastObs = d.Dev.Step(d.interval)
	d.started = true
}

// TrainRound runs T steps of ε-greedy tabular learning. The CollabPolicy
// summary/aggregate exchange happens between rounds, outside this method.
func (d *TabularDevice) TrainRound() {
	if !d.started {
		d.bootstrap()
	}
	disc := d.Agent.Local.P.Disc
	for t := 0; t < d.steps; t++ {
		if d.Dev.Done() {
			d.Dev.Load(d.Stream.Next())
		}
		key := disc.Key(d.lastObs)
		action := d.Agent.SelectAction(key)
		d.Dev.SetLevel(action)
		obs := d.Dev.Step(d.interval)
		r := d.Agent.Local.Reward(obs)
		d.Agent.Observe(key, action, r)
		d.lastObs = obs
	}
}
