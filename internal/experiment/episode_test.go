package experiment

import (
	"bytes"
	"testing"

	"fedpower/internal/trace"
)

func TestRecordPolicyEpisode(t *testing.T) {
	o := smallOptions()
	var buf bytes.Buffer
	rec := trace.NewCSVRecorder(&buf)
	spec := EvalApps()[6] // ocean: completes quickly at high levels
	steps, err := RecordPolicyEpisode(o, levelPolicy(14), spec, rec)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != steps {
		t.Fatalf("recorded %d entries for %d steps", len(entries), steps)
	}
	if steps == 0 {
		t.Fatal("no steps recorded")
	}
	// The trace is internally consistent: monotone time and step, the
	// fixed level everywhere, app name correct.
	for i, e := range entries {
		if e.Step != i+1 {
			t.Fatalf("entry %d has step %d", i, e.Step)
		}
		if e.App != "ocean" {
			t.Fatalf("entry %d app %q", i, e.App)
		}
		if e.Level != 14 {
			t.Fatalf("entry %d level %d, want 14", i, e.Level)
		}
		if i > 0 && e.TimeS <= entries[i-1].TimeS {
			t.Fatalf("time not monotone at entry %d", i)
		}
	}
	// ocean at f_max: ~27 s of simulated execution at 0.5 s intervals.
	if steps < 40 || steps > 70 {
		t.Fatalf("ocean completed in %d steps, want ~54", steps)
	}
}

func TestRecordEpisodeTrainsAndRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	o := smallOptions()
	o.Rounds = 15
	var buf bytes.Buffer
	rec := trace.NewJSONLRecorder(&buf)
	steps, err := RecordEpisode(o, "radix", rec)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != steps || steps == 0 {
		t.Fatalf("%d entries for %d steps", len(entries), steps)
	}
	stats := SummariseTrace(entries, o.Core.Reward.PCritW)
	if stats.MeanPowerW <= 0 {
		t.Fatalf("degenerate trace stats %+v", stats)
	}
}

func TestRecordEpisodeUnknownApp(t *testing.T) {
	o := smallOptions()
	var buf bytes.Buffer
	if _, err := RecordEpisode(o, "doom", trace.NewCSVRecorder(&buf)); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestSummariseTrace(t *testing.T) {
	entries := []trace.Entry{
		{PowerW: 0.5, Reward: 0.6},
		{PowerW: 0.7, Reward: -0.4},
		{PowerW: 0.6, Reward: 1.0},
	}
	s := SummariseTrace(entries, 0.6)
	if s.Steps != 3 {
		t.Fatalf("steps %d", s.Steps)
	}
	if s.Violations != 1 {
		t.Fatalf("violations %d, want 1 (0.7 only; 0.6 is at the budget)", s.Violations)
	}
	if diff := s.MeanPowerW - 0.6; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("mean power %v", s.MeanPowerW)
	}
	if diff := s.MeanReward - 0.4; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("mean reward %v", s.MeanReward)
	}
	if z := SummariseTrace(nil, 0.6); z.Steps != 0 || z.MeanPowerW != 0 {
		t.Fatalf("empty summary %+v", z)
	}
}
