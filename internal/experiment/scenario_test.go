package experiment

import (
	"testing"

	"fedpower/internal/workload"
)

func TestTableIIMatchesPaper(t *testing.T) {
	scs := TableII()
	if len(scs) != 3 {
		t.Fatalf("%d scenarios, want 3", len(scs))
	}
	want := [][][]string{
		{{"fft", "lu"}, {"raytrace", "volrend"}},
		{{"water-ns", "water-sp"}, {"ocean", "radix"}},
		{{"fmm", "radiosity"}, {"barnes", "cholesky"}},
	}
	for i, sc := range scs {
		if len(sc.Devices) != 2 {
			t.Fatalf("scenario %s has %d devices, want 2", sc.Name, len(sc.Devices))
		}
		for d := range sc.Devices {
			for a := range sc.Devices[d] {
				if sc.Devices[d][a] != want[i][d][a] {
					t.Errorf("scenario %d device %d app %d = %s, want %s",
						i, d, a, sc.Devices[d][a], want[i][d][a])
				}
			}
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("scenario %s invalid: %v", sc.Name, err)
		}
	}
}

func TestTableIIScenariosAreDisjoint(t *testing.T) {
	// Within each scenario, no app is trained on both devices ("disjunct
	// training set").
	for _, sc := range TableII() {
		seen := map[string]bool{}
		for _, apps := range sc.Devices {
			for _, a := range apps {
				if seen[a] {
					t.Errorf("scenario %s trains %s on both devices", sc.Name, a)
				}
				seen[a] = true
			}
		}
	}
}

func TestSplitHalfCoversAllApps(t *testing.T) {
	sc := SplitHalf()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	total := 0
	for _, apps := range sc.Devices {
		if len(apps) != 6 {
			t.Errorf("split-half device trains %d apps, want 6", len(apps))
		}
		for _, a := range apps {
			if seen[a] {
				t.Errorf("app %s assigned twice", a)
			}
			seen[a] = true
			total++
		}
	}
	if total != 12 {
		t.Fatalf("split-half covers %d apps, want 12", total)
	}
	for _, name := range workload.Names() {
		if !seen[name] {
			t.Errorf("app %s missing from the split", name)
		}
	}
}

func TestScenarioValidate(t *testing.T) {
	bad := []Scenario{
		{Name: "empty"},
		{Name: "empty-device", Devices: [][]string{{}}},
		{Name: "unknown-app", Devices: [][]string{{"doom"}}},
	}
	for _, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("scenario %s validated", sc.Name)
		}
	}
}

func TestEvalAppsIsFullSuite(t *testing.T) {
	if got := len(EvalApps()); got != 12 {
		t.Fatalf("evaluation set has %d apps, want 12", got)
	}
}
