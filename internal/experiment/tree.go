package experiment

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"fedpower/internal/fed"
)

// Seed-stream identifiers for the tree-scale scenario, disjoint from the
// other experiments' streams.
const (
	idTreeDevice = 400
	idTreeInit   = 930
	idTreeCodec  = 1300
)

// TreeScaleOptions configures a fleet-scale hierarchical federation over
// localhost TCP: a tree of fed.Aggregator processes between the root server
// and hundreds of leaf devices, each leaf a lightweight synthetic trainer so
// the measurement isolates the aggregation plane (connection handling,
// codec work, exact relays) from local training cost.
type TreeScaleOptions struct {
	// Topology is the "AxBxC" fan-out spec (fed.ParseTopology): "500" is a
	// flat 500-device server, "4x5x25" a 3-level tree with 500 leaves.
	Topology string
	// Rounds is the number of federated rounds.
	Rounds int
	// NumParams is the synthetic model size; the default 687 matches the
	// paper's implied policy-network parameter count.
	NumParams int
	// Seed drives the synthetic trainers and the initial model.
	Seed int64
	// Codec is the wire codec of every hop's model broadcasts (relay frames
	// bypass it by design — see fed wire.go).
	Codec fed.Codec
	// RoundTimeout, WriteTimeout and JoinTimeout apply at the root; interior
	// aggregators run with RoundTimeout halved so a slow subtree resolves
	// locally first.
	RoundTimeout time.Duration
	WriteTimeout time.Duration
	JoinTimeout  time.Duration
	// Parallelism bounds each hop's per-round worker width (fed.Server
	// Parallelism, applied at the root and every aggregator): 0 keeps the
	// default of one I/O worker per pooled connection plus GOMAXPROCS
	// accumulation shards. Every width yields bit-identical models.
	Parallelism int
	// Verify re-runs the same clients through the flat in-process runner and
	// checks the TCP tree produced bit-identical parameters every round.
	// Lossless codecs only (dense, delta): quantized codecs are stochastic
	// per stream and carry no tree-identity guarantee.
	Verify bool
}

// DefaultTreeScaleOptions returns the EXPERIMENTS.md fleet-scale scenario: a
// 3-level tree with 500 leaf devices, verified bit-identical to the flat
// federation.
func DefaultTreeScaleOptions() TreeScaleOptions {
	return TreeScaleOptions{
		Topology:     "4x5x25",
		Rounds:       5,
		NumParams:    687,
		Seed:         1,
		RoundTimeout: 60 * time.Second,
		WriteTimeout: 30 * time.Second,
		JoinTimeout:  60 * time.Second,
		Verify:       true,
	}
}

// Validate reports the first inconsistency.
func (o TreeScaleOptions) Validate() error {
	if _, err := fed.ParseTopology(o.Topology); err != nil {
		return err
	}
	if o.Rounds <= 0 {
		return fmt.Errorf("experiment: tree scale needs positive rounds, got %d", o.Rounds)
	}
	if o.NumParams <= 0 {
		return fmt.Errorf("experiment: tree scale needs positive model size, got %d", o.NumParams)
	}
	if o.RoundTimeout <= 0 {
		return fmt.Errorf("experiment: tree scale needs a positive round timeout")
	}
	return nil
}

// TreeScaleResult is the capacity measurement of one topology.
type TreeScaleResult struct {
	// Devices, Aggregators and Depth describe the deployed topology
	// (aggregators counts interior nodes only, not the root).
	Devices     int
	Aggregators int
	Depth       int
	// RoundsCompleted equals Rounds on a successful run.
	RoundsCompleted int
	// Elapsed is the wall-clock span of the federation (join through final
	// model); RoundsPerSec is the committed-round throughput over it.
	Elapsed      time.Duration
	RoundsPerSec float64
	// RootBytesSent/Received count the root server's model-bearing traffic;
	// UplinkBytesSent/Received sum every aggregator's parent-link traffic —
	// divided by Aggregators and RoundsCompleted they give the per-hop,
	// per-round relay cost.
	RootBytesSent        int64
	RootBytesReceived    int64
	UplinkBytesSent      int64
	UplinkBytesReceived  int64
	// LeavesCommitted is the leaf population behind the last committed
	// round — Devices when no subtree dropped.
	LeavesCommitted int
	// Drops and Rejoins aggregate connection churn across every hop.
	Drops   int64
	Rejoins int64
	// FlatMatch reports the Verify outcome: true when the flat in-process
	// reference reproduced the TCP tree bit-for-bit on every round. False
	// with Verify off.
	FlatMatch bool
	// FinalChecksum is an FNV-1a hash of the final model's bit patterns, a
	// compact replayability fingerprint.
	FinalChecksum uint64
}

// treeHash is a splitmix64-style mixer: the synthetic trainers must be pure
// functions of (seed, leaf, round, param) so the TCP run and the in-process
// verification run see byte-identical client behaviour.
func treeHash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// syntheticTrainer perturbs each broadcast parameter by a deterministic
// pseudo-random step spanning ~19 binary orders of magnitude, exercising the
// exact-relay arithmetic far harder than a converged training run would.
func syntheticTrainer(seed int64, leaf int) fed.ClientFunc {
	base := treeHash(uint64(seed)*0x100000001b3 + uint64(leaf) + idTreeDevice)
	return func(round int, global []float64) ([]float64, error) {
		out := make([]float64, len(global))
		for i := range global {
			h := treeHash(base ^ treeHash(uint64(round)<<32|uint64(i)))
			step := math.Ldexp(float64(h>>40)/float64(1<<24), int(h%19)-9)
			if h>>39&1 == 1 {
				step = -step
			}
			out[i] = global[i] + step
		}
		return out, nil
	}
}

// treeInit builds the deterministic initial model for the scenario.
func treeInit(seed int64, numParams int) []float64 {
	init := make([]float64, numParams)
	base := treeHash(uint64(seed) + idTreeInit)
	for i := range init {
		h := treeHash(base + uint64(i))
		init[i] = math.Ldexp(float64(h>>40)/float64(1<<24), int(h%7)-3)
	}
	return init
}

// paramsChecksum fingerprints a parameter vector's exact bit patterns.
func paramsChecksum(params []float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, p := range params {
		bits := math.Float64bits(p)
		for i := range b {
			b[i] = byte(bits >> (8 * i))
		}
		_, _ = h.Write(b[:])
	}
	return h.Sum64()
}

// RunTreeScale deploys the topology over localhost TCP, runs the federation
// with the real wall clock, and returns its capacity measurement.
func RunTreeScale(o TreeScaleOptions) (*TreeScaleResult, error) {
	return RunTreeScaleWithClock(o, time.Now)
}

// RunTreeScaleWithClock is RunTreeScale with an explicit clock; wall-clock
// time is the measurement target (aggregation throughput), not a simulation
// input, so tests inject a fake and still exercise the full TCP fleet.
func RunTreeScaleWithClock(o TreeScaleOptions, now Clock) (*TreeScaleResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	topo, err := fed.ParseTopology(o.Topology)
	if err != nil {
		return nil, err
	}
	numLeaves := topo.LeafCount()
	codec := o.Codec
	if codec == (fed.Codec{}) {
		// The zero Codec means raw float64 in process but dense float32 on
		// the wire; pin the explicit dense codec so the Verify reference
		// emulates exactly what TCP ships.
		codec = fed.DenseCodec()
	}
	codec = codec.Seeded(subseed(o.Seed, idTreeCodec))

	clients := make([]fed.ClientFunc, numLeaves)
	for i := range clients {
		clients[i] = syntheticTrainer(o.Seed, i)
	}

	res := &TreeScaleResult{Devices: numLeaves, Depth: topo.Depth()}

	root, err := fed.NewServer("127.0.0.1:0", len(topo.Children)+topo.Leaves, o.Rounds)
	if err != nil {
		return nil, err
	}
	defer func() { _ = root.Close() }()
	root.Codec = codec
	root.RoundTimeout = o.RoundTimeout
	root.WriteTimeout = o.WriteTimeout
	root.JoinTimeout = o.JoinTimeout
	root.Parallelism = o.Parallelism

	// Deploy the tree depth-first, assigning leaves the same pre-order
	// global indices fed.RunTree uses (a node's direct leaves first, then
	// each child subtree): leaf i dials with ID i so its codec streams match
	// the in-process link seeding and the Verify comparison is exact.
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		aggs      []*fed.Aggregator
		aggErrs   []error
		leafErrs  = make([]error, numLeaves)
		nextAggID = uint32(10_000)
	)
	var deploy func(parentAddr string, node *fed.TreeNode, leafBase int) error
	deploy = func(parentAddr string, node *fed.TreeNode, leafBase int) error {
		for l := 0; l < node.Leaves; l++ {
			leaf := leafBase + l
			p := &fed.Participant{
				Addr:  parentAddr,
				ID:    uint32(leaf),
				Codec: codec,
				Retry: fed.Backoff{Attempts: 3, Base: 10 * time.Millisecond},
			}
			wg.Add(1)
			go func(leaf int, p *fed.Participant) {
				defer wg.Done()
				_, leafErrs[leaf] = p.Run(clients[leaf])
			}(leaf, p)
		}
		offset := node.Leaves
		for _, child := range node.Children {
			agg, err := fed.NewAggregator("127.0.0.1:0", len(child.Children)+child.Leaves)
			if err != nil {
				return err
			}
			nextAggID++
			agg.Parent = parentAddr
			agg.ID = nextAggID
			agg.Uplink = codec
			agg.Children.Codec = codec
			agg.Children.RoundTimeout = o.RoundTimeout / 2
			agg.Children.WriteTimeout = o.WriteTimeout
			agg.Children.JoinTimeout = o.JoinTimeout
			agg.Children.Parallelism = o.Parallelism
			agg.Retry = fed.Backoff{Attempts: 3, Base: 10 * time.Millisecond}
			mu.Lock()
			aggs = append(aggs, agg)
			mu.Unlock()
			wg.Add(1)
			go func(agg *fed.Aggregator) {
				defer wg.Done()
				if _, err := agg.Run(); err != nil {
					mu.Lock()
					aggErrs = append(aggErrs, err)
					mu.Unlock()
				}
			}(agg)
			if err := deploy(agg.Addr(), child, leafBase+offset); err != nil {
				return err
			}
			offset += child.LeafCount()
		}
		return nil
	}
	if err := deploy(root.Addr(), topo, 0); err != nil {
		return nil, err
	}
	res.Aggregators = len(aggs)

	initial := treeInit(o.Seed, o.NumParams)
	var treeRounds []uint64
	start := now()
	final, serveErr := root.Serve(append([]float64(nil), initial...), func(round int, g []float64) {
		res.RoundsCompleted = round
		treeRounds = append(treeRounds, paramsChecksum(g))
	})
	res.Elapsed = now().Sub(start)
	wg.Wait()
	if serveErr != nil {
		return nil, fmt.Errorf("experiment: tree root: %w", serveErr)
	}
	for _, err := range aggErrs {
		return nil, fmt.Errorf("experiment: aggregator: %w", err)
	}
	for i, err := range leafErrs {
		if err != nil {
			return nil, fmt.Errorf("experiment: leaf %d: %w", i, err)
		}
	}

	if s := res.Elapsed.Seconds(); s > 0 {
		res.RoundsPerSec = float64(res.RoundsCompleted) / s
	}
	res.RootBytesSent = root.BytesSent()
	res.RootBytesReceived = root.BytesReceived()
	res.LeavesCommitted = int(root.Leaves())
	res.Drops = root.Drops()
	res.Rejoins = root.Rejoins()
	for _, agg := range aggs {
		res.UplinkBytesSent += agg.UplinkBytesSent()
		res.UplinkBytesReceived += agg.UplinkBytesReceived()
		res.Drops += agg.Children.Drops()
		res.Rejoins += agg.Children.Rejoins()
	}
	res.FinalChecksum = paramsChecksum(final)

	if o.Verify {
		flat := append([]float64(nil), initial...)
		fedClients := make([]fed.Client, numLeaves)
		for i := range clients {
			fedClients[i] = clients[i]
		}
		var flatRounds []uint64
		if err := fed.RunParallelCodec(flat, fedClients, o.Rounds, 4, codec, func(round int, g []float64) {
			flatRounds = append(flatRounds, paramsChecksum(g))
		}); err != nil {
			return nil, fmt.Errorf("experiment: flat reference: %w", err)
		}
		res.FlatMatch = len(flatRounds) == len(treeRounds)
		for i := range treeRounds {
			if !res.FlatMatch || flatRounds[i] != treeRounds[i] {
				res.FlatMatch = false
				break
			}
		}
	}
	return res, nil
}
