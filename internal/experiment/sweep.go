package experiment

// Hyper-parameter sensitivity sweeps: how robust is the paper's Table I
// configuration? Each sweep point mutates one knob, trains scenario 2
// federated, and reports the average evaluation reward. A flat curve around
// the paper's value means the configuration is not finely tuned to the
// testbed — a reproducibility-relevant property.

import (
	"fmt"

	"fedpower/internal/core"
	"fedpower/internal/fed"
	"fedpower/internal/par"
	"fedpower/internal/stats"
	"fedpower/internal/workload"
)

// SweepPoint is one configuration in a sweep.
type SweepPoint struct {
	Label  string
	Mutate func(*Options)
}

// SweepResult pairs each point's label with its federated evaluation
// reward.
type SweepResult struct {
	Dimension string
	Labels    []string
	Reward    []float64
}

// Best returns the label of the highest-reward point.
func (r *SweepResult) Best() string {
	if len(r.Reward) == 0 {
		return ""
	}
	best := 0
	for i := 1; i < len(r.Reward); i++ {
		if r.Reward[i] > r.Reward[best] {
			best = i
		}
	}
	return r.Labels[best]
}

// RunSweep trains scenario 2 federated under each point and evaluates the
// final model on all twelve applications. Sweep points are mutually
// independent — each derives its own seed streams from its index — so they
// fan out on the experiment worker pool, with results reported in point
// order.
func RunSweep(o Options, dimension string, points []SweepPoint) (*SweepResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("experiment: sweep %q has no points", dimension)
	}
	sc := TableII()[1]
	out := &SweepResult{
		Dimension: dimension,
		Labels:    make([]string, len(points)),
		Reward:    make([]float64, len(points)),
	}
	err := par.ForEach(o.workers(), len(points), func(pi int) error {
		pt := points[pi]
		po := o
		pt.Mutate(&po)
		if err := po.Validate(); err != nil {
			return fmt.Errorf("experiment: sweep point %s: %w", pt.Label, err)
		}

		clients := make([]fed.Client, len(sc.Devices))
		for i, names := range sc.Devices {
			specs, err := workload.ByNames(names...)
			if err != nil {
				return err
			}
			clients[i] = newNeuralDevice(po, int64(8000+100*pi+i), specs)
		}
		global := core.NewController(po.Core, newRNG(po.Seed, idFedInit, int64(8000+pi))).ModelParams()
		globalCopy := append([]float64(nil), global...)
		if err := fed.RunParallel(globalCopy, clients, po.Rounds, po.workers(), nil); err != nil {
			return fmt.Errorf("experiment: sweep point %s: %w", pt.Label, err)
		}

		var agg stats.Running
		for appIdx, spec := range EvalApps() {
			res := evaluate(po, NewNeuralPolicy(po.Core, globalCopy), spec, false, 8500, int64(pi), int64(appIdx))
			agg.Add(res.AvgReward)
		}
		out.Labels[pi] = pt.Label
		out.Reward[pi] = agg.Mean()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LearningRateSweep sweeps Adam's learning rate around the paper's 0.005.
func LearningRateSweep(rates ...float64) []SweepPoint {
	if len(rates) == 0 {
		rates = []float64{0.0005, 0.001, 0.005, 0.02, 0.05}
	}
	pts := make([]SweepPoint, len(rates))
	for i, r := range rates {
		r := r
		pts[i] = SweepPoint{
			Label:  fmt.Sprintf("lr=%g", r),
			Mutate: func(o *Options) { o.Core.LearningRate = r },
		}
	}
	return pts
}

// TauDecaySweep sweeps the temperature decay around the paper's 0.0005.
func TauDecaySweep(decays ...float64) []SweepPoint {
	if len(decays) == 0 {
		decays = []float64{0.0001, 0.0005, 0.002, 0.01}
	}
	pts := make([]SweepPoint, len(decays))
	for i, d := range decays {
		d := d
		pts[i] = SweepPoint{
			Label:  fmt.Sprintf("tau_decay=%g", d),
			Mutate: func(o *Options) { o.Core.TauDecay = d },
		}
	}
	return pts
}

// BatchSizeSweep sweeps the mini-batch size around the paper's 128.
func BatchSizeSweep(sizes ...int) []SweepPoint {
	if len(sizes) == 0 {
		sizes = []int{32, 64, 128, 256}
	}
	pts := make([]SweepPoint, len(sizes))
	for i, s := range sizes {
		s := s
		pts[i] = SweepPoint{
			Label:  fmt.Sprintf("batch=%d", s),
			Mutate: func(o *Options) { o.Core.BatchSize = s },
		}
	}
	return pts
}

// HiddenWidthSweep sweeps the hidden-layer width around the paper's 32.
func HiddenWidthSweep(widths ...int) []SweepPoint {
	if len(widths) == 0 {
		widths = []int{8, 16, 32, 64, 128}
	}
	pts := make([]SweepPoint, len(widths))
	for i, w := range widths {
		w := w
		pts[i] = SweepPoint{
			Label:  fmt.Sprintf("width=%d", w),
			Mutate: func(o *Options) { o.Core.HiddenNeurons = w },
		}
	}
	return pts
}

// SweepByName resolves a sweep dimension name used by the CLI.
func SweepByName(dim string) ([]SweepPoint, error) {
	switch dim {
	case "lr":
		return LearningRateSweep(), nil
	case "tau":
		return TauDecaySweep(), nil
	case "batch":
		return BatchSizeSweep(), nil
	case "width":
		return HiddenWidthSweep(), nil
	default:
		return nil, fmt.Errorf("experiment: unknown sweep dimension %q (want lr, tau, batch or width)", dim)
	}
}
