package experiment

import (
	"math/rand"

	"fedpower/internal/baseline"
	"fedpower/internal/core"
	"fedpower/internal/sim"
	"fedpower/internal/stats"
	"fedpower/internal/workload"
)

// Policy is a frozen DVFS policy under evaluation: a pure function from
// observation to V/f level. During evaluation "the policies are not updated
// and the agents consistently exploit the action with the highest predicted
// reward" (§IV-A).
type Policy interface {
	Action(obs sim.Observation) int
}

// neuralPolicy evaluates a parameter snapshot of the neural controller.
type neuralPolicy struct {
	ctrl  *core.Controller
	state []float64
}

// NewNeuralPolicy wraps a model-parameter snapshot in a greedy evaluation
// policy.
func NewNeuralPolicy(p core.Params, model []float64) Policy {
	// The controller's own randomness is unused in greedy mode; weight
	// initialisation is immediately overwritten by the snapshot.
	ctrl := core.NewController(p, rand.New(rand.NewSource(0)))
	ctrl.SetModelParams(model)
	return &neuralPolicy{ctrl: ctrl}
}

func (p *neuralPolicy) Action(obs sim.Observation) int {
	p.state = core.StateVector(obs, p.state)
	return p.ctrl.GreedyAction(p.state)
}

// tabularPolicy evaluates a Profit+CollabPolicy agent greedily.
type tabularPolicy struct {
	agent *baseline.Collab
}

// NewTabularPolicy wraps a CollabPolicy agent in a greedy evaluation policy.
// The agent is consulted read-only.
func NewTabularPolicy(agent *baseline.Collab) Policy {
	return &tabularPolicy{agent: agent}
}

func (p *tabularPolicy) Action(obs sim.Observation) int {
	return p.agent.GreedyAction(p.agent.Local.P.Disc.Key(obs))
}

// EvalResult summarises one evaluation episode of a policy on one
// application.
type EvalResult struct {
	App          string
	Steps        int     // control steps taken (excluding bootstrap)
	Completed    bool    // whether the application retired all instructions
	AvgReward    float64 // mean Eq. (4) reward per step
	MeanNormFreq float64 // mean selected f/f_max
	StdNormFreq  float64 // std of selected f/f_max
	ExecTimeS    float64 // executed wall-clock time (full run when Completed)
	AvgIPS       float64 // mean instructions per second
	AvgPowerW    float64 // mean power draw
	Violations   int     // steps with measured power above P_crit
}

// evaluate runs pol on one instance of spec. With toCompletion the episode
// runs until the application retires all instructions (bounded by
// MaxExecSteps as a safety net); otherwise it stops after EvalSteps control
// steps. The episode uses its own device and noise stream derived from the
// given ids, so evaluations never perturb training state.
func evaluate(o Options, pol Policy, spec workload.Spec, toCompletion bool, ids ...int64) EvalResult {
	dev := sim.NewDevice(o.Table, o.Power, newRNG(o.Seed, ids...))
	if o.Thermal {
		dev.Thermal = sim.DefaultThermalModel()
	}
	dev.Load(workload.NewApp(spec))
	dev.SetLevel(bootstrapLevel(o.Table))
	obs := dev.Step(o.IntervalS)

	maxSteps := o.EvalSteps
	if toCompletion {
		maxSteps = o.MaxExecSteps
	}

	var reward stats.Running
	var freq stats.Running
	violations := 0
	steps := 0
	for steps < maxSteps && !dev.Done() {
		action := pol.Action(obs)
		dev.SetLevel(action)
		obs = dev.Step(o.IntervalS)
		reward.Add(o.Core.Reward.Reward(obs.NormFreq, obs.PowerW))
		freq.Add(obs.NormFreq)
		if obs.PowerW > o.Core.Reward.PCritW {
			violations++
		}
		steps++
	}

	st := dev.Stats()
	return EvalResult{
		App:          spec.Name,
		Steps:        steps,
		Completed:    dev.Done(),
		AvgReward:    reward.Mean(),
		MeanNormFreq: freq.Mean(),
		StdNormFreq:  freq.Std(),
		ExecTimeS:    st.TimeS,
		AvgIPS:       st.AvgIPS(),
		AvgPowerW:    st.AvgPowerW(),
		Violations:   violations,
	}
}
