package experiment

import (
	"testing"

	"fedpower/internal/governor"
	"fedpower/internal/sim"
)

func TestNewGovernorPolicyResetsAndDelegates(t *testing.T) {
	g := governor.NewPowerCap(15, 0.6, 0.1)
	g.Action(sim.Observation{Level: 10, PowerW: 0.9}) // dirty internal state
	pol := NewGovernorPolicy(g)                       // must reset
	// After reset the capper seeds from the next observation (3) and steps
	// up on ample headroom.
	if got := pol.Action(sim.Observation{Level: 3, PowerW: 0.2}); got != 4 {
		t.Fatalf("action %d, want 4 from a reset capper", got)
	}
}

func TestRunGovernorsComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("governor comparison skipped in -short mode")
	}
	o := smallOptions()
	o.Rounds = 40
	res, err := RunGovernors(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 5 {
		t.Fatalf("%d policies, want 5 (RL + 4 governors)", len(res.Policies))
	}
	if res.Policies[0] != "federated-rl" {
		t.Fatalf("first policy %q, want federated-rl", res.Policies[0])
	}
	if got := len(res.Apps()); got != 12 {
		t.Fatalf("evaluated %d apps, want 12", got)
	}

	rlReward, _, _, _ := res.Summary("federated-rl")
	_, perfExec, perfPower, perfViol := res.Summary("performance")
	psReward, psExec, _, psViol := res.Summary("powersave")
	_, capExec, capPower, _ := res.Summary("powercap")

	// Structural facts, not tuning-dependent margins:
	// performance violates the budget massively and runs hottest...
	if perfViol == 0 {
		t.Error("performance governor never violated the budget")
	}
	if perfPower <= 0.6 {
		t.Errorf("performance governor average power %v W, want above the budget", perfPower)
	}
	// ...powersave never violates but is by far the slowest...
	if psViol != 0 {
		t.Errorf("powersave governor violated %d times", psViol)
	}
	if psExec < 2*capExec {
		t.Errorf("powersave exec %v s should dwarf powercap %v s", psExec, capExec)
	}
	// ...the capper respects the budget on average...
	if capPower > 0.6*1.05 {
		t.Errorf("powercap average power %v W exceeds the budget", capPower)
	}
	// ...and the learned policy earns more reward than blind min/max.
	if rlReward <= psReward {
		t.Errorf("RL reward %v does not beat powersave %v", rlReward, psReward)
	}
	// performance is the fastest in wall-clock (it ignores the budget);
	// the RL policy must not be slower than powersave by construction.
	if perfExec <= 0 {
		t.Error("degenerate performance exec time")
	}
}

func TestRunHeterogeneousBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("heterogeneous training skipped in -short mode")
	}
	o := smallOptions()
	o.Rounds = 25
	budgets := []float64{0.45, 0.75}
	res, err := RunHeterogeneous(o, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hetero) != 2 || len(res.Homog) != 2 {
		t.Fatalf("result sizes hetero=%d homog=%d, want 2/2", len(res.Hetero), len(res.Homog))
	}
	for i, b := range budgets {
		if res.Hetero[i].BudgetW != b || res.Homog[i].BudgetW != b {
			t.Fatalf("budget labels mismatch at %d", i)
		}
		for _, e := range []BudgetEval{res.Hetero[i], res.Homog[i]} {
			if e.ViolationRate < 0 || e.ViolationRate > 1 {
				t.Fatalf("violation rate %v outside [0,1]", e.ViolationRate)
			}
			if e.AvgPowerW <= 0 {
				t.Fatalf("degenerate power %v", e.AvgPowerW)
			}
		}
	}
	// Structural expectation: both policies violate the tight budget more
	// often than the loose one.
	if res.Hetero[0].ViolationRate < res.Hetero[1].ViolationRate {
		t.Errorf("hetero policy violates the loose budget (%v) more than the tight one (%v)",
			res.Hetero[1].ViolationRate, res.Hetero[0].ViolationRate)
	}
}

func TestRunHeterogeneousValidation(t *testing.T) {
	o := smallOptions()
	if _, err := RunHeterogeneous(o, []float64{0.6}); err == nil {
		t.Error("single budget accepted")
	}
	if _, err := RunHeterogeneous(o, []float64{0.6, -1}); err == nil {
		t.Error("negative budget accepted")
	}
	bad := o
	bad.Rounds = 0
	if _, err := RunHeterogeneous(bad, []float64{0.5, 0.7}); err == nil {
		t.Error("invalid options accepted")
	}
}

func TestRunGovernorsValidation(t *testing.T) {
	o := smallOptions()
	o.EvalSteps = 0
	if _, err := RunGovernors(o); err == nil {
		t.Error("invalid options accepted")
	}
}
