package experiment

import (
	"fmt"
	"net"
	"sync"
	"time"

	"fedpower/internal/core"
	"fedpower/internal/faultnet"
	"fedpower/internal/fed"
	"fedpower/internal/workload"
)

// Seed-stream identifiers for the resilience scenario, disjoint from the
// training/eval streams in run.go.
const (
	idResilienceDevice = 300
	idResilienceInit   = 920
	idResilienceEval   = 1100
	idResilienceCodec  = 1200
)

// ResilienceOptions configures the federation-resilience scenario: the
// paper's training setup run across real localhost TCP, with every client
// connection subjected to seeded fault injection (internal/faultnet) while
// the server enforces deadlines and quorum aggregation.
type ResilienceOptions struct {
	// Options is the base training configuration (rounds, steps, seeds).
	Options Options
	// Scenario assigns training applications to devices; every device
	// becomes one TCP participant.
	Scenario Scenario
	// Quorum is the server's per-round commit threshold; 0 means all
	// clients (no tolerance — any fault aborts the run).
	Quorum int
	// Faults is the per-connection fault schedule applied to every client's
	// traffic. The zero value injects nothing, making the scenario a plain
	// TCP deployment of the paper's protocol.
	Faults faultnet.Config
	// FaultSeed seeds the fault schedule; client i draws from an injector
	// seeded FaultSeed+i, so schedules are independent and replayable.
	FaultSeed int64
	// RoundTimeout, WriteTimeout and JoinTimeout are the server's phase
	// deadlines (see fed.Server). RoundTimeout must be positive: an
	// unbounded collect cannot tolerate a dropped client.
	RoundTimeout time.Duration
	WriteTimeout time.Duration
	JoinTimeout  time.Duration
	// Retry is the device-side reconnect policy.
	Retry fed.Backoff
	// Codec selects the wire encoding of every connection (fed.Codec): the
	// zero value is the paper's dense float32 format; delta is bit-exact
	// with 4 B/param; quant8/quant16 are lossy with 1 or 2 B/param. The
	// byte counters in the result report the actual on-wire traffic of the
	// chosen codec. Quantized codecs are seeded from Options.Seed so runs
	// stay replayable.
	Codec fed.Codec
}

// DefaultResilienceOptions returns a small, CI-sized resilience scenario:
// the first Table II scenario over TCP with generous deadlines and a
// three-attempt reconnect policy. Fault injection is off by default; set
// Faults (and a FaultSeed) to exercise degradation.
func DefaultResilienceOptions() ResilienceOptions {
	o := DefaultOptions()
	o.Rounds = 10
	return ResilienceOptions{
		Options:      o,
		Scenario:     TableII()[0],
		Quorum:       1,
		RoundTimeout: 30 * time.Second,
		WriteTimeout: 30 * time.Second,
		JoinTimeout:  30 * time.Second,
	}
}

// Validate reports the first inconsistency.
func (o ResilienceOptions) Validate() error {
	if err := o.Options.Validate(); err != nil {
		return err
	}
	if err := o.Scenario.Validate(); err != nil {
		return err
	}
	if err := o.Faults.Validate(); err != nil {
		return err
	}
	if o.Quorum < 0 || o.Quorum > len(o.Scenario.Devices) {
		return fmt.Errorf("experiment: quorum %d out of [0,%d]", o.Quorum, len(o.Scenario.Devices))
	}
	if o.RoundTimeout <= 0 {
		return fmt.Errorf("experiment: resilience needs a positive round timeout")
	}
	return nil
}

// ClientOutcome is one device's view of a resilience run.
type ClientOutcome struct {
	ID            uint32
	Reconnects    int
	LastRound     int
	BytesSent     int64
	BytesReceived int64
	// Err is non-empty when the device gave up (retry budget exhausted or a
	// local training failure) instead of receiving the final model.
	Err string
}

// ResilienceResult reports how far the federation got under faults.
type ResilienceResult struct {
	// RoundsCompleted counts committed aggregations; equals Options.Rounds
	// on a full run.
	RoundsCompleted int
	// Drops and Rejoins are the server's connection-churn counters.
	Drops   int64
	Rejoins int64
	// ServerBytesSent/Received count the server side's model-bearing
	// traffic, the paper's §IV-C communication metric.
	ServerBytesSent     int64
	ServerBytesReceived int64
	// Clients holds per-device outcomes in device order.
	Clients []ClientOutcome
	// FaultEvents counts injected faults across all connections.
	FaultEvents int
	// Err is non-empty when the run aborted (quorum collapse); the result
	// then covers the committed prefix of rounds.
	Err string
	// FinalEvals is the greedy evaluation of the last committed global
	// model on every evaluation application; FinalReward is their mean —
	// the scenario's accuracy figure.
	FinalEvals  []EvalResult
	FinalReward float64
}

// RunResilience trains the scenario's federation over localhost TCP with
// fault injection on every client link, then greedily evaluates the last
// committed global model on the full evaluation application set. A quorum
// collapse is reported in the result (Err plus the committed prefix), not
// as a Go error: degraded completion is an outcome the scenario exists to
// measure. The returned error covers setup problems only.
func RunResilience(o ResilienceOptions) (*ResilienceResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	numDevices := len(o.Scenario.Devices)

	srv, err := fed.NewServer("127.0.0.1:0", numDevices, o.Options.Rounds)
	if err != nil {
		return nil, err
	}
	srv.Quorum = o.Quorum
	srv.RoundTimeout = o.RoundTimeout
	srv.WriteTimeout = o.WriteTimeout
	srv.JoinTimeout = o.JoinTimeout
	codec := o.Codec.Seeded(subseed(o.Options.Seed, idResilienceCodec))
	srv.Codec = codec

	// One participant per device, each behind its own seeded injector so
	// fault schedules are independent of connection interleaving.
	injectors := make([]*faultnet.Injector, numDevices)
	parts := make([]*fed.Participant, numDevices)
	clients := make([]fed.Client, numDevices)
	for i, names := range o.Scenario.Devices {
		specs, err := workload.ByNames(names...)
		if err != nil {
			_ = srv.Close()
			return nil, err
		}
		clients[i] = newNeuralDevice(o.Options, int64(idResilienceDevice+i), specs)
		injectors[i] = faultnet.NewInjector(o.FaultSeed+int64(i), o.Faults)
		inj := injectors[i]
		addr := srv.Addr()
		parts[i] = &fed.Participant{
			Addr:  addr,
			ID:    uint32(i + 1),
			Retry: o.Retry,
			Codec: codec,
			Dialer: func(addr string) (net.Conn, error) {
				c, err := net.Dial("tcp", addr)
				if err != nil {
					return nil, err
				}
				return inj.Wrap(c), nil
			},
		}
	}

	clientErrs := make([]error, numDevices)
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, clientErrs[i] = parts[i].Run(clients[i])
		}(i)
	}
	// Guard against a wedged server once every device has exited (all gave
	// up under an unlucky schedule): closing the listener aborts Serve. On
	// the normal path Serve has already returned and the close is a no-op.
	guardDone := make(chan struct{})
	go func() {
		defer close(guardDone)
		wg.Wait()
		_ = srv.Close()
	}()

	initial := core.NewController(o.Options.Core, newRNG(o.Options.Seed, idResilienceInit)).ModelParams()
	res := &ResilienceResult{Clients: make([]ClientOutcome, numDevices)}
	lastGlobal := append([]float64(nil), initial...)
	_, serveErr := srv.Serve(initial, func(round int, g []float64) {
		res.RoundsCompleted = round
		copy(lastGlobal, g)
	})
	<-guardDone

	if serveErr != nil {
		res.Err = serveErr.Error()
	}
	res.Drops = srv.Drops()
	res.Rejoins = srv.Rejoins()
	res.ServerBytesSent = srv.BytesSent()
	res.ServerBytesReceived = srv.BytesReceived()
	for i, p := range parts {
		out := ClientOutcome{
			ID:            p.ID,
			Reconnects:    p.Reconnects(),
			LastRound:     p.LastRound(),
			BytesSent:     p.BytesSent(),
			BytesReceived: p.BytesReceived(),
		}
		if clientErrs[i] != nil {
			out.Err = clientErrs[i].Error()
		}
		res.Clients[i] = out
		res.FaultEvents += len(injectors[i].Events())
	}

	// Accuracy of the surviving model: greedy evaluation on every
	// application, as in §IV-A, against the last committed aggregate.
	pol := NewNeuralPolicy(o.Options.Core, lastGlobal)
	sum := 0.0
	for a, spec := range EvalApps() {
		ev := evaluate(o.Options, pol, spec, false, idResilienceEval, int64(a))
		res.FinalEvals = append(res.FinalEvals, ev)
		sum += ev.AvgReward
	}
	res.FinalReward = sum / float64(len(res.FinalEvals))
	return res, nil
}
