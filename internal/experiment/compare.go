package experiment

import (
	"fmt"
	"sort"

	"fedpower/internal/baseline"
	"fedpower/internal/core"
	"fedpower/internal/fed"
	"fedpower/internal/par"
	"fedpower/internal/stats"
	"fedpower/internal/workload"
)

// AppMetrics accumulates run-to-completion evaluation metrics for one
// application under one technique, across evaluation points (and devices,
// for the baseline whose local tables differ per device).
type AppMetrics struct {
	Exec  stats.Running // execution time [s]
	IPS   stats.Running // instructions per second
	Power stats.Running // average power [W]
}

// ComparisonResult holds the per-application metrics of our federated
// neural controller ("Ours") and the Profit+CollabPolicy baseline on one
// scenario.
type ComparisonResult struct {
	Scenario Scenario
	Ours     map[string]*AppMetrics
	Base     map[string]*AppMetrics
}

// Apps returns the evaluated application names in deterministic order.
func (c *ComparisonResult) Apps() []string {
	names := make([]string, 0, len(c.Ours))
	for n := range c.Ours {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TechAverages aggregates one technique's per-application metrics into the
// three Table III rows: mean execution time, mean IPS and mean power.
func TechAverages(m map[string]*AppMetrics) (execS, ips, powerW float64) {
	var e, i, p stats.Running
	for _, am := range m {
		e.Add(am.Exec.Mean())
		i.Add(am.IPS.Mean())
		p.Add(am.Power.Mean())
	}
	return e.Mean(), i.Mean(), p.Mean()
}

// RunComparison trains both techniques on one scenario and evaluates every
// evaluation application to completion at regular round intervals
// (ExecEvalEvery), averaging execution time, IPS and power over the
// evaluation points — the measurement protocol behind Table III and Fig. 5.
func RunComparison(o Options, scIndex int, sc Scenario) (*ComparisonResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	result := &ComparisonResult{
		Scenario: sc,
		Ours:     make(map[string]*AppMetrics),
		Base:     make(map[string]*AppMetrics),
	}
	evalSet := EvalApps()
	for _, spec := range evalSet {
		result.Ours[spec.Name] = &AppMetrics{}
		result.Base[spec.Name] = &AppMetrics{}
	}

	record := func(m map[string]*AppMetrics, app string, res EvalResult) {
		am := m[app]
		am.Exec.Add(res.ExecTimeS)
		am.IPS.Add(res.AvgIPS)
		am.Power.Add(res.AvgPowerW)
	}

	// Ours and the baseline share no state — each technique records into
	// its own metrics map from its own seed streams — so the two train as
	// independent units on the experiment worker pool.
	runOurs := func() error {
		// Federated neural controller.
		fedClients := make([]fed.Client, len(sc.Devices))
		for i, names := range sc.Devices {
			specs, err := workload.ByNames(names...)
			if err != nil {
				return err
			}
			fedClients[i] = newNeuralDevice(o, int64(idFedDevice+i+10*scIndex), specs)
		}
		global := core.NewController(o.Core, newRNG(o.Seed, idFedInit, int64(scIndex))).ModelParams()
		globalCopy := append([]float64(nil), global...)
		err := fed.RunParallel(globalCopy, fedClients, o.Rounds, o.workers(), func(round int, g []float64) {
			if round%o.ExecEvalEvery != 0 {
				return
			}
			pol := NewNeuralPolicy(o.Core, g)
			for appIdx, spec := range evalSet {
				res := evaluate(o, pol, spec, true, idEval+1, int64(scIndex), int64(round), int64(appIdx))
				record(result.Ours, spec.Name, res)
			}
		})
		if err != nil {
			return fmt.Errorf("experiment: comparison federated training scenario %s: %w", sc.Name, err)
		}
		return nil
	}

	runBase := func() error {
		// Baseline: Profit + CollabPolicy.
		devices := make([]*TabularDevice, len(sc.Devices))
		for i, names := range sc.Devices {
			specs, err := workload.ByNames(names...)
			if err != nil {
				return err
			}
			devices[i] = newTabularDevice(o, int64(idFedDevice+i+10*scIndex), specs)
		}
		for round := 1; round <= o.Rounds; round++ {
			// One round of local optimisation on every device, then the
			// CollabPolicy exchange: summaries up, merged global policy down.
			summaries := make([]baseline.LocalSummary, len(devices))
			for i, d := range devices {
				d.TrainRound()
				summaries[i] = d.Agent.Summary()
			}
			globalPolicy := baseline.Aggregate(summaries)
			for _, d := range devices {
				d.Agent.SetGlobal(globalPolicy)
			}

			if round%o.ExecEvalEvery != 0 {
				continue
			}
			// Evaluate each device's agent (local tables differ across devices
			// even though the global policy is shared) and average.
			for devIdx, d := range devices {
				pol := NewTabularPolicy(d.Agent)
				for appIdx, spec := range evalSet {
					res := evaluate(o, pol, spec, true, idEval+2, int64(scIndex), int64(round), int64(appIdx), int64(devIdx))
					record(result.Base, spec.Name, res)
				}
			}
		}
		return nil
	}

	err := par.ForEach(o.workers(), 2, func(unit int) error {
		if unit == 0 {
			return runOurs()
		}
		return runBase()
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}

// Table3Result aggregates the comparison over all Table II scenarios into
// the three rows of Table III.
type Table3Result struct {
	PerScenario []*ComparisonResult

	OursExecS, BaseExecS   float64
	OursIPS, BaseIPS       float64
	OursPowerW, BasePowerW float64
}

// ExecDeltaPct returns the execution-time change of ours vs the baseline in
// percent (negative = faster, the paper reports ↓ 20 %).
func (t *Table3Result) ExecDeltaPct() float64 {
	return stats.PercentDelta(t.OursExecS, t.BaseExecS)
}

// IPSDeltaPct returns the IPS change of ours vs the baseline in percent
// (positive = higher throughput, the paper reports ↑ 17 %).
func (t *Table3Result) IPSDeltaPct() float64 {
	return stats.PercentDelta(t.OursIPS, t.BaseIPS)
}

// PowerDeltaPct returns the power change of ours vs the baseline in percent
// (the paper reports ↑ 9 %, both under the constraint).
func (t *Table3Result) PowerDeltaPct() float64 {
	return stats.PercentDelta(t.OursPowerW, t.BasePowerW)
}

// RunTable3 runs the comparison on all three Table II scenarios and
// averages, reproducing Table III. Scenarios fan out on the experiment
// worker pool; the averages consume the per-scenario results in stable
// Table II order.
func RunTable3(o Options) (*Table3Result, error) {
	scenarios := TableII()
	slots := make([]*ComparisonResult, len(scenarios))
	err := par.ForEach(o.workers(), len(scenarios), func(i int) error {
		res, err := RunComparison(o, i, scenarios[i])
		if err != nil {
			return err
		}
		slots[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &Table3Result{}
	var oe, oi, op, be, bi, bp stats.Running
	for _, res := range slots {
		out.PerScenario = append(out.PerScenario, res)
		e, ips, p := TechAverages(res.Ours)
		oe.Add(e)
		oi.Add(ips)
		op.Add(p)
		e, ips, p = TechAverages(res.Base)
		be.Add(e)
		bi.Add(ips)
		bp.Add(p)
	}
	out.OursExecS, out.OursIPS, out.OursPowerW = oe.Mean(), oi.Mean(), op.Mean()
	out.BaseExecS, out.BaseIPS, out.BasePowerW = be.Mean(), bi.Mean(), bp.Mean()
	return out, nil
}

// Fig5Result holds the per-application comparison of the split-half
// scenario (six training applications per device) — the data behind Fig. 5.
type Fig5Result struct {
	Comparison *ComparisonResult
}

// RunFig5 runs the split-half comparison.
func RunFig5(o Options) (*Fig5Result, error) {
	res, err := RunComparison(o, 7, SplitHalf())
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Comparison: res}, nil
}

// MeanExecSpeedupPct returns the average and maximum per-application
// execution-time reduction of ours vs the baseline in percent (the paper
// reports 22 % average, 53 % maximum).
func (f *Fig5Result) MeanExecSpeedupPct() (avg, max float64) {
	var agg stats.Running
	for _, app := range f.Comparison.Apps() {
		base := f.Comparison.Base[app].Exec.Mean()
		ours := f.Comparison.Ours[app].Exec.Mean()
		if base <= 0 {
			continue
		}
		red := (base - ours) / base * 100
		agg.Add(red)
		if red > max {
			max = red
		}
	}
	return agg.Mean(), max
}

// MeanIPSGainPct returns the average and maximum per-application IPS
// increase of ours vs the baseline in percent (paper: 29 % / 95 %).
func (f *Fig5Result) MeanIPSGainPct() (avg, max float64) {
	var agg stats.Running
	for _, app := range f.Comparison.Apps() {
		base := f.Comparison.Base[app].IPS.Mean()
		ours := f.Comparison.Ours[app].IPS.Mean()
		if base <= 0 {
			continue
		}
		gain := (ours - base) / base * 100
		agg.Add(gain)
		if gain > max {
			max = gain
		}
	}
	return agg.Mean(), max
}
