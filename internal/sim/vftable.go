// Package sim implements the edge-device substrate the paper runs on: a
// DVFS-capable microprocessor model with the NVIDIA Jetson Nano's 15
// voltage/frequency levels, an analytic power model, a memory-latency-aware
// performance model, performance counters (IPC, LLC miss rate, MPKI), and
// Gaussian measurement noise.
//
// The real evaluation platform is two Jetson Nano boards (4× Cortex-A57,
// shared clock, 102–1479 MHz). This package substitutes that hardware with a
// model that exposes the identical observable surface to the power
// controller — frequency, power, and counter readings per control interval —
// and, critically, reproduces the property the paper's experiments rest on:
// the power constraint P_crit intersects the frequency range at an
// application-dependent level, so the optimal V/f level is workload-specific
// and must be learned.
package sim

import "fmt"

// VFLevel is one discrete voltage/frequency operating point.
type VFLevel struct {
	FreqMHz float64 // core clock in MHz
	VoltV   float64 // rail voltage in volts
}

// VFTable is an ordered set of V/f levels, lowest frequency first.
type VFTable struct {
	levels []VFLevel
}

// JetsonNanoTable returns the 15 CPU DVFS operating points of the NVIDIA
// Jetson Nano (102 MHz – 1479 MHz), the platform used in the paper's
// evaluation. Voltages follow the board's roughly linear V/f relationship
// between 0.80 V at the lowest and 1.23 V at the highest level.
func JetsonNanoTable() *VFTable {
	freqs := []float64{
		102.0, 204.0, 306.0, 403.2, 518.4,
		614.4, 710.4, 825.6, 921.6, 1036.8,
		1132.8, 1224.0, 1326.0, 1428.0, 1479.0,
	}
	const vMin, vMax = 0.80, 1.23
	fMax := freqs[len(freqs)-1]
	levels := make([]VFLevel, len(freqs))
	for i, f := range freqs {
		levels[i] = VFLevel{
			FreqMHz: f,
			VoltV:   vMin + (vMax-vMin)*(f/fMax),
		}
	}
	return &VFTable{levels: levels}
}

// NewVFTable builds a table from explicit levels, which must be non-empty
// and sorted by strictly increasing frequency with positive voltages.
func NewVFTable(levels []VFLevel) (*VFTable, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("sim: empty V/f table")
	}
	for i, l := range levels {
		if l.FreqMHz <= 0 || l.VoltV <= 0 {
			return nil, fmt.Errorf("sim: level %d has non-positive frequency or voltage", i)
		}
		if i > 0 && levels[i-1].FreqMHz >= l.FreqMHz {
			return nil, fmt.Errorf("sim: level %d frequency %.1f MHz not above level %d", i, l.FreqMHz, i-1)
		}
	}
	return &VFTable{levels: append([]VFLevel(nil), levels...)}, nil
}

// Len returns the number of levels K.
func (t *VFTable) Len() int { return len(t.levels) }

// Level returns the k-th operating point (0-based, lowest frequency first).
func (t *VFTable) Level(k int) VFLevel {
	if k < 0 || k >= len(t.levels) {
		panic(fmt.Sprintf("sim: V/f level %d out of range [0,%d)", k, len(t.levels)))
	}
	return t.levels[k]
}

// MaxFreqMHz returns f_max, the highest frequency in the table.
func (t *VFTable) MaxFreqMHz() float64 { return t.levels[len(t.levels)-1].FreqMHz }

// MinFreqMHz returns the lowest frequency in the table.
func (t *VFTable) MinFreqMHz() float64 { return t.levels[0].FreqMHz }

// NormFreq returns Level(k).FreqMHz / MaxFreqMHz, the paper's performance
// surrogate f/f_max for level k.
func (t *VFTable) NormFreq(k int) float64 { return t.Level(k).FreqMHz / t.MaxFreqMHz() }
