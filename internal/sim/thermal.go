package sim

import "fmt"

// ThermalModel is an optional lumped-RC die-temperature model with
// leakage-temperature feedback — the second-order effect the paper's
// §III-A footnote explicitly neglects ("assuming that we neglect the
// impact of power consumption on temperature and temperature on leakage
// power"). It is off by default; attaching it to a Device turns the
// contextual bandit's stationarity assumption into an approximation, which
// the thermal ablation benchmark quantifies.
//
// Dynamics (explicit Euler over the control interval):
//
//	T' = T + dt · (P·R_th − (T − T_amb)) / (R_th·C_th)
//
// and leakage scales with temperature as
//
//	P_static(V, T) = P_static(V) · (1 + k_leak·(T − T_ref))
type ThermalModel struct {
	// RThermal is the junction-to-ambient thermal resistance in K/W.
	RThermal float64
	// CThermal is the lumped thermal capacitance in J/K.
	CThermal float64
	// TAmbientC is the ambient temperature in °C.
	TAmbientC float64
	// TRefC is the temperature at which the leakage model is calibrated.
	TRefC float64
	// LeakTempCoeff is the relative leakage increase per kelvin above
	// TRefC (typical sub-threshold leakage sensitivities are 1–2 %/K).
	LeakTempCoeff float64

	tempC   float64
	started bool
}

// DefaultThermalModel returns a Jetson-Nano-class passive-heatsink
// calibration: ~25 K/W to ambient, a couple of joules per kelvin of
// heatsink mass, 1.2 %/K leakage sensitivity.
func DefaultThermalModel() *ThermalModel {
	return &ThermalModel{
		RThermal:      25,
		CThermal:      2.0,
		TAmbientC:     25,
		TRefC:         40,
		LeakTempCoeff: 0.012,
	}
}

// Validate reports the first inconsistent parameter.
func (m *ThermalModel) Validate() error {
	switch {
	case m.RThermal <= 0:
		return fmt.Errorf("sim: thermal resistance %v must be positive", m.RThermal)
	case m.CThermal <= 0:
		return fmt.Errorf("sim: thermal capacitance %v must be positive", m.CThermal)
	case m.LeakTempCoeff < 0:
		return fmt.Errorf("sim: leakage coefficient %v must be non-negative", m.LeakTempCoeff)
	}
	return nil
}

// TempC returns the current die temperature, or ambient before the first
// step.
func (m *ThermalModel) TempC() float64 {
	if !m.started {
		return m.TAmbientC
	}
	return m.tempC
}

// Reset returns the die to ambient temperature.
func (m *ThermalModel) Reset() {
	m.tempC = 0
	m.started = false
}

// LeakageScale returns the multiplicative factor applied to static power
// at the current temperature.
func (m *ThermalModel) LeakageScale() float64 {
	scale := 1 + m.LeakTempCoeff*(m.TempC()-m.TRefC)
	if scale < 0 {
		return 0
	}
	return scale
}

// Advance integrates the thermal state over dt seconds at the given total
// power draw and returns the new die temperature.
func (m *ThermalModel) Advance(powerW, dt float64) float64 {
	if !m.started {
		m.tempC = m.TAmbientC
		m.started = true
	}
	tau := m.RThermal * m.CThermal
	// Sub-stepping keeps explicit Euler stable even when dt approaches the
	// thermal time constant.
	steps := int(dt/(tau/10)) + 1
	h := dt / float64(steps)
	for i := 0; i < steps; i++ {
		m.tempC += h * (powerW*m.RThermal - (m.tempC - m.TAmbientC)) / tau
	}
	return m.tempC
}

// SteadyStateC returns the equilibrium die temperature for a constant
// power draw: T_amb + P·R_th.
func (m *ThermalModel) SteadyStateC(powerW float64) float64 {
	return m.TAmbientC + powerW*m.RThermal
}
