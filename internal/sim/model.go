package sim

// Demand describes the instantaneous micro-architectural characteristics of
// the running workload, as seen by the processor model. Workload
// implementations (package workload) return a Demand for their current
// execution phase; the processor model turns it into cycles, power and
// counter readings at the active V/f level.
type Demand struct {
	// BaseCPI is the cycles-per-instruction of the instruction stream with a
	// perfect last-level cache, capturing instruction-level parallelism and
	// functional-unit pressure (lower = more ILP).
	BaseCPI float64
	// MPKI is the number of last-level-cache misses per kilo-instruction.
	MPKI float64
	// APKI is the number of last-level-cache accesses per kilo-instruction;
	// together with MPKI it determines the observable miss rate MPKI/APKI.
	APKI float64
	// MemLatencyNs is the DRAM access latency in nanoseconds. Because the
	// latency is fixed in wall-clock time, its cost in core cycles grows with
	// frequency — the mechanism that makes memory-bound code insensitive to
	// DVFS.
	MemLatencyNs float64
	// Activity scales the dynamic-power contribution of retired
	// instructions (switching activity per instruction); 1.0 is a typical
	// integer workload, floating-point-heavy code runs higher.
	Activity float64
}

// Workload is the contract between the processor model and an application:
// the processor asks for the current Demand, executes instructions against
// it, and reports progress back via Advance.
type Workload interface {
	// Name identifies the application (e.g. "ocean").
	Name() string
	// Demand returns the characteristics of the current execution phase.
	Demand() Demand
	// Advance accounts for instr retired instructions, possibly crossing
	// phase boundaries.
	Advance(instr float64)
	// Remaining returns the number of instructions left; <= 0 means done.
	Remaining() float64
	// Reset rewinds the workload to its beginning.
	Reset()
}

// PowerModel holds the calibration constants of the analytic power model
//
//	P(V, f, ipc, act) = Pstatic(V) + (CeffBase + CeffIPC·act·ipc) · V² · f[GHz]
//
// The dynamic term is the classic C_eff·V²·f with an effective switching
// capacitance that grows with achieved IPC: a core retiring more
// instructions per cycle toggles more functional units. The static term
// models leakage as affine in voltage (temperature feedback is neglected, as
// in the paper's §III-A footnote).
type PowerModel struct {
	StaticBaseW  float64 // leakage at the lowest rail voltage
	StaticSlopeW float64 // additional leakage per volt above VRef
	VRefV        float64 // voltage at which leakage equals StaticBaseW
	CeffBase     float64 // IPC-independent switching capacitance term [W/(V²·GHz)]
	CeffIPC      float64 // per-IPC switching capacitance term [W/(V²·GHz)]
}

// DefaultPowerModel returns the calibration used throughout the
// reproduction. The constants are chosen so that, against the Jetson Nano
// V/f table, a compute-bound application (IPC ≈ 1.4) crosses the paper's
// P_crit = 0.6 W constraint near 920 MHz (level 9 of 15) while a
// memory-bound application (IPC ≈ 0.35 at f_max) stays below 0.6 W even at
// 1479 MHz — the application-dependent optimum the experiments exercise.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		StaticBaseW:  0.10,
		StaticSlopeW: 0.19,
		VRefV:        0.80,
		CeffBase:     0.080,
		CeffIPC:      0.230,
	}
}

// Static returns the leakage power at rail voltage v.
func (m PowerModel) Static(v float64) float64 {
	return m.StaticBaseW + m.StaticSlopeW*(v-m.VRefV)
}

// Dynamic returns the switching power at rail voltage v, frequency f (MHz),
// achieved ipc, and workload activity factor act.
func (m PowerModel) Dynamic(v, freqMHz, ipc, act float64) float64 {
	fGHz := freqMHz / 1000
	return (m.CeffBase + m.CeffIPC*act*ipc) * v * v * fGHz
}

// Total returns static plus dynamic power.
func (m PowerModel) Total(v, freqMHz, ipc, act float64) float64 {
	return m.Static(v) + m.Dynamic(v, freqMHz, ipc, act)
}

// CPI returns the cycles-per-instruction of demand d at frequency f (MHz):
// the compute component plus the miss penalty, whose cycle cost scales with
// frequency because DRAM latency is constant in wall-clock time.
func CPI(d Demand, freqMHz float64) float64 {
	fGHz := freqMHz / 1000
	return d.BaseCPI + d.MPKI/1000*d.MemLatencyNs*fGHz
}

// IPC returns instructions per cycle for demand d at frequency f (MHz).
func IPC(d Demand, freqMHz float64) float64 { return 1 / CPI(d, freqMHz) }

// IPS returns instructions per second for demand d at frequency f (MHz).
func IPS(d Demand, freqMHz float64) float64 {
	return IPC(d, freqMHz) * freqMHz * 1e6
}
