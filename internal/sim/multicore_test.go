package sim

import (
	"math"
	"math/rand"
	"testing"
)

func newTestCluster(t *testing.T, cores int) *MultiCoreDevice {
	t.Helper()
	d := NewMultiCoreDevice(JetsonNanoTable(), DefaultPowerModel(), cores, rand.New(rand.NewSource(1)))
	d.PowerNoiseW, d.IPCNoiseRel = 0, 0
	return d
}

func TestNewMultiCoreDeviceValidation(t *testing.T) {
	cases := []func(){
		func() { NewMultiCoreDevice(nil, DefaultPowerModel(), 4, rand.New(rand.NewSource(1))) },
		func() { NewMultiCoreDevice(JetsonNanoTable(), DefaultPowerModel(), 0, rand.New(rand.NewSource(1))) },
		func() { NewMultiCoreDevice(JetsonNanoTable(), DefaultPowerModel(), 4, nil) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMultiCoreIdleCluster(t *testing.T) {
	d := newTestCluster(t, 4)
	if !d.AllDone() {
		t.Fatal("fresh cluster should be all-done")
	}
	d.SetLevel(7)
	obs := d.Step(0.5)
	// Idle cluster: static rail plus four residual-activity cores.
	lv := JetsonNanoTable().Level(7)
	want := DefaultPowerModel().Static(lv.VoltV) + 4*DefaultPowerModel().Dynamic(lv.VoltV, lv.FreqMHz, 0, 0.05)
	if math.Abs(obs.PowerW-want) > 1e-12 {
		t.Fatalf("idle power %v, want %v", obs.PowerW, want)
	}
	if obs.IPC != 0 || obs.Instr != 0 {
		t.Fatalf("idle cluster retired work: %+v", obs)
	}
}

func TestMultiCorePowerSumsAcrossCores(t *testing.T) {
	dem := Demand{BaseCPI: 0.7, MPKI: 5, APKI: 150, MemLatencyNs: 80, Activity: 1.0}
	one := newTestCluster(t, 4)
	one.SetLevel(8)
	one.LoadCore(0, newFixedWorkload(dem, 1e15))
	p1 := one.Step(0.5).TruePower

	four := newTestCluster(t, 4)
	four.SetLevel(8)
	for i := 0; i < 4; i++ {
		four.LoadCore(i, newFixedWorkload(dem, 1e15))
	}
	p4 := four.Step(0.5).TruePower

	// Three more active cores add three (dynamic - idle) increments; the
	// static rail is shared and must NOT be multiplied.
	lv := JetsonNanoTable().Level(8)
	ipc := IPC(dem, lv.FreqMHz)
	pm := DefaultPowerModel()
	delta := pm.Dynamic(lv.VoltV, lv.FreqMHz, ipc, dem.Activity) - pm.Dynamic(lv.VoltV, lv.FreqMHz, 0, 0.05)
	if math.Abs((p4-p1)-3*delta) > 1e-9 {
		t.Fatalf("4-core power %v vs 1-core %v: delta %v, want %v", p4, p1, p4-p1, 3*delta)
	}
}

func TestMultiCoreAggregateCounters(t *testing.T) {
	d := newTestCluster(t, 2)
	d.SetLevel(10)
	cmp := Demand{BaseCPI: 0.65, MPKI: 1.5, APKI: 100, MemLatencyNs: 80, Activity: 1.1}
	mem := Demand{BaseCPI: 0.80, MPKI: 22, APKI: 280, MemLatencyNs: 80, Activity: 0.85}
	d.LoadCore(0, newFixedWorkload(cmp, 1e15))
	d.LoadCore(1, newFixedWorkload(mem, 1e15))
	obs := d.Step(0.5)

	lv := JetsonNanoTable().Level(10)
	wantMean := (IPC(cmp, lv.FreqMHz) + IPC(mem, lv.FreqMHz)) / 2
	if math.Abs(obs.IPC-wantMean) > 1e-12 {
		t.Fatalf("mean IPC %v, want %v", obs.IPC, wantMean)
	}
	// The compute core retires far more instructions, so the weighted MPKI
	// sits well below the plain average of 1.5 and 22.
	if obs.MPKI >= (1.5+22)/2 {
		t.Fatalf("instruction-weighted MPKI %v not below plain mean", obs.MPKI)
	}
	if obs.MPKI <= 1.5 {
		t.Fatalf("weighted MPKI %v should exceed the compute core's 1.5", obs.MPKI)
	}
	if obs.Instr <= 0 {
		t.Fatal("no instructions retired")
	}
	if d.CoreInstr(0) <= d.CoreInstr(1) {
		t.Fatal("compute core should retire more instructions than the memory core")
	}
}

func TestMultiCoreCompletionStopsContribution(t *testing.T) {
	d := newTestCluster(t, 2)
	d.SetLevel(14)
	dem := Demand{BaseCPI: 1, APKI: 100, Activity: 1}
	lv := JetsonNanoTable().Level(14)
	ips := IPC(dem, lv.FreqMHz) * lv.FreqMHz * 1e6
	d.LoadCore(0, newFixedWorkload(dem, ips*0.1)) // finishes in 0.1 s
	d.LoadCore(1, newFixedWorkload(dem, 1e15))
	d.Step(0.5)
	if !d.CoreDone(0) {
		t.Fatal("core 0 should have completed")
	}
	if d.CoreDone(1) || d.AllDone() {
		t.Fatal("core 1 should still be running")
	}
	// Next interval: only core 1 contributes instructions.
	obs := d.Step(0.5)
	want := IPC(dem, lv.FreqMHz) * lv.FreqMHz * 1e6 * 0.5
	if math.Abs(obs.Instr-want) > 1 {
		t.Fatalf("instructions %v, want single-core %v", obs.Instr, want)
	}
}

func TestMultiCoreLoadCoreBounds(t *testing.T) {
	d := newTestCluster(t, 2)
	for _, i := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LoadCore(%d) did not panic", i)
				}
			}()
			d.LoadCore(i, nil)
		}()
	}
}

func TestMultiCoreStatsAccumulate(t *testing.T) {
	d := newTestCluster(t, 2)
	d.SetLevel(5)
	dem := Demand{BaseCPI: 1, APKI: 100, Activity: 1}
	d.LoadCore(0, newFixedWorkload(dem, 1e15))
	for i := 0; i < 4; i++ {
		d.Step(0.5)
	}
	st := d.Stats()
	if math.Abs(st.TimeS-2) > 1e-9 || st.Instr <= 0 || st.EnergyJ <= 0 {
		t.Fatalf("stats %+v", st)
	}
	d.ResetStats()
	if st := d.Stats(); st.TimeS != 0 {
		t.Fatal("stats not reset")
	}
}

func TestMultiCoreBudgetCrossoverScalesWithOccupancy(t *testing.T) {
	// With four compute-bound cores active, the cluster crosses a 1.8 W
	// budget at a lower shared level than a single active core would — the
	// property the multi-core experiment exercises.
	dem := Demand{BaseCPI: 0.65, MPKI: 1.5, APKI: 100, MemLatencyNs: 80, Activity: 1.1}
	cross := func(active int) int {
		best := 0
		for k := 0; k < JetsonNanoTable().Len(); k++ {
			d := newTestCluster(t, 4)
			d.SetLevel(k)
			for i := 0; i < active; i++ {
				d.LoadCore(i, newFixedWorkload(dem, 1e15))
			}
			if d.Step(0.5).TruePower <= 1.8 {
				best = k
			}
		}
		return best
	}
	one, four := cross(1), cross(4)
	if four >= one {
		t.Fatalf("4-core crossover level %d not below 1-core %d", four, one)
	}
}
