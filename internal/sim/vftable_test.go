package sim

import (
	"math"
	"testing"
)

func TestJetsonNanoTableShape(t *testing.T) {
	table := JetsonNanoTable()
	if table.Len() != 15 {
		t.Fatalf("Jetson Nano table has %d levels, want 15", table.Len())
	}
	if table.MinFreqMHz() != 102.0 {
		t.Errorf("min frequency %v, want 102 MHz", table.MinFreqMHz())
	}
	if table.MaxFreqMHz() != 1479.0 {
		t.Errorf("max frequency %v, want 1479 MHz", table.MaxFreqMHz())
	}
}

func TestJetsonNanoTableMonotone(t *testing.T) {
	table := JetsonNanoTable()
	for k := 1; k < table.Len(); k++ {
		prev, cur := table.Level(k-1), table.Level(k)
		if cur.FreqMHz <= prev.FreqMHz {
			t.Errorf("frequency not increasing at level %d", k)
		}
		if cur.VoltV <= prev.VoltV {
			t.Errorf("voltage not increasing at level %d", k)
		}
	}
}

func TestJetsonNanoVoltageRange(t *testing.T) {
	table := JetsonNanoTable()
	lo := table.Level(0).VoltV
	hi := table.Level(table.Len() - 1).VoltV
	if hi != 1.23 {
		t.Errorf("top voltage %v, want 1.23 V", hi)
	}
	// The linear V/f map gives 0.80 + 0.43·(102/1479) at the bottom.
	want := 0.80 + 0.43*102.0/1479.0
	if math.Abs(lo-want) > 1e-12 {
		t.Errorf("bottom voltage %v, want %v", lo, want)
	}
}

func TestNormFreq(t *testing.T) {
	table := JetsonNanoTable()
	if got := table.NormFreq(table.Len() - 1); got != 1 {
		t.Errorf("top NormFreq = %v, want 1", got)
	}
	want := 102.0 / 1479.0
	if got := table.NormFreq(0); math.Abs(got-want) > 1e-12 {
		t.Errorf("bottom NormFreq = %v, want %v", got, want)
	}
}

func TestLevelBoundsPanics(t *testing.T) {
	table := JetsonNanoTable()
	for _, k := range []int{-1, 15, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Level(%d) did not panic", k)
				}
			}()
			table.Level(k)
		}()
	}
}

func TestNewVFTableValidation(t *testing.T) {
	cases := []struct {
		name   string
		levels []VFLevel
	}{
		{"empty", nil},
		{"zero frequency", []VFLevel{{FreqMHz: 0, VoltV: 1}}},
		{"zero voltage", []VFLevel{{FreqMHz: 100, VoltV: 0}}},
		{"non-increasing", []VFLevel{{FreqMHz: 200, VoltV: 0.8}, {FreqMHz: 200, VoltV: 0.9}}},
		{"decreasing", []VFLevel{{FreqMHz: 300, VoltV: 0.8}, {FreqMHz: 200, VoltV: 0.9}}},
	}
	for _, c := range cases {
		if _, err := NewVFTable(c.levels); err == nil {
			t.Errorf("%s: NewVFTable succeeded, want error", c.name)
		}
	}
}

func TestNewVFTableCopiesInput(t *testing.T) {
	levels := []VFLevel{{FreqMHz: 100, VoltV: 0.8}, {FreqMHz: 200, VoltV: 0.9}}
	table, err := NewVFTable(levels)
	if err != nil {
		t.Fatal(err)
	}
	levels[0].FreqMHz = 999
	if table.Level(0).FreqMHz != 100 {
		t.Fatal("table retained caller's slice")
	}
}

func TestJetsonNanoExactLevels(t *testing.T) {
	// The published Jetson Nano CPU DVFS frequencies.
	want := []float64{
		102.0, 204.0, 306.0, 403.2, 518.4,
		614.4, 710.4, 825.6, 921.6, 1036.8,
		1132.8, 1224.0, 1326.0, 1428.0, 1479.0,
	}
	table := JetsonNanoTable()
	for k, f := range want {
		if got := table.Level(k).FreqMHz; got != f {
			t.Errorf("level %d = %v MHz, want %v", k, got, f)
		}
	}
}
