package sim

import (
	"math"
	"math/rand"
	"testing"
)

func TestThermalDefaultsValid(t *testing.T) {
	if err := DefaultThermalModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestThermalValidate(t *testing.T) {
	mutations := []func(*ThermalModel){
		func(m *ThermalModel) { m.RThermal = 0 },
		func(m *ThermalModel) { m.CThermal = -1 },
		func(m *ThermalModel) { m.LeakTempCoeff = -0.01 },
	}
	for i, mutate := range mutations {
		m := DefaultThermalModel()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestThermalStartsAtAmbient(t *testing.T) {
	m := DefaultThermalModel()
	if m.TempC() != m.TAmbientC {
		t.Fatalf("initial temperature %v, want ambient %v", m.TempC(), m.TAmbientC)
	}
}

func TestThermalConvergesToSteadyState(t *testing.T) {
	m := DefaultThermalModel()
	const power = 0.6
	want := m.SteadyStateC(power) // 25 + 0.6·25 = 40 °C
	if math.Abs(want-40) > 1e-9 {
		t.Fatalf("steady state %v, want 40", want)
	}
	// Integrate well past 5 time constants (tau = 50 s).
	for i := 0; i < 1000; i++ {
		m.Advance(power, 0.5)
	}
	if math.Abs(m.TempC()-want) > 0.1 {
		t.Fatalf("temperature %v after saturation, want %v", m.TempC(), want)
	}
}

func TestThermalMonotoneHeating(t *testing.T) {
	m := DefaultThermalModel()
	prev := m.TempC()
	for i := 0; i < 50; i++ {
		cur := m.Advance(1.0, 0.5)
		if cur <= prev {
			t.Fatalf("heating not monotone at step %d: %v -> %v", i, prev, cur)
		}
		prev = cur
	}
}

func TestThermalCoolsWithoutPower(t *testing.T) {
	m := DefaultThermalModel()
	for i := 0; i < 400; i++ {
		m.Advance(1.0, 0.5)
	}
	hot := m.TempC()
	// Cool for six thermal time constants (tau = R·C = 50 s).
	for i := 0; i < 600; i++ {
		m.Advance(0, 0.5)
	}
	if m.TempC() >= hot {
		t.Fatal("temperature did not fall at zero power")
	}
	if math.Abs(m.TempC()-m.TAmbientC) > 0.5 {
		t.Fatalf("did not cool towards ambient: %v", m.TempC())
	}
}

func TestThermalStabilityLongInterval(t *testing.T) {
	// dt much larger than the time constant must not oscillate or blow up
	// (the integrator sub-steps internally).
	m := DefaultThermalModel()
	m.CThermal = 0.1 // tau = 2.5 s
	for i := 0; i < 20; i++ {
		got := m.Advance(0.5, 10)
		want := m.SteadyStateC(0.5)
		if got < m.TAmbientC-1 || got > want+1 {
			t.Fatalf("unstable integration: %v at step %d", got, i)
		}
	}
}

func TestThermalReset(t *testing.T) {
	m := DefaultThermalModel()
	m.Advance(1, 10)
	m.Reset()
	if m.TempC() != m.TAmbientC {
		t.Fatalf("after reset: %v, want ambient", m.TempC())
	}
}

func TestLeakageScale(t *testing.T) {
	m := DefaultThermalModel()
	// At the reference temperature the scale is exactly 1.
	m.tempC, m.started = m.TRefC, true
	if got := m.LeakageScale(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("scale at T_ref = %v, want 1", got)
	}
	// 10 K above reference: 1 + 10·0.012.
	m.tempC = m.TRefC + 10
	if got := m.LeakageScale(); math.Abs(got-1.12) > 1e-12 {
		t.Fatalf("scale at T_ref+10 = %v, want 1.12", got)
	}
	// The scale clamps at zero rather than going negative.
	m.tempC = -1000
	if got := m.LeakageScale(); got != 0 {
		t.Fatalf("scale at absurd cold = %v, want clamp 0", got)
	}
}

func TestDeviceWithThermalModel(t *testing.T) {
	dev := NewDevice(JetsonNanoTable(), DefaultPowerModel(), rand.New(rand.NewSource(1)))
	dev.PowerNoiseW, dev.IPCNoiseRel = 0, 0
	dev.Thermal = DefaultThermalModel()
	dem := Demand{BaseCPI: 0.65, MPKI: 1.5, APKI: 100, MemLatencyNs: 80, Activity: 1.1}
	dev.Load(newFixedWorkload(dem, 1e15))
	dev.SetLevel(12)

	first := dev.Step(0.5)
	if first.TempC <= dev.Thermal.TAmbientC {
		t.Fatalf("temperature %v did not rise above ambient", first.TempC)
	}
	var last Observation
	for i := 0; i < 400; i++ {
		last = dev.Step(0.5)
	}
	if last.TempC <= first.TempC {
		t.Fatalf("device did not heat up: %v -> %v", first.TempC, last.TempC)
	}
	// Leakage feedback: power at the (hot) end exceeds power at the
	// (cold) start for the identical operating point.
	if last.TruePower <= first.TruePower {
		t.Fatalf("leakage feedback missing: power %v -> %v", first.TruePower, last.TruePower)
	}
}

func TestDeviceWithoutThermalModelReportsZeroTemp(t *testing.T) {
	dev := NewDevice(JetsonNanoTable(), DefaultPowerModel(), rand.New(rand.NewSource(1)))
	dev.Load(newFixedWorkload(Demand{BaseCPI: 1, APKI: 100, Activity: 1}, 1e12))
	if obs := dev.Step(0.5); obs.TempC != 0 {
		t.Fatalf("TempC = %v without a thermal model, want 0", obs.TempC)
	}
}
