package sim

import (
	"fmt"
	"math/rand"
)

// MultiCoreDevice simulates the Jetson Nano's actual CPU topology: a
// cluster of cores sharing one clock and voltage rail ("four ARM
// Cortex-A57 cores with a shared clock signal", §IV). Each core runs its
// own single-threaded workload; a DVFS action switches the whole cluster.
//
// The paper evaluates with one single-threaded application at a time —
// the single-core Device models that. MultiCoreDevice extends the substrate
// to concurrent per-core workloads, where the cluster-level power is the
// shared static rail cost plus the sum of per-core dynamic power, and the
// controller observes aggregate counters. It is used by the multi-core
// extension experiment.
type MultiCoreDevice struct {
	Table *VFTable
	Power PowerModel

	// PowerNoiseW and IPCNoiseRel mirror Device's sensor noise.
	PowerNoiseW float64
	IPCNoiseRel float64

	// IdleCoreActivity is the dynamic-power activity of a core with no
	// workload loaded (clock-gating leaves a small residual).
	IdleCoreActivity float64

	level     int
	cores     []Workload // nil entries are idle cores
	rng       *rand.Rand
	stats     Stats
	coreInstr []float64
}

// NewMultiCoreDevice returns a cluster with the given core count, all cores
// idle, at the lowest V/f level.
func NewMultiCoreDevice(table *VFTable, pm PowerModel, cores int, rng *rand.Rand) *MultiCoreDevice {
	if table == nil {
		panic("sim: NewMultiCoreDevice requires a V/f table")
	}
	if cores <= 0 {
		panic(fmt.Sprintf("sim: core count %d must be positive", cores))
	}
	if rng == nil {
		panic("sim: NewMultiCoreDevice requires a rand source")
	}
	return &MultiCoreDevice{
		Table:            table,
		Power:            pm,
		PowerNoiseW:      0.010,
		IPCNoiseRel:      0.02,
		IdleCoreActivity: 0.05,
		cores:            make([]Workload, cores),
		coreInstr:        make([]float64, cores),
		rng:              rng,
	}
}

// Cores returns the cluster's core count.
func (d *MultiCoreDevice) Cores() int { return len(d.cores) }

// LoadCore installs (and resets) a workload on core i; nil idles the core.
func (d *MultiCoreDevice) LoadCore(i int, w Workload) {
	if i < 0 || i >= len(d.cores) {
		panic(fmt.Sprintf("sim: core %d out of range [0,%d)", i, len(d.cores)))
	}
	if w != nil {
		w.Reset()
	}
	d.cores[i] = w
}

// CoreWorkload returns core i's workload, or nil when idle.
func (d *MultiCoreDevice) CoreWorkload(i int) Workload { return d.cores[i] }

// CoreDone reports whether core i has no work left (idle or completed).
func (d *MultiCoreDevice) CoreDone(i int) bool {
	return d.cores[i] == nil || d.cores[i].Remaining() <= 0
}

// AllDone reports whether every core is idle or completed.
func (d *MultiCoreDevice) AllDone() bool {
	for i := range d.cores {
		if !d.CoreDone(i) {
			return false
		}
	}
	return true
}

// SetLevel switches the shared cluster clock.
func (d *MultiCoreDevice) SetLevel(k int) {
	if k < 0 || k >= d.Table.Len() {
		panic(fmt.Sprintf("sim: SetLevel %d out of range [0,%d)", k, d.Table.Len()))
	}
	d.level = k
}

// Level returns the active V/f level.
func (d *MultiCoreDevice) Level() int { return d.level }

// Step runs the cluster for dt seconds and returns the aggregate
// observation: total power (one shared static rail plus per-core dynamic
// power), the mean per-active-core IPC, and instruction-weighted cache
// statistics. Idle cores contribute only their residual activity. Cores
// whose workload completes mid-interval simply stop contributing; the
// observation still covers the full dt (the cluster keeps running).
func (d *MultiCoreDevice) Step(dt float64) Observation {
	if dt <= 0 {
		panic(fmt.Sprintf("sim: Step interval %v must be positive", dt))
	}
	lv := d.Table.Level(d.level)

	var (
		totalDyn   float64
		ipcSum     float64
		active     int
		totalInstr float64
		missSum    float64 // instruction-weighted MPKI numerator
		accSum     float64 // instruction-weighted APKI numerator
	)
	for i, w := range d.cores {
		if w == nil || w.Remaining() <= 0 {
			totalDyn += d.Power.Dynamic(lv.VoltV, lv.FreqMHz, 0, d.IdleCoreActivity)
			d.coreInstr[i] = 0
			continue
		}
		dem := w.Demand()
		ipc := IPC(dem, lv.FreqMHz)
		ips := ipc * lv.FreqMHz * 1e6
		instr := ips * dt
		if rem := w.Remaining(); instr > rem {
			instr = rem
		}
		w.Advance(instr)
		d.coreInstr[i] = instr

		totalDyn += d.Power.Dynamic(lv.VoltV, lv.FreqMHz, ipc, dem.Activity)
		ipcSum += ipc
		active++
		totalInstr += instr
		missSum += dem.MPKI * instr
		accSum += dem.APKI * instr
	}

	truePower := d.Power.Static(lv.VoltV) + totalDyn
	measPower := truePower + d.rng.NormFloat64()*d.PowerNoiseW
	if measPower < 0 {
		measPower = 0
	}

	meanIPC := 0.0
	if active > 0 {
		meanIPC = ipcSum / float64(active)
	}
	measIPC := meanIPC * (1 + d.rng.NormFloat64()*d.IPCNoiseRel)
	if measIPC < 0 {
		measIPC = 0
	}
	mpki, missRate := 0.0, 0.0
	if totalInstr > 0 && accSum > 0 {
		mpki = missSum / totalInstr
		missRate = missSum / accSum
	}

	energy := truePower * dt
	d.stats.TimeS += dt
	d.stats.Instr += totalInstr
	d.stats.EnergyJ += energy

	return Observation{
		Level:     d.level,
		FreqMHz:   lv.FreqMHz,
		NormFreq:  lv.FreqMHz / d.Table.MaxFreqMHz(),
		PowerW:    measPower,
		IPC:       measIPC,
		MissRate:  missRate,
		MPKI:      mpki,
		Instr:     totalInstr,
		ElapsedS:  dt,
		EnergyJ:   energy,
		TruePower: truePower,
	}
}

// CoreInstr returns the instructions core i retired in the last Step.
func (d *MultiCoreDevice) CoreInstr(i int) float64 { return d.coreInstr[i] }

// Stats returns the cluster's cumulative execution statistics.
func (d *MultiCoreDevice) Stats() Stats { return d.stats }

// ResetStats zeroes the cumulative statistics.
func (d *MultiCoreDevice) ResetStats() { d.stats = Stats{} }
