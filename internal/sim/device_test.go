package sim

import (
	"math"
	"math/rand"
	"testing"
)

// fixedWorkload is a minimal sim.Workload with constant demand, used to test
// the device independently of package workload.
type fixedWorkload struct {
	demand    Demand
	total     float64
	remaining float64
}

func newFixedWorkload(d Demand, total float64) *fixedWorkload {
	return &fixedWorkload{demand: d, total: total, remaining: total}
}

func (w *fixedWorkload) Name() string          { return "fixed" }
func (w *fixedWorkload) Demand() Demand        { return w.demand }
func (w *fixedWorkload) Advance(instr float64) { w.remaining -= instr }
func (w *fixedWorkload) Remaining() float64    { return w.remaining }
func (w *fixedWorkload) Reset()                { w.remaining = w.total }

func newTestDevice(t *testing.T) *Device {
	t.Helper()
	return NewDevice(JetsonNanoTable(), DefaultPowerModel(), rand.New(rand.NewSource(1)))
}

func quietDevice(t *testing.T) *Device {
	t.Helper()
	d := newTestDevice(t)
	d.PowerNoiseW = 0
	d.IPCNoiseRel = 0
	return d
}

func TestNewDeviceValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewDevice(nil table) did not panic")
			}
		}()
		NewDevice(nil, DefaultPowerModel(), rand.New(rand.NewSource(1)))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewDevice(nil rng) did not panic")
			}
		}()
		NewDevice(JetsonNanoTable(), DefaultPowerModel(), nil)
	}()
}

func TestSetLevelBounds(t *testing.T) {
	d := newTestDevice(t)
	d.SetLevel(14)
	if d.Level() != 14 {
		t.Fatalf("Level = %d, want 14", d.Level())
	}
	for _, k := range []int{-1, 15} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetLevel(%d) did not panic", k)
				}
			}()
			d.SetLevel(k)
		}()
	}
}

func TestStepRequiresWorkload(t *testing.T) {
	d := newTestDevice(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Step without workload did not panic")
		}
	}()
	d.Step(0.5)
}

func TestStepRequiresPositiveInterval(t *testing.T) {
	d := newTestDevice(t)
	d.Load(newFixedWorkload(Demand{BaseCPI: 1, APKI: 100, Activity: 1}, 1e9))
	for _, dt := range []float64{0, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Step(%v) did not panic", dt)
				}
			}()
			d.Step(dt)
		}()
	}
}

func TestStepNoiselessMatchesModel(t *testing.T) {
	d := quietDevice(t)
	dem := Demand{BaseCPI: 0.7, MPKI: 5, APKI: 150, MemLatencyNs: 80, Activity: 1.0}
	d.Load(newFixedWorkload(dem, 1e15))
	d.SetLevel(8)
	obs := d.Step(0.5)

	lv := JetsonNanoTable().Level(8)
	wantIPC := IPC(dem, lv.FreqMHz)
	wantPower := DefaultPowerModel().Total(lv.VoltV, lv.FreqMHz, wantIPC, dem.Activity)
	if math.Abs(obs.IPC-wantIPC) > 1e-12 {
		t.Errorf("IPC = %v, want %v", obs.IPC, wantIPC)
	}
	if math.Abs(obs.PowerW-wantPower) > 1e-12 {
		t.Errorf("power = %v, want %v", obs.PowerW, wantPower)
	}
	if obs.TruePower != obs.PowerW {
		t.Errorf("noiseless TruePower %v != measured %v", obs.TruePower, obs.PowerW)
	}
	if obs.Level != 8 || obs.FreqMHz != lv.FreqMHz {
		t.Errorf("observation level/freq mismatch: %+v", obs)
	}
	wantInstr := wantIPC * lv.FreqMHz * 1e6 * 0.5
	if math.Abs(obs.Instr-wantInstr) > 1 {
		t.Errorf("instructions = %v, want %v", obs.Instr, wantInstr)
	}
	if math.Abs(obs.MissRate-5.0/150) > 1e-12 {
		t.Errorf("miss rate = %v, want %v", obs.MissRate, 5.0/150)
	}
}

func TestStepPartialIntervalOnCompletion(t *testing.T) {
	d := quietDevice(t)
	dem := Demand{BaseCPI: 1, APKI: 100, Activity: 1}
	d.SetLevel(14)
	lv := JetsonNanoTable().Level(14)
	ips := IPC(dem, lv.FreqMHz) * lv.FreqMHz * 1e6
	// Workload sized for exactly a quarter interval.
	d.Load(newFixedWorkload(dem, ips*0.125))
	obs := d.Step(0.5)
	if math.Abs(obs.ElapsedS-0.125) > 1e-9 {
		t.Fatalf("elapsed = %v, want 0.125", obs.ElapsedS)
	}
	if !d.Done() {
		t.Fatal("workload should be complete")
	}
}

func TestNoiseAffectsMeasurementsOnly(t *testing.T) {
	d := newTestDevice(t) // default noise on
	dem := Demand{BaseCPI: 0.7, MPKI: 5, APKI: 150, MemLatencyNs: 80, Activity: 1.0}
	d.Load(newFixedWorkload(dem, 1e15))
	d.SetLevel(8)
	sawNoise := false
	for i := 0; i < 50; i++ {
		obs := d.Step(0.5)
		if obs.PowerW != obs.TruePower {
			sawNoise = true
		}
		// Energy accounting uses the noiseless model power.
		if math.Abs(obs.EnergyJ-obs.TruePower*obs.ElapsedS) > 1e-12 {
			t.Fatal("energy must integrate the true power")
		}
	}
	if !sawNoise {
		t.Fatal("power measurements never deviated from the model — noise inactive?")
	}
}

func TestStatsAccumulateAndReset(t *testing.T) {
	d := quietDevice(t)
	dem := Demand{BaseCPI: 1, APKI: 100, Activity: 1}
	d.Load(newFixedWorkload(dem, 1e15))
	d.SetLevel(7)
	for i := 0; i < 4; i++ {
		d.Step(0.5)
	}
	st := d.Stats()
	if math.Abs(st.TimeS-2.0) > 1e-9 {
		t.Fatalf("time = %v, want 2.0", st.TimeS)
	}
	if st.AvgIPS() <= 0 || st.AvgPowerW() <= 0 {
		t.Fatalf("averages not positive: %+v", st)
	}
	lv := JetsonNanoTable().Level(7)
	wantIPS := IPC(dem, lv.FreqMHz) * lv.FreqMHz * 1e6
	if math.Abs(st.AvgIPS()-wantIPS) > 1 {
		t.Fatalf("avg IPS = %v, want %v", st.AvgIPS(), wantIPS)
	}
	d.ResetStats()
	if s := d.Stats(); s.TimeS != 0 || s.Instr != 0 || s.EnergyJ != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
	if s := d.Stats(); s.AvgIPS() != 0 || s.AvgPowerW() != 0 {
		t.Fatal("zero-time averages must be 0")
	}
}

func TestLoadResetsWorkload(t *testing.T) {
	d := quietDevice(t)
	w := newFixedWorkload(Demand{BaseCPI: 1, APKI: 100, Activity: 1}, 1e9)
	w.Advance(5e8)
	d.Load(w)
	if w.Remaining() != 1e9 {
		t.Fatal("Load must reset the workload")
	}
	if d.Workload() != w {
		t.Fatal("Workload accessor mismatch")
	}
}

func TestDoneWithoutWorkload(t *testing.T) {
	d := newTestDevice(t)
	if !d.Done() {
		t.Fatal("device without workload must report done")
	}
}

func TestOptimalLevel(t *testing.T) {
	d := quietDevice(t)
	// Memory-bound stays under 0.6 W at f_max → optimum is the top level.
	mem := Demand{BaseCPI: 0.8, MPKI: 22, APKI: 280, MemLatencyNs: 80, Activity: 0.85}
	if got := d.OptimalLevel(mem, 0.6); got != 14 {
		t.Errorf("memory-bound optimum = %d, want 14", got)
	}
	// Compute-bound crosses the budget mid-range.
	cmp := Demand{BaseCPI: 0.65, MPKI: 1.5, APKI: 100, MemLatencyNs: 80, Activity: 1.1}
	got := d.OptimalLevel(cmp, 0.6)
	if got < 5 || got > 10 {
		t.Errorf("compute-bound optimum = %d, want mid-range", got)
	}
	// A budget below even the lowest level's draw yields level 0.
	if got := d.OptimalLevel(cmp, 0.01); got != 0 {
		t.Errorf("unreachable budget optimum = %d, want 0", got)
	}
	// Optimal level power must actually respect the budget, and the next
	// level up must violate it (when one exists).
	table := JetsonNanoTable()
	pm := DefaultPowerModel()
	k := d.OptimalLevel(cmp, 0.6)
	lv := table.Level(k)
	if pm.Total(lv.VoltV, lv.FreqMHz, IPC(cmp, lv.FreqMHz), cmp.Activity) > 0.6 {
		t.Error("optimal level violates the budget")
	}
	if k+1 < table.Len() {
		nxt := table.Level(k + 1)
		if pm.Total(nxt.VoltV, nxt.FreqMHz, IPC(cmp, nxt.FreqMHz), cmp.Activity) <= 0.6 {
			t.Error("level above the optimum still fits the budget")
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []float64 {
		d := NewDevice(JetsonNanoTable(), DefaultPowerModel(), rand.New(rand.NewSource(77)))
		d.Load(newFixedWorkload(Demand{BaseCPI: 0.7, MPKI: 5, APKI: 150, MemLatencyNs: 80, Activity: 1}, 1e15))
		d.SetLevel(9)
		var out []float64
		for i := 0; i < 20; i++ {
			obs := d.Step(0.5)
			out = append(out, obs.PowerW, obs.IPC)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different observations")
		}
	}
}
