package sim_test

// Cross-package fuzz-style property tests: randomly generated (but
// physically plausible) workloads driven through the device at random
// DVFS schedules must never violate the simulator's physical invariants.

import (
	"math"
	"math/rand"
	"testing"

	"fedpower/internal/core"
	"fedpower/internal/sim"
	"fedpower/internal/workload"
)

func TestRandomWorkloadDeviceInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	table := sim.JetsonNanoTable()
	pm := sim.DefaultPowerModel()
	rp := core.RewardParams{PCritW: 0.6, KOffsetW: 0.05}

	for trial := 0; trial < 60; trial++ {
		spec := workload.RandomSpec(rng, "fuzz")
		dev := sim.NewDevice(table, pm, rand.New(rand.NewSource(int64(trial))))
		dev.Load(workload.NewApp(spec))

		var energySum, timeSum, instrSum float64
		for step := 0; step < 200 && !dev.Done(); step++ {
			dev.SetLevel(rng.Intn(table.Len()))
			obs := dev.Step(0.5)

			// Physical invariants.
			if obs.TruePower <= 0 || math.IsNaN(obs.TruePower) {
				t.Fatalf("trial %d: non-physical power %v", trial, obs.TruePower)
			}
			if obs.PowerW < 0 {
				t.Fatalf("trial %d: negative measured power %v", trial, obs.PowerW)
			}
			if obs.IPC < 0 || obs.IPC > 2.5 {
				t.Fatalf("trial %d: IPC %v outside the platform envelope", trial, obs.IPC)
			}
			if obs.MissRate < 0 || obs.MissRate > 1 {
				t.Fatalf("trial %d: miss rate %v outside [0, 1]", trial, obs.MissRate)
			}
			if obs.Instr < 0 {
				t.Fatalf("trial %d: negative instruction count", trial)
			}
			if obs.ElapsedS <= 0 || obs.ElapsedS > 0.5+1e-9 {
				t.Fatalf("trial %d: elapsed %v outside (0, dt]", trial, obs.ElapsedS)
			}
			// Reward stays in its closed range for any observation.
			r := rp.Reward(obs.NormFreq, obs.PowerW)
			if r < -1-1e-12 || r > 1+1e-12 {
				t.Fatalf("trial %d: reward %v outside [-1, 1]", trial, r)
			}
			// The agent state derived from any observation is finite.
			for i, v := range core.StateVector(obs, nil) {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("trial %d: non-finite state feature %d", trial, i)
				}
			}
			energySum += obs.EnergyJ
			timeSum += obs.ElapsedS
			instrSum += obs.Instr
		}

		// Accounting invariants: the device's cumulative statistics equal
		// the per-step sums.
		st := dev.Stats()
		if math.Abs(st.EnergyJ-energySum) > 1e-9*(1+energySum) {
			t.Fatalf("trial %d: energy accounting drift %v vs %v", trial, st.EnergyJ, energySum)
		}
		if math.Abs(st.TimeS-timeSum) > 1e-9*(1+timeSum) {
			t.Fatalf("trial %d: time accounting drift", trial)
		}
		if math.Abs(st.Instr-instrSum) > 1e-3 {
			t.Fatalf("trial %d: instruction accounting drift", trial)
		}
	}
}

func TestRandomWorkloadControllerTrains(t *testing.T) {
	// A controller fed entirely random-spec workloads must stay
	// numerically healthy: finite parameters after thousands of updates.
	rng := rand.New(rand.NewSource(99))
	table := sim.JetsonNanoTable()
	dev := sim.NewDevice(table, sim.DefaultPowerModel(), rand.New(rand.NewSource(1)))
	params := core.Defaults(table.Len())
	ctrl := core.NewController(params, rand.New(rand.NewSource(2)))

	dev.Load(workload.NewApp(workload.RandomSpec(rng, "fuzz-train")))
	dev.SetLevel(table.Len() / 2)
	obs := dev.Step(0.5)
	var state []float64
	for step := 0; step < 3000; step++ {
		if dev.Done() {
			dev.Load(workload.NewApp(workload.RandomSpec(rng, "fuzz-train")))
		}
		state = core.StateVector(obs, state)
		a := ctrl.SelectAction(state)
		dev.SetLevel(a)
		obs = dev.Step(0.5)
		ctrl.Observe(state, a, params.Reward.Reward(obs.NormFreq, obs.PowerW))
	}
	for i, v := range ctrl.ModelParams() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("parameter %d became non-finite after random-workload training", i)
		}
	}
	if ctrl.LastLoss() < 0 || math.IsNaN(ctrl.LastLoss()) {
		t.Fatalf("degenerate training loss %v", ctrl.LastLoss())
	}
}

func TestRandomSpecAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		spec := workload.RandomSpec(rng, "x")
		if err := spec.Validate(); err != nil {
			t.Fatalf("RandomSpec #%d invalid: %v", i, err)
		}
		if spec.MPKI > spec.APKI {
			t.Fatalf("RandomSpec #%d: MPKI %v > APKI %v", i, spec.MPKI, spec.APKI)
		}
	}
}
