package sim

import (
	"fmt"
	"math/rand"
)

// Observation is what the power controller sees after one control interval:
// the active operating point and the performance-counter and power-sensor
// readings accumulated over the interval. These five quantities form the
// agent state s = (f, P, ipc, mr, mpki) of §III-A.
type Observation struct {
	Level     int     // active V/f level index
	FreqMHz   float64 // active core frequency
	NormFreq  float64 // FreqMHz / f_max, the performance surrogate
	PowerW    float64 // measured average power over the interval (noisy)
	IPC       float64 // measured instructions per cycle (noisy)
	MissRate  float64 // LLC miss rate = misses / accesses
	MPKI      float64 // LLC misses per kilo-instruction
	Instr     float64 // instructions retired this interval
	ElapsedS  float64 // interval length in seconds
	EnergyJ   float64 // energy consumed this interval (power × time, noiseless)
	TruePower float64 // noiseless model power, for analysis and tests
	TempC     float64 // die temperature; 0 unless a ThermalModel is attached
}

// Device simulates one DVFS-controlled processor executing a Workload. It is
// the stand-in for a Jetson Nano board: the controller sets a V/f level,
// lets the device run for a control interval, and receives an Observation.
//
// Measurement noise: power readings carry additive Gaussian noise (the INA
// power monitor on the real board is similarly noisy), and IPC readings a
// small relative jitter. Noise draws come from the device's own rand source
// so experiments are reproducible.
type Device struct {
	Table *VFTable
	Power PowerModel

	// PowerNoiseW is the standard deviation of the additive Gaussian noise
	// on power readings, in watts.
	PowerNoiseW float64
	// IPCNoiseRel is the standard deviation of the multiplicative Gaussian
	// noise on IPC readings (relative).
	IPCNoiseRel float64

	// Thermal, when non-nil, enables the lumped-RC temperature model with
	// leakage feedback — the effect the paper's §III-A footnote neglects.
	// Thermal state persists across workloads (the die stays warm).
	Thermal *ThermalModel

	level    int
	workload Workload
	rng      *rand.Rand

	// Cumulative accounting since the last ResetStats, used by the
	// experiment harness for execution-time / IPS / power metrics.
	totalTimeS   float64
	totalInstr   float64
	totalEnergyJ float64
}

// NewDevice returns a device with the given V/f table and power model,
// default noise levels, the lowest V/f level active, and no workload loaded.
func NewDevice(table *VFTable, pm PowerModel, rng *rand.Rand) *Device {
	if table == nil {
		panic("sim: NewDevice requires a V/f table")
	}
	if rng == nil {
		panic("sim: NewDevice requires a rand source")
	}
	return &Device{
		Table:       table,
		Power:       pm,
		PowerNoiseW: 0.010,
		IPCNoiseRel: 0.02,
		rng:         rng,
	}
}

// Load installs a workload (resetting it) and makes it the running
// application.
func (d *Device) Load(w Workload) {
	w.Reset()
	d.workload = w
}

// Workload returns the currently loaded workload, or nil.
func (d *Device) Workload() Workload { return d.workload }

// SetLevel performs the DVFS action: it switches the processor to V/f level
// k. On real hardware the switch costs microseconds; against the 500 ms
// control interval it is treated as instantaneous.
func (d *Device) SetLevel(k int) {
	if k < 0 || k >= d.Table.Len() {
		panic(fmt.Sprintf("sim: SetLevel %d out of range [0,%d)", k, d.Table.Len()))
	}
	d.level = k
}

// Level returns the active V/f level index.
func (d *Device) Level() int { return d.level }

// Done reports whether the loaded workload has retired all its instructions
// (or whether no workload is loaded).
func (d *Device) Done() bool {
	return d.workload == nil || d.workload.Remaining() <= 0
}

// Step runs the device for dt seconds at the active V/f level and returns
// the resulting observation. If the workload completes mid-interval the
// observation covers only the time actually executed (ElapsedS < dt).
// Step panics when no workload is loaded or dt is not positive.
func (d *Device) Step(dt float64) Observation {
	if d.workload == nil {
		panic("sim: Step with no workload loaded")
	}
	if dt <= 0 {
		panic(fmt.Sprintf("sim: Step interval %v must be positive", dt))
	}
	lv := d.Table.Level(d.level)
	dem := d.workload.Demand()

	ipc := IPC(dem, lv.FreqMHz)
	ips := ipc * lv.FreqMHz * 1e6

	instr := ips * dt
	elapsed := dt
	if rem := d.workload.Remaining(); instr >= rem {
		instr = rem
		elapsed = rem / ips
	}
	d.workload.Advance(instr)

	truePower := d.Power.Total(lv.VoltV, lv.FreqMHz, ipc, dem.Activity)
	tempC := 0.0
	if d.Thermal != nil {
		// Temperature-dependent leakage: scale the static component by the
		// current leakage factor, then advance the thermal state under the
		// resulting draw.
		static := d.Power.Static(lv.VoltV)
		truePower += static * (d.Thermal.LeakageScale() - 1)
	}
	measPower := truePower + d.rng.NormFloat64()*d.PowerNoiseW
	if measPower < 0 {
		measPower = 0
	}
	measIPC := ipc * (1 + d.rng.NormFloat64()*d.IPCNoiseRel)
	if measIPC < 0 {
		measIPC = 0
	}

	missRate := 0.0
	if dem.APKI > 0 {
		missRate = dem.MPKI / dem.APKI
	}

	energy := truePower * elapsed
	d.totalTimeS += elapsed
	d.totalInstr += instr
	d.totalEnergyJ += energy

	if d.Thermal != nil {
		tempC = d.Thermal.Advance(truePower, elapsed)
	}

	return Observation{
		Level:     d.level,
		FreqMHz:   lv.FreqMHz,
		NormFreq:  lv.FreqMHz / d.Table.MaxFreqMHz(),
		PowerW:    measPower,
		IPC:       measIPC,
		MissRate:  missRate,
		MPKI:      dem.MPKI,
		Instr:     instr,
		ElapsedS:  elapsed,
		EnergyJ:   energy,
		TruePower: truePower,
		TempC:     tempC,
	}
}

// Stats summarises the device's execution since the last ResetStats.
type Stats struct {
	TimeS   float64 // total executed wall-clock time
	Instr   float64 // total retired instructions
	EnergyJ float64 // total energy
}

// AvgIPS returns the mean instructions per second, or 0 before any
// execution.
func (s Stats) AvgIPS() float64 {
	if s.TimeS == 0 { //fedlint:ignore floateq exact zero guards the division below
		return 0
	}
	return s.Instr / s.TimeS
}

// AvgPowerW returns the mean power draw, or 0 before any execution.
func (s Stats) AvgPowerW() float64 {
	if s.TimeS == 0 { //fedlint:ignore floateq exact zero guards the division below
		return 0
	}
	return s.EnergyJ / s.TimeS
}

// Stats returns the cumulative execution statistics.
func (d *Device) Stats() Stats {
	return Stats{TimeS: d.totalTimeS, Instr: d.totalInstr, EnergyJ: d.totalEnergyJ}
}

// ResetStats zeroes the cumulative execution statistics.
func (d *Device) ResetStats() {
	d.totalTimeS, d.totalInstr, d.totalEnergyJ = 0, 0, 0
}

// OptimalLevel returns the highest V/f level whose noiseless model power for
// demand d stays at or below pCritW, or 0 if even the lowest level exceeds
// the budget. It is the oracle the learned policies are measured against in
// tests and ablations.
func (d *Device) OptimalLevel(dem Demand, pCritW float64) int {
	best := 0
	for k := 0; k < d.Table.Len(); k++ {
		lv := d.Table.Level(k)
		ipc := IPC(dem, lv.FreqMHz)
		if d.Power.Total(lv.VoltV, lv.FreqMHz, ipc, dem.Activity) <= pCritW {
			best = k
		}
	}
	return best
}
