package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func computeDemand() Demand {
	return Demand{BaseCPI: 0.65, MPKI: 1.5, APKI: 100, MemLatencyNs: 80, Activity: 1.1}
}

func memoryDemand() Demand {
	return Demand{BaseCPI: 0.80, MPKI: 22, APKI: 280, MemLatencyNs: 80, Activity: 0.85}
}

func TestCPIGrowsWithFrequencyForMemoryBound(t *testing.T) {
	d := memoryDemand()
	lo := CPI(d, 102)
	hi := CPI(d, 1479)
	if hi <= lo {
		t.Fatalf("memory-bound CPI should grow with frequency: %v -> %v", lo, hi)
	}
	// The miss penalty dominates at f_max: 22/1000·80·1.479 ≈ 2.6 cycles.
	wantPenalty := 22.0 / 1000 * 80 * 1.479
	if math.Abs(hi-(0.80+wantPenalty)) > 1e-9 {
		t.Fatalf("CPI at f_max = %v, want %v", hi, 0.80+wantPenalty)
	}
}

func TestCPINearlyFlatForComputeBound(t *testing.T) {
	d := computeDemand()
	lo := CPI(d, 102)
	hi := CPI(d, 1479)
	// Compute-bound: miss penalty at f_max is only 1.5/1000·80·1.479 ≈ 0.18
	// cycles on a 0.65 base.
	if (hi-lo)/lo > 0.35 {
		t.Fatalf("compute-bound CPI grew %v%% across the range", (hi-lo)/lo*100)
	}
}

func TestIPCIsInverseCPI(t *testing.T) {
	d := computeDemand()
	for _, f := range []float64{102, 614.4, 1479} {
		if math.Abs(IPC(d, f)*CPI(d, f)-1) > 1e-12 {
			t.Fatalf("IPC·CPI != 1 at %v MHz", f)
		}
	}
}

func TestIPSMonotoneInFrequency(t *testing.T) {
	// Even for memory-bound code, raw IPS should never decrease with
	// frequency in this model (CPI grows sub-linearly with f).
	table := JetsonNanoTable()
	for _, d := range []Demand{computeDemand(), memoryDemand()} {
		prev := 0.0
		for k := 0; k < table.Len(); k++ {
			ips := IPS(d, table.Level(k).FreqMHz)
			if ips <= prev {
				t.Fatalf("IPS not increasing at level %d for %+v", k, d)
			}
			prev = ips
		}
	}
}

func TestIPSDiminishingReturnsForMemoryBound(t *testing.T) {
	// Doubling frequency from 710 to 1428 MHz should less-than-double
	// memory-bound IPS but nearly double compute-bound IPS.
	dm, dc := memoryDemand(), computeDemand()
	gainMem := IPS(dm, 1428) / IPS(dm, 710.4)
	gainCmp := IPS(dc, 1428) / IPS(dc, 710.4)
	if gainMem >= gainCmp {
		t.Fatalf("memory-bound frequency gain %v should trail compute-bound %v", gainMem, gainCmp)
	}
	if gainCmp < 1.75 {
		t.Errorf("compute-bound gain %v, want near 2", gainCmp)
	}
	if gainMem > 1.5 {
		t.Errorf("memory-bound gain %v, want strongly sub-linear", gainMem)
	}
}

func TestPowerModelMonotoneInFrequency(t *testing.T) {
	pm := DefaultPowerModel()
	table := JetsonNanoTable()
	for _, d := range []Demand{computeDemand(), memoryDemand()} {
		prev := 0.0
		for k := 0; k < table.Len(); k++ {
			lv := table.Level(k)
			p := pm.Total(lv.VoltV, lv.FreqMHz, IPC(d, lv.FreqMHz), d.Activity)
			if p <= prev {
				t.Fatalf("power not increasing at level %d", k)
			}
			prev = p
		}
	}
}

func TestPowerModelCalibration(t *testing.T) {
	// The property the whole evaluation rests on: under the paper's 0.6 W
	// constraint, a compute-bound application must throttle to a
	// mid-range level while a memory-bound one runs at f_max.
	pm := DefaultPowerModel()
	table := JetsonNanoTable()
	top := table.Level(table.Len() - 1)

	dc := computeDemand()
	pTopCompute := pm.Total(top.VoltV, top.FreqMHz, IPC(dc, top.FreqMHz), dc.Activity)
	if pTopCompute <= 0.6 {
		t.Fatalf("compute-bound power at f_max = %v W, must exceed the 0.6 W budget", pTopCompute)
	}

	dm := memoryDemand()
	pTopMemory := pm.Total(top.VoltV, top.FreqMHz, IPC(dm, top.FreqMHz), dm.Activity)
	if pTopMemory > 0.6 {
		t.Fatalf("memory-bound power at f_max = %v W, must stay under the 0.6 W budget", pTopMemory)
	}

	// The compute-bound crossover must be strictly inside the range, not
	// at the edges — otherwise there is nothing to learn.
	cross := 0
	for k := 0; k < table.Len(); k++ {
		lv := table.Level(k)
		if pm.Total(lv.VoltV, lv.FreqMHz, IPC(dc, lv.FreqMHz), dc.Activity) <= 0.6 {
			cross = k
		}
	}
	if cross < 3 || cross > 12 {
		t.Fatalf("compute-bound crossover at level %d, want mid-range", cross)
	}
}

func TestStaticPowerGrowsWithVoltage(t *testing.T) {
	pm := DefaultPowerModel()
	if pm.Static(1.2) <= pm.Static(0.8) {
		t.Fatal("leakage must grow with voltage")
	}
	if math.Abs(pm.Static(pm.VRefV)-pm.StaticBaseW) > 1e-12 {
		t.Fatal("Static(VRef) must equal the base leakage")
	}
}

func TestDynamicPowerScalesWithActivityAndIPC(t *testing.T) {
	pm := DefaultPowerModel()
	base := pm.Dynamic(1.0, 1000, 1.0, 1.0)
	if pm.Dynamic(1.0, 1000, 2.0, 1.0) <= base {
		t.Fatal("dynamic power must grow with IPC")
	}
	if pm.Dynamic(1.0, 1000, 1.0, 1.5) <= base {
		t.Fatal("dynamic power must grow with activity")
	}
	// Quadratic voltage dependence: doubling V quadruples the dynamic term.
	if math.Abs(pm.Dynamic(2.0, 1000, 1.0, 1.0)/base-4) > 1e-9 {
		t.Fatal("dynamic power must scale with V²")
	}
}

// Property: total power is always positive and equals static + dynamic.
func TestPowerDecompositionProperty(t *testing.T) {
	pm := DefaultPowerModel()
	f := func(vRaw, fRaw, ipcRaw, actRaw float64) bool {
		v := 0.7 + math.Abs(math.Mod(vRaw, 0.6))
		freq := 100 + math.Abs(math.Mod(fRaw, 1400))
		ipc := math.Abs(math.Mod(ipcRaw, 2))
		act := 0.5 + math.Abs(math.Mod(actRaw, 1))
		if math.IsNaN(v) || math.IsNaN(freq) || math.IsNaN(ipc) || math.IsNaN(act) {
			return true
		}
		total := pm.Total(v, freq, ipc, act)
		return total > 0 && math.Abs(total-(pm.Static(v)+pm.Dynamic(v, freq, ipc, act))) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
