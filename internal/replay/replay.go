// Package replay implements the experience replay buffer of Algorithm 1: a
// fixed-capacity ring that stores the C most recent (state, action, reward)
// samples from the power controller's interaction with the processor and
// serves uniformly sampled mini-batches for the policy-network update.
//
// The buffer is strictly local to a device — in the federated protocol its
// contents never leave the device; only model parameters do.
package replay

import (
	"fmt"
	"math/rand"
)

// Sample is one interaction with the processor: the observed state, the
// V/f level chosen (as an action index), and the reward computed from the
// subsequent observation.
type Sample struct {
	State  []float64
	Action int
	Reward float64
}

// Buffer is a fixed-capacity ring buffer of Samples. Once full, new samples
// overwrite the oldest ones, so the buffer always holds the most recent C
// interactions. The zero value is not usable; construct with New.
type Buffer struct {
	data  []Sample
	next  int
	full  bool
	added int
}

// New returns an empty buffer with the given capacity (the paper's C,
// default 4000). It panics on a non-positive capacity.
func New(capacity int) *Buffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("replay: invalid capacity %d", capacity))
	}
	return &Buffer{data: make([]Sample, 0, capacity)}
}

// Add appends a sample, evicting the oldest one when the buffer is full. The
// state slice is copied so callers may reuse their buffer.
func (b *Buffer) Add(state []float64, action int, reward float64) {
	s := Sample{State: append([]float64(nil), state...), Action: action, Reward: reward}
	b.added++
	if len(b.data) < cap(b.data) {
		b.data = append(b.data, s)
		return
	}
	b.full = true
	b.data[b.next] = s
	b.next = (b.next + 1) % cap(b.data)
}

// Len returns the number of samples currently stored.
func (b *Buffer) Len() int { return len(b.data) }

// Cap returns the buffer capacity C.
func (b *Buffer) Cap() int { return cap(b.data) }

// Added returns the total number of samples ever added, including evicted
// ones. Useful for overhead accounting and tests.
func (b *Buffer) Added() int { return b.added }

// Full reports whether the buffer has wrapped at least once.
func (b *Buffer) Full() bool { return b.full }

// Sample draws n samples uniformly at random with replacement into dst and
// returns it (allocating when dst is too small). Sampling with replacement
// matches the standard replay formulation and keeps the draw O(n). It panics
// when the buffer is empty.
func (b *Buffer) Sample(rng *rand.Rand, n int, dst []Sample) []Sample {
	if len(b.data) == 0 {
		panic("replay: Sample from empty buffer")
	}
	if cap(dst) < n {
		dst = make([]Sample, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = b.data[rng.Intn(len(b.data))]
	}
	return dst
}

// At returns the i-th stored sample in insertion-ring order. It is intended
// for tests and diagnostics; training code should use Sample.
func (b *Buffer) At(i int) Sample {
	if i < 0 || i >= len(b.data) {
		panic(fmt.Sprintf("replay: index %d out of range [0,%d)", i, len(b.data)))
	}
	return b.data[i]
}

// Footprint returns the storage footprint of a full buffer in bytes, using
// the on-device float32 representation the paper assumes (4 bytes per state
// feature and per reward, 4 bytes per action index). For the paper's
// configuration — C = 4000, 5 state features — this is 112 kB, the "roughly
// 100 kB of storage" reported in §IV-C.
func (b *Buffer) Footprint(stateDim int) int {
	return b.Cap() * (4*stateDim + 4 + 4)
}

// Reset discards all stored samples but keeps the capacity.
func (b *Buffer) Reset() {
	b.data = b.data[:0]
	b.next = 0
	b.full = false
	b.added = 0
}
