// Package replay implements the experience replay buffer of Algorithm 1: a
// fixed-capacity ring that stores the C most recent (state, action, reward)
// samples from the power controller's interaction with the processor and
// serves uniformly sampled mini-batches for the policy-network update.
//
// The buffer is strictly local to a device — in the federated protocol its
// contents never leave the device; only model parameters do.
package replay

import (
	"fmt"
	"math/rand"
)

// Sample is one interaction with the processor: the observed state, the
// V/f level chosen (as an action index), and the reward computed from the
// subsequent observation.
type Sample struct {
	State  []float64
	Action int
	Reward float64
}

// Buffer is a fixed-capacity ring buffer of Samples. Once full, new samples
// overwrite the oldest ones, so the buffer always holds the most recent C
// interactions. The zero value is not usable; construct with New.
type Buffer struct {
	data  []Sample
	next  int
	full  bool
	added int
}

// New returns an empty buffer with the given capacity (the paper's C,
// default 4000). It panics on a non-positive capacity.
func New(capacity int) *Buffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("replay: invalid capacity %d", capacity))
	}
	return &Buffer{data: make([]Sample, 0, capacity)}
}

// Add appends a sample, evicting the oldest one when the buffer is full. The
// state slice is copied so callers may reuse their buffer. Once the ring is
// full, the evicted sample's state storage is recycled for the new sample
// (when the dimensions allow), so steady-state Add performs no allocations
// (BenchmarkReplayAdd pins this); the flip side is that a Sample or At
// result's State aliases ring storage that is rewritten when the ring wraps
// back to its slot — copy it out to outlive the wrap (SampleInto does).
//
//fedlint:allocfree
func (b *Buffer) Add(state []float64, action int, reward float64) {
	b.added++
	if len(b.data) < cap(b.data) {
		b.data = append(b.data, Sample{State: append([]float64(nil), state...), Action: action, Reward: reward})
		return
	}
	b.full = true
	s := &b.data[b.next]
	if cap(s.State) >= len(state) {
		s.State = s.State[:len(state)]
		copy(s.State, state)
	} else {
		s.State = append([]float64(nil), state...)
	}
	s.Action = action
	s.Reward = reward
	b.next = (b.next + 1) % cap(b.data)
}

// Len returns the number of samples currently stored.
func (b *Buffer) Len() int { return len(b.data) }

// Cap returns the buffer capacity C.
func (b *Buffer) Cap() int { return cap(b.data) }

// Added returns the total number of samples ever added, including evicted
// ones. Useful for overhead accounting and tests.
func (b *Buffer) Added() int { return b.added }

// Full reports whether the buffer has wrapped at least once.
func (b *Buffer) Full() bool { return b.full }

// Sample draws n samples uniformly at random with replacement into dst and
// returns it (allocating when dst is too small). Sampling with replacement
// matches the standard replay formulation and keeps the draw O(n). The
// drawn Samples' State slices alias ring storage that is recycled when the
// ring wraps back to their slots (see Add); consume or copy them before
// adding Cap more samples. It panics when the buffer is empty.
func (b *Buffer) Sample(rng *rand.Rand, n int, dst []Sample) []Sample {
	if len(b.data) == 0 {
		panic("replay: Sample from empty buffer")
	}
	if cap(dst) < n {
		dst = make([]Sample, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = b.data[rng.Intn(len(b.data))]
	}
	return dst
}

// SampleInto draws len(actions) samples uniformly at random with
// replacement — the same draws, from the same rng stream, as Sample — and
// scatters them into caller storage: states is a flat row-major
// [batch × dim] state matrix (one copied state per row; nn.BatchStates
// hands out exactly this shape), with the matching action and reward per
// sample in actions and rewards. No per-sample Sample structs are
// materialised and the copied rows are immune to the ring recycling their
// source storage on a later Add. The row dimension is len(states) divided
// by the batch size and must match every drawn sample's state length. It
// panics when the buffer or the batch is empty.
//
//fedlint:allocfree
func (b *Buffer) SampleInto(rng *rand.Rand, states []float64, actions []int, rewards []float64) {
	n := len(actions)
	if n == 0 {
		panic("replay: SampleInto with an empty batch")
	}
	if len(rewards) != n {
		panic(fmt.Sprintf("replay: SampleInto rewards length %d, want %d", len(rewards), n))
	}
	if len(b.data) == 0 {
		panic("replay: SampleInto from empty buffer")
	}
	dim := len(states) / n
	if dim*n != len(states) {
		panic(fmt.Sprintf("replay: SampleInto state matrix length %d not divisible by batch %d", len(states), n))
	}
	for i := 0; i < n; i++ {
		s := &b.data[rng.Intn(len(b.data))]
		if len(s.State) != dim {
			panic(fmt.Sprintf("replay: SampleInto state dimension %d, want %d", len(s.State), dim))
		}
		copy(states[i*dim:(i+1)*dim], s.State)
		actions[i] = s.Action
		rewards[i] = s.Reward
	}
}

// At returns the i-th stored sample in insertion-ring order. It is intended
// for tests and diagnostics; training code should use Sample.
func (b *Buffer) At(i int) Sample {
	if i < 0 || i >= len(b.data) {
		panic(fmt.Sprintf("replay: index %d out of range [0,%d)", i, len(b.data)))
	}
	return b.data[i]
}

// Footprint returns the storage footprint of a full buffer in bytes, using
// the on-device float32 representation the paper assumes (4 bytes per state
// feature and per reward, 4 bytes per action index). For the paper's
// configuration — C = 4000, 5 state features — this is 112 kB, the "roughly
// 100 kB of storage" reported in §IV-C.
func (b *Buffer) Footprint(stateDim int) int {
	return b.Cap() * (4*stateDim + 4 + 4)
}

// Reset discards all stored samples but keeps the capacity.
func (b *Buffer) Reset() {
	b.data = b.data[:0]
	b.next = 0
	b.full = false
	b.added = 0
}
