package replay

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, c := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", c)
				}
			}()
			New(c)
		}()
	}
}

func TestAddAndLen(t *testing.T) {
	b := New(3)
	if b.Len() != 0 || b.Cap() != 3 || b.Full() {
		t.Fatalf("fresh buffer: len=%d cap=%d full=%v", b.Len(), b.Cap(), b.Full())
	}
	b.Add([]float64{1}, 0, 0.5)
	b.Add([]float64{2}, 1, 0.6)
	if b.Len() != 2 || b.Full() {
		t.Fatalf("after 2 adds: len=%d full=%v", b.Len(), b.Full())
	}
	b.Add([]float64{3}, 2, 0.7)
	if b.Len() != 3 {
		t.Fatalf("len=%d, want 3", b.Len())
	}
}

func TestEvictionKeepsMostRecent(t *testing.T) {
	b := New(3)
	for i := 0; i < 5; i++ {
		b.Add([]float64{float64(i)}, i, float64(i))
	}
	if !b.Full() {
		t.Fatal("buffer should be full after wrap")
	}
	if b.Added() != 5 {
		t.Fatalf("Added = %d, want 5", b.Added())
	}
	// The most recent C samples are 2, 3, 4 (in ring positions).
	seen := map[int]bool{}
	for i := 0; i < b.Len(); i++ {
		seen[b.At(i).Action] = true
	}
	for _, want := range []int{2, 3, 4} {
		if !seen[want] {
			t.Errorf("sample with action %d evicted too early; kept %v", want, seen)
		}
	}
	for _, gone := range []int{0, 1} {
		if seen[gone] {
			t.Errorf("sample with action %d should have been evicted", gone)
		}
	}
}

func TestAddCopiesState(t *testing.T) {
	b := New(2)
	state := []float64{1, 2}
	b.Add(state, 0, 0)
	state[0] = 99
	if b.At(0).State[0] != 1 {
		t.Fatal("buffer retained caller's state slice")
	}
}

func TestSampleFromEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample from empty buffer did not panic")
		}
	}()
	New(4).Sample(rand.New(rand.NewSource(1)), 1, nil)
}

func TestSampleSizeAndReuse(t *testing.T) {
	b := New(10)
	for i := 0; i < 10; i++ {
		b.Add([]float64{float64(i)}, i, 0)
	}
	rng := rand.New(rand.NewSource(1))
	dst := b.Sample(rng, 4, nil)
	if len(dst) != 4 {
		t.Fatalf("sample size %d, want 4", len(dst))
	}
	dst2 := b.Sample(rng, 4, dst)
	if &dst2[0] != &dst[0] {
		t.Fatal("Sample reallocated although dst had capacity")
	}
}

func TestSampleUniformity(t *testing.T) {
	// With 4 stored samples and many draws, each should appear with
	// frequency ~1/4.
	b := New(4)
	for i := 0; i < 4; i++ {
		b.Add([]float64{0}, i, 0)
	}
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, 4)
	const draws = 40000
	batch := make([]Sample, 100)
	for d := 0; d < draws/100; d++ {
		for _, s := range b.Sample(rng, 100, batch) {
			counts[s.Action]++
		}
	}
	for a, c := range counts {
		frac := float64(c) / draws
		if frac < 0.22 || frac > 0.28 {
			t.Errorf("action %d sampled with frequency %.3f, want ~0.25", a, frac)
		}
	}
}

func TestAtBoundsPanics(t *testing.T) {
	b := New(2)
	b.Add([]float64{1}, 0, 0)
	for _, i := range []int{-1, 1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", i)
				}
			}()
			b.At(i)
		}()
	}
}

func TestFootprintMatchesPaper(t *testing.T) {
	// Paper §IV-C: the replay buffer "requires an additional 100 kB of
	// storage". C=4000 samples × (5 features + action + reward) × 4 B =
	// 112000 B ≈ 100 kB.
	b := New(4000)
	got := b.Footprint(5)
	if got != 112000 {
		t.Fatalf("Footprint = %d, want 112000", got)
	}
}

func TestReset(t *testing.T) {
	b := New(2)
	b.Add([]float64{1}, 0, 0)
	b.Add([]float64{2}, 1, 0)
	b.Add([]float64{3}, 0, 0)
	b.Reset()
	if b.Len() != 0 || b.Full() || b.Added() != 0 {
		t.Fatalf("after reset: len=%d full=%v added=%d", b.Len(), b.Full(), b.Added())
	}
	b.Add([]float64{4}, 1, 0.25)
	if b.Len() != 1 || b.At(0).Reward != 0.25 {
		t.Fatal("buffer unusable after reset")
	}
}

// Property: Len never exceeds Cap and equals min(Added, Cap).
func TestLenInvariantProperty(t *testing.T) {
	f := func(capRaw uint8, adds uint16) bool {
		capacity := int(capRaw%50) + 1
		b := New(capacity)
		n := int(adds % 500)
		for i := 0; i < n; i++ {
			b.Add([]float64{float64(i)}, 0, 0)
		}
		want := n
		if want > capacity {
			want = capacity
		}
		return b.Len() == want && b.Added() == n && b.Len() <= b.Cap()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: sampled elements are always elements currently in the buffer.
func TestSampleMembershipProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		capacity := rng.Intn(20) + 1
		b := New(capacity)
		total := rng.Intn(60) + 1
		for i := 0; i < total; i++ {
			b.Add([]float64{float64(i)}, i, float64(i))
		}
		lo := total - capacity
		if lo < 0 {
			lo = 0
		}
		for _, s := range b.Sample(rng, 50, nil) {
			if s.Action < lo || s.Action >= total {
				t.Fatalf("sampled action %d outside live window [%d, %d)", s.Action, lo, total)
			}
		}
	}
}

// TestAddReusesEvictedStateStorage: once the ring has wrapped, Add must
// recycle the evicted sample's state storage instead of allocating a fresh
// slice per sample forever — and the recycled slot must hold exactly the
// new sample.
func TestAddReusesEvictedStateStorage(t *testing.T) {
	b := New(3)
	for i := 0; i < 5; i++ {
		b.Add([]float64{float64(i), float64(-i)}, i, float64(i) / 2)
	}
	// Ring of 3 after 5 adds: slots 0 and 1 overwritten in place by
	// samples 3 and 4, slot 2 still holding sample 2.
	for i, want := range []int{3, 4, 2} {
		s := b.At(i)
		if s.Action != want || s.State[0] != float64(want) || s.State[1] != float64(-want) || s.Reward != float64(want)/2 {
			t.Fatalf("slot %d = %+v, want sample %d", i, s, want)
		}
	}
	if avg := testing.AllocsPerRun(100, func() {
		b.Add([]float64{1, 2}, 1, 0.5)
	}); avg != 0 {
		t.Errorf("steady-state Add allocates %.1f times per call, want 0", avg)
	}
}

// TestAddReuseHandlesDimensionChange: a wider state than the evicted slot
// can hold must fall back to a fresh copy, never a truncated one.
func TestAddReuseHandlesDimensionChange(t *testing.T) {
	b := New(2)
	b.Add([]float64{1}, 0, 0)
	b.Add([]float64{2}, 1, 0)
	b.Add([]float64{3, 4, 5}, 2, 0) // evicts the 1-wide slot
	s := b.At(0)
	if len(s.State) != 3 || s.State[0] != 3 || s.State[2] != 5 {
		t.Fatalf("recycled slot = %+v, want the full 3-wide state", s)
	}
	b.Add([]float64{6}, 3, 0) // narrower than the evicted 1-wide slot? slot 1 holds {2}
	if got := b.At(1); len(got.State) != 1 || got.State[0] != 6 {
		t.Fatalf("recycled slot = %+v, want the 1-wide state {6}", got)
	}
}

// TestSampleIntoMatchesSample: SampleInto must perform the same draws from
// the same rng stream as Sample and scatter exactly the same data into the
// column layout.
func TestSampleIntoMatchesSample(t *testing.T) {
	const dim, batch = 3, 17
	build := func() *Buffer {
		b := New(8)
		for i := 0; i < 13; i++ {
			b.Add([]float64{float64(i), float64(2 * i), float64(-i)}, i%5, float64(i)/8)
		}
		return b
	}
	want := build().Sample(rand.New(rand.NewSource(42)), batch, nil)

	states := make([]float64, batch*dim)
	actions := make([]int, batch)
	rewards := make([]float64, batch)
	build().SampleInto(rand.New(rand.NewSource(42)), states, actions, rewards)

	for i := 0; i < batch; i++ {
		if actions[i] != want[i].Action || rewards[i] != want[i].Reward {
			t.Fatalf("draw %d: (action, reward) = (%d, %v), want (%d, %v)", i, actions[i], rewards[i], want[i].Action, want[i].Reward)
		}
		for j := 0; j < dim; j++ {
			if states[i*dim+j] != want[i].State[j] {
				t.Fatalf("draw %d: state[%d] = %v, want %v", i, j, states[i*dim+j], want[i].State[j])
			}
		}
	}
}

// TestSampleIntoValidation: the panics that guard the packed layout.
func TestSampleIntoValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	b := New(4)
	expectPanic("empty buffer", func() {
		b.SampleInto(rng, make([]float64, 2), make([]int, 2), make([]float64, 2))
	})
	b.Add([]float64{1, 2}, 0, 0)
	expectPanic("empty batch", func() {
		b.SampleInto(rng, nil, nil, nil)
	})
	expectPanic("rewards length", func() {
		b.SampleInto(rng, make([]float64, 4), make([]int, 2), make([]float64, 1))
	})
	expectPanic("indivisible matrix", func() {
		b.SampleInto(rng, make([]float64, 5), make([]int, 2), make([]float64, 2))
	})
	expectPanic("dimension mismatch", func() {
		b.SampleInto(rng, make([]float64, 6), make([]int, 2), make([]float64, 2))
	})
}
