package baseline

import (
	"math"
	"math/rand"
	"testing"

	"fedpower/internal/core"
	"fedpower/internal/replay"
)

func TestRawSampleBytes(t *testing.T) {
	// 5 state features + action + reward, 4 bytes each.
	if RawSampleBytes != 28 {
		t.Fatalf("RawSampleBytes = %d, want 28", RawSampleBytes)
	}
}

func TestCentralTrainerAccounting(t *testing.T) {
	tr := NewCentralTrainer(core.Defaults(15), rand.New(rand.NewSource(1)))
	batch := make([]replay.Sample, 10)
	for i := range batch {
		batch[i] = replay.Sample{State: make([]float64, core.StateDim), Action: i % 15, Reward: 0.5}
	}
	tr.Ingest(batch)
	tr.Ingest(batch[:3])
	if tr.SamplesIngested() != 13 {
		t.Fatalf("samples = %d, want 13", tr.SamplesIngested())
	}
	if tr.RawBytesReceived() != 13*RawSampleBytes {
		t.Fatalf("raw bytes = %d, want %d", tr.RawBytesReceived(), 13*RawSampleBytes)
	}
}

func TestCentralTrainerLearnsFromUploads(t *testing.T) {
	// Feed the server a synthetic two-context bandit via raw uploads: it
	// must learn the same mapping an on-device controller would.
	p := core.Defaults(15)
	tr := NewCentralTrainer(p, rand.New(rand.NewSource(2)))
	rng := rand.New(rand.NewSource(3))
	ctx0 := []float64{0.1, 0.2, 0.9, 0.05, 0.1}
	ctx1 := []float64{0.9, 0.7, 0.2, 0.25, 0.8}

	batch := make([]replay.Sample, 0, 100)
	for round := 0; round < 40; round++ {
		batch = batch[:0]
		for i := 0; i < 100; i++ {
			state, best := ctx0, 3
			if i%2 == 1 {
				state, best = ctx1, 11
			}
			action := rng.Intn(15)
			r := 1 - 0.15*math.Abs(float64(action-best)) + rng.NormFloat64()*0.02
			batch = append(batch, replay.Sample{State: state, Action: action, Reward: r})
		}
		tr.Ingest(batch)
	}
	if got := tr.Controller().GreedyAction(ctx0); got < 2 || got > 4 {
		t.Errorf("context 0 greedy %d, want near 3", got)
	}
	if got := tr.Controller().GreedyAction(ctx1); got < 10 || got > 12 {
		t.Errorf("context 1 greedy %d, want near 11", got)
	}
}

func TestCentralPolicyIsLive(t *testing.T) {
	tr := NewCentralTrainer(core.Defaults(15), rand.New(rand.NewSource(4)))
	p1 := append([]float64(nil), tr.Policy()...)
	batch := make([]replay.Sample, 20)
	for i := range batch {
		batch[i] = replay.Sample{State: make([]float64, core.StateDim), Action: 0, Reward: 1}
	}
	tr.Ingest(batch) // 20 samples = one H-interval: an update fires
	changed := false
	for i, v := range tr.Policy() {
		if v != p1[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("server-side training did not move the policy")
	}
}
