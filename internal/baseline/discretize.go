// Package baseline implements the state-of-the-art comparison point of
// §IV-B: Profit, a table-based RL power controller (Chen et al., TCAD 2018),
// extended with CollabPolicy, the privacy-preserving multi-device knowledge
// sharing of Tian et al. (TCAD 2019). Together they form the
// Profit+CollabPolicy baseline the paper's federated neural controller is
// measured against.
//
// Tabular RL requires a discrete state space, so continuous counter readings
// are binned — the representational limitation (no generalisation across
// states) that the paper argues NNs overcome.
package baseline

import (
	"fmt"

	"fedpower/internal/sim"
)

// StateKey is Profit's discretised agent state: the current V/f level and
// binned power, IPC and MPKI readings (§IV-B: "the state of the agent is
// composed of the current frequency, power consumption, IPC and MPKI").
// It is comparable, so it can key Go maps directly.
type StateKey struct {
	F    uint8 // V/f level index
	P    uint8 // power bin
	IPC  uint8 // IPC bin
	MPKI uint8 // MPKI bin
}

// String renders the key for diagnostics.
func (k StateKey) String() string {
	return fmt.Sprintf("f%d/p%d/i%d/m%d", k.F, k.P, k.IPC, k.MPKI)
}

// Discretizer maps continuous observations onto StateKeys with uniform bins
// over fixed platform ranges.
type Discretizer struct {
	PowerBins int     // number of power bins
	PowerMaxW float64 // power range upper bound
	IPCBins   int
	IPCMax    float64
	MPKIBins  int
	MPKIMax   float64
}

// DefaultDiscretizer returns the binning used for the baseline on the
// Jetson Nano model: 12 power bins over 0–1.5 W, 8 IPC bins over 0–2, and 8
// MPKI bins over 0–30, giving 15·12·8·8 = 11520 possible states — fine
// enough to resolve the control decision, coarse enough that the training
// budget populates a useful fraction of it.
func DefaultDiscretizer() Discretizer {
	return Discretizer{
		PowerBins: 12, PowerMaxW: 1.5,
		IPCBins: 8, IPCMax: 2.0,
		MPKIBins: 8, MPKIMax: 30,
	}
}

// NumStates returns the size of the discrete state space for a processor
// with k V/f levels.
func (d Discretizer) NumStates(k int) int {
	return k * d.PowerBins * d.IPCBins * d.MPKIBins
}

func bin(x, max float64, bins int) uint8 {
	if x <= 0 {
		return 0
	}
	b := int(x / max * float64(bins))
	if b >= bins {
		b = bins - 1
	}
	return uint8(b)
}

// Key discretises an observation.
func (d Discretizer) Key(obs sim.Observation) StateKey {
	return StateKey{
		F:    uint8(obs.Level),
		P:    bin(obs.PowerW, d.PowerMaxW, d.PowerBins),
		IPC:  bin(obs.IPC, d.IPCMax, d.IPCBins),
		MPKI: bin(obs.MPKI, d.MPKIMax, d.MPKIBins),
	}
}
