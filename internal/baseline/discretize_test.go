package baseline

import (
	"testing"

	"fedpower/internal/sim"
)

func TestDefaultDiscretizerShape(t *testing.T) {
	d := DefaultDiscretizer()
	if got := d.NumStates(15); got != 15*12*8*8 {
		t.Fatalf("NumStates = %d, want %d", got, 15*12*8*8)
	}
}

func TestBinEdges(t *testing.T) {
	cases := []struct {
		x, max float64
		bins   int
		want   uint8
	}{
		{-1, 10, 5, 0},  // below range clamps to 0
		{0, 10, 5, 0},   // lower edge
		{1.9, 10, 5, 0}, // inside first bin
		{2.0, 10, 5, 1}, // bin boundary belongs to the next bin
		{9.9, 10, 5, 4},
		{10, 10, 5, 4}, // upper edge clamps to last bin
		{99, 10, 5, 4}, // above range clamps
	}
	for _, c := range cases {
		if got := bin(c.x, c.max, c.bins); got != c.want {
			t.Errorf("bin(%v, %v, %d) = %d, want %d", c.x, c.max, c.bins, got, c.want)
		}
	}
}

func TestKeyFields(t *testing.T) {
	d := DefaultDiscretizer()
	obs := sim.Observation{
		Level:  7,
		PowerW: 0.59, // 0.59/1.5·12 = 4.72 -> bin 4
		IPC:    1.1,  // 1.1/2·8 = 4.4 -> bin 4
		MPKI:   22,   // 22/30·8 = 5.87 -> bin 5
	}
	key := d.Key(obs)
	if key.F != 7 {
		t.Errorf("F = %d, want 7", key.F)
	}
	if key.P != 4 {
		t.Errorf("P = %d, want 4", key.P)
	}
	if key.IPC != 4 {
		t.Errorf("IPC = %d, want 4", key.IPC)
	}
	if key.MPKI != 5 {
		t.Errorf("MPKI = %d, want 5", key.MPKI)
	}
}

func TestKeyStaysInRange(t *testing.T) {
	d := DefaultDiscretizer()
	extremes := []sim.Observation{
		{Level: 0, PowerW: 0, IPC: 0, MPKI: 0},
		{Level: 14, PowerW: 99, IPC: 99, MPKI: 999},
	}
	for _, obs := range extremes {
		k := d.Key(obs)
		if int(k.P) >= d.PowerBins || int(k.IPC) >= d.IPCBins || int(k.MPKI) >= d.MPKIBins {
			t.Errorf("key %v out of bin ranges", k)
		}
	}
}

func TestKeyIsMapUsable(t *testing.T) {
	// StateKeys must work as map keys: equal observations collide, distinct
	// bins do not.
	d := DefaultDiscretizer()
	m := map[StateKey]int{}
	a := sim.Observation{Level: 3, PowerW: 0.5, IPC: 1.0, MPKI: 5}
	b := sim.Observation{Level: 3, PowerW: 0.51, IPC: 1.01, MPKI: 5.2} // same bins
	c := sim.Observation{Level: 4, PowerW: 0.5, IPC: 1.0, MPKI: 5}
	m[d.Key(a)]++
	m[d.Key(b)]++
	m[d.Key(c)]++
	if len(m) != 2 {
		t.Fatalf("expected 2 distinct keys, got %d", len(m))
	}
	if m[d.Key(a)] != 2 {
		t.Fatal("near-identical observations landed in different bins")
	}
}

func TestKeyString(t *testing.T) {
	k := StateKey{F: 1, P: 2, IPC: 3, MPKI: 4}
	if got := k.String(); got != "f1/p2/i3/m4" {
		t.Fatalf("String = %q", got)
	}
}
