package baseline

import (
	"math/rand"

	"fedpower/internal/core"
	"fedpower/internal/replay"
)

// CentralTrainer implements the server-side learning architecture the paper
// contrasts itself against (Pan et al., ICCAD 2014 — reference [7]): every
// device uploads its raw (state, action, reward) interaction samples to a
// central server, which trains a single policy network on the merged stream
// and distributes it back.
//
// Learning-wise this architecture sees strictly more data than federated
// averaging (no model-averaging information loss). Its cost is privacy: the
// uploaded performance-counter and power traces are exactly the side
// channel the paper cites (device/user activity inference, power-analysis
// attacks). RawBytesReceived quantifies that exposure so the privacy
// experiment can report "reward parity at N bytes of leaked traces".
type CentralTrainer struct {
	ctrl *core.Controller

	samplesIngested int
	rawBytes        int64
}

// RawSampleBytes is the on-wire footprint of one uploaded interaction
// sample in the float32 representation used by the transports: five state
// features, one action index, one reward.
const RawSampleBytes = 4 * (core.StateDim + 1 + 1)

// NewCentralTrainer builds the server-side trainer with the same
// hyper-parameters as the on-device controllers.
func NewCentralTrainer(p core.Params, rng *rand.Rand) *CentralTrainer {
	return &CentralTrainer{ctrl: core.NewController(p, rng)}
}

// Ingest folds a device's uploaded samples into the server-side replay
// buffer, running the controller's usual every-H-samples update schedule,
// and accounts the raw bytes that crossed the device boundary.
func (t *CentralTrainer) Ingest(samples []replay.Sample) {
	for _, s := range samples {
		t.ctrl.Observe(s.State, s.Action, s.Reward)
	}
	t.samplesIngested += len(samples)
	t.rawBytes += int64(len(samples) * RawSampleBytes)
}

// Policy returns the current central model parameters (the live slice; copy
// to retain).
func (t *CentralTrainer) Policy() []float64 { return t.ctrl.ModelParams() }

// Controller exposes the underlying controller for diagnostics.
func (t *CentralTrainer) Controller() *core.Controller { return t.ctrl }

// SamplesIngested returns the total number of raw samples uploaded.
func (t *CentralTrainer) SamplesIngested() int { return t.samplesIngested }

// RawBytesReceived returns the total bytes of raw trace data that left the
// devices — the privacy exposure of this architecture. The federated
// protocol's equivalent figure is zero.
func (t *CentralTrainer) RawBytesReceived() int64 { return t.rawBytes }
