package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fedpower/internal/sim"
)

// ProfitParams configures the tabular Profit agent as described in §IV-B.
type ProfitParams struct {
	// LearningRate is the table update step size (paper: 0.1, "a typical
	// value for table-based approaches").
	LearningRate float64
	// EpsilonMax/EpsilonDecay/EpsilonMin drive the ε-greedy exploration
	// schedule, exponentially decayed per step with a 0.01 floor (paper:
	// "exploration follows an ε-greedy strategy with exponential decay and
	// we set the minimum value to 0.01").
	EpsilonMax   float64
	EpsilonDecay float64
	EpsilonMin   float64
	// PCritW is the power constraint shared with our technique.
	PCritW float64
	// IPSNorm scales instructions-per-second into a unit reward so the
	// positive branch of the reward is comparable in magnitude to the
	// penalty branch.
	IPSNorm float64
	// Actions is the number of V/f levels.
	Actions int
	// Disc bins the continuous observations.
	Disc Discretizer
}

// DefaultProfitParams returns the baseline configuration used in the
// reproduction for a processor with the given number of V/f levels.
func DefaultProfitParams(actions int) ProfitParams {
	return ProfitParams{
		LearningRate: 0.1,
		EpsilonMax:   1.0,
		EpsilonDecay: 0.0005,
		EpsilonMin:   0.01,
		PCritW:       0.6,
		IPSNorm:      2.0e9,
		Actions:      actions,
		Disc:         DefaultDiscretizer(),
	}
}

// Validate reports the first inconsistency in the parameters.
func (p ProfitParams) Validate() error {
	switch {
	case p.LearningRate <= 0 || p.LearningRate > 1:
		return fmt.Errorf("baseline: learning rate %v out of (0,1]", p.LearningRate)
	case p.EpsilonMax <= 0 || p.EpsilonMin <= 0 || p.EpsilonMin > p.EpsilonMax:
		return fmt.Errorf("baseline: epsilon range [%v, %v] invalid", p.EpsilonMin, p.EpsilonMax)
	case p.EpsilonDecay < 0:
		return fmt.Errorf("baseline: epsilon decay %v negative", p.EpsilonDecay)
	case p.PCritW <= 0:
		return fmt.Errorf("baseline: power constraint %v must be positive", p.PCritW)
	case p.IPSNorm <= 0:
		return fmt.Errorf("baseline: IPS normaliser %v must be positive", p.IPSNorm)
	case p.Actions <= 1:
		return fmt.Errorf("baseline: action count %d must exceed 1", p.Actions)
	}
	return nil
}

// cell is one table entry: the running value estimate and visit count for a
// (state, action) pair.
type cell struct {
	q float64
	n int
}

// Profit is the table-based RL power controller: a value table over
// discretised states, ε-greedy exploration, and the Profit reward — IPS when
// the power constraint holds, a -5·|P_crit − P| penalty otherwise.
type Profit struct {
	P     ProfitParams
	table map[StateKey][]cell
	step  int
	rng   *rand.Rand
}

// NewProfit builds an agent with an empty value table. It panics on invalid
// parameters.
func NewProfit(p ProfitParams, rng *rand.Rand) *Profit {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Profit{P: p, table: make(map[StateKey][]cell), rng: rng}
}

// Reward computes the Profit reward for an observation: normalised IPS if
// the power constraint holds, otherwise -5·|P_crit − P|.
func (a *Profit) Reward(obs sim.Observation) float64 {
	if obs.PowerW <= a.P.PCritW {
		ips := obs.IPC * obs.FreqMHz * 1e6
		return ips / a.P.IPSNorm
	}
	return -5 * math.Abs(a.P.PCritW-obs.PowerW)
}

// Epsilon returns the current exploration rate
// max(ε_min, ε_max·exp(-decay·t)).
func (a *Profit) Epsilon() float64 {
	eps := a.P.EpsilonMax * math.Exp(-a.P.EpsilonDecay*float64(a.step))
	if eps < a.P.EpsilonMin {
		eps = a.P.EpsilonMin
	}
	return eps
}

// Step returns the number of observations recorded.
func (a *Profit) Step() int { return a.step }

// States returns the number of distinct states visited so far.
func (a *Profit) States() int { return len(a.table) }

func (a *Profit) row(s StateKey) []cell {
	row, ok := a.table[s]
	if !ok {
		row = make([]cell, a.P.Actions)
		a.table[s] = row
	}
	return row
}

// SelectAction picks the next V/f level ε-greedily for state s.
func (a *Profit) SelectAction(s StateKey) int {
	if a.rng.Float64() < a.Epsilon() {
		return a.rng.Intn(a.P.Actions)
	}
	return a.GreedyAction(s)
}

// GreedyAction returns the table argmax for s. Unvisited actions have value
// 0, which sits between the positive performance rewards and the negative
// violation penalties — so an unvisited action is preferred over a known-bad
// one but not over a known-good one.
func (a *Profit) GreedyAction(s StateKey) int {
	row, ok := a.table[s]
	if !ok {
		// Never-seen state: the table carries no information, so hold the
		// current frequency (encoded in the state) rather than jump — the
		// non-generalising behaviour that distinguishes tabular RL from the
		// neural policy.
		return int(s.F)
	}
	best := 0
	for i := 1; i < len(row); i++ {
		if row[i].q > row[best].q {
			best = i
		}
	}
	return best
}

// Observe folds the reward for (s, action) into the table with the running
// update Q ← Q + α·(r − Q) and advances the exploration schedule.
func (a *Profit) Observe(s StateKey, action int, reward float64) {
	if action < 0 || action >= a.P.Actions {
		panic(fmt.Sprintf("baseline: action %d out of range [0,%d)", action, a.P.Actions))
	}
	row := a.row(s)
	row[action].q += a.P.LearningRate * (reward - row[action].q)
	row[action].n++
	a.step++
}

// StateStats returns the visit-weighted mean value and total visit count of
// state s — the (r̄(s), n(s)) pair CollabPolicy shares with the server.
func (a *Profit) StateStats(s StateKey) (avg float64, n int) {
	row, ok := a.table[s]
	if !ok {
		return 0, 0
	}
	sum := 0.0
	for _, c := range row {
		sum += c.q * float64(c.n)
		n += c.n
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// VisitedStates returns the keys of all states with at least one
// observation, in the canonical state order — deterministic, so callers
// may fold over it directly.
func (a *Profit) VisitedStates() []StateKey {
	keys := make([]StateKey, 0, len(a.table))
	for k := range a.table {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lessStateKey(keys[i], keys[j]) })
	return keys
}
