package baseline

import (
	"math"
	"math/rand"
	"testing"

	"fedpower/internal/sim"
)

func newTestProfit(t *testing.T) *Profit {
	t.Helper()
	return NewProfit(DefaultProfitParams(15), rand.New(rand.NewSource(1)))
}

func TestDefaultProfitParamsMatchPaper(t *testing.T) {
	p := DefaultProfitParams(15)
	if p.LearningRate != 0.1 {
		t.Errorf("learning rate %v, want 0.1 (§IV-B)", p.LearningRate)
	}
	if p.EpsilonMin != 0.01 {
		t.Errorf("epsilon min %v, want 0.01 (§IV-B)", p.EpsilonMin)
	}
	if p.PCritW != 0.6 {
		t.Errorf("P_crit %v, want 0.6", p.PCritW)
	}
}

func TestProfitParamsValidate(t *testing.T) {
	if err := DefaultProfitParams(15).Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	mutations := []func(*ProfitParams){
		func(p *ProfitParams) { p.LearningRate = 0 },
		func(p *ProfitParams) { p.LearningRate = 1.5 },
		func(p *ProfitParams) { p.EpsilonMax = 0 },
		func(p *ProfitParams) { p.EpsilonMin = 0 },
		func(p *ProfitParams) { p.EpsilonMin = 2 },
		func(p *ProfitParams) { p.EpsilonDecay = -1 },
		func(p *ProfitParams) { p.PCritW = 0 },
		func(p *ProfitParams) { p.IPSNorm = 0 },
		func(p *ProfitParams) { p.Actions = 1 },
	}
	for i, mutate := range mutations {
		p := DefaultProfitParams(15)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestProfitRewardBranches(t *testing.T) {
	a := newTestProfit(t)
	// Under the constraint: normalised IPS.
	obs := sim.Observation{PowerW: 0.5, IPC: 1.0, FreqMHz: 1000}
	want := 1.0 * 1000 * 1e6 / a.P.IPSNorm
	if got := a.Reward(obs); math.Abs(got-want) > 1e-12 {
		t.Errorf("reward under constraint = %v, want %v", got, want)
	}
	// Violation: -5·|P_crit - P| (§IV-B).
	obs = sim.Observation{PowerW: 0.8, IPC: 1.0, FreqMHz: 1000}
	if got := a.Reward(obs); math.Abs(got-(-5*0.2)) > 1e-12 {
		t.Errorf("violation reward = %v, want -1", got)
	}
}

func TestProfitEpsilonSchedule(t *testing.T) {
	a := newTestProfit(t)
	if a.Epsilon() != 1.0 {
		t.Fatalf("initial epsilon %v, want 1", a.Epsilon())
	}
	s := StateKey{}
	for i := 0; i < 1000; i++ {
		a.Observe(s, 0, 0.5)
	}
	want := math.Exp(-0.0005 * 1000)
	if math.Abs(a.Epsilon()-want) > 1e-9 {
		t.Fatalf("epsilon after 1000 steps = %v, want %v", a.Epsilon(), want)
	}
	for i := 0; i < 20000; i++ {
		a.Observe(s, 0, 0.5)
	}
	if a.Epsilon() != 0.01 {
		t.Fatalf("epsilon floor = %v, want 0.01", a.Epsilon())
	}
}

func TestProfitObserveUpdatesTable(t *testing.T) {
	a := newTestProfit(t)
	s := StateKey{F: 3}
	a.Observe(s, 5, 1.0)
	// Q = 0 + 0.1·(1 - 0) = 0.1
	if got := a.GreedyAction(s); got != 5 {
		t.Fatalf("greedy after one positive observation = %d, want 5", got)
	}
	a.Observe(s, 5, 1.0)
	// Q = 0.1 + 0.1·(1 - 0.1) = 0.19
	avg, n := a.StateStats(s)
	if n != 2 {
		t.Fatalf("visits = %d, want 2", n)
	}
	if math.Abs(avg-0.19) > 1e-12 {
		t.Fatalf("state value = %v, want 0.19", avg)
	}
}

func TestProfitGreedyUnseenStateHoldsFrequency(t *testing.T) {
	// On a never-visited state the table is empty; the agent holds the
	// current V/f level (part of the state) instead of jumping blindly.
	a := newTestProfit(t)
	if got := a.GreedyAction(StateKey{F: 9, P: 7}); got != 9 {
		t.Fatalf("unseen-state greedy = %d, want current level 9", got)
	}
	if got := a.GreedyAction(StateKey{F: 2}); got != 2 {
		t.Fatalf("unseen-state greedy = %d, want current level 2", got)
	}
}

func TestProfitGreedyPrefersUnexploredOverBad(t *testing.T) {
	a := newTestProfit(t)
	s := StateKey{}
	a.Observe(s, 0, -2) // known-bad action
	got := a.GreedyAction(s)
	if got == 0 {
		t.Fatal("greedy picked the known-bad action over unexplored ones")
	}
}

func TestProfitObserveBadActionPanics(t *testing.T) {
	a := newTestProfit(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Observe with out-of-range action did not panic")
		}
	}()
	a.Observe(StateKey{}, 15, 0)
}

func TestProfitLearnsBestActionPerState(t *testing.T) {
	a := newTestProfit(t)
	rng := rand.New(rand.NewSource(2))
	s1, s2 := StateKey{F: 1}, StateKey{F: 9}
	for i := 0; i < 5000; i++ {
		s, best := s1, 4
		if i%2 == 1 {
			s, best = s2, 12
		}
		act := a.SelectAction(s)
		r := 1 - 0.2*math.Abs(float64(act-best)) + rng.NormFloat64()*0.05
		a.Observe(s, act, r)
	}
	if got := a.GreedyAction(s1); got < 3 || got > 5 {
		t.Errorf("state 1 greedy %d, want near 4", got)
	}
	if got := a.GreedyAction(s2); got < 11 || got > 13 {
		t.Errorf("state 2 greedy %d, want near 12", got)
	}
	if a.States() != 2 {
		t.Errorf("visited states = %d, want 2", a.States())
	}
}

func TestProfitStateStatsUnseen(t *testing.T) {
	a := newTestProfit(t)
	avg, n := a.StateStats(StateKey{F: 5})
	if avg != 0 || n != 0 {
		t.Fatalf("unseen state stats (%v, %d), want (0, 0)", avg, n)
	}
}

func TestProfitVisitedStates(t *testing.T) {
	a := newTestProfit(t)
	a.Observe(StateKey{F: 1}, 0, 0.5)
	a.Observe(StateKey{F: 2}, 0, 0.5)
	a.Observe(StateKey{F: 1}, 1, 0.5)
	keys := a.VisitedStates()
	if len(keys) != 2 {
		t.Fatalf("VisitedStates returned %d keys, want 2", len(keys))
	}
}
