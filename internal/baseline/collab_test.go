package baseline

import (
	"math"
	"math/rand"
	"testing"
)

func newTestCollab(t *testing.T, seed int64) *Collab {
	t.Helper()
	return NewCollab(NewProfit(DefaultProfitParams(15), rand.New(rand.NewSource(seed))))
}

func TestSummaryReflectsLocalTable(t *testing.T) {
	c := newTestCollab(t, 1)
	s := StateKey{F: 2}
	c.Observe(s, 3, 1.0)
	c.Observe(s, 3, 1.0)
	sum := c.Summary()
	e, ok := sum[s]
	if !ok {
		t.Fatal("visited state missing from summary")
	}
	if e.Best != 3 {
		t.Errorf("summary best = %d, want 3", e.Best)
	}
	if e.Visits != 2 {
		t.Errorf("summary visits = %d, want 2", e.Visits)
	}
	if math.Abs(e.AvgReward-0.19) > 1e-12 { // 0.1, then 0.19 running value
		t.Errorf("summary avg = %v, want 0.19", e.AvgReward)
	}
}

func TestAggregateWeightedMean(t *testing.T) {
	s := StateKey{F: 1}
	sums := []LocalSummary{
		{s: {Best: 2, AvgReward: 1.0, Visits: 1}},
		{s: {Best: 8, AvgReward: 0.0, Visits: 3}},
	}
	g := Aggregate(sums)
	e := g[s]
	// Visit-weighted mean: (1·1 + 0·3)/4 = 0.25.
	if math.Abs(e.AvgReward-0.25) > 1e-12 {
		t.Errorf("aggregated avg = %v, want 0.25", e.AvgReward)
	}
	if e.Visits != 4 {
		t.Errorf("aggregated visits = %d, want 4", e.Visits)
	}
	// Best action from the contributor with the higher own average (the
	// first one), not the more-visited one.
	if e.Best != 2 {
		t.Errorf("aggregated best = %d, want 2 (strongest contributor)", e.Best)
	}
}

func TestAggregateDisjointStates(t *testing.T) {
	s1, s2 := StateKey{F: 1}, StateKey{F: 2}
	g := Aggregate([]LocalSummary{
		{s1: {Best: 1, AvgReward: 0.5, Visits: 2}},
		{s2: {Best: 9, AvgReward: 0.7, Visits: 5}},
	})
	if len(g) != 2 {
		t.Fatalf("aggregated %d states, want 2", len(g))
	}
	if g[s1].Best != 1 || g[s2].Best != 9 {
		t.Fatal("disjoint states not preserved")
	}
}

func TestAggregateOrderIndependent(t *testing.T) {
	s := StateKey{F: 3}
	a := LocalSummary{s: {Best: 1, AvgReward: 0.9, Visits: 2}}
	b := LocalSummary{s: {Best: 7, AvgReward: 0.3, Visits: 6}}
	g1 := Aggregate([]LocalSummary{a, b})[s]
	g2 := Aggregate([]LocalSummary{b, a})[s]
	if g1.Best != g2.Best || math.Abs(g1.AvgReward-g2.AvgReward) > 1e-12 || g1.Visits != g2.Visits {
		t.Fatalf("aggregation order-dependent: %+v vs %+v", g1, g2)
	}
}

func TestAggregateEmpty(t *testing.T) {
	if g := Aggregate(nil); len(g) != 0 {
		t.Fatal("empty aggregate not empty")
	}
}

func TestSetGlobalCopies(t *testing.T) {
	c := newTestCollab(t, 1)
	s := StateKey{F: 4}
	g := map[StateKey]GlobalEntry{s: {Best: 5, AvgReward: 0.8, Visits: 3}}
	c.SetGlobal(g)
	g[s] = GlobalEntry{Best: 0, AvgReward: -1, Visits: 1}
	if c.GlobalSize() != 1 {
		t.Fatal("global size mismatch")
	}
	if got := c.GreedyAction(s); got != 5 {
		t.Fatalf("mutation of the caller's map leaked into the device copy: greedy %d", got)
	}
}

func TestGreedyPrefersGlobalWhenLocalWeaker(t *testing.T) {
	c := newTestCollab(t, 1)
	s := StateKey{F: 6}
	// Local knows this state poorly: avg reward 0.01.
	c.Observe(s, 2, 0.1) // Q[2] = 0.01... (0.1·0.1)
	c.SetGlobal(map[StateKey]GlobalEntry{s: {Best: 11, AvgReward: 0.9, Visits: 50}})
	if got := c.GreedyAction(s); got != 11 {
		t.Fatalf("greedy = %d, want global best 11", got)
	}
}

func TestGreedyPrefersLocalWhenStronger(t *testing.T) {
	c := newTestCollab(t, 1)
	s := StateKey{F: 6}
	for i := 0; i < 50; i++ {
		c.Observe(s, 4, 1.0) // local value approaches 1
	}
	c.SetGlobal(map[StateKey]GlobalEntry{s: {Best: 11, AvgReward: 0.2, Visits: 50}})
	if got := c.GreedyAction(s); got != 4 {
		t.Fatalf("greedy = %d, want local best 4", got)
	}
}

func TestGreedyGlobalOnUnvisitedLocalState(t *testing.T) {
	c := newTestCollab(t, 1)
	s := StateKey{F: 9}
	c.SetGlobal(map[StateKey]GlobalEntry{s: {Best: 13, AvgReward: 0.5, Visits: 10}})
	if got := c.GreedyAction(s); got != 13 {
		t.Fatalf("greedy on locally unknown state = %d, want global 13", got)
	}
}

func TestGreedyFallsBackToLocalWithoutGlobal(t *testing.T) {
	c := newTestCollab(t, 1)
	s := StateKey{F: 9}
	c.Observe(s, 6, 1.0)
	if got := c.GreedyAction(s); got != 6 {
		t.Fatalf("greedy without global entry = %d, want local 6", got)
	}
}

func TestSelectActionExploresAtHighEpsilon(t *testing.T) {
	c := newTestCollab(t, 5)
	s := StateKey{}
	c.SetGlobal(map[StateKey]GlobalEntry{s: {Best: 7, AvgReward: 1, Visits: 1}})
	seen := map[int]bool{}
	for i := 0; i < 300; i++ {
		seen[c.SelectAction(s)] = true // epsilon starts at 1: uniform
	}
	if len(seen) < 10 {
		t.Fatalf("exploration touched only %d/15 actions at epsilon 1", len(seen))
	}
}

func TestKnowledgeTransferEndToEnd(t *testing.T) {
	// Device A learns state sA well, device B learns sB well; after one
	// aggregation both devices act correctly on BOTH states — the core
	// CollabPolicy promise.
	devA := newTestCollab(t, 10)
	devB := newTestCollab(t, 11)
	sA, sB := StateKey{F: 2}, StateKey{F: 12}
	for i := 0; i < 100; i++ {
		devA.Observe(sA, 3, 1.0)
		devB.Observe(sB, 10, 1.0)
	}
	global := Aggregate([]LocalSummary{devA.Summary(), devB.Summary()})
	devA.SetGlobal(global)
	devB.SetGlobal(global)

	if got := devA.GreedyAction(sB); got != 10 {
		t.Errorf("device A on B's state: %d, want 10", got)
	}
	if got := devB.GreedyAction(sA); got != 3 {
		t.Errorf("device B on A's state: %d, want 3", got)
	}
	// Own expertise is retained.
	if got := devA.GreedyAction(sA); got != 3 {
		t.Errorf("device A lost its own knowledge: %d", got)
	}
}

func TestSortedStatesDeterministic(t *testing.T) {
	g := map[StateKey]GlobalEntry{
		{F: 2, P: 1}:         {},
		{F: 1, P: 9}:         {},
		{F: 1, P: 1, IPC: 3}: {},
		{F: 1, P: 1, IPC: 1}: {},
	}
	a := SortedStates(g)
	b := SortedStates(g)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SortedStates not deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		prev, cur := a[i-1], a[i]
		if prev.F > cur.F {
			t.Fatal("not sorted by F")
		}
	}
}
