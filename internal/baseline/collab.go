package baseline

import "sort"

// CollabPolicy extends Profit with the privacy-preserving multi-device
// knowledge sharing of §IV-B (after Tian et al.): each device keeps its
// local value table and, in addition, a copy of a global policy represented
// per state by the tuple (π*(s), r̄(s), n(s)) — best action, average reward,
// visit count. Only these policy tuples travel to the server, never raw
// traces, mirroring the privacy property of the paper's technique.
//
// Action selection consults the local table when the local average reward
// for the current state beats the global average (the device knows this
// state better than the collective), and the global best action otherwise.

// GlobalEntry is the global policy's knowledge about one state.
type GlobalEntry struct {
	Best      int     // π*(s): best action
	AvgReward float64 // r̄(s): visit-weighted average reward
	Visits    int     // n(s): total visit count
}

// LocalSummary is what one device uploads after a round of local
// optimisation: its per-state best action, average reward and visit count.
type LocalSummary map[StateKey]GlobalEntry

// Collab wraps a Profit agent with the global-policy machinery.
type Collab struct {
	Local  *Profit
	global map[StateKey]GlobalEntry
}

// NewCollab wraps local with an empty global policy.
func NewCollab(local *Profit) *Collab {
	return &Collab{Local: local, global: make(map[StateKey]GlobalEntry)}
}

// SetGlobal installs the global policy distributed by the server at the
// start of a round. The map is copied.
func (c *Collab) SetGlobal(g map[StateKey]GlobalEntry) {
	c.global = make(map[StateKey]GlobalEntry, len(g))
	for k, v := range g {
		c.global[k] = v
	}
}

// GlobalSize returns the number of states in the device's copy of the
// global policy.
func (c *Collab) GlobalSize() int { return len(c.global) }

// useGlobal decides, for state s, whether the global policy should be
// consulted: yes when a global entry exists and its average reward exceeds
// the local one ("when the average reward for the current state is higher
// under the local policy, it will consult the local policy, otherwise, the
// global policy").
func (c *Collab) useGlobal(s StateKey) (GlobalEntry, bool) {
	g, ok := c.global[s]
	if !ok {
		return GlobalEntry{}, false
	}
	localAvg, n := c.Local.StateStats(s)
	if n == 0 {
		return g, true
	}
	if localAvg >= g.AvgReward {
		return GlobalEntry{}, false
	}
	return g, true
}

// SelectAction picks the training-time action: ε-greedy exploration on top
// of the local-vs-global policy choice.
func (c *Collab) SelectAction(s StateKey) int {
	if c.Local.rng.Float64() < c.Local.Epsilon() {
		return c.Local.rng.Intn(c.Local.P.Actions)
	}
	return c.GreedyAction(s)
}

// GreedyAction returns the exploitation choice used during evaluation.
func (c *Collab) GreedyAction(s StateKey) int {
	if g, ok := c.useGlobal(s); ok {
		return g.Best
	}
	return c.Local.GreedyAction(s)
}

// Observe feeds the interaction into the local table only; the global
// policy is read-only on the device and refreshed by the server.
func (c *Collab) Observe(s StateKey, action int, reward float64) {
	c.Local.Observe(s, action, reward)
}

// Summary builds the device's upload for the aggregation server.
func (c *Collab) Summary() LocalSummary {
	out := make(LocalSummary, c.Local.States())
	for _, s := range c.Local.VisitedStates() {
		avg, n := c.Local.StateStats(s)
		if n == 0 {
			continue
		}
		out[s] = GlobalEntry{
			Best:      c.Local.GreedyAction(s),
			AvgReward: avg,
			Visits:    n,
		}
	}
	return out
}

// Aggregate merges the devices' local summaries into the next global
// policy: per state, the average reward is the visit-weighted mean across
// devices, the visit count is the sum, and the best action is taken from
// the device reporting the highest average reward for that state (the most
// successful experience wins). Each summary is folded in sorted state
// order: the float accumulation and the best-action tie-break would
// otherwise depend on map iteration order (the maporder analyzer proves
// this stays true).
func Aggregate(summaries []LocalSummary) map[StateKey]GlobalEntry {
	type acc struct {
		weighted float64 // Σ r̄_i·n_i
		visits   int     // Σ n_i
		best     int     // π* of the strongest contributor
		bestAvg  float64 // that contributor's own r̄
		seeded   bool
	}
	accs := make(map[StateKey]*acc)
	for _, sum := range summaries {
		for _, s := range SortedStates(sum) {
			e := sum[s]
			a, ok := accs[s]
			if !ok {
				a = &acc{}
				accs[s] = a
			}
			a.weighted += e.AvgReward * float64(e.Visits)
			a.visits += e.Visits
			if !a.seeded || e.AvgReward > a.bestAvg {
				a.best, a.bestAvg, a.seeded = e.Best, e.AvgReward, true
			}
		}
	}
	global := make(map[StateKey]GlobalEntry, len(accs))
	for _, s := range sortedKeys(accs) {
		a := accs[s]
		avg := 0.0
		if a.visits > 0 {
			avg = a.weighted / float64(a.visits)
		}
		global[s] = GlobalEntry{Best: a.best, AvgReward: avg, Visits: a.visits}
	}
	return global
}

// SortedStates returns the global policy's states in a deterministic order,
// for aggregation, tests and reporting.
func SortedStates(g map[StateKey]GlobalEntry) []StateKey {
	return sortedKeys(g)
}

// sortedKeys returns m's keys in the canonical state order, the
// sort-then-range half of every deterministic fold in this package.
func sortedKeys[V any](m map[StateKey]V) []StateKey {
	keys := make([]StateKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lessStateKey(keys[i], keys[j]) })
	return keys
}

// lessStateKey is the canonical ordering of discretized states, shared by
// every sorted-keys helper in the package.
func lessStateKey(a, b StateKey) bool {
	if a.F != b.F {
		return a.F < b.F
	}
	if a.P != b.P {
		return a.P < b.P
	}
	if a.IPC != b.IPC {
		return a.IPC < b.IPC
	}
	return a.MPKI < b.MPKI
}
