package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// NoRand forbids calling the global, package-level generators of math/rand
// (and math/rand/v2): rand.Intn, rand.Float64, rand.Shuffle, rand.Seed and
// friends all consume a process-wide source, so any call makes a run depend
// on everything else that touched that source — and on nothing the
// experiment harness can seed. Replicated runs must be bit-identical
// (internal/experiment/replicate asserts this), so randomness may only flow
// through an injected *rand.Rand built via rand.New(rand.NewSource(seed)).
// Constructing generators (rand.New, rand.NewSource, rand.NewZipf) is
// therefore allowed; drawing from the shared one is not.
type NoRand struct{}

// globalRandFuncs are the package-level functions of math/rand and
// math/rand/v2 that read or reseed the shared process-wide source.
var globalRandFuncs = map[string]bool{
	// math/rand
	"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true,
	// math/rand/v2 additions
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"UintN": true, "Uint32N": true, "Uint64N": true, "Uint": true,
}

func (NoRand) Name() string { return "norand" }

func (NoRand) Doc() string {
	return "forbid the global math/rand source; randomness must be an injected *rand.Rand so runs replicate bit-identically"
}

func (NoRand) Check(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, pkgPath := packageSelector(pkg, call.Fun)
			if sel == nil || (pkgPath != "math/rand" && pkgPath != "math/rand/v2") {
				return true
			}
			if !globalRandFuncs[sel.Sel.Name] {
				return true
			}
			out = append(out, Diagnostic{
				Analyzer: "norand",
				Pos:      pkg.Fset.Position(call.Pos()),
				Message: fmt.Sprintf("call to global rand.%s breaks seeded determinism; inject a *rand.Rand (rand.New(rand.NewSource(seed))) instead",
					sel.Sel.Name),
			})
			return true
		})
	}
	return out
}

// packageSelector returns (sel, importPath) when expr is a selector on an
// imported package (e.g. rand.Intn -> "math/rand"), or (nil, "").
func packageSelector(pkg *Package, expr ast.Expr) (*ast.SelectorExpr, string) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, ""
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return nil, ""
	}
	return sel, pn.Imported().Path()
}
