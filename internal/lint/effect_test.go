package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// effectmodSuite is the analyzer set the testdata/effectmod fixture module
// exercises: the three effect analyzers, with the slotrace fan-out point
// retargeted at the fixture's own par package.
func effectmodSuite() []Analyzer {
	return []Analyzer{
		AllocFree{},
		MapOrder{},
		SlotRace{ForEach: []string{"effectmod/par.ForEach", "effectmod/par.NewPool"}},
	}
}

func loadEffectmod(t *testing.T) (root string, pkgs []*Package) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "effectmod"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err = LoadModule(root)
	if err != nil {
		t.Fatalf("load fixture module: %v", err)
	}
	if len(pkgs) < 4 {
		t.Fatalf("loaded only %d fixture packages, want 4", len(pkgs))
	}
	return root, pkgs
}

// TestEffectAnalyzersGolden pins the three effect analyzers' full output —
// every hop of every path — over the effectmod fixture module. The fixture
// plants: an //fedlint:allocfree root whose allocation hides three calls
// deep next to a capacity-guarded clean root and a dangling directive; a
// map range feeding a float fold and a returned slice next to
// sort-then-range counterparts; ForEach tasks writing a shared counter
// directly and through a helper next to an own-slot counterpart; and an
// ignore directive naming an analyzer that does not exist. Regenerate with
// `go test -run EffectAnalyzersGolden -update ./internal/lint`.
func TestEffectAnalyzersGolden(t *testing.T) {
	root, pkgs := loadEffectmod(t)
	diags := Run(pkgs, effectmodSuite())

	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	got := strings.ReplaceAll(b.String(), root+string(filepath.Separator), "")

	goldenPath := filepath.Join("testdata", "effect.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("effect analyzer output drifted from golden file\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestEffectFixtureShape asserts the semantic content of the fixture run
// independently of exact positions: every planted violation fires in its
// file, every clean counterpart stays silent, and the interprocedural
// findings carry their call-chain paths.
func TestEffectFixtureShape(t *testing.T) {
	_, pkgs := loadEffectmod(t)
	diags := Run(pkgs, effectmodSuite())

	byFile := make(map[string]map[string]int) // base file -> analyzer -> count
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		if byFile[base] == nil {
			byFile[base] = make(map[string]int)
		}
		byFile[base][d.Analyzer]++
	}

	// hotpath.go: the failed proof (with its three-call chain), the
	// dangling directive, and the unknown-analyzer ignore.
	if n := byFile["hotpath.go"]["allocfree"]; n != 2 {
		t.Errorf("hotpath.go allocfree findings = %d, want 2 (failed proof + dangling directive)", n)
	}
	if n := byFile["hotpath.go"]["unusedignore"]; n != 1 {
		t.Errorf("hotpath.go unusedignore findings = %d, want 1 (unknown analyzer name)", n)
	}
	// agg.go: float fold and returned slice; sorted counterparts silent.
	if n := byFile["agg.go"]["maporder"]; n != 2 {
		t.Errorf("agg.go maporder findings = %d, want 2 (float fold + returned slice)", n)
	}
	// fan.go: direct shared write, the helper-hidden one, and the
	// persistent-pool task bound to a shared accumulator.
	if n := byFile["fan.go"]["slotrace"]; n != 3 {
		t.Errorf("fan.go slotrace findings = %d, want 3 (direct write + via helper + pooled task)", n)
	}
	if n := byFile["par.go"]; len(n) != 0 {
		t.Errorf("fixture pool package flagged: %v", n)
	}

	for _, d := range diags {
		switch {
		case d.Analyzer == "allocfree" && strings.Contains(d.Message, "heap allocation"):
			// Root → level1 → level2 → push → append: the chain must walk
			// all three calls before landing on the allocation site.
			if len(d.Path) < 4 {
				t.Errorf("allocfree path too short (%d hops), want the full 3-call chain: %s", len(d.Path), d)
			}
		case d.Analyzer == "maporder":
			if len(d.Path) == 0 {
				t.Errorf("maporder finding without a flow path: %s", d)
			}
		case d.Analyzer == "slotrace" && strings.Contains(d.Message, "bump"):
			if len(d.Path) < 2 {
				t.Errorf("interprocedural slotrace finding lost its effect chain: %s", d)
			}
		}
		for _, clean := range []string{"FillInto", "SortedKeys", "MeanSorted", "ScaleOwnSlot", "ScalePooledOwnSlot"} {
			if strings.Contains(d.Message, clean) {
				t.Errorf("clean counterpart %s flagged: %s", clean, d)
			}
		}
	}
}

// TestEffectRealModuleClean is the theorem the analyzers exist to prove:
// the actual fedpower module is clean under all three — every annotated
// hot path is allocation-free, every map fold is sorted, every ForEach
// task writes only its own slot — with zero //fedlint:ignore escapes.
func TestEffectRealModuleClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(wd)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	mod := NewModule(pkgs)

	// The theorem must not be vacuous: the hot-path roots and the fan-out
	// point must resolve.
	roots, dangling := collectAllocFreeRoots(mod)
	if len(roots) < 9 {
		t.Errorf("only %d //fedlint:allocfree roots found, want the 9 annotated hot paths", len(roots))
	}
	if len(dangling) != 0 {
		t.Errorf("dangling //fedlint:allocfree directives at %v", dangling)
	}

	suite := []Analyzer{
		AllocFree{},
		MapOrder{},
		SlotRace{ForEach: DefaultSlotRaceConfig()},
	}
	for _, a := range suite {
		ma := a.(ModuleAnalyzer)
		for _, d := range ma.CheckModule(mod) {
			t.Errorf("real module not clean under %s:\n%s", a.Name(), d)
		}
	}
}
