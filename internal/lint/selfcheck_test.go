package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepositoryIsLintClean runs the full analyzer suite over this module,
// exactly like `go run ./cmd/fedlint ./...`. It is the regression gate: any
// new global-rand call, wall-clock read in a simulated-time package,
// swallowed wire error, exact float comparison, or unsupervised goroutine
// fails `go test ./...` with the offending position.
func TestRepositoryIsLintClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(wd)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module walker is missing code", len(pkgs))
	}
	diags := Run(pkgs, DefaultSuite())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("%d fedlint finding(s); fix them or add a documented //fedlint:ignore", len(diags))
	}
}

// TestLoadModuleCoversKnownPackages guards the walker itself: if directory
// discovery silently broke, the self-check above would pass vacuously.
func TestLoadModuleCoversKnownPackages(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(wd)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	byPath := make(map[string]*Package)
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	for _, want := range []string{
		"fedpower",
		"fedpower/internal/fed",
		"fedpower/internal/nn",
		"fedpower/internal/sim",
		"fedpower/internal/experiment",
		"fedpower/internal/lint",
		"fedpower/cmd/fedlint",
		"fedpower/cmd/fedpower",
		"fedpower/examples/federation",
	} {
		p, ok := byPath[want]
		if !ok {
			t.Errorf("package %s not loaded", want)
			continue
		}
		if len(p.Files) == 0 {
			t.Errorf("package %s loaded with no files", want)
		}
		if _, err := os.Stat(filepath.Join(p.Dir)); err != nil {
			t.Errorf("package %s dir: %v", want, err)
		}
	}
	if cmdPkg := byPath["fedpower/cmd/fedlint"]; cmdPkg != nil && !cmdPkg.IsCommand() {
		t.Error("cmd/fedlint must classify as a command")
	}
	if libPkg := byPath["fedpower/internal/fed"]; libPkg != nil && libPkg.IsCommand() {
		t.Error("internal/fed must classify as a library")
	}
}
