package lint

import (
	"os"
	"testing"
)

// BenchmarkDefaultSuite measures one full analyzer-suite pass over the real
// module (parse/type-check excluded — LoadModule runs outside the timer).
// This is the number the CI wall-clock budget in scripts/check.sh guards:
// the interprocedural taint pass must stay cheap enough to run on every
// test invocation.
func BenchmarkDefaultSuite(b *testing.B) {
	wd, err := os.Getwd()
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := LoadModule(wd)
	if err != nil {
		b.Fatalf("load module: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := Run(pkgs, DefaultSuite()); len(diags) != 0 {
			b.Fatalf("module not lint-clean during benchmark: %d findings", len(diags))
		}
	}
}

// BenchmarkPrivacyTaint isolates the interprocedural layer: module index
// construction plus taint-graph build and search.
func BenchmarkPrivacyTaint(b *testing.B) {
	wd, err := os.Getwd()
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := LoadModule(wd)
	if err != nil {
		b.Fatalf("load module: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod := NewModule(pkgs)
		if diags := (PrivacyTaint{Config: DefaultPrivacyConfig()}).CheckModule(mod); len(diags) != 0 {
			b.Fatalf("module not taint-clean during benchmark: %d findings", len(diags))
		}
	}
}

// BenchmarkWireBound isolates the interval-bounds layer: module index
// construction plus the hostile-integer fixpoint over every function body
// and the final reporting sweep. Like the other analysis passes it is
// ns/op-gated by scripts/benchdiff.sh (allocations scale with the module
// under analysis, so allocs/op is exempt) — the decode-surface proof must
// stay cheap enough to run on every test invocation.
func BenchmarkWireBound(b *testing.B) {
	wd, err := os.Getwd()
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := LoadModule(wd)
	if err != nil {
		b.Fatalf("load module: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod := NewModule(pkgs)
		if diags := (WireBound{Config: DefaultWireBoundConfig()}).CheckModule(mod); len(diags) != 0 {
			b.Fatalf("module not wirebound-clean during benchmark: %d findings", len(diags))
		}
	}
}

// BenchmarkEffectAnalysis isolates the effect-and-allocation layer added
// on top of the call graph: module index construction plus the allocfree
// proof, the maporder flow search and the slotrace write-effect pass. It
// rides the same benchdiff gate as the taint pass — the static proofs must
// stay cheap enough to run on every test invocation.
func BenchmarkEffectAnalysis(b *testing.B) {
	wd, err := os.Getwd()
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := LoadModule(wd)
	if err != nil {
		b.Fatalf("load module: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod := NewModule(pkgs)
		n := 0
		n += len(AllocFree{}.CheckModule(mod))
		n += len(MapOrder{}.CheckModule(mod))
		n += len(SlotRace{ForEach: DefaultSlotRaceConfig()}.CheckModule(mod))
		if n != 0 {
			b.Fatalf("module not effect-clean during benchmark: %d findings", n)
		}
	}
}
