package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SlotRace enforces the own-slot discipline of the deterministic worker
// pool (par.ForEach): a task closure runs concurrently with its siblings,
// so it may only write state owned by its index — an element of a
// pre-sized slice selected by the task parameter, or state local to the
// closure body. The analyzer checks every function literal passed as the
// task of a configured fan-out function:
//
//   - a direct write (assignment, ++/--, copy/append/delete) whose target
//     is captured state not indexed by the task parameter is a finding;
//   - a call to a function whose interprocedural write-effect summary
//     says it writes through a receiver, parameter or package-level
//     variable is a finding when the corresponding argument expression is
//     captured shared state (own-slot receivers like links[i] are fine);
//   - interface calls check every in-module implementation.
//
// Dynamic calls through function values are assumed read-only: the
// dominant idiom in this repo binds per-variant closures before the
// fan-out and dispatches through a local variable, and those closures are
// themselves checked wherever they are literal tasks. Reads of shared
// state are always allowed — tasks share immutable inputs by design.
//
// Findings carry the write-effect hop chain into the callee, mirroring
// privacytaint's paths.
type SlotRace struct {
	// ForEach lists the fan-out functions (types.Func.FullName form) whose
	// final function-literal argument is an own-slot task: par.ForEach's
	// func(i int) error and par.NewPool's func(i int), which binds the task
	// a persistent pool runs every phase. DefaultSuite installs both.
	ForEach []string
}

// DefaultSlotRaceConfig names the repo's fan-out points: the per-call pool
// and the persistent pool whose task is fixed at construction.
func DefaultSlotRaceConfig() []string {
	return []string{"fedpower/internal/par.ForEach", "fedpower/internal/par.NewPool"}
}

func (SlotRace) Name() string { return "slotrace" }

func (SlotRace) Doc() string {
	return "closures passed to par.ForEach may only write through their own task index: writes to captured shared state (directly or via a callee's write-effect summary) break the deterministic pool contract"
}

// Check analyzes a single package as a one-package module (unit-fixture
// harness); whole-module runs go through CheckModule.
func (s SlotRace) Check(pkg *Package) []Diagnostic {
	return s.CheckModule(NewModule([]*Package{pkg}))
}

// CheckModule finds every task literal passed to a configured fan-out
// function and checks its writes against the own-slot discipline.
func (s SlotRace) CheckModule(mod *Module) []Diagnostic {
	fanout := make(map[*types.Func]bool)
	funcsByName := make(map[string]*types.Func)
	for fn := range mod.funcs {
		funcsByName[fn.FullName()] = fn
	}
	var unresolved []string
	for _, spec := range s.ForEach {
		if fn, ok := funcsByName[spec]; ok {
			fanout[fn] = true
		} else {
			unresolved = append(unresolved, spec)
		}
	}
	var out []Diagnostic
	// Mirroring privacytaint: an unresolved spec silently disables the
	// analysis, so it is a finding — except on partial modules (unit
	// fixtures) where foreign specs legitimately cannot resolve.
	if len(mod.Pkgs) > 1 {
		sort.Strings(unresolved)
		for _, spec := range unresolved {
			out = append(out, Diagnostic{
				Analyzer: "slotrace",
				Pos:      modulePos(mod),
				Message:  fmt.Sprintf("config spec %q matches nothing in the module; the fan-out point it names no longer exists", spec),
			})
		}
	}
	if len(fanout) == 0 {
		return out
	}
	eng := newEffectEngine(mod)
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				callee, iface := mod.StaticCallee(pkg, call)
				if callee == nil || iface || !fanout[callee] {
					return true
				}
				lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
				if !ok {
					return true
				}
				out = append(out, checkTask(eng, pkg, lit)...)
				return true
			})
		}
	}
	return out
}

// slotStatus classifies what an expression's memory belongs to, from the
// perspective of one task closure.
type slotStatus int

const (
	statusLocal   slotStatus = iota // declared inside the closure
	statusOwnSlot                   // shared, but selected by the task index
	statusShared                    // captured or package-level, not indexed
)

// checkTask analyzes one task literal. The first parameter of the literal
// is the task index; writes must resolve to statusLocal or statusOwnSlot.
func checkTask(eng *effectEngine, pkg *Package, lit *ast.FuncLit) []Diagnostic {
	if lit.Type.Params == nil || lit.Type.Params.NumFields() == 0 {
		return nil
	}
	first := lit.Type.Params.List[0]
	if len(first.Names) == 0 {
		return nil // index parameter unnamed: the closure cannot write anything own-slot
	}
	param := pkg.Info.Defs[first.Names[0]]
	if param == nil {
		return nil
	}
	c := &taskChecker{eng: eng, pkg: pkg, lit: lit, param: param}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				c.checkWrite(lhs, pkg.Fset.Position(s.TokPos), nil)
			}
		case *ast.IncDecStmt:
			c.checkWrite(s.X, pkg.Fset.Position(s.TokPos), nil)
		case *ast.CallExpr:
			c.checkCall(s)
		}
		return true
	})
	return c.out
}

type taskChecker struct {
	eng   *effectEngine
	pkg   *Package
	lit   *ast.FuncLit
	param types.Object
	out   []Diagnostic
}

// status classifies e. An index expression whose index mentions the task
// parameter is own-slot regardless of what it indexes; otherwise the
// classification follows the base object: declared inside the literal is
// local, anything else (captured variable, package-level variable) is
// shared. For composite expressions (calls) the most severe component
// status wins.
func (c *taskChecker) status(e ast.Expr) slotStatus {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.pkg.Info.Uses[x]
		if obj == nil {
			obj = c.pkg.Info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return statusLocal
		}
		if c.declaredInside(v) {
			return statusLocal
		}
		return statusShared
	case *ast.SelectorExpr:
		if sel, ok := c.pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return c.status(x.X)
		}
		if v, ok := c.pkg.Info.Uses[x.Sel].(*types.Var); ok && !c.declaredInside(v) {
			return statusShared // qualified package-level variable
		}
		return c.status(x.X)
	case *ast.IndexExpr:
		if c.mentionsParam(x.Index) {
			return statusOwnSlot
		}
		return c.status(x.X)
	case *ast.SliceExpr:
		if c.mentionsParam(x.Low) || c.mentionsParam(x.High) || c.mentionsParam(x.Max) {
			return statusOwnSlot
		}
		return c.status(x.X)
	case *ast.StarExpr:
		return c.status(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return c.status(x.X) // a write through &x is a write to x
		}
	case *ast.CallExpr:
		worst := statusLocal
		consider := func(e ast.Expr) {
			if s := c.status(e); s > worst {
				worst = s
			}
		}
		for _, arg := range x.Args {
			consider(arg)
		}
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			if s, ok := c.pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				consider(sel.X)
			}
		}
		return worst
	}
	return statusLocal
}

func (c *taskChecker) declaredInside(v *types.Var) bool {
	return v.Pos() >= c.lit.Pos() && v.Pos() <= c.lit.End()
}

func (c *taskChecker) mentionsParam(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.pkg.Info.Uses[id] == c.param {
			found = true
		}
		return !found
	})
	return found
}

// checkWrite reports a write whose target is captured shared state. A
// plain identifier LHS is a rebinding when the variable is closure-local,
// but writing a captured or package-level variable even by plain
// assignment mutates shared memory (the closure aliases the variable).
func (c *taskChecker) checkWrite(lv ast.Expr, pos token.Position, path []Hop) {
	if c.status(lv) != statusShared {
		return
	}
	c.out = append(c.out, Diagnostic{
		Analyzer: "slotrace",
		Pos:      pos,
		Message: fmt.Sprintf("par.ForEach task writes captured shared state %s not indexed by its task parameter %s; tasks may only write their own slot",
			exprText(lv), c.param.Name()),
		Path: path,
	})
}

// checkCall applies callee write-effect summaries to the call's receiver
// and argument expressions.
func (c *taskChecker) checkCall(call *ast.CallExpr) {
	pkg := c.pkg
	pos := pkg.Fset.Position(call.Lparen)
	switch builtinName(pkg, call) {
	case "copy", "append", "delete":
		if len(call.Args) > 0 {
			c.checkWrite(call.Args[0], pos, nil)
		}
		return
	case "":
		// Not a builtin.
	default:
		return
	}
	callee, iface := c.eng.mod.StaticCallee(pkg, call)
	switch {
	case callee == nil:
		// Dynamic call: assumed read-only (see analyzer doc).
	case iface:
		for _, impl := range c.eng.mod.Implementations(callee) {
			c.applyEffects(call, impl, pos)
		}
	case c.eng.mod.Body(callee) != nil:
		c.applyEffects(call, callee, pos)
	default:
		// Foreign callee: may write through mutable arguments/receiver.
		if foreignMayWriteArgs(callee) {
			for _, arg := range call.Args {
				if t := exprType(pkg, arg); t != nil && isMutableType(t) {
					c.checkWrite(arg, pos, []Hop{{Pos: pos, Note: "passed to foreign " + callee.Name() + ", which may write through it"}})
				}
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				if t := exprType(pkg, sel.X); t != nil && isMutableType(t) {
					c.checkWrite(sel.X, pos, []Hop{{Pos: pos, Note: "receiver of foreign method " + callee.Name()}})
				}
			}
		}
	}
}

func (c *taskChecker) applyEffects(call *ast.CallExpr, callee *types.Func, pos token.Position) {
	eff := c.eng.effects(callee)
	// Deterministic target order for reporting.
	targets := make([]effTarget, 0, len(eff.targets))
	for t := range eff.targets {
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool {
		if targets[i].kind != targets[j].kind {
			return targets[i].kind < targets[j].kind
		}
		return targets[i].idx < targets[j].idx
	})
	for _, t := range targets {
		hops := eff.targets[t]
		chain := append([]Hop{{Pos: pos, Note: "calls " + callee.FullName()}}, hops...)
		switch t.kind {
		case effGlobal:
			c.out = append(c.out, Diagnostic{
				Analyzer: "slotrace",
				Pos:      pos,
				Message: fmt.Sprintf("par.ForEach task calls %s, whose write-effect summary includes a package-level write; tasks may only write their own slot",
					callee.FullName()),
				Path: chain,
			})
		case effParam:
			if t.idx < len(call.Args) {
				c.checkWrite(call.Args[t.idx], pos, chain)
			}
		case effRecv:
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if s, ok := c.pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
					c.checkWrite(sel.X, pos, chain)
				}
			}
		}
	}
}
