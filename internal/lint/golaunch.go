package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLaunch audits `go` statements in library packages. The TCP transport is
// the only place the reproduction runs concurrent code, and its correctness
// argument rests on two disciplines: a goroutine never captures an
// enclosing loop variable (iteration state is passed as an argument, so the
// data flowing into each launch is explicit), and every goroutine is
// supervised — it signals completion through a sync.WaitGroup or a done
// channel visible at the launch site, so no round can leak workers.
//
// Both checks are heuristics over the launch site; a deliberate
// fire-and-forget goroutine can be allowlisted with a documented
// //fedlint:ignore golaunch directive. Commands and examples are exempt
// (their goroutines die with the process).
//
// Supervision is checked interprocedurally when the whole module is
// available: `go p.worker()` counts as supervised when worker's own body
// (or any in-module function it statically calls) sends on a channel,
// closes one, or touches a sync.WaitGroup — the wrapper-launch pattern the
// fed and faultnet transports use. Per-package runs fall back to the
// launch-site-only heuristic.
type GoLaunch struct{}

func (GoLaunch) Name() string { return "golaunch" }

func (GoLaunch) Doc() string {
	return "flag goroutine launches in library packages that capture loop variables or lack WaitGroup/done-channel supervision (checked through wrapper calls module-wide)"
}

// Check is the per-package, launch-site-only variant.
func (g GoLaunch) Check(pkg *Package) []Diagnostic { return g.check(pkg, nil) }

// CheckModule checks every package with interprocedural supervision: the
// call graph makes goroutines launched via wrappers visible.
func (g GoLaunch) CheckModule(mod *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range mod.Pkgs {
		out = append(out, g.check(pkg, mod)...)
	}
	return out
}

func (GoLaunch) check(pkg *Package, mod *Module) []Diagnostic {
	if pkg.IsCommand() {
		return nil
	}
	var out []Diagnostic
	for _, file := range pkg.Files {
		inspectWithStack(file, func(n ast.Node, stack []ast.Node) {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return
			}
			pos := pkg.Fset.Position(gs.Pos())
			lit, _ := gs.Call.Fun.(*ast.FuncLit)

			if lit != nil {
				if captured := capturedLoopVars(pkg, lit, stack); len(captured) > 0 {
					out = append(out, Diagnostic{
						Analyzer: "golaunch",
						Pos:      pos,
						Message: "goroutine captures loop variable " + captured[0] +
							"; pass it as an argument so the launch's inputs are explicit",
					})
				}
			}
			if !supervisedLaunch(pkg, gs, lit) && !supervisedThroughCallees(pkg, mod, gs, lit) {
				out = append(out, Diagnostic{
					Analyzer: "golaunch",
					Pos:      pos,
					Message: "goroutine has no sync.WaitGroup or done-channel in scope; " +
						"unsupervised workers can leak past the round that launched them",
				})
			}
		})
	}
	return out
}

// supervisedThroughCallees is the interprocedural fallback: the launched
// function itself — or, for a literal, a function its body statically calls
// — performs the completion signal. Requires a Module; per-package runs
// pass nil and keep the launch-site-only behavior.
func supervisedThroughCallees(pkg *Package, mod *Module, gs *ast.GoStmt, lit *ast.FuncLit) bool {
	if mod == nil {
		return false
	}
	if lit == nil {
		if callee, iface := mod.StaticCallee(pkg, gs.Call); callee != nil && !iface {
			return mod.Signals(callee)
		}
		return false
	}
	supervised := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if supervised {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if callee, iface := mod.StaticCallee(pkg, call); callee != nil && !iface && mod.Signals(callee) {
				supervised = true
				return false
			}
		}
		return true
	})
	return supervised
}

// capturedLoopVars returns the names of enclosing-loop iteration variables
// referenced inside the goroutine's function literal body.
func capturedLoopVars(pkg *Package, lit *ast.FuncLit, stack []ast.Node) []string {
	loopVars := make(map[types.Object]bool)
	addDef := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pkg.Info.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	for _, anc := range stack {
		switch loop := anc.(type) {
		case *ast.RangeStmt:
			addDef(loop.Key)
			if loop.Value != nil {
				addDef(loop.Value)
			}
		case *ast.ForStmt:
			if assign, ok := loop.Init.(*ast.AssignStmt); ok && assign.Tok == token.DEFINE {
				for _, lhs := range assign.Lhs {
					addDef(lhs)
				}
			}
		}
	}
	if len(loopVars) == 0 {
		return nil
	}
	var captured []string
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pkg.Info.Uses[id]; obj != nil && loopVars[obj] && !seen[obj] {
			seen[obj] = true
			captured = append(captured, id.Name)
		}
		return true
	})
	return captured
}

// supervisedLaunch reports whether the goroutine visibly signals its
// completion: its body references a sync.WaitGroup, sends on or closes a
// channel, or — for launches of named functions — a WaitGroup or channel is
// passed as an argument.
func supervisedLaunch(pkg *Package, gs *ast.GoStmt, lit *ast.FuncLit) bool {
	for _, arg := range gs.Call.Args {
		if tv, ok := pkg.Info.Types[arg]; ok && (isWaitGroup(tv.Type) || isChannel(tv.Type)) {
			return true
		}
	}
	if lit == nil {
		return false
	}
	supervised := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if supervised {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[x]; obj != nil && isWaitGroup(obj.Type()) {
				supervised = true
			}
		case *ast.SendStmt:
			supervised = true
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					supervised = true
				}
			}
		}
		return true
	})
	return supervised
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

func isChannel(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
