package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked, non-test package of the module under
// analysis. Test files are excluded on purpose: the enforced invariants
// concern shipped code, and tests legitimately use wall clocks, goroutine
// shorthand and exact comparisons.
type Package struct {
	// Path is the import path, e.g. "fedpower/internal/fed".
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset is shared by every package of one LoadModule call.
	Fset *token.FileSet
	// Files are the parsed non-test source files, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression and object resolution.
	Info *types.Info
}

// IsCommand reports whether the package builds an executable; analyzers
// scoped to "library packages" skip commands and examples.
func (p *Package) IsCommand() bool {
	return len(p.Files) > 0 && p.Files[0].Name.Name == "main"
}

// LoadModule locates the Go module containing root (walking upwards to
// go.mod), parses every non-test package beneath the module root, and
// type-checks them in dependency order. Intra-module imports resolve
// against the freshly checked packages; standard-library imports resolve
// through the toolchain's export data.
func LoadModule(root string) ([]*Package, error) {
	modRoot, modPath, err := findModule(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	dirs, err := packageDirs(modRoot)
	if err != nil {
		return nil, err
	}

	type rawPkg struct {
		path  string
		dir   string
		files []*ast.File
		deps  []string
	}
	raw := make(map[string]*rawPkg)
	for _, dir := range dirs {
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(modRoot, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		p := &rawPkg{path: path, dir: dir, files: files}
		for _, f := range files {
			for _, imp := range f.Imports {
				ipath, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if ipath == modPath || strings.HasPrefix(ipath, modPath+"/") {
					p.deps = append(p.deps, ipath)
				}
			}
		}
		raw[path] = p
	}

	order, err := topoSort(raw, func(p *rawPkg) (string, []string) { return p.path, p.deps })
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{
		fset:    fset,
		modPath: modPath,
		module:  make(map[string]*types.Package),
		std:     importer.ForCompiler(fset, "gc", nil),
	}
	var pkgs []*Package
	for _, path := range order {
		rp := raw[path]
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, rp.files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
		}
		imp.module[path] = tpkg
		pkgs = append(pkgs, &Package{
			Path:  path,
			Dir:   rp.dir,
			Fset:  fset,
			Files: rp.files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// findModule walks upwards from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (string, string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			path := modulePath(string(data))
			if path == "" {
				return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
			}
			return d, path, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// packageDirs returns every directory beneath root that may hold a package,
// skipping VCS metadata, testdata, vendored code and hidden directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// parseDir parses the non-test Go files of one directory.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") ||
			strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(dir, n), err)
		}
		files = append(files, f)
	}
	return files, nil
}

// topoSort orders packages so every dependency precedes its importers.
func topoSort[T any](m map[string]*T, keyDeps func(*T) (string, []string)) ([]string, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int, len(m))
	var order []string
	var visit func(string) error
	visit = func(k string) error {
		switch color[k] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("lint: import cycle through %s", k)
		}
		color[k] = grey
		_, deps := keyDeps(m[k])
		for _, d := range deps {
			if _, ok := m[d]; !ok {
				return fmt.Errorf("lint: %s imports %s, which has no source under the module root", k, d)
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		color[k] = black
		order = append(order, k)
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := visit(k); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves intra-module imports against already-checked
// packages and everything else via the toolchain's export data, falling
// back to type-checking the standard library from source when export data
// is unavailable (e.g. a stripped-down toolchain image).
type moduleImporter struct {
	fset    *token.FileSet
	modPath string
	module  map[string]*types.Package
	std     types.Importer
	src     types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		if pkg, ok := m.module[path]; ok {
			return pkg, nil
		}
		return nil, fmt.Errorf("lint: internal import %s not yet checked (dependency order bug)", path)
	}
	pkg, err := m.std.Import(path)
	if err == nil {
		return pkg, nil
	}
	if m.src == nil {
		m.src = importer.ForCompiler(m.fset, "source", nil)
	}
	if pkg, srcErr := m.src.Import(path); srcErr == nil {
		return pkg, nil
	}
	return nil, err
}
