package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// NoClock forbids reading the wall clock in the simulated-time packages.
// internal/sim advances a virtual clock in fixed control intervals, and
// internal/core, internal/nn, internal/experiment and internal/faultnet
// must be pure functions of their inputs plus injected randomness — a
// time.Now or time.Sleep in any of them silently couples results to the
// host's scheduler and defeats bit-identical replication (for faultnet it
// would break schedule replay, the property its Delay faults route through
// an injected Sleep to preserve). internal/fed (a real TCP transport with
// deadlines) and the cmd/ and examples/ binaries are exempt.
//
// Calls are the violation, not references: passing time.Now as a func
// value across an API boundary (e.g. experiment.RunOverheadWithClock) is
// the sanctioned injection seam, because tests can substitute a fake clock.
type NoClock struct{}

// noClockPackages are the import-path suffixes (relative to the module
// path) where wall-clock access is forbidden.
var noClockPackages = []string{
	"/internal/sim",
	"/internal/core",
	"/internal/nn",
	"/internal/experiment",
	"/internal/faultnet",
}

// clockFuncs are the time package functions that read or wait on the wall
// clock. Pure constructors and conversions (time.Duration, time.Unix) are
// allowed.
var clockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func (NoClock) Name() string { return "noclock" }

func (NoClock) Doc() string {
	return "forbid wall-clock calls (time.Now, time.Sleep, ...) in simulated-time packages; inject a clock at the API boundary"
}

func (NoClock) Check(pkg *Package) []Diagnostic {
	covered := false
	for _, suffix := range noClockPackages {
		if strings.HasSuffix(pkg.Path, suffix) {
			covered = true
			break
		}
	}
	if !covered {
		return nil
	}
	var out []Diagnostic
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, pkgPath := packageSelector(pkg, call.Fun)
			if sel == nil || pkgPath != "time" || !clockFuncs[sel.Sel.Name] {
				return true
			}
			out = append(out, Diagnostic{
				Analyzer: "noclock",
				Pos:      pkg.Fset.Position(call.Pos()),
				Message: fmt.Sprintf("time.%s call in simulated-time package %s; simulation must be deterministic — inject a clock value instead",
					sel.Sel.Name, pkg.Path),
			})
			return true
		})
	}
	return out
}
