package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder proves the determinism claim the replay gate checks
// dynamically: Go's map iteration order is randomized per run, so any
// value that depends on the order in which a `range` over a map visits
// its entries is schedule-dependent output. For every function body the
// analyzer builds a value-flow graph (the same engine privacytaint
// searches, scoped to the one function), seeds it with the key and value
// bindings of each range-over-map as roots, and flags flows into the
// three sink shapes where ordering becomes observable:
//
//   - order-dependent accumulation: compound assignment (+=, -=, *=, /=)
//     into a float, complex or string — non-associative, so the result
//     depends on visit order (integer accumulation is associative and
//     exempt);
//   - returned slices and strings — the caller observes element order;
//   - wire writes: arguments of io.Writer-shaped method calls (Write,
//     WriteString, ...).
//
// The sanctioned pattern is sort-then-range: collecting the keys into a
// slice and handing it to a sorting call — the sort/slices packages, or
// any function whose name starts with "sort"/"Sort" — sanitizes that
// slice, and the search does not propagate order-dependence out of a
// sanitized value. Plain map writes and integer aggregation are not
// sinks (building another map or counting entries is order-independent).
// The analysis is function-scoped by design: whole-module propagation
// through shared struct-field nodes turns one ordered value into
// module-wide noise, while the real bug — range a map, fold or emit in
// visit order — is local to the function that ranges.
type MapOrder struct{}

func (MapOrder) Name() string { return "maporder" }

func (MapOrder) Doc() string {
	return "map iteration order must not flow into aggregation, returned slices/strings, or wire writes; collect the keys and sort them first (sort-then-range)"
}

// Check analyzes a single package as a one-package module (unit-fixture
// harness); whole-module runs go through CheckModule.
func (m MapOrder) Check(pkg *Package) []Diagnostic {
	return m.CheckModule(NewModule([]*Package{pkg}))
}

// CheckModule analyzes every function body independently: flow graph,
// map-range roots, order-observable sinks, sort sanitizers, BFS.
func (m MapOrder) CheckModule(mod *Module) []Diagnostic {
	var out []Diagnostic
	cfg, _ := TaintConfig{}.resolve(mod) // empty config: generic flow edges only
	for _, fn := range mod.Funcs() {
		fb := mod.Body(fn)
		g := newTaintGraph(mod, cfg)
		g.walkNode(fb.Pkg, fb.Decl)
		m.seedFunc(g, fb)
		if len(g.roots) == 0 || len(g.sinks) == 0 {
			continue
		}
		for _, leak := range g.findLeaks() {
			out = append(out, Diagnostic{
				Analyzer: "maporder",
				Pos:      leak.sink.pos,
				Message: fmt.Sprintf("map iteration order flows into %s (%d-hop path below): %s; collect the keys, sort them, then range over the sorted slice",
					leak.sink.desc, len(leak.hops), leak.source),
				Path: leak.hops,
			})
		}
	}
	return out
}

// seedFunc adds one function's roots (map-range bindings), sinks
// (order-observable uses) and sanitized nodes (sorted slices) to its
// flow graph.
func (m MapOrder) seedFunc(g *taintGraph, fb *FuncBody) {
	pkg := fb.Pkg
	inspectWithStack(fb.Decl, func(n ast.Node, stack []ast.Node) {
		switch s := n.(type) {
		case *ast.RangeStmt:
			t := exprType(pkg, s.X)
			if t == nil {
				return
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return
			}
			desc := "iteration order of range over map " + exprText(s.X)
			for _, lhs := range []ast.Expr{s.Key, s.Value} {
				if lhs == nil {
					continue
				}
				for _, node := range g.writeTargets(pkg, lhs) {
					g.addRoot(node, desc)
				}
			}
		case *ast.AssignStmt:
			m.seedAssign(g, pkg, s)
		case *ast.ReturnStmt:
			m.seedReturn(g, pkg, s, stack)
		case *ast.CallExpr:
			m.seedCall(g, pkg, s)
		}
	})
}

// seedAssign registers non-associative accumulation sinks: compound
// assignment into floats, complex numbers or strings.
func (m MapOrder) seedAssign(g *taintGraph, pkg *Package, s *ast.AssignStmt) {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return
	}
	t := exprType(pkg, s.Lhs[0])
	if t == nil {
		return
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&(types.IsFloat|types.IsComplex|types.IsString) == 0 {
		return
	}
	pos := pkg.Fset.Position(s.TokPos)
	sink := g.newSink(pos, "order-dependent accumulation into "+exprText(s.Lhs[0]))
	g.flowInto(pkg, []taintNode{sink}, g.refs(pkg, s.Rhs[0]), pos,
		"accumulated into "+exprText(s.Lhs[0])+" ("+s.Tok.String()+")")
}

// seedReturn registers returned slices and strings as sinks: the caller
// observes the element/character order the map range produced.
func (m MapOrder) seedReturn(g *taintGraph, pkg *Package, s *ast.ReturnStmt, stack []ast.Node) {
	fn, _ := enclosingFunc(pkg, stack)
	where := ""
	if fn != nil {
		where = " from " + fn.Name()
	}
	for _, res := range s.Results {
		t := exprType(pkg, res)
		if t == nil {
			continue
		}
		ordered := false
		switch u := t.Underlying().(type) {
		case *types.Slice:
			ordered = true
		case *types.Basic:
			ordered = u.Info()&types.IsString != 0
		}
		if !ordered {
			continue
		}
		pos := pkg.Fset.Position(s.Return)
		sink := g.newSink(pos, "returned "+typeShape(t)+where)
		g.flowInto(pkg, []taintNode{sink}, g.refs(pkg, res), pos, "returned"+where)
	}
}

func typeShape(t types.Type) string {
	if _, ok := t.Underlying().(*types.Slice); ok {
		return "slice"
	}
	return "string"
}

// seedCall registers sorting calls as sanitizers of their slice argument
// and io.Writer-shaped method calls as wire sinks.
func (m MapOrder) seedCall(g *taintGraph, pkg *Package, call *ast.CallExpr) {
	callee, _ := g.mod.StaticCallee(pkg, call)
	if callee == nil {
		return
	}
	if isSortingCall(callee) && len(call.Args) > 0 {
		for _, node := range g.refs(pkg, call.Args[0]) {
			g.sanitized[node] = true
		}
		return
	}
	if isWriteMethod(callee) && g.mod.Body(callee) == nil {
		pos := pkg.Fset.Position(call.Lparen)
		sink := g.newSink(pos, "wire write via "+callee.Name())
		for _, arg := range call.Args {
			g.flowInto(pkg, []taintNode{sink}, g.refs(pkg, arg), pos, "written via "+callee.Name())
		}
	}
}

// isSortingCall recognizes the sanctioned sorters: anything in the sort
// or slices packages, plus in-module helpers that announce themselves by
// a sort/Sort name prefix (e.g. sortDiagnostics, SortedStates).
func isSortingCall(callee *types.Func) bool {
	if p := callee.Pkg(); p != nil && (p.Path() == "sort" || p.Path() == "slices") {
		return true
	}
	name := callee.Name()
	return len(name) >= 4 && (name[:4] == "sort" || name[:4] == "Sort")
}
