package lint

import (
	"fmt"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// WireBound statically proves the transport's hostile-input safety claim:
// every integer decoded from wire bytes is narrowed against a declared cap
// before it reaches an allocation size, a slice/index expression, a
// foreign length argument or a loop trip count. It runs the guard-aware
// interval-bounds engine (bounds.go) over the whole module and reports
// each hostile value that arrives at a sink without a finite proven upper
// bound, carrying the full source → … → sink hop path — the same proof-
// trace shape as privacytaint, rendered in text, -json and SARIF alike.
//
// The declared caps live in internal/fed/limits.go; the analyzer does not
// know them by name, only by effect: a guard like `count > maxWireParams`
// narrows count's hostile interval to [0, maxWireParams], and the sink
// check then compares that bound against MaxProvenBound. Raising a cap
// above MaxProvenBound therefore turns into findings, which is the point:
// the constant file and the analyzer together are the machine-checked
// form of "hostile lengths are bounded before any allocation".
type WireBound struct {
	// Config declares the wire packages, allocation helpers, foreign
	// size-taking functions and the largest provable bound. The zero
	// value analyzes nothing; DefaultSuite installs DefaultWireBoundConfig.
	Config WireBoundConfig
}

// WireBoundConfig names the module-specific knobs of the bounds engine.
// Function specs use go/types FullName syntax plus "#n" for the checked
// argument index: "(*pkgpath.Type).Method#0", "pkgpath.Func#2".
type WireBoundConfig struct {
	// WirePkgs lists import paths whose binary.*Endian.UintN calls and
	// byte-element reads produce hostile values. Packages that only ever
	// see trusted local bytes stay out of the list.
	WirePkgs []string
	// AllocFuncs lists in-module allocation helpers: the named argument
	// is checked at every call site, and the helper's own body is exempt
	// (it is the declared boundary). Specs must resolve.
	AllocFuncs []string
	// SizeFuncs lists foreign functions whose named argument is an
	// allocation or I/O length — io.CopyN's n, bytes.Repeat's count.
	SizeFuncs []string
	// MaxProvenBound is the largest hostile upper bound accepted at a
	// sink. It is deliberately generous — caps exist to exclude absurd
	// allocations, not to micro-budget buffers — but finite, so "bounded"
	// always means "provably small".
	MaxProvenBound int64
}

// DefaultWireBoundConfig is the fedpower module's wire-safety boundary:
// the federation transport, the parameter/accumulator codecs and the
// fault-injection wrapper are wire packages; the codec's scratch growers
// are the declared allocation helpers; and the proof bound is 2²⁶ (64 MiB
// of worst-case scratch), comfortably above every declared cap product
// (maxWireParams·nn.MaxAccumWire ≈ 36 MiB) and far below a memory-
// exhaustion attack.
func DefaultWireBoundConfig() WireBoundConfig {
	return WireBoundConfig{
		WirePkgs: []string{
			"fedpower/internal/fed",
			"fedpower/internal/nn",
			"fedpower/internal/faultnet",
		},
		AllocFuncs: []string{
			"(*fedpower/internal/fed.codecState).growScratch#0",
			"(*fedpower/internal/fed.codecState).grow#0",
			"(*fedpower/internal/fed.codecState).growCarry#0",
		},
		SizeFuncs: []string{
			"io.CopyN#2",
			"io.ReadAtLeast#2",
			"bytes.Repeat#1",
			"strings.Repeat#1",
			"(*bytes.Buffer).Grow#0",
		},
		MaxProvenBound: 1 << 26,
	}
}

func (WireBound) Name() string { return "wirebound" }

func (WireBound) Doc() string {
	return "interval-bounds analysis: integers decoded from wire bytes must be narrowed against a declared cap before reaching an allocation size, index, foreign length argument or loop trip count"
}

// Check analyzes a single package as a one-package module, for unit
// fixtures; whole-module runs go through CheckModule.
func (w WireBound) Check(pkg *Package) []Diagnostic {
	return w.CheckModule(NewModule([]*Package{pkg}))
}

// CheckModule runs the bounds engine over the whole module.
func (w WireBound) CheckModule(mod *Module) []Diagnostic {
	diags, _ := w.analyze(mod)
	return diags
}

// analyze is CheckModule plus the engine's work counters, which the
// real-module regression test uses to prove the clean result is not
// vacuous (sources were found, guards were applied, sinks were checked).
func (w WireBound) analyze(mod *Module) ([]Diagnostic, wireBoundStats) {
	eng, unresolved := w.Config.resolve(mod)
	var out []Diagnostic
	// An unresolved spec would silently weaken the theorem (a renamed
	// growScratch leaving its call sites unchecked), so it is a finding —
	// except on partial modules (unit fixtures), where foreign specs
	// legitimately cannot resolve.
	if len(mod.Pkgs) > 1 {
		for _, spec := range unresolved {
			out = append(out, Diagnostic{
				Analyzer: "wirebound",
				Pos:      modulePos(mod),
				Message:  fmt.Sprintf("config spec %q matches nothing in the module; the wire boundary it names no longer exists", spec),
			})
		}
	}
	if len(eng.wirePkgs) == 0 {
		return out, wireBoundStats{}
	}
	eng.run()
	for _, f := range eng.sortedFindings() {
		bound := "no finite upper bound"
		if f.val.hIv.hi != boundMax {
			bound = fmt.Sprintf("a proven bound of %d, above the declared-cap limit %d", f.val.hIv.hi, eng.maxBound)
		}
		path := appendHop(f.val.trace, f.pos, fmt.Sprintf("reaches %s", f.sink))
		out = append(out, Diagnostic{
			Analyzer: "wirebound",
			Pos:      f.pos,
			Message: fmt.Sprintf("wire-derived integer %s reaches %s with %s (%d-hop path below); narrow it against a declared cap first",
				f.expr, f.sink, bound, len(path)),
			Path: path,
		})
	}
	return out, eng.stats
}

// resolve binds the config to the module, returning a ready engine and
// every spec that matched nothing.
func (c WireBoundConfig) resolve(mod *Module) (*boundsEngine, []string) {
	eng := newBoundsEngine(mod)
	eng.maxBound = c.MaxProvenBound
	var unresolved []string

	pkgPaths := make(map[string]bool, len(mod.Pkgs))
	for _, pkg := range mod.Pkgs {
		pkgPaths[pkg.Path] = true
	}
	for _, spec := range c.WirePkgs {
		if pkgPaths[spec] {
			eng.wirePkgs[spec] = true
		} else {
			unresolved = append(unresolved, spec)
		}
	}

	funcsByName := make(map[string]*types.Func)
	for fn := range mod.funcs {
		funcsByName[fn.FullName()] = fn
	}
	for _, spec := range c.AllocFuncs {
		name, idx, ok := splitArgSpec(spec)
		if !ok {
			unresolved = append(unresolved, spec)
			continue
		}
		fn, found := funcsByName[name]
		if !found {
			unresolved = append(unresolved, spec)
			continue
		}
		eng.allocFuncs[fn] = idx
	}
	for _, spec := range c.SizeFuncs {
		name, idx, ok := splitArgSpec(spec)
		if !ok {
			unresolved = append(unresolved, spec)
			continue
		}
		// Foreign functions cannot be pre-resolved against the module;
		// they are matched by FullName at call sites.
		eng.sizeFuncs[name] = idx
	}

	sort.Strings(unresolved)
	return eng, unresolved
}

// splitArgSpec parses "fullname#idx".
func splitArgSpec(spec string) (string, int, bool) {
	i := strings.LastIndex(spec, "#")
	if i < 0 {
		return "", 0, false
	}
	idx, err := strconv.Atoi(spec[i+1:])
	if err != nil || idx < 0 {
		return "", 0, false
	}
	return spec[:i], idx, true
}
