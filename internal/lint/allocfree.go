package lint

import (
	"fmt"
	"go/types"
)

// AllocFree proves the repo's 0-alloc hot-path claim statically: every
// function annotated
//
//	//fedlint:allocfree
//
// in its doc comment — and every function statically reachable from it
// through the module call graph, including all in-module implementations
// behind interface dispatch — must be free of heap-allocating constructs:
// make/new, append (which may grow its backing array), closure creation,
// goroutine launches, string concatenation and string<->[]byte
// conversions, slice/map literals and escaping &T{...} literals, map
// writes, boxing into non-empty interfaces, variadic ...interface{}
// calls, fmt/log calls, and dynamic calls that cannot be resolved.
//
// Two shapes are exempt because they cannot run in the steady state the
// proof is about: allocations inside the arguments of the panic builtin
// (the invariant-violation path), and allocations inside an if branch
// whose condition consults len or cap (the amortized-growth and
// guarded-error patterns — allocate only when capacity is exhausted or
// input is malformed). Foreign (out-of-module) callees other than
// fmt/log are assumed allocation-free; the benchdiff.sh -benchmem gate
// remains the dynamic backstop for those.
//
// Each finding carries the full call-chain path from the annotated root
// to the allocating expression, one position per hop, mirroring
// privacytaint's leak traces. A directive that is not attached to a
// function declaration the loader can resolve is itself a finding.
type AllocFree struct{}

func (AllocFree) Name() string { return "allocfree" }

func (AllocFree) Doc() string {
	return "functions annotated //fedlint:allocfree, and everything statically reachable from them, must not contain heap-allocating constructs (panic arguments and len/cap-guarded growth branches exempt)"
}

// Check analyzes a single package as a one-package module (unit-fixture
// harness); whole-module runs go through CheckModule.
func (a AllocFree) Check(pkg *Package) []Diagnostic {
	return a.CheckModule(NewModule([]*Package{pkg}))
}

// CheckModule runs the reachability proof from every annotated root.
func (a AllocFree) CheckModule(mod *Module) []Diagnostic {
	roots, dangling := collectAllocFreeRoots(mod)
	var out []Diagnostic
	for _, pos := range dangling {
		out = append(out, Diagnostic{
			Analyzer: "allocfree",
			Pos:      pos,
			Message:  "//fedlint:allocfree directive is not the doc comment of a resolvable function declaration; the proof it requests never runs",
		})
	}

	facts := make(map[*types.Func]*allocFacts)
	factsOf := func(fn *types.Func) *allocFacts {
		if f, ok := facts[fn]; ok {
			return f
		}
		f := scanAllocs(mod, mod.Body(fn))
		facts[fn] = f
		return f
	}

	// One BFS per root over the call graph; a given allocation site is
	// reported once, attributed to the first (lowest-position) root that
	// reaches it.
	type step struct {
		caller *types.Func
		edge   allocCall
	}
	reported := make(map[string]bool)
	for _, root := range roots {
		pred := map[*types.Func]step{root.fn: {}}
		queue := []*types.Func{root.fn}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			f := factsOf(fn)
			for _, s := range f.sites {
				key := s.pos.String()
				if reported[key] {
					continue
				}
				reported[key] = true
				var hops []Hop
				for cur := fn; cur != root.fn; {
					st := pred[cur]
					hops = append(hops, Hop{Pos: st.edge.pos, Note: st.edge.note})
					cur = st.caller
				}
				for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
					hops[i], hops[j] = hops[j], hops[i]
				}
				hops = append(hops, Hop{Pos: s.pos, Note: s.what})
				out = append(out, Diagnostic{
					Analyzer: "allocfree",
					Pos:      s.pos,
					Message: fmt.Sprintf("heap allocation reachable from //fedlint:allocfree root %s: %s (%d-hop path below)",
						root.fn.FullName(), s.what, len(hops)),
					Path: hops,
				})
			}
			for _, c := range f.calls {
				if _, seen := pred[c.callee]; seen {
					continue
				}
				if mod.Body(c.callee) == nil {
					continue
				}
				pred[c.callee] = step{caller: fn, edge: c}
				queue = append(queue, c.callee)
			}
		}
	}
	return out
}
