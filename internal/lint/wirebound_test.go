package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wiremodSuite is the analyzer configuration the testdata/wiremod fixture
// module exercises: the fixture's wire package is the hostile boundary,
// buf.Build its declared allocation helper, and 1<<16 the largest provable
// bound (so the fixture's maxFrame = 4096 guards prove and raw 32-bit
// header fields do not).
func wiremodSuite() []Analyzer {
	return []Analyzer{
		WireBound{Config: WireBoundConfig{
			WirePkgs:       []string{"wiremod/wire"},
			AllocFuncs:     []string{"wiremod/buf.Build#0"},
			SizeFuncs:      []string{"io.CopyN#2"},
			MaxProvenBound: 1 << 16,
		}},
	}
}

func loadWiremod(t *testing.T) (root string, pkgs []*Package) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "wiremod"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err = LoadModule(root)
	if err != nil {
		t.Fatalf("load fixture module: %v", err)
	}
	if len(pkgs) < 2 {
		t.Fatalf("loaded only %d fixture packages, want 2", len(pkgs))
	}
	return root, pkgs
}

// TestWireBoundGolden pins the analyzer's full output — every hop of every
// path — over the wiremod fixture module. The fixture plants an unguarded
// header field reaching the declared allocation helper three calls deep
// across a package boundary, a 64-bit length no type can bound, a plain
// unguarded make, a cap check on the wrong branch, a hostile loop trip
// count, a hostile index and a hostile io.CopyN length — each next to a
// clamp-, reject- or min-guarded clean counterpart. Regenerate with
// `go test -run WireBoundGolden -update ./internal/lint`.
func TestWireBoundGolden(t *testing.T) {
	root, pkgs := loadWiremod(t)
	diags := Run(pkgs, wiremodSuite())

	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	got := strings.ReplaceAll(b.String(), root+string(filepath.Separator), "")

	goldenPath := filepath.Join("testdata", "wirebound.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("wirebound output drifted from golden file\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWireBoundFixtureShape asserts the semantic content of the fixture
// run independently of exact positions: every planted violation fires,
// every guarded counterpart stays silent, and the cross-package finding
// carries its full call chain.
func TestWireBoundFixtureShape(t *testing.T) {
	_, pkgs := loadWiremod(t)
	diags := Run(pkgs, wiremodSuite())

	if len(diags) != 7 {
		for _, d := range diags {
			t.Logf("finding: %s", d)
		}
		t.Fatalf("fixture findings = %d, want 7", len(diags))
	}

	kinds := map[string]int{}
	for _, d := range diags {
		if d.Analyzer != "wirebound" {
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
		switch {
		case strings.Contains(d.Message, "allocation helper"):
			kinds["helper"]++
		case strings.Contains(d.Message, "allocation size (make)"):
			kinds["make"]++
		case strings.Contains(d.Message, "loop trip count"):
			kinds["loop"]++
		case strings.Contains(d.Message, "index expression"):
			kinds["index"]++
		case strings.Contains(d.Message, "length argument of io.CopyN"):
			kinds["copyn"]++
		}
		if len(d.Path) < 2 {
			t.Errorf("wirebound finding without a flow path: %s", d)
		}
		for _, clean := range []string{"Clamped", "Checked", "MinClamped", "SumChecked"} {
			if strings.Contains(filepath.Base(d.Pos.Filename)+d.Message, clean) {
				t.Errorf("clean counterpart %s flagged: %s", clean, d)
			}
		}
	}
	if kinds["helper"] != 2 { // Alloc (3-deep) + Alloc64 (no finite bound)
		t.Errorf("helper call-site findings = %d, want 2", kinds["helper"])
	}
	if kinds["make"] != 2 { // AllocDirect + WrongBranch
		t.Errorf("make findings = %d, want 2", kinds["make"])
	}
	if kinds["loop"] != 1 || kinds["index"] != 1 || kinds["copyn"] != 1 {
		t.Errorf("loop/index/copyn findings = %d/%d/%d, want 1/1/1", kinds["loop"], kinds["index"], kinds["copyn"])
	}

	// Both message variants must appear: the 64-bit length has no finite
	// bound at all; the 32-bit ones carry a concrete too-large bound.
	var sawUnbounded, sawOversized, sawDeepPath bool
	for _, d := range diags {
		if strings.Contains(d.Message, "no finite upper bound") {
			sawUnbounded = true
		}
		if strings.Contains(d.Message, "above the declared-cap limit") {
			sawOversized = true
		}
		// The Alloc chain: wire read → returned from ReadHeader → into n →
		// returned from parse → passed to Build → reaches sink.
		if strings.Contains(d.Message, "allocation helper") && len(d.Path) >= 5 {
			sawDeepPath = true
		}
	}
	if !sawUnbounded {
		t.Error("no finding reports \"no finite upper bound\" (Alloc64 case missing)")
	}
	if !sawOversized {
		t.Error("no finding reports a concrete oversized bound (32-bit cases missing)")
	}
	if !sawDeepPath {
		t.Error("the three-call cross-package chain lost its hop path")
	}
}

// TestWireBoundRealModuleClean is the theorem the analyzer exists to
// prove: every network-facing decode path of the actual fedpower module —
// readMessage, readRelay, the codec decoders, DecodeAccumInto, the join
// negotiation — narrows hostile integers against the declared caps of
// internal/fed/limits.go before any allocation, index or loop use, with
// zero //fedlint:ignore escapes. The engine's work counters guard against
// a vacuous pass: wire sources must be found, guards must narrow, sinks
// must be checked.
func TestWireBoundRealModuleClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(wd)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	mod := NewModule(pkgs)

	w := WireBound{Config: DefaultWireBoundConfig()}
	diags, stats := w.analyze(mod)
	for _, d := range diags {
		t.Errorf("real module not clean under wirebound:\n%s", d)
	}
	if stats.Sources < 10 {
		t.Errorf("only %d wire sources found, want ≥ 10 (binary reads in fed and nn); the proof looks vacuous", stats.Sources)
	}
	if stats.Narrowings < 5 {
		t.Errorf("only %d guard narrowings applied, want ≥ 5 (the declared-cap checks); the proof looks vacuous", stats.Narrowings)
	}
	if stats.Sinks < 20 {
		t.Errorf("only %d sinks checked, want ≥ 20 (makes, indexes, loops across the module)", stats.Sinks)
	}
}
