package lint

// The guard-aware interval-bounds engine behind the wirebound analyzer
// (wirebound.go). It tracks, for every local integer value, two intervals:
//
//	iv   — a bound valid over ALL executions of the program
//	hIv  — a bound valid over the executions in which the value was
//	       influenced by wire bytes (only meaningful when hostile is set)
//
// The split is what keeps shared helpers precise: a decode helper like
// payloadSize is called both from the hostile decode path (count ≤
// maxWireParams, attacker-chosen) and from clean encode paths (count =
// len(params), finite but statically unbounded). A single-interval join of
// those call sites would poison the hostile bound with the clean path's
// unboundedness; the dual domain joins them as "unbounded in general, but
// ≤ cap whenever an attacker steered it", which is exactly the theorem the
// analyzer proves at sinks: a hostile value may reach an allocation size,
// index or trip count only with a finite hIv upper bound.
//
// Sources are the binary.*Endian.Uint{16,32,64} reads and byte-element
// loads inside the configured wire packages. Comparison guards narrow both
// intervals along the dominating branch (the bound is always taken from
// the other operand's universal iv — using its hostile bound would be
// circular). Interprocedural flow goes through per-function summaries:
// parameter intervals are joined over static call sites (widened with the
// parameter type's full range for exported or address-taken functions,
// whose callers are open-ended) and result intervals over return
// statements, iterated to a fixed point with widening as a backstop.
//
// Deliberate limits, documented here and in DESIGN.md: struct fields,
// globals and values laundered through dynamic function values are treated
// as clean (their defaults are the type's full range, so they can never
// fake a *proof* — they can only fail to raise a finding), and implicit
// flows (a trip count steering an accumulator) are not tracked, matching
// privacytaint's explicit-data-flow contract.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"math/bits"
	"sort"
)

const (
	boundMin = math.MinInt64 // -∞ sentinel
	boundMax = math.MaxInt64 // +∞ sentinel

	// maxBoundPasses caps the interprocedural fixpoint; widening kicks in
	// at boundWidenPass so convergence within the cap is guaranteed for
	// any realistic summary churn.
	maxBoundPasses = 10
	boundWidenPass = 4

	// maxTraceHops caps the recorded flow path of a hostile value.
	maxTraceHops = 12
)

// interval is a closed integer range with ±∞ endpoint sentinels.
type interval struct{ lo, hi int64 }

func fullInterval() interval { return interval{boundMin, boundMax} }

func (a interval) contains(b interval) bool { return a.lo <= b.lo && b.hi <= a.hi }

func ivJoin(a, b interval) interval {
	return interval{min(a.lo, b.lo), max(a.hi, b.hi)}
}

func ivMeet(a, b interval) interval {
	return interval{max(a.lo, b.lo), min(a.hi, b.hi)}
}

// satAdd adds with saturation at the sentinels; an ∞ operand absorbs.
func satAdd(a, b int64) int64 {
	s := a + b
	if a > 0 && b > 0 && s < 0 {
		return boundMax
	}
	if a < 0 && b < 0 && s >= 0 {
		return boundMin
	}
	if a == boundMax || b == boundMax {
		return boundMax
	}
	if a == boundMin || b == boundMin {
		return boundMin
	}
	return s
}

// satMul multiplies with saturation at the sentinels.
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	pos := (a > 0) == (b > 0)
	if a == boundMax || a == boundMin || b == boundMax || b == boundMin {
		if pos {
			return boundMax
		}
		return boundMin
	}
	p := a * b
	if p/b != a {
		if pos {
			return boundMax
		}
		return boundMin
	}
	return p
}

func satShl(a int64, sh int64) int64 {
	if a < 0 || sh < 0 {
		return boundMax
	}
	if sh > 62 || a > boundMax>>uint(sh) {
		return boundMax
	}
	return a << uint(sh)
}

// ivOp applies one arithmetic operator to two intervals, conservatively.
func ivOp(op token.Token, a, b interval) interval {
	switch op {
	case token.ADD:
		return interval{satAdd(a.lo, b.lo), satAdd(a.hi, b.hi)}
	case token.SUB:
		return interval{satAdd(a.lo, -b.hi), satAdd(a.hi, -b.lo)}
	case token.MUL:
		c := [4]int64{satMul(a.lo, b.lo), satMul(a.lo, b.hi), satMul(a.hi, b.lo), satMul(a.hi, b.hi)}
		out := interval{c[0], c[0]}
		for _, v := range c[1:] {
			out.lo, out.hi = min(out.lo, v), max(out.hi, v)
		}
		return out
	case token.QUO:
		if b.lo >= 1 && a.lo >= 0 {
			lo := int64(0)
			if b.hi != boundMax {
				lo = a.lo / b.hi
			}
			return interval{lo, a.hi / b.lo}
		}
	case token.REM:
		if b.lo >= 1 && a.lo >= 0 {
			hi := a.hi
			if b.hi != boundMax {
				hi = min(hi, b.hi-1)
			}
			return interval{0, hi}
		}
	case token.AND:
		if a.lo >= 0 && b.lo >= 0 {
			return interval{0, min(a.hi, b.hi)}
		}
	case token.OR, token.XOR:
		if a.lo >= 0 && b.lo >= 0 {
			hi := max(a.hi, b.hi)
			if hi == boundMax {
				return interval{0, boundMax}
			}
			n := bits.Len64(uint64(hi))
			if n >= 63 {
				return interval{0, boundMax}
			}
			return interval{0, 1<<uint(n) - 1}
		}
	case token.AND_NOT:
		if a.lo >= 0 {
			return interval{0, a.hi}
		}
	case token.SHR:
		if a.lo >= 0 && b.lo >= 0 {
			shHi := min(b.hi, 63)
			shLo := min(b.lo, 63)
			return interval{a.lo >> uint(shHi), a.hi >> uint(shLo)}
		}
	case token.SHL:
		if a.lo >= 0 && b.lo >= 0 {
			return interval{satShl(a.lo, b.lo), satShl(a.hi, b.hi)}
		}
	}
	return fullInterval()
}

// boundVal is the abstract value of one integer expression.
type boundVal struct {
	iv      interval // bound over all executions
	hostile bool     // influenced by wire bytes on some path
	hIv     interval // bound over the wire-influenced executions
	trace   []Hop    // source → … flow path of the hostile influence
}

// hiv returns the interval that bounds v in attacker-influenced
// executions: hIv for hostile values, the universal iv otherwise.
func (v boundVal) hiv() interval {
	if v.hostile {
		return v.hIv
	}
	return v.iv
}

func constVal(c int64) boundVal { return boundVal{iv: interval{c, c}} }

// typeInterval is the value range of a type — the default (clean) bound of
// anything the engine does not track more precisely.
func typeInterval(t types.Type) interval {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return fullInterval()
	}
	switch b.Kind() {
	case types.Int8:
		return interval{math.MinInt8, math.MaxInt8}
	case types.Int16:
		return interval{math.MinInt16, math.MaxInt16}
	case types.Int32:
		return interval{math.MinInt32, math.MaxInt32}
	case types.Uint8:
		return interval{0, math.MaxUint8}
	case types.Uint16:
		return interval{0, math.MaxUint16}
	case types.Uint32:
		return interval{0, math.MaxUint32}
	case types.Uint, types.Uint64, types.Uintptr:
		return interval{0, boundMax}
	}
	return fullInterval()
}

func typeDefault(t types.Type) boundVal {
	if t == nil {
		return boundVal{iv: fullInterval()}
	}
	return boundVal{iv: typeInterval(t)}
}

// isIntegerType reports whether t is a basic integer type — the only
// values the environment tracks.
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func pickTrace(a, b []Hop) []Hop {
	if len(a) > 0 {
		return a
	}
	return b
}

// joinVal is the lattice join. A hostile side keeps its hostile bound even
// when joined with a clean unbounded side — the heart of the dual domain.
func joinVal(a, b boundVal) boundVal {
	out := boundVal{iv: ivJoin(a.iv, b.iv)}
	switch {
	case a.hostile && b.hostile:
		out.hostile, out.hIv, out.trace = true, ivJoin(a.hIv, b.hIv), pickTrace(a.trace, b.trace)
	case a.hostile:
		out.hostile, out.hIv, out.trace = true, a.hIv, a.trace
	case b.hostile:
		out.hostile, out.hIv, out.trace = true, b.hIv, b.trace
	}
	return out
}

// combine applies a binary arithmetic operator to two abstract values.
func combine(op token.Token, a, b boundVal) boundVal {
	out := boundVal{iv: ivOp(op, a.iv, b.iv)}
	if a.hostile || b.hostile {
		out.hostile = true
		out.hIv = ivOp(op, a.hiv(), b.hiv())
		out.trace = pickTrace(a.trace, b.trace)
	}
	return out
}

// convertVal models a conversion T(v): an interval already inside the
// target type's range survives; anything wider wraps, so it widens to the
// target's full range.
func convertVal(v boundVal, t types.Type) boundVal {
	if !isIntegerType(t) {
		return typeDefault(t)
	}
	tIv := typeInterval(t)
	if !tIv.contains(v.iv) {
		v.iv = tIv
	}
	if v.hostile && !tIv.contains(v.hIv) {
		v.hIv = tIv
	}
	return v
}

// havocVal is the widening applied to variables reassigned inside a loop:
// the universal bound falls back to the type's range, and a previously
// hostile value stays hostile with an unknown hostile bound.
func havocVal(t types.Type, prev boundVal) boundVal {
	out := typeDefault(t)
	if prev.hostile {
		out.hostile, out.hIv, out.trace = true, fullInterval(), prev.trace
	}
	return out
}

func sameVal(a, b boundVal) bool {
	return a.iv == b.iv && a.hostile == b.hostile && (!a.hostile || a.hIv == b.hIv)
}

func appendHop(trace []Hop, pos token.Position, note string) []Hop {
	if len(trace) >= maxTraceHops {
		return trace
	}
	out := make([]Hop, len(trace), len(trace)+1)
	copy(out, trace)
	return append(out, Hop{Pos: pos, Note: note})
}

// benv maps local objects to their abstract values.
type benv map[types.Object]boundVal

func (e benv) clone() benv {
	out := make(benv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// joinEnv joins two environments derived from a common base; objects
// scoped to only one branch are dead after the join and dropped.
func joinEnv(a, b benv) benv {
	out := make(benv, len(a))
	for k, av := range a {
		if bv, ok := b[k]; ok {
			out[k] = joinVal(av, bv)
		}
	}
	return out
}

// paramCell is one summary slot: set once the first call site (or return
// statement) contributes a value.
type paramCell struct {
	v   boundVal
	set bool
}

// fnBounds is the interprocedural summary of one declared function.
type fnBounds struct {
	params  []paramCell
	results []paramCell
	called  bool // at least one static call site contributed arguments
	escapes bool // referenced as a value: callers are open-ended
}

// wireBoundStats counts the work of one reporting sweep, so the
// real-module regression test can assert the proof is not vacuous.
type wireBoundStats struct {
	Sources    int // hostile values introduced from wire bytes
	Narrowings int // guard refinements applied to hostile values
	Sinks      int // sink positions checked
}

// boundFinding is one hostile-value-reaches-sink violation.
type boundFinding struct {
	pos  token.Position
	expr string // source text of the sinking expression
	sink string // what the value reaches
	val  boundVal
}

// boundsEngine runs the whole-module analysis. Configuration is resolved
// by the wirebound analyzer before construction.
type boundsEngine struct {
	mod        *Module
	wirePkgs   map[string]bool     // packages whose wire reads are hostile
	allocFuncs map[*types.Func]int // declared alloc helper → size arg index
	sizeFuncs  map[string]int      // foreign FullName → length arg index
	maxBound   int64               // largest provable hostile upper bound

	sums     map[*types.Func]*fnBounds
	findings map[string]*boundFinding
	stats    wireBoundStats

	report  bool // final sweep: record findings and stats
	widen   bool
	changed bool
}

func newBoundsEngine(mod *Module) *boundsEngine {
	return &boundsEngine{
		mod:        mod,
		wirePkgs:   make(map[string]bool),
		allocFuncs: make(map[*types.Func]int),
		sizeFuncs:  make(map[string]int),
		sums:       make(map[*types.Func]*fnBounds),
		findings:   make(map[string]*boundFinding),
	}
}

// run iterates the summaries to a fixed point, then performs one reporting
// sweep with a clean findings map.
func (e *boundsEngine) run() {
	funcs := e.mod.Funcs()
	for pass := 0; pass < maxBoundPasses; pass++ {
		e.changed = false
		e.widen = pass >= boundWidenPass
		for _, fn := range funcs {
			e.walkFunc(fn)
		}
		if !e.changed {
			break
		}
	}
	e.report = true
	e.findings = make(map[string]*boundFinding)
	e.stats = wireBoundStats{}
	for _, fn := range funcs {
		e.walkFunc(fn)
	}
}

// sortedFindings returns the reporting sweep's findings in position order.
func (e *boundsEngine) sortedFindings() []*boundFinding {
	out := make([]*boundFinding, 0, len(e.findings))
	for _, f := range e.findings {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.sink < b.sink
	})
	return out
}

func (e *boundsEngine) bounds(fn *types.Func) *fnBounds {
	s := e.sums[fn]
	if s == nil {
		s = &fnBounds{}
		e.sums[fn] = s
	}
	return s
}

// joinCell joins v into a summary cell, with widening late in the
// fixpoint, and records whether the cell changed.
func (e *boundsEngine) joinCell(cells []paramCell, i int, v boundVal) bool {
	c := &cells[i]
	if !c.set {
		c.v, c.set = v, true
		return true
	}
	next := joinVal(c.v, v)
	if e.widen {
		if next.iv.lo < c.v.iv.lo {
			next.iv.lo = boundMin
		}
		if next.iv.hi > c.v.iv.hi {
			next.iv.hi = boundMax
		}
		if next.hostile && c.v.hostile {
			if next.hIv.lo < c.v.hIv.lo {
				next.hIv.lo = boundMin
			}
			if next.hIv.hi > c.v.hIv.hi {
				next.hIv.hi = boundMax
			}
		}
	}
	if sameVal(next, c.v) {
		return false
	}
	next.trace = pickTrace(c.v.trace, next.trace)
	c.v = next
	return true
}

// markEscape records that fn is used as a value, so unknown callers exist.
func (e *boundsEngine) markEscape(fn *types.Func) {
	s := e.bounds(fn)
	if !s.escapes {
		s.escapes = true
		e.changed = true
	}
}

// paramObjs returns the declared parameter objects of an in-module
// function, in signature order (receiver excluded, matching explicit call
// arguments).
func paramObjs(body *FuncBody) []types.Object {
	var out []types.Object
	if body.Decl.Type.Params == nil {
		return out
	}
	for _, field := range body.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed parameter still occupies a slot
			continue
		}
		for _, name := range field.Names {
			out = append(out, body.Pkg.Info.Defs[name])
		}
	}
	return out
}

// walkFunc analyzes one function body under the current summaries.
func (e *boundsEngine) walkFunc(fn *types.Func) {
	body := e.mod.Body(fn)
	if body == nil {
		return
	}
	s := &funcScope{
		eng: e,
		pkg: body.Pkg,
		fn:  fn,
		env: make(benv),
	}
	if _, isHelper := e.allocFuncs[fn]; isHelper {
		// A declared allocation helper IS the boundary: its call sites are
		// checked, its body is exempt (the make inside is the point).
		s.inAllocHelper = true
	}
	sum := e.bounds(fn)
	open := fn.Exported() || sum.escapes || !sum.called
	for i, obj := range paramObjs(body) {
		if obj == nil || !isIntegerType(obj.Type()) {
			continue
		}
		v := typeDefault(obj.Type())
		if sum.called && i < len(sum.params) && sum.params[i].set {
			v = sum.params[i].v
			if open {
				v = joinVal(v, typeDefault(obj.Type()))
			}
		}
		s.env[obj] = v
	}
	if recv := body.Decl.Recv; recv != nil {
		for _, field := range recv.List {
			for _, name := range field.Names {
				if obj := body.Pkg.Info.Defs[name]; obj != nil && isIntegerType(obj.Type()) {
					s.env[obj] = typeDefault(obj.Type())
				}
			}
		}
	}
	if res := body.Decl.Type.Results; res != nil {
		for _, field := range res.List {
			for _, name := range field.Names {
				if obj := body.Pkg.Info.Defs[name]; obj != nil {
					s.resultObjs = append(s.resultObjs, obj)
					if isIntegerType(obj.Type()) {
						s.env[obj] = constVal(0)
					}
				}
			}
		}
	}
	s.walkBlock(body.Decl.Body)
}

// setResults joins one return statement's values into fn's result summary.
func (e *boundsEngine) setResults(fn *types.Func, vals []boundVal, pos token.Position) {
	sum := e.bounds(fn)
	if len(sum.results) < len(vals) {
		sum.results = append(sum.results, make([]paramCell, len(vals)-len(sum.results))...)
	}
	for i, v := range vals {
		if v.hostile {
			v.trace = appendHop(v.trace, pos, fmt.Sprintf("returned from %s", fn.Name()))
		}
		if e.joinCell(sum.results, i, v) {
			e.changed = true
		}
	}
}

// resultVal reads one result slot of a callee's summary; unknown slots
// default to the declared result type's range.
func (e *boundsEngine) resultVal(fn *types.Func, i int) (boundVal, bool) {
	sum := e.sums[fn]
	if sum == nil || i >= len(sum.results) || !sum.results[i].set {
		return boundVal{}, false
	}
	return sum.results[i].v, true
}

// funcScope walks one function body, maintaining the abstract environment.
type funcScope struct {
	eng *boundsEngine
	pkg *Package
	fn  *types.Func
	env benv

	resultObjs    []types.Object // named results, for naked returns
	inAllocHelper bool
	terminated    bool // current path ended in return/panic
}

func (s *funcScope) pos(n ast.Node) token.Position { return s.pkg.Fset.Position(n.Pos()) }

func (s *funcScope) walkBlock(b *ast.BlockStmt) {
	for _, st := range b.List {
		if s.terminated {
			return
		}
		s.walkStmt(st)
	}
}

func (s *funcScope) walkStmt(st ast.Stmt) {
	switch x := st.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
			s.eval(call)
			if builtinName(s.pkg, call) == "panic" {
				s.terminated = true
			}
			return
		}
		s.eval(x.X)
	case *ast.AssignStmt:
		s.walkAssign(x)
	case *ast.IncDecStmt:
		op := token.ADD
		if x.Tok == token.DEC {
			op = token.SUB
		}
		v := combine(op, s.eval(x.X), constVal(1))
		s.assign(x.X, v, false)
	case *ast.DeclStmt:
		s.walkDecl(x)
	case *ast.ReturnStmt:
		s.walkReturn(x)
	case *ast.IfStmt:
		s.walkIf(x)
	case *ast.ForStmt:
		s.walkFor(x)
	case *ast.RangeStmt:
		s.walkRange(x)
	case *ast.SwitchStmt:
		s.walkSwitch(x)
	case *ast.TypeSwitchStmt:
		s.walkTypeSwitch(x)
	case *ast.SelectStmt:
		s.walkSelect(x)
	case *ast.BlockStmt:
		s.walkBlock(x)
	case *ast.LabeledStmt:
		s.walkStmt(x.Stmt)
	case *ast.GoStmt:
		s.eval(x.Call)
	case *ast.DeferStmt:
		s.eval(x.Call)
	case *ast.SendStmt:
		s.eval(x.Chan)
		s.eval(x.Value)
	case *ast.BranchStmt:
		// break/continue/goto are deliberately NOT path-terminating: their
		// environments conservatively join into the fall-through, so an
		// assignment before a break can never be lost. The cost is that a
		// `if bad { break }` guard narrows nothing — guards in this module
		// use error returns, which do terminate.
	}
}

func (s *funcScope) walkDecl(d *ast.DeclStmt) {
	gd, ok := d.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		switch {
		case len(vs.Values) == len(vs.Names):
			for i, name := range vs.Names {
				v := s.eval(vs.Values[i])
				s.assignIdent(name, v, true)
			}
		case len(vs.Values) == 0:
			for _, name := range vs.Names {
				if obj := s.pkg.Info.Defs[name]; obj != nil && isIntegerType(obj.Type()) {
					s.env[obj] = constVal(0) // zero value
				}
			}
		case len(vs.Values) == 1:
			vals := s.evalMulti(vs.Values[0], len(vs.Names))
			for i, name := range vs.Names {
				s.assignIdent(name, vals[i], true)
			}
		}
	}
}

func (s *funcScope) walkAssign(a *ast.AssignStmt) {
	if a.Tok != token.ASSIGN && a.Tok != token.DEFINE {
		// Compound assignment: x op= y.
		ops := map[token.Token]token.Token{
			token.ADD_ASSIGN: token.ADD, token.SUB_ASSIGN: token.SUB,
			token.MUL_ASSIGN: token.MUL, token.QUO_ASSIGN: token.QUO,
			token.REM_ASSIGN: token.REM, token.AND_ASSIGN: token.AND,
			token.OR_ASSIGN: token.OR, token.XOR_ASSIGN: token.XOR,
			token.SHL_ASSIGN: token.SHL, token.SHR_ASSIGN: token.SHR,
			token.AND_NOT_ASSIGN: token.AND_NOT,
		}
		v := combine(ops[a.Tok], s.eval(a.Lhs[0]), s.eval(a.Rhs[0]))
		s.assign(a.Lhs[0], v, false)
		return
	}
	if len(a.Rhs) == len(a.Lhs) {
		vals := make([]boundVal, len(a.Rhs))
		for i, r := range a.Rhs {
			vals[i] = s.eval(r)
		}
		for i, l := range a.Lhs {
			s.assign(l, vals[i], a.Tok == token.DEFINE)
		}
		return
	}
	// x, y := f()  /  v, ok := m[k]  /  v, ok := <-ch  /  v, ok := x.(T)
	vals := s.evalMulti(a.Rhs[0], len(a.Lhs))
	for i, l := range a.Lhs {
		s.assign(l, vals[i], a.Tok == token.DEFINE)
	}
}

// evalMulti evaluates an expression in a context expecting n values.
func (s *funcScope) evalMulti(expr ast.Expr, n int) []boundVal {
	out := make([]boundVal, n)
	if call, ok := ast.Unparen(expr).(*ast.CallExpr); ok {
		res := s.evalCall(call)
		copy(out, res)
		for i := len(res); i < n; i++ {
			out[i] = boundVal{iv: fullInterval()}
		}
		return out
	}
	s.eval(expr)
	// Map/channel/type-assert comma-ok forms: value by type, ok clean.
	if t := exprType(s.pkg, expr); t != nil && n > 0 {
		out[0] = typeDefault(t)
	}
	for i := range out {
		if out[i].iv == (interval{}) {
			out[i] = boundVal{iv: fullInterval()}
		}
	}
	return out
}

func (s *funcScope) assign(lhs ast.Expr, v boundVal, define bool) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		s.assignIdent(x, v, define)
	case *ast.IndexExpr:
		s.eval(x.X)
		idx := s.eval(x.Index)
		s.checkIndex(x, idx)
	case *ast.StarExpr, *ast.SelectorExpr:
		// Stores through pointers and into fields are untracked: later
		// reads see the clean type default (documented limitation).
		s.eval(x)
	}
}

func (s *funcScope) assignIdent(id *ast.Ident, v boundVal, define bool) {
	if id.Name == "_" {
		return
	}
	var obj types.Object
	if define {
		obj = s.pkg.Info.Defs[id]
	}
	if obj == nil {
		obj = s.pkg.Info.Uses[id]
	}
	if obj == nil || !isIntegerType(obj.Type()) {
		return
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	v = convertVal(v, obj.Type())
	if v.hostile {
		v.trace = appendHop(v.trace, s.pos(id), fmt.Sprintf("into %s", id.Name))
	}
	s.env[obj] = v
}

func (s *funcScope) walkReturn(r *ast.ReturnStmt) {
	var vals []boundVal
	sig := s.fn.Type().(*types.Signature)
	switch {
	case len(r.Results) == 0:
		for _, obj := range s.resultObjs {
			if v, ok := s.env[obj]; ok {
				vals = append(vals, v)
			} else {
				vals = append(vals, typeDefault(obj.Type()))
			}
		}
	case len(r.Results) == 1 && sig.Results().Len() > 1:
		vals = s.evalMulti(r.Results[0], sig.Results().Len())
	default:
		for _, res := range r.Results {
			vals = append(vals, s.eval(res))
		}
	}
	s.eng.setResults(s.fn, vals, s.pos(r))
	s.terminated = true
}

func (s *funcScope) walkIf(x *ast.IfStmt) {
	if x.Init != nil {
		s.walkStmt(x.Init)
	}
	s.eval(x.Cond) // evaluate once for call-site propagation and sinks
	base := s.env
	s.env = base.clone()
	s.applyCond(x.Cond, false)
	s.walkBlock(x.Body)
	thenEnv, thenTerm := s.env, s.terminated
	s.terminated = false
	s.env = base.clone()
	s.applyCond(x.Cond, true)
	elseTerm := false
	if x.Else != nil {
		s.walkStmt(x.Else)
		elseTerm = s.terminated
		s.terminated = false
	}
	elseEnv := s.env
	switch {
	case thenTerm && elseTerm:
		s.env = elseEnv
		s.terminated = true
	case thenTerm:
		s.env = elseEnv
	case elseTerm:
		s.env = thenEnv
	default:
		s.env = joinEnv(thenEnv, elseEnv)
	}
}

func (s *funcScope) walkFor(x *ast.ForStmt) {
	if x.Init != nil {
		s.walkStmt(x.Init)
	}
	entry := s.env.clone()
	assigned := s.assignedObjs(x.Body, x.Post)
	s.havoc(assigned)
	if x.Cond != nil {
		s.eval(x.Cond)
		s.checkTripCount(x.Cond, assigned)
		s.applyCond(x.Cond, false)
	}
	s.walkBlock(x.Body)
	s.terminated = false
	if x.Post != nil {
		s.walkStmt(x.Post)
	}
	// After the loop: the entry environment with every loop-assigned
	// object widened. (Refining with ¬cond would be unsound for
	// break-exits, so we do not.)
	s.env = entry
	s.havoc(assigned)
}

func (s *funcScope) walkRange(x *ast.RangeStmt) {
	rangedVal := s.eval(x.X)
	if t := exprType(s.pkg, x.X); t != nil && isIntegerType(t) {
		// Range-over-int: the ranged expression is the trip count.
		s.checkSink(x.X, rangedVal, "a loop trip count")
	}
	entry := s.env.clone()
	assigned := s.assignedObjs(x.Body, nil)
	if x.Key != nil {
		if id, ok := x.Key.(*ast.Ident); ok {
			if obj := s.objOf(id); obj != nil {
				assigned[obj] = true
			}
		}
	}
	if x.Value != nil {
		if id, ok := x.Value.(*ast.Ident); ok {
			if obj := s.objOf(id); obj != nil {
				assigned[obj] = true
			}
		}
	}
	s.havoc(assigned)
	if x.Key != nil {
		s.assign(x.Key, boundVal{iv: interval{0, boundMax}}, x.Tok == token.DEFINE)
	}
	if x.Value != nil {
		v := typeDefault(exprType(s.pkg, x.Value))
		if s.eng.wirePkgs[s.pkg.Path] && isByteSeq(exprType(s.pkg, x.X)) {
			v = s.hostileByte(x.Value, "wire byte read: range over "+boundExprText(x.X))
		}
		s.assign(x.Value, v, x.Tok == token.DEFINE)
	}
	s.walkBlock(x.Body)
	s.terminated = false
	s.env = entry
	s.havoc(assigned)
}

func (s *funcScope) walkSwitch(x *ast.SwitchStmt) {
	if x.Init != nil {
		s.walkStmt(x.Init)
	}
	if x.Tag != nil {
		s.eval(x.Tag)
	}
	s.walkCases(x.Body, func(cc *ast.CaseClause) {
		for _, e := range cc.List {
			s.eval(e)
		}
	})
}

func (s *funcScope) walkTypeSwitch(x *ast.TypeSwitchStmt) {
	if x.Init != nil {
		s.walkStmt(x.Init)
	}
	s.walkCases(x.Body, nil)
}

// walkCases walks every case clause of a switch on a clone of the entry
// environment and joins the surviving exits; without a default clause the
// entry environment itself survives too.
func (s *funcScope) walkCases(body *ast.BlockStmt, evalCase func(*ast.CaseClause)) {
	entry := s.env.clone()
	var exits []benv
	hasDefault := false
	for _, st := range body.List {
		cc, ok := st.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		s.env = entry.clone()
		s.terminated = false
		if evalCase != nil {
			evalCase(cc)
		}
		for _, cs := range cc.Body {
			if s.terminated {
				break
			}
			s.walkStmt(cs)
		}
		if !s.terminated {
			exits = append(exits, s.env)
		}
	}
	s.terminated = false
	if !hasDefault {
		exits = append(exits, entry)
	}
	if len(exits) == 0 {
		s.env = entry
		s.terminated = true
		return
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = joinEnv(out, e)
	}
	s.env = out
}

func (s *funcScope) walkSelect(x *ast.SelectStmt) {
	entry := s.env.clone()
	var exits []benv
	for _, st := range x.Body.List {
		cc, ok := st.(*ast.CommClause)
		if !ok {
			continue
		}
		s.env = entry.clone()
		s.terminated = false
		if cc.Comm != nil {
			s.walkStmt(cc.Comm)
		}
		for _, cs := range cc.Body {
			if s.terminated {
				break
			}
			s.walkStmt(cs)
		}
		if !s.terminated {
			exits = append(exits, s.env)
		}
	}
	s.terminated = false
	if len(exits) == 0 {
		s.env = entry
		return
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = joinEnv(out, e)
	}
	s.env = out
}

// assignedObjs collects every tracked object assigned anywhere in the
// given statements — the set a loop iteration may change.
func (s *funcScope) assignedObjs(stmts ...ast.Stmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := s.objOf(id); obj != nil {
				out[obj] = true
			}
		}
	}
	for _, st := range stmts {
		if st == nil {
			continue
		}
		ast.Inspect(st, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, l := range x.Lhs {
					record(l)
				}
			case *ast.IncDecStmt:
				record(x.X)
			case *ast.RangeStmt:
				if x.Key != nil {
					record(x.Key)
				}
				if x.Value != nil {
					record(x.Value)
				}
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					record(x.X) // address taken: may be written through
				}
			}
			return true
		})
	}
	return out
}

func (s *funcScope) objOf(id *ast.Ident) types.Object {
	obj := s.pkg.Info.Defs[id]
	if obj == nil {
		obj = s.pkg.Info.Uses[id]
	}
	if obj == nil || !isIntegerType(obj.Type()) {
		return nil
	}
	return obj
}

func (s *funcScope) havoc(objs map[types.Object]bool) {
	for obj := range objs {
		prev, ok := s.env[obj]
		if !ok {
			prev = typeDefault(obj.Type())
		}
		s.env[obj] = havocVal(obj.Type(), prev)
	}
}

// checkTripCount flags hostile unbounded loop-condition operands that the
// loop itself does not assign (the induction variable is expected to be
// havocked; the bound it runs to is not).
func (s *funcScope) checkTripCount(cond ast.Expr, assigned map[types.Object]bool) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
		default:
			return true
		}
		for _, operand := range []ast.Expr{be.X, be.Y} {
			id, ok := ast.Unparen(operand).(*ast.Ident)
			if !ok {
				continue
			}
			obj := s.objOf(id)
			if obj == nil || assigned[obj] {
				continue
			}
			if v, ok := s.env[obj]; ok {
				s.checkSink(operand, v, "a loop trip count")
			}
		}
		return true
	})
}

// ---- expression evaluation ----

func (s *funcScope) eval(expr ast.Expr) boundVal {
	expr = ast.Unparen(expr)
	if expr == nil {
		return boundVal{iv: fullInterval()}
	}
	// Constants first: the type checker folded them for us.
	if tv, ok := s.pkg.Info.Types[expr]; ok && tv.Value != nil {
		if c, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return constVal(c)
		}
		return boundVal{iv: fullInterval()}
	}
	switch x := expr.(type) {
	case *ast.Ident:
		if obj := s.pkg.Info.Uses[x]; obj != nil {
			if fn, ok := obj.(*types.Func); ok && s.eng.mod.Body(fn) != nil {
				s.eng.markEscape(fn)
			}
			if v, ok := s.env[obj]; ok {
				return v
			}
			return typeDefault(obj.Type())
		}
	case *ast.BinaryExpr:
		a, b := s.eval(x.X), s.eval(x.Y)
		switch x.Op {
		case token.LAND, token.LOR, token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			return boundVal{iv: fullInterval()} // boolean
		}
		return combine(x.Op, a, b)
	case *ast.UnaryExpr:
		v := s.eval(x.X)
		switch x.Op {
		case token.SUB:
			return combine(token.SUB, constVal(0), v)
		case token.ADD:
			return v
		}
		return boundVal{iv: fullInterval()}
	case *ast.CallExpr:
		res := s.evalCall(x)
		if len(res) > 0 {
			return res[0]
		}
		return boundVal{iv: fullInterval()}
	case *ast.IndexExpr:
		return s.evalIndex(x)
	case *ast.IndexListExpr:
		s.eval(x.X) // generic instantiation
	case *ast.SliceExpr:
		s.eval(x.X)
		for _, idx := range []ast.Expr{x.Low, x.High, x.Max} {
			if idx == nil {
				continue
			}
			v := s.eval(idx)
			s.checkSink(idx, v, "a slice bound")
		}
	case *ast.SelectorExpr:
		return s.evalSelector(x)
	case *ast.StarExpr:
		s.eval(x.X)
		return typeDefault(exprType(s.pkg, expr))
	case *ast.TypeAssertExpr:
		s.eval(x.X)
		return typeDefault(exprType(s.pkg, expr))
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				s.eval(kv.Value)
				continue
			}
			s.eval(el)
		}
	case *ast.KeyValueExpr:
		s.eval(x.Value)
	case *ast.FuncLit:
		// Closures see the surrounding locals; walk the body on a clone so
		// sinks inside are checked without perturbing this path's state.
		saved, savedTerm := s.env, s.terminated
		s.env, s.terminated = s.env.clone(), false
		s.walkBlock(x.Body)
		s.env, s.terminated = saved, savedTerm
	}
	return typeDefault(exprType(s.pkg, expr))
}

func (s *funcScope) evalIndex(x *ast.IndexExpr) boundVal {
	// A generic instantiation parses as an IndexExpr; its "index" is a
	// type, not a value.
	if tv, ok := s.pkg.Info.Types[x.Index]; ok && tv.IsType() {
		s.eval(x.X)
		return typeDefault(exprType(s.pkg, x))
	}
	s.eval(x.X)
	idx := s.eval(x.Index)
	xt := exprType(s.pkg, x.X)
	if xt != nil {
		if _, isMap := xt.Underlying().(*types.Map); isMap {
			return typeDefault(exprType(s.pkg, x)) // map keys are not offsets
		}
	}
	s.checkIndex(x, idx)
	if s.eng.wirePkgs[s.pkg.Path] && isByteSeq(xt) {
		return s.hostileByte(x, "wire byte read: "+boundExprText(x))
	}
	return typeDefault(exprType(s.pkg, x))
}

func (s *funcScope) checkIndex(x *ast.IndexExpr, idx boundVal) {
	s.checkSink(x.Index, idx, "an index expression")
}

func (s *funcScope) evalSelector(x *ast.SelectorExpr) boundVal {
	if obj := s.pkg.Info.Uses[x.Sel]; obj != nil {
		if fn, ok := obj.(*types.Func); ok && s.eng.mod.Body(fn) != nil {
			s.eng.markEscape(fn) // method value / qualified func used as value
		}
	}
	if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
		if _, isPkg := s.pkg.Info.Uses[id].(*types.PkgName); isPkg {
			return typeDefault(exprType(s.pkg, x))
		}
	}
	s.eval(x.X)
	// Field reads are untracked: the clean type default.
	return typeDefault(exprType(s.pkg, x))
}

func (s *funcScope) hostileByte(at ast.Node, note string) boundVal {
	if s.eng.report {
		s.eng.stats.Sources++
	}
	return boundVal{
		iv:      interval{0, 255},
		hostile: true,
		hIv:     interval{0, 255},
		trace:   []Hop{{Pos: s.pos(at), Note: note}},
	}
}

// evalCall evaluates a call expression, returning one abstract value per
// result. It is where sources (binary reads), sinks (allocation sizes,
// foreign length arguments) and interprocedural propagation live.
func (s *funcScope) evalCall(call *ast.CallExpr) []boundVal {
	pkg := s.pkg
	// Conversion: T(x).
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return []boundVal{convertVal(s.eval(call.Args[0]), tv.Type)}
		}
		return []boundVal{typeDefault(tv.Type)}
	}
	// Builtins.
	if name := builtinName(pkg, call); name != "" {
		return []boundVal{s.evalBuiltin(name, call)}
	}
	fn, iface := s.eng.mod.StaticCallee(pkg, call)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		s.eval(sel.X) // receiver (or package qualifier, harmless) side effects
	}
	args := make([]boundVal, len(call.Args))
	for i, a := range call.Args {
		args[i] = s.eval(a)
	}
	resultTypes := callResults(pkg, call)
	defaults := make([]boundVal, len(resultTypes))
	for i, t := range resultTypes {
		defaults[i] = typeDefault(t)
	}
	if fn == nil {
		return defaults
	}
	// Wire source: binary.{Little,Big}Endian.UintN inside a wire package.
	if v, ok := s.binarySource(fn, call); ok {
		return []boundVal{v}
	}
	// Foreign size-taking functions are sinks at the call site.
	if idx, ok := s.eng.sizeFuncs[fn.FullName()]; ok && idx < len(args) {
		s.checkSink(call.Args[idx], args[idx], fmt.Sprintf("the length argument of %s", fn.FullName()))
	}
	if iface {
		impls := s.eng.mod.Implementations(fn)
		out := defaults
		for _, impl := range impls {
			s.propagate(impl, call, args)
			for i := range out {
				if rv, ok := s.eng.resultVal(impl, i); ok {
					out[i] = joinVal(out[i], rv)
				}
			}
		}
		return out
	}
	if s.eng.mod.Body(fn) == nil {
		return defaults
	}
	// Declared allocation helpers: the size argument is a sink here, at
	// the call site — the boundary the helper's body is exempt from.
	if idx, ok := s.eng.allocFuncs[fn]; ok && idx < len(args) {
		s.checkSink(call.Args[idx], args[idx], fmt.Sprintf("the size argument of allocation helper %s", fn.Name()))
	}
	s.propagate(fn, call, args)
	out := defaults
	for i := range out {
		if rv, ok := s.eng.resultVal(fn, i); ok {
			v := rv
			// The universal bound of a result is still clamped by its
			// declared type.
			v = convertVal(v, resultTypes[i])
			out[i] = v
		}
	}
	return out
}

func (s *funcScope) evalBuiltin(name string, call *ast.CallExpr) boundVal {
	switch name {
	case "len", "cap":
		for _, a := range call.Args {
			s.eval(a)
		}
		// Memory-backed lengths are finite by construction and never
		// attacker-chosen beyond what an already-checked allocation
		// admitted: clean.
		return boundVal{iv: interval{0, boundMax}}
	case "make":
		if len(call.Args) > 0 {
			s.eval(call.Args[0])
		}
		for _, a := range call.Args[1:] {
			v := s.eval(a)
			s.checkSink(a, v, "an allocation size (make)")
		}
		return typeDefault(exprType(s.pkg, call))
	case "min", "max":
		if len(call.Args) == 0 {
			return boundVal{iv: fullInterval()}
		}
		out := s.eval(call.Args[0])
		for _, a := range call.Args[1:] {
			v := s.eval(a)
			merged := boundVal{}
			if name == "min" {
				merged.iv = interval{min(out.iv.lo, v.iv.lo), min(out.iv.hi, v.iv.hi)}
			} else {
				merged.iv = interval{max(out.iv.lo, v.iv.lo), max(out.iv.hi, v.iv.hi)}
			}
			if out.hostile || v.hostile {
				merged.hostile = true
				a, b := out.hiv(), v.hiv()
				if name == "min" {
					merged.hIv = interval{min(a.lo, b.lo), min(a.hi, b.hi)}
				} else {
					merged.hIv = interval{max(a.lo, b.lo), max(a.hi, b.hi)}
				}
				merged.trace = pickTrace(out.trace, v.trace)
			}
			out = merged
		}
		return out
	case "panic":
		for _, a := range call.Args {
			s.eval(a)
		}
		return boundVal{iv: fullInterval()}
	default:
		for _, a := range call.Args {
			s.eval(a)
		}
		return typeDefault(exprType(s.pkg, call))
	}
}

// binarySource recognises binary.{Little,Big}Endian.Uint{16,32,64} calls
// inside a configured wire package and returns the hostile read value.
func (s *funcScope) binarySource(fn *types.Func, call *ast.CallExpr) (boundVal, bool) {
	if !s.eng.wirePkgs[s.pkg.Path] {
		return boundVal{}, false
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
		return boundVal{}, false
	}
	var iv interval
	switch fn.Name() {
	case "Uint16":
		iv = interval{0, math.MaxUint16}
	case "Uint32":
		iv = interval{0, math.MaxUint32}
	case "Uint64":
		iv = interval{0, boundMax}
	default:
		return boundVal{}, false
	}
	if s.eng.report {
		s.eng.stats.Sources++
	}
	note := fmt.Sprintf("wire read: binary.%s(%s)", fn.Name(), boundExprText(call.Args[0]))
	return boundVal{
		iv:      iv,
		hostile: true,
		hIv:     iv,
		trace:   []Hop{{Pos: s.pos(call), Note: note}},
	}, true
}

// propagate joins the call's arguments into the callee's parameter
// summary, stamping a call hop onto hostile flows.
func (s *funcScope) propagate(fn *types.Func, call *ast.CallExpr, args []boundVal) {
	body := s.eng.mod.Body(fn)
	if body == nil {
		return
	}
	params := paramObjs(body)
	sum := s.eng.bounds(fn)
	if !sum.called {
		sum.called = true
		s.eng.changed = true
	}
	if len(sum.params) < len(params) {
		sum.params = append(sum.params, make([]paramCell, len(params)-len(sum.params))...)
	}
	sig := fn.Type().(*types.Signature)
	n := min(len(args), len(params))
	if sig.Variadic() && len(params) > 0 {
		// The variadic slot collects a slice, not our scalar: default it.
		n = min(n, len(params)-1)
		s.eng.joinCell(sum.params, len(params)-1, boundVal{iv: fullInterval()})
	}
	for i := 0; i < n; i++ {
		v := args[i]
		if params[i] != nil && !isIntegerType(params[i].Type()) {
			continue
		}
		if v.hostile {
			pname := fmt.Sprintf("#%d", i)
			if params[i] != nil {
				pname = params[i].Name()
			}
			v.trace = appendHop(v.trace, s.pos(call), fmt.Sprintf("passed to %s (param %s)", fn.Name(), pname))
		}
		if s.eng.joinCell(sum.params, i, v) {
			s.eng.changed = true
		}
	}
}

// ---- guard refinement ----

// applyCond refines the environment with the knowledge that cond evaluated
// to !negate on the current path.
func (s *funcScope) applyCond(cond ast.Expr, negate bool) {
	cond = ast.Unparen(cond)
	switch x := cond.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			s.applyCond(x.X, !negate)
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			if !negate { // a && b true: both hold
				s.applyCond(x.X, false)
				s.applyCond(x.Y, false)
			}
		case token.LOR:
			if negate { // !(a || b): both negations hold
				s.applyCond(x.X, true)
				s.applyCond(x.Y, true)
			}
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			op := x.Op
			if negate {
				op = negateCmp(op)
			}
			s.refine(x.X, op, x.Y)
			s.refine(x.Y, swapCmp(op), x.X)
		}
	}
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return op
}

func swapCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.GTR:
		return token.LSS
	case token.LEQ:
		return token.GEQ
	case token.GEQ:
		return token.LEQ
	}
	return op // EQL and NEQ are symmetric
}

// refinable decomposes a comparison operand into a tracked object plus a
// constant offset: x, x+c, c+x and x-c all refine x.
func (s *funcScope) refinable(e ast.Expr) (types.Object, int64) {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		if obj := s.objOf(id); obj != nil {
			return obj, 0
		}
		return nil, 0
	}
	be, ok := e.(*ast.BinaryExpr)
	if !ok || (be.Op != token.ADD && be.Op != token.SUB) {
		return nil, 0
	}
	constOf := func(e ast.Expr) (int64, bool) {
		if tv, ok := s.pkg.Info.Types[e]; ok && tv.Value != nil {
			if c, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
				return c, true
			}
		}
		return 0, false
	}
	if id, ok := ast.Unparen(be.X).(*ast.Ident); ok {
		if c, isC := constOf(be.Y); isC {
			if obj := s.objOf(id); obj != nil {
				if be.Op == token.SUB {
					return obj, -c
				}
				return obj, c
			}
		}
	}
	if be.Op == token.ADD {
		if id, ok := ast.Unparen(be.Y).(*ast.Ident); ok {
			if c, isC := constOf(be.X); isC {
				if obj := s.objOf(id); obj != nil {
					return obj, c
				}
			}
		}
	}
	return nil, 0
}

// refine narrows target's interval given `target op bound` holds. The
// narrowing bound always comes from the other operand's UNIVERSAL
// interval — its hostile bound would only hold on hostile paths, which is
// not a fact about this comparison.
func (s *funcScope) refine(target ast.Expr, op token.Token, bound ast.Expr) {
	obj, delta := s.refinable(target)
	if obj == nil {
		return
	}
	cur, ok := s.env[obj]
	if !ok {
		return
	}
	bv := s.eval(bound)
	cons := fullInterval() // constraint on target = obj + delta
	switch op {
	case token.LSS:
		cons.hi = satAdd(bv.iv.hi, -1)
	case token.LEQ:
		cons.hi = bv.iv.hi
	case token.GTR:
		cons.lo = satAdd(bv.iv.lo, 1)
	case token.GEQ:
		cons.lo = bv.iv.lo
	case token.EQL:
		cons = bv.iv
	default: // NEQ narrows nothing representable
		return
	}
	// Shift the constraint from target back to obj: obj = target - delta.
	cons = interval{satAdd(cons.lo, -delta), satAdd(cons.hi, -delta)}
	next := cur
	next.iv = ivMeet(next.iv, cons)
	if next.hostile {
		narrowed := ivMeet(next.hIv, cons)
		if s.eng.report && narrowed != next.hIv {
			s.eng.stats.Narrowings++
		}
		next.hIv = narrowed
	}
	s.env[obj] = next
}

// ---- sinks ----

// checkSink records a finding when a hostile value reaches a
// size/index/trip-count position without a finite proven bound.
func (s *funcScope) checkSink(arg ast.Expr, v boundVal, sink string) {
	if s.inAllocHelper {
		return
	}
	if s.eng.report {
		s.eng.stats.Sinks++
	}
	if !v.hostile {
		return
	}
	if v.hIv.hi != boundMax && v.hIv.hi <= s.eng.maxBound {
		return
	}
	if !s.eng.report {
		return
	}
	pos := s.pos(arg)
	key := fmt.Sprintf("%s:%d:%d|%s", pos.Filename, pos.Line, pos.Column, sink)
	s.eng.findings[key] = &boundFinding{
		pos:  pos,
		expr: boundExprText(arg),
		sink: sink,
		val:  v,
	}
}

// callResults returns the result types of a call expression.
func callResults(pkg *Package, call *ast.CallExpr) []types.Type {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		out := make([]types.Type, tuple.Len())
		for i := 0; i < tuple.Len(); i++ {
			out[i] = tuple.At(i).Type()
		}
		return out
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.Invalid {
		return nil
	}
	if tv.Type.String() == "()" {
		return nil
	}
	return []types.Type{tv.Type}
}

// isByteSeq reports whether t is a byte sequence a wire read indexes into:
// a byte slice, byte array, or pointer to byte array.
func isByteSeq(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isByteKind(u.Elem())
	case *types.Array:
		return isByteKind(u.Elem())
	case *types.Pointer:
		if arr, ok := u.Elem().Underlying().(*types.Array); ok {
			return isByteKind(arr.Elem())
		}
	}
	return false
}

func isByteKind(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// boundExprText renders a short source name for messages, extending
// exprText with call rendering.
func boundExprText(e ast.Expr) string {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		return boundExprText(call.Fun) + "(…)"
	}
	if be, ok := ast.Unparen(e).(*ast.BinaryExpr); ok {
		return boundExprText(be.X) + " " + be.Op.String() + " " + boundExprText(be.Y)
	}
	if lit, ok := ast.Unparen(e).(*ast.BasicLit); ok {
		return lit.Value
	}
	return exprText(e)
}
