package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// PrivacyTaint statically proves the paper's privacy claim: raw telemetry —
// performance-counter, IPC and power readings — never crosses the federated
// wire. It is an interprocedural forward taint analysis over the whole
// module: values of the configured telemetry types (and the results of the
// configured accessor functions) are sources; the federated wire boundary —
// fed message payload construction, nn.EncodeParams inputs, and Write-style
// calls inside the wire packages — are sinks. The one sanctioned flow, the
// learned parameter vector leaving internal/nn through (*Network).Params,
// is an explicit allowlist entry: the results of allowlisted functions are
// clean by contract, which is exactly the declassification the paper's
// architecture performs (telemetry shapes the weights locally; only the
// weights travel).
//
// Every finding carries the full source → … → sink path, one position per
// hop, so a violation reads as a proof trace of the leak. A finding can be
// suppressed at the sink line with //fedlint:ignore privacytaint, but the
// sanctioned flow needs no suppression — it is allowlisted, not ignored.
type PrivacyTaint struct {
	// Config declares sources, sinks and the allowlist. The zero value
	// analyzes nothing; DefaultSuite installs DefaultPrivacyConfig.
	Config TaintConfig
}

// TaintConfig names the sources, sinks and sanctioned flows of a privacy
// taint analysis. Functions are named as go/types renders them
// (types.Func.FullName): "pkgpath.Func" for package functions and
// "(*pkgpath.Type).Method" / "(pkgpath.Type).Method" for methods. Types
// are "pkgpath.TypeName" and fields "pkgpath.TypeName.Field".
type TaintConfig struct {
	// SourceTypes lists telemetry types; every value of such a type (or a
	// pointer/slice/map/channel of it) is tainted, as is every field read.
	SourceTypes []string
	// SourceFuncs lists telemetry accessors; their results are tainted.
	SourceFuncs []string
	// SinkFuncs lists functions whose arguments must never be tainted
	// (e.g. the wire parameter encoder).
	SinkFuncs []string
	// SinkFields lists struct fields that become wire payloads; a tainted
	// write into such a field is a leak at the write site.
	SinkFields []string
	// WriterSinkPkgs lists import paths in which every io.Writer-shaped
	// method call (Write, WriteString, …) is a wire sink.
	WriterSinkPkgs []string
	// Allow lists the sanctioned declassification boundary: functions whose
	// results are clean by contract even though telemetry shaped them.
	Allow []string
}

// DefaultPrivacyConfig is the fedpower module's privacy boundary:
//
//	sources  sim.Observation, sim.Stats, trace.Entry, and the sim.Device
//	         accessors producing them (Step, Stats)
//	sinks    the fed wire message payloads (fed.message.params and the
//	         hierarchical relay sums fed.message.sums), the wire parameter
//	         encoders (nn.EncodeParams, nn.EncodeParamsInto, the fed codec
//	         payload encoder, the relay-frame encoder and the exact
//	         accumulator's wire encoding), and every Write-style call
//	         inside internal/fed
//	allowed  (*nn.Network).Params — the learned parameter vector, the only
//	         data the paper permits to leave a device
func DefaultPrivacyConfig() TaintConfig {
	return TaintConfig{
		SourceTypes: []string{
			"fedpower/internal/sim.Observation",
			"fedpower/internal/sim.Stats",
			"fedpower/internal/trace.Entry",
		},
		SourceFuncs: []string{
			"(*fedpower/internal/sim.Device).Step",
			"(*fedpower/internal/sim.Device).Stats",
		},
		SinkFuncs: []string{
			"fedpower/internal/nn.EncodeParams",
			"fedpower/internal/nn.EncodeParamsInto",
			"(*fedpower/internal/fed.codecState).encodePayload",
			"(*fedpower/internal/fed.codecState).writeRelay",
			"(*fedpower/internal/nn.Accum).AppendWire",
		},
		SinkFields: []string{
			"fedpower/internal/fed.message.params",
			"fedpower/internal/fed.message.sums",
		},
		WriterSinkPkgs: []string{
			"fedpower/internal/fed",
		},
		Allow: []string{
			"(*fedpower/internal/nn.Network).Params",
		},
	}
}

func (PrivacyTaint) Name() string { return "privacytaint" }

func (PrivacyTaint) Doc() string {
	return "interprocedural taint analysis: raw telemetry (observations, traces, power readings) must never reach the federated wire; only allowlisted model parameters may"
}

// Check analyzes a single package as a one-package module, which keeps the
// analyzer usable in per-package harnesses and unit fixtures. Whole-module
// runs go through CheckModule.
func (p PrivacyTaint) Check(pkg *Package) []Diagnostic {
	return p.CheckModule(NewModule([]*Package{pkg}))
}

// CheckModule runs the taint analysis over the whole module.
func (p PrivacyTaint) CheckModule(mod *Module) []Diagnostic {
	cfg, unresolved := p.Config.resolve(mod)
	var out []Diagnostic
	// An unresolved spec would silently weaken the theorem (e.g. a renamed
	// Observation type leaving the analysis vacuous), so it is itself a
	// finding — except on partial modules (unit fixtures) where foreign
	// specs legitimately cannot resolve; those runs resolve what they can.
	if len(mod.Pkgs) > 1 {
		for _, spec := range unresolved {
			out = append(out, Diagnostic{
				Analyzer: "privacytaint",
				Pos:      modulePos(mod),
				Message:  fmt.Sprintf("config spec %q matches nothing in the module; the privacy boundary it names no longer exists", spec),
			})
		}
	}
	if cfg.empty() {
		return out
	}
	g := newTaintGraph(mod, cfg)
	g.build()
	for _, leak := range g.findLeaks() {
		out = append(out, Diagnostic{
			Analyzer: "privacytaint",
			Pos:      leak.sink.pos,
			Message: fmt.Sprintf("raw telemetry reaches the federated wire: %s flows into %s (%d-hop path below); only allowlisted model parameters may cross",
				leak.source, leak.sink.desc, len(leak.hops)),
			Path: leak.hops,
		})
	}
	return out
}

// modulePos anchors module-level findings at the first file of the first
// package, so they carry a real, clickable position.
func modulePos(mod *Module) token.Position {
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			return pkg.Fset.Position(f.Package)
		}
	}
	return token.Position{}
}

func (c *resolvedTaint) empty() bool {
	return len(c.sourceTypes) == 0 && len(c.sourceFuncs) == 0
}

// resolve binds the config's name specs to the module's type-checker
// objects, returning the bound config and every spec that matched nothing.
func (c TaintConfig) resolve(mod *Module) (*resolvedTaint, []string) {
	r := &resolvedTaint{
		sourceTypes: make(map[*types.TypeName]bool),
		sourceFuncs: make(map[*types.Func]bool),
		sinkFuncs:   make(map[*types.Func]bool),
		sinkFields:  make(map[*types.Var]bool),
		writerPkgs:  make(map[string]bool),
		allow:       make(map[*types.Func]bool),
	}
	var unresolved []string

	// Index declared functions (including methods) by their FullName, and
	// named types by "pkgpath.Name".
	funcsByName := make(map[string]*types.Func)
	for fn := range mod.funcs {
		funcsByName[fn.FullName()] = fn
	}
	typesByName := make(map[string]*types.TypeName)
	for _, pkg := range mod.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				typesByName[pkg.Path+"."+name] = tn
			}
		}
	}

	resolveFuncs := func(specs []string, into map[*types.Func]bool) {
		for _, spec := range specs {
			if fn, ok := funcsByName[spec]; ok {
				into[fn] = true
			} else {
				unresolved = append(unresolved, spec)
			}
		}
	}
	resolveFuncs(c.SourceFuncs, r.sourceFuncs)
	resolveFuncs(c.SinkFuncs, r.sinkFuncs)
	resolveFuncs(c.Allow, r.allow)

	for _, spec := range c.SourceTypes {
		if tn, ok := typesByName[spec]; ok {
			r.sourceTypes[tn] = true
		} else {
			unresolved = append(unresolved, spec)
		}
	}

	for _, spec := range c.SinkFields {
		i := strings.LastIndex(spec, ".")
		if i < 0 {
			unresolved = append(unresolved, spec)
			continue
		}
		typeName, fieldName := spec[:i], spec[i+1:]
		tn, ok := typesByName[typeName]
		if !ok {
			unresolved = append(unresolved, spec)
			continue
		}
		strct, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			unresolved = append(unresolved, spec)
			continue
		}
		found := false
		for j := 0; j < strct.NumFields(); j++ {
			if strct.Field(j).Name() == fieldName {
				r.sinkFields[strct.Field(j)] = true
				found = true
				break
			}
		}
		if !found {
			unresolved = append(unresolved, spec)
		}
	}

	pkgPaths := make(map[string]bool, len(mod.Pkgs))
	for _, pkg := range mod.Pkgs {
		pkgPaths[pkg.Path] = true
	}
	for _, spec := range c.WriterSinkPkgs {
		if pkgPaths[spec] {
			r.writerPkgs[spec] = true
		} else {
			unresolved = append(unresolved, spec)
		}
	}

	sort.Strings(unresolved)
	return r, unresolved
}
