package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file implements the forward taint engine underneath the privacytaint
// analyzer: a whole-module value-flow graph over variables, struct fields,
// function results and sink sites, built in one pass over every function
// body, then searched by BFS from the configured telemetry sources. The
// engine is deliberately conservative (field-insensitive across instances,
// no alias analysis for in-place mutation through call arguments) and
// reports each leak as a source → … → sink chain in which every hop carries
// a source position.
//
// Flow edges are added for: assignments and short declarations (including
// tuple and comma-ok forms), var-spec initialisers, composite literals
// (keyed and positional struct fields), return statements, channel sends,
// range statements, type-switch bindings, call arguments → parameters of
// in-module callees, interface calls → every in-module implementation, and
// — for callees without source in the module (standard library) — a
// conservative pass-through from every argument to the call result and to
// every mutable (pointer/slice/map) sibling argument, which is how flows
// like binary.PutUint32(buf, v) taint buf.

// taintKind discriminates the node kinds of the flow graph.
type taintKind int

const (
	nodeObj       taintKind = iota // a variable, parameter or named result
	nodeField                      // a struct field, field-insensitive across instances
	nodeResult                     // result idx of a declared function
	nodeLitResult                  // result idx of a function literal
	nodeSource                     // all values of one telemetry type
	nodeSink                       // one sink site (call argument or field write)
)

// taintNode is one comparable vertex of the flow graph.
type taintNode struct {
	kind taintKind
	obj  types.Object // nodeObj, nodeField
	fn   *types.Func  // nodeResult
	lit  *ast.FuncLit // nodeLitResult
	idx  int          // result index / sink site index
	typ  *types.TypeName
}

// taintEdge is one directed flow step with provenance for path reporting.
type taintEdge struct {
	to   taintNode
	pos  token.Position
	note string
}

// sinkSite is one concrete place where data crosses the guarded boundary.
type sinkSite struct {
	node taintNode
	pos  token.Position
	desc string
}

// taintGraph accumulates the module's flow edges, source roots and sinks.
type taintGraph struct {
	mod *Module
	cfg *resolvedTaint

	edges map[taintNode][]taintEdge
	roots []taintNode
	rootD map[taintNode]string // root -> human description
	sinks []*sinkSite

	// sanitized marks nodes whose value has passed through a sanctioned
	// cleansing step (e.g. a collected-keys slice handed to sort.Slice in
	// the maporder analysis); the BFS does not propagate taint out of a
	// sanitized node. privacytaint never populates the set — there is no
	// operation that launders telemetry into non-telemetry.
	sanitized map[taintNode]bool
}

// resolvedTaint is a TaintConfig bound to the concrete type-checker objects
// of one module (see TaintConfig.resolve in privacytaint.go).
type resolvedTaint struct {
	sourceTypes map[*types.TypeName]bool
	sourceFuncs map[*types.Func]bool
	sinkFuncs   map[*types.Func]bool
	sinkFields  map[*types.Var]bool
	writerPkgs  map[string]bool
	allow       map[*types.Func]bool
}

func newTaintGraph(mod *Module, cfg *resolvedTaint) *taintGraph {
	return &taintGraph{
		mod:       mod,
		cfg:       cfg,
		edges:     make(map[taintNode][]taintEdge),
		rootD:     make(map[taintNode]string),
		sanitized: make(map[taintNode]bool),
	}
}

func (g *taintGraph) addEdge(from, to taintNode, pos token.Position, note string) {
	if from == to {
		return
	}
	g.edges[from] = append(g.edges[from], taintEdge{to: to, pos: pos, note: note})
}

func (g *taintGraph) addRoot(n taintNode, desc string) {
	if _, ok := g.rootD[n]; ok {
		return
	}
	g.rootD[n] = desc
	g.roots = append(g.roots, n)
}

func (g *taintGraph) newSink(pos token.Position, desc string) taintNode {
	n := taintNode{kind: nodeSink, idx: len(g.sinks)}
	g.sinks = append(g.sinks, &sinkSite{node: n, pos: pos, desc: desc})
	return n
}

// isSourceType reports whether t is (or contains, through pointers, slices,
// arrays, maps or channels) one of the configured telemetry types, and
// returns the matched type's name object.
func (g *taintGraph) isSourceType(t types.Type) (*types.TypeName, bool) {
	for depth := 0; t != nil && depth < 8; depth++ {
		if named, ok := t.(*types.Named); ok {
			if g.cfg.sourceTypes[named.Obj()] {
				return named.Obj(), true
			}
		}
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Chan:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		default:
			return nil, false
		}
	}
	return nil, false
}

// build walks every file of every package, adding flow edges.
func (g *taintGraph) build() {
	for _, pkg := range g.mod.Pkgs {
		for _, file := range pkg.Files {
			g.walkFile(pkg, file)
		}
	}
}

// walkFile adds the flow edges contributed by one source file.
func (g *taintGraph) walkFile(pkg *Package, file *ast.File) {
	g.walkNode(pkg, file)
}

// walkNode adds the flow edges contributed by one subtree — a whole file
// for module-wide analyses (privacytaint), or a single function
// declaration for function-scoped ones (maporder).
func (g *taintGraph) walkNode(pkg *Package, root ast.Node) {
	inspectWithStack(root, func(n ast.Node, stack []ast.Node) {
		switch s := n.(type) {
		case *ast.FuncDecl:
			g.namedResultEdges(pkg, s.Type, s)
		case *ast.FuncLit:
			g.namedResultEdges(pkg, s.Type, s)
		case *ast.ValueSpec:
			g.valueSpec(pkg, s)
		case *ast.AssignStmt:
			g.assign(pkg, s)
		case *ast.ReturnStmt:
			g.ret(pkg, s, stack)
		case *ast.SendStmt:
			pos := pkg.Fset.Position(s.Arrow)
			g.flowInto(pkg, g.writeTargets(pkg, s.Chan), g.refs(pkg, s.Value), pos, "sent on channel")
		case *ast.RangeStmt:
			pos := pkg.Fset.Position(s.For)
			from := g.refs(pkg, s.X)
			for _, lhs := range []ast.Expr{s.Key, s.Value} {
				if lhs == nil {
					continue
				}
				g.flowInto(pkg, g.writeTargets(pkg, lhs), from, pos, "ranged into "+exprText(lhs))
			}
		case *ast.TypeSwitchStmt:
			g.typeSwitch(pkg, s)
		case *ast.CallExpr:
			g.call(pkg, s)
		case *ast.CompositeLit:
			g.composite(pkg, s)
		}
	})
}

// valueSpec handles `var x = expr` at package level and inside functions.
func (g *taintGraph) valueSpec(pkg *Package, s *ast.ValueSpec) {
	if len(s.Values) == 0 {
		return
	}
	pos := pkg.Fset.Position(s.Pos())
	if len(s.Values) == 1 && len(s.Names) > 1 {
		from := g.refs(pkg, s.Values[0])
		for _, name := range s.Names {
			g.flowInto(pkg, g.defTargets(pkg, name), from, pos, "assigned to "+name.Name)
		}
		return
	}
	for i, name := range s.Names {
		if i >= len(s.Values) {
			break
		}
		g.flowInto(pkg, g.defTargets(pkg, name), g.refs(pkg, s.Values[i]), pos, "assigned to "+name.Name)
	}
}

// assign handles =, :=, and the compound assignment operators.
func (g *taintGraph) assign(pkg *Package, s *ast.AssignStmt) {
	pos := pkg.Fset.Position(s.TokPos)
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Tuple assignment: multi-result call, comma-ok, or map/channel read.
		rhs := ast.Unparen(s.Rhs[0])
		if call, ok := rhs.(*ast.CallExpr); ok {
			if callee, _ := g.mod.StaticCallee(pkg, call); callee != nil && g.mod.Body(callee) != nil {
				for i, lhs := range s.Lhs {
					from := []taintNode{{kind: nodeResult, fn: callee, idx: i}}
					g.flowInto(pkg, g.writeTargets(pkg, lhs), from, pos, "assigned to "+exprText(lhs))
				}
				return
			}
		}
		from := g.refs(pkg, s.Rhs[0])
		for _, lhs := range s.Lhs {
			g.flowInto(pkg, g.writeTargets(pkg, lhs), from, pos, "assigned to "+exprText(lhs))
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		g.flowInto(pkg, g.writeTargets(pkg, lhs), g.refs(pkg, s.Rhs[i]), pos, "assigned to "+exprText(lhs))
	}
}

// ret connects return values to the enclosing function's result nodes,
// unless that function is allowlisted (its results are declared clean — the
// sanctioned declassification boundary).
func (g *taintGraph) ret(pkg *Package, s *ast.ReturnStmt, stack []ast.Node) {
	fn, lit := enclosingFunc(pkg, stack)
	if fn == nil && lit == nil {
		return
	}
	if fn != nil && g.cfg.allow[fn] {
		return
	}
	pos := pkg.Fset.Position(s.Return)
	for i, res := range s.Results {
		var to taintNode
		if fn != nil {
			to = taintNode{kind: nodeResult, fn: fn, idx: i}
		} else {
			to = taintNode{kind: nodeLitResult, lit: lit, idx: i}
		}
		note := "returned"
		if fn != nil {
			note = "returned from " + fn.Name()
		}
		for _, from := range g.refs(pkg, res) {
			g.addEdge(from, to, pos, note)
		}
	}
}

// enclosingFunc finds the innermost function containing the current node:
// either a declared function (with its *types.Func) or a function literal.
func enclosingFunc(pkg *Package, stack []ast.Node) (*types.Func, *ast.FuncLit) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return nil, f
		case *ast.FuncDecl:
			fn, _ := pkg.Info.Defs[f.Name].(*types.Func)
			return fn, nil
		}
	}
	return nil, nil
}

// namedResultEdges links a function's named result variables to its result
// nodes, so `res = x; return` flows like `return x`. Allowlisted functions
// are skipped: their results are clean by contract.
func (g *taintGraph) namedResultEdges(pkg *Package, ftype *ast.FuncType, owner ast.Node) {
	if ftype.Results == nil {
		return
	}
	var fn *types.Func
	var lit *ast.FuncLit
	switch o := owner.(type) {
	case *ast.FuncDecl:
		fn, _ = pkg.Info.Defs[o.Name].(*types.Func)
		if fn == nil || g.cfg.allow[fn] {
			return
		}
	case *ast.FuncLit:
		lit = o
	}
	idx := 0
	for _, field := range ftype.Results.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, name := range field.Names {
			obj := pkg.Info.Defs[name]
			if obj != nil {
				var to taintNode
				if fn != nil {
					to = taintNode{kind: nodeResult, fn: fn, idx: idx}
				} else {
					to = taintNode{kind: nodeLitResult, lit: lit, idx: idx}
				}
				g.addEdge(taintNode{kind: nodeObj, obj: obj}, to,
					pkg.Fset.Position(name.Pos()), "named result "+name.Name)
			}
			idx++
		}
	}
}

// typeSwitch flows the switched value into each clause's implicit binding.
func (g *taintGraph) typeSwitch(pkg *Package, s *ast.TypeSwitchStmt) {
	assign, ok := s.Assign.(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 {
		return
	}
	ta, ok := ast.Unparen(assign.Rhs[0]).(*ast.TypeAssertExpr)
	if !ok {
		return
	}
	from := g.refs(pkg, ta.X)
	pos := pkg.Fset.Position(s.Switch)
	for _, clause := range s.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if obj := pkg.Info.Implicits[cc]; obj != nil {
			g.flowInto(pkg, []taintNode{{kind: nodeObj, obj: obj}}, from, pos, "type-switch binding")
		}
	}
}

// call adds the edges a call site contributes: argument → parameter flows,
// interface dispatch to every in-module implementation, conservative
// pass-through for foreign callees, sink registration, and the copy()
// builtin's dst ← src flow.
func (g *taintGraph) call(pkg *Package, call *ast.CallExpr) {
	pos := pkg.Fset.Position(call.Lparen)

	// Conversions contribute nothing beyond refs pass-through.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	// Builtins: only copy moves data between distinct objects.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "copy" && len(call.Args) == 2 {
				g.flowInto(pkg, g.writeTargets(pkg, call.Args[0]), g.refs(pkg, call.Args[1]),
					pos, "copied into "+exprText(call.Args[0]))
			}
			return
		}
	}

	callee, iface := g.mod.StaticCallee(pkg, call)

	// Sink: tainted argument to a configured sink function.
	if callee != nil && g.cfg.sinkFuncs[callee] {
		sink := g.newSink(pos, "argument to "+callee.FullName())
		for _, arg := range call.Args {
			g.flowInto(pkg, []taintNode{sink}, g.refs(pkg, arg), pos, "passed to sink "+callee.FullName())
		}
	}
	// Sink: Write-style method calls inside the wire packages.
	if callee != nil && g.cfg.writerPkgs[pkg.Path] && isWriteMethod(callee) {
		sink := g.newSink(pos, "written to the wire ("+callee.Name()+" in "+pkg.Path+")")
		for _, arg := range call.Args {
			g.flowInto(pkg, []taintNode{sink}, g.refs(pkg, arg), pos, "written via "+callee.Name())
		}
	}

	switch {
	case callee == nil:
		// Dynamic call through a function value: conservative cross-argument
		// contamination (the callee may store any argument anywhere
		// reachable from its mutable arguments).
		g.crossArgEdges(pkg, call, pos)
	case iface:
		// Interface dispatch: bind to every in-module implementation, plus a
		// conservative pass-through in case the concrete type lives outside
		// the module.
		for _, cm := range g.mod.Implementations(callee) {
			g.paramEdges(pkg, cm, call, pos)
			g.linkResults(cm, callee, pos)
		}
		g.passThroughResults(pkg, callee, call, pos)
	case g.mod.Body(callee) != nil:
		g.paramEdges(pkg, callee, call, pos)
	default:
		// Foreign callee (standard library): arguments flow to the results
		// (handled by refs) and into mutable sibling arguments.
		g.crossArgEdges(pkg, call, pos)
	}

	// Source functions: their results are telemetry roots.
	if callee != nil && g.cfg.sourceFuncs[callee] {
		nres := callee.Type().(*types.Signature).Results().Len()
		for i := 0; i < nres; i++ {
			g.addRoot(taintNode{kind: nodeResult, fn: callee, idx: i},
				"result of "+callee.FullName())
		}
	}
}

// paramEdges flows call arguments (and the receiver) into the callee's
// parameter objects. The signature parameter vars of an in-module function
// are the same objects its body's identifiers resolve to, so these edges
// connect caller and callee precisely.
func (g *taintGraph) paramEdges(pkg *Package, callee *types.Func, call *ast.CallExpr, pos token.Position) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	args := call.Args
	// Method-expression form T.M(recv, args...): the first argument is the
	// receiver.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := pkg.Info.Selections[sel]; ok {
			switch s.Kind() {
			case types.MethodVal:
				if recv := sig.Recv(); recv != nil {
					g.flowInto(pkg, []taintNode{{kind: nodeObj, obj: recv}}, g.refs(pkg, sel.X),
						pos, "receiver of "+callee.Name())
				}
			case types.MethodExpr:
				if recv := sig.Recv(); recv != nil && len(args) > 0 {
					g.flowInto(pkg, []taintNode{{kind: nodeObj, obj: recv}}, g.refs(pkg, args[0]),
						pos, "receiver of "+callee.Name())
					args = args[1:]
				}
			}
		}
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for j, arg := range args {
		pidx := j
		if pidx >= params.Len() {
			pidx = params.Len() - 1 // variadic tail
		}
		pv := params.At(pidx)
		g.flowInto(pkg, []taintNode{{kind: nodeObj, obj: pv}}, g.refs(pkg, arg),
			pos, fmt.Sprintf("passed to %s (param %s)", callee.Name(), paramName(pv, pidx)))
	}
}

func paramName(pv *types.Var, idx int) string {
	if pv.Name() != "" && pv.Name() != "_" {
		return pv.Name()
	}
	return fmt.Sprintf("#%d", idx)
}

// linkResults connects a concrete method's results to the interface
// method's result nodes, so values returned by any implementation flow out
// of the dynamic call site.
func (g *taintGraph) linkResults(impl, ifaceFn *types.Func, pos token.Position) {
	nres := ifaceFn.Type().(*types.Signature).Results().Len()
	for i := 0; i < nres; i++ {
		g.addEdge(taintNode{kind: nodeResult, fn: impl, idx: i},
			taintNode{kind: nodeResult, fn: ifaceFn, idx: i},
			pos, "returned via interface "+ifaceFn.Name())
	}
}

// passThroughResults conservatively flows every argument of a dynamic call
// into its results (an unknown implementation may echo its inputs).
func (g *taintGraph) passThroughResults(pkg *Package, ifaceFn *types.Func, call *ast.CallExpr, pos token.Position) {
	nres := ifaceFn.Type().(*types.Signature).Results().Len()
	if nres == 0 {
		return
	}
	var results []taintNode
	for i := 0; i < nres; i++ {
		results = append(results, taintNode{kind: nodeResult, fn: ifaceFn, idx: i})
	}
	for _, arg := range call.Args {
		g.flowInto(pkg, results, g.refs(pkg, arg), pos, "through dynamic call "+ifaceFn.Name())
	}
}

// crossArgEdges models calls whose body is invisible (standard library,
// function values): every argument may be stored into any mutable sibling
// argument or the receiver, e.g. binary.PutUint32(buf, v) taints buf.
func (g *taintGraph) crossArgEdges(pkg *Package, call *ast.CallExpr, pos token.Position) {
	type mutable struct {
		targets []taintNode
		text    string
	}
	var muts []mutable
	addMutable := func(e ast.Expr) {
		tv, ok := pkg.Info.Types[e]
		if !ok || tv.Type == nil || !isMutableType(tv.Type) {
			return
		}
		if targets := g.writeTargets(pkg, e); len(targets) > 0 {
			muts = append(muts, mutable{targets: targets, text: exprText(e)})
		}
	}
	for _, arg := range call.Args {
		addMutable(arg)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			addMutable(sel.X)
		}
	}
	if len(muts) == 0 {
		return
	}
	for _, arg := range call.Args {
		from := g.refs(pkg, arg)
		if len(from) == 0 {
			continue
		}
		for _, mu := range muts {
			g.flowInto(pkg, mu.targets, from, pos, "stored into "+mu.text+" by opaque call")
		}
	}
}

func isMutableType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// isWriteMethod matches io.Writer-shaped methods: Write([]byte) or
// WriteString(string) style calls carrying an outbound byte payload.
func isWriteMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteTo", "ReadFrom":
		return sig.Params().Len() >= 1
	}
	return false
}

// composite flows keyed and positional struct-literal elements into the
// corresponding field nodes, registering sink sites for configured payload
// fields.
func (g *taintGraph) composite(pkg *Package, cl *ast.CompositeLit) {
	tv, ok := pkg.Info.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	strct, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	pos := pkg.Fset.Position(cl.Lbrace)
	for i, elt := range cl.Elts {
		var field *types.Var
		var value ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			field, _ = pkg.Info.Uses[key].(*types.Var)
			value = kv.Value
		} else {
			if i < strct.NumFields() {
				field = strct.Field(i)
			}
			value = elt
		}
		if field == nil {
			continue
		}
		from := g.refs(pkg, value)
		g.flowInto(pkg, []taintNode{{kind: nodeField, obj: field}}, from, pos,
			"stored in field "+field.Name())
		if g.cfg.sinkFields[field] {
			sink := g.newSink(pkg.Fset.Position(value.Pos()),
				"wire payload field "+field.Name())
			g.flowInto(pkg, []taintNode{sink}, from, pkg.Fset.Position(value.Pos()),
				"stored in wire payload field "+field.Name())
		}
	}
}

// flowInto adds edges from every source node to every target node.
func (g *taintGraph) flowInto(pkg *Package, targets, from []taintNode, pos token.Position, note string) {
	for _, t := range targets {
		for _, f := range from {
			g.addEdge(f, t, pos, note)
		}
	}
}

// defTargets resolves a defining identifier (:=, var, range) to its node.
func (g *taintGraph) defTargets(pkg *Package, id *ast.Ident) []taintNode {
	if id.Name == "_" {
		return nil
	}
	if obj := pkg.Info.Defs[id]; obj != nil {
		return []taintNode{{kind: nodeObj, obj: obj}}
	}
	if obj := pkg.Info.Uses[id]; obj != nil {
		return []taintNode{{kind: nodeObj, obj: obj}}
	}
	return nil
}

// writeTargets resolves the left-hand side of a flow to the graph nodes the
// written value lands in: the root variable for index/star/slice writes,
// plus the field node (and sink site, if configured) for field writes.
func (g *taintGraph) writeTargets(pkg *Package, e ast.Expr) []taintNode {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return g.defTargets(pkg, x)
	case *ast.SelectorExpr:
		var out []taintNode
		if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if fv, ok := sel.Obj().(*types.Var); ok {
				out = append(out, taintNode{kind: nodeField, obj: fv})
				if g.cfg.sinkFields[fv] {
					sink := g.newSink(pkg.Fset.Position(x.Pos()), "wire payload field "+fv.Name())
					out = append(out, sink)
				}
			}
			// The write lands in the field node only. Tainting the
			// enclosing object too would poison every other field of the
			// struct (writing obs into d.lastObs must not taint d.table),
			// and whole-object taint still reaches field reads through the
			// read-side base refs.
			return out
		}
		if obj, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok {
			// Qualified package-level variable.
			out = append(out, taintNode{kind: nodeObj, obj: obj})
		}
		return append(out, g.writeTargets(pkg, x.X)...)
	case *ast.IndexExpr:
		return g.writeTargets(pkg, x.X)
	case *ast.SliceExpr:
		return g.writeTargets(pkg, x.X)
	case *ast.StarExpr:
		return g.writeTargets(pkg, x.X)
	}
	return nil
}

// refs returns the graph nodes an expression reads: the variables, fields
// and call results it is built from, plus a telemetry-type root whenever
// the expression's static type is (or contains) a configured source type.
func (g *taintGraph) refs(pkg *Package, e ast.Expr) []taintNode {
	var out []taintNode
	seen := make(map[taintNode]bool)
	add := func(n taintNode) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	g.refsInto(pkg, e, add)
	return out
}

func (g *taintGraph) refsInto(pkg *Package, e ast.Expr, add func(taintNode)) {
	if e == nil {
		return
	}
	// Any value of a telemetry type is tainted at birth: reading it reads
	// the source itself.
	if tv, ok := pkg.Info.Types[e]; ok && tv.Type != nil && !tv.IsType() {
		if tn, ok := g.isSourceType(tv.Type); ok {
			n := taintNode{kind: nodeSource, typ: tn}
			g.addRoot(n, "value of telemetry type "+tn.Pkg().Path()+"."+tn.Name())
			// The edge from the source root to wherever this value flows is
			// added by the caller; record the read position via a
			// self-describing root.
			add(n)
		}
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[x]; obj != nil {
			if _, ok := obj.(*types.Var); ok {
				add(taintNode{kind: nodeObj, obj: obj})
			}
		} else if obj := pkg.Info.Defs[x]; obj != nil {
			if _, ok := obj.(*types.Var); ok {
				add(taintNode{kind: nodeObj, obj: obj})
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok {
			if sel.Kind() == types.FieldVal {
				if fv, ok := sel.Obj().(*types.Var); ok {
					add(taintNode{kind: nodeField, obj: fv})
				}
			}
			g.refsInto(pkg, x.X, add)
			return
		}
		// Qualified identifier pkg.X.
		if obj, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok {
			add(taintNode{kind: nodeObj, obj: obj})
		}
	case *ast.CallExpr:
		g.callRefs(pkg, x, add)
	case *ast.IndexExpr:
		g.refsInto(pkg, x.X, add)
	case *ast.SliceExpr:
		g.refsInto(pkg, x.X, add)
	case *ast.StarExpr:
		g.refsInto(pkg, x.X, add)
	case *ast.UnaryExpr:
		g.refsInto(pkg, x.X, add)
	case *ast.BinaryExpr:
		g.refsInto(pkg, x.X, add)
		g.refsInto(pkg, x.Y, add)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				g.refsInto(pkg, kv.Value, add)
				continue
			}
			g.refsInto(pkg, elt, add)
		}
	case *ast.TypeAssertExpr:
		g.refsInto(pkg, x.X, add)
	}
}

// callRefs resolves what reading a call expression's value reads: the
// callee's result nodes for resolvable callees with known bodies, or a
// conservative union of the arguments for conversions, builtins and
// foreign functions.
func (g *taintGraph) callRefs(pkg *Package, call *ast.CallExpr, add func(taintNode)) {
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: the value passes through unchanged.
		for _, arg := range call.Args {
			g.refsInto(pkg, arg, add)
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			for _, arg := range call.Args {
				g.refsInto(pkg, arg, add)
			}
			return
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		nres := 1
		if lit.Type.Results != nil {
			nres = lit.Type.Results.NumFields()
		}
		for i := 0; i < nres; i++ {
			add(taintNode{kind: nodeLitResult, lit: lit, idx: i})
		}
		return
	}
	callee, iface := g.mod.StaticCallee(pkg, call)
	switch {
	case callee == nil:
		for _, arg := range call.Args {
			g.refsInto(pkg, arg, add)
		}
	case iface || g.mod.Body(callee) != nil:
		nres := callee.Type().(*types.Signature).Results().Len()
		for i := 0; i < nres; i++ {
			add(taintNode{kind: nodeResult, fn: callee, idx: i})
		}
	default:
		// Foreign function: results are a function of the arguments.
		for _, arg := range call.Args {
			g.refsInto(pkg, arg, add)
		}
	}
}

// exprText renders a short name for an expression, for flow-note purposes.
func exprText(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	case *ast.SliceExpr:
		return exprText(x.X) + "[:]"
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return "&" + exprText(x.X)
		}
	}
	return "expression"
}

// taintFinding is one source → sink chain discovered by the search.
type taintFinding struct {
	sink   *sinkSite
	source string
	hops   []Hop
}

// findLeaks runs BFS from every source root and reconstructs one shortest
// path per reached sink site, in sink registration (≈ position) order.
func (g *taintGraph) findLeaks() []taintFinding {
	type step struct {
		prev taintNode
		edge taintEdge
		root bool
	}
	pred := make(map[taintNode]step)
	queue := make([]taintNode, 0, len(g.roots))
	for _, r := range g.roots {
		if _, ok := pred[r]; ok {
			continue
		}
		pred[r] = step{root: true}
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if g.sanitized[n] {
			continue
		}
		for _, e := range g.edges[n] {
			if _, ok := pred[e.to]; ok {
				continue
			}
			pred[e.to] = step{prev: n, edge: e}
			queue = append(queue, e.to)
		}
	}

	var out []taintFinding
	for _, sink := range g.sinks {
		if _, ok := pred[sink.node]; !ok {
			continue
		}
		var hops []Hop
		n := sink.node
		for {
			st := pred[n]
			if st.root {
				break
			}
			hops = append(hops, Hop{Pos: st.edge.pos, Note: st.edge.note})
			n = st.prev
		}
		// Reverse into source → sink order.
		for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
			hops[i], hops[j] = hops[j], hops[i]
		}
		out = append(out, taintFinding{sink: sink, source: g.rootD[n], hops: hops})
	}
	return out
}
