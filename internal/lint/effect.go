package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the shared machinery under the effect-and-allocation
// analyzers (allocfree, slotrace): //fedlint:allocfree directive
// collection, per-function allocation-site scanning with the two
// sanctioned exemptions, and memoized interprocedural write-effect
// summaries over the Module call graph.
//
// Both analyses are deliberately conservative in the same spirit as the
// taint engine: no alias analysis, field-insensitive where it matters,
// and dynamic calls treated pessimistically (allocfree) or as read-only
// (slotrace, documented on the analyzer).

const allocFreePrefix = "//fedlint:allocfree"

// isAllocFreeDirective reports whether a comment line is an allocfree
// annotation (optionally followed by free-form text).
func isAllocFreeDirective(text string) bool {
	if !strings.HasPrefix(text, allocFreePrefix) {
		return false
	}
	rest := strings.TrimPrefix(text, allocFreePrefix)
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// allocRoot is one function annotated //fedlint:allocfree in its doc
// comment: a root of the reachability proof.
type allocRoot struct {
	fn  *types.Func
	pos token.Position
}

// collectAllocFreeRoots scans every file for //fedlint:allocfree
// directives. A directive inside a function declaration's doc comment
// annotates that function; any other placement (detached comment, comment
// inside a body, doc of a type) cannot be resolved to a function and is
// returned as dangling — silently dropping it would leave the author
// believing a proof exists that was never run.
func collectAllocFreeRoots(mod *Module) (roots []allocRoot, dangling []token.Position) {
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			claimed := make(map[*ast.Comment]bool)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if !isAllocFreeDirective(c.Text) {
						continue
					}
					claimed[c] = true
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok && fd.Body != nil {
						roots = append(roots, allocRoot{fn: fn, pos: pkg.Fset.Position(c.Pos())})
					} else {
						dangling = append(dangling, pkg.Fset.Position(c.Pos()))
					}
				}
			}
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if isAllocFreeDirective(c.Text) && !claimed[c] {
						dangling = append(dangling, pkg.Fset.Position(c.Pos()))
					}
				}
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].fn.Pos() < roots[j].fn.Pos() })
	return roots, dangling
}

// allocSite is one heap-allocating construct found in a function body.
type allocSite struct {
	pos  token.Position
	what string
}

// allocCall is one outgoing static call edge of a function, kept for
// reachability and path reconstruction.
type allocCall struct {
	callee *types.Func
	pos    token.Position
	note   string
}

// allocFacts is the per-function summary the allocfree BFS consumes:
// direct allocation sites plus the in-module call edges to recurse into.
type allocFacts struct {
	sites []allocSite
	calls []allocCall
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(pkg *Package, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
		return id.Name
	}
	return ""
}

// condChecksLenCap reports whether a condition expression contains a call
// to the len or cap builtin — the shape of a capacity guard.
func condChecksLenCap(pkg *Package, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if b := builtinName(pkg, call); b == "len" || b == "cap" {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// allocExempt implements the two sanctioned escapes of the allocfree
// proof, checked against the ancestor stack of an allocation site:
//
//   - arguments of the panic builtin: a panic path has already left the
//     steady state, so building its message may allocate;
//   - branches of an if whose condition consults len or cap: the shape of
//     both the amortized-growth pattern (allocate only when capacity is
//     exhausted) and the guarded error return (allocate the error only
//     for malformed input). Neither runs in the steady state the proof is
//     about.
func allocExempt(pkg *Package, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.CallExpr:
			if builtinName(pkg, a) == "panic" {
				return true
			}
		case *ast.IfStmt:
			if condChecksLenCap(pkg, a.Cond) {
				return true
			}
		}
	}
	return false
}

// isNonEmptyInterface reports whether t's underlying type is an interface
// with at least one method (boxing into it allocates; the empty interface
// is flagged separately through the variadic ...any rule).
func isNonEmptyInterface(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	return ok && iface.NumMethods() > 0
}

// variadicAny reports whether a signature's final parameter is ...E with
// an interface element type — the fmt-style shape whose call sites box
// every argument.
func variadicAny(sig *types.Signature) bool {
	if sig == nil || !sig.Variadic() || sig.Params().Len() == 0 {
		return false
	}
	sl, ok := sig.Params().At(sig.Params().Len() - 1).Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	_, isIface := sl.Elem().Underlying().(*types.Interface)
	return isIface
}

// exprType returns the static type of an expression, or nil.
func exprType(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// scanAllocs computes the allocation facts of one function body: every
// heap-allocating construct not covered by an exemption, plus the static
// call edges the reachability proof must follow.
func scanAllocs(mod *Module, fb *FuncBody) *allocFacts {
	pkg := fb.Pkg
	facts := &allocFacts{}
	site := func(n ast.Node, stack []ast.Node, what string) {
		if allocExempt(pkg, stack) {
			return
		}
		facts.sites = append(facts.sites, allocSite{pos: pkg.Fset.Position(n.Pos()), what: what})
	}
	inspectWithStack(fb.Decl.Body, func(n ast.Node, stack []ast.Node) {
		switch x := n.(type) {
		case *ast.CallExpr:
			scanCall(mod, fb, x, stack, facts, site)
		case *ast.FuncLit:
			site(x, stack, "function literal (closure allocation)")
		case *ast.GoStmt:
			site(x, stack, "goroutine launch")
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(exprType(pkg, x)) {
				site(x, stack, "string concatenation")
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t := exprType(pkg, idx.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							site(lhs, stack, "map write (may grow the map)")
						}
					}
				}
			}
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(exprType(pkg, x.Lhs[0])) {
				site(x, stack, "string concatenation")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					site(x, stack, "escaping composite literal (&T{...})")
				}
			}
		case *ast.CompositeLit:
			if t := exprType(pkg, x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					site(x, stack, "slice literal")
				case *types.Map:
					site(x, stack, "map literal")
				}
			}
		}
	})
	return facts
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// scanCall classifies one call expression for the allocfree scan: builtin
// allocators, allocating conversions, boxing at the call boundary,
// fmt/log and variadic ...any callees, dynamic calls, and the static call
// edges to recurse into.
func scanCall(mod *Module, fb *FuncBody, call *ast.CallExpr, stack []ast.Node,
	facts *allocFacts, site func(ast.Node, []ast.Node, string)) {
	pkg := fb.Pkg
	pos := pkg.Fset.Position(call.Lparen)

	// Conversion: string <-> []byte/[]rune copies, boxing conversions.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			dst, src := tv.Type, exprType(pkg, call.Args[0])
			if conversionAllocates(dst, src) {
				site(call, stack, "allocating conversion "+types.TypeString(dst, nil)+"(...)")
			}
			if src != nil && isNonEmptyInterface(dst) && !types.IsInterface(src) {
				site(call, stack, "boxing conversion into non-empty interface "+types.TypeString(dst, nil))
			}
		}
		return
	}

	switch builtinName(pkg, call) {
	case "make":
		site(call, stack, "make")
		return
	case "new":
		site(call, stack, "new")
		return
	case "append":
		site(call, stack, "append may grow its backing array")
		return
	case "print", "println":
		site(call, stack, "print builtin")
		return
	case "":
		// Not a builtin; fall through to callee resolution.
	default:
		return // len, cap, copy, delete, panic, ...: no allocation
	}

	callee, iface := mod.StaticCallee(pkg, call)
	switch {
	case callee == nil:
		site(call, stack, "dynamic call through a function value (cannot be proven allocation-free)")
		return
	case iface:
		impls := mod.Implementations(callee)
		if len(impls) == 0 {
			site(call, stack, "call through interface "+callee.Name()+" with no in-module implementation")
		}
		for _, impl := range impls {
			facts.calls = append(facts.calls, allocCall{
				callee: impl, pos: pos,
				note: "calls " + impl.FullName() + " (via interface " + callee.Name() + ")",
			})
		}
	case mod.Body(callee) != nil:
		facts.calls = append(facts.calls, allocCall{
			callee: callee, pos: pos, note: "calls " + callee.FullName(),
		})
	default:
		// Foreign callee: assumed allocation-free except for the known
		// allocators — fmt/log (formatting machinery) and any ...any
		// variadic (every argument is boxed at the call site).
		if p := callee.Pkg(); p != nil && (p.Path() == "fmt" || p.Path() == "log") {
			site(call, stack, "call to "+callee.FullName()+" (fmt/log allocates)")
			return
		}
	}

	sig, _ := callee.Type().(*types.Signature)
	if variadicAny(sig) && len(call.Args) >= sig.Params().Len() {
		site(call, stack, "variadic ...interface{} call to "+callee.Name()+" boxes its arguments")
	}
	// Boxing at the call boundary: a non-interface argument passed to a
	// non-empty-interface parameter allocates the interface payload.
	if sig != nil {
		params := sig.Params()
		for j, arg := range call.Args {
			pidx := j
			if pidx >= params.Len() {
				if !sig.Variadic() {
					break
				}
				pidx = params.Len() - 1
			}
			pt := params.At(pidx).Type()
			if sig.Variadic() && pidx == params.Len()-1 && !call.Ellipsis.IsValid() {
				if sl, ok := pt.Underlying().(*types.Slice); ok {
					pt = sl.Elem()
				}
			}
			at := exprType(pkg, arg)
			if at != nil && isNonEmptyInterface(pt) && !types.IsInterface(at) {
				site(arg, stack, "argument boxed into non-empty interface parameter of "+callee.Name())
			}
		}
	}
}

// conversionAllocates reports whether converting src to dst copies into a
// fresh heap object: string <-> []byte / []rune in either direction.
func conversionAllocates(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// ---------------------------------------------------------------------------
// Write-effect summaries (the slotrace half of the effect analysis).

// effTargetKind discriminates what a function writes through.
type effTargetKind int

const (
	effRecv   effTargetKind = iota // writes through its receiver
	effParam                       // writes through parameter idx
	effGlobal                      // writes a package-level variable
)

// effTarget is one comparable write target of a function's summary.
type effTarget struct {
	kind effTargetKind
	idx  int // parameter index for effParam
}

// writeEffect summarises what one function writes outside its own frame.
// Each target carries one representative hop chain ending at the concrete
// write, for path reporting.
type writeEffect struct {
	targets map[effTarget][]Hop
}

func newWriteEffect() *writeEffect {
	return &writeEffect{targets: make(map[effTarget][]Hop)}
}

func (w *writeEffect) add(t effTarget, hops []Hop) {
	if _, ok := w.targets[t]; ok {
		return
	}
	w.targets[t] = hops
}

// effectEngine memoizes write-effect summaries over the module call
// graph. Recursion through call cycles is cut off (a cycle member's
// callees see an empty summary for it), mirroring Module.Signals.
type effectEngine struct {
	mod        *Module
	memo       map[*types.Func]*writeEffect
	inProgress map[*types.Func]bool
}

func newEffectEngine(mod *Module) *effectEngine {
	return &effectEngine{
		mod:        mod,
		memo:       make(map[*types.Func]*writeEffect),
		inProgress: make(map[*types.Func]bool),
	}
}

// effects returns fn's write-effect summary, computing and memoizing it
// on first use. Functions without in-module bodies summarise to empty.
func (e *effectEngine) effects(fn *types.Func) *writeEffect {
	if w, ok := e.memo[fn]; ok {
		return w
	}
	if e.inProgress[fn] {
		return newWriteEffect()
	}
	fb := e.mod.Body(fn)
	if fb == nil {
		return newWriteEffect()
	}
	e.inProgress[fn] = true
	w := e.compute(fn, fb)
	delete(e.inProgress, fn)
	e.memo[fn] = w
	return w
}

// foreignMayWriteArgs reports whether a foreign (out-of-module) callee
// may write through its mutable arguments. Most are treated
// conservatively as writers (binary.PutUint32(buf, v) really does write
// buf), but the pure-reader stdlib families pervasive in wire hot paths
// are excluded — flagging binary.LittleEndian.Uint32(payload) as a write
// of payload would poison every decode path. Receiver mutation is judged
// separately (a foreign method may always write its mutable receiver:
// rng.Intn advances the generator).
func foreignMayWriteArgs(callee *types.Func) bool {
	p := callee.Pkg()
	if p == nil {
		return true
	}
	switch p.Path() {
	case "math", "math/bits", "strconv", "unicode", "unicode/utf8":
		return false
	case "encoding/binary":
		name := callee.Name()
		return strings.HasPrefix(name, "Put") || strings.HasPrefix(name, "Append") ||
			strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Read") ||
			strings.HasPrefix(name, "Decode")
	}
	return true
}

// isPkgLevel reports whether obj is a package-level variable.
func isPkgLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// rootTargets maps fn's receiver and parameter objects to their targets.
func rootTargets(fn *types.Func) map[types.Object]effTarget {
	out := make(map[types.Object]effTarget)
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return out
	}
	if recv := sig.Recv(); recv != nil {
		out[recv] = effTarget{kind: effRecv}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out[sig.Params().At(i)] = effTarget{kind: effParam, idx: i}
	}
	return out
}

// originSet is the set of write targets an object can alias.
type originSet map[effTarget]bool

// computeOrigins runs a small fixpoint over fn's body mapping each local
// variable to the receiver/parameter/global roots whose referents it may
// alias. Only reference-carrying types propagate (a struct copied by
// value detaches from its source); two passes suffice for the
// assignment-through-intermediate chains that occur in practice.
func computeOrigins(fb *FuncBody, roots map[types.Object]effTarget) map[types.Object]originSet {
	pkg := fb.Pkg
	origins := make(map[types.Object]originSet)

	originsOf := func(e ast.Expr) originSet {
		out := make(originSet)
		ast.Inspect(e, func(n ast.Node) bool {
			// A subexpression of non-reference type (an int from len(x), a
			// float element read, a struct copied by value) cannot carry an
			// alias; pruning it keeps size arguments like make(_, len(p))
			// from falsely tying the result to p.
			if sub, ok := n.(ast.Expr); ok {
				if t := exprType(pkg, sub); t != nil && !isMutableType(t) {
					return false
				}
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[id]
			if obj == nil {
				obj = pkg.Info.Defs[id]
			}
			v, ok := obj.(*types.Var)
			if !ok || !isMutableType(v.Type()) {
				return true
			}
			if t, isRoot := roots[v]; isRoot {
				out[t] = true
			} else if isPkgLevel(v) {
				out[effTarget{kind: effGlobal}] = true
			}
			for t := range origins[v] {
				out[t] = true
			}
			return true
		})
		return out
	}
	merge := func(id *ast.Ident, from originSet) {
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		set := origins[v]
		if set == nil {
			set = make(originSet)
			origins[v] = set
		}
		for t := range from {
			set[t] = true
		}
	}

	for pass := 0; pass < 2; pass++ {
		ast.Inspect(fb.Decl.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
					from := originsOf(s.Rhs[0])
					for _, lhs := range s.Lhs {
						if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
							merge(id, from)
						}
					}
					return true
				}
				for i, lhs := range s.Lhs {
					if i >= len(s.Rhs) {
						break
					}
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						merge(id, originsOf(s.Rhs[i]))
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if i < len(s.Values) {
						merge(name, originsOf(s.Values[i]))
					} else if len(s.Values) == 1 {
						merge(name, originsOf(s.Values[0]))
					}
				}
			case *ast.RangeStmt:
				from := originsOf(s.X)
				for _, lhs := range []ast.Expr{s.Key, s.Value} {
					if id, ok := lhs.(*ast.Ident); ok && lhs != nil {
						merge(id, from)
					}
				}
			}
			return true
		})
	}
	return origins
}

// writeBaseObjs resolves the base variables an lvalue (or written-through
// call argument) navigates from: x in x[i], *x, x.f, x[i:j].
func writeBaseObjs(pkg *Package, e ast.Expr) []types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			obj = pkg.Info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			return []types.Object{v}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return writeBaseObjs(pkg, x.X)
		}
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok {
			return []types.Object{v} // qualified package-level variable
		}
	case *ast.IndexExpr:
		return writeBaseObjs(pkg, x.X)
	case *ast.SliceExpr:
		return writeBaseObjs(pkg, x.X)
	case *ast.StarExpr:
		return writeBaseObjs(pkg, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return writeBaseObjs(pkg, x.X) // writing through &x writes x
		}
	}
	return nil
}

// compute builds fn's write-effect summary: direct writes through roots
// or root-aliasing locals, plus propagated effects of every statically
// resolvable callee.
func (e *effectEngine) compute(fn *types.Func, fb *FuncBody) *writeEffect {
	pkg := fb.Pkg
	w := newWriteEffect()
	roots := rootTargets(fn)
	origins := computeOrigins(fb, roots)

	// resolveWrite records a write through expression lv, attributing it
	// to every root target lv's base objects may alias.
	resolveWrite := func(lv ast.Expr, pos token.Position, note string, plainIdent bool) {
		for _, obj := range writeBaseObjs(pkg, lv) {
			hop := []Hop{{Pos: pos, Note: note}}
			if isPkgLevel(obj) {
				w.add(effTarget{kind: effGlobal}, hop)
				continue
			}
			if plainIdent {
				continue // rebinding a local or parameter variable: frame-local
			}
			if t, ok := roots[obj]; ok {
				if isMutableType(obj.Type()) {
					w.add(t, hop)
				}
				continue
			}
			for t := range origins[obj] {
				w.add(t, hop)
			}
		}
	}
	// propagate maps one callee write target onto the caller's frame
	// through the expression standing at that position of the call.
	propagate := func(arg ast.Expr, pos token.Position, callee *types.Func, hops []Hop) {
		for _, obj := range writeBaseObjs(pkg, arg) {
			chain := append([]Hop{{Pos: pos, Note: "calls " + callee.Name() + ", which writes through " + exprText(arg)}}, hops...)
			if isPkgLevel(obj) {
				w.add(effTarget{kind: effGlobal}, chain)
				continue
			}
			if t, ok := roots[obj]; ok {
				if isMutableType(obj.Type()) {
					w.add(t, chain)
				}
				continue
			}
			for t := range origins[obj] {
				w.add(t, chain)
			}
		}
	}
	applyCallee := func(call *ast.CallExpr, callee *types.Func, pos token.Position) {
		eff := e.effects(callee)
		for t, hops := range eff.targets {
			switch t.kind {
			case effGlobal:
				w.add(effTarget{kind: effGlobal},
					append([]Hop{{Pos: pos, Note: "calls " + callee.Name() + ", which writes package-level state"}}, hops...))
			case effParam:
				if t.idx < len(call.Args) {
					propagate(call.Args[t.idx], pos, callee, hops)
				}
			case effRecv:
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
						propagate(sel.X, pos, callee, hops)
					}
				}
			}
		}
	}

	ast.Inspect(fb.Decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				_, plain := ast.Unparen(lhs).(*ast.Ident)
				resolveWrite(lhs, pkg.Fset.Position(s.TokPos), "writes "+exprText(lhs), plain)
			}
		case *ast.IncDecStmt:
			_, plain := ast.Unparen(s.X).(*ast.Ident)
			resolveWrite(s.X, pkg.Fset.Position(s.TokPos), "writes "+exprText(s.X), plain)
		case *ast.CallExpr:
			pos := pkg.Fset.Position(s.Lparen)
			switch builtinName(pkg, s) {
			case "copy", "append", "delete":
				if len(s.Args) > 0 {
					resolveWrite(s.Args[0], pos, "writes through "+exprText(s.Args[0]), false)
				}
				return true
			case "":
				// Not a builtin.
			default:
				return true
			}
			callee, iface := e.mod.StaticCallee(pkg, s)
			switch {
			case callee == nil:
				// Dynamic call through a function value: assumed read-only
				// (documented on the slotrace analyzer).
			case iface:
				for _, impl := range e.mod.Implementations(callee) {
					applyCallee(s, impl, pos)
				}
			case e.mod.Body(callee) != nil:
				applyCallee(s, callee, pos)
			default:
				// Foreign callee: may write through any mutable argument or
				// its receiver (binary.PutUint32(buf, v), rng.Intn(...)).
				if foreignMayWriteArgs(callee) {
					for _, arg := range s.Args {
						if t := exprType(pkg, arg); t != nil && isMutableType(t) {
							resolveWrite(arg, pos, "passed to "+callee.Name()+", which may write through it", false)
						}
					}
				}
				if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok {
					if sl, ok := pkg.Info.Selections[sel]; ok && sl.Kind() == types.MethodVal {
						if t := exprType(pkg, sel.X); t != nil && isMutableType(t) {
							resolveWrite(sel.X, pos, "receiver of foreign method "+callee.Name(), false)
						}
					}
				}
			}
		}
		return true
	})
	return w
}
