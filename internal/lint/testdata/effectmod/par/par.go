// Package par mirrors the real worker pool's fan-out contract so the
// slotrace fixture can exercise the own-slot discipline: tasks run
// conceptually in parallel and may only write state owned by their index.
package par

// ForEach runs task(0..n-1); the fixture stand-in for the deterministic
// pool named in the SlotRace config.
func ForEach(width, n int, task func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := task(i); err != nil {
			return err
		}
	}
	return nil
}
