// Package par mirrors the real worker pool's fan-out contract so the
// slotrace fixture can exercise the own-slot discipline: tasks run
// conceptually in parallel and may only write state owned by their index.
package par

// ForEach runs task(0..n-1); the fixture stand-in for the deterministic
// pool named in the SlotRace config.
func ForEach(width, n int, task func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := task(i); err != nil {
			return err
		}
	}
	return nil
}

// Pool mirrors the persistent worker pool: the task is fixed at
// construction and re-run every phase, so the own-slot contract binds at
// NewPool rather than at each Run.
type Pool struct {
	task func(i int)
}

// NewPool is the second fan-out point named in the SlotRace config.
func NewPool(task func(i int)) *Pool {
	return &Pool{task: task}
}

// Run executes task(0..n-1) for one phase.
func (p *Pool) Run(width, n int) {
	for i := 0; i < n; i++ {
		p.task(i)
	}
}

// Close releases the pool.
func (p *Pool) Close() {}
