// Package hotpath plants the allocfree fixture: one annotated root whose
// proof must fail (an append hidden three calls deep), one clean root that
// exercises the capacity-guard exemption, a dangling directive, and an
// ignore directive naming an analyzer that does not exist.
package hotpath

// scratch is package-level state; the directive below is attached to a var
// declaration, not a function, so the proof it requests never runs — the
// analyzer must flag it rather than silently ignore it.
//
//fedlint:allocfree
var scratch []float64

// Accumulate claims to be allocation-free but the claim is false: three
// calls down, push appends into a slice that may grow.
//
//fedlint:allocfree
func Accumulate(dst []float64, src []float64) []float64 {
	return level1(dst, src)
}

func level1(dst, src []float64) []float64 {
	return level2(dst, src)
}

func level2(dst, src []float64) []float64 {
	for _, v := range src {
		dst = push(dst, v)
	}
	return dst
}

func push(dst []float64, v float64) []float64 {
	return append(dst, v)
}

// FillInto is the clean counterpart: the only make sits under a capacity
// guard, so the steady state allocates nothing and the proof holds.
//
//fedlint:allocfree
func FillInto(dst []float64, src []float64) []float64 {
	if cap(dst) < len(src) {
		dst = make([]float64, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

// Guarded exists to host the unknown-analyzer ignore seed.
func Guarded(x float64) float64 {
	//fedlint:ignore nosuchanalyzer
	return x * 2
}
