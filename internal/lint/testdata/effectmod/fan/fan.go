// Package fan plants the slotrace fixture: ForEach tasks that write
// captured shared state — directly and through a helper whose write-effect
// summary carries the write — next to an own-slot counterpart that must
// stay silent.
package fan

import "effectmod/par"

// Sum accumulates into a shared counter from inside the task — the seeded
// direct-write violation: every task writes the same captured variable.
func Sum(vals []float64) float64 {
	total := 0.0
	par.ForEach(4, len(vals), func(i int) error {
		total += vals[i]
		return nil
	})
	return total
}

// bump writes through its first parameter; its write-effect summary is how
// the analyzer sees the hidden write in SumViaHelper.
func bump(dst *float64, v float64) {
	*dst += v
}

// SumViaHelper hides the shared write one call deep — the seeded
// interprocedural violation.
func SumViaHelper(vals []float64) float64 {
	total := 0.0
	par.ForEach(4, len(vals), func(i int) error {
		bump(&total, vals[i])
		return nil
	})
	return total
}

// ScaleOwnSlot is the clean counterpart: each task writes only the element
// selected by its own index, then the caller folds sequentially.
func ScaleOwnSlot(vals []float64) float64 {
	out := make([]float64, len(vals))
	par.ForEach(4, len(vals), func(i int) error {
		out[i] = vals[i] * 2
		return nil
	})
	total := 0.0
	for _, v := range out {
		total += v
	}
	return total
}

// SumPooled binds a persistent pool's task to a shared accumulator — the
// seeded NewPool violation: the task captured at construction writes the
// same variable from every phase worker.
func SumPooled(vals []float64) float64 {
	total := 0.0
	p := par.NewPool(func(i int) {
		total += vals[i]
	})
	p.Run(4, len(vals))
	p.Close()
	return total
}

// ScalePooledOwnSlot is the clean persistent-pool counterpart: the bound
// task writes only its own slot, and the caller folds after the phase.
func ScalePooledOwnSlot(vals []float64) float64 {
	out := make([]float64, len(vals))
	p := par.NewPool(func(i int) {
		out[i] = vals[i] * 2
	})
	p.Run(4, len(vals))
	p.Close()
	total := 0.0
	for _, v := range out {
		total += v
	}
	return total
}
