// Package agg plants the maporder fixture: a float fold and a returned
// slice fed directly by map iteration order, next to sort-then-range
// counterparts that must stay silent.
package agg

import "sort"

// Mean folds a float sum in map visit order — the seeded accumulation
// violation: float addition is not associative, so the result depends on
// the order the range visits entries.
func Mean(samples map[string]float64) float64 {
	total := 0.0
	for _, v := range samples {
		total += v
	}
	return total / float64(len(samples))
}

// Keys returns the map's keys in visit order — the seeded returned-slice
// violation: the caller observes whatever order the range produced.
func Keys(samples map[string]float64) []string {
	out := make([]string, 0, len(samples))
	for k := range samples {
		out = append(out, k)
	}
	return out
}

// SortedKeys is the sanctioned pattern: collect, sort, return. The sort
// call sanitizes the slice, so returning it is order-independent.
func SortedKeys(samples map[string]float64) []string {
	out := make([]string, 0, len(samples))
	for k := range samples {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MeanSorted is the clean fold: range over the sorted keys, not the map.
func MeanSorted(samples map[string]float64) float64 {
	total := 0.0
	for _, k := range SortedKeys(samples) {
		total += samples[k]
	}
	return total / float64(len(samples))
}
