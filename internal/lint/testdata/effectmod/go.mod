module effectmod

go 1.22
