module privacymod

go 1.22
