// Package clean is the sanctioned federated flow: telemetry trains the
// local model, and only the declassified parameter vector reaches the
// wire. privacytaint must stay silent here — with no ignore directive.
package clean

import (
	"io"

	"privacymod/model"
	"privacymod/sensor"
	"privacymod/wire"
)

// Round runs local training on raw telemetry, then ships the model
// parameters — the exact shape of the paper's privacy argument.
func Round(w io.Writer, mdl *model.Model, mtr *sensor.Meter) error {
	for i := 0; i < 3; i++ {
		mdl.Train(mtr.Read())
	}
	return wire.Send(w, mdl.Params())
}
