// Package wire is the fixture's stand-in for internal/fed's wire layer:
// Send is the configured sink function, and every Write-style call inside
// this package is a writer sink.
package wire

import (
	"encoding/binary"
	"io"
	"math"
)

// Send frames a parameter vector onto the federated wire.
func Send(w io.Writer, params []float64) error {
	buf := make([]byte, 8*len(params))
	for i, p := range params {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(p))
	}
	_, err := w.Write(buf)
	return err
}
