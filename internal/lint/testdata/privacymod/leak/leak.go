// Package leak holds the planted privacy violations the golden test pins:
// a direct leak, a leak through a helper call, and a leak through struct
// embedding. Each must be caught with a full source → sink path.
package leak

import (
	"io"

	"privacymod/sensor"
	"privacymod/wire"
)

// Direct copies one power reading straight into the wire payload.
func Direct(w io.Writer, m *sensor.Meter) error {
	obs := m.Read()
	return wire.Send(w, []float64{obs.PowerW})
}

// Helper leaks the same reading through an intermediate flatten call.
func Helper(w io.Writer, m *sensor.Meter) error {
	obs := m.Read()
	return wire.Send(w, flatten(obs))
}

func flatten(o sensor.Observation) []float64 {
	return []float64{o.PowerW, o.IPC}
}

// Sample embeds the telemetry type, hiding it one selection deep.
type Sample struct {
	sensor.Observation
	Weight float64
}

// Embedded leaks a reading that arrived via the embedded field.
func Embedded(w io.Writer, m *sensor.Meter) error {
	s := Sample{Observation: m.Read(), Weight: 1}
	return wire.Send(w, []float64{s.PowerW, s.Weight})
}
