// Package model is the fixture's stand-in for internal/nn: telemetry may
// shape the weights locally (Train), and Params is the allowlisted
// declassification boundary — the only sanctioned way data derived from
// observations leaves the device.
package model

import "privacymod/sensor"

// Model is a trivially trainable parameter vector.
type Model struct {
	params []float64
}

// New returns a zero model with n parameters.
func New(n int) *Model {
	return &Model{params: make([]float64, n)}
}

// Train folds one observation into the weights — the sanctioned local
// learning update.
func (m *Model) Train(o sensor.Observation) {
	for i := range m.params {
		m.params[i] += 1e-3 * (o.PowerW - o.IPC)
	}
}

// Params returns the learned parameter vector. Its results are clean by
// contract (the fixture config allowlists this function), mirroring
// (*nn.Network).Params in the real module.
func (m *Model) Params() []float64 {
	return m.params
}
