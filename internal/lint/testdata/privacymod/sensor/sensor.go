// Package sensor is the fixture's stand-in for internal/sim: Observation
// is the telemetry source type the privacy analysis must keep off the
// wire, and Meter.Read is the accessor producing it.
package sensor

// Observation is one interval's raw telemetry readings.
type Observation struct {
	PowerW float64
	IPC    float64
	Level  int
}

// Meter produces observations.
type Meter struct {
	last Observation
}

// Read returns the latest telemetry reading (a configured source function).
func (m *Meter) Read() Observation {
	m.last.PowerW += 0.5
	m.last.IPC += 0.01
	return m.last
}
