// Package wire plants the wirebound fixture cases: hostile header fields
// reaching allocations, indexes, loop trip counts and foreign length
// arguments — each violation next to a clean, properly guarded
// counterpart. The fixture config declares buf.Build as the allocation
// helper and 1<<16 as the largest provable bound, so maxFrame-guarded
// values prove and raw header fields do not.
package wire

import (
	"encoding/binary"
	"errors"
	"io"

	"wiremod/buf"
)

// maxFrame is the fixture's declared cap: every clean counterpart narrows
// against it before use.
const maxFrame = 4096

var errFrame = errors.New("wire: frame too large")

// frames counts oversized headers; the wrong-branch case bumps it instead
// of rejecting.
var frames int

// ReadHeader decodes the frame length field — the hostile source every
// case below starts from.
func ReadHeader(hdr []byte) int {
	return int(binary.LittleEndian.Uint32(hdr))
}

// parse is the middle hop of the three-call chain.
func parse(hdr []byte) int {
	n := ReadHeader(hdr)
	return n
}

// Alloc feeds the unguarded header field to the declared allocation
// helper, three calls from the wire read and across a package boundary.
func Alloc(hdr []byte) []byte {
	return buf.Build(parse(hdr)) // want: wirebound (helper call site)
}

// Alloc64 reads a 64-bit length, which no integer type can bound: the
// finding reports "no finite upper bound" rather than an oversized one.
func Alloc64(hdr []byte) []byte {
	return buf.Build(int(binary.LittleEndian.Uint64(hdr))) // want: wirebound (no finite bound)
}

// AllocDirect makes the slice inline — the plain unguarded case.
func AllocDirect(hdr []byte) []float64 {
	n := ReadHeader(hdr)
	return make([]float64, n) // want: wirebound (make)
}

// WrongBranch checks the cap but puts the consequence on the wrong
// branch: the oversized case is counted, not rejected, so the allocation
// below is reached with the unbounded value on both paths.
func WrongBranch(hdr []byte) []byte {
	n := parse(hdr)
	if n > maxFrame {
		frames++
	}
	return make([]byte, n) // want: wirebound (guard does not dominate)
}

// Clamped is the clamp-sanitized clean counterpart of WrongBranch.
func Clamped(hdr []byte) []byte {
	n := parse(hdr)
	if n > maxFrame {
		n = maxFrame
	}
	return make([]byte, n)
}

// Checked is the reject-style clean counterpart: the guard's error return
// dominates the allocation.
func Checked(hdr []byte) ([]byte, error) {
	n := parse(hdr)
	if n < 0 || n > maxFrame {
		return nil, errFrame
	}
	return buf.Build(n), nil
}

// MinClamped narrows through the min builtin instead of a branch.
func MinClamped(hdr []byte) []byte {
	return make([]byte, min(ReadHeader(hdr), maxFrame))
}

// Sum runs a loop whose trip count is the raw header field.
func Sum(hdr []byte, vals []float64) float64 {
	n := parse(hdr)
	var s float64
	for i := 0; i < n; i++ { // want: wirebound (trip count)
		s += vals[i%len(vals)]
	}
	return s
}

// SumChecked is Sum's clean counterpart: the trip count is rejected first.
func SumChecked(hdr []byte, vals []float64) (float64, error) {
	n := parse(hdr)
	if n > maxFrame {
		return 0, errFrame
	}
	var s float64
	for i := 0; i < n; i++ {
		s += vals[i%len(vals)]
	}
	return s, nil
}

// Pick indexes a table with the raw header field.
func Pick(hdr []byte, table []float64) float64 {
	return table[ReadHeader(hdr)] // want: wirebound (index)
}

// Stream hands the raw header field to io.CopyN as the byte count.
func Stream(w io.Writer, r io.Reader, hdr []byte) error {
	_, err := io.CopyN(w, r, int64(ReadHeader(hdr))) // want: wirebound (foreign length)
	return err
}
