// Package buf is the fixture module's allocation-helper package: Build is
// configured as a declared wirebound allocation helper, so its call sites
// are the sinks and its own body is exempt — mirroring the real module's
// codecState.growScratch.
package buf

// Build allocates a frame buffer of n bytes.
func Build(n int) []byte { return make([]byte, n) }
