module wiremod

go 1.22
