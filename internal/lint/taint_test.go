package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current analyzer output")

// privacymodConfig is the taint boundary of the testdata/privacymod fixture
// module, mirroring DefaultPrivacyConfig's shape: sensor.Observation is the
// telemetry, wire.Send the wire, (*model.Model).Params the declassifier.
func privacymodConfig() TaintConfig {
	return TaintConfig{
		SourceTypes:    []string{"privacymod/sensor.Observation"},
		SourceFuncs:    []string{"(*privacymod/sensor.Meter).Read"},
		SinkFuncs:      []string{"privacymod/wire.Send"},
		WriterSinkPkgs: []string{"privacymod/wire"},
		Allow:          []string{"(*privacymod/model.Model).Params"},
	}
}

func loadPrivacymod(t *testing.T) (root string, pkgs []*Package) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "privacymod"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err = LoadModule(root)
	if err != nil {
		t.Fatalf("load fixture module: %v", err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("loaded only %d fixture packages, want 5", len(pkgs))
	}
	return root, pkgs
}

// TestPrivacyTaintGolden pins the analyzer's full output — including every
// hop of every source → sink path — over the privacymod fixture module. The
// fixture plants a direct leak, a leak through a helper call and a leak
// through struct embedding, next to a clean train-then-ship-params round
// that must stay silent. Regenerate with `go test -run PrivacyTaintGolden
// -update ./internal/lint`.
func TestPrivacyTaintGolden(t *testing.T) {
	root, pkgs := loadPrivacymod(t)
	diags := Run(pkgs, []Analyzer{PrivacyTaint{Config: privacymodConfig()}})

	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	// Relativize absolute fixture paths so the golden file is stable across
	// checkouts.
	got := strings.ReplaceAll(b.String(), root+string(filepath.Separator), "")

	goldenPath := filepath.Join("testdata", "privacytaint.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("privacytaint output drifted from golden file\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrivacyTaintFixtureShape asserts the semantic content of the fixture
// run independently of exact positions: all three planted leaks are found
// at their wire.Send call sites with non-empty paths, and nothing in the
// clean package fires.
func TestPrivacyTaintFixtureShape(t *testing.T) {
	_, pkgs := loadPrivacymod(t)
	diags := Run(pkgs, []Analyzer{PrivacyTaint{Config: privacymodConfig()}})

	leakLines := make(map[int]bool)
	for _, d := range diags {
		if d.Analyzer != "privacytaint" {
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
			continue
		}
		base := filepath.Base(d.Pos.Filename)
		if base == "clean.go" {
			t.Errorf("sanctioned parameter flow flagged: %s", d)
		}
		if base != "leak.go" && base != "wire.go" {
			t.Errorf("finding outside the planted-leak packages: %s", d)
		}
		if len(d.Path) == 0 {
			t.Errorf("finding without a flow path: %s", d)
		}
		if base == "leak.go" {
			leakLines[d.Pos.Line] = true
		}
	}
	// The three wire.Send call sites in leak.go: Direct, Helper, Embedded.
	for _, line := range []int{16, 22, 38} {
		if !leakLines[line] {
			t.Errorf("planted leak at leak.go:%d not reported; got findings at lines %v", line, leakLines)
		}
	}
}

// TestPrivacyTaintRealModuleClean is the theorem the analyzer exists to
// prove: the actual fedpower module has zero privacytaint findings under
// the default config — the sanctioned (*nn.Network).Params flow needs no
// //fedlint:ignore. (TestRepositoryIsLintClean also covers this via
// DefaultSuite; this test keeps the privacy claim independently named.)
func TestPrivacyTaintRealModuleClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(wd)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	mod := NewModule(pkgs)

	// Every config spec must resolve — otherwise the theorem is vacuous.
	cfg := DefaultPrivacyConfig()
	if _, unresolved := cfg.resolve(mod); len(unresolved) != 0 {
		t.Fatalf("default privacy config has dangling specs %v; the privacy boundary drifted", unresolved)
	}

	diags := PrivacyTaint{Config: cfg}.CheckModule(mod)
	for _, d := range diags {
		t.Errorf("raw telemetry reaches the wire in the real module:\n%s", d)
	}
}

// TestPrivacyTaintUnresolvedSpecIsFinding guards against a silently vacuous
// analysis: on a multi-package module, a config spec naming a type or
// function that no longer exists is itself reported.
func TestPrivacyTaintUnresolvedSpecIsFinding(t *testing.T) {
	_, pkgs := loadPrivacymod(t)
	cfg := privacymodConfig()
	cfg.SourceTypes = append(cfg.SourceTypes, "privacymod/sensor.Renamed")
	diags := PrivacyTaint{Config: cfg}.CheckModule(NewModule(pkgs))

	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, `"privacymod/sensor.Renamed"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("dangling config spec not reported; got %d diagnostics", len(diags))
	}
}

// --- single-package unit fixtures -----------------------------------------

// unitConfig taints type T and sinks Ship's argument within one package.
func unitConfig(path string) TaintConfig {
	return TaintConfig{
		SourceTypes: []string{path + ".T"},
		SinkFuncs:   []string{path + ".Ship"},
		Allow:       []string{path + ".Declassify"},
	}
}

func TestTaintDirectFlow(t *testing.T) {
	src := `package p

type T struct{ V float64 }

func Ship(vs []float64) {}

func Leak(t T) {
	Ship([]float64{t.V})
}
`
	diags := runOn(t, PrivacyTaint{Config: unitConfig("unit/p")}, "unit/p", src)
	wantFindings(t, diags, "privacytaint", 8)
}

func TestTaintAllowlistBarrier(t *testing.T) {
	src := `package p

type T struct{ V float64 }

func Ship(vs []float64) {}

// Declassify derives clean data from telemetry; allowlisted by the config.
func Declassify(t T) []float64 {
	return []float64{t.V}
}

func Fine(t T) {
	Ship(Declassify(t))
}
`
	diags := runOn(t, PrivacyTaint{Config: unitConfig("unit/p")}, "unit/p", src)
	wantFindings(t, diags, "privacytaint")
}

func TestTaintChannelAndRangeFlow(t *testing.T) {
	src := `package p

type T struct{ V float64 }

func Ship(vs []float64) {}

func Leak(in T) {
	ch := make(chan float64, 1)
	ch <- in.V
	var vs []float64
	for v := range ch {
		vs = append(vs, v)
		break
	}
	Ship(vs)
}
`
	diags := runOn(t, PrivacyTaint{Config: unitConfig("unit/p")}, "unit/p", src)
	wantFindings(t, diags, "privacytaint", 15)
}

func TestTaintInterfaceDispatch(t *testing.T) {
	src := `package p

type T struct{ V float64 }

func Ship(vs []float64) {}

type flattener interface{ Flatten(T) []float64 }

type impl struct{}

func (impl) Flatten(t T) []float64 { return []float64{t.V} }

func Leak(f flattener, t T) {
	Ship(f.Flatten(t))
}
`
	diags := runOn(t, PrivacyTaint{Config: unitConfig("unit/p")}, "unit/p", src)
	wantFindings(t, diags, "privacytaint", 14)
}

func TestTaintIgnoreDirective(t *testing.T) {
	src := `package p

type T struct{ V float64 }

func Ship(vs []float64) {}

func Leak(t T) {
	//fedlint:ignore privacytaint deliberate fixture leak
	Ship([]float64{t.V})
}
`
	diags := runOn(t, PrivacyTaint{Config: unitConfig("unit/p")}, "unit/p", src)
	wantFindings(t, diags, "privacytaint")
}

func TestTaintStdlibPassThrough(t *testing.T) {
	// Telemetry laundered through a stdlib call (append is a builtin,
	// strconv-style foreign calls pass through conservatively).
	src := `package p

import "math"

type T struct{ V float64 }

func Ship(vs []float64) {}

func Leak(t T) {
	v := math.Abs(t.V)
	Ship([]float64{v})
}
`
	diags := runOn(t, PrivacyTaint{Config: unitConfig("unit/p")}, "unit/p", src)
	wantFindings(t, diags, "privacytaint", 11)
}
