package lint

import (
	"go/ast"
	"go/types"
	"testing"
)

// wrapperSrc is the wrapper-launch pattern the fed transport uses: the
// goroutine body is a named method whose own body signals on a done
// channel, so nothing at the launch site mentions supervision.
const wrapperSrc = `package p

type pool struct {
	done chan struct{}
}

func (p *pool) run() {
	p.done <- struct{}{}
}

func (p *pool) Start() {
	go p.run()
}
`

func TestGoLaunchWrapperIntraproceduralFlags(t *testing.T) {
	pkg := loadFixture(t, "unit/p", wrapperSrc)
	// Per-package Check has no call graph: the wrapper launch looks
	// unsupervised.
	diags := GoLaunch{}.Check(pkg)
	if len(diags) != 1 || diags[0].Pos.Line != 12 {
		t.Fatalf("intraprocedural check: got %s, want one finding at line 12", renderDiags(diags))
	}
}

func TestGoLaunchWrapperInterproceduralClean(t *testing.T) {
	// Through Run (module-wide), the call graph sees run's channel send.
	diags := runOn(t, GoLaunch{}, "unit/p", wrapperSrc)
	wantFindings(t, diags, "golaunch")
}

func TestGoLaunchWrapperTransitiveSignal(t *testing.T) {
	// The signal may live one more call deep: run delegates to finish.
	src := `package p

type pool struct {
	done chan struct{}
}

func (p *pool) finish() {
	close(p.done)
}

func (p *pool) run() {
	p.finish()
}

func (p *pool) Start() {
	go p.run()
}
`
	diags := runOn(t, GoLaunch{}, "unit/p", src)
	wantFindings(t, diags, "golaunch")
}

func TestGoLaunchWrapperWithoutSignalStillFlags(t *testing.T) {
	// A wrapper whose body never signals stays a finding module-wide.
	src := `package p

type pool struct{ n int }

func (p *pool) run() {
	p.n++
}

func (p *pool) Start() {
	go p.run()
}
`
	diags := runOn(t, GoLaunch{}, "unit/p", src)
	wantFindings(t, diags, "golaunch", 10)
}

func TestModuleStaticCalleeAndSignals(t *testing.T) {
	pkg := loadFixture(t, "unit/p", wrapperSrc)
	mod := NewModule([]*Package{pkg})

	var startBody, runBody *FuncBody
	for _, fn := range mod.Funcs() {
		switch fn.Name() {
		case "Start":
			startBody = mod.Body(fn)
		case "run":
			runBody = mod.Body(fn)
			if !mod.Signals(fn) {
				t.Error("run sends on p.done but Signals reports false")
			}
		}
	}
	if startBody == nil || runBody == nil {
		t.Fatal("Funcs did not surface Start and run")
	}

	// The call inside Start's go statement must resolve to run.
	found := false
	ast.Inspect(startBody.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, iface := mod.StaticCallee(pkg, call)
		if fn != nil && fn.Name() == "run" {
			found = true
			if iface {
				t.Error("p.run() resolved as an interface call")
			}
		}
		return true
	})
	if !found {
		t.Error("StaticCallee failed to resolve go p.run()")
	}
}

func TestModuleImplementations(t *testing.T) {
	src := `package p

type Trainer interface {
	Train(x float64) float64
}

type linear struct{ w float64 }

func (l *linear) Train(x float64) float64 { return l.w * x }

type constant struct{}

func (constant) Train(x float64) float64 { return x }

var _ Trainer = (*linear)(nil)
var _ Trainer = constant{}
`
	pkg := loadFixture(t, "unit/p", src)
	mod := NewModule([]*Package{pkg})

	var ifaceTrain *types.Func
	scope := pkg.Types.Scope()
	tn := scope.Lookup("Trainer").(*types.TypeName)
	iface := tn.Type().Underlying().(*types.Interface)
	ifaceTrain = iface.Method(0)

	impls := mod.Implementations(ifaceTrain)
	if len(impls) != 2 {
		t.Fatalf("got %d implementations of Trainer.Train, want 2", len(impls))
	}
	names := map[string]bool{}
	for _, im := range impls {
		names[im.FullName()] = true
	}
	if !names["(*unit/p.linear).Train"] || !names["(unit/p.constant).Train"] {
		t.Errorf("unexpected implementation set %v", names)
	}
}
