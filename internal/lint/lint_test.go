package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// loadFixture type-checks one synthetic source file under the given import
// path, mirroring exactly what LoadModule produces, so analyzer tests
// exercise the same code path as cmd/fedlint. Fixtures may import only the
// standard library.
func loadFixture(t *testing.T, importPath, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", nil)}
	tpkg, err := conf.Check(importPath, fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	return &Package{
		Path:  importPath,
		Fset:  fset,
		Files: []*ast.File{file},
		Types: tpkg,
		Info:  info,
	}
}

// runOn applies a single analyzer through the full Run pipeline (including
// ignore-directive filtering).
func runOn(t *testing.T, a Analyzer, importPath, src string) []Diagnostic {
	t.Helper()
	return Run([]*Package{loadFixture(t, importPath, src)}, []Analyzer{a})
}

// wantFindings asserts the diagnostics hit exactly the expected lines.
func wantFindings(t *testing.T, diags []Diagnostic, analyzer string, lines ...int) {
	t.Helper()
	if len(diags) != len(lines) {
		t.Fatalf("got %d findings, want %d:\n%s", len(diags), len(lines), renderDiags(diags))
	}
	for i, d := range diags {
		if d.Analyzer != analyzer {
			t.Errorf("finding %d from analyzer %q, want %q", i, d.Analyzer, analyzer)
		}
		if d.Pos.Line != lines[i] {
			t.Errorf("finding %d at line %d, want %d: %s", i, d.Pos.Line, lines[i], d)
		}
	}
}

func renderDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

func TestNoRandFlagsGlobalSource(t *testing.T) {
	src := `package sim

import "math/rand"

func bad() int {
	rand.Seed(42)           // line 6: reseeding the global source
	x := rand.Intn(10)      // line 7: drawing from the global source
	_ = rand.Float64()      // line 8: drawing from the global source
	return x
}

func good(rng *rand.Rand) float64 {
	_ = rand.New(rand.NewSource(1)) // constructors are fine
	return rng.Float64()            // injected generator is fine
}
`
	wantFindings(t, runOn(t, NoRand{}, "fedpower/internal/sim", src), "norand", 6, 7, 8)
}

func TestNoRandHonorsIgnore(t *testing.T) {
	src := `package sim

import "math/rand"

func bad() int {
	//fedlint:ignore norand fixture documents a deliberate global draw
	return rand.Intn(10)
}
`
	if diags := runOn(t, NoRand{}, "fedpower/internal/sim", src); len(diags) != 0 {
		t.Fatalf("ignore directive not honoured:\n%s", renderDiags(diags))
	}
}

func TestNoClockFlagsWallClockInSimPackages(t *testing.T) {
	src := `package sim

import "time"

func bad() time.Duration {
	start := time.Now()     // line 6
	time.Sleep(time.Millisecond) // line 7
	return time.Since(start) // line 8
}

func good(now func() time.Time) time.Time {
	_ = time.Duration(5)  // pure conversion is fine
	clock := time.Now     // taking the func value is the injection seam
	_ = clock
	return now()
}
`
	wantFindings(t, runOn(t, NoClock{}, "fedpower/internal/sim", src), "noclock", 6, 7, 8)
}

func TestNoClockExemptsOtherPackages(t *testing.T) {
	src := `package fed

import "time"

func deadline() time.Time { return time.Now() }
`
	// internal/fed is a real TCP transport and may use deadlines.
	if diags := runOn(t, NoClock{}, "fedpower/internal/fed", src); len(diags) != 0 {
		t.Fatalf("noclock must exempt internal/fed:\n%s", renderDiags(diags))
	}
}

func TestNoClockHonorsIgnore(t *testing.T) {
	src := `package sim

import "time"

//fedlint:ignore noclock fixture documents a deliberate wall-clock read
func bad() time.Time { return time.Now() }
`
	if diags := runOn(t, NoClock{}, "fedpower/internal/sim", src); len(diags) != 0 {
		t.Fatalf("ignore directive not honoured:\n%s", renderDiags(diags))
	}
}

func TestWireErrFlagsDiscardedErrors(t *testing.T) {
	src := `package fed

import (
	"bufio"
	"os"
)

func bad(f *os.File, w *bufio.Writer) {
	f.Close()       // line 9
	w.Flush()       // line 10
	defer f.Close() // line 11
}

func good(f *os.File, w *bufio.Writer) error {
	if err := w.Flush(); err != nil {
		return err
	}
	_ = f.Close() // explicit blank assignment is a visible decision
	return nil
}
`
	wantFindings(t, runOn(t, WireErr{}, "fedpower/internal/fed", src), "wireerr", 9, 10, 11)
}

func TestWireErrExemptsNeverFailingWriters(t *testing.T) {
	src := `package fed

import (
	"bytes"
	"strings"
)

func good(b *bytes.Buffer, sb *strings.Builder) {
	b.Write([]byte("x"))  // bytes.Buffer.Write never returns an error
	sb.WriteString("x")   // strings.Builder likewise
}
`
	if diags := runOn(t, WireErr{}, "fedpower/internal/fed", src); len(diags) != 0 {
		t.Fatalf("never-failing writers must be exempt:\n%s", renderDiags(diags))
	}
}

func TestWireErrHonorsIgnore(t *testing.T) {
	src := `package fed

import "os"

func bad(f *os.File) {
	f.Close() //fedlint:ignore wireerr fixture documents a best-effort close
}
`
	if diags := runOn(t, WireErr{}, "fedpower/internal/fed", src); len(diags) != 0 {
		t.Fatalf("ignore directive not honoured:\n%s", renderDiags(diags))
	}
}

func TestFloatEqFlagsFloatComparison(t *testing.T) {
	src := `package core

func bad(a, b float64, c float32) bool {
	if a == b { // line 4
		return true
	}
	return float64(c) != a // line 7
}

func good(a, b float64, n, m int) bool {
	_ = n == m        // integer comparison is fine
	return a < b      // ordered float comparison is fine
}
`
	wantFindings(t, runOn(t, FloatEq{}, "fedpower/internal/core", src), "floateq", 4, 7)
}

func TestFloatEqHonorsIgnore(t *testing.T) {
	src := `package core

func guard(a float64) float64 {
	if a == 0 { //fedlint:ignore floateq exact zero guards the division below
		return 0
	}
	return 1 / a
}
`
	if diags := runOn(t, FloatEq{}, "fedpower/internal/core", src); len(diags) != 0 {
		t.Fatalf("ignore directive not honoured:\n%s", renderDiags(diags))
	}
}

func TestGoLaunchFlagsUnsupervisedAndCapturingGoroutines(t *testing.T) {
	src := `package fed

import "sync"

func bad(items []int) {
	for _, it := range items {
		go func() { // line 7: captures it AND unsupervised -> two findings
			_ = it
		}()
	}
}

func good(items []int) {
	var wg sync.WaitGroup
	done := make(chan struct{})
	for _, it := range items {
		wg.Add(1)
		go func(it int) { // loop state passed as argument
			defer wg.Done()
			_ = it
		}(it)
	}
	go func() { // done-channel supervision
		close(done)
	}()
	wg.Wait()
	<-done
}
`
	wantFindings(t, runOn(t, GoLaunch{}, "fedpower/internal/fed", src), "golaunch", 7, 7)
}

func TestGoLaunchExemptsCommands(t *testing.T) {
	src := `package main

func main() {
	go func() {}() // commands die with the process; out of scope
	select {}
}
`
	if diags := runOn(t, GoLaunch{}, "fedpower/cmd/feddevice", src); len(diags) != 0 {
		t.Fatalf("golaunch must exempt package main:\n%s", renderDiags(diags))
	}
}

func TestGoLaunchRecognizesPoolWorkers(t *testing.T) {
	// The worker-pool launch shape of internal/par: a fixed number of
	// workers pull indices from a shared atomic counter and signal
	// completion through the WaitGroup referenced in the body. The loop
	// variable is the worker slot, which the body never touches, so the
	// pattern passes both golaunch checks without any ignore directive.
	src := `package par

import (
	"sync"
	"sync/atomic"
)

func pool(width, n int, task func(i int) error) []error {
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = task(i)
			}
		}()
	}
	wg.Wait()
	return errs
}
`
	if diags := runOn(t, GoLaunch{}, "fedpower/internal/par", src); len(diags) != 0 {
		t.Fatalf("golaunch must recognise supervised pool workers:\n%s", renderDiags(diags))
	}
}

func TestGoLaunchHonorsIgnore(t *testing.T) {
	src := `package fed

func bad() {
	//fedlint:ignore golaunch fixture documents a deliberate fire-and-forget worker
	go func() {}()
}
`
	if diags := runOn(t, GoLaunch{}, "fedpower/internal/fed", src); len(diags) != 0 {
		t.Fatalf("ignore directive not honoured:\n%s", renderDiags(diags))
	}
}

func TestIgnoreDirectiveScoping(t *testing.T) {
	// An ignore scoped to one analyzer must not suppress another.
	src := `package sim

import "time"

func bad() time.Time {
	//fedlint:ignore norand scoped to the wrong analyzer on purpose
	return time.Now()
}
`
	diags := runOn(t, NoClock{}, "fedpower/internal/sim", src)
	wantFindings(t, diags, "noclock", 7)
}

func TestParseIgnoreForms(t *testing.T) {
	cases := []struct {
		text     string
		ok       bool
		analyzer string // one analyzer that must be covered
		excluded string // one analyzer that must NOT be covered ("" = none)
	}{
		{"//fedlint:ignore", true, "norand", ""},
		{"//fedlint:ignore some free-form reason", true, "floateq", ""},
		{"//fedlint:ignore floateq exact zero guard", true, "floateq", "norand"},
		{"//fedlint:ignore norand,noclock both deliberate", true, "noclock", "wireerr"},
		{"//fedlint:ignorenothing", false, "", ""},
		{"// regular comment", false, "", ""},
	}
	for _, c := range cases {
		dir, ok := parseIgnore(c.text)
		if ok != c.ok {
			t.Errorf("parseIgnore(%q) ok=%v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if !dir.covers(c.analyzer) {
			t.Errorf("parseIgnore(%q) must cover %s", c.text, c.analyzer)
		}
		if c.excluded != "" && dir.covers(c.excluded) {
			t.Errorf("parseIgnore(%q) must not cover %s", c.text, c.excluded)
		}
	}
}

func TestUnusedIgnoreReported(t *testing.T) {
	// A directive whose analyzer runs but which suppresses nothing is
	// itself a finding: stale allowlists must not accumulate.
	src := `package sim

import "math/rand"

func ok(r *rand.Rand) int {
	//fedlint:ignore norand nothing on this line violates norand
	return r.Intn(10)
}
`
	diags := runOn(t, NoRand{}, "fedpower/internal/sim", src)
	wantFindings(t, diags, "unusedignore", 6)
}

func TestUnusedIgnoreSilentWhenAnalyzerNotRunning(t *testing.T) {
	// In a partial run (single analyzer), a directive naming an analyzer
	// that did not run may well be load-bearing — it must not be reported.
	src := `package sim

import "math/rand"

func ok(r *rand.Rand) int {
	//fedlint:ignore floateq covered only in full-suite runs
	return r.Intn(10)
}
`
	diags := runOn(t, NoRand{}, "fedpower/internal/sim", src)
	wantFindings(t, diags, "unusedignore")
}

func TestUsedIgnoreNotReported(t *testing.T) {
	src := `package sim

import "math/rand"

func bad() int {
	//fedlint:ignore norand deliberate for the test
	return rand.Intn(10)
}
`
	diags := runOn(t, NoRand{}, "fedpower/internal/sim", src)
	wantFindings(t, diags, "norand")
}
