package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands in non-test
// code. The training loop accumulates rewards and gradients in float64,
// the wire format rounds through float32, and the baselines discretise
// continuous readings — after any of that, exact equality is a coin flip
// that differs across architectures and optimisation levels, which is fatal
// for a reproduction whose headline property is bit-identical replication
// on one host and tolerance-checked agreement everywhere else. Compare with
// the helpers in internal/stats (stats.ApproxEqual / stats.ApproxEqualTol)
// or, where an exact comparison is genuinely the contract (e.g. guarding a
// division by exact zero), suppress with a documented //fedlint:ignore.
type FloatEq struct{}

func (FloatEq) Name() string { return "floateq" }

func (FloatEq) Doc() string {
	return "flag ==/!= between floating-point operands; use stats.ApproxEqual or a documented ignore"
}

func (FloatEq) Check(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloatExpr(pkg, bin.X) && !isFloatExpr(pkg, bin.Y) {
				return true
			}
			out = append(out, Diagnostic{
				Analyzer: "floateq",
				Pos:      pkg.Fset.Position(bin.OpPos),
				Message: fmt.Sprintf("floating-point %s comparison; use stats.ApproxEqual (or document an exact-comparison contract with //fedlint:ignore)",
					bin.Op),
			})
			return true
		})
	}
	return out
}

func isFloatExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Info()&(types.IsFloat|types.IsComplex) != 0
}
