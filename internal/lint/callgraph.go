package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// Module bundles the type-checked packages of one LoadModule call with the
// whole-module indexes interprocedural analyzers need: a table of declared
// function bodies, static call-site resolution, and the interface →
// implementation relation for in-module interfaces. A Module is built once
// per Run and shared by every ModuleAnalyzer, so the price of whole-module
// analysis is paid once regardless of how many analyzers consume it.
type Module struct {
	// Pkgs are the packages in dependency order, as LoadModule returned them.
	Pkgs []*Package

	funcs map[*types.Func]*FuncBody
	impls map[*types.Func][]*types.Func

	signalMemo map[*types.Func]bool
}

// FuncBody is one in-module function declaration together with the package
// it was declared in (needed to read that package's type info).
type FuncBody struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// NewModule indexes the given packages. The packages must share one FileSet
// and have been type-checked against each other (LoadModule guarantees
// both); single-package fixtures from tests work too.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:       pkgs,
		funcs:      make(map[*types.Func]*FuncBody),
		signalMemo: make(map[*types.Func]bool),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					m.funcs[fn] = &FuncBody{Decl: fd, Pkg: pkg}
				}
			}
		}
	}
	m.buildImpls()
	return m
}

// Body returns the declaration of an in-module function, or nil for
// functions without source here (standard library, interface methods).
func (m *Module) Body(fn *types.Func) *FuncBody { return m.funcs[fn] }

// Funcs returns every in-module declared function in deterministic
// (position) order.
func (m *Module) Funcs() []*types.Func {
	out := make([]*types.Func, 0, len(m.funcs))
	for fn := range m.funcs {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// Implementations returns the in-module concrete methods that can stand
// behind a dynamic call to the interface method ifn. Only interfaces
// declared inside the module are indexed; calls through foreign interfaces
// resolve to nothing and callers must treat them conservatively.
func (m *Module) Implementations(ifn *types.Func) []*types.Func {
	return m.impls[ifn]
}

// buildImpls computes, for every method of every in-module interface, the
// set of in-module concrete methods implementing it. Both value and pointer
// receivers are considered (a *T method set includes T's).
func (m *Module) buildImpls() {
	m.impls = make(map[*types.Func][]*types.Func)

	var ifaces []*types.Named
	var concretes []*types.Named
	for _, pkg := range m.Pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				if iface.NumMethods() > 0 {
					ifaces = append(ifaces, named)
				}
				continue
			}
			concretes = append(concretes, named)
		}
	}

	for _, inamed := range ifaces {
		iface := inamed.Underlying().(*types.Interface)
		for _, cnamed := range concretes {
			ptr := types.NewPointer(cnamed)
			if !types.Implements(cnamed, iface) && !types.Implements(ptr, iface) {
				continue
			}
			for i := 0; i < iface.NumMethods(); i++ {
				im := iface.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, im.Pkg(), im.Name())
				cm, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				if _, inModule := m.funcs[cm]; !inModule {
					continue
				}
				m.impls[im] = append(m.impls[im], cm)
			}
		}
	}
}

// StaticCallee resolves a call expression to its callee. The second result
// reports interface dispatch: the returned *types.Func is then the
// interface method, and Implementations lists the possible concrete
// targets. A nil callee means the call is dynamic (function value, method
// value, built-in, or conversion) and cannot be resolved statically.
func (m *Module) StaticCallee(pkg *Package, call *ast.CallExpr) (fn *types.Func, iface bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn, false
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if sel.Kind() == types.FieldVal {
				return nil, false // calling a func-typed field: dynamic
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, false
			}
			return fn, types.IsInterface(sel.Recv())
		}
		// Qualified identifier: pkg.Func.
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn, false
	}
	return nil, false
}

// Signals reports whether fn's body — or the body of any in-module function
// it statically calls, transitively — performs a goroutine completion
// signal: a channel send, a close(), or any use of a sync.WaitGroup. It is
// the interprocedural half of the golaunch supervision check: a goroutine
// launched as `go p.worker()` is supervised when worker itself signals,
// even though nothing is visible at the launch site. Results are memoised;
// recursion through call cycles is cut off (treated as not signalling),
// which can only make the check stricter, never laxer about real signals.
func (m *Module) Signals(fn *types.Func) bool {
	if v, ok := m.signalMemo[fn]; ok {
		return v
	}
	v := m.signalsWalk(fn, map[*types.Func]bool{})
	m.signalMemo[fn] = v
	return v
}

func (m *Module) signalsWalk(fn *types.Func, seen map[*types.Func]bool) bool {
	if seen[fn] {
		return false
	}
	seen[fn] = true
	body := m.funcs[fn]
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.Ident:
			if obj := body.Pkg.Info.Uses[x]; obj != nil && isWaitGroup(obj.Type()) {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := body.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
					return false
				}
			}
			if callee, iface := m.StaticCallee(body.Pkg, x); callee != nil && !iface {
				if m.signalsWalk(callee, seen) {
					found = true
				}
			}
		}
		return true
	})
	return found
}
