// Package lint is fedpower's repo-native static-analysis framework. It
// enforces the invariants the Go compiler cannot: seeded-RNG determinism
// (replicated experiment runs must be bit-identical), error-checked
// serialization on the federated wire paths (the only data that crosses
// device boundaries, per the paper's privacy claim), and disciplined
// goroutine launches in the TCP transport.
//
// The framework is deliberately stdlib-only (go/ast, go/parser, go/types;
// no golang.org/x/tools dependency): analyzers receive fully type-checked
// packages and report position-annotated diagnostics. cmd/fedlint runs the
// default suite over the module and exits non-zero on findings, and a
// self-check test keeps `go test ./...` red whenever a regression slips in.
//
// Every analyzer honours the suppression directive
//
//	//fedlint:ignore [analyzer[,analyzer...]] reason
//
// placed on the flagged line or the line directly above it. An ignore
// without an analyzer list suppresses every analyzer on that line. In-repo
// suppressions must carry a reason; the directive exists for the rare case
// where the invariant is deliberately, documentedly violated (for example
// an exact float comparison guarding a division by zero).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a concrete source position.
type Diagnostic struct {
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string
	// Pos locates the offending expression or statement.
	Pos token.Position
	// Message states the violated invariant and the sanctioned fix.
	Message string
	// Path, for interprocedural findings, is the full source → … → sink
	// value flow, one hop per position. Empty for single-site findings.
	Path []Hop
}

// Hop is one step of an interprocedural flow path.
type Hop struct {
	// Pos locates the statement or expression performing this flow step.
	Pos token.Position
	// Note describes the step, e.g. "passed to flatten (param o)".
	Note string
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	for i, h := range d.Path {
		s += fmt.Sprintf("\n    [%d] %s:%d:%d: %s", i+1, h.Pos.Filename, h.Pos.Line, h.Pos.Column, h.Note)
	}
	return s
}

// Analyzer checks one invariant over a type-checked package.
type Analyzer interface {
	// Name is the short identifier used in output and ignore directives.
	Name() string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc() string
	// Check returns every violation found in pkg.
	Check(pkg *Package) []Diagnostic
}

// ModuleAnalyzer is an Analyzer that needs the whole module at once —
// interprocedural analyses like privacytaint, whose findings span call
// chains across packages. Run invokes CheckModule once over a shared
// Module instead of Check per package.
type ModuleAnalyzer interface {
	Analyzer
	// CheckModule returns every violation found across the module.
	CheckModule(mod *Module) []Diagnostic
}

// DefaultSuite returns the full fedpower analyzer suite in output order.
func DefaultSuite() []Analyzer {
	return []Analyzer{
		NoRand{},
		NoClock{},
		WireErr{},
		FloatEq{},
		GoLaunch{},
		PrivacyTaint{Config: DefaultPrivacyConfig()},
		WireBound{Config: DefaultWireBoundConfig()},
		AllocFree{},
		MapOrder{},
		SlotRace{ForEach: DefaultSlotRaceConfig()},
	}
}

// Run executes every analyzer over every package (module analyzers run once
// over the whole set), drops findings suppressed by //fedlint:ignore
// directives, reports directives that no longer suppress anything, and
// returns the rest sorted by position.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	ignores := collectIgnores(pkgs)
	running := make(map[string]bool, len(analyzers))
	var mod *Module
	var out []Diagnostic
	for _, a := range analyzers {
		running[a.Name()] = true
		var diags []Diagnostic
		if ma, ok := a.(ModuleAnalyzer); ok {
			if mod == nil {
				mod = NewModule(pkgs)
			}
			diags = ma.CheckModule(mod)
		} else {
			for _, pkg := range pkgs {
				diags = append(diags, a.Check(pkg)...)
			}
		}
		for _, d := range diags {
			if ignores.suppresses(d) {
				continue
			}
			out = append(out, d)
		}
	}
	out = append(out, ignores.unused(running)...)
	out = append(out, ignores.unknownNames()...)
	sortDiagnostics(out)
	return out
}

// ignoreDirective is one parsed //fedlint:ignore comment.
type ignoreDirective struct {
	// analyzers lists the suppressed analyzer names; empty means all.
	analyzers []string
	// unknown lists scoped names that match no analyzer in the suite —
	// each is a finding (the suppression the author intended never
	// applies).
	unknown []string
	// pos is where the directive comment sits, for unused-ignore reporting.
	pos token.Position
	// used records whether the directive suppressed at least one finding.
	used bool
}

func (d *ignoreDirective) covers(analyzer string) bool {
	if len(d.analyzers) == 0 {
		return true
	}
	for _, a := range d.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// ignoreSet maps file -> line -> directive across the analyzed packages.
type ignoreSet map[string]map[int]*ignoreDirective

// suppresses reports whether a directive on the diagnostic's line or the
// line directly above it covers the diagnostic's analyzer, marking the
// directive as used.
func (s ignoreSet) suppresses(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if dir, ok := lines[line]; ok && dir.covers(d.Analyzer) {
			dir.used = true
			return true
		}
	}
	return false
}

// unused reports every directive that suppressed nothing even though every
// analyzer it is scoped to was part of this run — suppression debt that
// must be paid down, not left to rot. A directive scoped to an analyzer
// outside the running set is skipped: it may still be load-bearing under
// the full suite.
func (s ignoreSet) unused(running map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, lines := range s {
		for _, dir := range lines {
			if dir.used {
				continue
			}
			coverable := true
			for _, a := range dir.analyzers {
				if !running[a] {
					coverable = false
					break
				}
			}
			if !coverable {
				continue
			}
			scope := "any analyzer"
			if len(dir.analyzers) > 0 {
				scope = strings.Join(dir.analyzers, ",")
			}
			out = append(out, Diagnostic{
				Analyzer: "unusedignore",
				Pos:      dir.pos,
				Message:  fmt.Sprintf("//fedlint:ignore directive (scope: %s) suppresses nothing; remove it or fix the drifted code it once covered", scope),
			})
		}
	}
	// The set is a map of maps, so emit in position order for determinism
	// (Run sorts the merged output again, but tests may call this alone).
	sortDiagnostics(out)
	return out
}

// unknownNames reports every directive that scopes itself to an analyzer
// name the suite has never heard of: the suppression the author intended
// silently never applies, which is worse than a stale one.
func (s ignoreSet) unknownNames() []Diagnostic {
	var out []Diagnostic
	for _, lines := range s {
		for _, dir := range lines {
			for _, name := range dir.unknown {
				out = append(out, Diagnostic{
					Analyzer: "unusedignore",
					Pos:      dir.pos,
					Message:  fmt.Sprintf("//fedlint:ignore names unknown analyzer %q; no analyzer by that name exists, so this suppression never applies", name),
				})
			}
		}
	}
	sortDiagnostics(out)
	return out
}

// sortDiagnostics orders diagnostics by position, then analyzer name.
func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

const ignorePrefix = "//fedlint:ignore"

// knownAnalyzers is consulted when parsing a directive: the first token
// after the prefix scopes the ignore only when it names real analyzers,
// otherwise it is the start of the free-form reason.
var knownAnalyzers = func() map[string]bool {
	m := make(map[string]bool)
	for _, a := range DefaultSuite() {
		m[a.Name()] = true
	}
	return m
}()

func collectIgnores(pkgs []*Package) ignoreSet {
	set := make(ignoreSet)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					dir, ok := parseIgnore(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					dir.pos = pos
					lines := set[pos.Filename]
					if lines == nil {
						lines = make(map[int]*ignoreDirective)
						set[pos.Filename] = lines
					}
					lines[pos.Line] = &dir
				}
			}
		}
	}
	return set
}

func parseIgnore(text string) (ignoreDirective, bool) {
	if !strings.HasPrefix(text, ignorePrefix) {
		return ignoreDirective{}, false
	}
	rest := strings.TrimPrefix(text, ignorePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return ignoreDirective{}, false // e.g. //fedlint:ignoreXYZ
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return ignoreDirective{}, true
	}
	names := strings.Split(fields[0], ",")
	var unknown []string
	for _, n := range names {
		if !knownAnalyzers[n] {
			unknown = append(unknown, n)
		}
	}
	if len(unknown) == len(names) && len(names) == 1 && len(fields) > 1 {
		// A single non-analyzer token followed by more words is the start
		// of a free-form reason; the directive applies to every analyzer.
		return ignoreDirective{}, true
	}
	// The first token is an analyzer list. Names that match no analyzer
	// in the suite are reported (unknownNames): a comma list is
	// unambiguously a scope, and a lone unknown token with no reason text
	// is a scope the author misspelled, not a reason.
	return ignoreDirective{analyzers: names, unknown: unknown}, true
}

// inspectWithStack walks root in depth-first order like ast.Inspect while
// maintaining the ancestor stack; stack[len(stack)-1] is the node itself.
func inspectWithStack(root ast.Node, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		visit(n, stack)
		return true
	})
}
