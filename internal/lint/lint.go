// Package lint is fedpower's repo-native static-analysis framework. It
// enforces the invariants the Go compiler cannot: seeded-RNG determinism
// (replicated experiment runs must be bit-identical), error-checked
// serialization on the federated wire paths (the only data that crosses
// device boundaries, per the paper's privacy claim), and disciplined
// goroutine launches in the TCP transport.
//
// The framework is deliberately stdlib-only (go/ast, go/parser, go/types;
// no golang.org/x/tools dependency): analyzers receive fully type-checked
// packages and report position-annotated diagnostics. cmd/fedlint runs the
// default suite over the module and exits non-zero on findings, and a
// self-check test keeps `go test ./...` red whenever a regression slips in.
//
// Every analyzer honours the suppression directive
//
//	//fedlint:ignore [analyzer[,analyzer...]] reason
//
// placed on the flagged line or the line directly above it. An ignore
// without an analyzer list suppresses every analyzer on that line. In-repo
// suppressions must carry a reason; the directive exists for the rare case
// where the invariant is deliberately, documentedly violated (for example
// an exact float comparison guarding a division by zero).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a concrete source position.
type Diagnostic struct {
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string
	// Pos locates the offending expression or statement.
	Pos token.Position
	// Message states the violated invariant and the sanctioned fix.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer checks one invariant over a type-checked package.
type Analyzer interface {
	// Name is the short identifier used in output and ignore directives.
	Name() string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc() string
	// Check returns every violation found in pkg.
	Check(pkg *Package) []Diagnostic
}

// DefaultSuite returns the full fedpower analyzer suite in output order.
func DefaultSuite() []Analyzer {
	return []Analyzer{
		NoRand{},
		NoClock{},
		WireErr{},
		FloatEq{},
		GoLaunch{},
	}
}

// Run executes every analyzer over every package, drops findings suppressed
// by //fedlint:ignore directives, and returns the rest sorted by position.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		for _, a := range analyzers {
			for _, d := range a.Check(pkg) {
				if ignores.suppresses(d) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// ignoreDirective is one parsed //fedlint:ignore comment.
type ignoreDirective struct {
	// analyzers lists the suppressed analyzer names; empty means all.
	analyzers []string
}

func (d ignoreDirective) covers(analyzer string) bool {
	if len(d.analyzers) == 0 {
		return true
	}
	for _, a := range d.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// ignoreSet maps file -> line -> directive for one package.
type ignoreSet map[string]map[int]ignoreDirective

// suppresses reports whether a directive on the diagnostic's line or the
// line directly above it covers the diagnostic's analyzer.
func (s ignoreSet) suppresses(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if dir, ok := lines[line]; ok && dir.covers(d.Analyzer) {
			return true
		}
	}
	return false
}

const ignorePrefix = "//fedlint:ignore"

// knownAnalyzers is consulted when parsing a directive: the first token
// after the prefix scopes the ignore only when it names real analyzers,
// otherwise it is the start of the free-form reason.
var knownAnalyzers = func() map[string]bool {
	m := make(map[string]bool)
	for _, a := range DefaultSuite() {
		m[a.Name()] = true
	}
	return m
}()

func collectIgnores(pkg *Package) ignoreSet {
	set := make(ignoreSet)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				dir, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = make(map[int]ignoreDirective)
					set[pos.Filename] = lines
				}
				lines[pos.Line] = dir
			}
		}
	}
	return set
}

func parseIgnore(text string) (ignoreDirective, bool) {
	if !strings.HasPrefix(text, ignorePrefix) {
		return ignoreDirective{}, false
	}
	rest := strings.TrimPrefix(text, ignorePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return ignoreDirective{}, false // e.g. //fedlint:ignoreXYZ
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return ignoreDirective{}, true
	}
	names := strings.Split(fields[0], ",")
	for _, n := range names {
		if !knownAnalyzers[n] {
			// First token is not an analyzer list; the whole rest is the
			// reason and the directive applies to every analyzer.
			return ignoreDirective{}, true
		}
	}
	return ignoreDirective{analyzers: names}, true
}

// inspectWithStack walks root in depth-first order like ast.Inspect while
// maintaining the ancestor stack; stack[len(stack)-1] is the node itself.
func inspectWithStack(root ast.Node, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		visit(n, stack)
		return true
	})
}
