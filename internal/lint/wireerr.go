package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// WireErr flags silently discarded errors from I/O-shaped calls — Write,
// Read, Close, Flush and encode/decode functions. The federated wire format
// (internal/fed, internal/nn) is the only data that crosses device
// boundaries, and the CSV exporters are the evidence trail of every figure;
// a swallowed short write or close error turns either into silent data
// corruption. A call discards its error when it appears as a bare
// statement, or behind defer/go. Assigning the error to the blank
// identifier (`_ = f.Close()`) is a visible, reviewable decision and is
// allowed; not binding it at all is not.
//
// Receivers whose Write cannot fail by contract (*bytes.Buffer,
// *strings.Builder) are exempt to keep the signal clean.
type WireErr struct{}

// wireErrExact are flagged callee names matched exactly; additionally any
// name containing "Encode" or "Decode" is flagged.
var wireErrExact = map[string]bool{
	"Write": true, "WriteAll": true, "WriteString": true, "WriteByte": true,
	"Read": true, "ReadFull": true, "Close": true, "Flush": true,
}

func (WireErr) Name() string { return "wireerr" }

func (WireErr) Doc() string {
	return "flag discarded errors from Write/Read/Close/Flush/encode/decode calls on the wire and CSV paths"
}

func (WireErr) Check(pkg *Package) []Diagnostic {
	var out []Diagnostic
	report := func(call *ast.CallExpr, how string) {
		name, ok := wireErrCallee(call)
		if !ok {
			return
		}
		if !errorDiscardRelevant(pkg, call) {
			return
		}
		out = append(out, Diagnostic{
			Analyzer: "wireerr",
			Pos:      pkg.Fset.Position(call.Pos()),
			Message: fmt.Sprintf("%s discards the error from %s; check it or assign it to _ explicitly",
				how, name),
		})
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					report(call, "statement")
				}
			case *ast.DeferStmt:
				report(st.Call, "defer")
			case *ast.GoStmt:
				report(st.Call, "go statement")
			}
			return true
		})
	}
	return out
}

// wireErrCallee returns the display name of the called function when its
// name is in scope for this analyzer.
func wireErrCallee(call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return "", false
	}
	if wireErrExact[name] || strings.Contains(name, "Encode") || strings.Contains(name, "Decode") {
		return name, true
	}
	return "", false
}

// errorDiscardRelevant reports whether the call actually returns an error
// (per the type checker) and is not on an exempt never-fails receiver.
func errorDiscardRelevant(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return false
	}
	if !resultsIncludeError(tv.Type) {
		return false
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if rtv, ok := pkg.Info.Types[sel.X]; ok && neverFailsWriter(rtv.Type) {
			return false
		}
	}
	return true
}

func resultsIncludeError(t types.Type) bool {
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}

// neverFailsWriter reports receiver types whose Write/WriteString contract
// guarantees a nil error.
func neverFailsWriter(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	return full == "bytes.Buffer" || full == "strings.Builder"
}
