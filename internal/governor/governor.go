// Package governor implements classical, non-learning DVFS policies: the
// OS frequency governors the paper's introduction argues against ("the
// frequency controllers implemented in modern operating systems mostly
// ignore these application-specific characteristics"), plus a reactive
// power-capping controller in the style of firmware power limiters.
//
// None of these policies learn or predict — they either ignore the power
// constraint entirely (performance, powersave, userspace) or react to it
// with feedback after a violation has already occurred (PowerCap). They
// serve as grounding comparators for the learned policies: the RL
// controller's value lies in *proactively* choosing the budget-respecting
// frequency from observed workload characteristics, and the gap to these
// governors quantifies exactly that.
package governor

import (
	"fmt"

	"fedpower/internal/sim"
)

// Governor is a frequency-selection policy over device observations — the
// same contract the experiment harness uses for learned policies.
type Governor interface {
	// Name identifies the governor in reports.
	Name() string
	// Action returns the V/f level to run next, given the last interval's
	// observation.
	Action(obs sim.Observation) int
	// Reset clears any internal controller state between episodes.
	Reset()
}

// Performance always runs at the highest V/f level — Linux's
// "performance" governor. It maximises throughput and ignores the power
// budget entirely.
type Performance struct {
	Levels int
}

// NewPerformance returns a performance governor for a table with k levels.
func NewPerformance(k int) *Performance { return &Performance{Levels: k} }

// Name implements Governor.
func (g *Performance) Name() string { return "performance" }

// Action implements Governor.
func (g *Performance) Action(sim.Observation) int { return g.Levels - 1 }

// Reset implements Governor.
func (g *Performance) Reset() {}

// Powersave always runs at the lowest V/f level — Linux's "powersave"
// governor. It can never violate the budget and never performs.
type Powersave struct{}

// NewPowersave returns a powersave governor.
func NewPowersave() *Powersave { return &Powersave{} }

// Name implements Governor.
func (g *Powersave) Name() string { return "powersave" }

// Action implements Governor.
func (g *Powersave) Action(sim.Observation) int { return 0 }

// Reset implements Governor.
func (g *Powersave) Reset() {}

// Userspace pins a fixed, caller-chosen V/f level — Linux's "userspace"
// governor with a static setting.
type Userspace struct {
	Level int
}

// NewUserspace returns a userspace governor pinned to the given level.
func NewUserspace(level int) *Userspace { return &Userspace{Level: level} }

// Name implements Governor.
func (g *Userspace) Name() string { return fmt.Sprintf("userspace(%d)", g.Level) }

// Action implements Governor.
func (g *Userspace) Action(sim.Observation) int { return g.Level }

// Reset implements Governor.
func (g *Userspace) Reset() {}

// PowerCap is a reactive power-capping controller in the style of firmware
// power limiters (e.g. RAPL): step the frequency down whenever measured
// power exceeds the budget, step it back up when power falls below the
// budget minus a headroom, hold otherwise. The headroom provides
// hysteresis so the controller does not oscillate on sensor noise.
//
// PowerCap respects the budget (after the fact — a violation must be
// observed before the controller reacts) but cannot anticipate workload
// phases and pays one control interval of violation at every phase change
// towards higher power.
type PowerCap struct {
	Levels    int
	BudgetW   float64
	HeadroomW float64

	level   int
	started bool
}

// NewPowerCap returns a power-capping governor for a table with k levels
// under the given budget. A headroom of one to two k_offset is a sensible
// default; it must be positive.
func NewPowerCap(k int, budgetW, headroomW float64) *PowerCap {
	if k < 2 {
		panic(fmt.Sprintf("governor: power cap needs at least 2 levels, got %d", k))
	}
	if budgetW <= 0 || headroomW <= 0 {
		panic(fmt.Sprintf("governor: invalid budget %v W / headroom %v W", budgetW, headroomW))
	}
	return &PowerCap{Levels: k, BudgetW: budgetW, HeadroomW: headroomW}
}

// Name implements Governor.
func (g *PowerCap) Name() string { return "powercap" }

// Action implements Governor.
func (g *PowerCap) Action(obs sim.Observation) int {
	if !g.started {
		// Start from the observed level so the controller takes over
		// seamlessly from whatever ran before.
		g.level = obs.Level
		g.started = true
	}
	switch {
	case obs.PowerW > g.BudgetW && g.level > 0:
		g.level--
	case obs.PowerW < g.BudgetW-g.HeadroomW && g.level < g.Levels-1:
		g.level++
	}
	return g.level
}

// Reset implements Governor.
func (g *PowerCap) Reset() {
	g.level = 0
	g.started = false
}

// Standard returns the classical comparator set for a table with k levels
// under the given power budget: performance, powersave, a mid-range
// userspace pin, and the reactive power capper.
func Standard(k int, budgetW float64) []Governor {
	return []Governor{
		NewPerformance(k),
		NewPowersave(),
		NewUserspace(k / 2),
		NewPowerCap(k, budgetW, 0.1),
	}
}
