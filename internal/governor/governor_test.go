package governor

import (
	"math/rand"
	"testing"

	"fedpower/internal/sim"
	"fedpower/internal/workload"
)

func obsAt(level int, powerW float64) sim.Observation {
	return sim.Observation{Level: level, PowerW: powerW}
}

func TestPerformanceAlwaysMax(t *testing.T) {
	g := NewPerformance(15)
	for _, obs := range []sim.Observation{obsAt(0, 0.1), obsAt(14, 1.2)} {
		if got := g.Action(obs); got != 14 {
			t.Fatalf("performance picked %d, want 14", got)
		}
	}
	if g.Name() != "performance" {
		t.Errorf("name %q", g.Name())
	}
}

func TestPowersaveAlwaysMin(t *testing.T) {
	g := NewPowersave()
	if got := g.Action(obsAt(9, 0.2)); got != 0 {
		t.Fatalf("powersave picked %d, want 0", got)
	}
}

func TestUserspacePins(t *testing.T) {
	g := NewUserspace(6)
	if got := g.Action(obsAt(0, 0.9)); got != 6 {
		t.Fatalf("userspace picked %d, want 6", got)
	}
	if g.Name() != "userspace(6)" {
		t.Errorf("name %q", g.Name())
	}
}

func TestPowerCapStepsDownOnViolation(t *testing.T) {
	g := NewPowerCap(15, 0.6, 0.1)
	// Seeded from the observed level.
	if got := g.Action(obsAt(10, 0.7)); got != 9 {
		t.Fatalf("violation step: %d, want 9", got)
	}
	if got := g.Action(obsAt(9, 0.65)); got != 8 {
		t.Fatalf("second violation step: %d, want 8", got)
	}
}

func TestPowerCapStepsUpWithHeadroom(t *testing.T) {
	g := NewPowerCap(15, 0.6, 0.1)
	g.Action(obsAt(5, 0.55)) // seed: inside hysteresis band, hold at 5
	if got := g.Action(obsAt(5, 0.4)); got != 6 {
		t.Fatalf("headroom step: %d, want 6", got)
	}
}

func TestPowerCapHysteresisHolds(t *testing.T) {
	g := NewPowerCap(15, 0.6, 0.1)
	g.Action(obsAt(7, 0.55))
	// Power inside (budget-headroom, budget]: hold.
	if got := g.Action(obsAt(7, 0.58)); got != 7 {
		t.Fatalf("hysteresis hold: %d, want 7", got)
	}
}

func TestPowerCapClampsAtEdges(t *testing.T) {
	g := NewPowerCap(15, 0.6, 0.1)
	g.Action(obsAt(0, 0.9))
	if got := g.Action(obsAt(0, 0.9)); got != 0 {
		t.Fatalf("bottom clamp: %d, want 0", got)
	}
	g2 := NewPowerCap(15, 0.6, 0.1)
	g2.Action(obsAt(14, 0.1))
	if got := g2.Action(obsAt(14, 0.1)); got != 14 {
		t.Fatalf("top clamp: %d, want 14", got)
	}
}

func TestPowerCapReset(t *testing.T) {
	g := NewPowerCap(15, 0.6, 0.1)
	g.Action(obsAt(10, 0.7))
	g.Reset()
	// After reset, the controller re-seeds from the next observation.
	if got := g.Action(obsAt(3, 0.2)); got != 4 {
		t.Fatalf("after reset: %d, want 4 (seeded at 3, headroom step up)", got)
	}
}

func TestPowerCapValidation(t *testing.T) {
	cases := []func(){
		func() { NewPowerCap(1, 0.6, 0.1) },
		func() { NewPowerCap(15, 0, 0.1) },
		func() { NewPowerCap(15, 0.6, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestStandardSet(t *testing.T) {
	govs := Standard(15, 0.6)
	if len(govs) != 4 {
		t.Fatalf("standard set has %d governors, want 4", len(govs))
	}
	names := map[string]bool{}
	for _, g := range govs {
		names[g.Name()] = true
	}
	for _, want := range []string{"performance", "powersave", "userspace(7)", "powercap"} {
		if !names[want] {
			t.Errorf("standard set missing %s", want)
		}
	}
}

// TestPowerCapConvergesOnDevice drives the capper against the real device
// model: on a compute-bound application it must settle near the analytic
// optimal level and keep average power at or below the budget.
func TestPowerCapConvergesOnDevice(t *testing.T) {
	table := sim.JetsonNanoTable()
	dev := sim.NewDevice(table, sim.DefaultPowerModel(), rand.New(rand.NewSource(1)))
	spec, err := workload.ByName("water-ns")
	if err != nil {
		t.Fatal(err)
	}
	dev.Load(workload.NewApp(spec))
	dev.SetLevel(7)
	obs := dev.Step(0.5)

	g := NewPowerCap(table.Len(), 0.6, 0.1)
	for i := 0; i < 60 && !dev.Done(); i++ {
		dev.SetLevel(g.Action(obs))
		obs = dev.Step(0.5)
	}
	opt := dev.OptimalLevel(dev.Workload().(*workload.App).Demand(), 0.6)
	if obs.Level < opt-2 || obs.Level > opt+1 {
		t.Errorf("capper settled at level %d, analytic optimum %d", obs.Level, opt)
	}
	if p := dev.Stats().AvgPowerW(); p > 0.6*1.05 {
		t.Errorf("average power %v W exceeds the budget", p)
	}
}

// TestPerformanceViolatesOnComputeBound documents the failure mode the
// paper's introduction describes: a workload-oblivious governor pegged at
// f_max breaks the power budget on compute-bound code.
func TestPerformanceViolatesOnComputeBound(t *testing.T) {
	table := sim.JetsonNanoTable()
	dev := sim.NewDevice(table, sim.DefaultPowerModel(), rand.New(rand.NewSource(2)))
	spec, err := workload.ByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	dev.Load(workload.NewApp(spec))
	g := NewPerformance(table.Len())
	dev.SetLevel(g.Action(sim.Observation{}))
	violations := 0
	for i := 0; i < 20; i++ {
		obs := dev.Step(0.5)
		if obs.PowerW > 0.6 {
			violations++
		}
	}
	if violations < 18 {
		t.Fatalf("performance governor violated only %d/20 intervals on lu", violations)
	}
}
