package core

import (
	"math"
	"testing"
	"testing/quick"
)

var paperReward = RewardParams{PCritW: 0.6, KOffsetW: 0.05}

func TestRewardBelowConstraint(t *testing.T) {
	// Below P_crit the reward is the performance surrogate f/f_max.
	for _, nf := range []float64{0.069, 0.5, 1.0} {
		for _, p := range []float64{0, 0.3, 0.6} {
			if got := paperReward.Reward(nf, p); got != nf {
				t.Errorf("Reward(%v, %v) = %v, want %v", nf, p, got, nf)
			}
		}
	}
}

func TestRewardSoftBand(t *testing.T) {
	// Between P_crit and P_crit+k the reward scales down linearly.
	got := paperReward.Reward(0.8, 0.625) // halfway into the band
	want := 0.8 * 0.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Reward in soft band = %v, want %v", got, want)
	}
	// At exactly P_crit + k the reward is zero.
	if got := paperReward.Reward(0.8, 0.65); math.Abs(got) > 1e-12 {
		t.Errorf("Reward at P_crit+k = %v, want 0", got)
	}
}

func TestRewardNegativeBand(t *testing.T) {
	// Between P_crit+k and P_crit+2k the reward goes 0 → -1 independent of
	// frequency.
	got := paperReward.Reward(0.3, 0.675) // halfway through the band
	if math.Abs(got+0.5) > 1e-12 {
		t.Errorf("Reward in negative band = %v, want -0.5", got)
	}
	if got := paperReward.Reward(1.0, 0.7); math.Abs(got+1) > 1e-12 {
		t.Errorf("Reward at P_crit+2k = %v, want -1", got)
	}
}

func TestRewardSaturates(t *testing.T) {
	for _, p := range []float64{0.71, 1.0, 10} {
		if got := paperReward.Reward(1.0, p); got != -1 {
			t.Errorf("Reward(1, %v) = %v, want -1", p, got)
		}
	}
}

func TestRewardContinuity(t *testing.T) {
	// Eq. (4) is continuous at all three breakpoints.
	const eps = 1e-9
	nf := 0.7
	breaks := []float64{
		paperReward.PCritW,
		paperReward.PCritW + paperReward.KOffsetW,
		paperReward.PCritW + 2*paperReward.KOffsetW,
	}
	for _, b := range breaks {
		lo := paperReward.Reward(nf, b-eps)
		hi := paperReward.Reward(nf, b+eps)
		if math.Abs(lo-hi) > 1e-6 {
			t.Errorf("discontinuity at P=%v: %v vs %v", b, lo, hi)
		}
	}
}

func TestRewardMatchesFig2Anchor(t *testing.T) {
	// Fig. 2 anchor points: at f_max with P under budget the reward is 1;
	// at the lowest Jetson level (102/1479 MHz) it is ~0.069.
	if got := paperReward.Reward(1.0, 0.5); got != 1.0 {
		t.Errorf("f_max under budget = %v, want 1", got)
	}
	nf := 102.0 / 1479.0
	if got := paperReward.Reward(nf, 0.2); math.Abs(got-nf) > 1e-12 {
		t.Errorf("lowest level = %v, want %v", got, nf)
	}
}

func TestHardReward(t *testing.T) {
	if got := paperReward.HardReward(0.8, 0.6); got != 0.8 {
		t.Errorf("hard reward under budget = %v, want 0.8", got)
	}
	if got := paperReward.HardReward(0.8, 0.601); got != -1 {
		t.Errorf("hard reward on violation = %v, want -1", got)
	}
}

func TestRewardHardFlag(t *testing.T) {
	rp := paperReward
	rp.Hard = true
	if got := rp.Reward(0.8, 0.62); got != -1 {
		t.Errorf("Hard-flagged reward = %v, want -1 (hard cut)", got)
	}
	if got := rp.Reward(0.8, 0.55); got != 0.8 {
		t.Errorf("Hard-flagged reward under budget = %v, want 0.8", got)
	}
}

func TestRewardParamsValidate(t *testing.T) {
	if err := paperReward.Validate(); err != nil {
		t.Fatalf("paper params invalid: %v", err)
	}
	for _, rp := range []RewardParams{
		{PCritW: 0, KOffsetW: 0.05},
		{PCritW: -1, KOffsetW: 0.05},
		{PCritW: 0.6, KOffsetW: 0},
		{PCritW: 0.6, KOffsetW: -0.1},
	} {
		if err := rp.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", rp)
		}
	}
}

// Property: the reward is always within [-1, max(normFreq, 0)] ⊆ [-1, 1]
// for normFreq in [0, 1], and monotonically non-increasing in power.
func TestRewardBoundsAndMonotonicityProperty(t *testing.T) {
	f := func(nfRaw, p1Raw, p2Raw float64) bool {
		nf := math.Abs(math.Mod(nfRaw, 1))
		p1 := math.Abs(math.Mod(p1Raw, 2))
		p2 := math.Abs(math.Mod(p2Raw, 2))
		if math.IsNaN(nf) || math.IsNaN(p1) || math.IsNaN(p2) {
			return true
		}
		r1 := paperReward.Reward(nf, p1)
		if r1 < -1-1e-12 || r1 > nf+1e-12 {
			return false
		}
		if p1 > p2 {
			p1, p2 = p2, p1
			r1 = paperReward.Reward(nf, p1)
		}
		r2 := paperReward.Reward(nf, p2)
		return r2 <= r1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: for fixed power under the constraint, the reward is strictly
// increasing in frequency (the agent is always rewarded for running faster
// when the budget holds).
func TestRewardFrequencyMonotoneProperty(t *testing.T) {
	f := func(aRaw, bRaw float64) bool {
		a := math.Abs(math.Mod(aRaw, 1))
		b := math.Abs(math.Mod(bRaw, 1))
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return paperReward.Reward(a, 0.5) <= paperReward.Reward(b, 0.5)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
