package core

import "fedpower/internal/sim"

// StateDim is the dimensionality of the agent state
// s = (f, P, ipc, mr, mpki) from §III-A.
const StateDim = 5

// State feature scaling. The raw counter readings span very different
// ranges (frequency ~10³ MHz, MPKI ~10¹, miss rate ~10⁻¹); each feature is
// scaled to roughly [0, 1] so the single hidden layer does not have to learn
// the scales itself. The divisors are fixed platform constants, identical on
// every device, so scaling leaks no device-specific information into the
// shared model.
const (
	powerScaleW = 1.5 // upper end of the Jetson Nano single-core power range
	ipcScale    = 2.0 // IPC ceiling of the Cortex-A57 model
	mpkiScale   = 25  // MPKI of the most memory-intensive application
)

// StateVector writes the normalised state features for obs into dst (which
// must have StateDim capacity; pass nil to allocate) and returns it.
func StateVector(obs sim.Observation, dst []float64) []float64 {
	if cap(dst) < StateDim {
		dst = make([]float64, StateDim)
	}
	dst = dst[:StateDim]
	dst[0] = obs.NormFreq
	dst[1] = obs.PowerW / powerScaleW
	dst[2] = obs.IPC / ipcScale
	dst[3] = obs.MissRate
	dst[4] = obs.MPKI / mpkiScale
	return dst
}
