// Package core implements the paper's primary contribution on the device
// side: the neural-network-based DVFS power controller of §III-A. The
// controller is a contextual-bandit RL agent (Algorithm 1) that alternates
// between observing the processor state, sampling a V/f level from a
// softmax policy over predicted rewards (Eq. 3), and fitting its policy
// network to observed rewards with the Huber loss over replay mini-batches
// (Eq. 2). The reward signal (Eq. 4) trades application performance against
// a soft power constraint.
package core

import "fmt"

// RewardParams configures the reward signal of Eq. (4).
type RewardParams struct {
	// PCritW is the power constraint P_crit in watts (paper: 0.6 W).
	PCritW float64
	// KOffsetW is the softness band k_offset in watts (paper: 0.05 W): the
	// reward degrades linearly between P_crit and P_crit + k_offset, turns
	// negative beyond that, and saturates at -1 at P_crit + 2·k_offset.
	KOffsetW float64
	// Hard switches to the hard-cut constraint the paper argues against in
	// §III-A (flat -1 penalty on any violation). Off by default; used by the
	// soft-vs-hard ablation.
	Hard bool
}

// Validate reports an error for non-positive parameters.
func (p RewardParams) Validate() error {
	if p.PCritW <= 0 {
		return fmt.Errorf("core: power constraint %.3f W must be positive", p.PCritW)
	}
	if p.KOffsetW <= 0 {
		return fmt.Errorf("core: power offset %.3f W must be positive", p.KOffsetW)
	}
	return nil
}

// Reward implements Eq. (4): the reward for having run at normalised
// frequency normFreq = f_{t+1}/f_max while drawing powerW = P_{t+1} watts.
//
//	r = f/f_max                                  if P <= P_crit
//	r = f/f_max · (P_crit + k - P)/k             if P <= P_crit + k
//	r = (P_crit + k - P)/k                       if P <= P_crit + 2k
//	r = -1                                       otherwise
//
// The function is continuous: at P = P_crit the first two branches agree, at
// P = P_crit + k the middle branches are both 0, and at P = P_crit + 2k the
// third branch reaches -1. Rewards therefore lie in [-1, 1].
//
// With Hard set, the hard-cut variant (HardReward) is used instead.
func (p RewardParams) Reward(normFreq, powerW float64) float64 {
	if p.Hard {
		return p.HardReward(normFreq, powerW)
	}
	switch {
	case powerW <= p.PCritW:
		return normFreq
	case powerW <= p.PCritW+p.KOffsetW:
		return normFreq * (p.PCritW + p.KOffsetW - powerW) / p.KOffsetW
	case powerW <= p.PCritW+2*p.KOffsetW:
		return (p.PCritW + p.KOffsetW - powerW) / p.KOffsetW
	default:
		return -1
	}
}

// HardReward is the hard-cut alternative the paper argues against in
// §III-A: full performance reward below the constraint and a flat -1
// penalty for any violation. Kept for the ablation benchmark comparing soft
// and hard constraint enforcement.
func (p RewardParams) HardReward(normFreq, powerW float64) float64 {
	if powerW <= p.PCritW {
		return normFreq
	}
	return -1
}
