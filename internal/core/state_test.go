package core

import (
	"testing"

	"fedpower/internal/sim"
)

func obsFixture() sim.Observation {
	return sim.Observation{
		NormFreq: 0.623,
		PowerW:   0.55,
		IPC:      1.3,
		MissRate: 0.08,
		MPKI:     12.5,
	}
}

func TestStateVectorValues(t *testing.T) {
	s := StateVector(obsFixture(), nil)
	if len(s) != StateDim {
		t.Fatalf("state length %d, want %d", len(s), StateDim)
	}
	want := []float64{0.623, 0.55 / 1.5, 1.3 / 2.0, 0.08, 12.5 / 25}
	for i := range want {
		if diff := s[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("state[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestStateVectorNormalisedRange(t *testing.T) {
	// For observations within the platform's physical envelope every
	// feature lands in [0, ~1.2]: comparable scales for the single hidden
	// layer.
	obs := sim.Observation{NormFreq: 1, PowerW: 1.5, IPC: 2.0, MissRate: 0.3, MPKI: 25}
	for i, v := range StateVector(obs, nil) {
		if v < 0 || v > 1.25 {
			t.Errorf("feature %d = %v outside the normalised envelope", i, v)
		}
	}
}

func TestStateVectorReusesDst(t *testing.T) {
	dst := make([]float64, StateDim)
	out := StateVector(obsFixture(), dst)
	if &out[0] != &dst[0] {
		t.Fatal("StateVector reallocated although dst had capacity")
	}
	// Undersized dst must be replaced, not written out of bounds.
	small := make([]float64, 2)
	out = StateVector(obsFixture(), small)
	if len(out) != StateDim {
		t.Fatalf("undersized dst: got length %d", len(out))
	}
}

func TestStateVectorMatchesPaperFeatures(t *testing.T) {
	// §III-A: s = (f, P, ipc, mr, mpki) — exactly five features in this
	// order. Guard the order with distinct sentinel values.
	obs := sim.Observation{NormFreq: 0.1, PowerW: 0.2, IPC: 0.3, MissRate: 0.4, MPKI: 0.5}
	s := StateVector(obs, nil)
	if s[0] != 0.1 {
		t.Error("feature 0 must be the normalised frequency")
	}
	if s[1] != 0.2/1.5 {
		t.Error("feature 1 must be the scaled power")
	}
	if s[2] != 0.3/2.0 {
		t.Error("feature 2 must be the scaled IPC")
	}
	if s[3] != 0.4 {
		t.Error("feature 3 must be the miss rate")
	}
	if s[4] != 0.5/25 {
		t.Error("feature 4 must be the scaled MPKI")
	}
}
