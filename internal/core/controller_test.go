package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestController(t *testing.T) *Controller {
	t.Helper()
	return NewController(Defaults(15), rand.New(rand.NewSource(1)))
}

func TestDefaultsMatchTableI(t *testing.T) {
	p := Defaults(15)
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"learning rate", p.LearningRate, 0.005},
		{"tau max", p.TauMax, 0.9},
		{"tau decay", p.TauDecay, 0.0005},
		{"tau min", p.TauMin, 0.01},
		{"replay capacity", float64(p.ReplayCapacity), 4000},
		{"batch size", float64(p.BatchSize), 128},
		{"optimisation interval", float64(p.OptimInterval), 20},
		{"hidden layers", float64(p.HiddenLayers), 1},
		{"hidden neurons", float64(p.HiddenNeurons), 32},
		{"P_crit", p.Reward.PCritW, 0.6},
		{"k_offset", p.Reward.KOffsetW, 0.05},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("Table I %s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if p.Exploration != ExploreSoftmax {
		t.Error("default exploration must be softmax (Eq. 3)")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := Defaults(15).Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.LearningRate = 0 },
		func(p *Params) { p.TauMax = 0 },
		func(p *Params) { p.TauMin = 0 },
		func(p *Params) { p.TauMin = p.TauMax + 1 },
		func(p *Params) { p.TauDecay = -1 },
		func(p *Params) { p.ReplayCapacity = 0 },
		func(p *Params) { p.BatchSize = -5 },
		func(p *Params) { p.OptimInterval = 0 },
		func(p *Params) { p.HiddenLayers = -1 },
		func(p *Params) { p.HiddenLayers = 2; p.HiddenNeurons = 0 },
		func(p *Params) { p.Actions = 1 },
		func(p *Params) { p.Reward.PCritW = 0 },
	}
	for i, mutate := range mutations {
		p := Defaults(15)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d validated although invalid", i)
		}
	}
}

func TestValidateEpsilonGreedy(t *testing.T) {
	p := Defaults(15).WithEpsilonGreedy()
	if err := p.Validate(); err != nil {
		t.Fatalf("epsilon-greedy defaults invalid: %v", err)
	}
	p.EpsilonMax = 1.5
	if err := p.Validate(); err == nil {
		t.Error("epsilon max > 1 validated")
	}
	p = Defaults(15).WithEpsilonGreedy()
	p.EpsilonMin = 0
	if err := p.Validate(); err == nil {
		t.Error("epsilon min 0 validated")
	}
}

func TestNewControllerPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewController with invalid params did not panic")
		}
	}()
	p := Defaults(15)
	p.BatchSize = 0
	NewController(p, rand.New(rand.NewSource(1)))
}

func TestNumParamsIs687(t *testing.T) {
	c := newTestController(t)
	if c.NumParams() != 687 {
		t.Fatalf("NumParams = %d, want 687 (5-32-15 network)", c.NumParams())
	}
}

func TestTauSchedule(t *testing.T) {
	c := newTestController(t)
	if got := c.Tau(); got != 0.9 {
		t.Fatalf("initial tau = %v, want 0.9", got)
	}
	state := make([]float64, StateDim)
	// Advance 1000 steps: tau = 0.9·exp(-0.0005·1000) ≈ 0.5459.
	for i := 0; i < 1000; i++ {
		c.Observe(state, 0, 0.5)
	}
	want := 0.9 * math.Exp(-0.5)
	if math.Abs(c.Tau()-want) > 1e-9 {
		t.Fatalf("tau after 1000 steps = %v, want %v", c.Tau(), want)
	}
}

func TestTauFloor(t *testing.T) {
	p := Defaults(15)
	p.TauDecay = 0.1 // fast decay to hit the floor quickly
	c := NewController(p, rand.New(rand.NewSource(1)))
	state := make([]float64, StateDim)
	for i := 0; i < 200; i++ {
		c.Observe(state, 0, 0.5)
	}
	if c.Tau() != p.TauMin {
		t.Fatalf("tau = %v, want floor %v", c.Tau(), p.TauMin)
	}
}

func TestPolicyIsDistribution(t *testing.T) {
	c := newTestController(t)
	state := []float64{0.5, 0.4, 0.6, 0.1, 0.3}
	probs := c.Policy(state)
	if len(probs) != 15 {
		t.Fatalf("policy over %d actions, want 15", len(probs))
	}
	sum := 0.0
	for a, p := range probs {
		if p < 0 || p > 1 {
			t.Errorf("probs[%d] = %v outside [0,1]", a, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("policy sums to %v, want 1", sum)
	}
}

func TestPolicyTemperatureControlsEntropy(t *testing.T) {
	// At high temperature the softmax is near uniform; at low temperature
	// it concentrates on the argmax.
	p := Defaults(15)
	c := NewController(p, rand.New(rand.NewSource(2)))
	state := []float64{0.5, 0.4, 0.6, 0.1, 0.3}

	entropy := func(probs []float64) float64 {
		h := 0.0
		for _, q := range probs {
			if q > 0 {
				h -= q * math.Log(q)
			}
		}
		return h
	}
	hHigh := entropy(c.policyAt(state, 10))
	hLow := entropy(c.policyAt(state, 0.01))
	if hHigh <= hLow {
		t.Fatalf("entropy at tau=10 (%v) should exceed entropy at tau=0.01 (%v)", hHigh, hLow)
	}
	uniform := math.Log(15)
	if math.Abs(hHigh-uniform) > 0.05 {
		t.Errorf("high-temperature entropy %v, want near ln(15)=%v", hHigh, uniform)
	}
}

func TestGreedyIsArgmax(t *testing.T) {
	c := newTestController(t)
	state := []float64{0.2, 0.8, 0.3, 0.05, 0.9}
	mu := append([]float64(nil), c.Predict(state)...)
	best := 0
	for a := 1; a < len(mu); a++ {
		if mu[a] > mu[best] {
			best = a
		}
	}
	if got := c.GreedyAction(state); got != best {
		t.Fatalf("GreedyAction = %d, want argmax %d", got, best)
	}
}

func TestSelectActionInRange(t *testing.T) {
	c := newTestController(t)
	state := []float64{0.5, 0.3, 0.6, 0.1, 0.2}
	for i := 0; i < 500; i++ {
		a := c.SelectAction(state)
		if a < 0 || a >= 15 {
			t.Fatalf("action %d out of range", a)
		}
	}
}

func TestSelectActionExploresEarly(t *testing.T) {
	// At tau_max = 0.9 and untrained outputs, action selection should be
	// spread over many levels, not collapsed.
	c := newTestController(t)
	state := []float64{0.5, 0.3, 0.6, 0.1, 0.2}
	seen := map[int]bool{}
	for i := 0; i < 300; i++ {
		seen[c.SelectAction(state)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("early exploration touched only %d/15 actions", len(seen))
	}
}

func TestObserveBadActionPanics(t *testing.T) {
	c := newTestController(t)
	state := make([]float64, StateDim)
	for _, a := range []int{-1, 15, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Observe(action=%d) did not panic", a)
				}
			}()
			c.Observe(state, a, 0)
		}()
	}
}

func TestObserveNonFiniteRejected(t *testing.T) {
	c := newTestController(t)
	cases := []struct {
		name   string
		state  []float64
		reward float64
	}{
		{"NaN reward", make([]float64, StateDim), math.NaN()},
		{"Inf reward", make([]float64, StateDim), math.Inf(1)},
		{"NaN state", []float64{math.NaN(), 0, 0, 0, 0}, 0.5},
		{"Inf state", []float64{0, math.Inf(-1), 0, 0, 0}, 0.5},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Observe did not panic", tc.name)
				}
			}()
			c.Observe(tc.state, 0, tc.reward)
		}()
	}
}

func TestUpdateEmptyBufferIsNoop(t *testing.T) {
	c := newTestController(t)
	before := append([]float64(nil), c.ModelParams()...)
	c.Update()
	after := c.ModelParams()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Update on empty buffer changed parameters")
		}
	}
}

func TestObserveTriggersUpdateEveryH(t *testing.T) {
	p := Defaults(15)
	p.OptimInterval = 5
	c := NewController(p, rand.New(rand.NewSource(3)))
	state := []float64{0.5, 0.3, 0.6, 0.1, 0.2}
	before := append([]float64(nil), c.ModelParams()...)
	for i := 0; i < 4; i++ {
		c.Observe(state, 2, 0.7)
	}
	unchanged := true
	for i, v := range c.ModelParams() {
		if v != before[i] {
			unchanged = false
			break
		}
	}
	if !unchanged {
		t.Fatal("parameters changed before the H-th step")
	}
	c.Observe(state, 2, 0.7) // 5th step: update fires
	changed := false
	for i, v := range c.ModelParams() {
		if v != before[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("parameters unchanged after the H-th step")
	}
	if c.LastLoss() <= 0 {
		t.Errorf("LastLoss = %v after an update on non-zero errors", c.LastLoss())
	}
}

func TestModelParamsRoundTrip(t *testing.T) {
	a := NewController(Defaults(15), rand.New(rand.NewSource(1)))
	b := NewController(Defaults(15), rand.New(rand.NewSource(2)))
	b.SetModelParams(a.ModelParams())
	state := []float64{0.4, 0.3, 0.5, 0.1, 0.2}
	pa := append([]float64(nil), a.Predict(state)...)
	pb := b.Predict(state)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("predictions differ after parameter transfer at %d", i)
		}
	}
}

// TestControllerLearnsContextualBandit is the package's behavioural
// acceptance test: on a synthetic two-context bandit where context 0
// rewards action 3 and context 1 rewards action 11, the controller must
// learn to pick each context's best action greedily.
func TestControllerLearnsContextualBandit(t *testing.T) {
	p := Defaults(15)
	p.TauDecay = 0.002 // faster schedule for a shorter test
	rng := rand.New(rand.NewSource(5))
	c := NewController(p, rng)

	context := func(k int) []float64 {
		if k == 0 {
			return []float64{0.1, 0.2, 0.9, 0.05, 0.1}
		}
		return []float64{0.9, 0.7, 0.2, 0.25, 0.8}
	}
	banditReward := func(ctx, action int) float64 {
		best := 3
		if ctx == 1 {
			best = 11
		}
		// Reward decreases with distance from the context's best action.
		return 1 - 0.15*math.Abs(float64(action-best)) + rng.NormFloat64()*0.02
	}

	for step := 0; step < 4000; step++ {
		ctx := step % 2
		s := context(ctx)
		a := c.SelectAction(s)
		c.Observe(s, a, banditReward(ctx, a))
	}

	if got := c.GreedyAction(context(0)); got < 2 || got > 4 {
		t.Errorf("context 0 greedy action %d, want near 3", got)
	}
	if got := c.GreedyAction(context(1)); got < 10 || got > 12 {
		t.Errorf("context 1 greedy action %d, want near 11", got)
	}
}

func TestDeeperNetworkTrains(t *testing.T) {
	// The paper uses one hidden layer; the implementation supports more.
	// A two-hidden-layer controller must build the right parameter count
	// and still learn the synthetic bandit.
	p := Defaults(15)
	p.HiddenLayers = 2
	p.TauDecay = 0.002
	rng := rand.New(rand.NewSource(21))
	c := NewController(p, rng)
	// 5·32+32 + 32·32+32 + 32·15+15 = 192 + 1056 + 495 = 1743.
	if got := c.NumParams(); got != 1743 {
		t.Fatalf("two-hidden-layer NumParams = %d, want 1743", got)
	}
	state := []float64{0.2, 0.4, 0.8, 0.1, 0.3}
	for step := 0; step < 3000; step++ {
		a := c.SelectAction(state)
		r := 1 - 0.15*math.Abs(float64(a-6)) + rng.NormFloat64()*0.02
		c.Observe(state, a, r)
	}
	if got := c.GreedyAction(state); got < 5 || got > 7 {
		t.Errorf("deep controller greedy action %d, want near 6", got)
	}
}

func TestEpsilonGreedyMode(t *testing.T) {
	p := Defaults(15).WithEpsilonGreedy()
	p.EpsilonDecay = 0.05
	c := NewController(p, rand.New(rand.NewSource(6)))
	if c.Epsilon() != 1.0 {
		t.Fatalf("initial epsilon = %v, want 1", c.Epsilon())
	}
	state := make([]float64, StateDim)
	for i := 0; i < 500; i++ {
		a := c.SelectAction(state)
		if a < 0 || a >= 15 {
			t.Fatalf("epsilon-greedy action %d out of range", a)
		}
		c.Observe(state, a, 0.1)
	}
	if c.Epsilon() != p.EpsilonMin {
		t.Fatalf("epsilon after decay = %v, want floor %v", c.Epsilon(), p.EpsilonMin)
	}
	// With epsilon at the floor, selection is almost always greedy.
	greedy := c.GreedyAction(state)
	match := 0
	for i := 0; i < 200; i++ {
		if c.SelectAction(state) == greedy {
			match++
		}
	}
	if match < 180 {
		t.Fatalf("only %d/200 selections greedy at floor epsilon", match)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []float64 {
		c := NewController(Defaults(15), rand.New(rand.NewSource(9)))
		state := []float64{0.5, 0.4, 0.3, 0.2, 0.1}
		for i := 0; i < 100; i++ {
			a := c.SelectAction(state)
			c.Observe(state, a, float64(a)/15)
		}
		return append([]float64(nil), c.ModelParams()...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different trajectories")
		}
	}
}

// Property: the softmax policy is invariant to adding a constant to all
// predicted rewards (shift invariance of Eq. 3) — checked indirectly via
// two controllers whose outputs differ by a constant bias.
func TestPolicyShiftInvarianceProperty(t *testing.T) {
	c := newTestController(t)
	f := func(s0, s1, s2, s3, s4 float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(math.Abs(x), 1)
		}
		state := []float64{clamp(s0), clamp(s1), clamp(s2), clamp(s3), clamp(s4)}
		probs := append([]float64(nil), c.Policy(state)...)
		sum := 0.0
		for _, p := range probs {
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateBatchBitIdentical: a controller training on the batched Update
// path (the default) must reproduce the scalar reference path bit for bit
// — identical parameter vectors and losses over a full training run with
// softmax exploration, replay wraparound and periodic updates, because
// both paths perform the same replay draws from the same rng stream and
// the same float operations in the same per-accumulator order. Part of the
// determinism replay gate (-count=2).
func TestUpdateBatchBitIdentical(t *testing.T) {
	run := func(scalar bool) *Controller {
		p := Defaults(15)
		p.ScalarUpdate = scalar
		p.BatchSize = 32
		p.ReplayCapacity = 100 // wrap the ring several times
		p.OptimInterval = 5
		c := NewController(p, rand.New(rand.NewSource(11)))
		env := rand.New(rand.NewSource(12))
		state := make([]float64, StateDim)
		for step := 0; step < 400; step++ {
			for j := range state {
				state[j] = env.Float64()
			}
			a := c.SelectAction(state)
			c.Observe(state, a, env.Float64()*2-1)
		}
		return c
	}
	batched, scalar := run(false), run(true)
	bp, sp := batched.ModelParams(), scalar.ModelParams()
	for i := range bp {
		if bp[i] != sp[i] {
			t.Fatalf("params[%d] = %x batched, %x scalar", i, bp[i], sp[i])
		}
	}
	if batched.LastLoss() != scalar.LastLoss() {
		t.Fatalf("last loss %x batched, %x scalar", batched.LastLoss(), scalar.LastLoss())
	}
}

// TestUpdateAllocationFree pins the training hot path's steady-state
// allocation guarantee end to end for both Update implementations:
// replay sampling, forward, loss, backward and the Adam step.
func TestUpdateAllocationFree(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scalar bool
	}{{"batched", false}, {"scalar", true}} {
		p := Defaults(15)
		p.ScalarUpdate = tc.scalar
		p.OptimInterval = 1 << 30 // no automatic updates; we call Update directly
		c := NewController(p, rand.New(rand.NewSource(13)))
		env := rand.New(rand.NewSource(14))
		state := make([]float64, StateDim)
		for i := 0; i < 500; i++ {
			for j := range state {
				state[j] = env.Float64()
			}
			c.Observe(state, env.Intn(15), env.Float64()*2-1)
		}
		c.Update() // grow the batch scratch once
		if avg := testing.AllocsPerRun(50, c.Update); avg != 0 {
			t.Errorf("%s Update allocates %.1f times per call, want 0", tc.name, avg)
		}
	}
}
