package core

import (
	"fmt"
	"math"
	"math/rand"

	"fedpower/internal/nn"
	"fedpower/internal/replay"
)

// Params collects every hyper-parameter of the local power controller.
// Defaults returns the values of the paper's Table I.
type Params struct {
	LearningRate float64 // Adam learning rate α
	TauMax       float64 // initial softmax temperature τ_max
	TauDecay     float64 // exponential temperature decay rate τ_decay per step
	TauMin       float64 // temperature floor τ_min

	ReplayCapacity int // replay buffer capacity C
	BatchSize      int // mini-batch size C_B
	OptimInterval  int // update the policy every H environment steps

	HiddenLayers  int // number of hidden layers (paper: 1)
	HiddenNeurons int // neurons per hidden layer (paper: 32)

	Actions int // number of V/f levels K (Jetson Nano: 15)

	Reward RewardParams // P_crit and k_offset of Eq. (4)

	// Exploration selects the exploration strategy. The paper uses softmax
	// sampling at decaying temperature (Eq. 3); ε-greedy is provided for the
	// exploration-strategy ablation.
	Exploration ExplorationMode
	// EpsilonMax/EpsilonDecay/EpsilonMin drive the ε schedule when
	// Exploration is ExploreEpsilonGreedy (ε = max(min, max·exp(-decay·t))).
	EpsilonMax   float64
	EpsilonDecay float64
	EpsilonMin   float64

	// ScalarUpdate forces Update onto the per-sample reference kernels
	// (replay.Sample + nn.ForwardAction/BackwardScalar) instead of the
	// batched ones (replay.SampleInto + nn.ForwardBatch/BackwardBatch).
	// The two paths are bit-identical by construction — the seam exists so
	// tests and experiments can prove it end to end (the batch bit-identity
	// suite and TestFig3BatchBitIdentical), not to change behaviour.
	ScalarUpdate bool
}

// ExplorationMode selects how training-time actions are drawn.
type ExplorationMode int

const (
	// ExploreSoftmax samples from the Boltzmann distribution of Eq. (3) at
	// the current temperature — the paper's strategy.
	ExploreSoftmax ExplorationMode = iota
	// ExploreEpsilonGreedy takes a uniform random action with probability ε
	// and the greedy action otherwise.
	ExploreEpsilonGreedy
)

// Defaults returns the paper's Table I configuration for a processor with
// the given number of V/f levels.
func Defaults(actions int) Params {
	return Params{
		LearningRate:   0.005,
		TauMax:         0.9,
		TauDecay:       0.0005,
		TauMin:         0.01,
		ReplayCapacity: 4000,
		BatchSize:      128,
		OptimInterval:  20,
		HiddenLayers:   1,
		HiddenNeurons:  32,
		Actions:        actions,
		Reward:         RewardParams{PCritW: 0.6, KOffsetW: 0.05},
	}
}

// Validate reports the first inconsistency in the parameters.
func (p Params) Validate() error {
	switch {
	case p.LearningRate <= 0:
		return fmt.Errorf("core: learning rate %v must be positive", p.LearningRate)
	case p.TauMax <= 0 || p.TauMin <= 0 || p.TauMin > p.TauMax:
		return fmt.Errorf("core: temperature range [%v, %v] invalid", p.TauMin, p.TauMax)
	case p.TauDecay < 0:
		return fmt.Errorf("core: temperature decay %v must be non-negative", p.TauDecay)
	case p.ReplayCapacity <= 0:
		return fmt.Errorf("core: replay capacity %d must be positive", p.ReplayCapacity)
	case p.BatchSize <= 0:
		return fmt.Errorf("core: batch size %d must be positive", p.BatchSize)
	case p.OptimInterval <= 0:
		return fmt.Errorf("core: optimisation interval %d must be positive", p.OptimInterval)
	case p.HiddenLayers < 0:
		return fmt.Errorf("core: hidden layer count %d must be non-negative", p.HiddenLayers)
	case p.HiddenLayers > 0 && p.HiddenNeurons <= 0:
		return fmt.Errorf("core: hidden neuron count %d must be positive", p.HiddenNeurons)
	case p.Actions <= 1:
		return fmt.Errorf("core: action count %d must exceed 1", p.Actions)
	}
	if p.Exploration == ExploreEpsilonGreedy {
		switch {
		case p.EpsilonMax <= 0 || p.EpsilonMax > 1:
			return fmt.Errorf("core: epsilon max %v out of (0,1]", p.EpsilonMax)
		case p.EpsilonMin <= 0 || p.EpsilonMin > p.EpsilonMax:
			return fmt.Errorf("core: epsilon range [%v, %v] invalid", p.EpsilonMin, p.EpsilonMax)
		case p.EpsilonDecay < 0:
			return fmt.Errorf("core: epsilon decay %v negative", p.EpsilonDecay)
		}
	}
	return p.Reward.Validate()
}

// WithEpsilonGreedy returns a copy of p configured for ε-greedy exploration
// with the conventional schedule used by the tabular baseline (ε from 1.0,
// exponential decay, floor 0.01).
func (p Params) WithEpsilonGreedy() Params {
	p.Exploration = ExploreEpsilonGreedy
	p.EpsilonMax = 1.0
	p.EpsilonDecay = p.TauDecay
	p.EpsilonMin = 0.01
	return p
}

// layerSizes expands the Params into explicit NN layer widths.
func (p Params) layerSizes() []int {
	sizes := []int{StateDim}
	for i := 0; i < p.HiddenLayers; i++ {
		sizes = append(sizes, p.HiddenNeurons)
	}
	return append(sizes, p.Actions)
}

// Controller is the local power controller of Algorithm 1: a contextual
// bandit whose policy network μ(s, a, θ) regresses the expected reward per
// V/f level, with softmax exploration at temperature τ and periodic Huber
// updates over replay mini-batches.
//
// A Controller is not safe for concurrent use; in the federated setting each
// device owns exactly one.
type Controller struct {
	P Params

	net   *nn.Network
	opt   nn.Optimizer
	buf   *replay.Buffer
	rng   *rand.Rand
	step  int
	grad  []float64
	batch []replay.Sample // scalar reference path scratch
	probs []float64
	loss  float64 // last batch loss, for diagnostics

	// Batched-update scratch: the mini-batch's action/reward columns and
	// the per-sample outputs and loss gradients, grown once (capacity-
	// guarded) and reused so Update stays allocation-free. The state
	// matrix itself is network-owned (nn.BatchStates).
	actions []int
	rewards []float64
	outs    []float64
	gs      []float64
}

// NewController builds a controller from p, drawing weight initialisation
// and all exploration randomness from rng. It panics on invalid parameters
// (configuration errors are programming bugs in this codebase, not runtime
// input).
func NewController(p Params, rng *rand.Rand) *Controller {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	net := nn.New(rng, p.layerSizes()...)
	return &Controller{
		P:     p,
		net:   net,
		opt:   nn.NewAdam(p.LearningRate),
		buf:   replay.New(p.ReplayCapacity),
		rng:   rng,
		grad:  make([]float64, net.NumParams()),
		probs: make([]float64, p.Actions),
	}
}

// Tau returns the current softmax temperature: τ_max·exp(-τ_decay·t)
// clamped from below at τ_min.
func (c *Controller) Tau() float64 {
	tau := c.P.TauMax * math.Exp(-c.P.TauDecay*float64(c.step))
	if tau < c.P.TauMin {
		tau = c.P.TauMin
	}
	return tau
}

// Step returns the number of environment interactions recorded so far.
func (c *Controller) Step() int { return c.step }

// Buffer exposes the replay buffer for diagnostics and overhead accounting.
func (c *Controller) Buffer() *replay.Buffer { return c.buf }

// LastLoss returns the mean Huber loss of the most recent batch update, or 0
// before the first update.
func (c *Controller) LastLoss() float64 { return c.loss }

// Predict returns μ(s, a, θ) for every action a — the network's expected
// reward per V/f level in the given state. The returned slice is owned by
// the controller and valid until the next Predict/Policy/Update call.
func (c *Controller) Predict(state []float64) []float64 {
	return c.net.Forward(state)
}

// Policy computes the softmax action distribution π(a|s, θ, τ) of Eq. (3) at
// the current temperature. The returned slice is owned by the controller.
func (c *Controller) Policy(state []float64) []float64 {
	return c.policyAt(state, c.Tau())
}

func (c *Controller) policyAt(state []float64, tau float64) []float64 {
	mu := c.net.Forward(state)
	// Numerically stable softmax over μ/τ.
	maxv := mu[0]
	for _, v := range mu[1:] {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	for i, v := range mu {
		e := math.Exp((v - maxv) / tau)
		c.probs[i] = e
		sum += e
	}
	for i := range c.probs {
		c.probs[i] /= sum
	}
	return c.probs
}

// Epsilon returns the current ε-greedy exploration rate; meaningful only in
// ExploreEpsilonGreedy mode.
func (c *Controller) Epsilon() float64 {
	eps := c.P.EpsilonMax * math.Exp(-c.P.EpsilonDecay*float64(c.step))
	if eps < c.P.EpsilonMin {
		eps = c.P.EpsilonMin
	}
	return eps
}

// SelectAction draws the next V/f level according to the configured
// exploration strategy — softmax sampling from π(a|s, θ, τ) (line 6 of
// Algorithm 1) by default, ε-greedy in the ablation mode.
func (c *Controller) SelectAction(state []float64) int {
	if c.P.Exploration == ExploreEpsilonGreedy {
		if c.rng.Float64() < c.Epsilon() {
			return c.rng.Intn(c.P.Actions)
		}
		return c.GreedyAction(state)
	}
	probs := c.Policy(state)
	u := c.rng.Float64()
	acc := 0.0
	for a, p := range probs {
		acc += p
		if u < acc {
			return a
		}
	}
	return len(probs) - 1 // guard against floating-point shortfall
}

// GreedyAction returns argmax_a μ(s, a, θ): the pure exploitation choice
// used during evaluation, when "the agents consistently exploit the action
// with the highest predicted reward" (§IV-A).
func (c *Controller) GreedyAction(state []float64) int {
	mu := c.net.Forward(state)
	best := 0
	for a := 1; a < len(mu); a++ {
		if mu[a] > mu[best] {
			best = a
		}
	}
	return best
}

// Observe records one interaction (s_t, a_t, r_t) in the replay buffer,
// advances the temperature schedule, and — every OptimInterval steps — runs
// one mini-batch update (lines 8–13 of Algorithm 1).
func (c *Controller) Observe(state []float64, action int, reward float64) {
	if action < 0 || action >= c.P.Actions {
		panic(fmt.Sprintf("core: observed action %d out of range [0,%d)", action, c.P.Actions))
	}
	if math.IsNaN(reward) || math.IsInf(reward, 0) {
		// A non-finite reward silently poisons every later batch through
		// the replay buffer; fail at the source instead.
		panic(fmt.Sprintf("core: non-finite reward %v observed", reward))
	}
	for i, v := range state {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("core: non-finite state feature %d = %v observed", i, v))
		}
	}
	c.buf.Add(state, action, reward)
	c.step++
	if c.step%c.P.OptimInterval == 0 {
		c.Update()
	}
}

// AdvanceSchedule advances the exploration schedule (temperature / epsilon
// decay) by one step without recording a sample or updating the network.
// Architectures that learn off-device (e.g. the server-side baseline) use
// it to keep on-device exploration decaying while all training happens
// elsewhere.
func (c *Controller) AdvanceSchedule() { c.step++ }

// Update performs one gradient step on the policy network: it samples a
// mini-batch B from the replay buffer and minimises the mean Huber loss
// between μ(s, a, θ) and the observed reward r for the taken action only
// (Eq. 2). Updating only the taken action's output is what makes the
// regression a contextual bandit value estimate rather than a full
// distribution fit.
//
// Update runs the batched kernels (nn.ForwardBatch/BackwardBatch): the
// sampled states are packed into the network-owned [batch × in] matrix and
// the network weights stream through the cache once per sample block
// instead of once per sample. The per-sample reference path is kept
// (P.ScalarUpdate) and the two are bit-identical — same draws from the
// same rng stream, same float operations in the same per-accumulator
// order — which the batch bit-identity suite pins exactly. Both paths are
// allocation-free at steady state, proven by the allocfree effect
// analyzer.
//
//fedlint:allocfree
func (c *Controller) Update() {
	if c.buf.Len() == 0 {
		return
	}
	if c.P.ScalarUpdate {
		c.updateScalar()
		return
	}
	c.updateBatched()
}

// updateScalar is the per-sample reference implementation of Update: one
// ForwardAction/BackwardScalar pair per drawn sample, in draw order.
func (c *Controller) updateScalar() {
	n := c.P.BatchSize
	c.batch = c.buf.Sample(c.rng, n, c.batch)
	for i := range c.grad {
		c.grad[i] = 0
	}
	totalLoss := 0.0
	for _, s := range c.batch {
		// The bandit loss touches a single output unit, so the scalar
		// forward/backward fast paths apply; with the sample buffer and
		// the network scratch reused, the whole update is allocation-free.
		out := c.net.ForwardAction(s.State, s.Action)
		loss, g := nn.Huber(out, s.Reward, nn.HuberDelta)
		totalLoss += loss
		c.net.BackwardScalar(s.Action, g/float64(n), c.grad)
	}
	c.loss = totalLoss / float64(n)
	c.opt.Step(c.net.Params(), c.grad)
}

// updateBatched is the cache-blocked implementation of Update: the drawn
// mini-batch is packed column-wise (states into the network's batch
// matrix, actions/rewards into controller-owned columns) and forward,
// loss and backward each run once over the whole batch.
func (c *Controller) updateBatched() {
	n := c.P.BatchSize
	if cap(c.actions) < n {
		c.actions = make([]int, n)
		c.rewards = make([]float64, n)
		c.outs = make([]float64, n)
		c.gs = make([]float64, n)
	}
	actions := c.actions[:n]
	rewards := c.rewards[:n]
	outs := c.outs[:n]
	gs := c.gs[:n]
	c.buf.SampleInto(c.rng, c.net.BatchStates(n), actions, rewards)
	for i := range c.grad {
		c.grad[i] = 0
	}
	c.net.ForwardBatch(actions, outs)
	totalLoss := 0.0
	for s := 0; s < n; s++ {
		loss, g := nn.Huber(outs[s], rewards[s], nn.HuberDelta)
		totalLoss += loss
		gs[s] = g / float64(n)
	}
	c.net.BackwardBatch(actions, gs, c.grad)
	c.loss = totalLoss / float64(n)
	c.opt.Step(c.net.Params(), c.grad)
}

// ModelParams returns the live flat parameter vector θ of the policy
// network. In the federated protocol this is what leaves the device — never
// the replay buffer.
func (c *Controller) ModelParams() []float64 { return c.net.Params() }

// SetModelParams overwrites θ with the global model received from the
// aggregation server at the start of a round. Replay buffer, temperature
// schedule and optimizer state stay local, matching Algorithm 2 ("the buffer
// is maintained across all rounds and its content never leaves the device").
func (c *Controller) SetModelParams(p []float64) { c.net.SetParams(p) }

// NumParams returns the number of policy-network parameters (687 for the
// paper's 5-32-15 configuration).
func (c *Controller) NumParams() int { return c.net.NumParams() }

// Network exposes the underlying policy network for tests and diagnostics.
func (c *Controller) Network() *nn.Network { return c.net }
