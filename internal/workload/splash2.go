package workload

import "fmt"

// The twelve evaluation applications of §IV, named after the SPLASH-2
// programs the paper runs on the Jetson Nano boards. Characteristics are
// synthetic but honour each namesake's published qualitative profile:
//
//   - ocean and radix are memory-dominated (high MPKI): their IPC collapses
//     at high frequency so even f_max stays inside the 0.6 W budget;
//   - the water codes, lu and fmm are compute-dominated (high ILP, high
//     activity): they cross the budget near the middle of the V/f range;
//   - fft, raytrace, volrend, radiosity, barnes and cholesky sit in between.
//
// MemLatencyNs is 80 ns for all applications — it is a property of the
// board's LPDDR4, not of the program. Instruction totals are sized so that a
// complete run under the per-app optimal level takes roughly 20–30 simulated
// seconds, the scale of the paper's Table III execution times.

// DRAMLatencyNs is the LPDDR4 access latency applied to every application.
const DRAMLatencyNs = 80

// SPLASH2 returns the specs of the twelve evaluation applications, in the
// paper's enumeration order.
func SPLASH2() []Spec {
	return []Spec{
		{
			Name: "fft", BaseCPI: 0.70, MPKI: 8.0, APKI: 160, MemLatencyNs: DRAMLatencyNs,
			Activity: 1.00, TotalInstr: 2.2e10,
			Phases: []Phase{
				{Fraction: 0.40, CPIMul: 0.90, MPKIMul: 0.55}, // butterfly compute
				{Fraction: 0.20, CPIMul: 1.15, MPKIMul: 2.10}, // matrix transpose
				{Fraction: 0.40, CPIMul: 0.90, MPKIMul: 0.65},
			},
		},
		{
			Name: "lu", BaseCPI: 0.60, MPKI: 3.0, APKI: 120, MemLatencyNs: DRAMLatencyNs,
			Activity: 1.15, TotalInstr: 2.9e10,
			Phases: []Phase{
				{Fraction: 0.70, CPIMul: 0.95, MPKIMul: 0.80}, // dense factorisation
				{Fraction: 0.30, CPIMul: 1.10, MPKIMul: 1.50}, // pivot/exchange
			},
		},
		{
			Name: "raytrace", BaseCPI: 0.85, MPKI: 6.0, APKI: 200, MemLatencyNs: DRAMLatencyNs,
			Activity: 0.90, TotalInstr: 2.3e10,
			Phases: []Phase{
				{Fraction: 0.50, CPIMul: 1.00, MPKIMul: 1.30}, // BVH traversal
				{Fraction: 0.50, CPIMul: 0.95, MPKIMul: 0.70}, // shading
			},
		},
		{
			Name: "volrend", BaseCPI: 0.80, MPKI: 7.0, APKI: 190, MemLatencyNs: DRAMLatencyNs,
			Activity: 0.90, TotalInstr: 2.2e10,
			Phases: []Phase{
				{Fraction: 0.60, CPIMul: 1.00, MPKIMul: 1.20}, // ray casting
				{Fraction: 0.40, CPIMul: 0.92, MPKIMul: 0.70}, // compositing
			},
		},
		{
			Name: "water-ns", BaseCPI: 0.65, MPKI: 1.5, APKI: 100, MemLatencyNs: DRAMLatencyNs,
			Activity: 1.10, TotalInstr: 3.0e10,
			Phases: []Phase{
				{Fraction: 0.80, CPIMul: 1.00, MPKIMul: 1.00}, // force computation
				{Fraction: 0.20, CPIMul: 1.08, MPKIMul: 1.80}, // neighbour update
			},
		},
		{
			Name: "water-sp", BaseCPI: 0.68, MPKI: 2.0, APKI: 105, MemLatencyNs: DRAMLatencyNs,
			Activity: 1.05, TotalInstr: 2.9e10,
			Phases: []Phase{
				{Fraction: 0.75, CPIMul: 1.00, MPKIMul: 1.00},
				{Fraction: 0.25, CPIMul: 1.06, MPKIMul: 1.60},
			},
		},
		{
			Name: "ocean", BaseCPI: 0.80, MPKI: 22.0, APKI: 280, MemLatencyNs: DRAMLatencyNs,
			Activity: 0.85, TotalInstr: 1.1e10,
			Phases: []Phase{
				{Fraction: 0.55, CPIMul: 1.00, MPKIMul: 1.10}, // grid relaxation sweeps
				{Fraction: 0.45, CPIMul: 0.95, MPKIMul: 0.85},
			},
		},
		{
			Name: "radix", BaseCPI: 0.70, MPKI: 18.0, APKI: 260, MemLatencyNs: DRAMLatencyNs,
			Activity: 0.80, TotalInstr: 1.2e10,
			Phases: []Phase{
				{Fraction: 0.50, CPIMul: 1.00, MPKIMul: 1.20}, // permutation scatter
				{Fraction: 0.50, CPIMul: 0.95, MPKIMul: 0.80}, // histogram
			},
		},
		{
			Name: "fmm", BaseCPI: 0.70, MPKI: 2.5, APKI: 110, MemLatencyNs: DRAMLatencyNs,
			Activity: 1.00, TotalInstr: 2.8e10,
			Phases: []Phase{
				{Fraction: 0.65, CPIMul: 0.95, MPKIMul: 0.90}, // multipole expansion
				{Fraction: 0.35, CPIMul: 1.10, MPKIMul: 1.40}, // tree traversal
			},
		},
		{
			Name: "radiosity", BaseCPI: 0.90, MPKI: 5.0, APKI: 180, MemLatencyNs: DRAMLatencyNs,
			Activity: 0.85, TotalInstr: 2.1e10,
			Phases: []Phase{
				{Fraction: 0.50, CPIMul: 1.00, MPKIMul: 1.25},
				{Fraction: 0.50, CPIMul: 0.95, MPKIMul: 0.75},
			},
		},
		{
			Name: "barnes", BaseCPI: 0.75, MPKI: 4.0, APKI: 150, MemLatencyNs: DRAMLatencyNs,
			Activity: 0.95, TotalInstr: 2.6e10,
			Phases: []Phase{
				{Fraction: 0.30, CPIMul: 1.12, MPKIMul: 1.70}, // tree build
				{Fraction: 0.70, CPIMul: 0.95, MPKIMul: 0.75}, // force evaluation
			},
		},
		{
			Name: "cholesky", BaseCPI: 0.75, MPKI: 10.0, APKI: 210, MemLatencyNs: DRAMLatencyNs,
			Activity: 0.95, TotalInstr: 1.9e10,
			Phases: []Phase{
				{Fraction: 0.40, CPIMul: 1.05, MPKIMul: 1.40}, // supernode assembly
				{Fraction: 0.60, CPIMul: 0.95, MPKIMul: 0.75}, // dense updates
			},
		},
	}
}

// Names returns the twelve application names in enumeration order.
func Names() []string {
	specs := SPLASH2()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// ByName returns the spec with the given name from the SPLASH-2 set, or an
// error naming the unknown application.
func ByName(name string) (Spec, error) {
	for _, s := range SPLASH2() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown application %q", name)
}

// ByNames resolves a list of names against the SPLASH-2 set, failing on the
// first unknown name.
func ByNames(names ...string) ([]Spec, error) {
	specs := make([]Spec, 0, len(names))
	for _, n := range names {
		s, err := ByName(n)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}
