package workload

import (
	"testing"

	"fedpower/internal/sim"
)

func TestSPLASH2HasTwelveValidApps(t *testing.T) {
	specs := SPLASH2()
	if len(specs) != 12 {
		t.Fatalf("%d applications, want 12", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("app %s invalid: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate app name %s", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestSPLASH2PaperNames(t *testing.T) {
	// Exactly the twelve applications of §IV.
	want := []string{
		"fft", "lu", "raytrace", "volrend", "water-ns", "water-sp",
		"ocean", "radix", "fmm", "radiosity", "barnes", "cholesky",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() returned %d entries", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("ocean")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "ocean" {
		t.Fatalf("ByName returned %s", s.Name)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown app resolved")
	}
}

func TestByNames(t *testing.T) {
	specs, err := ByNames("fft", "lu")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "fft" || specs[1].Name != "lu" {
		t.Fatalf("ByNames returned %+v", specs)
	}
	if _, err := ByNames("fft", "nope"); err == nil {
		t.Fatal("unknown app in list resolved")
	}
}

func TestMemoryVsComputeClassification(t *testing.T) {
	// The experiments rely on ocean/radix being memory-dominated and the
	// water codes / lu being compute-dominated. Verify through the model,
	// not the raw numbers: optimal level under 0.6 W must be f_max for the
	// memory class and strictly lower for the compute class.
	table := sim.JetsonNanoTable()
	pm := sim.DefaultPowerModel()
	optimal := func(name string) int {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		app := NewApp(spec)
		best := 0
		for k := 0; k < table.Len(); k++ {
			lv := table.Level(k)
			d := app.Demand()
			if pm.Total(lv.VoltV, lv.FreqMHz, sim.IPC(d, lv.FreqMHz), d.Activity) <= 0.6 {
				best = k
			}
		}
		return best
	}
	for _, name := range []string{"ocean", "radix"} {
		if got := optimal(name); got != table.Len()-1 {
			t.Errorf("%s optimal level %d, want f_max (memory-bound)", name, got)
		}
	}
	for _, name := range []string{"water-ns", "water-sp", "lu", "fmm"} {
		if got := optimal(name); got > 10 {
			t.Errorf("%s optimal level %d, want mid-range (compute-bound)", name, got)
		}
	}
}

func TestExecutionTimesInPaperRange(t *testing.T) {
	// At each app's optimal level, a full run should take roughly the
	// paper's Table III execution-time scale (tens of seconds), so that
	// absolute numbers in the reproduced tables are comparable.
	table := sim.JetsonNanoTable()
	pm := sim.DefaultPowerModel()
	for _, spec := range SPLASH2() {
		app := NewApp(spec)
		d := app.Demand()
		best := 0
		for k := 0; k < table.Len(); k++ {
			lv := table.Level(k)
			if pm.Total(lv.VoltV, lv.FreqMHz, sim.IPC(d, lv.FreqMHz), d.Activity) <= 0.6 {
				best = k
			}
		}
		ips := sim.IPS(d, table.Level(best).FreqMHz)
		execT := spec.TotalInstr / ips
		if execT < 10 || execT > 60 {
			t.Errorf("%s executes in %.1f s at its optimum, want 10-60 s", spec.Name, execT)
		}
	}
}

func TestSharedDRAMLatency(t *testing.T) {
	// Memory latency is a board property, identical across applications.
	for _, s := range SPLASH2() {
		if s.MemLatencyNs != DRAMLatencyNs {
			t.Errorf("%s has memory latency %v, want %v", s.Name, s.MemLatencyNs, float64(DRAMLatencyNs))
		}
	}
}

func TestPhaseFractionsSumToOne(t *testing.T) {
	for _, s := range SPLASH2() {
		sum := 0.0
		for _, p := range s.Phases {
			sum += p.Fraction
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s phase fractions sum to %v", s.Name, sum)
		}
	}
}
