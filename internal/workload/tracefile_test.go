package workload

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"fedpower/internal/sim"
)

func newDeterministicRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

func sampleSegments() []Segment {
	return []Segment{
		{Instr: 1e9, Demand: sim.Demand{BaseCPI: 0.7, MPKI: 2, APKI: 100, MemLatencyNs: 80, Activity: 1.0}},
		{Instr: 2e9, Demand: sim.Demand{BaseCPI: 0.9, MPKI: 20, APKI: 250, MemLatencyNs: 80, Activity: 0.85}},
	}
}

func TestNewTraceAppValidation(t *testing.T) {
	if _, err := NewTraceApp("", sampleSegments()); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewTraceApp("x", nil); err == nil {
		t.Error("no segments accepted")
	}
	bad := sampleSegments()
	bad[0].Instr = 0
	if _, err := NewTraceApp("x", bad); err == nil {
		t.Error("zero-instruction segment accepted")
	}
	bad = sampleSegments()
	bad[1].Demand.MPKI = bad[1].Demand.APKI + 1
	if _, err := NewTraceApp("x", bad); err == nil {
		t.Error("MPKI > APKI accepted")
	}
	bad = sampleSegments()
	bad[0].Demand.Activity = 0
	if _, err := NewTraceApp("x", bad); err == nil {
		t.Error("zero activity accepted")
	}
}

func TestTraceAppLifecycle(t *testing.T) {
	app, err := NewTraceApp("pipeline", sampleSegments())
	if err != nil {
		t.Fatal(err)
	}
	if app.Name() != "pipeline" || app.TotalInstr() != 3e9 {
		t.Fatalf("metadata: %s, %v", app.Name(), app.TotalInstr())
	}
	// Segment 1 demand initially.
	if d := app.Demand(); d.BaseCPI != 0.7 {
		t.Fatalf("initial demand %+v", d)
	}
	app.Advance(1.5e9) // into segment 2
	if d := app.Demand(); d.BaseCPI != 0.9 || d.MPKI != 20 {
		t.Fatalf("segment 2 demand %+v", d)
	}
	app.Advance(2e9) // past the end
	if app.Remaining() > 0 {
		t.Fatalf("remaining %v after overrun", app.Remaining())
	}
	if d := app.Demand(); d.BaseCPI != 0.9 {
		t.Fatal("exhausted trace must report the last segment's demand")
	}
	app.Reset()
	if app.Remaining() != 3e9 || app.Demand().BaseCPI != 0.7 {
		t.Fatal("Reset did not rewind")
	}
}

func TestTraceAppAdvanceNegativePanics(t *testing.T) {
	app, err := NewTraceApp("x", sampleSegments())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	app.Advance(-1)
}

func TestTraceAppRunsOnDevice(t *testing.T) {
	// The trace-driven app plugs into the device exactly like a parametric
	// one and exhibits its per-segment power signature.
	app, err := NewTraceApp("mix", sampleSegments())
	if err != nil {
		t.Fatal(err)
	}
	dev := sim.NewDevice(sim.JetsonNanoTable(), sim.DefaultPowerModel(), newDeterministicRand())
	dev.PowerNoiseW, dev.IPCNoiseRel = 0, 0
	dev.Load(app)
	dev.SetLevel(12)
	first := dev.Step(0.5)
	// Compute segment: high IPC, high power.
	for !dev.Done() && app.Demand().BaseCPI == 0.7 {
		dev.Step(0.5)
	}
	second := dev.Step(0.5)
	if second.IPC >= first.IPC {
		t.Fatalf("memory segment IPC %v should be below compute segment %v", second.IPC, first.IPC)
	}
	if second.TruePower >= first.TruePower {
		t.Fatalf("memory segment power %v should be below compute segment %v", second.TruePower, first.TruePower)
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	app, err := NewTraceApp("rt", sampleSegments())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, app); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTraceCSV("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TotalInstr() != app.TotalInstr() {
		t.Fatalf("total %v, want %v", loaded.TotalInstr(), app.TotalInstr())
	}
	a, b := app.Segments(), loaded.Segments()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("segment %d: %+v != %+v", i, a[i], b[i])
		}
	}
}

func TestLoadTraceCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"header only", "instr,base_cpi,mpki,apki,mem_latency_ns,activity\n"},
		{"wrong header", "a,b,c,d,e,f\n1,2,3,4,5,6\n"},
		{"short header", "instr,base_cpi\n1,2\n"},
		{"non-numeric", "instr,base_cpi,mpki,apki,mem_latency_ns,activity\nx,0.7,2,100,80,1\n"},
		{"invalid segment", "instr,base_cpi,mpki,apki,mem_latency_ns,activity\n0,0.7,2,100,80,1\n"},
	}
	for _, c := range cases {
		if _, err := LoadTraceCSV("x", strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
