// Package workload models the paper's evaluation applications: twelve
// single-threaded programs named after the SPLASH-2 suite, each defined by a
// compute/memory characteristic profile and a sequence of execution phases.
//
// The experiments do not depend on the literal SPLASH-2 instruction streams
// — they depend on workload *diversity*: compute-bound applications exceed
// the power budget at mid frequencies while memory-bound applications stay
// inside it even at f_max, so the optimal V/f level is application-specific
// and a policy trained on one class misbehaves on the other. Each synthetic
// application reproduces the published qualitative character of its
// namesake (ocean and radix are memory-dominated, the water codes and lu are
// compute-dominated, etc.) through its BaseCPI/MPKI/activity profile.
package workload

import (
	"fmt"
	"math/rand"

	"fedpower/internal/sim"
)

// Phase is one execution phase of an application, covering a fraction of its
// total instructions and scaling the application's base characteristics.
// Real programs alternate between compute kernels and data-movement phases;
// phases make the agent's performance-counter state informative within a
// single application.
type Phase struct {
	Fraction float64 // share of total instructions, phases sum to 1
	CPIMul   float64 // multiplier on BaseCPI during this phase
	MPKIMul  float64 // multiplier on MPKI during this phase
}

// Spec is the static description of an application.
type Spec struct {
	Name         string
	BaseCPI      float64 // cycles/instruction with a perfect LLC
	MPKI         float64 // LLC misses per kilo-instruction (phase-averaged base)
	APKI         float64 // LLC accesses per kilo-instruction
	MemLatencyNs float64 // DRAM latency seen on a miss
	Activity     float64 // dynamic-power activity factor
	TotalInstr   float64 // instructions to retire for one complete run
	Phases       []Phase // execution phases; empty means one uniform phase
}

// Validate reports an error when the spec is internally inconsistent.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec with empty name")
	}
	if s.BaseCPI <= 0 || s.APKI <= 0 || s.MemLatencyNs < 0 || s.MPKI < 0 {
		return fmt.Errorf("workload %s: non-positive characteristic", s.Name)
	}
	if s.MPKI > s.APKI {
		return fmt.Errorf("workload %s: MPKI %.1f exceeds APKI %.1f", s.Name, s.MPKI, s.APKI)
	}
	if s.Activity <= 0 {
		return fmt.Errorf("workload %s: non-positive activity", s.Name)
	}
	if s.TotalInstr <= 0 {
		return fmt.Errorf("workload %s: non-positive instruction count", s.Name)
	}
	if len(s.Phases) > 0 {
		sum := 0.0
		for i, p := range s.Phases {
			if p.Fraction <= 0 || p.CPIMul <= 0 || p.MPKIMul < 0 {
				return fmt.Errorf("workload %s: invalid phase %d", s.Name, i)
			}
			sum += p.Fraction
		}
		if sum < 0.999 || sum > 1.001 {
			return fmt.Errorf("workload %s: phase fractions sum to %.3f, want 1", s.Name, sum)
		}
	}
	return nil
}

// App is a running instance of a Spec. It implements sim.Workload.
type App struct {
	spec     Spec
	executed float64
}

// NewApp instantiates spec, panicking on an invalid spec (specs are
// programmer-supplied constants, so an invalid one is a bug, not input).
func NewApp(spec Spec) *App {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if len(spec.Phases) == 0 {
		spec.Phases = []Phase{{Fraction: 1, CPIMul: 1, MPKIMul: 1}}
	}
	return &App{spec: spec}
}

// Name returns the application name.
func (a *App) Name() string { return a.spec.Name }

// Spec returns the application's static description.
func (a *App) Spec() Spec { return a.spec }

// phase returns the phase covering the current progress point.
func (a *App) phase() Phase {
	progress := a.executed / a.spec.TotalInstr
	acc := 0.0
	for _, p := range a.spec.Phases {
		acc += p.Fraction
		if progress < acc {
			return p
		}
	}
	return a.spec.Phases[len(a.spec.Phases)-1]
}

// Demand implements sim.Workload, applying the current phase's multipliers
// to the base characteristics.
func (a *App) Demand() sim.Demand {
	p := a.phase()
	mpki := a.spec.MPKI * p.MPKIMul
	if mpki > a.spec.APKI {
		mpki = a.spec.APKI
	}
	return sim.Demand{
		BaseCPI:      a.spec.BaseCPI * p.CPIMul,
		MPKI:         mpki,
		APKI:         a.spec.APKI,
		MemLatencyNs: a.spec.MemLatencyNs,
		Activity:     a.spec.Activity,
	}
}

// Advance implements sim.Workload.
func (a *App) Advance(instr float64) {
	if instr < 0 {
		panic(fmt.Sprintf("workload %s: Advance by negative %v", a.spec.Name, instr))
	}
	a.executed += instr
}

// Remaining implements sim.Workload.
func (a *App) Remaining() float64 { return a.spec.TotalInstr - a.executed }

// Progress returns the executed fraction in [0, 1].
func (a *App) Progress() float64 {
	p := a.executed / a.spec.TotalInstr
	if p > 1 {
		p = 1
	}
	return p
}

// Reset implements sim.Workload.
func (a *App) Reset() { a.executed = 0 }

var _ sim.Workload = (*App)(nil)

// RandomSpec draws a valid synthetic application spec uniformly from the
// physically plausible envelope: CPI 0.5–1.2, MPKI 0–30, APKI covering the
// misses, activity 0.7–1.3, one to four phases. Intended for fuzz-style
// property tests and load generation; every returned spec passes Validate.
func RandomSpec(rng *rand.Rand, name string) Spec {
	s := Spec{
		Name:         name,
		BaseCPI:      0.5 + rng.Float64()*0.7,
		MPKI:         rng.Float64() * 30,
		MemLatencyNs: 60 + rng.Float64()*40,
		Activity:     0.7 + rng.Float64()*0.6,
		TotalInstr:   (0.5 + rng.Float64()*3) * 1e10,
	}
	s.APKI = s.MPKI + 50 + rng.Float64()*250
	phases := 1 + rng.Intn(4)
	if phases > 1 {
		remaining := 1.0
		for i := 0; i < phases; i++ {
			frac := remaining / float64(phases-i)
			if i < phases-1 {
				frac *= 0.6 + rng.Float64()*0.8
				if frac > remaining-0.01*float64(phases-i-1) {
					frac = remaining - 0.01*float64(phases-i-1)
				}
			} else {
				frac = remaining
			}
			remaining -= frac
			s.Phases = append(s.Phases, Phase{
				Fraction: frac,
				CPIMul:   0.8 + rng.Float64()*0.4,
				MPKIMul:  0.5 + rng.Float64()*1.5,
			})
		}
	}
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("workload: RandomSpec generated an invalid spec: %v", err))
	}
	return s
}

// Stream feeds a device an endless sequence of applications drawn from a
// fixed set: the training environment of §IV, where each device repeatedly
// executes its assigned applications in shuffled order ("applications and
// their execution order are unknown at design time"). When every app in the
// set has run, the order is reshuffled.
type Stream struct {
	specs []Spec
	order []int
	pos   int
	rng   *rand.Rand
}

// NewStream creates a stream over specs using rng for shuffling. It panics
// on an empty spec set.
func NewStream(rng *rand.Rand, specs []Spec) *Stream {
	if len(specs) == 0 {
		panic("workload: NewStream with no specs")
	}
	s := &Stream{specs: append([]Spec(nil), specs...), rng: rng}
	s.order = rng.Perm(len(specs))
	return s
}

// Next returns a fresh App instance for the next application in the shuffled
// rotation.
func (s *Stream) Next() *App {
	if s.pos == len(s.order) {
		s.order = s.rng.Perm(len(s.specs))
		s.pos = 0
	}
	app := NewApp(s.specs[s.order[s.pos]])
	s.pos++
	return app
}
