package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"fedpower/internal/sim"
)

// Segment is one piece of a trace-driven application: a number of
// instructions executed under fixed micro-architectural characteristics.
type Segment struct {
	Instr  float64
	Demand sim.Demand
}

// TraceApp is an application defined by an explicit demand trace rather
// than a parametric phase model. It is the substitution path for real
// workload characterisations: profile a production application once
// (instructions, CPI, MPKI per program region), export the segments, and
// replay them against the simulator. TraceApp implements sim.Workload.
type TraceApp struct {
	name     string
	segments []Segment
	total    float64
	executed float64
}

// NewTraceApp builds a trace-driven application. At least one segment is
// required; every segment needs positive instructions and physically
// meaningful demand values.
func NewTraceApp(name string, segments []Segment) (*TraceApp, error) {
	if name == "" {
		return nil, fmt.Errorf("workload: trace app with empty name")
	}
	if len(segments) == 0 {
		return nil, fmt.Errorf("workload: trace app %s has no segments", name)
	}
	total := 0.0
	for i, s := range segments {
		if s.Instr <= 0 {
			return nil, fmt.Errorf("workload: trace app %s segment %d has non-positive instructions", name, i)
		}
		d := s.Demand
		if d.BaseCPI <= 0 || d.APKI <= 0 || d.MPKI < 0 || d.MPKI > d.APKI ||
			d.MemLatencyNs < 0 || d.Activity <= 0 {
			return nil, fmt.Errorf("workload: trace app %s segment %d has invalid demand %+v", name, i, d)
		}
		total += s.Instr
	}
	return &TraceApp{
		name:     name,
		segments: append([]Segment(nil), segments...),
		total:    total,
	}, nil
}

// Name implements sim.Workload.
func (a *TraceApp) Name() string { return a.name }

// Demand implements sim.Workload: the demand of the segment covering the
// current execution point (the last segment once the trace is exhausted).
func (a *TraceApp) Demand() sim.Demand {
	acc := 0.0
	for _, s := range a.segments {
		acc += s.Instr
		if a.executed < acc {
			return s.Demand
		}
	}
	return a.segments[len(a.segments)-1].Demand
}

// Advance implements sim.Workload.
func (a *TraceApp) Advance(instr float64) {
	if instr < 0 {
		panic(fmt.Sprintf("workload: trace app %s Advance by negative %v", a.name, instr))
	}
	a.executed += instr
}

// Remaining implements sim.Workload.
func (a *TraceApp) Remaining() float64 { return a.total - a.executed }

// Reset implements sim.Workload.
func (a *TraceApp) Reset() { a.executed = 0 }

// TotalInstr returns the trace's total instruction count.
func (a *TraceApp) TotalInstr() float64 { return a.total }

// Segments returns a copy of the trace segments.
func (a *TraceApp) Segments() []Segment { return append([]Segment(nil), a.segments...) }

var _ sim.Workload = (*TraceApp)(nil)

// traceCSVHeader is the column order expected by LoadTraceCSV.
var traceCSVHeader = []string{"instr", "base_cpi", "mpki", "apki", "mem_latency_ns", "activity"}

// LoadTraceCSV reads a demand trace in CSV form — one segment per row with
// the columns instr, base_cpi, mpki, apki, mem_latency_ns, activity — and
// returns a TraceApp. A header row matching those column names is required.
func LoadTraceCSV(name string, r io.Reader) (*TraceApp, error) {
	records, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: read trace csv: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("workload: trace csv needs a header and at least one segment")
	}
	if len(records[0]) != len(traceCSVHeader) {
		return nil, fmt.Errorf("workload: trace csv header has %d columns, want %d", len(records[0]), len(traceCSVHeader))
	}
	for i, want := range traceCSVHeader {
		if records[0][i] != want {
			return nil, fmt.Errorf("workload: trace csv column %d is %q, want %q", i, records[0][i], want)
		}
	}
	segments := make([]Segment, 0, len(records)-1)
	for ri, rec := range records[1:] {
		vals := make([]float64, len(traceCSVHeader))
		for ci, cell := range rec {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: trace csv row %d column %s: %w", ri+1, traceCSVHeader[ci], err)
			}
			vals[ci] = v
		}
		segments = append(segments, Segment{
			Instr: vals[0],
			Demand: sim.Demand{
				BaseCPI:      vals[1],
				MPKI:         vals[2],
				APKI:         vals[3],
				MemLatencyNs: vals[4],
				Activity:     vals[5],
			},
		})
	}
	return NewTraceApp(name, segments)
}

// WriteTraceCSV serialises a TraceApp's segments in the LoadTraceCSV
// format, enabling round-tripping of captured characterisations.
func WriteTraceCSV(w io.Writer, app *TraceApp) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceCSVHeader); err != nil {
		return fmt.Errorf("workload: write trace header: %w", err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
	for _, s := range app.segments {
		row := []string{
			f(s.Instr), f(s.Demand.BaseCPI), f(s.Demand.MPKI),
			f(s.Demand.APKI), f(s.Demand.MemLatencyNs), f(s.Demand.Activity),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("workload: write trace row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
