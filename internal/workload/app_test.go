package workload

import (
	"math"
	"math/rand"
	"testing"

	"fedpower/internal/sim"
)

func validSpec() Spec {
	return Spec{
		Name: "test", BaseCPI: 0.7, MPKI: 5, APKI: 150,
		MemLatencyNs: 80, Activity: 1.0, TotalInstr: 1e9,
	}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	mutations := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.BaseCPI = 0 },
		func(s *Spec) { s.APKI = 0 },
		func(s *Spec) { s.MPKI = -1 },
		func(s *Spec) { s.MPKI = s.APKI + 1 },
		func(s *Spec) { s.MemLatencyNs = -1 },
		func(s *Spec) { s.Activity = 0 },
		func(s *Spec) { s.TotalInstr = 0 },
		func(s *Spec) { s.Phases = []Phase{{Fraction: 0.5, CPIMul: 1, MPKIMul: 1}} }, // sums to 0.5
		func(s *Spec) { s.Phases = []Phase{{Fraction: 1, CPIMul: 0, MPKIMul: 1}} },
		func(s *Spec) { s.Phases = []Phase{{Fraction: 1, CPIMul: 1, MPKIMul: -1}} },
	}
	for i, mutate := range mutations {
		s := validSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d validated although invalid", i)
		}
	}
}

func TestNewAppPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewApp with invalid spec did not panic")
		}
	}()
	s := validSpec()
	s.TotalInstr = -1
	NewApp(s)
}

func TestAppLifecycle(t *testing.T) {
	app := NewApp(validSpec())
	if app.Name() != "test" {
		t.Errorf("Name = %q", app.Name())
	}
	if app.Remaining() != 1e9 {
		t.Errorf("Remaining = %v, want 1e9", app.Remaining())
	}
	if app.Progress() != 0 {
		t.Errorf("initial Progress = %v", app.Progress())
	}
	app.Advance(4e8)
	if math.Abs(app.Progress()-0.4) > 1e-12 {
		t.Errorf("Progress = %v, want 0.4", app.Progress())
	}
	app.Advance(7e8) // past the end
	if app.Remaining() > 0 {
		t.Errorf("Remaining = %v after overrun", app.Remaining())
	}
	if app.Progress() != 1 {
		t.Errorf("Progress clamps at 1, got %v", app.Progress())
	}
	app.Reset()
	if app.Remaining() != 1e9 || app.Progress() != 0 {
		t.Error("Reset did not rewind")
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	app := NewApp(validSpec())
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	app.Advance(-1)
}

func TestUniformPhaseWhenUnspecified(t *testing.T) {
	app := NewApp(validSpec())
	d := app.Demand()
	if d.BaseCPI != 0.7 || d.MPKI != 5 {
		t.Fatalf("uniform-phase demand %+v", d)
	}
}

func TestPhaseTransitions(t *testing.T) {
	s := validSpec()
	s.Phases = []Phase{
		{Fraction: 0.5, CPIMul: 1.0, MPKIMul: 1.0},
		{Fraction: 0.5, CPIMul: 2.0, MPKIMul: 3.0},
	}
	app := NewApp(s)
	d := app.Demand()
	if d.BaseCPI != 0.7 || d.MPKI != 5 {
		t.Fatalf("phase 1 demand %+v", d)
	}
	app.Advance(0.6e9) // into phase 2
	d = app.Demand()
	if math.Abs(d.BaseCPI-1.4) > 1e-12 || math.Abs(d.MPKI-15) > 1e-12 {
		t.Fatalf("phase 2 demand %+v, want CPI 1.4 MPKI 15", d)
	}
	// Static characteristics are phase-independent.
	if d.APKI != 150 || d.MemLatencyNs != 80 || d.Activity != 1.0 {
		t.Fatalf("phase-independent fields changed: %+v", d)
	}
}

func TestDemandMPKIClampedToAPKI(t *testing.T) {
	s := validSpec()
	s.MPKI = 100
	s.Phases = []Phase{{Fraction: 1, CPIMul: 1, MPKIMul: 2}} // 200 > APKI 150
	app := NewApp(s)
	if d := app.Demand(); d.MPKI > d.APKI {
		t.Fatalf("MPKI %v exceeds APKI %v", d.MPKI, d.APKI)
	}
}

func TestDemandBeyondEndUsesLastPhase(t *testing.T) {
	s := validSpec()
	s.Phases = []Phase{
		{Fraction: 0.5, CPIMul: 1, MPKIMul: 1},
		{Fraction: 0.5, CPIMul: 2, MPKIMul: 1},
	}
	app := NewApp(s)
	app.Advance(2e9) // far past the end
	if d := app.Demand(); d.BaseCPI != 1.4 {
		t.Fatalf("post-completion demand %+v, want last phase", d)
	}
}

func TestAppImplementsSimWorkload(t *testing.T) {
	var _ sim.Workload = NewApp(validSpec())
}

func TestStreamRotationCoversAll(t *testing.T) {
	specs := SPLASH2()
	s := NewStream(rand.New(rand.NewSource(1)), specs)
	seen := map[string]int{}
	for i := 0; i < len(specs)*3; i++ {
		seen[s.Next().Name()]++
	}
	for _, spec := range specs {
		if seen[spec.Name] != 3 {
			t.Errorf("app %s appeared %d times in 3 rotations, want 3", spec.Name, seen[spec.Name])
		}
	}
}

func TestStreamReturnsFreshInstances(t *testing.T) {
	s := NewStream(rand.New(rand.NewSource(1)), []Spec{validSpec()})
	a := s.Next()
	a.Advance(5e8)
	b := s.Next()
	if b.Remaining() != 1e9 {
		t.Fatal("Stream returned a partially executed instance")
	}
	if a == b {
		t.Fatal("Stream reused the same App pointer")
	}
}

func TestStreamShufflesBetweenRotations(t *testing.T) {
	specs := SPLASH2()
	s := NewStream(rand.New(rand.NewSource(3)), specs)
	order := func() []string {
		names := make([]string, len(specs))
		for i := range names {
			names[i] = s.Next().Name()
		}
		return names
	}
	first, second := order(), order()
	same := true
	for i := range first {
		if first[i] != second[i] {
			same = false
			break
		}
	}
	// With 12! permutations, two identical consecutive shuffles indicate a
	// broken reshuffle (probability ~2e-9 under correct behaviour).
	if same {
		t.Fatal("consecutive rotations identical — reshuffle missing")
	}
}

func TestNewStreamEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStream with no specs did not panic")
		}
	}()
	NewStream(rand.New(rand.NewSource(1)), nil)
}
