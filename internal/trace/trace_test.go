package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleEntries() []Entry {
	return []Entry{
		{Step: 1, TimeS: 0.5, App: "fft", Level: 8, FreqMHz: 921.6, PowerW: 0.55, IPC: 1.31, MissRate: 0.05, MPKI: 8, Reward: 0.623},
		{Step: 2, TimeS: 1.0, App: "fft", Level: 9, FreqMHz: 1036.8, PowerW: 0.64, IPC: 1.29, MissRate: 0.05, MPKI: 8, Reward: 0.14},
		{Step: 3, TimeS: 1.5, App: "ocean", Level: 14, FreqMHz: 1479, PowerW: 0.49, IPC: 0.27, MissRate: 0.086, MPKI: 24.2, Reward: 1},
	}
}

func entriesEqual(a, b Entry) bool {
	close := func(x, y float64) bool { return math.Abs(x-y) < 1e-9 }
	return a.Step == b.Step && a.App == b.App && a.Level == b.Level &&
		close(a.TimeS, b.TimeS) && close(a.FreqMHz, b.FreqMHz) &&
		close(a.PowerW, b.PowerW) && close(a.IPC, b.IPC) &&
		close(a.MissRate, b.MissRate) && close(a.MPKI, b.MPKI) && close(a.Reward, b.Reward)
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewCSVRecorder(&buf)
	for _, e := range sampleEntries() {
		if err := r.Record(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleEntries()
	if len(got) != len(want) {
		t.Fatalf("%d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if !entriesEqual(got[i], want[i]) {
			t.Errorf("entry %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestCSVHeaderOnce(t *testing.T) {
	var buf bytes.Buffer
	r := NewCSVRecorder(&buf)
	for _, e := range sampleEntries() {
		if err := r.Record(e); err != nil {
			t.Fatal(err)
		}
	}
	r.Flush()
	if n := strings.Count(buf.String(), "step,time_s"); n != 1 {
		t.Fatalf("header appears %d times", n)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewJSONLRecorder(&buf)
	for _, e := range sampleEntries() {
		if err := r.Record(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimRight(buf.String(), "\n"), "\n") + 1; lines != 3 {
		t.Fatalf("%d JSONL lines, want 3", lines)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleEntries()
	for i := range want {
		if !entriesEqual(got[i], want[i]) {
			t.Errorf("entry %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestReadCSVEmpty(t *testing.T) {
	got, err := ReadCSV(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty read: %v, %v", got, err)
	}
}

func TestReadCSVRejectsForeignHeader(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Fatal("foreign header accepted")
	}
}

func TestReadCSVRejectsBadField(t *testing.T) {
	var buf bytes.Buffer
	r := NewCSVRecorder(&buf)
	r.Record(sampleEntries()[0])
	r.Flush()
	corrupted := strings.Replace(buf.String(), "921.6", "not-a-number", 1)
	if _, err := ReadCSV(strings.NewReader(corrupted)); err == nil {
		t.Fatal("corrupt numeric field accepted")
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"step\":1}\nnot-json\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
}
