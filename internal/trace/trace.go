// Package trace records per-control-interval execution traces — the data a
// real deployment would log for offline analysis: time, V/f level, power,
// counters, chosen action, reward. Two sink formats are provided, CSV (for
// spreadsheets/plotting) and JSON Lines (for programmatic pipelines), plus
// a reader for round-tripping recorded traces.
//
// Traces are exactly the artefact the paper's threat model protects: a
// power/counter time series fine-grained enough for activity inference and
// power-analysis side channels. Keeping this machinery explicit makes the
// privacy experiment's "raw trace bytes" concrete — one Entry is what the
// central architecture ships per control interval.
package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Entry is one control interval's record.
type Entry struct {
	Step     int     `json:"step"`
	TimeS    float64 `json:"time_s"`
	App      string  `json:"app"`
	Level    int     `json:"level"`
	FreqMHz  float64 `json:"freq_mhz"`
	PowerW   float64 `json:"power_w"`
	IPC      float64 `json:"ipc"`
	MissRate float64 `json:"miss_rate"`
	MPKI     float64 `json:"mpki"`
	Reward   float64 `json:"reward"`
}

// Recorder receives entries; implementations differ in sink format.
type Recorder interface {
	Record(e Entry) error
	// Flush forces buffered output to the underlying writer.
	Flush() error
}

// csvHeader is the column order of the CSV format.
var csvHeader = []string{
	"step", "time_s", "app", "level", "freq_mhz",
	"power_w", "ipc", "miss_rate", "mpki", "reward",
}

// CSVRecorder writes entries as CSV rows with a header.
type CSVRecorder struct {
	w          *csv.Writer
	wroteFirst bool
}

// NewCSVRecorder returns a recorder writing CSV to w; the header row is
// emitted with the first entry.
func NewCSVRecorder(w io.Writer) *CSVRecorder {
	return &CSVRecorder{w: csv.NewWriter(w)}
}

// Record implements Recorder.
func (r *CSVRecorder) Record(e Entry) error {
	if !r.wroteFirst {
		if err := r.w.Write(csvHeader); err != nil {
			return fmt.Errorf("trace: write header: %w", err)
		}
		r.wroteFirst = true
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
	row := []string{
		strconv.Itoa(e.Step), f(e.TimeS), e.App, strconv.Itoa(e.Level), f(e.FreqMHz),
		f(e.PowerW), f(e.IPC), f(e.MissRate), f(e.MPKI), f(e.Reward),
	}
	if err := r.w.Write(row); err != nil {
		return fmt.Errorf("trace: write row: %w", err)
	}
	return nil
}

// Flush implements Recorder.
func (r *CSVRecorder) Flush() error {
	r.w.Flush()
	return r.w.Error()
}

// JSONLRecorder writes entries as one JSON object per line.
type JSONLRecorder struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewJSONLRecorder returns a recorder writing JSON Lines to w.
func NewJSONLRecorder(w io.Writer) *JSONLRecorder {
	bw := bufio.NewWriter(w)
	return &JSONLRecorder{w: bw, enc: json.NewEncoder(bw)}
}

// Record implements Recorder.
func (r *JSONLRecorder) Record(e Entry) error {
	if err := r.enc.Encode(e); err != nil {
		return fmt.Errorf("trace: encode entry: %w", err)
	}
	return nil
}

// Flush implements Recorder.
func (r *JSONLRecorder) Flush() error { return r.w.Flush() }

// ReadCSV parses a trace produced by CSVRecorder.
func ReadCSV(rd io.Reader) ([]Entry, error) {
	records, err := csv.NewReader(rd).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, nil
	}
	if len(records[0]) != len(csvHeader) || records[0][0] != "step" {
		return nil, fmt.Errorf("trace: unexpected header %v", records[0])
	}
	out := make([]Entry, 0, len(records)-1)
	for i, rec := range records[1:] {
		e, err := parseCSVEntry(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", i+1, err)
		}
		out = append(out, e)
	}
	return out, nil
}

func parseCSVEntry(rec []string) (Entry, error) {
	if len(rec) != len(csvHeader) {
		return Entry{}, fmt.Errorf("has %d fields, want %d", len(rec), len(csvHeader))
	}
	var e Entry
	var err error
	geti := func(s string) int {
		if err != nil {
			return 0
		}
		var v int
		v, err = strconv.Atoi(s)
		return v
	}
	getf := func(s string) float64 {
		if err != nil {
			return 0
		}
		var v float64
		v, err = strconv.ParseFloat(s, 64)
		return v
	}
	e.Step = geti(rec[0])
	e.TimeS = getf(rec[1])
	e.App = rec[2]
	e.Level = geti(rec[3])
	e.FreqMHz = getf(rec[4])
	e.PowerW = getf(rec[5])
	e.IPC = getf(rec[6])
	e.MissRate = getf(rec[7])
	e.MPKI = getf(rec[8])
	e.Reward = getf(rec[9])
	return e, err
}

// ReadJSONL parses a trace produced by JSONLRecorder.
func ReadJSONL(rd io.Reader) ([]Entry, error) {
	dec := json.NewDecoder(rd)
	var out []Entry
	for {
		var e Entry
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode jsonl entry %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}
