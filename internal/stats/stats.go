// Package stats provides the small set of descriptive statistics used by the
// experiment harness: means, standard deviations, extrema, running
// aggregates, exponential smoothing, and percentage deltas. Everything
// operates on float64 slices and is allocation-conscious so that it can be
// called inside tight simulation loops.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs, or 0 when fewer than
// two samples are present.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the minimum of xs. It panics on an empty slice because a
// minimum of nothing indicates a harness bug, not a recoverable condition.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Median returns the median of xs without modifying it, or 0 for an empty
// slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice or an
// out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", p))
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if len(cp) == 1 {
		return cp[0]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// PercentDelta returns the relative change from base to value in percent.
// Positive means value exceeds base. It returns 0 when base is 0 to keep
// report tables well-defined.
func PercentDelta(value, base float64) float64 {
	if base == 0 { //fedlint:ignore floateq exact zero guards the division below
		return 0
	}
	return (value - base) / base * 100
}

// DefaultTol is the combined absolute/relative tolerance of ApproxEqual:
// loose enough to absorb the float32 round trip of the federated wire
// format (~1e-7 relative) plus accumulation error, tight enough to reject
// any genuinely different reward or frequency reading.
const DefaultTol = 1e-6

// ApproxEqual reports whether a and b agree within DefaultTol. It is the
// sanctioned replacement for == between floats (enforced by the floateq
// analyzer): exact float equality is representation-dependent and breaks
// across compilers, FMA contraction and the wire format's float32 round
// trip.
func ApproxEqual(a, b float64) bool { return ApproxEqualTol(a, b, DefaultTol) }

// ApproxEqualTol reports whether |a-b| <= tol·max(1, |a|, |b|): absolute
// tolerance near zero, relative tolerance for large magnitudes. NaN equals
// nothing; infinities are equal only to themselves.
func ApproxEqualTol(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //fedlint:ignore floateq exact hit short-circuit also handles equal infinities
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // an infinity only matched the exact check above
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// Smooth returns an exponentially smoothed copy of xs with smoothing factor
// alpha in (0, 1]; alpha of 1 returns a copy of the input. It is used to
// render readable reward curves out of noisy per-round rewards.
func Smooth(xs []float64, alpha float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: smoothing factor %v out of range (0,1]", alpha))
	}
	out[0] = xs[0]
	for i := 1; i < len(xs); i++ {
		out[i] = alpha*xs[i] + (1-alpha)*out[i-1]
	}
	return out
}

// Running accumulates observations and reports their mean, standard
// deviation, and extrema without retaining the samples. The zero value is
// ready to use.
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds x into the running aggregate using Welford's algorithm.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations folded in so far.
func (r *Running) N() int { return r.n }

// Mean returns the running mean, or 0 before any observation.
func (r *Running) Mean() float64 { return r.mean }

// Std returns the running population standard deviation, or 0 with fewer
// than two observations.
func (r *Running) Std() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n))
}

// Min returns the smallest observation, or 0 before any observation.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation, or 0 before any observation.
func (r *Running) Max() float64 { return r.max }

// Merge folds the aggregate of other into r, as if every observation added
// to other had been added to r. Merging an empty aggregate is a no-op.
func (r *Running) Merge(other *Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *other
		return
	}
	n := r.n + other.n
	delta := other.mean - r.mean
	mean := r.mean + delta*float64(other.n)/float64(n)
	m2 := r.m2 + other.m2 + delta*delta*float64(r.n)*float64(other.n)/float64(n)
	if other.min < r.min {
		r.min = other.min
	}
	if other.max > r.max {
		r.max = other.max
	}
	r.n, r.mean, r.m2 = n, mean, m2
}

// String renders the aggregate as "mean ± std [min, max] (n=N)".
func (r *Running) String() string {
	return fmt.Sprintf("%.4f ± %.4f [%.4f, %.4f] (n=%d)", r.Mean(), r.Std(), r.Min(), r.Max(), r.N())
}
