package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{4}, 4},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almost(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestStd(t *testing.T) {
	if got := Std([]float64{5}); got != 0 {
		t.Errorf("Std of single value = %v, want 0", got)
	}
	// Population std of {2, 4, 4, 4, 5, 5, 7, 9} is exactly 2.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Std(xs); !almost(got, 2, 1e-12) {
		t.Errorf("Std(%v) = %v, want 2", xs, got)
	}
	if got := Std([]float64{3, 3, 3}); !almost(got, 0, 1e-12) {
		t.Errorf("Std of constant = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
}

func TestMinEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min of empty slice did not panic")
		}
	}()
	Min(nil)
}

func TestMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Max of empty slice did not panic")
		}
	}()
	Max(nil)
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); !almost(got, 3, 1e-12) {
		t.Errorf("Sum = %v, want 3", got)
	}
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v, want 0", got)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{3, 1}, 2},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.xs); !almost(got, c.want, 1e-12) {
			t.Errorf("Median(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated its input: %v", xs)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("Percentile single = %v, want 7", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPercentDelta(t *testing.T) {
	if got := PercentDelta(120, 100); !almost(got, 20, 1e-12) {
		t.Errorf("PercentDelta(120,100) = %v, want 20", got)
	}
	if got := PercentDelta(80, 100); !almost(got, -20, 1e-12) {
		t.Errorf("PercentDelta(80,100) = %v, want -20", got)
	}
	if got := PercentDelta(5, 0); got != 0 {
		t.Errorf("PercentDelta with zero base = %v, want 0", got)
	}
}

func TestSmooth(t *testing.T) {
	xs := []float64{1, 1, 1}
	out := Smooth(xs, 0.5)
	for i, v := range out {
		if !almost(v, 1, 1e-12) {
			t.Errorf("Smooth constant series: out[%d] = %v, want 1", i, v)
		}
	}
	// alpha = 1 returns the input.
	xs = []float64{1, 5, 2}
	out = Smooth(xs, 1)
	for i := range xs {
		if out[i] != xs[i] {
			t.Errorf("Smooth alpha=1: out[%d] = %v, want %v", i, out[i], xs[i])
		}
	}
	// Smoothed values lie within the seen range.
	out = Smooth([]float64{0, 10, 0, 10}, 0.3)
	for i, v := range out {
		if v < 0 || v > 10 {
			t.Errorf("Smooth out of range at %d: %v", i, v)
		}
	}
	if got := Smooth(nil, 0.5); len(got) != 0 {
		t.Errorf("Smooth(nil) length %d, want 0", len(got))
	}
}

func TestSmoothInvalidAlphaPanics(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Smooth with alpha %v did not panic", alpha)
				}
			}()
			Smooth([]float64{1}, alpha)
		}()
	}
}

func TestRunningMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	var r Running
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 1
		r.Add(xs[i])
	}
	if r.N() != len(xs) {
		t.Fatalf("N = %d, want %d", r.N(), len(xs))
	}
	if !almost(r.Mean(), Mean(xs), 1e-9) {
		t.Errorf("running mean %v != direct %v", r.Mean(), Mean(xs))
	}
	if !almost(r.Std(), Std(xs), 1e-9) {
		t.Errorf("running std %v != direct %v", r.Std(), Std(xs))
	}
	if r.Min() != Min(xs) || r.Max() != Max(xs) {
		t.Errorf("running extrema (%v, %v) != direct (%v, %v)", r.Min(), r.Max(), Min(xs), Max(xs))
	}
}

func TestRunningZeroValue(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Std() != 0 || r.N() != 0 {
		t.Errorf("zero Running not zeroed: %v", r.String())
	}
	r.Add(2)
	if r.Std() != 0 {
		t.Errorf("Std with one sample = %v, want 0", r.Std())
	}
	if r.Min() != 2 || r.Max() != 2 {
		t.Errorf("extrema after one sample: [%v, %v], want [2, 2]", r.Min(), r.Max())
	}
}

func TestRunningMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var all, a, b Running
	var xs []float64
	for i := 0; i < 200; i++ {
		x := rng.Float64()*10 - 5
		xs = append(xs, x)
		all.Add(x)
		if i < 70 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if !almost(a.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged mean %v != %v", a.Mean(), all.Mean())
	}
	if !almost(a.Std(), all.Std(), 1e-9) {
		t.Errorf("merged std %v != %v", a.Std(), all.Std())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merged extrema mismatch")
	}
	_ = xs
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Add(3)
	before := a.String()
	a.Merge(&b) // empty other: no-op
	if a.String() != before {
		t.Errorf("merge with empty changed aggregate: %s -> %s", before, a.String())
	}
	b.Merge(&a) // empty receiver adopts other
	if b.N() != 2 || !almost(b.Mean(), 2, 1e-12) {
		t.Errorf("empty receiver merge: %s", b.String())
	}
}

// Property: for any data, Running matches the direct computation.
func TestRunningProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			clean = append(clean, x)
		}
		if len(clean) < 2 {
			return true
		}
		var r Running
		for _, x := range clean {
			r.Add(x)
		}
		scale := math.Max(1, math.Abs(Mean(clean)))
		return almost(r.Mean(), Mean(clean), 1e-6*scale) && r.Min() == Min(clean) && r.Max() == Max(clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max].
func TestMeanBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			clean = append(clean, x)
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return m >= Min(clean)-1e-9 && m <= Max(clean)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-9, true},                      // well inside DefaultTol
		{1, 1 + 1e-3, false},                     // clearly different
		{0, 1e-9, true},                          // absolute tolerance near zero
		{0, 1e-3, false},
		{1e12, 1e12 * (1 + 1e-9), true},          // relative tolerance at scale
		{1e12, 1e12 * (1 + 1e-3), false},
		{float64(float32(0.1)), 0.1, true},       // wire-format float32 round trip
		{math.Inf(1), math.Inf(1), true},         // equal infinities
		{math.Inf(1), math.Inf(-1), false},
		{math.Inf(1), 1e300, false},
		{math.NaN(), math.NaN(), false},          // NaN equals nothing
		{math.NaN(), 0, false},
		{-2.5, -2.5, true},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b); got != c.want {
			t.Errorf("ApproxEqual(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		// Symmetry must hold for every pair.
		if ApproxEqual(c.a, c.b) != ApproxEqual(c.b, c.a) {
			t.Errorf("ApproxEqual(%v, %v) is asymmetric", c.a, c.b)
		}
	}
}

func TestApproxEqualTol(t *testing.T) {
	if !ApproxEqualTol(100, 101, 0.02) {
		t.Error("1% difference must pass a 2% tolerance")
	}
	if ApproxEqualTol(100, 103, 0.02) {
		t.Error("3% difference must fail a 2% tolerance")
	}
	// Property: exact equality always passes, any tolerance.
	f := func(x, tol float64) bool {
		if math.IsNaN(x) {
			return true
		}
		return ApproxEqualTol(x, x, math.Abs(tol))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
