package fed

import (
	"errors"
	"fmt"
	"os"
)

// Phase names the protocol step an error occurred in, so operators and test
// assertions can tell a deadline from a protocol violation without parsing
// message strings.
type Phase string

const (
	// PhaseJoin is the client's post-dial identification frame.
	PhaseJoin Phase = "join"
	// PhaseBroadcast is the server writing the round's global model.
	PhaseBroadcast Phase = "broadcast"
	// PhaseReceive is the client waiting for the round's global model.
	PhaseReceive Phase = "receive"
	// PhaseTrain is the local optimisation between receive and send.
	PhaseTrain Phase = "train"
	// PhaseSend is the client writing its locally optimised model.
	PhaseSend Phase = "send"
	// PhaseCollect is the server reading a client's round update.
	PhaseCollect Phase = "collect"
)

// RoundError wraps a failure with its federated round number and protocol
// phase. Round 0 on the client side means the connection died before the
// first broadcast arrived. Client is the server-side client index, or -1
// when the error arose on the device side.
type RoundError struct {
	Round  int
	Phase  Phase
	Client int
	Err    error
}

// Error renders "fed: round R <phase> [client N]: cause".
func (e *RoundError) Error() string {
	if e.Client >= 0 {
		return fmt.Sprintf("fed: round %d %s client %d: %v", e.Round, e.Phase, e.Client, e.Err)
	}
	return fmt.Sprintf("fed: round %d %s: %v", e.Round, e.Phase, e.Err)
}

// Unwrap exposes the cause to errors.Is/As chains.
func (e *RoundError) Unwrap() error { return e.Err }

// Timeout reports whether the cause was a deadline expiry — the straggler
// signature — as opposed to a closed connection or protocol violation.
func (e *RoundError) Timeout() bool { return isTimeout(e.Err) }

// roundError builds a device-side RoundError (no client index).
func roundError(round int, phase Phase, err error) *RoundError {
	return &RoundError{Round: round, Phase: phase, Client: -1, Err: err}
}

// isTimeout reports whether err is a deadline expiry anywhere in its chain.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne interface{ Timeout() bool }
	return errors.As(err, &ne) && ne.Timeout()
}
