package fed

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"fedpower/internal/nn"
)

// subsetClient fails exactly in the rounds its schedule marks, and returns
// its fixed parameter vector otherwise.
type subsetClient struct {
	params []float64
	fail   map[int]bool
}

func (c subsetClient) TrainRound(round int, global []float64) ([]float64, error) {
	if c.fail[round] {
		return nil, fmt.Errorf("injected failure in round %d", round)
	}
	return c.params, nil
}

// TestQuorumSubsetMeanProperty is the aggregation property: for EVERY
// subset of surviving clients, the committed global model is bit-identical
// to the unweighted mean of exactly those clients' parameters — computed
// independently with nn.AverageParams over the expected survivor set.
func TestQuorumSubsetMeanProperty(t *testing.T) {
	// Parameter vectors chosen non-dyadic so an aggregation that sneaks in
	// an extra participant or reorders the survivor sum would show up at
	// the bit level.
	base := [][]float64{
		{0.1, -7.3, math.Pi},
		{2.7, 11.9, -0.004},
		{-3.3, 0.123456789, 8.25},
		{19.17, -2.5, 1e-9},
	}
	n := len(base)
	for mask := 0; mask < 1<<n; mask++ {
		survivors := make([]int, 0, n)
		clients := make([]Client, n)
		for i := 0; i < n; i++ {
			failed := mask&(1<<i) != 0
			clients[i] = subsetClient{params: base[i], fail: map[int]bool{1: failed}}
			if !failed {
				survivors = append(survivors, i)
			}
		}
		global := []float64{1, 2, 3}
		err := RunWithConfig(global, clients, RunConfig{
			Rounds:        1,
			Quorum:        1,
			OnClientError: DropRound,
		})
		if len(survivors) == 0 {
			if err == nil {
				t.Fatalf("mask %04b: empty round committed", mask)
			}
			continue
		}
		if err != nil {
			t.Fatalf("mask %04b: %v", mask, err)
		}
		expected := make([]float64, 3)
		srcs := make([][]float64, 0, len(survivors))
		for _, i := range survivors {
			srcs = append(srcs, base[i])
		}
		nn.AverageParams(expected, srcs...)
		for k := range expected {
			if global[k] != expected[k] {
				t.Fatalf("mask %04b: global[%d] = %v, want survivor mean %v (survivors %v)",
					mask, k, global[k], expected[k], survivors)
			}
		}
	}
}

// TestQuorumStaleParamsNeverLeak: a client that fails in round r contributes
// nothing to round r — not even the parameters it returned in r-1 — and its
// poison values are bit-absent from every later round it sits out.
func TestQuorumStaleParamsNeverLeak(t *testing.T) {
	const poison = 1e12
	// The poisoned client delivers an enormous vector in round 1, then
	// fails for the rest of the run.
	poisoned := ClientFunc(func(round int, global []float64) ([]float64, error) {
		if round > 1 {
			return nil, errors.New("device offline")
		}
		return []float64{poison, poison}, nil
	})
	steady := constClient{[]float64{4, 8}}

	var perRound [][]float64
	global := []float64{0, 0}
	err := RunWithConfig(global, []Client{poisoned, steady}, RunConfig{
		Rounds:        3,
		Quorum:        1,
		OnClientError: DropRound,
		Hook: func(round int, g []float64) {
			perRound = append(perRound, append([]float64(nil), g...))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: both participate → (poison+4)/2. Rounds 2, 3: only the
	// steady client → exactly {4, 8}, the poison gone without a trace.
	want1 := (poison + 4) / 2
	if perRound[0][0] != want1 {
		t.Errorf("round 1 global = %v, want %v", perRound[0][0], want1)
	}
	for r := 1; r < 3; r++ {
		if perRound[r][0] != 4 || perRound[r][1] != 8 {
			t.Errorf("round %d global = %v, want exactly [4 8] (stale poison leaked)", r+1, perRound[r])
		}
	}
}

// TestQuorumDroppedClientRejoins: a client that fails one round receives
// the next round's broadcast again and rejoins the aggregate.
func TestQuorumDroppedClientRejoins(t *testing.T) {
	var rounds []int
	flaky := ClientFunc(func(round int, global []float64) ([]float64, error) {
		rounds = append(rounds, round)
		if round == 2 {
			return nil, errors.New("transient")
		}
		out := make([]float64, len(global))
		for i, g := range global {
			out[i] = g + 4
		}
		return out, nil
	})
	global := []float64{0}
	err := RunWithConfig(global, []Client{flaky, addClient{2}}, RunConfig{
		Rounds: 3, Quorum: 1, OnClientError: DropRound,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: +3 (both). Round 2: +2 (steady only). Round 3: +3 (both).
	if global[0] != 8 {
		t.Fatalf("global = %v, want 8", global[0])
	}
	if len(rounds) != 3 {
		t.Fatalf("flaky client offered %d broadcasts %v, want all 3 rounds", len(rounds), rounds)
	}
}

func TestRunWithConfigFailFastMatchesRun(t *testing.T) {
	sentinel := errors.New("device offline")
	mk := func() []Client {
		return []Client{addClient{2}, ClientFunc(func(round int, global []float64) ([]float64, error) {
			if round == 2 {
				return nil, sentinel
			}
			return global, nil
		})}
	}
	errRun := Run([]float64{0}, mk(), 5, nil)
	errCfg := RunWithConfig([]float64{0}, mk(), RunConfig{Rounds: 5})
	if !errors.Is(errRun, sentinel) || !errors.Is(errCfg, sentinel) {
		t.Fatalf("errors do not wrap the client failure: Run=%v, RunWithConfig=%v", errRun, errCfg)
	}
	var re *RoundError
	if !errors.As(errCfg, &re) || re.Round != 2 || re.Phase != PhaseTrain || re.Client != 1 {
		t.Fatalf("RunWithConfig error lacks round/phase/client context: %v", errCfg)
	}
}

func TestRunWithConfigCleanMatchesRunBitIdentically(t *testing.T) {
	mk := func() []Client {
		return []Client{constClient{[]float64{0.1, 0.7}}, constClient{[]float64{0.2, -0.3}}, addClient{0.05}}
	}
	a := []float64{0.5, 0.25}
	if err := Run(a, mk(), 4, nil); err != nil {
		t.Fatal(err)
	}
	b := []float64{0.5, 0.25}
	if err := RunWithConfig(b, mk(), RunConfig{Rounds: 4, OnClientError: DropRound, Quorum: 3}); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clean RunWithConfig differs from Run at %d: %v vs %v", i, b[i], a[i])
		}
	}
}

func TestRunWithConfigQuorumAbort(t *testing.T) {
	dead := ClientFunc(func(round int, global []float64) ([]float64, error) {
		return nil, errors.New("offline")
	})
	err := RunWithConfig([]float64{0}, []Client{dead, addClient{1}, addClient{2}}, RunConfig{
		Rounds: 3, Quorum: 3, OnClientError: DropRound,
	})
	var re *RoundError
	if !errors.As(err, &re) {
		t.Fatalf("quorum abort error = %v, want *RoundError", err)
	}
	if re.Round != 1 || re.Phase != PhaseCollect {
		t.Fatalf("abort context = round %d phase %s, want round 1 collect", re.Round, re.Phase)
	}
	if re.Timeout() {
		t.Error("client error misclassified as timeout")
	}
}

func TestRunWithConfigValidation(t *testing.T) {
	c := []Client{addClient{1}}
	if err := RunWithConfig([]float64{0}, nil, RunConfig{Rounds: 1}); err == nil {
		t.Error("no clients accepted")
	}
	if err := RunWithConfig([]float64{0}, c, RunConfig{Rounds: 0}); err == nil {
		t.Error("zero rounds accepted")
	}
	if err := RunWithConfig([]float64{0}, c, RunConfig{Rounds: 1, Quorum: 2}); err == nil {
		t.Error("quorum above client count accepted")
	}
	if err := RunWithConfig([]float64{0}, c, RunConfig{Rounds: 1, Quorum: -1}); err == nil {
		t.Error("negative quorum accepted")
	}
}

// TestQuorumShapeMismatchDropped: under DropRound a wrong-shape return is a
// per-round failure, not a protocol abort.
func TestQuorumShapeMismatchDropped(t *testing.T) {
	bad := ClientFunc(func(round int, global []float64) ([]float64, error) {
		return []float64{1, 2, 3}, nil
	})
	global := []float64{0}
	err := RunWithConfig(global, []Client{bad, addClient{2}}, RunConfig{
		Rounds: 2, Quorum: 1, OnClientError: DropRound,
	})
	if err != nil {
		t.Fatal(err)
	}
	if global[0] != 4 {
		t.Fatalf("global = %v, want 4 (+2 per round from the well-shaped client)", global[0])
	}
}
