package fed

import (
	"encoding/binary"
	"fmt"
	"math"

	"fedpower/internal/nn"
)

// Parameter codecs: how a model vector is represented on the federated
// wire. The paper ships the full dense float32 vector every round (2.8 kB
// for 687 parameters, §IV-C); at fleet scale the wire is the dominant
// per-round cost, so the transport supports three negotiated encodings:
//
//	dense   — float32 little-endian, 4 B/param. The default, byte-identical
//	          to the original protocol and to the paper's accounting.
//	delta   — the difference between the current model and a float32 shadow
//	          of the last exchanged model, shipped as uint32 bit-pattern
//	          deltas (mod 2³²), 4 B/param. Reconstruction is bit-exact by
//	          construction — integer arithmetic, no float rounding — and
//	          the payload is highly compressible because most weights
//	          barely move between rounds. An extension beyond the paper.
//	quant8/ — stochastic int8/int16 quantization of that delta with a
//	quant16   client-side error-feedback accumulator: 1 B or 2 B per param
//	          plus one float32 scale per message. Lossy and opt-in, cutting
//	          model-bearing bytes 4× (quant8) or 2× (quant16); the
//	          quantization error is carried forward and re-injected into
//	          the next message, so it averages out over rounds.
//
// The codec is negotiated in the join frame: the client puts its codec's
// wire ID in the header's count field (dense = 0, so a dense join frame is
// byte-identical to the pre-codec protocol) and the server rejects joins
// whose codec differs from its own. Both directions of a connection use
// the same codec; shadows and error accumulators are per-connection state,
// so a reconnecting device starts from zero shadows on both sides and the
// rejoin path stays consistent by construction.
//
// Every codec's decoder output for a vector x equals float64(float32(x))
// plus, for the quantized modes, the bounded quantization residual — so
// dense and delta produce bit-identical federated runs, which
// TestCodecDeltaBitIdentical pins in-process and over TCP.

// Codec wire IDs, as carried in the join frame's count field.
const (
	codecDense   = byte(0)
	codecDelta   = byte(1)
	codecQuant8  = byte(2)
	codecQuant16 = byte(3)
)

// Codec selects a parameter encoding for the federated transport. On the
// wire the zero value behaves as the dense float32 encoding — today's
// format — so existing callers are unaffected; for the in-process
// orchestrators only an explicitly constructed codec activates wire
// emulation (the zero value keeps their historical raw-float64 exchange).
// Construct with DenseCodec, DeltaCodec, QuantCodec or ParseCodec; a Codec
// is a value (no state), safe to copy and share: per-connection codec state
// lives in the transport.
type Codec struct {
	id   byte
	seed int64 // stochastic-rounding seed (quantized modes only)
	set  bool  // explicitly constructed (activates in-process wire emulation)
}

// active reports whether the codec was explicitly constructed — the switch
// the in-process orchestrators use to decide between their historical raw
// float64 exchange (zero Codec) and full wire emulation.
func (c Codec) active() bool { return c.set }

// DenseCodec returns the dense float32 codec — the paper's wire format and
// the default.
func DenseCodec() Codec { return Codec{id: codecDense, set: true} }

// DeltaCodec returns the bit-exact shadow-delta codec.
func DeltaCodec() Codec { return Codec{id: codecDelta, set: true} }

// QuantCodec returns the stochastic quantized-delta codec with the given
// sample width (8 or 16 bits) and rounding seed. The seed keeps quantized
// runs replayable: the same seed produces the same rounding decisions, so
// the determinism gate covers quantized federations too.
func QuantCodec(bits int, seed int64) (Codec, error) {
	switch bits {
	case 8:
		return Codec{id: codecQuant8, seed: seed, set: true}, nil
	case 16:
		return Codec{id: codecQuant16, seed: seed, set: true}, nil
	}
	return Codec{}, fmt.Errorf("fed: quantized codec width %d, want 8 or 16", bits)
}

// ParseCodec resolves a codec name — "dense", "delta", "quant8" or
// "quant16" — as accepted by the -codec CLI flags. Quantized codecs parse
// with seed 0; use Seeded to bind a run seed.
func ParseCodec(name string) (Codec, error) {
	switch name {
	case "", "dense":
		return DenseCodec(), nil
	case "delta":
		return DeltaCodec(), nil
	case "quant8":
		return QuantCodec(8, 0)
	case "quant16":
		return QuantCodec(16, 0)
	}
	return Codec{}, fmt.Errorf("fed: unknown codec %q (want dense, delta, quant8 or quant16)", name)
}

// Seeded returns the codec with its stochastic-rounding seed replaced; a
// no-op for the lossless codecs, which draw no randomness.
func (c Codec) Seeded(seed int64) Codec {
	if c.id == codecQuant8 || c.id == codecQuant16 {
		c.seed = seed
	}
	return c
}

// String returns the codec's flag name.
func (c Codec) String() string {
	switch c.id {
	case codecDelta:
		return "delta"
	case codecQuant8:
		return "quant8"
	case codecQuant16:
		return "quant16"
	default:
		return "dense"
	}
}

// Lossless reports whether decoding reproduces the encoder's float32 view
// of the model bit-exactly.
func (c Codec) Lossless() bool { return c.id == codecDense || c.id == codecDelta }

// payloadSize returns the encoded payload bytes for n parameters.
func (c Codec) payloadSize(n int) int {
	if n == 0 {
		return 0
	}
	switch c.id {
	case codecQuant8:
		return quantMetaSize + n
	case codecQuant16:
		return quantMetaSize + 2*n
	default: // dense and delta are both 4 B/param
		return nn.WireSize(n)
	}
}

// TransferSize returns the on-wire bytes of one model message for n
// parameters under this codec: the 9-byte header plus the encoded payload.
// The dense value matches the package-level TransferSize and the paper's
// §IV-C accounting.
func (c Codec) TransferSize(n int) int { return headerSize + c.payloadSize(n) }

// ModelBytes returns the model-bearing bytes of one model message — the
// payload minus per-message codec metadata (the quantization scale), and
// minus the protocol header, mirroring the package convention that framing
// is not model data. This is the §IV-C communication metric the byte
// counters track: dense and delta carry 4 B/param, quant8 1 B/param,
// quant16 2 B/param.
func (c Codec) ModelBytes(n int) int {
	switch c.id {
	case codecQuant8:
		return n
	case codecQuant16:
		return 2 * n
	default:
		return nn.WireSize(n)
	}
}

// quantMetaSize is the per-message metadata of the quantized codecs: one
// float32 scale factor.
const quantMetaSize = 4

// quantMax returns the magnitude bound of the quantized sample grid.
func (c Codec) quantMax() int32 {
	if c.id == codecQuant16 {
		return math.MaxInt16
	}
	return math.MaxInt8
}

// codecState is the per-connection, per-direction state of a codec: the
// float32 shadow of the last model exchanged in that direction, the
// error-feedback accumulator and rounding RNG of the quantized modes, and
// the encode/decode scratch buffers that make the steady-state wire path
// allocation-free. The zero value is a fresh dense codec; both ends of a
// connection construct their states from the negotiated Codec, and a
// reconnect starts from fresh (zero-shadow) state on both sides.
type codecState struct {
	codec Codec

	shadow  []uint32         // float32 bit patterns of the last exchanged model
	carry   []float32        // error-feedback accumulator (quant encode side only)
	rng     uint64           // splitmix64 state for stochastic rounding
	scratch []byte           // encode/decode payload buffer, grown once
	hdr     [headerSize]byte // header scratch — stack arrays escape through io interfaces
}

// newCodecState builds one direction's state. stream disambiguates the two
// directions of a connection (and, in-process, the per-client links) so
// quantized rounding draws from independent, replayable streams.
func newCodecState(c Codec, stream int64) *codecState {
	cs := &codecState{codec: c}
	cs.rng = mixSeed(uint64(c.seed), uint64(stream))
	return cs
}

// mixSeed derives a splitmix64 state from a root and a stream identifier,
// mirroring the experiment harness's subseed derivation so distinct
// (seed, stream) pairs cannot collide through simple integer relations.
func mixSeed(root, stream uint64) uint64 {
	const golden = 0x9e3779b97f4a7c15
	z := splitmix(root + golden)
	return splitmix(z + stream + golden)
}

// splitmix is the SplitMix64 finaliser.
func splitmix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// next advances the rounding RNG and returns a uniform draw in [0, 1).
func (cs *codecState) next() float64 {
	cs.rng += 0x9e3779b97f4a7c15
	return float64(splitmix(cs.rng)>>11) / (1 << 53)
}

// grow ensures the shadow (and, for the encoder of a quantized codec, the
// carry) covers n parameters. The model size is fixed per federation, so
// this allocates once per connection.
func (cs *codecState) grow(n int) {
	if cap(cs.shadow) < n {
		cs.shadow = make([]uint32, n)
	}
	cs.shadow = cs.shadow[:n]
}

// growCarry sizes the error-feedback accumulator alongside the shadow.
func (cs *codecState) growCarry(n int) {
	if cap(cs.carry) < n {
		cs.carry = make([]float32, n)
	}
	cs.carry = cs.carry[:n]
}

// growScratch sizes the payload buffer.
func (cs *codecState) growScratch(n int) []byte {
	if cap(cs.scratch) < n {
		cs.scratch = make([]byte, n)
	}
	cs.scratch = cs.scratch[:n]
	return cs.scratch
}

// encodePayload encodes params under the codec, updating this direction's
// shadow state, and returns the payload backed by the state's scratch
// buffer — valid until the next encode. Codec encoders are a privacytaint
// sink, like nn.EncodeParams: only clean, Params-derived vectors may be
// encoded for transfer.
//
//fedlint:allocfree
func (cs *codecState) encodePayload(params []float64) []byte {
	if len(params) == 0 {
		return nil
	}
	switch cs.codec.id {
	case codecDelta:
		return cs.encodeDelta(params)
	case codecQuant8, codecQuant16:
		return cs.encodeQuant(params)
	default:
		cs.scratch = nn.EncodeParamsInto(cs.scratch, params)
		return cs.scratch
	}
}

// decodePayload decodes a payload for count parameters into dst (grown as
// needed), updating this direction's shadow state, and returns the decoded
// vector.
//
//fedlint:allocfree
func (cs *codecState) decodePayload(dst []float64, count int, payload []byte) ([]float64, error) {
	if len(payload) != cs.codec.payloadSize(count) {
		return dst, fmt.Errorf("fed: codec %s: %d payload bytes for %d params (want %d)",
			cs.codec, len(payload), count, cs.codec.payloadSize(count))
	}
	if count == 0 {
		return dst[:0], nil
	}
	switch cs.codec.id {
	case codecDelta:
		return cs.decodeDelta(dst, count, payload), nil
	case codecQuant8, codecQuant16:
		return cs.decodeQuant(dst, count, payload), nil
	default:
		return nn.DecodeParamsInto(dst, payload)
	}
}

// encodeDelta ships d_i = bits(float32(params_i)) − shadow_i (mod 2³²).
// The receiver adds d_i back onto its identical shadow, recovering the
// exact float32 bit pattern — integer arithmetic, so reconstruction is
// bit-exact regardless of the values involved (IEEE float subtraction
// could not promise that). A fresh connection has a zero shadow and the
// first message therefore carries the raw bit patterns.
func (cs *codecState) encodeDelta(params []float64) []byte {
	cs.grow(len(params))
	buf := cs.growScratch(4 * len(params))
	for i, p := range params {
		bits := math.Float32bits(float32(p))
		binary.LittleEndian.PutUint32(buf[4*i:], bits-cs.shadow[i])
		cs.shadow[i] = bits
	}
	return buf
}

// decodeDelta reverses encodeDelta against this direction's shadow.
func (cs *codecState) decodeDelta(dst []float64, count int, payload []byte) []float64 {
	cs.grow(count)
	if cap(dst) < count {
		dst = make([]float64, count)
	}
	dst = dst[:count]
	for i := range dst {
		cs.shadow[i] += binary.LittleEndian.Uint32(payload[4*i:])
		dst[i] = float64(math.Float32frombits(cs.shadow[i]))
	}
	return dst
}

// encodeQuant stochastically quantizes the residual between the model and
// this direction's float32 shadow, carrying the quantization error forward
// (error feedback): v = f32(p) − shadow + carry is quantized onto a
// per-message scale grid, the grid step is shipped as one float32, and
// both sides advance their shadows by the identical float32 arithmetic —
// so the decoder's output equals the encoder's shadow bit-for-bit and the
// error accumulator always measures the true residual. Rounding draws from
// the connection's seeded splitmix stream, keeping runs replayable.
func (cs *codecState) encodeQuant(params []float64) []byte {
	n := len(params)
	cs.grow(n)
	cs.growCarry(n)
	qmax := cs.codec.quantMax()
	wide := cs.codec.id == codecQuant16
	sample := 1
	if wide {
		sample = 2
	}
	buf := cs.growScratch(quantMetaSize + sample*n)

	// Pass 1: residuals and their magnitude bound, in float32 arithmetic
	// mirrored exactly by the decoder's shadow updates.
	var maxAbs float32
	for i, p := range params {
		v := float32(p) - math.Float32frombits(cs.shadow[i]) + cs.carry[i]
		if a := float32(math.Abs(float64(v))); a > maxAbs && a < float32(math.Inf(1)) {
			maxAbs = a
		}
	}
	var scale float32
	if maxAbs > 0 {
		scale = maxAbs / float32(qmax)
	}
	binary.LittleEndian.PutUint32(buf, math.Float32bits(scale))

	// Pass 2: stochastic rounding onto the grid, error feedback, shadow
	// advance.
	for i, p := range params {
		v := float32(p) - math.Float32frombits(cs.shadow[i]) + cs.carry[i]
		var q int32
		if scale > 0 {
			r := float64(v) / float64(scale)
			lo := math.Floor(r)
			q = int32(lo)
			if r-lo > cs.next() {
				q++
			}
			if q > qmax {
				q = qmax
			} else if q < -qmax {
				q = -qmax
			}
		}
		step := float32(q) * scale
		cs.carry[i] = v - step
		cs.shadow[i] = math.Float32bits(math.Float32frombits(cs.shadow[i]) + step)
		if wide {
			binary.LittleEndian.PutUint16(buf[quantMetaSize+2*i:], uint16(int16(q)))
		} else {
			buf[quantMetaSize+i] = byte(int8(q))
		}
	}
	return buf
}

// decodeQuant advances this direction's shadow by the shipped quantized
// steps — the same float32 arithmetic as the encoder — and returns it.
func (cs *codecState) decodeQuant(dst []float64, count int, payload []byte) []float64 {
	cs.grow(count)
	if cap(dst) < count {
		dst = make([]float64, count)
	}
	dst = dst[:count]
	scale := math.Float32frombits(binary.LittleEndian.Uint32(payload))
	wide := cs.codec.id == codecQuant16
	for i := range dst {
		var q int32
		if wide {
			q = int32(int16(binary.LittleEndian.Uint16(payload[quantMetaSize+2*i:])))
		} else {
			q = int32(int8(payload[quantMetaSize+i]))
		}
		step := float32(q) * scale
		cs.shadow[i] = math.Float32bits(math.Float32frombits(cs.shadow[i]) + step)
		dst[i] = float64(math.Float32frombits(cs.shadow[i]))
	}
	return dst
}

// Stream identifiers for the two directions of a connection; in-process
// links offset these by the client index.
const (
	streamDown = 0 // server → client (broadcast)
	streamUp   = 1 // client → server (update)
)

// codecLink is the in-process mirror of one client's TCP connection: a
// down (broadcast) and an up (update) encode/decode pair. Threading the
// in-process orchestrator through a link reproduces the TCP transport's
// float32 wire semantics exactly — the basis for the bit-identical
// dense/delta federation guarantee — while remaining allocation-free at
// steady state. Each link belongs to exactly one client and is touched
// only by that client's worker goroutine.
type codecLink struct {
	downTx, downRx *codecState
	upTx, upRx     *codecState
	globalBuf      []float64 // broadcast decode buffer, reused across rounds
	updateBuf      []float64 // update decode buffer, reused across rounds
}

// newCodecLink builds client i's link under the codec.
func newCodecLink(c Codec, i int) *codecLink {
	return &codecLink{
		downTx: newCodecState(c, int64(streamDown+2*i)),
		downRx: newCodecState(c, int64(streamDown+2*i)),
		upTx:   newCodecState(c, int64(streamUp+2*i)),
		upRx:   newCodecState(c, int64(streamUp+2*i)),
	}
}

// broadcast passes the global model through the down direction and returns
// the client's decoded view, valid until the next broadcast.
func (l *codecLink) broadcast(global []float64) ([]float64, error) {
	payload := l.downTx.encodePayload(global)
	decoded, err := l.downRx.decodePayload(l.globalBuf, len(global), payload)
	l.globalBuf = decoded
	return decoded, err
}

// update passes a client's locally optimised model through the up
// direction and returns the server's decoded view, valid until the next
// update.
func (l *codecLink) update(params []float64) ([]float64, error) {
	payload := l.upTx.encodePayload(params)
	decoded, err := l.upRx.decodePayload(l.updateBuf, len(params), payload)
	l.updateBuf = decoded
	return decoded, err
}
