package fed

import (
	"fmt"

	"fedpower/internal/nn"
)

// Aggregator is an interior node of a hierarchical federation: a Server to
// the clients below it (leaf devices or further aggregators) and a resilient
// client to its parent. Each round it receives the parent's broadcast,
// re-broadcasts it to its children under their negotiated codec streams,
// collects their round results, folds them into exact per-parameter sums
// (nn.Accum), and relays the sums plus its subtree's leaf count upward in a
// msgRelay frame. Nothing is rounded below the root, so the root's model is
// bit-identical to a flat federation over the same leaves.
//
// Fault tolerance composes per hop: the child-facing side applies this
// node's deadlines and quorum (a child subtree that misses its deadline
// drops from this node's quorum, not from the global round), while the
// parent-facing side reconnects under the Retry policy and can fall back to
// alternate parents — so an orphaned subtree rejoins the federation through
// Fallbacks when its parent dies. A round whose children miss quorum is
// reported upward as a dropped relay (the parent aggregates without this
// subtree); the aggregator stays alive and retries at the next broadcast.
type Aggregator struct {
	// Children is the child-facing server. Configure its deadlines, quorum,
	// codec and drop observer before Run; interior deadlines should be
	// shorter than the parent's RoundTimeout so a slow subtree resolves
	// locally before the parent gives up on the whole relay.
	Children *Server
	// Parent is the parent aggregator (or root server) address.
	Parent string
	// Fallbacks lists alternate parents tried in rotation when Parent stops
	// answering (see Participant.Fallbacks).
	Fallbacks []string
	// ID identifies this aggregator on the upward link (see DialID).
	ID uint32
	// Retry is the upward reconnect policy; its zero value retries 3 times.
	Retry Backoff
	// Uplink is the parameter codec of the parent link; it must match the
	// parent's codec. Relay payloads bypass it by design (wire.go) — it
	// compresses the downward model broadcasts.
	Uplink Codec

	part *Participant
}

// NewAggregator listens on addr for the given number of children and
// returns an aggregator ready to be wired to its parent via the exported
// fields. The child count is this hop's initial cohort; rounds are driven
// by the parent, not configured here.
func NewAggregator(addr string, children int) (*Aggregator, error) {
	// The round count is owned by the parent's broadcasts; the child-facing
	// Server never runs its own Serve loop, so the constructor's round
	// parameter is inert here.
	srv, err := NewServer(addr, children, 1)
	if err != nil {
		return nil, err
	}
	return &Aggregator{Children: srv}, nil
}

// Addr returns the child-facing listen address.
func (a *Aggregator) Addr() string { return a.Children.Addr() }

// Close tears down the child-facing listener; a Run in progress aborts.
func (a *Aggregator) Close() error { return a.Children.Close() }

// Reconnects reports how many times the upward link was re-established.
func (a *Aggregator) Reconnects() int {
	if a.part == nil {
		return 0
	}
	return a.part.Reconnects()
}

// UplinkBytesSent reports the model-bearing bytes this aggregator sent to
// its parent (relay frames plus join overhead) — the per-hop upward cost.
func (a *Aggregator) UplinkBytesSent() int64 {
	if a.part == nil {
		return 0
	}
	return a.part.BytesSent()
}

// UplinkBytesReceived reports the model-bearing bytes received from the
// parent (broadcasts and the final model).
func (a *Aggregator) UplinkBytesReceived() int64 {
	if a.part == nil {
		return 0
	}
	return a.part.BytesReceived()
}

// aggregatorRelay is the RelayClient the aggregator presents to its upward
// Participant: every broadcast resolves to one child round.
type aggregatorRelay struct {
	agg *Aggregator
	ses *session
	acc []nn.Accum
}

// TrainRound exists to satisfy Client; Conn.Participate always dispatches a
// RelayClient through RelayRound instead.
func (ar *aggregatorRelay) TrainRound(round int, global []float64) ([]float64, error) {
	return nil, fmt.Errorf("fed: aggregator %d cannot train locally", ar.agg.ID)
}

// RelayRound drives one child round for the parent's broadcast and returns
// the subtree's exact sums and leaf population. Child-side quorum failures
// return the *RoundError as-is — a retryable condition the upward
// Participant resolves by rejoining for the next round — while a dead
// child-facing listener is a plain error, which Participate classifies as
// fatal (PhaseTrain): an aggregator that can never re-admit children has
// lost its subtree for good.
func (ar *aggregatorRelay) RelayRound(round int, global []float64) ([]nn.Accum, int, error) {
	s := ar.agg.Children
	if !ar.ses.admit() {
		return nil, 0, fmt.Errorf("aggregator %d listener down: %w", ar.agg.ID, s.takeAcceptErr())
	}
	contribs, err := s.round(ar.ses, round, global)
	if err != nil {
		ar.ses.flushStats()
		return nil, 0, err
	}
	if len(ar.acc) != len(global) {
		ar.acc = make([]nn.Accum, len(global))
	}
	total := ar.ses.accumulate(ar.acc, contribs)
	ar.ses.stats.leaves, ar.ses.stats.leavesSet = int64(total), true
	ar.ses.flushStats()
	return ar.acc, total, nil
}

// Run connects the aggregator between its children and its parent and
// relays rounds until the parent delivers the final model, which is fanned
// out to the children as their done frame before being returned. Run owns
// all child connection state and releases it on return, whatever the
// outcome.
func (a *Aggregator) Run() ([]float64, error) {
	ses := a.Children.startSession()
	defer ses.close()
	if err := ses.waitCohort(); err != nil {
		return nil, err
	}

	a.part = &Participant{
		Addr:      a.Parent,
		Fallbacks: a.Fallbacks,
		ID:        a.ID,
		Retry:     a.Retry,
		Codec:     a.Uplink,
	}
	final, err := a.part.Run(&aggregatorRelay{agg: a, ses: ses})
	if err != nil {
		return nil, err
	}
	// Fan the final model out to the children — best-effort, like the root's
	// own done broadcast.
	ses.broadcast(message{kind: msgDone, round: a.part.LastRound(), params: final}, a.part.LastRound())
	ses.flushStats()
	return final, nil
}
