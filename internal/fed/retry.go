package fed

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"fedpower/internal/nn"
)

// Defaults for a zero-valued Backoff.
const (
	defaultBackoffBase     = 100 * time.Millisecond
	defaultBackoffMax      = 5 * time.Second
	defaultBackoffAttempts = 3
)

// Backoff is a capped exponential retry policy: attempt k (0-based) waits
// Base·2^k, capped at Max, before trying again. With a Jitter source the
// wait is spread uniformly over [d/2, d] so a fleet of devices recovering
// from the same outage does not reconnect in lockstep; jitter draws come
// from the injected generator only, keeping retry schedules seeded and
// replayable. The zero value retries 3 times with 100ms base, 5s cap, no
// jitter, real sleeps.
type Backoff struct {
	// Attempts is the maximum number of consecutive failures tolerated
	// before giving up; 0 selects the default (3). 1 means no retry.
	Attempts int
	// Base is the pre-jitter wait before the first retry; 0 selects 100ms.
	Base time.Duration
	// Max caps the exponential growth; 0 selects 5s.
	Max time.Duration
	// Jitter, when non-nil, randomises each wait over [d/2, d].
	Jitter *rand.Rand
	// Sleep performs the wait; nil selects time.Sleep. Tests inject a fake
	// to observe the schedule without waiting.
	Sleep func(time.Duration)
}

// attempts returns the effective attempt budget.
func (b Backoff) attempts() int {
	if b.Attempts <= 0 {
		return defaultBackoffAttempts
	}
	return b.Attempts
}

// Delay returns the wait after the attempt-th consecutive failure
// (0-based), jittered when a source is configured.
func (b Backoff) Delay(attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = defaultBackoffBase
	}
	if max <= 0 {
		max = defaultBackoffMax
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if b.Jitter != nil && d > 1 {
		half := int64(d / 2)
		d = time.Duration(half + b.Jitter.Int63n(half+1))
	}
	return d
}

// sleep performs the wait through the injected sleeper.
func (b Backoff) sleep(d time.Duration) {
	if b.Sleep != nil {
		b.Sleep(d)
		return
	}
	time.Sleep(d)
}

// DialRetry dials the aggregation server with the given identity, retrying
// transient failures under the backoff policy.
func DialRetry(addr string, id uint32, b Backoff) (*Conn, error) {
	var lastErr error
	for attempt := 0; attempt < b.attempts(); attempt++ {
		if attempt > 0 {
			b.sleep(b.Delay(attempt - 1))
		}
		c, err := DialID(addr, id)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("fed: dial %s gave up after %d attempts: %w", addr, b.attempts(), lastErr)
}

// Participant is the resilient device-side driver of the TCP protocol: it
// dials, participates, and on a transport failure tears the connection down
// and reconnects under the backoff policy, rejoining the federation at the
// next broadcast (the server skips a dropped device for the rounds it
// misses and aggregates without it — quorum permitting). Local training
// errors are not retried: they mean this device is broken, not the link.
//
// A Participant is single-goroutine, like Conn.
type Participant struct {
	// Addr is the aggregation server address.
	Addr string
	// ID is the device's client ID (see DialID).
	ID uint32
	// Retry is the reconnect policy; its zero value retries 3 times.
	Retry Backoff
	// Fallbacks lists alternative server addresses tried in rotation when
	// dialing the current address fails — the orphan path of a hierarchical
	// fleet: a device whose edge aggregator died redials it, then falls
	// back to the next configured parent and rejoins the federation there.
	// Rotation is sticky: once an address accepts, it stays current until
	// it fails again.
	Fallbacks []string
	// Dialer optionally replaces the raw transport dial — the seam the
	// fault-injection harness uses to hand back a faulty connection. nil
	// means net.Dial("tcp", addr), where addr walks Addr and Fallbacks.
	Dialer func(addr string) (net.Conn, error)
	// Codec selects the parameter encoding (codec.go); it must match the
	// server's, and the zero value is the dense default. Every reconnect
	// starts from fresh codec state on both sides, so rejoining under a
	// stateful codec (delta, quantized) is safe by construction.
	Codec Codec

	reconnects int
	lastRound  int
	bytesSent  int64
	bytesRecv  int64
	addrIdx    int // current position in the Addr+Fallbacks rotation
}

// Reconnects returns how many times Run re-established the connection
// after a transport failure.
func (p *Participant) Reconnects() int { return p.reconnects }

// LastRound returns the last round number this device received a broadcast
// for, across all connections.
func (p *Participant) LastRound() int { return p.lastRound }

// BytesSent returns total model-bearing bytes written across all
// connections.
func (p *Participant) BytesSent() int64 { return p.bytesSent }

// BytesReceived returns total model-bearing bytes read across all
// connections.
func (p *Participant) BytesReceived() int64 { return p.bytesRecv }

// addr returns the rotation's current server address.
func (p *Participant) addr() string {
	if p.addrIdx == 0 || p.addrIdx > len(p.Fallbacks) {
		return p.Addr
	}
	return p.Fallbacks[p.addrIdx-1]
}

// rotate advances to the next address in the Addr+Fallbacks ring after a
// dial failure.
func (p *Participant) rotate() {
	p.addrIdx = (p.addrIdx + 1) % (1 + len(p.Fallbacks))
}

// dial establishes one identified connection to the rotation's current
// address, without retry.
func (p *Participant) dial() (*Conn, error) {
	addr := p.addr()
	if p.Dialer == nil {
		return DialCodec(addr, p.ID, p.Codec)
	}
	raw, err := p.Dialer(addr)
	if err != nil {
		return nil, fmt.Errorf("fed: dial %s: %w", addr, err)
	}
	c, err := NewConnCodec(raw, p.ID, p.Codec)
	if err != nil {
		_ = raw.Close()
		return nil, err
	}
	return c, nil
}

// relayProgress threads the failure-budget reset through a RelayClient
// without demoting it: wrapping an aggregator in a plain ClientFunc would
// hide its RelayRound method from Conn.Participate and silently turn an
// interior node into a training leaf.
type relayProgress struct {
	relay RelayClient
	note  func(round int)
}

func (rp relayProgress) TrainRound(round int, global []float64) ([]float64, error) {
	rp.note(round)
	return rp.relay.TrainRound(round, global)
}

func (rp relayProgress) RelayRound(round int, global []float64) ([]nn.Accum, int, error) {
	rp.note(round)
	return rp.relay.RelayRound(round, global)
}

// Run participates until the server delivers the final model, a local
// training error occurs, or Retry.Attempts consecutive transport failures
// exhaust the policy. Progress resets the failure budget: a successful
// re-join (the dial and join frame going through) and every received
// broadcast both prove the server is alive, so only back-to-back failures
// count against Attempts and a device that rejoins between broadcasts
// starts its next redial schedule from the base delay, not from where the
// old schedule left off.
func (p *Participant) Run(client Client) ([]float64, error) {
	failures := 0
	var lastErr error
	for {
		if failures > 0 {
			if failures >= p.Retry.attempts() {
				return nil, fmt.Errorf("fed: participant %d gave up after %d consecutive failures (last round %d): %w",
					p.ID, failures, p.lastRound, lastErr)
			}
			p.Retry.sleep(p.Retry.Delay(failures - 1))
		}

		conn, err := p.dial()
		if err != nil {
			// The current parent is unreachable: count the failure and move
			// to the next address in the rotation (a no-op without
			// fallbacks).
			failures++
			lastErr = err
			p.rotate()
			continue
		}
		// Successful re-join acknowledgment: the transport accepted the join
		// frame, so the schedule restarts from the base delay.
		failures = 0

		note := func(round int) {
			failures = 0
			p.lastRound = round
		}
		var progress Client = ClientFunc(func(round int, global []float64) ([]float64, error) {
			note(round)
			return client.TrainRound(round, global)
		})
		if relay, ok := client.(RelayClient); ok {
			progress = relayProgress{relay: relay, note: note}
		}
		final, err := conn.Participate(progress)
		p.bytesSent += conn.BytesSent()
		p.bytesRecv += conn.BytesReceived()
		_ = conn.Close()
		if err == nil {
			return final, nil
		}
		var re *RoundError
		if errors.As(err, &re) && re.Phase == PhaseTrain {
			// The device itself failed; reconnecting cannot help.
			return nil, err
		}
		failures++
		p.reconnects++
		lastErr = err
	}
}
