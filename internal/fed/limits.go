package fed

import "fedpower/internal/nn"

// Declared caps of the federation wire protocol — the single source of
// truth every decode path narrows hostile integers against before any
// allocation, index or loop use. The wirebound analyzer (internal/lint)
// proves this statically: an integer decoded from wire bytes that reaches
// an allocation size, a slice/index expression or a loop trip count must
// carry a finite bound derived from one of these constants (or from a
// narrower type), so a corrupt or hostile peer can force an error but
// never an oversized allocation. See DESIGN.md, "Hostile-input safety,
// statically proven".
const (
	// maxWireParams bounds the parameter count a message header may
	// announce. The paper's policy network has 687 parameters; 2¹⁷ leaves
	// two orders of magnitude of headroom while capping the dense payload
	// a hostile header can demand at 4·2¹⁷ = 512 KiB and the relay
	// accumulator slice at 2¹⁷ entries.
	maxWireParams = 1 << 17

	// maxRelayLeaves bounds the leaf population a relay frame may claim
	// for its subtree. It is a plausibility cap on an accounting field
	// (the fleet sizes of the paper's setting are thousands of devices),
	// not an allocation bound — but an absurd claim is still rejected
	// before it can skew the weighted aggregation.
	maxRelayLeaves = 1 << 20

	// maxRelayBlock is the largest accumulator block one relay frame can
	// make the receiver buffer: every accumulator encodes to at most
	// nn.MaxAccumWire bytes, so a block for maxWireParams accumulators
	// tops out below 36 MiB. readRelay enforces the per-frame form of
	// this bound (blen ≤ count·MaxAccumWire with count ≤ maxWireParams);
	// the constant states the closed form the analyzer derives.
	maxRelayBlock = maxWireParams * nn.MaxAccumWire

	// maxJoinCodec bounds the join frame's codec-ID field, which reuses
	// the 32-bit count slot but must fit the one-byte codec namespace.
	maxJoinCodec = int(^byte(0))
)
