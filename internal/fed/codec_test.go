package fed

import (
	"bufio"
	"bytes"
	"math"
	"testing"
	"time"
)

// paperParams is the paper's model size; §IV-C reports 2.8 kB per dense
// transfer at this count.
const paperParams = 687

func TestParseCodec(t *testing.T) {
	for _, name := range []string{"dense", "delta", "quant8", "quant16"} {
		c, err := ParseCodec(name)
		if err != nil {
			t.Fatalf("ParseCodec(%q): %v", name, err)
		}
		if c.String() != name {
			t.Fatalf("ParseCodec(%q).String() = %q", name, c)
		}
		if !c.active() {
			t.Fatalf("ParseCodec(%q) is not active", name)
		}
	}
	if c, err := ParseCodec(""); err != nil || c.String() != "dense" {
		t.Fatalf("ParseCodec(\"\") = %v, %v, want dense", c, err)
	}
	if _, err := ParseCodec("gzip"); err == nil {
		t.Fatal("ParseCodec accepted an unknown codec name")
	}
	if _, err := QuantCodec(12, 0); err == nil {
		t.Fatal("QuantCodec accepted a 12-bit width")
	}
	if (Codec{}).active() {
		t.Fatal("the zero Codec must not activate in-process wire emulation")
	}
}

// TestCodecSizes pins each codec's on-wire and model-bearing byte counts at
// the paper's model size: dense keeps the 2757 B frame of §IV-C, delta
// matches it, and the quantized codecs carry 4× / 2× fewer model-bearing
// bytes — the communication saving the codecs exist for.
func TestCodecSizes(t *testing.T) {
	cases := []struct {
		name           string
		codec          Codec
		wire, modelLen int
	}{
		{"dense", DenseCodec(), 9 + 4*paperParams, 4 * paperParams},
		{"delta", DeltaCodec(), 9 + 4*paperParams, 4 * paperParams},
		{"quant8", mustQuant(t, 8), 9 + 4 + paperParams, paperParams},
		{"quant16", mustQuant(t, 16), 9 + 4 + 2*paperParams, 2 * paperParams},
	}
	for _, c := range cases {
		if got := c.codec.TransferSize(paperParams); got != c.wire {
			t.Errorf("%s: TransferSize(%d) = %d, want %d", c.name, paperParams, got, c.wire)
		}
		if got := c.codec.ModelBytes(paperParams); got != c.modelLen {
			t.Errorf("%s: ModelBytes(%d) = %d, want %d", c.name, paperParams, got, c.modelLen)
		}
	}
	if DenseCodec().TransferSize(paperParams) != TransferSize(paperParams) {
		t.Error("dense Codec.TransferSize disagrees with the package TransferSize")
	}
	if ratio := float64(DenseCodec().ModelBytes(paperParams)) / float64(mustQuant(t, 8).ModelBytes(paperParams)); ratio < 4 {
		t.Errorf("quant8 model-bearing reduction %.2f×, want >= 4×", ratio)
	}
}

func mustQuant(t *testing.T, bits int) Codec {
	t.Helper()
	c, err := QuantCodec(bits, 7)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDenseJoinByteIdentical pins codec negotiation's compatibility
// guarantee: a dense join frame is byte-for-byte the pre-codec join frame,
// so a dense fleet is indistinguishable from one that predates codecs.
func TestDenseJoinByteIdentical(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	cs := newCodecState(DenseCodec(), streamUp)
	if _, err := cs.writeMessage(w, message{kind: msgJoin, round: 42, codec: DenseCodec().id}); err != nil {
		t.Fatal(err)
	}
	want := []byte{4, 42, 0, 0, 0, 0, 0, 0, 0}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("dense join frame = %v, want %v", buf.Bytes(), want)
	}
}

// TestDeltaStreamBitExact runs a multi-round delta conversation with
// drifting values — the shape of a converging training run — and demands
// bit-exact reconstruction of every message.
func TestDeltaStreamBitExact(t *testing.T) {
	enc, dec := codecPair(DeltaCodec())
	params := make([]float64, paperParams)
	rng := newSplitmixForTest(99)
	for i := range params {
		params[i] = rng.norm()
	}
	var out []float64
	for round := 0; round < 12; round++ {
		payload := enc.encodePayload(params)
		if len(payload) != DeltaCodec().payloadSize(len(params)) {
			t.Fatalf("round %d: payload %d bytes, want %d", round, len(payload), DeltaCodec().payloadSize(len(params)))
		}
		var err error
		out, err = dec.decodePayload(out, len(params), payload)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range params {
			want := float64(float32(params[i]))
			if math.Float64bits(out[i]) != math.Float64bits(want) {
				t.Fatalf("round %d param %d: got %v, want %v", round, i, out[i], want)
			}
		}
		// Drift like a training step would.
		for i := range params {
			params[i] += rng.norm() * 0.01
		}
	}
}

// TestQuantErrorFeedbackConverges holds the model still: with error
// feedback, repeated quantized exchanges of the same vector must drive the
// decoder's reconstruction onto the vector's float32 value — quantization
// noise is carried, not lost.
func TestQuantErrorFeedbackConverges(t *testing.T) {
	for _, bits := range []int{8, 16} {
		enc, dec := codecPair(mustQuant(t, bits))
		params := make([]float64, 64)
		rng := newSplitmixForTest(int64(bits))
		for i := range params {
			params[i] = rng.norm()
		}
		var out []float64
		var err error
		for round := 0; round < 40; round++ {
			payload := enc.encodePayload(params)
			out, err = dec.decodePayload(out, len(params), payload)
			if err != nil {
				t.Fatalf("bits=%d round %d: %v", bits, round, err)
			}
		}
		for i := range params {
			want := float64(float32(params[i]))
			if diff := math.Abs(out[i] - want); diff > 1e-3 {
				t.Fatalf("bits=%d param %d: reconstruction %v never converged to %v (diff %v)",
					bits, i, out[i], want, diff)
			}
		}
	}
}

// TestQuantDeterministicReplay pins that a quantized encoder is a pure
// function of (codec seed, stream, message sequence): two states built the
// same way emit identical payloads, the property the determinism replay
// gate relies on.
func TestQuantDeterministicReplay(t *testing.T) {
	mk := func() []byte {
		enc := newCodecState(mustQuant(t, 8), 5)
		params := make([]float64, 97)
		rng := newSplitmixForTest(3)
		for i := range params {
			params[i] = rng.norm()
		}
		var all []byte
		for round := 0; round < 3; round++ {
			all = append(all, enc.encodePayload(params)...)
			for i := range params {
				params[i] += 0.01
			}
		}
		return all
	}
	if !bytes.Equal(mk(), mk()) {
		t.Fatal("quantized encoding is not replay-deterministic")
	}
}

// TestCodecJoinNegotiation covers the join handshake: a client advertising
// the server's codec is admitted; one advertising another codec is
// rejected at join time and its Participant gives up without poisoning the
// federation.
func TestCodecJoinNegotiation(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv.Codec = DeltaCodec()
	srv.JoinTimeout = 5 * time.Second
	srv.RoundTimeout = 5 * time.Second

	initial := []float64{1, 2, 3}
	serveDone := make(chan struct{})
	var final []float64
	var serveErr error
	go func() {
		defer close(serveDone)
		final, serveErr = srv.Serve(initial, nil)
	}()

	// A mismatched join must be rejected: the server closes the connection
	// without admitting it, so the client's first read fails.
	mismatched, err := DialCodec(srv.Addr(), 7, DenseCodec())
	if err == nil {
		if _, perr := mismatched.Participate(ClientFunc(func(_ int, g []float64) ([]float64, error) {
			return g, nil
		})); perr == nil {
			t.Error("dense client completed a federation against a delta server")
		}
		_ = mismatched.Close()
	}

	part := &Participant{Addr: srv.Addr(), ID: 1, Codec: DeltaCodec(),
		Retry: Backoff{Attempts: 3, Base: time.Millisecond}}
	if _, err := part.Run(ClientFunc(func(_ int, g []float64) ([]float64, error) {
		out := append([]float64(nil), g...)
		for i := range out {
			out[i] += 0.5
		}
		return out, nil
	})); err != nil {
		t.Fatalf("participant: %v", err)
	}
	<-serveDone
	if serveErr != nil {
		t.Fatalf("Serve: %v", serveErr)
	}
	want := float64(float32(float64(float32(1+0.5)) + 0.5))
	if math.Float64bits(final[0]) != math.Float64bits(want) {
		t.Fatalf("delta federation final[0] = %v, want %v", final[0], want)
	}
}

// TestCodecTCPMatchesEmulation runs the same tiny federation over real TCP
// and through the in-process wire emulation (RunParallelCodec), per codec,
// and requires bit-identical finals — the bridge that lets the experiment
// harness validate TCP semantics without sockets.
func TestCodecTCPMatchesEmulation(t *testing.T) {
	codecs := []Codec{DenseCodec(), DeltaCodec(), mustQuant(t, 8), mustQuant(t, 16)}
	for _, codec := range codecs {
		initial := []float64{0.25, -1.5, 3.75, 0.125}
		trainer := func(round int, g []float64) ([]float64, error) {
			out := append([]float64(nil), g...)
			for i := range out {
				out[i] = out[i]*0.75 + float64(round)*0.03125
			}
			return out, nil
		}

		// TCP run, single client with the matching per-direction streams.
		srv, err := NewServer("127.0.0.1:0", 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		srv.Codec = codec
		srv.RoundTimeout = 5 * time.Second
		done := make(chan error, 1)
		go func() {
			conn, err := DialCodec(srv.Addr(), 0, codec)
			if err != nil {
				done <- err
				return
			}
			defer func() { _ = conn.Close() }()
			_, err = conn.Participate(ClientFunc(trainer))
			done <- err
		}()
		tcpFinal, err := srv.Serve(initial, nil)
		if err != nil {
			t.Fatalf("%s: Serve: %v", codec, err)
		}
		if err := <-done; err != nil {
			t.Fatalf("%s: participate: %v", codec, err)
		}

		// In-process emulation of the same federation.
		emuFinal := append([]float64(nil), initial...)
		if err := RunParallelCodec(emuFinal, []Client{ClientFunc(trainer)}, 3, 1, codec, nil); err != nil {
			t.Fatalf("%s: RunParallelCodec: %v", codec, err)
		}
		for i := range tcpFinal {
			if math.Float64bits(tcpFinal[i]) != math.Float64bits(emuFinal[i]) {
				t.Fatalf("%s: param %d: TCP %v, emulation %v", codec, i, tcpFinal[i], emuFinal[i])
			}
		}
	}
}

// TestCodecByteAccountingActual verifies the counters report what actually
// crossed the wire: a quant8 federation's per-message byte cost must match
// Codec.TransferSize, not the dense TransferSize the counters used to
// assume.
func TestCodecByteAccountingActual(t *testing.T) {
	codec := mustQuant(t, 8)
	const rounds, nparams = 4, 33
	srv, err := NewServer("127.0.0.1:0", 1, rounds)
	if err != nil {
		t.Fatal(err)
	}
	srv.Codec = codec
	srv.RoundTimeout = 5 * time.Second

	var clientConn *Conn
	done := make(chan error, 1)
	go func() {
		conn, err := DialCodec(srv.Addr(), 1, codec)
		if err != nil {
			done <- err
			return
		}
		clientConn = conn
		defer func() { _ = conn.Close() }()
		_, err = conn.Participate(ClientFunc(func(_ int, g []float64) ([]float64, error) {
			return g, nil
		}))
		done <- err
	}()

	initial := make([]float64, nparams)
	for i := range initial {
		initial[i] = float64(i) * 0.01
	}
	if _, err := srv.Serve(initial, nil); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("participate: %v", err)
	}

	per := int64(codec.TransferSize(nparams))
	if got, want := srv.BytesSent(), int64(rounds+1)*per; got != want {
		t.Errorf("server sent %d B, want %d (%d messages × %d B)", got, want, rounds+1, per)
	}
	if got, want := srv.BytesReceived(), int64(rounds)*per; got != want {
		t.Errorf("server received %d B, want %d", got, want)
	}
	if got, want := clientConn.BytesSent(), int64(rounds)*per; got != want {
		t.Errorf("client sent %d B, want %d", got, want)
	}
	if got, want := clientConn.BytesReceived(), int64(rounds+1)*per; got != want {
		t.Errorf("client received %d B, want %d", got, want)
	}
	if dense := int64(TransferSize(nparams)); per*4 >= dense*2 {
		t.Errorf("quant8 frame %d B is not meaningfully smaller than dense %d B", per, dense)
	}
}

// TestCodecStateReuseAllocFree pins the steady-state allocation contract of
// the wire path: after the first exchange, encode and decode reuse
// codec-owned buffers.
func TestCodecStateReuseAllocFree(t *testing.T) {
	for _, codec := range []Codec{DenseCodec(), DeltaCodec(), mustQuant(t, 16)} {
		enc, dec := codecPair(codec)
		params := make([]float64, 256)
		for i := range params {
			params[i] = float64(i) * 0.125
		}
		var out []float64
		// Warm-up exchange sizes every buffer.
		payload := enc.encodePayload(params)
		out, err := dec.decodePayload(out, len(params), payload)
		if err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			p := enc.encodePayload(params)
			var derr error
			out, derr = dec.decodePayload(out, len(params), p)
			if derr != nil {
				t.Fatal(derr)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs per steady-state exchange, want 0", codec, allocs)
		}
	}
}

// splitmixForTest is a tiny deterministic value source for codec tests —
// independent of math/rand (norand) and of the codec's own RNG.
type splitmixForTest struct{ s uint64 }

func newSplitmixForTest(seed int64) *splitmixForTest {
	return &splitmixForTest{s: uint64(seed)}
}

// norm returns a deterministic value roughly in [-1, 1).
func (r *splitmixForTest) norm() float64 {
	r.s += 0x9e3779b97f4a7c15
	return float64(splitmix(r.s)>>11)/(1<<52) - 1
}
