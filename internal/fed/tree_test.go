package fed

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// hashLeaf builds a stateless deterministic trainer for leaf i: a pure
// function of (round, params), so the same client slice can drive a flat
// and a tree federation and produce identical local updates in both. The
// perturbations span ~19 binary orders of magnitude with mixed signs —
// exactly the regime where naive float64 summation is grouping-sensitive,
// so any rounding anywhere in the tree path would break bit-identity.
func hashLeaf(i int) ClientFunc {
	return func(round int, global []float64) ([]float64, error) {
		out := make([]float64, len(global))
		for k, g := range global {
			h := (uint64(i)+1)*0x9e3779b97f4a7c15 ^ (uint64(round)+1)*0xbf58476d1ce4e5b9 ^ (uint64(k)+1)*0x94d049bb133111eb
			h ^= h >> 31
			h *= 0xd6e8feb86659fd93
			h ^= h >> 32
			mag := math.Ldexp(float64(h>>40)/float64(1<<24), int(h%19)-9)
			if h&(1<<39) != 0 {
				mag = -mag
			}
			out[k] = g + mag
		}
		return out, nil
	}
}

// randomTopology draws a seeded topology of the given maximum depth with
// uneven fan-outs (2–16 at the leaf tier), uneven child depths, and leaves
// attached directly to interior nodes.
func randomTopology(rng *rand.Rand, depth int) *TreeNode {
	if depth <= 1 {
		return &TreeNode{Leaves: 1 + rng.Intn(16)}
	}
	n := &TreeNode{Leaves: rng.Intn(3)}
	fan := 2 + rng.Intn(5)
	for i := 0; i < fan; i++ {
		n.Children = append(n.Children, randomTopology(rng, 1+rng.Intn(depth-1)))
	}
	return n
}

// roundBits converts a parameter snapshot to its float64 bit patterns for
// exact comparison via reflect.DeepEqual.
func roundBits(params []float64) []uint64 {
	bits := make([]uint64, len(params))
	for i, p := range params {
		bits[i] = math.Float64bits(p)
	}
	return bits
}

// TestTreeBitIdenticalRandomTopologies is the tentpole property test: for
// seeded random topologies (fan-out 2–16, depth 1–3, uneven leaf counts,
// interior-node leaves), a hierarchical federation produces parameters
// bit-identical to flat fed.Run / RunParallelCodec over the same clients —
// every round, under the raw, dense and delta wire paths, at several
// parallel widths. The name keeps it inside the determinism (-count=2) and
// race gates (scripts/check.sh).
func TestTreeBitIdenticalRandomTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	codecs := []struct {
		name  string
		codec Codec
	}{
		{"raw", Codec{}},
		{"dense", DenseCodec()},
		{"delta", DeltaCodec()},
	}
	const rounds = 3
	const numParams = 7

	for trial := 0; trial < 9; trial++ {
		depth := 1 + trial%3
		topo := randomTopology(rng, depth)
		if err := topo.Validate(); err != nil {
			t.Fatalf("trial %d: generated topology invalid: %v", trial, err)
		}
		n := topo.LeafCount()
		clients := make([]Client, n)
		for i := range clients {
			clients[i] = hashLeaf(i)
		}
		cc := codecs[trial%len(codecs)]

		init := make([]float64, numParams)
		for i := range init {
			init[i] = float64(i) * 0.375
		}

		flat := append([]float64(nil), init...)
		var flatRounds [][]uint64
		logFlat := func(round int, g []float64) { flatRounds = append(flatRounds, roundBits(g)) }
		var err error
		if cc.codec.active() {
			err = RunParallelCodec(flat, clients, rounds, 1, cc.codec, logFlat)
		} else {
			err = Run(flat, clients, rounds, logFlat)
		}
		if err != nil {
			t.Fatalf("trial %d (%s): flat run: %v", trial, cc.name, err)
		}

		tree := append([]float64(nil), init...)
		var treeRounds [][]uint64
		err = RunTree(tree, clients, topo, TreeConfig{
			Rounds:      rounds,
			Parallelism: 1 + trial%4,
			Codec:       cc.codec,
			Hook:        func(round int, g []float64) { treeRounds = append(treeRounds, roundBits(g)) },
		})
		if err != nil {
			t.Fatalf("trial %d (%s): tree run: %v", trial, cc.name, err)
		}

		if !reflect.DeepEqual(flatRounds, treeRounds) {
			for r := range flatRounds {
				if !reflect.DeepEqual(flatRounds[r], treeRounds[r]) {
					t.Fatalf("trial %d (%s, depth %d, %d leaves): round %d diverged:\nflat %v\ntree %v",
						trial, cc.name, topo.Depth(), n, r+1, flatRounds[r], treeRounds[r])
				}
			}
		}
		if !reflect.DeepEqual(roundBits(flat), roundBits(tree)) {
			t.Fatalf("trial %d (%s): final params diverged", trial, cc.name)
		}
	}
}

// treeFleet wires a full TCP aggregation tree on loopback from a balanced
// fan-out spec: a root Server, interior Aggregators, and one Participate
// goroutine per leaf, with leaf IDs assigned depth-first so the same
// clients drive the flat reference run. It returns the root's per-round
// parameter bits, the root's final model, and every leaf's final model.
func treeFleet(t *testing.T, fanouts []int, clients []ClientFunc, init []float64, rounds int, codec Codec) (perRound [][]uint64, final []float64, leafFinals [][]float64) {
	t.Helper()

	leafFinals = make([][]float64, len(clients))
	leafErrs := make([]error, len(clients))
	var wg sync.WaitGroup

	var aggErrs []error
	var aggMu sync.Mutex

	// spawn builds the subtree below parentAddr for fanouts, attaching
	// leaves [leafBase, ...) depth-first, and returns the leaf count.
	var spawn func(parentAddr string, fanouts []int, leafBase int) int
	nextAggID := uint32(10_000)
	spawn = func(parentAddr string, fanouts []int, leafBase int) int {
		if len(fanouts) == 1 {
			for l := 0; l < fanouts[0]; l++ {
				i := leafBase + l
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					conn, err := DialCodec(parentAddr, uint32(i+1), codec)
					if err != nil {
						leafErrs[i] = err
						return
					}
					defer conn.Close()
					leafFinals[i], leafErrs[i] = conn.Participate(clients[i])
				}(i)
			}
			return fanouts[0]
		}
		total := 0
		for c := 0; c < fanouts[0]; c++ {
			agg, err := NewAggregator("127.0.0.1:0", fanouts[1])
			if err != nil {
				t.Fatal(err)
			}
			agg.Parent = parentAddr
			nextAggID++
			agg.ID = nextAggID
			agg.Uplink = codec
			agg.Children.Codec = codec
			agg.Children.RoundTimeout = 5 * time.Second
			agg.Children.JoinTimeout = 5 * time.Second
			agg.Retry = Backoff{Attempts: 3, Base: 5 * time.Millisecond}
			wg.Add(1)
			go func(agg *Aggregator) {
				defer wg.Done()
				if _, err := agg.Run(); err != nil {
					aggMu.Lock()
					aggErrs = append(aggErrs, err)
					aggMu.Unlock()
				}
			}(agg)
			total += spawn(agg.Addr(), fanouts[1:], leafBase+total)
		}
		return total
	}

	root, err := NewServer("127.0.0.1:0", fanouts[0], rounds)
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	root.Codec = codec
	root.RoundTimeout = 10 * time.Second
	root.JoinTimeout = 10 * time.Second
	if got := spawn(root.Addr(), fanouts, 0); got != len(clients) {
		t.Fatalf("topology %v has %d leaves for %d clients", fanouts, got, len(clients))
	}

	final, err = root.Serve(init, func(round int, g []float64) {
		perRound = append(perRound, roundBits(g))
	})
	if err != nil {
		t.Fatalf("tree root: %v", err)
	}
	wg.Wait()
	aggMu.Lock()
	for _, err := range aggErrs {
		t.Errorf("aggregator: %v", err)
	}
	aggMu.Unlock()
	for i, err := range leafErrs {
		if err != nil {
			t.Errorf("leaf %d: %v", i, err)
		}
	}
	return perRound, final, leafFinals
}

// flatFleet runs the flat TCP reference federation over the same clients
// and leaf IDs.
func flatFleet(t *testing.T, clients []ClientFunc, init []float64, rounds int, codec Codec) (perRound [][]uint64, final []float64, leafFinals [][]float64) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", len(clients), rounds)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Codec = codec
	srv.RoundTimeout = 10 * time.Second
	srv.JoinTimeout = 10 * time.Second

	var wg sync.WaitGroup
	errs := make([]error, len(clients))
	leafFinals = make([][]float64, len(clients))
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := DialCodec(srv.Addr(), uint32(i+1), codec)
			if err != nil {
				errs[i] = err
				return
			}
			defer conn.Close()
			leafFinals[i], errs[i] = conn.Participate(clients[i])
		}(i)
	}
	final, err = srv.Serve(init, func(round int, g []float64) {
		perRound = append(perRound, roundBits(g))
	})
	if err != nil {
		t.Fatalf("flat root: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("flat leaf %d: %v", i, err)
		}
	}
	return perRound, final, leafFinals
}

// TestTreeBitIdenticalTCP proves end-to-end bit-identity over real TCP: 2-
// and 3-level aggregation trees reproduce the flat federation's parameters
// on every round and in the final model, under both the dense default codec
// and the stateful delta codec applied per hop. The name keeps it inside
// the determinism (-count=2) and race gates.
func TestTreeBitIdenticalTCP(t *testing.T) {
	const rounds = 3
	codecs := []struct {
		name  string
		codec Codec
	}{
		{"dense", Codec{}},
		{"delta", DeltaCodec()},
	}
	shapes := []struct {
		name    string
		fanouts []int
	}{
		{"2level-3x4", []int{3, 4}},
		{"3level-2x2x3", []int{2, 2, 3}},
	}
	for _, cc := range codecs {
		for _, shape := range shapes {
			t.Run(cc.name+"/"+shape.name, func(t *testing.T) {
				leaves := 1
				for _, f := range shape.fanouts {
					leaves *= f
				}
				clients := make([]ClientFunc, leaves)
				for i := range clients {
					clients[i] = hashLeaf(i)
				}
				init := []float64{0.5, -1.25, 3, 0.0625, -0.75}

				flatRounds, flatFinal, flatLeafFinals := flatFleet(t, clients, init, rounds, cc.codec)
				treeRounds, treeFinal, leafFinals := treeFleet(t, shape.fanouts, clients, init, rounds, cc.codec)

				if !reflect.DeepEqual(flatRounds, treeRounds) {
					t.Fatalf("per-round params diverged:\nflat %v\ntree %v", flatRounds, treeRounds)
				}
				if !reflect.DeepEqual(roundBits(flatFinal), roundBits(treeFinal)) {
					t.Fatalf("final params diverged: flat %v, tree %v", flatFinal, treeFinal)
				}
				// Leaves observe the final model through the codec'd done frame
				// (a float32 wire image under both codecs), so the end-to-end
				// claim is leaf-vs-leaf: every tree leaf must see the exact
				// bits its flat counterpart saw.
				for i, lf := range leafFinals {
					if !reflect.DeepEqual(roundBits(lf), roundBits(flatLeafFinals[i])) {
						t.Errorf("leaf %d final %v differs from flat leaf final %v", i, lf, flatLeafFinals[i])
					}
				}
			})
		}
	}
}

// TestTreeInteriorFailureFallback kills a mid-tier aggregator mid-run: its
// parent must commit the remaining rounds at quorum of the surviving
// subtree, and the orphaned leaves must rejoin the federation through their
// configured fallback parent — ending with the same final model as every
// other device.
func TestTreeInteriorFailureFallback(t *testing.T) {
	const rounds = 8
	root, err := NewServer("127.0.0.1:0", 2, rounds)
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	root.Quorum = 1
	root.RoundTimeout = 3 * time.Second
	root.WriteTimeout = 2 * time.Second
	root.JoinTimeout = 3 * time.Second

	var dropMu sync.Mutex
	var droppedAggs []uint32
	root.OnDrop = func(id uint32, round int, err error) {
		dropMu.Lock()
		droppedAggs = append(droppedAggs, id)
		dropMu.Unlock()
	}

	newAgg := func(id uint32) *Aggregator {
		agg, err := NewAggregator("127.0.0.1:0", 2)
		if err != nil {
			t.Fatal(err)
		}
		agg.Parent = root.Addr()
		agg.ID = id
		agg.Children.RoundTimeout = 2 * time.Second
		agg.Children.JoinTimeout = 2 * time.Second
		agg.Retry = Backoff{Attempts: 3, Base: 5 * time.Millisecond}
		return agg
	}
	aggA := newAgg(101)
	aggB := newAgg(102)

	var wg sync.WaitGroup
	var aggAErr, aggBErr error
	wg.Add(2)
	go func() { defer wg.Done(); _, aggAErr = aggA.Run() }()
	go func() { defer wg.Done(); _, aggBErr = aggB.Run() }()

	// Leaves 0,1 under A with B as fallback parent; leaves 2,3 under B.
	parts := make([]*Participant, 4)
	finals := make([][]float64, 4)
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		addr, fallbacks := aggA.Addr(), []string{aggB.Addr()}
		if i >= 2 {
			addr, fallbacks = aggB.Addr(), nil
		}
		parts[i] = &Participant{
			Addr:      addr,
			Fallbacks: fallbacks,
			ID:        uint32(i + 1),
			Retry:     Backoff{Attempts: 20, Base: 5 * time.Millisecond, Max: 100 * time.Millisecond},
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			finals[i], errs[i] = parts[i].Run(hashLeaf(i))
		}(i)
	}

	completed := 0
	final, err := root.Serve([]float64{0.5, -2}, func(round int, g []float64) {
		completed = round
		if round == 3 {
			// Kill the mid-tier aggregator A between rounds: its listener
			// dies, its subtree round fails fatally, its upward link drops.
			_ = aggA.Close()
		}
		if round >= 3 {
			// Pace the surviving rounds: with instant trainers a loopback
			// round commits in well under a millisecond, which would finish
			// the run before the orphans' redial backoff ever reaches the
			// fallback parent.
			time.Sleep(75 * time.Millisecond)
		}
	})
	wg.Wait()
	if err != nil {
		t.Fatalf("root: %v (completed %d rounds)", err, completed)
	}
	if completed != rounds {
		t.Fatalf("root committed %d rounds, want %d", completed, rounds)
	}
	if aggAErr == nil {
		t.Error("killed aggregator A finished without error")
	}
	if aggBErr != nil {
		t.Errorf("surviving aggregator B: %v", aggBErr)
	}

	dropMu.Lock()
	sawA := false
	for _, id := range droppedAggs {
		if id == 101 {
			sawA = true
		}
	}
	dropMu.Unlock()
	if !sawA {
		t.Error("root never dropped aggregator A from its quorum")
	}

	// Every leaf — orphaned or not — must see the same final model: the
	// default dense codec's float32 image of the root's final parameters.
	wireFinal := make([]float64, len(final))
	for i, v := range final {
		wireFinal[i] = float64(float32(v))
	}
	for i := 0; i < 4; i++ {
		if errs[i] != nil {
			t.Fatalf("leaf %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(roundBits(finals[i]), roundBits(wireFinal)) {
			t.Errorf("leaf %d final %v differs from root final's wire image %v", i, finals[i], wireFinal)
		}
	}
	for i := 0; i < 2; i++ {
		if parts[i].Reconnects() == 0 {
			t.Errorf("orphan leaf %d never reconnected", i)
		}
	}
	if rejoins := aggB.Children.Rejoins(); rejoins < 2 {
		t.Errorf("fallback aggregator B admitted %d rejoins, want >= 2 (both orphans)", rejoins)
	}
	if got := root.Leaves(); got != 4 {
		t.Errorf("root's last committed round covered %d leaves, want 4 (B's full subtree)", got)
	}
}

// TestTopologyParsing pins the CLI topology grammar.
func TestTopologyParsing(t *testing.T) {
	for _, tc := range []struct {
		in     string
		leaves int
		depth  int
	}{
		{"8", 8, 1},
		{"4x8", 32, 2},
		{"2x4x8", 64, 3},
		{" 3 x 5 ", 15, 2},
	} {
		topo, err := ParseTopology(tc.in)
		if err != nil {
			t.Fatalf("ParseTopology(%q): %v", tc.in, err)
		}
		if got := topo.LeafCount(); got != tc.leaves {
			t.Errorf("ParseTopology(%q).LeafCount() = %d, want %d", tc.in, got, tc.leaves)
		}
		if got := topo.Depth(); got != tc.depth {
			t.Errorf("ParseTopology(%q).Depth() = %d, want %d", tc.in, got, tc.depth)
		}
	}
	for _, bad := range []string{"", "0", "-3", "4x", "4x0x2", "axb"} {
		if _, err := ParseTopology(bad); err == nil {
			t.Errorf("ParseTopology(%q) accepted", bad)
		}
	}
	if err := (&TreeNode{Leaves: 0}).Validate(); err == nil {
		t.Error("empty aggregation node validated")
	}
}

// TestRunTreeValidation pins the in-process runner's input checks.
func TestRunTreeValidation(t *testing.T) {
	clients := []Client{hashLeaf(0), hashLeaf(1)}
	global := []float64{0}
	if err := RunTree(global, clients, Uniform(2), TreeConfig{}); err == nil {
		t.Error("zero rounds accepted")
	}
	if err := RunTree(global, clients, nil, TreeConfig{Rounds: 1}); err == nil {
		t.Error("nil topology accepted")
	}
	if err := RunTree(global, clients, Uniform(3), TreeConfig{Rounds: 1}); err == nil {
		t.Error("leaf/client count mismatch accepted")
	}
	var trained int
	failing := ClientFunc(func(round int, g []float64) ([]float64, error) {
		trained++
		return nil, fmt.Errorf("boom")
	})
	if err := RunTree(global, []Client{failing, failing}, Uniform(2), TreeConfig{Rounds: 2}); err == nil {
		t.Error("training failure not surfaced")
	}
	if trained == 0 {
		t.Error("failing trainer never ran")
	}
}
