package fed

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// Bit-identity of the parallel aggregation plane. The server's Parallelism
// knob changes only scheduling — which worker encodes which broadcast,
// reads which update, folds which contribution chunk — never arithmetic:
// the exact accumulator makes sharded sums an identity, and each
// connection's codec streams are touched only by the worker holding its
// index. These tests pin that contract at every width, per codec, for the
// flat TCP server and the in-process tree; scripts/check.sh runs them
// twice (-count=2) inside the determinism gate.

// paraTrainer is a pure function of (device, round, parameter): the TCP
// runs at different widths must feed aggregation byte-identical updates.
func paraTrainer(id int) ClientFunc {
	return func(round int, global []float64) ([]float64, error) {
		out := make([]float64, len(global))
		for i, g := range global {
			h := splitmix(uint64(id)*0x100000001b3 + uint64(round)<<32 + uint64(i))
			step := math.Ldexp(float64(h>>40)/float64(1<<24), int(h%19)-9)
			if h>>39&1 == 1 {
				step = -step
			}
			out[i] = g + step
		}
		return out, nil
	}
}

// paramBits snapshots a parameter vector's exact bit patterns.
func paramBits(params []float64) []uint64 {
	bits := make([]uint64, len(params))
	for i, p := range params {
		bits[i] = math.Float64bits(p)
	}
	return bits
}

// runParallelFederation drives one TCP federation of 8 devices at the
// given worker width and returns every round's global model bits plus the
// final model's.
func runParallelFederation(t *testing.T, codec Codec, width int) [][]uint64 {
	t.Helper()
	const devices, rounds, params = 8, 3, 33
	srv := startServer(t, devices, rounds)
	srv.Codec = codec
	srv.Parallelism = width

	var wg sync.WaitGroup
	errs := make([]error, devices)
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			conn, err := DialCodec(srv.Addr(), uint32(d), codec)
			if err != nil {
				errs[d] = err
				return
			}
			defer conn.Close()
			_, errs[d] = conn.Participate(paraTrainer(d))
		}(d)
	}

	initial := make([]float64, params)
	for i := range initial {
		initial[i] = float64(i) / 7
	}
	var history [][]uint64
	final, err := srv.Serve(initial, func(round int, g []float64) {
		history = append(history, paramBits(g))
	})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for d, err := range errs {
		if err != nil {
			t.Fatalf("device %d: %v", d, err)
		}
	}
	return append(history, paramBits(final))
}

// compareHistories fails on the first bit mismatch between two runs.
func compareHistories(t *testing.T, label string, ref, got [][]uint64) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: %d aggregations, reference has %d", label, len(got), len(ref))
	}
	for r := range ref {
		for i := range ref[r] {
			if ref[r][i] != got[r][i] {
				t.Fatalf("%s: round %d param %d = %#x, reference %#x",
					label, r+1, i, got[r][i], ref[r][i])
			}
		}
	}
}

// TestParallelAggregationBitIdentical runs the same federation at widths
// 1, 2 and 8 under each codec family — dense, delta (stateful shadows),
// quant8 (stochastic per-stream rounding) — and requires every round's
// aggregated model to match the sequential run bit for bit.
func TestParallelAggregationBitIdentical(t *testing.T) {
	q8, err := QuantCodec(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, codec := range []Codec{DenseCodec(), DeltaCodec(), q8} {
		t.Run(codec.String(), func(t *testing.T) {
			ref := runParallelFederation(t, codec, 1)
			for _, width := range []int{2, 8} {
				got := runParallelFederation(t, codec, width)
				compareHistories(t, fmt.Sprintf("width %d", width), ref, got)
			}
		})
	}
}

// TestParallelAggregationTreeBitIdentical pins the same property for the
// in-process hierarchical runner: RunTree's Parallelism fans both leaf
// training and subtree sums, and every width must reproduce the width-1
// tree bit for bit.
func TestParallelAggregationTreeBitIdentical(t *testing.T) {
	topo, err := ParseTopology("2x2x2")
	if err != nil {
		t.Fatal(err)
	}
	const rounds, params = 3, 33
	clients := make([]Client, topo.LeafCount())
	for i := range clients {
		clients[i] = paraTrainer(i)
	}
	run := func(width int) [][]uint64 {
		global := make([]float64, params)
		for i := range global {
			global[i] = float64(i) / 7
		}
		var history [][]uint64
		err := RunTree(global, clients, topo, TreeConfig{
			Rounds:      rounds,
			Parallelism: width,
			Codec:       DenseCodec(),
			Hook:        func(round int, g []float64) { history = append(history, paramBits(g)) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return history
	}
	ref := run(1)
	for _, width := range []int{2, 8} {
		compareHistories(t, fmt.Sprintf("tree width %d", width), ref, run(width))
	}
}
