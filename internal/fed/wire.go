package fed

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"fedpower/internal/nn"
)

// Wire protocol of the TCP transport. Every message is a fixed 9-byte
// little-endian header followed by an optional parameter payload:
//
//	offset 0: type  (uint8)  — msgModel, msgUpdate, msgDone or msgJoin
//	offset 1: round (uint32) — 1-based federated round number
//	offset 5: count (uint32) — number of parameters that follow
//
// The payload encoding is the connection's negotiated codec (see codec.go):
// dense float32 by default, so a dense model payload for the paper's
// 687-parameter network is 2748 bytes, matching the 2.8 kB per transfer
// reported in §IV-C (the 9-byte header is protocol framing, not model
// data). The join frame reuses the header with the round field carrying the
// device's self-assigned client ID and the count field carrying the
// client's codec wire ID — zero for dense, so a dense join frame is
// byte-identical to the pre-codec protocol. It is sent once per connection
// so the server can give every device a stable aggregation slot across
// reconnects and reject codec mismatches before any model bytes move (byte
// counters exclude it — they track model-bearing traffic, the paper's
// metric).
//
// Privacy contract: the payload carries learned model parameters and
// nothing else — never raw telemetry (observations, power readings,
// traces). This is the paper's federated-learning privacy claim, and it is
// machine-checked: the privacytaint analyzer (internal/lint) treats
// message.params, the codec encoders and every Write in this package as a
// sink and proves no telemetry-derived value reaches them, with
// (*nn.Network).Params as the only sanctioned declassification. See
// DESIGN.md, "Machine-checked privacy boundary".
const (
	msgModel  = byte(1) // server → client: global model for the round
	msgUpdate = byte(2) // client → server: locally optimised model
	msgDone   = byte(3) // server → client: training finished, payload = final model
	msgJoin   = byte(4) // client → server: hello after dial; round = client ID, count = codec ID, no payload
	msgRelay  = byte(5) // aggregator → parent: exact per-parameter sub-sums + leaf count (see below)
)

// The relay frame (msgRelay) is how an interior aggregator forwards its
// subtree's round result upward. Its header count field is the parameter
// count; the payload is
//
//	offset 0: leaves (uint32) — leaf devices aggregated in this subtree
//	offset 4: blen   (uint32) — byte length of the accumulator block
//	offset 8: count consecutive nn.Accum wire encodings (nn.AppendWire)
//
// The payload deliberately bypasses the per-hop codec: a subtree result is
// an exact fixed-point sum, and re-encoding it through a float32 codec would
// round it, breaking the end-to-end bit-identity proof (DESIGN.md). The
// negotiated codec still compresses every other hop — the downward model
// broadcasts and the leaf updates, which dominate traffic. Relay bytes are
// model-bearing and count toward the transfer-size accounting.

const headerSize = 9

// The caps hostile header fields are checked against (maxWireParams,
// maxRelayLeaves, maxJoinCodec, …) live in limits.go — one constants file,
// so every decode path narrows against the same declared bounds.

type message struct {
	kind   byte
	round  int
	codec  byte // join frames only: the client's codec wire ID
	params []float64
	leaves int        // relay frames only: leaf count of the subtree
	sums   []nn.Accum // relay frames only: exact per-parameter sub-sums
}

// writeMessage frames and writes one message under this direction's codec,
// returning the number of bytes written on the wire. The params slice is
// only read; encode scratch is codec-owned, so the steady-state path
// allocates nothing.
func (cs *codecState) writeMessage(w *bufio.Writer, m message) (int, error) {
	hdr := &cs.hdr
	hdr[0] = m.kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(m.round))
	if m.kind == msgJoin {
		binary.LittleEndian.PutUint32(hdr[5:], uint32(m.codec))
		if _, err := w.Write(hdr[:]); err != nil {
			return 0, fmt.Errorf("fed: write header: %w", err)
		}
		if err := w.Flush(); err != nil {
			return headerSize, fmt.Errorf("fed: flush: %w", err)
		}
		return headerSize, nil
	}
	if m.kind == msgRelay {
		return cs.writeRelay(w, m)
	}
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(m.params)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("fed: write header: %w", err)
	}
	n := headerSize
	if len(m.params) > 0 {
		payload := cs.encodePayload(m.params)
		if _, err := w.Write(payload); err != nil {
			return n, fmt.Errorf("fed: write payload: %w", err)
		}
		n += len(payload)
	}
	if err := w.Flush(); err != nil {
		return n, fmt.Errorf("fed: flush: %w", err)
	}
	return n, nil
}

// writeRelay frames and writes one relay message: header (count = number of
// sums), then the leaf count, the accumulator-block length and the exact
// accumulator encodings. The block is built in the codec's scratch buffer,
// so the steady-state path reuses storage round over round.
func (cs *codecState) writeRelay(w *bufio.Writer, m message) (int, error) {
	if m.leaves < 1 {
		return 0, fmt.Errorf("fed: relay frame with leaf count %d", m.leaves)
	}
	hdr := &cs.hdr
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(m.sums)))
	buf := append(cs.scratch[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	for i := range m.sums {
		buf = m.sums[i].AppendWire(buf)
	}
	cs.scratch = buf[:0]
	binary.LittleEndian.PutUint32(buf, uint32(m.leaves))
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(buf)-8))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("fed: write header: %w", err)
	}
	n := headerSize
	if _, err := w.Write(buf); err != nil {
		return n, fmt.Errorf("fed: write relay payload: %w", err)
	}
	n += len(buf)
	if err := w.Flush(); err != nil {
		return n, fmt.Errorf("fed: flush: %w", err)
	}
	return n, nil
}

// readRelay reads the payload of a relay frame whose header announced count
// accumulators, reusing m's sums storage. Hostile lengths are bounded before
// any allocation, and a block that does not decode into exactly count
// accumulators consuming exactly its announced length is rejected whole — a
// partial sub-sum never survives this function.
func (cs *codecState) readRelay(r *bufio.Reader, m *message, count int) (int, error) {
	var pre [8]byte
	n := headerSize
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return n, fmt.Errorf("fed: read relay preamble: %w", err)
	}
	n += 8
	leaves := int(binary.LittleEndian.Uint32(pre[:]))
	blen := int(binary.LittleEndian.Uint32(pre[4:]))
	if leaves < 1 || leaves > maxRelayLeaves {
		return n, fmt.Errorf("fed: relay leaf count %d out of range", leaves)
	}
	if blen < count || blen > count*nn.MaxAccumWire {
		return n, fmt.Errorf("fed: relay block length %d for %d accumulators", blen, count)
	}
	buf := cs.growScratch(blen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return n, fmt.Errorf("fed: read relay payload: %w", err)
	}
	n += blen
	if cap(m.sums) < count {
		m.sums = make([]nn.Accum, count)
	}
	sums := m.sums[:count]
	rest := buf
	for i := range sums {
		used, err := nn.DecodeAccumInto(&sums[i], rest)
		if err != nil {
			return n, fmt.Errorf("fed: relay accumulator %d: %w", i, err)
		}
		rest = rest[used:]
	}
	if len(rest) != 0 {
		return n, fmt.Errorf("fed: relay block has %d trailing bytes", len(rest))
	}
	m.leaves, m.sums, m.params = leaves, sums, m.params[:0]
	return n, nil
}

// readMessage reads and decodes one framed message under this direction's
// codec into m, reusing m's params storage, and returns the number of bytes
// consumed from the wire. The decoded params are valid until the next
// readMessage on the same message value.
func (cs *codecState) readMessage(r *bufio.Reader, m *message) (int, error) {
	hdr := &cs.hdr
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("fed: read header: %w", err)
	}
	kind := hdr[0]
	if kind != msgModel && kind != msgUpdate && kind != msgDone && kind != msgJoin && kind != msgRelay {
		return headerSize, fmt.Errorf("fed: unknown message type %d", kind)
	}
	round := int(binary.LittleEndian.Uint32(hdr[1:]))
	count := int(binary.LittleEndian.Uint32(hdr[5:]))
	if kind == msgJoin {
		// The count field of a join frame carries the codec wire ID, and a
		// join never has a payload.
		if count > maxJoinCodec {
			return headerSize, fmt.Errorf("fed: join codec id %d exceeds limit", count)
		}
		m.kind, m.round, m.codec, m.params = kind, round, byte(count), m.params[:0]
		return headerSize, nil
	}
	if count > maxWireParams {
		return headerSize, fmt.Errorf("fed: parameter count %d exceeds limit", count)
	}
	if kind == msgRelay {
		m.kind, m.round, m.codec, m.leaves = kind, round, 0, 0
		return cs.readRelay(r, m, count)
	}
	m.kind, m.round, m.codec, m.leaves = kind, round, 0, 0
	n := headerSize
	if count == 0 {
		m.params = m.params[:0]
		return n, nil
	}
	buf := cs.growScratch(cs.codec.payloadSize(count))
	if _, err := io.ReadFull(r, buf); err != nil {
		return n, fmt.Errorf("fed: read payload: %w", err)
	}
	n += len(buf)
	params, err := cs.decodePayload(m.params, count, buf)
	if err != nil {
		return n, err
	}
	m.params = params
	return n, nil
}

// writeMessage frames and writes one dense-encoded message, returning the
// number of bytes written on the wire. It is the codec-unaware entry point
// of the original protocol — equivalent to a fresh dense codecState, which
// carries no cross-message state.
func writeMessage(w *bufio.Writer, m message) (int, error) {
	var cs codecState
	return cs.writeMessage(w, m)
}

// readMessage reads and decodes one dense-encoded framed message.
func readMessage(r *bufio.Reader) (message, error) {
	var cs codecState
	var m message
	_, err := cs.readMessage(r, &m)
	if err != nil {
		return message{}, err
	}
	return m, nil
}

// TransferSize returns the on-wire size in bytes of one dense model message
// for a network with n parameters — the paper's §IV-C accounting. For other
// codecs, see Codec.TransferSize.
func TransferSize(n int) int { return headerSize + nn.WireSize(n) }
