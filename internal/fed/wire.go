package fed

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"fedpower/internal/nn"
)

// Wire protocol of the TCP transport. Every message is a fixed 9-byte
// little-endian header followed by an optional parameter payload:
//
//	offset 0: type  (uint8)  — msgModel, msgUpdate, msgDone or msgJoin
//	offset 1: round (uint32) — 1-based federated round number
//	offset 5: count (uint32) — number of parameters that follow
//
// The payload encoding is the connection's negotiated codec (see codec.go):
// dense float32 by default, so a dense model payload for the paper's
// 687-parameter network is 2748 bytes, matching the 2.8 kB per transfer
// reported in §IV-C (the 9-byte header is protocol framing, not model
// data). The join frame reuses the header with the round field carrying the
// device's self-assigned client ID and the count field carrying the
// client's codec wire ID — zero for dense, so a dense join frame is
// byte-identical to the pre-codec protocol. It is sent once per connection
// so the server can give every device a stable aggregation slot across
// reconnects and reject codec mismatches before any model bytes move (byte
// counters exclude it — they track model-bearing traffic, the paper's
// metric).
//
// Privacy contract: the payload carries learned model parameters and
// nothing else — never raw telemetry (observations, power readings,
// traces). This is the paper's federated-learning privacy claim, and it is
// machine-checked: the privacytaint analyzer (internal/lint) treats
// message.params, the codec encoders and every Write in this package as a
// sink and proves no telemetry-derived value reaches them, with
// (*nn.Network).Params as the only sanctioned declassification. See
// DESIGN.md, "Machine-checked privacy boundary".
const (
	msgModel  = byte(1) // server → client: global model for the round
	msgUpdate = byte(2) // client → server: locally optimised model
	msgDone   = byte(3) // server → client: training finished, payload = final model
	msgJoin   = byte(4) // client → server: hello after dial; round = client ID, count = codec ID, no payload
)

const headerSize = 9

// maxWireParams bounds the accepted parameter count to keep a corrupt or
// hostile header from triggering a huge allocation.
const maxWireParams = 1 << 24

type message struct {
	kind   byte
	round  int
	codec  byte // join frames only: the client's codec wire ID
	params []float64
}

// writeMessage frames and writes one message under this direction's codec,
// returning the number of bytes written on the wire. The params slice is
// only read; encode scratch is codec-owned, so the steady-state path
// allocates nothing.
func (cs *codecState) writeMessage(w *bufio.Writer, m message) (int, error) {
	hdr := &cs.hdr
	hdr[0] = m.kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(m.round))
	if m.kind == msgJoin {
		binary.LittleEndian.PutUint32(hdr[5:], uint32(m.codec))
		if _, err := w.Write(hdr[:]); err != nil {
			return 0, fmt.Errorf("fed: write header: %w", err)
		}
		if err := w.Flush(); err != nil {
			return headerSize, fmt.Errorf("fed: flush: %w", err)
		}
		return headerSize, nil
	}
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(m.params)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("fed: write header: %w", err)
	}
	n := headerSize
	if len(m.params) > 0 {
		payload := cs.encodePayload(m.params)
		if _, err := w.Write(payload); err != nil {
			return n, fmt.Errorf("fed: write payload: %w", err)
		}
		n += len(payload)
	}
	if err := w.Flush(); err != nil {
		return n, fmt.Errorf("fed: flush: %w", err)
	}
	return n, nil
}

// readMessage reads and decodes one framed message under this direction's
// codec into m, reusing m's params storage, and returns the number of bytes
// consumed from the wire. The decoded params are valid until the next
// readMessage on the same message value.
func (cs *codecState) readMessage(r *bufio.Reader, m *message) (int, error) {
	hdr := &cs.hdr
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("fed: read header: %w", err)
	}
	kind := hdr[0]
	if kind != msgModel && kind != msgUpdate && kind != msgDone && kind != msgJoin {
		return headerSize, fmt.Errorf("fed: unknown message type %d", kind)
	}
	round := int(binary.LittleEndian.Uint32(hdr[1:]))
	count := int(binary.LittleEndian.Uint32(hdr[5:]))
	if kind == msgJoin {
		// The count field of a join frame carries the codec wire ID, and a
		// join never has a payload.
		if count > int(^byte(0)) {
			return headerSize, fmt.Errorf("fed: join codec id %d exceeds limit", count)
		}
		m.kind, m.round, m.codec, m.params = kind, round, byte(count), m.params[:0]
		return headerSize, nil
	}
	if count > maxWireParams {
		return headerSize, fmt.Errorf("fed: parameter count %d exceeds limit", count)
	}
	m.kind, m.round, m.codec = kind, round, 0
	n := headerSize
	if count == 0 {
		m.params = m.params[:0]
		return n, nil
	}
	buf := cs.growScratch(cs.codec.payloadSize(count))
	if _, err := io.ReadFull(r, buf); err != nil {
		return n, fmt.Errorf("fed: read payload: %w", err)
	}
	n += len(buf)
	params, err := cs.decodePayload(m.params, count, buf)
	if err != nil {
		return n, err
	}
	m.params = params
	return n, nil
}

// writeMessage frames and writes one dense-encoded message, returning the
// number of bytes written on the wire. It is the codec-unaware entry point
// of the original protocol — equivalent to a fresh dense codecState, which
// carries no cross-message state.
func writeMessage(w *bufio.Writer, m message) (int, error) {
	var cs codecState
	return cs.writeMessage(w, m)
}

// readMessage reads and decodes one dense-encoded framed message.
func readMessage(r *bufio.Reader) (message, error) {
	var cs codecState
	var m message
	_, err := cs.readMessage(r, &m)
	if err != nil {
		return message{}, err
	}
	return m, nil
}

// TransferSize returns the on-wire size in bytes of one dense model message
// for a network with n parameters — the paper's §IV-C accounting. For other
// codecs, see Codec.TransferSize.
func TransferSize(n int) int { return headerSize + nn.WireSize(n) }
