package fed

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"fedpower/internal/nn"
)

// Wire protocol of the TCP transport. Every message is a fixed 9-byte
// little-endian header followed by an optional float32 parameter payload:
//
//	offset 0: type  (uint8)  — msgModel, msgUpdate, msgDone or msgJoin
//	offset 1: round (uint32) — 1-based federated round number
//	offset 5: count (uint32) — number of float32 parameters that follow
//
// A model payload for the paper's 687-parameter network is 2748 bytes,
// matching the 2.8 kB per transfer reported in §IV-C (the 9-byte header is
// protocol framing, not model data). The join frame reuses the header with
// the round field carrying the device's self-assigned client ID; it is sent
// once per connection so the server can give every device a stable
// aggregation slot across reconnects (byte counters exclude it — they track
// model-bearing traffic, the paper's metric).
//
// Privacy contract: the payload carries learned model parameters and
// nothing else — never raw telemetry (observations, power readings,
// traces). This is the paper's federated-learning privacy claim, and it is
// machine-checked: the privacytaint analyzer (internal/lint) treats
// message.params and every Write in this package as a sink and proves no
// telemetry-derived value reaches them, with (*nn.Network).Params as the
// only sanctioned declassification. See DESIGN.md, "Machine-checked
// privacy boundary".
const (
	msgModel  = byte(1) // server → client: global model for the round
	msgUpdate = byte(2) // client → server: locally optimised model
	msgDone   = byte(3) // server → client: training finished, payload = final model
	msgJoin   = byte(4) // client → server: hello after dial; round field = client ID, no payload
)

const headerSize = 9

// maxWireParams bounds the accepted parameter count to keep a corrupt or
// hostile header from triggering a huge allocation.
const maxWireParams = 1 << 24

type message struct {
	kind   byte
	round  int
	params []float64
}

// writeMessage frames and writes one message, returning the number of bytes
// written on the wire.
func writeMessage(w *bufio.Writer, m message) (int, error) {
	var hdr [headerSize]byte
	hdr[0] = m.kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(m.round))
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(m.params)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("fed: write header: %w", err)
	}
	n := headerSize
	if len(m.params) > 0 {
		payload := nn.EncodeParams(m.params)
		if _, err := w.Write(payload); err != nil {
			return n, fmt.Errorf("fed: write payload: %w", err)
		}
		n += len(payload)
	}
	if err := w.Flush(); err != nil {
		return n, fmt.Errorf("fed: flush: %w", err)
	}
	return n, nil
}

// readMessage reads and decodes one framed message.
func readMessage(r *bufio.Reader) (message, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return message{}, fmt.Errorf("fed: read header: %w", err)
	}
	kind := hdr[0]
	if kind != msgModel && kind != msgUpdate && kind != msgDone && kind != msgJoin {
		return message{}, fmt.Errorf("fed: unknown message type %d", kind)
	}
	round := int(binary.LittleEndian.Uint32(hdr[1:]))
	count := int(binary.LittleEndian.Uint32(hdr[5:]))
	if count > maxWireParams {
		return message{}, fmt.Errorf("fed: parameter count %d exceeds limit", count)
	}
	m := message{kind: kind, round: round}
	if count > 0 {
		buf := make([]byte, nn.WireSize(count))
		if _, err := io.ReadFull(r, buf); err != nil {
			return message{}, fmt.Errorf("fed: read payload: %w", err)
		}
		m.params = make([]float64, count)
		if err := nn.DecodeParams(m.params, buf); err != nil {
			return message{}, err
		}
	}
	return m, nil
}

// TransferSize returns the on-wire size in bytes of one model message for a
// network with n parameters.
func TransferSize(n int) int { return headerSize + nn.WireSize(n) }
