package fed

import (
	"bufio"
	"errors"
	"fmt"
	"net"

	"fedpower/internal/nn"
)

// RelayClient is the client role of an interior aggregator: instead of
// training locally it resolves each broadcast round against its own child
// subtree and answers with the subtree's exact per-parameter sums and leaf
// population (a relay frame rather than an update frame). The returned sums
// are only encoded, never retained, so the relay may reuse their storage
// across rounds. A RelayRound error that is already a *RoundError keeps its
// phase — a subtree that missed its own quorum is a collect failure, which
// Participant.Run treats as retryable, not as a fatal local-training error.
type RelayClient interface {
	Client
	RelayRound(round int, global []float64) (sums []nn.Accum, leaves int, err error)
}

// Conn is a client-side connection to the aggregation server. A device
// connects once and then participates in every round until the server sends
// the final model, the connection dies, or the server drops the device for
// missing a round deadline (in which case Participant.Run reconnects and
// the device rejoins at the next broadcast).
//
// Dial, Participate and Close must be called from one goroutine.
type Conn struct {
	conn      net.Conn
	r         *bufio.Reader
	w         *bufio.Writer
	id        uint32
	round     int // last round received from the server; 0 before the first
	bytesSent int64
	bytesRecv int64

	// Per-connection codec state and a reusable inbound message (see
	// codec.go): broadcasts decode through rx into msg, updates encode
	// through tx, so the steady-state wire path allocates nothing.
	tx, rx *codecState
	msg    message
}

// Dial connects to the aggregation server at addr with client ID 0
// (anonymous: the server assigns aggregation order by arrival).
func Dial(addr string) (*Conn, error) { return DialID(addr, 0) }

// DialID connects to the aggregation server at addr and identifies as the
// given client ID. IDs give devices stable aggregation slots: the server
// orders each round's surviving updates by (ID, arrival), so a fleet using
// distinct IDs aggregates in a reproducible order no matter how connects
// and reconnects interleave.
func DialID(addr string, id uint32) (*Conn, error) {
	return DialCodec(addr, id, Codec{})
}

// DialCodec is DialID with an explicit parameter codec, which must match
// the server's — the server rejects mismatched joins by closing the
// connection.
func DialCodec(addr string, id uint32, codec Codec) (*Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fed: dial %s: %w", addr, err)
	}
	c, err := NewConnCodec(conn, id, codec)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	return c, nil
}

// NewConn wraps an established transport connection (the seam the
// fault-injection harness uses) and sends the join frame identifying this
// device to the server, using the dense codec.
func NewConn(conn net.Conn, id uint32) (*Conn, error) {
	return NewConnCodec(conn, id, Codec{})
}

// NewConnCodec is NewConn with an explicit parameter codec. The codec's
// wire ID travels in the join frame; dense joins are byte-identical to the
// pre-codec protocol.
func NewConnCodec(conn net.Conn, id uint32, codec Codec) (*Conn, error) {
	c := &Conn{
		conn: conn,
		r:    bufio.NewReader(conn),
		w:    bufio.NewWriter(conn),
		id:   id,
		tx:   newCodecState(codec, int64(streamUp)+2*int64(id)),
		rx:   newCodecState(codec, int64(streamDown)+2*int64(id)),
	}
	// The join handshake is protocol framing, not a model transfer, so it
	// stays out of the byte counters.
	if _, err := c.tx.writeMessage(c.w, message{kind: msgJoin, round: int(id), codec: codec.id}); err != nil {
		return nil, roundError(0, PhaseJoin, err)
	}
	return c, nil
}

// Close tears down the connection.
func (c *Conn) Close() error { return c.conn.Close() }

// ID returns the client ID sent in the join frame.
func (c *Conn) ID() uint32 { return c.id }

// Round returns the last round number received from the server, 0 before
// the first broadcast arrives.
func (c *Conn) Round() int { return c.round }

// BytesSent returns the total model-bearing bytes this client has written
// to the server.
func (c *Conn) BytesSent() int64 { return c.bytesSent }

// BytesReceived returns the total model-bearing bytes this client has read
// from the server.
func (c *Conn) BytesReceived() int64 { return c.bytesRecv }

// Participate runs the client side of the protocol to completion: for every
// round it receives the global model, invokes the local trainer, and sends
// the result back. It returns the final global model from the server's done
// message. The global parameter slice passed to the trainer is reused
// across rounds (like a RoundHook's argument) — the trainer must copy
// anything it retains past the call; its own return value is only encoded,
// never retained.
//
// Every failure is returned as a *RoundError carrying the round number and
// protocol phase, so callers can tell a server teardown mid-round
// (PhaseReceive, round R) from a local training failure (PhaseTrain) or a
// lost update (PhaseSend) — the distinction Participant.Run uses to decide
// whether reconnecting is worthwhile.
func (c *Conn) Participate(client Client) ([]float64, error) {
	for {
		n, err := c.rx.readMessage(c.r, &c.msg)
		if err != nil {
			return nil, roundError(c.round, PhaseReceive, err)
		}
		c.bytesRecv += int64(n)
		m := &c.msg
		switch m.kind {
		case msgDone:
			// The reusable message backs m.params; hand the caller its own
			// copy.
			return append([]float64(nil), m.params...), nil
		case msgModel:
			c.round = m.round
			var reply message
			if relay, ok := client.(RelayClient); ok {
				sums, leaves, err := relay.RelayRound(m.round, m.params)
				if err != nil {
					var re *RoundError
					if errors.As(err, &re) {
						// The subtree's own round failed (e.g. below quorum):
						// keep the phase so the caller retries next round.
						return nil, err
					}
					return nil, roundError(m.round, PhaseTrain, fmt.Errorf("relay round: %w", err))
				}
				reply = message{kind: msgRelay, round: m.round, sums: sums, leaves: leaves}
			} else {
				updated, err := client.TrainRound(m.round, m.params)
				if err != nil {
					return nil, roundError(m.round, PhaseTrain, fmt.Errorf("local training: %w", err))
				}
				reply = message{kind: msgUpdate, round: m.round, params: updated}
			}
			sent, err := c.tx.writeMessage(c.w, reply)
			c.bytesSent += int64(sent)
			if err != nil {
				return nil, roundError(m.round, PhaseSend, err)
			}
		default:
			return nil, roundError(c.round, PhaseReceive,
				fmt.Errorf("unexpected message type %d from server", m.kind))
		}
	}
}
