package fed

import (
	"bufio"
	"fmt"
	"net"
)

// Conn is a client-side connection to the aggregation server. A device
// connects once and then participates in every round until the server sends
// the final model.
type Conn struct {
	conn      net.Conn
	r         *bufio.Reader
	w         *bufio.Writer
	bytesSent int64
	bytesRecv int64
}

// Dial connects to the aggregation server at addr.
func Dial(addr string) (*Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fed: dial %s: %w", addr, err)
	}
	return &Conn{
		conn: conn,
		r:    bufio.NewReader(conn),
		w:    bufio.NewWriter(conn),
	}, nil
}

// Close tears down the connection.
func (c *Conn) Close() error { return c.conn.Close() }

// BytesSent returns the total bytes this client has written to the server.
func (c *Conn) BytesSent() int64 { return c.bytesSent }

// BytesReceived returns the total bytes this client has read from the
// server.
func (c *Conn) BytesReceived() int64 { return c.bytesRecv }

// Participate runs the client side of the protocol to completion: for every
// round it receives the global model, invokes the local trainer, and sends
// the result back. It returns the final global model from the server's done
// message. The trainer receives a private copy of the global parameters and
// its return value is not retained.
func (c *Conn) Participate(client Client) ([]float64, error) {
	for {
		m, err := readMessage(c.r)
		if err != nil {
			return nil, err
		}
		c.bytesRecv += int64(TransferSize(len(m.params)))
		switch m.kind {
		case msgDone:
			return m.params, nil
		case msgModel:
			updated, err := client.TrainRound(m.round, m.params)
			if err != nil {
				return nil, fmt.Errorf("fed: local training round %d: %w", m.round, err)
			}
			n, err := writeMessage(c.w, message{kind: msgUpdate, round: m.round, params: updated})
			c.bytesSent += int64(n)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("fed: unexpected message type %d from server", m.kind)
		}
	}
}
