package fed

// Wire-path benchmarks at the paper's model size (687 parameters — a
// 2757 B dense frame, §IV-C). The steady-state contract is 0 allocs/op for
// every codec: encode scratch, decode buffers and the reusable message all
// belong to the per-connection codec state. scripts/benchdiff.sh gates the
// dense pair against BENCH_baseline.json.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"fedpower/internal/nn"
)

// benchCodecs enumerates the wire codecs by flag name.
func benchCodecs(b *testing.B) []Codec {
	b.Helper()
	q8, err := QuantCodec(8, 1)
	if err != nil {
		b.Fatal(err)
	}
	q16, err := QuantCodec(16, 1)
	if err != nil {
		b.Fatal(err)
	}
	return []Codec{DenseCodec(), DeltaCodec(), q8, q16}
}

// benchParams builds a paper-sized parameter vector.
func benchParams() []float64 {
	params := make([]float64, paperParams)
	rng := newSplitmixForTest(11)
	for i := range params {
		params[i] = rng.norm()
	}
	return params
}

func BenchmarkWireEncode(b *testing.B) {
	for _, codec := range benchCodecs(b) {
		b.Run(codec.String(), func(b *testing.B) {
			cs := newCodecState(codec, streamDown)
			params := benchParams()
			msg := message{kind: msgModel, round: 1, params: params}
			w := bufio.NewWriter(io.Discard)
			if _, err := cs.writeMessage(w, msg); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(codec.TransferSize(len(params))))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cs.writeMessage(w, msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWireDecode(b *testing.B) {
	for _, codec := range benchCodecs(b) {
		b.Run(codec.String(), func(b *testing.B) {
			enc := newCodecState(codec, streamDown)
			dec := newCodecState(codec, streamDown)
			params := benchParams()

			var frame bytes.Buffer
			w := bufio.NewWriter(&frame)
			if _, err := enc.writeMessage(w, message{kind: msgModel, round: 1, params: params}); err != nil {
				b.Fatal(err)
			}
			wire := frame.Bytes()

			// Replaying one frame keeps the decoder hot without re-encoding;
			// for the stateful codecs it advances the shadow by the same
			// delta each time, which exercises the identical code path.
			br := bytes.NewReader(wire)
			r := bufio.NewReader(br)
			var m message
			if _, err := dec.readMessage(r, &m); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(wire)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				br.Reset(wire)
				r.Reset(br)
				if _, err := dec.readMessage(r, &m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTreeAggregate measures one interior-node aggregation step at the
// paper's model size: folding the exact relay sums of N child subtrees and
// rounding the mean, the per-round cost that bounds a single aggregator's
// fan-out. Steady state allocates nothing — the accumulator vector and the
// output model are reused across rounds, as in Server.Serve and RelayRound.
func BenchmarkTreeAggregate(b *testing.B) {
	for _, fanout := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("fanout%d", fanout), func(b *testing.B) {
			params := benchParams()
			contribs := make([]contribution, fanout)
			for c := range contribs {
				sums := make([]nn.Accum, len(params))
				nn.AddParamsAccum(sums, params)
				contribs[c] = contribution{sums: sums, leaves: 25}
			}
			acc := make([]nn.Accum, len(params))
			global := make([]float64, len(params))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				total := accumulate(acc, contribs)
				nn.MeanAccum(global, acc, total)
			}
		})
	}
}

// BenchmarkServerRound measures one complete federated round — admit,
// broadcast encode+write, collect read+decode, exact accumulate, mean —
// over real TCP loopback with 8 in-process devices at the paper's model
// size. The steady-state contract is 0 allocs/op across the whole plane:
// the session's persistent round workers, cap-guarded scratch and
// per-connection codec state mean a committed round touches the heap not
// at all (the done-frame copies at protocol end amortise to zero).
// scripts/benchdiff.sh gates both sub-benchmarks' allocs at exactly 0.
//
// All deadlines are zero by design: SetReadDeadline/SetWriteDeadline
// allocate runtime timers, and this benchmark isolates the aggregation
// plane, not the fault plane.
func BenchmarkServerRound(b *testing.B) {
	q8, err := QuantCodec(8, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name  string
		codec Codec
	}{
		{"dense", DenseCodec()},
		{"quant8", q8},
	} {
		b.Run(bc.name, func(b *testing.B) { benchServerRound(b, bc.codec) })
	}
}

func benchServerRound(b *testing.B, codec Codec) {
	const devices = 8
	// Round 1 warms the pool, scratch and codec states; the timer restarts
	// from the first aggregation hook so exactly b.N steady-state rounds
	// are measured.
	srv, err := NewServer("127.0.0.1:0", devices, b.N+1)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	srv.Codec = codec

	initial := benchParams()

	var wg sync.WaitGroup
	clientErrs := make([]error, devices)
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			conn, err := DialCodec(srv.Addr(), uint32(d), codec)
			if err != nil {
				clientErrs[d] = err
				return
			}
			defer func() { _ = conn.Close() }()
			// The trainer reuses one buffer: Participate only encodes the
			// returned slice, so the client side of a round is allocation
			// free too (testing.B counts every goroutine's allocations).
			buf := make([]float64, len(initial))
			_, clientErrs[d] = conn.Participate(ClientFunc(func(round int, global []float64) ([]float64, error) {
				copy(buf, global)
				return buf, nil
			}))
		}(d)
	}

	b.SetBytes(2 * devices * int64(codec.TransferSize(len(initial))))
	b.ReportAllocs()
	_, serveErr := srv.Serve(initial, func(round int, g []float64) {
		if round == 1 {
			b.ResetTimer()
		}
	})
	b.StopTimer()
	wg.Wait()
	if serveErr != nil {
		b.Fatal(serveErr)
	}
	for d, err := range clientErrs {
		if err != nil {
			b.Fatalf("device %d: %v", d, err)
		}
	}
}

func BenchmarkWireRoundTrip(b *testing.B) {
	for _, codec := range benchCodecs(b) {
		b.Run(codec.String(), func(b *testing.B) {
			enc := newCodecState(codec, streamDown)
			dec := newCodecState(codec, streamDown)
			params := benchParams()
			msg := message{kind: msgModel, round: 1, params: params}

			var frame bytes.Buffer
			w := bufio.NewWriter(&frame)
			br := bytes.NewReader(nil)
			r := bufio.NewReader(br)
			var m message
			roundTrip := func() {
				frame.Reset()
				w.Reset(&frame)
				if _, err := enc.writeMessage(w, msg); err != nil {
					b.Fatal(err)
				}
				br.Reset(frame.Bytes())
				r.Reset(br)
				if _, err := dec.readMessage(r, &m); err != nil {
					b.Fatal(err)
				}
			}
			roundTrip()
			b.SetBytes(int64(codec.TransferSize(len(params))))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				roundTrip()
			}
		})
	}
}
