package fed

import (
	"bufio"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"fedpower/internal/nn"
	"fedpower/internal/par"
)

// Server is the central aggregation server of Fig. 1 over TCP. It waits for
// a fixed number of clients, then drives R rounds of the FedAvg protocol:
// broadcast the global model, collect locally optimised models, average.
// Aggregation is unweighted — every client carries the same weight, as in
// §III-B.
//
// Unlike the paper's idealised synchronous protocol, the server degrades
// gracefully: every I/O phase is bounded by a deadline, a client that
// misses its deadline (or whose connection dies) is dropped from the round,
// and the round commits as long as at least Quorum updates arrived —
// averaging only the survivors, so a dead device's stale parameters never
// reach the global model. Dropped devices may reconnect at any time and
// rejoin at the next broadcast; the accept loop keeps running for the whole
// training session.
type Server struct {
	ln         net.Listener
	numClients int
	rounds     int

	// RoundTimeout bounds how long the server waits for any single
	// client's update within a round; zero means wait forever. Because
	// aggregation is synchronous, one hung device would otherwise stall the
	// whole federation indefinitely.
	RoundTimeout time.Duration
	// WriteTimeout bounds each broadcast write per client; zero means no
	// deadline. A client with a full TCP window (dead but not closed)
	// otherwise wedges the broadcast.
	WriteTimeout time.Duration
	// JoinTimeout bounds how long an accepted connection may take to send
	// its join frame; zero means wait forever. The join read is serialised
	// in the accept loop, so a silent port-scanner connection would
	// otherwise block later joiners.
	JoinTimeout time.Duration
	// Quorum is the minimum number of client updates a round needs to
	// commit; 0 means all clients (the paper's fully synchronous setting).
	// A round that ends with fewer survivors aborts the protocol.
	Quorum int
	// Clock supplies the current time for deadline arithmetic; nil means
	// time.Now. Tests inject a fake to pin deadline placement.
	Clock func() time.Time
	// OnDrop, when non-nil, observes every dropped client: its ID, the
	// round it was lost in, and the error that killed it. Called from the
	// Serve goroutine only, never concurrently.
	OnDrop func(id uint32, round int, err error)
	// Codec selects the parameter encoding of every connection (codec.go).
	// The zero value is the dense float32 codec — the paper's wire format.
	// Joins advertising a different codec are rejected before any model
	// bytes move, so a mixed fleet fails fast instead of desynchronising.
	Codec Codec
	// Parallelism bounds the round workers: how many per-connection
	// broadcast encodes and collect reads run concurrently, and how many
	// shards the exact accumulation folds on. 0 (the default) uses one
	// worker per pooled connection for the I/O phases — every deadline
	// window overlaps, the historical semantics — and GOMAXPROCS shards
	// for accumulation; N > 0 caps both (note that capping I/O below the
	// pool size stacks slow clients' deadline windows back to back).
	// Aggregation results are bit-identical at every width: the exact
	// accumulator is order- and grouping-invariant, and each connection's
	// codec state is only ever touched by the worker holding its index
	// (TestParallelAggregationBitIdentical pins this in the determinism
	// gate).
	Parallelism int

	mu        sync.Mutex
	bytesSent int64
	bytesRecv int64
	drops     int64
	rejoins   int64
	leaves    int64
	acceptErr error
}

// NewServer listens on addr (e.g. "127.0.0.1:0") for numClients clients and
// will run the given number of rounds. Fault-tolerance knobs (deadlines,
// quorum, drop observer) are fields set before Serve.
func NewServer(addr string, numClients, rounds int) (*Server, error) {
	if numClients <= 0 {
		return nil, fmt.Errorf("fed: client count %d must be positive", numClients)
	}
	if rounds <= 0 {
		return nil, fmt.Errorf("fed: round count %d must be positive", rounds)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fed: listen %s: %w", addr, err)
	}
	return &Server{ln: ln, numClients: numClients, rounds: rounds}, nil
}

// Addr returns the server's listen address, useful when addr was ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the federation down: it closes the listener, and a Serve in
// progress aborts with a *RoundError at the next round boundary (a server
// that can never re-admit a dropped device has lost its rejoin guarantee,
// so running on silently would be lying about fault tolerance). Serve also
// closes the listener itself on return, so Close after Serve merely
// reports the double close.
func (s *Server) Close() error { return s.ln.Close() }

// BytesSent returns the total bytes written to clients so far.
func (s *Server) BytesSent() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesSent
}

// BytesReceived returns the total payload-bearing bytes read from clients.
func (s *Server) BytesReceived() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesRecv
}

// Drops returns how many client connections the server has dropped for
// deadline misses, protocol violations or transport errors.
func (s *Server) Drops() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drops
}

// Rejoins returns how many connections joined after the initial cohort —
// dropped devices that reconnected.
func (s *Server) Rejoins() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejoins
}

// Leaves returns the leaf-device count of the last committed round: the
// number of actual devices whose updates reached this server, directly or
// through relaying aggregators. In a flat federation it equals the surviving
// client count; in a tree it is the surviving subtree population.
func (s *Server) Leaves() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leaves
}

// now returns the injected clock's reading.
func (s *Server) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	return time.Now()
}

// quorum returns the effective per-round quorum.
func (s *Server) quorum() int {
	if s.Quorum <= 0 {
		return s.numClients
	}
	return s.Quorum
}

type serverConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	id   uint32 // client ID from the join frame
	seq  int    // join sequence, tiebreak for duplicate IDs

	// Per-connection codec state and a reusable inbound message: broadcast
	// encodes through tx, collect decodes through rx into msg, so the
	// steady-state wire path allocates nothing. msg.params is valid until
	// the next collect on this connection — aggregation finishes within the
	// round, so nothing retains it longer.
	tx, rx *codecState
	msg    message
}

// acceptLoop owns the listener: it accepts connections, reads each one's
// join frame (bounded by JoinTimeout), and delivers joined clients to Serve
// through the joins channel. It exits — closing the channel — when the
// listener closes, which Serve does on return; the accept error is parked
// for Serve to read. Join reads are serialised here on purpose: a join is
// one 9-byte frame, and a single reader keeps join sequence numbers
// deterministic.
func (s *Server) acceptLoop(joins chan<- *serverConn) {
	defer close(joins)
	for seq := 0; ; seq++ {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			s.acceptErr = err
			s.mu.Unlock()
			return
		}
		sc, err := s.readJoin(conn, seq)
		if err != nil {
			// A connection that cannot even say hello is not a client.
			_ = conn.Close()
			seq--
			continue
		}
		joins <- sc
	}
}

// readJoin reads and validates the join frame of a fresh connection.
func (s *Server) readJoin(conn net.Conn, seq int) (*serverConn, error) {
	if s.JoinTimeout > 0 {
		if err := conn.SetReadDeadline(s.now().Add(s.JoinTimeout)); err != nil {
			return nil, err
		}
	}
	sc := &serverConn{
		conn: conn,
		r:    bufio.NewReader(conn),
		w:    bufio.NewWriter(conn),
		seq:  seq,
	}
	m, err := readMessage(sc.r)
	if err != nil {
		return nil, err
	}
	if m.kind != msgJoin {
		return nil, fmt.Errorf("fed: first frame is message type %d, want join", m.kind)
	}
	if m.codec != s.Codec.id {
		// Codec negotiation: both directions of a connection must use the
		// server's codec, or the shadow states desynchronise silently.
		return nil, fmt.Errorf("fed: client codec id %d, server runs %s", m.codec, s.Codec)
	}
	if s.JoinTimeout > 0 {
		// Clear the join deadline; round deadlines are set per phase.
		if err := conn.SetReadDeadline(time.Time{}); err != nil {
			return nil, err
		}
	}
	sc.id = uint32(m.round)
	sc.tx = newCodecState(s.Codec, int64(streamDown)+2*int64(sc.id))
	sc.rx = newCodecState(s.Codec, int64(streamUp)+2*int64(sc.id))
	return sc, nil
}

// sortPool orders the client pool by (ID, join sequence), giving every
// device a stable aggregation slot: with distinct IDs the average is summed
// in the same order no matter how connects and reconnects interleaved, so
// runs replay bit-identically.
func sortPool(pool []*serverConn) {
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].id != pool[j].id {
			return pool[i].id < pool[j].id
		}
		return pool[i].seq < pool[j].seq
	})
}

// Round-worker phases: the session's persistent pool runs one task bound
// at construction, and the coordinator selects the work by setting phase
// before each Pool.Run (per-phase closures would allocate every round, and
// the construction-bound literal is what the slotrace analyzer checks).
const (
	phaseBroadcast = iota // encode + write bmsg to pool[i]
	phaseCollect          // read + validate pool[i]'s round result
	phaseAccum            // fold contribution chunk i into shards[i]
)

// roundStats batches one round's counter deltas so the round loop takes
// the stats mutex once per round instead of once per broadcast, per drop,
// per rejoin and per leaf-count publish — the parallel phases never touch
// s.mu at all. Accumulated by the session's coordinating goroutine only;
// flushStats publishes it.
type roundStats struct {
	bytesSent int64
	bytesRecv int64
	drops     int64
	rejoins   int64
	leaves    int64
	leavesSet bool
}

// session is one Serve invocation's connection state: the accept loop's
// join channel, the live client pool, the persistent round workers and the
// session-owned scratch they write into. Server.Serve and fed.Aggregator
// both run their child-facing protocol through it — an aggregator is a
// Server session whose round results flow upward instead of into a mean.
//
// All scratch is cap-guarded: it grows to the high-water pool size once
// and is reused every round after, so a steady-state round performs zero
// allocations (BenchmarkServerRound gates this). The phase inputs (phase,
// bmsg, round, numParams, nshards) are written by the coordinating
// goroutine strictly before Pool.Run and the slot outputs read strictly
// after it; the pool's release/join edges order both.
type session struct {
	s     *Server
	joins chan *serverConn
	pool  []*serverConn

	workers *par.Pool
	phase   int
	bmsg    message // broadcast phase: the frame fanned out to the pool
	round   int     // collect phase: the round being gathered
	numPar  int     // collect phase: expected parameter count
	nshards int     // accum phase: number of contribution chunks

	errs        []error        // per-connection phase error (own slot)
	ns          []int          // per-connection bytes moved (own slot)
	updates     []contribution // per-connection collect result (own slot)
	contribs    []contribution // survivors, in pool (ID, seq) order
	shards      [][]nn.Accum   // per-chunk exact partial sums (own slot)
	chunkLeaves []int          // per-chunk leaf totals (own slot)
	stats       roundStats
}

// startSession spawns the accept loop, binds the persistent round workers'
// task, and returns the session handle. The caller must call close exactly
// once when the protocol is decided.
//
// The task literal is the session's only fan-out point, and it keeps the
// own-slot discipline slotrace enforces: every write lands in a slot
// selected by the task index (errs[i], ns[i], updates[i], chunkLeaves[i])
// or in connection state reached through the own-slot pool entry — each
// connection's codec shadows, scratch and reusable message belong to
// exactly one index per phase, which is why parallel encode draws each
// stochastic codec's rounding sequence exactly as the sequential loop
// would.
func (s *Server) startSession() *session {
	ses := s.newSession()
	go s.acceptLoop(ses.joins)
	return ses
}

// newSession builds the session state — worker pool, join channel, scratch
// — without starting the accept loop, the seam the collect fuzz harness
// uses to drive a session over hand-built connections.
func (s *Server) newSession() *session {
	ses := &session{s: s, joins: make(chan *serverConn, s.numClients)}
	ses.workers = par.NewPool(func(i int) {
		switch ses.phase {
		case phaseBroadcast:
			sc := ses.pool[i]
			if s.WriteTimeout > 0 {
				if err := sc.conn.SetWriteDeadline(s.now().Add(s.WriteTimeout)); err != nil {
					ses.ns[i], ses.errs[i] = 0, err
					return
				}
			}
			ses.ns[i], ses.errs[i] = sc.tx.writeMessage(sc.w, ses.bmsg)
		case phaseCollect:
			ses.updates[i], ses.ns[i], ses.errs[i] = s.collectOne(ses.pool[i], ses.round, ses.numPar)
		case phaseAccum:
			lo, hi := chunkBounds(i, len(ses.contribs), ses.nshards)
			ses.chunkLeaves[i] = accumulate(ses.shards[i], ses.contribs[lo:hi])
		}
	})
	return ses
}

// close releases all connection state: it closes the listener to stop the
// accept loop, retires the round workers, drains the join channel, and
// closes every pooled connection. The protocol outcome is already decided,
// so close errors carry no signal.
func (ses *session) close() {
	_ = ses.s.ln.Close()
	ses.workers.Close()
	for sc := range ses.joins {
		_ = sc.conn.Close()
	}
	for _, sc := range ses.pool {
		_ = sc.conn.Close()
	}
}

// growScratch sizes the per-connection phase slots for a pool of n.
func (ses *session) growScratch(n int) {
	if cap(ses.errs) < n {
		ses.errs = make([]error, n)
		ses.ns = make([]int, n)
		ses.updates = make([]contribution, n)
	}
	ses.errs = ses.errs[:n]
	ses.ns = ses.ns[:n]
	ses.updates = ses.updates[:n]
}

// flushStats publishes the round's batched counter deltas under one
// acquisition of the stats mutex and clears them.
func (ses *session) flushStats() {
	st := &ses.stats
	s := ses.s
	s.mu.Lock()
	s.bytesSent += st.bytesSent
	s.bytesRecv += st.bytesRecv
	s.drops += st.drops
	s.rejoins += st.rejoins
	if st.leavesSet {
		s.leaves = st.leaves
	}
	s.mu.Unlock()
	*st = roundStats{}
}

// waitCohort blocks until the initial cohort is fully joined — the paper's
// setting, all devices present at the start.
func (ses *session) waitCohort() error {
	for len(ses.pool) < ses.s.numClients {
		sc, ok := <-ses.joins
		if !ok {
			return fmt.Errorf("fed: accept: %w", ses.s.takeAcceptErr())
		}
		ses.pool = append(ses.pool, sc)
	}
	sortPool(ses.pool)
	return nil
}

// admit moves reconnected clients into the pool; alive is false once the
// listener is down and the rejoin guarantee is gone. Rejoins are batched
// into the round's stats delta, not published per connection.
func (ses *session) admit() (alive bool) {
	for {
		select {
		case sc, ok := <-ses.joins:
			if !ok {
				return false
			}
			ses.pool = append(ses.pool, sc)
			ses.stats.rejoins++
			sortPool(ses.pool)
		default:
			return true
		}
	}
}

// drop removes a client from the protocol: close, count, observe. Called
// from the coordinating goroutine only, after the phase workers joined.
func (ses *session) drop(sc *serverConn, round int, err error) {
	_ = sc.conn.Close()
	ses.stats.drops++
	if ses.s.OnDrop != nil {
		ses.s.OnDrop(sc.id, round, err)
	}
}

// broadcast writes m to every pooled client on the persistent round
// workers (a slow client must not serialise the round start), each write
// bounded by WriteTimeout, and keeps only the clients the write reached.
// Unreachable clients are dropped, not fatal: whether the round can
// proceed is the caller's quorum decision.
func (ses *session) broadcast(m message, round int) {
	s := ses.s
	n := len(ses.pool)
	ses.growScratch(n)
	ses.bmsg = m
	ses.phase = phaseBroadcast
	ses.workers.Run(s.ioWidth(n), n)
	ses.bmsg = message{} // do not retain the caller's params past the phase
	for _, nb := range ses.ns {
		ses.stats.bytesSent += int64(nb)
	}
	alive := ses.pool[:0]
	for i, sc := range ses.pool {
		if ses.errs[i] != nil {
			ses.drop(sc, round, &RoundError{Round: round, Phase: PhaseBroadcast, Client: int(sc.id), Err: ses.errs[i]})
			continue
		}
		alive = append(alive, sc)
	}
	ses.pool = alive
}

// collect reads one round result from every pooled client on the round
// workers, each read bounded by RoundTimeout. It keeps the surviving pool,
// stores the survivors' contributions in pool (ID, seq) order in the
// session's reusable contribs slice, and returns them with the first
// failure for quorum-abort diagnostics. Failed clients — deadline misses,
// dead sockets, wrong round, wrong shape, malformed relay blocks — are
// dropped; their connections are closed so a straggler's late frame can
// never desynchronise a later round (the device rejoins with a fresh
// connection instead). Byte accounting sums the bytes each complete,
// accepted result actually put on the wire — under the dense codec exactly
// TransferSize per leaf survivor, under the compressed codecs their true
// (smaller) frame sizes, and for relays their exact-accumulator frames.
func (ses *session) collect(round, numParams int) ([]contribution, error) {
	n := len(ses.pool)
	ses.growScratch(n)
	ses.round, ses.numPar = round, numParams
	ses.phase = phaseCollect
	ses.workers.Run(ses.s.ioWidth(n), n)

	alive := ses.pool[:0]
	contribs := ses.contribs[:0]
	var firstErr error
	for i, sc := range ses.pool {
		if ses.errs[i] != nil {
			wrapped := &RoundError{Round: round, Phase: PhaseCollect, Client: int(sc.id), Err: ses.errs[i]}
			if firstErr == nil {
				firstErr = wrapped
			}
			ses.drop(sc, round, wrapped)
			continue
		}
		alive = append(alive, sc)
		contribs = append(contribs, ses.updates[i])
		ses.stats.bytesRecv += int64(ses.ns[i])
	}
	ses.pool = alive
	ses.contribs = contribs
	return contribs, firstErr
}

// accumulate folds the round's contributions into acc by sharding them
// across the round workers: each worker folds a contiguous chunk into its
// own shard exactly, and the shards merge in chunk order. Because the
// exact accumulator is associative in the strongest sense — every partial
// sum is the true fixed-point sum of its inputs, with no rounding anywhere
// — the sharded result is bit-identical to the sequential fold at every
// width, an arithmetic identity rather than a tolerance. contribs must be
// ses.contribs (the collect output), which the accum phase re-slices by
// chunk.
func (ses *session) accumulate(acc []nn.Accum, contribs []contribution) int {
	k := ses.s.aggWidth(len(contribs))
	if k <= 1 {
		return accumulate(acc, contribs)
	}
	if cap(ses.shards) < k {
		ses.shards = make([][]nn.Accum, k)
		ses.chunkLeaves = make([]int, k)
	}
	ses.shards = ses.shards[:k]
	ses.chunkLeaves = ses.chunkLeaves[:k]
	for j := range ses.shards {
		if len(ses.shards[j]) != len(acc) {
			ses.shards[j] = make([]nn.Accum, len(acc))
		}
	}
	ses.nshards = k
	ses.phase = phaseAccum
	ses.workers.Run(k, k)
	total := 0
	for i := range acc {
		acc[i].Reset()
	}
	for j := 0; j < k; j++ {
		nn.MergeAccum(acc, ses.shards[j])
		total += ses.chunkLeaves[j]
	}
	return total
}

// chunkBounds splits n items into k contiguous chunks and returns chunk
// i's half-open range. Chunks differ in size by at most one and preserve
// order, so the shard merge replays the sequential fold's grouping.
func chunkBounds(i, n, k int) (lo, hi int) {
	return i * n / k, (i + 1) * n / k
}

// ioWidth is the worker width of the I/O phases over n connections:
// unbounded by default so every deadline window overlaps.
func (s *Server) ioWidth(n int) int {
	w := s.Parallelism
	if w <= 0 || w > n {
		w = n
	}
	return w
}

// aggWidth is the shard count of the accumulation phase over n
// contributions: CPU-bound work, so it defaults to GOMAXPROCS.
func (s *Server) aggWidth(n int) int {
	w := s.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// contribution is one pooled connection's round result: either a leaf
// device's parameter vector (params set, leaves == 1) or a relaying
// aggregator's exact subtree sums (sums set, leaves = subtree population).
// Both storages are backed by the connection's reusable inbound message and
// stay valid until its next read — aggregation completes within the round.
type contribution struct {
	params []float64
	sums   []nn.Accum
	leaves int
}

// accumulate folds contributions into acc — resetting it first — and
// returns the total leaf count. Leaf parameters are added exactly and
// subtree sums merged exactly, so the result is the exact multiset sum over
// every leaf device below this node, independent of topology. It is both
// the sequential reference path and the per-shard kernel of the parallel
// fold (session.accumulate), and the round's aggregation hot path: the
// static proof below guarantees it never allocates.
//
//fedlint:allocfree
func accumulate(acc []nn.Accum, contribs []contribution) int {
	for i := range acc {
		acc[i].Reset()
	}
	total := 0
	for _, c := range contribs {
		if c.sums != nil {
			nn.MergeAccum(acc, c.sums)
		} else {
			nn.AddParamsAccum(acc, c.params)
		}
		total += c.leaves
	}
	return total
}

// Serve accepts the initial cohort of clients, runs all rounds starting
// from the initial global model, and returns the final global model. The
// hook, if non-nil, runs after every aggregation.
//
// Round lifecycle: (1) admit any reconnected devices into the pool,
// aborting if the listener has died (see Close);
// (2) broadcast θ_r, dropping clients whose write fails or times out;
// (3) collect one update per client under RoundTimeout, dropping clients
// that miss the deadline, answer for the wrong round, or die; (4) if at
// least Quorum updates survived, average exactly those survivors into the
// global model, else abort. Serve returns early only when a round cannot
// reach quorum (or setup fails); individual client failures are absorbed.
//
// A client may be a leaf device (msgUpdate) or a relaying aggregator
// (msgRelay) — the mean is taken over leaf devices, with each relayed
// subtree entering the sum exactly, so any aggregation tree reproduces the
// flat federation's model bit-for-bit (DESIGN.md, "Hierarchical
// aggregation"). Quorum counts direct children: a subtree that misses its
// deadline drops from this node's quorum, not from the global round.
func (s *Server) Serve(initial []float64, hook RoundHook) ([]float64, error) {
	ses := s.startSession()
	defer ses.close()

	quorum := s.quorum()
	if quorum > s.numClients {
		return nil, fmt.Errorf("fed: quorum %d exceeds client count %d", quorum, s.numClients)
	}
	if err := ses.waitCohort(); err != nil {
		return nil, err
	}

	global := append([]float64(nil), initial...)
	acc := make([]nn.Accum, len(global))

	for round := 1; round <= s.rounds; round++ {
		contribs, rerr := s.round(ses, round, global)
		if rerr != nil {
			ses.flushStats()
			return nil, rerr
		}
		total := ses.accumulate(acc, contribs)
		ses.stats.leaves, ses.stats.leavesSet = int64(total), true
		ses.flushStats()
		nn.MeanAccum(global, acc, total)
		if hook != nil {
			hook(round, global)
		}
	}

	// Final model delivery is best-effort per client: a device that died
	// after the last aggregation cannot invalidate the result.
	ses.broadcast(message{kind: msgDone, round: s.rounds, params: global}, s.rounds)
	ses.flushStats()
	return global, nil
}

// round drives one admit → broadcast → collect cycle over the session and
// returns the surviving contributions, or a *RoundError when the round
// cannot reach quorum (shared verbatim between the root Serve and interior
// aggregators, whose rounds differ only in what happens to the result).
func (s *Server) round(ses *session, round int, global []float64) ([]contribution, error) {
	quorum := s.quorum()
	if !ses.admit() {
		return nil, &RoundError{Round: round, Phase: PhaseBroadcast, Client: -1,
			Err: fmt.Errorf("listener down, shutting down: %w", s.takeAcceptErr())}
	}
	if len(ses.pool) < quorum {
		return nil, &RoundError{Round: round, Phase: PhaseBroadcast, Client: -1,
			Err: fmt.Errorf("%d live clients below quorum %d", len(ses.pool), quorum)}
	}

	ses.broadcast(message{kind: msgModel, round: round, params: global}, round)
	if len(ses.pool) < quorum {
		return nil, &RoundError{Round: round, Phase: PhaseBroadcast, Client: -1,
			Err: fmt.Errorf("%d clients reachable after broadcast, quorum %d", len(ses.pool), quorum)}
	}

	contribs, firstErr := ses.collect(round, len(global))
	if len(contribs) < quorum {
		return nil, &RoundError{Round: round, Phase: PhaseCollect, Client: -1,
			Err: fmt.Errorf("%d of %d updates arrived, quorum %d: %w",
				len(contribs), s.numClients, quorum, firstErr)}
	}
	return contribs, nil
}

// takeAcceptErr returns the parked accept-loop error.
func (s *Server) takeAcceptErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.acceptErr == nil {
		return fmt.Errorf("listener closed")
	}
	return s.acceptErr
}

// collectOne reads and validates a single client's round result — a leaf
// update or a relayed subtree sum — returning it as a contribution (backed
// by the connection's reusable message, valid until its next read) plus the
// actual bytes the frame occupied on the wire.
func (s *Server) collectOne(sc *serverConn, round, numParams int) (contribution, int, error) {
	if s.RoundTimeout > 0 {
		if err := sc.conn.SetReadDeadline(s.now().Add(s.RoundTimeout)); err != nil {
			return contribution{}, 0, fmt.Errorf("set deadline: %w", err)
		}
	}
	n, err := sc.rx.readMessage(sc.r, &sc.msg)
	if err != nil {
		return contribution{}, 0, err
	}
	m := &sc.msg
	if m.kind != msgUpdate && m.kind != msgRelay {
		return contribution{}, 0, fmt.Errorf("fed: message type %d, want update or relay", m.kind)
	}
	if m.round != round {
		return contribution{}, 0, fmt.Errorf("fed: answered round %d during round %d", m.round, round)
	}
	if m.kind == msgRelay {
		if len(m.sums) != numParams {
			return contribution{}, 0, fmt.Errorf("fed: relayed %d sums, want %d", len(m.sums), numParams)
		}
		return contribution{sums: m.sums, leaves: m.leaves}, n, nil
	}
	if len(m.params) != numParams {
		return contribution{}, 0, fmt.Errorf("fed: sent %d params, want %d", len(m.params), numParams)
	}
	return contribution{params: m.params, leaves: 1}, n, nil
}
