package fed

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"fedpower/internal/nn"
)

// Server is the central aggregation server of Fig. 1 over TCP. It waits for
// a fixed number of clients, then drives R rounds of the synchronous FedAvg
// protocol: broadcast the global model, collect one locally optimised model
// from every client, average. Aggregation is unweighted — every client
// carries the same weight, as in §III-B.
type Server struct {
	ln         net.Listener
	numClients int
	rounds     int

	// RoundTimeout bounds how long the server waits for any single
	// client's update within a round; zero means wait forever. Because
	// aggregation is synchronous, one hung device would otherwise stall the
	// whole federation indefinitely.
	RoundTimeout time.Duration

	mu        sync.Mutex
	bytesSent int64
	bytesRecv int64
}

// NewServer listens on addr (e.g. "127.0.0.1:0") for exactly numClients
// clients and will run the given number of rounds.
func NewServer(addr string, numClients, rounds int) (*Server, error) {
	if numClients <= 0 {
		return nil, fmt.Errorf("fed: client count %d must be positive", numClients)
	}
	if rounds <= 0 {
		return nil, fmt.Errorf("fed: round count %d must be positive", rounds)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fed: listen %s: %w", addr, err)
	}
	return &Server{ln: ln, numClients: numClients, rounds: rounds}, nil
}

// Addr returns the server's listen address, useful when addr was ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops listening. Safe to call after Serve returns.
func (s *Server) Close() error { return s.ln.Close() }

// BytesSent returns the total bytes written to clients so far.
func (s *Server) BytesSent() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesSent
}

// BytesReceived returns the total payload-bearing bytes read from clients.
func (s *Server) BytesReceived() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesRecv
}

type serverConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Serve accepts the configured number of clients, runs all rounds starting
// from the initial global model, and returns the final global model. The
// hook, if non-nil, runs after every aggregation. Serve blocks until
// training completes or a client fails; on failure the protocol aborts,
// since synchronous FedAvg cannot proceed without all participants.
func (s *Server) Serve(initial []float64, hook RoundHook) ([]float64, error) {
	conns := make([]*serverConn, 0, s.numClients)
	defer func() {
		for _, c := range conns {
			// Best-effort teardown: the protocol outcome is already
			// decided by the time the connections are torn down.
			_ = c.conn.Close()
		}
	}()
	for len(conns) < s.numClients {
		conn, err := s.ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("fed: accept: %w", err)
		}
		conns = append(conns, &serverConn{
			conn: conn,
			r:    bufio.NewReader(conn),
			w:    bufio.NewWriter(conn),
		})
	}

	global := append([]float64(nil), initial...)
	locals := make([][]float64, len(conns))

	for round := 1; round <= s.rounds; round++ {
		// Broadcast θ_r. Writes are concurrent so a slow client does not
		// serialise the round start.
		if err := s.broadcast(conns, message{kind: msgModel, round: round, params: global}); err != nil {
			return nil, err
		}
		// Collect θ_r^n from every client (synchronous aggregation: the
		// server waits for all devices, §III-B).
		var wg sync.WaitGroup
		errs := make([]error, len(conns))
		for i, c := range conns {
			wg.Add(1)
			go func(i, round int, c *serverConn) {
				defer wg.Done()
				if s.RoundTimeout > 0 {
					if err := c.conn.SetReadDeadline(time.Now().Add(s.RoundTimeout)); err != nil {
						errs[i] = fmt.Errorf("fed: client %d set deadline: %w", i, err)
						return
					}
				}
				m, err := readMessage(c.r)
				if err != nil {
					errs[i] = err
					return
				}
				if m.kind != msgUpdate {
					errs[i] = fmt.Errorf("fed: client %d sent message type %d, want update", i, m.kind)
					return
				}
				if m.round != round {
					errs[i] = fmt.Errorf("fed: client %d answered round %d during round %d", i, m.round, round)
					return
				}
				if len(m.params) != len(global) {
					errs[i] = fmt.Errorf("fed: client %d sent %d params, want %d", i, len(m.params), len(global))
					return
				}
				locals[i] = m.params
			}(i, round, c)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		s.mu.Lock()
		for range conns {
			s.bytesRecv += int64(TransferSize(len(global)))
		}
		s.mu.Unlock()

		nn.AverageParams(global, locals...)
		if hook != nil {
			hook(round, global)
		}
	}

	if err := s.broadcast(conns, message{kind: msgDone, round: s.rounds, params: global}); err != nil {
		return nil, err
	}
	return global, nil
}

func (s *Server) broadcast(conns []*serverConn, m message) error {
	var wg sync.WaitGroup
	errs := make([]error, len(conns))
	sent := make([]int, len(conns))
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c *serverConn) {
			defer wg.Done()
			n, err := writeMessage(c.w, m)
			sent[i] = n
			errs[i] = err
		}(i, c)
	}
	wg.Wait()
	s.mu.Lock()
	for _, n := range sent {
		s.bytesSent += int64(n)
	}
	s.mu.Unlock()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("fed: broadcast to client %d: %w", i, err)
		}
	}
	return nil
}
