package fed

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"fedpower/internal/nn"
)

// Server is the central aggregation server of Fig. 1 over TCP. It waits for
// a fixed number of clients, then drives R rounds of the FedAvg protocol:
// broadcast the global model, collect locally optimised models, average.
// Aggregation is unweighted — every client carries the same weight, as in
// §III-B.
//
// Unlike the paper's idealised synchronous protocol, the server degrades
// gracefully: every I/O phase is bounded by a deadline, a client that
// misses its deadline (or whose connection dies) is dropped from the round,
// and the round commits as long as at least Quorum updates arrived —
// averaging only the survivors, so a dead device's stale parameters never
// reach the global model. Dropped devices may reconnect at any time and
// rejoin at the next broadcast; the accept loop keeps running for the whole
// training session.
type Server struct {
	ln         net.Listener
	numClients int
	rounds     int

	// RoundTimeout bounds how long the server waits for any single
	// client's update within a round; zero means wait forever. Because
	// aggregation is synchronous, one hung device would otherwise stall the
	// whole federation indefinitely.
	RoundTimeout time.Duration
	// WriteTimeout bounds each broadcast write per client; zero means no
	// deadline. A client with a full TCP window (dead but not closed)
	// otherwise wedges the broadcast.
	WriteTimeout time.Duration
	// JoinTimeout bounds how long an accepted connection may take to send
	// its join frame; zero means wait forever. The join read is serialised
	// in the accept loop, so a silent port-scanner connection would
	// otherwise block later joiners.
	JoinTimeout time.Duration
	// Quorum is the minimum number of client updates a round needs to
	// commit; 0 means all clients (the paper's fully synchronous setting).
	// A round that ends with fewer survivors aborts the protocol.
	Quorum int
	// Clock supplies the current time for deadline arithmetic; nil means
	// time.Now. Tests inject a fake to pin deadline placement.
	Clock func() time.Time
	// OnDrop, when non-nil, observes every dropped client: its ID, the
	// round it was lost in, and the error that killed it. Called from the
	// Serve goroutine only, never concurrently.
	OnDrop func(id uint32, round int, err error)
	// Codec selects the parameter encoding of every connection (codec.go).
	// The zero value is the dense float32 codec — the paper's wire format.
	// Joins advertising a different codec are rejected before any model
	// bytes move, so a mixed fleet fails fast instead of desynchronising.
	Codec Codec

	mu        sync.Mutex
	bytesSent int64
	bytesRecv int64
	drops     int64
	rejoins   int64
	leaves    int64
	acceptErr error
}

// NewServer listens on addr (e.g. "127.0.0.1:0") for numClients clients and
// will run the given number of rounds. Fault-tolerance knobs (deadlines,
// quorum, drop observer) are fields set before Serve.
func NewServer(addr string, numClients, rounds int) (*Server, error) {
	if numClients <= 0 {
		return nil, fmt.Errorf("fed: client count %d must be positive", numClients)
	}
	if rounds <= 0 {
		return nil, fmt.Errorf("fed: round count %d must be positive", rounds)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fed: listen %s: %w", addr, err)
	}
	return &Server{ln: ln, numClients: numClients, rounds: rounds}, nil
}

// Addr returns the server's listen address, useful when addr was ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the federation down: it closes the listener, and a Serve in
// progress aborts with a *RoundError at the next round boundary (a server
// that can never re-admit a dropped device has lost its rejoin guarantee,
// so running on silently would be lying about fault tolerance). Serve also
// closes the listener itself on return, so Close after Serve merely
// reports the double close.
func (s *Server) Close() error { return s.ln.Close() }

// BytesSent returns the total bytes written to clients so far.
func (s *Server) BytesSent() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesSent
}

// BytesReceived returns the total payload-bearing bytes read from clients.
func (s *Server) BytesReceived() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesRecv
}

// Drops returns how many client connections the server has dropped for
// deadline misses, protocol violations or transport errors.
func (s *Server) Drops() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drops
}

// Rejoins returns how many connections joined after the initial cohort —
// dropped devices that reconnected.
func (s *Server) Rejoins() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejoins
}

// Leaves returns the leaf-device count of the last committed round: the
// number of actual devices whose updates reached this server, directly or
// through relaying aggregators. In a flat federation it equals the surviving
// client count; in a tree it is the surviving subtree population.
func (s *Server) Leaves() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leaves
}

// now returns the injected clock's reading.
func (s *Server) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	return time.Now()
}

// quorum returns the effective per-round quorum.
func (s *Server) quorum() int {
	if s.Quorum <= 0 {
		return s.numClients
	}
	return s.Quorum
}

type serverConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	id   uint32 // client ID from the join frame
	seq  int    // join sequence, tiebreak for duplicate IDs

	// Per-connection codec state and a reusable inbound message: broadcast
	// encodes through tx, collect decodes through rx into msg, so the
	// steady-state wire path allocates nothing. msg.params is valid until
	// the next collect on this connection — aggregation finishes within the
	// round, so nothing retains it longer.
	tx, rx *codecState
	msg    message
}

// acceptLoop owns the listener: it accepts connections, reads each one's
// join frame (bounded by JoinTimeout), and delivers joined clients to Serve
// through the joins channel. It exits — closing the channel — when the
// listener closes, which Serve does on return; the accept error is parked
// for Serve to read. Join reads are serialised here on purpose: a join is
// one 9-byte frame, and a single reader keeps join sequence numbers
// deterministic.
func (s *Server) acceptLoop(joins chan<- *serverConn) {
	defer close(joins)
	for seq := 0; ; seq++ {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			s.acceptErr = err
			s.mu.Unlock()
			return
		}
		sc, err := s.readJoin(conn, seq)
		if err != nil {
			// A connection that cannot even say hello is not a client.
			_ = conn.Close()
			seq--
			continue
		}
		joins <- sc
	}
}

// readJoin reads and validates the join frame of a fresh connection.
func (s *Server) readJoin(conn net.Conn, seq int) (*serverConn, error) {
	if s.JoinTimeout > 0 {
		if err := conn.SetReadDeadline(s.now().Add(s.JoinTimeout)); err != nil {
			return nil, err
		}
	}
	sc := &serverConn{
		conn: conn,
		r:    bufio.NewReader(conn),
		w:    bufio.NewWriter(conn),
		seq:  seq,
	}
	m, err := readMessage(sc.r)
	if err != nil {
		return nil, err
	}
	if m.kind != msgJoin {
		return nil, fmt.Errorf("fed: first frame is message type %d, want join", m.kind)
	}
	if m.codec != s.Codec.id {
		// Codec negotiation: both directions of a connection must use the
		// server's codec, or the shadow states desynchronise silently.
		return nil, fmt.Errorf("fed: client codec id %d, server runs %s", m.codec, s.Codec)
	}
	if s.JoinTimeout > 0 {
		// Clear the join deadline; round deadlines are set per phase.
		if err := conn.SetReadDeadline(time.Time{}); err != nil {
			return nil, err
		}
	}
	sc.id = uint32(m.round)
	sc.tx = newCodecState(s.Codec, int64(streamDown)+2*int64(sc.id))
	sc.rx = newCodecState(s.Codec, int64(streamUp)+2*int64(sc.id))
	return sc, nil
}

// sortPool orders the client pool by (ID, join sequence), giving every
// device a stable aggregation slot: with distinct IDs the average is summed
// in the same order no matter how connects and reconnects interleaved, so
// runs replay bit-identically.
func sortPool(pool []*serverConn) {
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].id != pool[j].id {
			return pool[i].id < pool[j].id
		}
		return pool[i].seq < pool[j].seq
	})
}

// session is one Serve invocation's connection state: the accept loop's
// join channel and the live client pool. Server.Serve and fed.Aggregator
// both run their child-facing protocol through it — an aggregator is a
// Server session whose round results flow upward instead of into a mean.
type session struct {
	s     *Server
	joins chan *serverConn
	pool  []*serverConn
}

// startSession spawns the accept loop and returns the session handle. The
// caller must call close exactly once when the protocol is decided.
func (s *Server) startSession() *session {
	ses := &session{s: s, joins: make(chan *serverConn, s.numClients)}
	go s.acceptLoop(ses.joins)
	return ses
}

// close releases all connection state: it closes the listener to stop the
// accept loop, drains the join channel, and closes every pooled connection.
// The protocol outcome is already decided, so close errors carry no signal.
func (ses *session) close() {
	_ = ses.s.ln.Close()
	for sc := range ses.joins {
		_ = sc.conn.Close()
	}
	for _, sc := range ses.pool {
		_ = sc.conn.Close()
	}
}

// waitCohort blocks until the initial cohort is fully joined — the paper's
// setting, all devices present at the start.
func (ses *session) waitCohort() error {
	for len(ses.pool) < ses.s.numClients {
		sc, ok := <-ses.joins
		if !ok {
			return fmt.Errorf("fed: accept: %w", ses.s.takeAcceptErr())
		}
		ses.pool = append(ses.pool, sc)
	}
	sortPool(ses.pool)
	return nil
}

// admit moves reconnected clients into the pool; alive is false once the
// listener is down and the rejoin guarantee is gone.
func (ses *session) admit() (alive bool) {
	ses.pool, alive = ses.s.admit(ses.pool, ses.joins)
	return alive
}

// broadcast fans m out to the pool, dropping unreachable clients.
func (ses *session) broadcast(m message, round int) {
	ses.pool = ses.s.broadcast(ses.pool, m, round)
}

// collect gathers the round's contributions from the pool.
func (ses *session) collect(round, numParams int) ([]contribution, error) {
	pool, contribs, firstErr := ses.s.collect(ses.pool, round, numParams)
	ses.pool = pool
	return contribs, firstErr
}

// contribution is one pooled connection's round result: either a leaf
// device's parameter vector (params set, leaves == 1) or a relaying
// aggregator's exact subtree sums (sums set, leaves = subtree population).
// Both storages are backed by the connection's reusable inbound message and
// stay valid until its next read — aggregation completes within the round.
type contribution struct {
	params []float64
	sums   []nn.Accum
	leaves int
}

// accumulate folds the round's contributions into acc — resetting it first —
// and returns the total leaf count. Leaf parameters are added exactly and
// subtree sums merged exactly, so the result is the exact multiset sum over
// every leaf device below this node, independent of topology.
func accumulate(acc []nn.Accum, contribs []contribution) int {
	for i := range acc {
		acc[i].Reset()
	}
	total := 0
	for _, c := range contribs {
		if c.sums != nil {
			nn.MergeAccum(acc, c.sums)
		} else {
			nn.AddParamsAccum(acc, c.params)
		}
		total += c.leaves
	}
	return total
}

// Serve accepts the initial cohort of clients, runs all rounds starting
// from the initial global model, and returns the final global model. The
// hook, if non-nil, runs after every aggregation.
//
// Round lifecycle: (1) admit any reconnected devices into the pool,
// aborting if the listener has died (see Close);
// (2) broadcast θ_r, dropping clients whose write fails or times out;
// (3) collect one update per client under RoundTimeout, dropping clients
// that miss the deadline, answer for the wrong round, or die; (4) if at
// least Quorum updates survived, average exactly those survivors into the
// global model, else abort. Serve returns early only when a round cannot
// reach quorum (or setup fails); individual client failures are absorbed.
//
// A client may be a leaf device (msgUpdate) or a relaying aggregator
// (msgRelay) — the mean is taken over leaf devices, with each relayed
// subtree entering the sum exactly, so any aggregation tree reproduces the
// flat federation's model bit-for-bit (DESIGN.md, "Hierarchical
// aggregation"). Quorum counts direct children: a subtree that misses its
// deadline drops from this node's quorum, not from the global round.
func (s *Server) Serve(initial []float64, hook RoundHook) ([]float64, error) {
	ses := s.startSession()
	defer ses.close()

	quorum := s.quorum()
	if quorum > s.numClients {
		return nil, fmt.Errorf("fed: quorum %d exceeds client count %d", quorum, s.numClients)
	}
	if err := ses.waitCohort(); err != nil {
		return nil, err
	}

	global := append([]float64(nil), initial...)
	acc := make([]nn.Accum, len(global))

	for round := 1; round <= s.rounds; round++ {
		contribs, rerr := s.round(ses, round, global)
		if rerr != nil {
			return nil, rerr
		}
		total := accumulate(acc, contribs)
		nn.MeanAccum(global, acc, total)
		s.mu.Lock()
		s.leaves = int64(total)
		s.mu.Unlock()
		if hook != nil {
			hook(round, global)
		}
	}

	// Final model delivery is best-effort per client: a device that died
	// after the last aggregation cannot invalidate the result.
	ses.broadcast(message{kind: msgDone, round: s.rounds, params: global}, s.rounds)
	return global, nil
}

// round drives one admit → broadcast → collect cycle over the session and
// returns the surviving contributions, or a *RoundError when the round
// cannot reach quorum (shared verbatim between the root Serve and interior
// aggregators, whose rounds differ only in what happens to the result).
func (s *Server) round(ses *session, round int, global []float64) ([]contribution, error) {
	quorum := s.quorum()
	if !ses.admit() {
		return nil, &RoundError{Round: round, Phase: PhaseBroadcast, Client: -1,
			Err: fmt.Errorf("listener down, shutting down: %w", s.takeAcceptErr())}
	}
	if len(ses.pool) < quorum {
		return nil, &RoundError{Round: round, Phase: PhaseBroadcast, Client: -1,
			Err: fmt.Errorf("%d live clients below quorum %d", len(ses.pool), quorum)}
	}

	ses.broadcast(message{kind: msgModel, round: round, params: global}, round)
	if len(ses.pool) < quorum {
		return nil, &RoundError{Round: round, Phase: PhaseBroadcast, Client: -1,
			Err: fmt.Errorf("%d clients reachable after broadcast, quorum %d", len(ses.pool), quorum)}
	}

	contribs, firstErr := ses.collect(round, len(global))
	if len(contribs) < quorum {
		return nil, &RoundError{Round: round, Phase: PhaseCollect, Client: -1,
			Err: fmt.Errorf("%d of %d updates arrived, quorum %d: %w",
				len(contribs), s.numClients, quorum, firstErr)}
	}
	return contribs, nil
}

// takeAcceptErr returns the parked accept-loop error.
func (s *Server) takeAcceptErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.acceptErr == nil {
		return fmt.Errorf("listener closed")
	}
	return s.acceptErr
}

// admit moves any reconnected devices from the accept loop into the pool.
// alive is false once the accept loop has exited (listener closed or
// broken): the federation can never re-admit a lost device again, which
// means Close was called or the host is going down — Serve must abort
// rather than run on silently without its rejoin guarantee.
func (s *Server) admit(pool []*serverConn, joins <-chan *serverConn) (_ []*serverConn, alive bool) {
	for {
		select {
		case sc, ok := <-joins:
			if !ok {
				return pool, false
			}
			pool = append(pool, sc)
			s.mu.Lock()
			s.rejoins++
			s.mu.Unlock()
			sortPool(pool)
		default:
			return pool, true
		}
	}
}

// drop removes a client from the protocol: close, count, observe.
func (s *Server) drop(sc *serverConn, round int, err error) {
	_ = sc.conn.Close()
	s.mu.Lock()
	s.drops++
	s.mu.Unlock()
	if s.OnDrop != nil {
		s.OnDrop(sc.id, round, err)
	}
}

// broadcast writes m to every pooled client concurrently (a slow client
// must not serialise the round start), bounded by WriteTimeout, and returns
// the clients the write reached. Unreachable clients are dropped, not
// fatal: whether the round can proceed is the caller's quorum decision.
func (s *Server) broadcast(pool []*serverConn, m message, round int) []*serverConn {
	var wg sync.WaitGroup
	errs := make([]error, len(pool))
	sent := make([]int, len(pool))
	for i, sc := range pool {
		wg.Add(1)
		go func(i int, sc *serverConn) {
			defer wg.Done()
			if s.WriteTimeout > 0 {
				if err := sc.conn.SetWriteDeadline(s.now().Add(s.WriteTimeout)); err != nil {
					errs[i] = err
					return
				}
			}
			n, err := sc.tx.writeMessage(sc.w, m)
			sent[i] = n
			errs[i] = err
		}(i, sc)
	}
	wg.Wait()
	s.mu.Lock()
	for _, n := range sent {
		s.bytesSent += int64(n)
	}
	s.mu.Unlock()
	alive := pool[:0]
	for i, sc := range pool {
		if errs[i] != nil {
			s.drop(sc, round, &RoundError{Round: round, Phase: PhaseBroadcast, Client: int(sc.id), Err: errs[i]})
			continue
		}
		alive = append(alive, sc)
	}
	return alive
}

// collect reads one round result from every pooled client concurrently,
// each read bounded by RoundTimeout. It returns the surviving pool, the
// survivors' contributions in pool (ID, seq) order, and the first failure
// for quorum-abort diagnostics. Failed clients — deadline misses, dead
// sockets, wrong round, wrong shape, malformed relay blocks — are dropped;
// their connections are closed so a straggler's late frame can never
// desynchronise a later round (the device rejoins with a fresh connection
// instead). Byte accounting sums the bytes each complete, accepted result
// actually put on the wire — under the dense codec exactly TransferSize per
// leaf survivor, under the compressed codecs their true (smaller) frame
// sizes, and for relays their exact-accumulator frames.
func (s *Server) collect(pool []*serverConn, round, numParams int) ([]*serverConn, []contribution, error) {
	var wg sync.WaitGroup
	errs := make([]error, len(pool))
	updates := make([]contribution, len(pool))
	recv := make([]int, len(pool))
	for i, sc := range pool {
		wg.Add(1)
		go func(i, round int, sc *serverConn) {
			defer wg.Done()
			updates[i], recv[i], errs[i] = s.collectOne(sc, round, numParams)
		}(i, round, sc)
	}
	wg.Wait()

	alive := pool[:0]
	var contribs []contribution
	var firstErr error
	var received int64
	for i, sc := range pool {
		if errs[i] != nil {
			wrapped := &RoundError{Round: round, Phase: PhaseCollect, Client: int(sc.id), Err: errs[i]}
			if firstErr == nil {
				firstErr = wrapped
			}
			s.drop(sc, round, wrapped)
			continue
		}
		alive = append(alive, sc)
		contribs = append(contribs, updates[i])
		received += int64(recv[i])
	}
	s.mu.Lock()
	s.bytesRecv += received
	s.mu.Unlock()
	return alive, contribs, firstErr
}

// collectOne reads and validates a single client's round result — a leaf
// update or a relayed subtree sum — returning it as a contribution (backed
// by the connection's reusable message, valid until its next read) plus the
// actual bytes the frame occupied on the wire.
func (s *Server) collectOne(sc *serverConn, round, numParams int) (contribution, int, error) {
	if s.RoundTimeout > 0 {
		if err := sc.conn.SetReadDeadline(s.now().Add(s.RoundTimeout)); err != nil {
			return contribution{}, 0, fmt.Errorf("set deadline: %w", err)
		}
	}
	n, err := sc.rx.readMessage(sc.r, &sc.msg)
	if err != nil {
		return contribution{}, 0, err
	}
	m := &sc.msg
	if m.kind != msgUpdate && m.kind != msgRelay {
		return contribution{}, 0, fmt.Errorf("fed: message type %d, want update or relay", m.kind)
	}
	if m.round != round {
		return contribution{}, 0, fmt.Errorf("fed: answered round %d during round %d", m.round, round)
	}
	if m.kind == msgRelay {
		if len(m.sums) != numParams {
			return contribution{}, 0, fmt.Errorf("fed: relayed %d sums, want %d", len(m.sums), numParams)
		}
		return contribution{sums: m.sums, leaves: m.leaves}, n, nil
	}
	if len(m.params) != numParams {
		return contribution{}, 0, fmt.Errorf("fed: sent %d params, want %d", len(m.params), numParams)
	}
	return contribution{params: m.params, leaves: 1}, n, nil
}
