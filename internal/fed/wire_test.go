package fed

import (
	"bufio"
	"bytes"
	"math"
	"testing"
)

func roundTrip(t *testing.T, m message) message {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	n, err := writeMessage(w, m)
	if err != nil {
		t.Fatal(err)
	}
	if n != buf.Len() {
		t.Fatalf("writeMessage reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := readMessage(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestMessageRoundTrip(t *testing.T) {
	m := message{kind: msgModel, round: 42, params: []float64{0.5, -1.25, 3}}
	got := roundTrip(t, m)
	if got.kind != msgModel || got.round != 42 {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range m.params {
		if got.params[i] != float64(float32(m.params[i])) {
			t.Errorf("param %d: %v -> %v", i, m.params[i], got.params[i])
		}
	}
}

func TestMessageRoundTripEmpty(t *testing.T) {
	got := roundTrip(t, message{kind: msgDone, round: 100})
	if got.kind != msgDone || got.round != 100 || len(got.params) != 0 {
		t.Fatalf("empty-payload round trip: %+v", got)
	}
}

func TestTransferSizeMatchesPaper(t *testing.T) {
	// §IV-C reports ~2.8 kB per transfer. The 687-parameter model encodes
	// to 2748 payload bytes + 9 header bytes.
	if got := TransferSize(687); got != 2757 {
		t.Fatalf("TransferSize(687) = %d, want 2757", got)
	}
}

func TestWriteMessageSizeAccounting(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	n, err := writeMessage(w, message{kind: msgUpdate, round: 1, params: make([]float64, 687)})
	if err != nil {
		t.Fatal(err)
	}
	if n != TransferSize(687) {
		t.Fatalf("wrote %d bytes, want TransferSize %d", n, TransferSize(687))
	}
}

func TestReadMessageRejectsUnknownType(t *testing.T) {
	raw := make([]byte, headerSize)
	raw[0] = 99
	if _, err := readMessage(bufio.NewReader(bytes.NewReader(raw))); err == nil {
		t.Fatal("unknown message type accepted")
	}
}

func TestReadMessageRejectsHugeCount(t *testing.T) {
	raw := make([]byte, headerSize)
	raw[0] = msgModel
	// count field at offset 5: maxWireParams+1
	c := uint32(maxWireParams + 1)
	raw[5] = byte(c)
	raw[6] = byte(c >> 8)
	raw[7] = byte(c >> 16)
	raw[8] = byte(c >> 24)
	if _, err := readMessage(bufio.NewReader(bytes.NewReader(raw))); err == nil {
		t.Fatal("oversized parameter count accepted")
	}
}

func TestReadMessageTruncatedHeader(t *testing.T) {
	if _, err := readMessage(bufio.NewReader(bytes.NewReader([]byte{msgModel, 0}))); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestReadMessageTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if _, err := writeMessage(w, message{kind: msgModel, round: 1, params: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-2] // chop the payload tail
	if _, err := readMessage(bufio.NewReader(bytes.NewReader(raw))); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestRoundTripPrecision(t *testing.T) {
	// Values within float32 range survive with relative error < 2^-23 —
	// far below the reward noise floor, as the package doc argues.
	params := []float64{0.005, 0.9, 0.0005, 0.01, -0.123456}
	got := roundTrip(t, message{kind: msgModel, round: 1, params: params})
	for i := range params {
		rel := math.Abs(got.params[i]-params[i]) / math.Abs(params[i])
		if rel > 1.0/(1<<22) {
			t.Errorf("param %d relative error %v", i, rel)
		}
	}
}
