package fed

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// constClient always returns the same parameter vector.
type constClient struct{ params []float64 }

func (c constClient) TrainRound(round int, global []float64) ([]float64, error) {
	return c.params, nil
}

// addClient returns the received global plus a constant offset, so the
// aggregation dynamics are observable round over round.
type addClient struct{ delta float64 }

func (c addClient) TrainRound(round int, global []float64) ([]float64, error) {
	out := make([]float64, len(global))
	for i, g := range global {
		out[i] = g + c.delta
	}
	return out, nil
}

func TestRunValidation(t *testing.T) {
	if err := Run([]float64{1}, nil, 5, nil); err == nil {
		t.Error("Run with no clients succeeded")
	}
	if err := Run([]float64{1}, []Client{constClient{[]float64{1}}}, 0, nil); err == nil {
		t.Error("Run with zero rounds succeeded")
	}
}

func TestRunAveragesClients(t *testing.T) {
	global := []float64{0, 0}
	clients := []Client{
		constClient{[]float64{1, 3}},
		constClient{[]float64{3, 5}},
	}
	if err := Run(global, clients, 1, nil); err != nil {
		t.Fatal(err)
	}
	if global[0] != 2 || global[1] != 4 {
		t.Fatalf("global after round = %v, want [2 4]", global)
	}
}

func TestRunSingleClientIsIdentity(t *testing.T) {
	// A federation of one is local-only training: averaging one model is
	// the identity. This is how the experiment harness implements the
	// local-only arm.
	global := []float64{0}
	if err := Run(global, []Client{addClient{1}}, 7, nil); err != nil {
		t.Fatal(err)
	}
	if global[0] != 7 {
		t.Fatalf("global = %v, want 7 after 7 increments", global[0])
	}
}

func TestRunMultiRoundDynamics(t *testing.T) {
	// Two clients adding +2 and +4 per round: each round the global grows
	// by the mean (+3).
	global := []float64{0}
	if err := Run(global, []Client{addClient{2}, addClient{4}}, 3, nil); err != nil {
		t.Fatal(err)
	}
	if global[0] != 9 {
		t.Fatalf("global = %v, want 9", global[0])
	}
}

func TestRunHookSeesEveryRound(t *testing.T) {
	var rounds []int
	var values []float64
	global := []float64{0}
	err := Run(global, []Client{addClient{1}}, 4, func(r int, g []float64) {
		rounds = append(rounds, r)
		values = append(values, g[0])
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 4 {
		t.Fatalf("hook ran %d times, want 4", len(rounds))
	}
	for i, r := range rounds {
		if r != i+1 {
			t.Errorf("hook round %d, want %d", r, i+1)
		}
		if values[i] != float64(i+1) {
			t.Errorf("hook saw global %v at round %d, want %d", values[i], r, i+1)
		}
	}
}

func TestRunClientsSeeBroadcastNotPeers(t *testing.T) {
	// Every client in a round must receive the same global model,
	// regardless of what earlier clients returned in that round.
	var received [][]float64
	mk := func(ret float64) ClientFunc {
		return func(round int, global []float64) ([]float64, error) {
			received = append(received, append([]float64(nil), global...))
			return []float64{ret}, nil
		}
	}
	global := []float64{10}
	if err := Run(global, []Client{mk(0), mk(100)}, 1, nil); err != nil {
		t.Fatal(err)
	}
	if received[0][0] != 10 || received[1][0] != 10 {
		t.Fatalf("clients saw %v, want both to see the broadcast 10", received)
	}
	if global[0] != 50 {
		t.Fatalf("global = %v, want 50", global[0])
	}
}

func TestRunErrorPropagation(t *testing.T) {
	sentinel := errors.New("device offline")
	failing := ClientFunc(func(round int, global []float64) ([]float64, error) {
		if round == 2 {
			return nil, sentinel
		}
		return global, nil
	})
	err := Run([]float64{0}, []Client{failing}, 5, nil)
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap the client failure", err)
	}
}

func TestRunLengthMismatchRejected(t *testing.T) {
	bad := ClientFunc(func(round int, global []float64) ([]float64, error) {
		return []float64{1, 2, 3}, nil
	})
	if err := Run([]float64{0}, []Client{bad}, 1, nil); err == nil {
		t.Fatal("mismatched parameter count accepted")
	}
}

func TestRunCopiesClientReturns(t *testing.T) {
	// The orchestrator must copy client returns so a client returning its
	// live parameter vector is safe.
	live := []float64{1}
	client := ClientFunc(func(round int, global []float64) ([]float64, error) {
		live[0] = float64(round)
		return live, nil
	})
	global := []float64{0}
	if err := Run(global, []Client{client}, 3, nil); err != nil {
		t.Fatal(err)
	}
	if global[0] != 3 {
		t.Fatalf("global = %v, want 3", global[0])
	}
}

func TestRunWeightedAverages(t *testing.T) {
	global := []float64{0}
	clients := []Client{constClient{[]float64{1}}, constClient{[]float64{5}}}
	// Weights 3:1 → (3·1 + 1·5)/4 = 2.
	if err := RunWeighted(global, clients, []float64{3, 1}, 1, nil); err != nil {
		t.Fatal(err)
	}
	if global[0] != 2 {
		t.Fatalf("weighted global = %v, want 2", global[0])
	}
}

func TestRunWeightedEqualWeightsMatchesRun(t *testing.T) {
	mk := func() []Client {
		return []Client{constClient{[]float64{1, 3}}, constClient{[]float64{3, 7}}}
	}
	a := []float64{0, 0}
	if err := Run(a, mk(), 2, nil); err != nil {
		t.Fatal(err)
	}
	b := []float64{0, 0}
	if err := RunWeighted(b, mk(), []float64{5, 5}, 2, nil); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("equal-weight result differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunWeightedValidation(t *testing.T) {
	clients := []Client{constClient{[]float64{1}}}
	cases := []struct {
		name    string
		weights []float64
		clients []Client
		rounds  int
	}{
		{"no clients", []float64{1}, nil, 1},
		{"zero rounds", []float64{1}, clients, 0},
		{"weight count mismatch", []float64{1, 2}, clients, 1},
		{"negative weight", []float64{-1}, clients, 1},
		{"zero weights", []float64{0}, clients, 1},
	}
	for _, c := range cases {
		if err := RunWeighted([]float64{0}, c.clients, c.weights, c.rounds, nil); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestRunWeightedDominantClient(t *testing.T) {
	// A weight of ~1 vs ~0 makes the global model track the heavy client.
	global := []float64{0}
	clients := []Client{addClient{10}, addClient{-10}}
	if err := RunWeighted(global, clients, []float64{1, 1e-9}, 3, nil); err != nil {
		t.Fatal(err)
	}
	if global[0] < 29.9 {
		t.Fatalf("global = %v, want ~30 (dominated by the +10 client)", global[0])
	}
}

func TestRunSampledValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	clients := []Client{constClient{[]float64{1}}}
	if err := RunSampled([]float64{0}, nil, 1, 1, rng, nil); err == nil {
		t.Error("no clients accepted")
	}
	if err := RunSampled([]float64{0}, clients, 0, 1, rng, nil); err == nil {
		t.Error("zero fraction accepted")
	}
	if err := RunSampled([]float64{0}, clients, 1.5, 1, rng, nil); err == nil {
		t.Error("fraction above 1 accepted")
	}
	if err := RunSampled([]float64{0}, clients, 1, 0, rng, nil); err == nil {
		t.Error("zero rounds accepted")
	}
	if err := RunSampled([]float64{0}, clients, 1, 1, nil, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestRunSampledFullParticipationMatchesRun(t *testing.T) {
	mk := func() []Client { return []Client{addClient{2}, addClient{4}} }
	a := []float64{0}
	if err := Run(a, mk(), 3, nil); err != nil {
		t.Fatal(err)
	}
	b := []float64{0}
	if err := RunSampled(b, mk(), 1, 3, rand.New(rand.NewSource(1)), nil); err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatalf("fraction=1 result %v differs from Run %v", b[0], a[0])
	}
}

func TestRunSampledPartialParticipation(t *testing.T) {
	// Count how often each client trains under fraction 0.5. With two
	// clients, a client participates when sampled (p = 0.5) or as the
	// forced pick when both miss (p = 0.25 · 0.5), giving 62.5 % expected.
	counts := make([]int, 2)
	mkCounting := func(i int) ClientFunc {
		return func(round int, global []float64) ([]float64, error) {
			counts[i]++
			return global, nil
		}
	}
	const rounds = 400
	err := RunSampled([]float64{0}, []Client{mkCounting(0), mkCounting(1)},
		0.5, rounds, rand.New(rand.NewSource(7)), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		frac := float64(c) / rounds
		if frac < 0.54 || frac > 0.71 {
			t.Errorf("client %d participated in %.0f%% of rounds, want ~62.5%%", i, frac*100)
		}
	}
	if counts[0]+counts[1] < rounds {
		t.Error("some round ran with no participant")
	}
}

func TestRunSampledNeverEmptyRound(t *testing.T) {
	// Even at a minuscule fraction every round trains someone.
	trained := 0
	client := ClientFunc(func(round int, global []float64) ([]float64, error) {
		trained++
		return global, nil
	})
	if err := RunSampled([]float64{0}, []Client{client}, 0.0001, 50, rand.New(rand.NewSource(3)), nil); err != nil {
		t.Fatal(err)
	}
	if trained < 50 {
		t.Fatalf("only %d training calls over 50 rounds", trained)
	}
}

func TestRunSampledAveragesOnlyParticipants(t *testing.T) {
	// One client forces 10, the other 20. Under full sampling the result
	// is 15 every round; under sampling the result must always be one of
	// {10, 15, 20} — never influenced by a non-participant's stale model.
	clients := []Client{constClient{[]float64{10}}, constClient{[]float64{20}}}
	global := []float64{0}
	err := RunSampled(global, clients, 0.5, 1, rand.New(rand.NewSource(11)), func(r int, g []float64) {
		if g[0] != 10 && g[0] != 15 && g[0] != 20 {
			t.Errorf("round %d global %v not an average of participants", r, g[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClientFuncAdapter(t *testing.T) {
	called := false
	var c Client = ClientFunc(func(round int, global []float64) ([]float64, error) {
		called = true
		if round != 9 {
			return nil, fmt.Errorf("round %d", round)
		}
		return global, nil
	})
	if _, err := c.TrainRound(9, []float64{1}); err != nil || !called {
		t.Fatalf("adapter: err=%v called=%v", err, called)
	}
}
